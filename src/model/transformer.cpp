#include "model/transformer.hpp"

#include <algorithm>

#include "hw/compute_model.hpp"
#include "util/logging.hpp"

namespace meshslice {

TransformerConfig
gpt3Config()
{
    TransformerConfig cfg;
    cfg.name = "GPT-3";
    cfg.layers = 96;
    cfg.hiddenDim = 12288;
    cfg.heads = 96;
    cfg.ffnDim = 4 * 12288;
    return cfg;
}

TransformerConfig
megatronNlgConfig()
{
    TransformerConfig cfg;
    cfg.name = "Megatron";
    cfg.layers = 105;
    cfg.hiddenDim = 20480;
    cfg.heads = 128;
    cfg.ffnDim = 4 * 20480;
    return cfg;
}

const char *
passName(Pass pass)
{
    switch (pass) {
      case Pass::kForward:
        return "fwd";
      case Pass::kBackwardData:
        return "bwdD";
      case Pass::kBackwardWeight:
        return "bwdW";
    }
    return "?";
}

std::vector<FcGemm>
blockFcGemms(const TransformerConfig &model, const TrainingConfig &train)
{
    const std::int64_t m = train.tokens();
    const std::int64_t h = model.hiddenDim;
    struct Layer
    {
        const char *name;
        std::int64_t in;
        std::int64_t out;
    };
    const Layer layers[4] = {
        {"qkv", h, 3 * h},
        {"proj", h, h},
        {"ffn1", h, model.ffnDim},
        {"ffn2", model.ffnDim, h},
    };
    std::vector<FcGemm> out;
    out.reserve(12);
    for (int l = 0; l < 4; ++l) {
        const Layer &layer = layers[l];
        // Forward: Y[M,out] = X[M,in] W[in,out].
        out.push_back(FcGemm{std::string(layer.name) + ".fwd", m, layer.in,
                             layer.out, Pass::kForward, l});
        // Backward data: X'[M,in] = Y'[M,out] W^T.
        out.push_back(FcGemm{std::string(layer.name) + ".bwdD", m,
                             layer.out, layer.in, Pass::kBackwardData, l});
        // Backward weight: W'[in,out] = X^T[in,M] Y'[M,out].
        out.push_back(FcGemm{std::string(layer.name) + ".bwdW", layer.in, m,
                             layer.out, Pass::kBackwardWeight, l});
    }
    return out;
}

std::vector<WeightedFcGemm>
distinctFcGemms(const TransformerConfig &model, const TrainingConfig &train)
{
    std::vector<WeightedFcGemm> distinct;
    for (const FcGemm &gemm : blockFcGemms(model, train)) {
        bool merged = false;
        for (WeightedFcGemm &entry : distinct) {
            const FcGemm &d = entry.gemm;
            const bool same =
                d.k == gemm.k &&
                ((d.m == gemm.m && d.n == gemm.n) ||
                 (d.m == gemm.n && d.n == gemm.m)); // transpose-equal
            if (same) {
                ++entry.count;
                merged = true;
                break;
            }
        }
        if (!merged)
            distinct.push_back(WeightedFcGemm{gemm, 1});
    }
    return distinct;
}

Time
nonFcBlockTime(const ChipConfig &cfg, const TransformerConfig &model,
               const TrainingConfig &train, int chips)
{
    const double m = static_cast<double>(train.tokens());
    const double h = static_cast<double>(model.hiddenDim);
    const double f = static_cast<double>(model.ffnDim);
    const double s = static_cast<double>(train.seqLen);

    // Attention score (Q K^T) and context (P V) batched GeMMs:
    // 2 GeMMs * 2 M s H FLOPs forward, 2x that for backward. Batched
    // attention GeMMs run at roughly half matrix-unit efficiency
    // (s x headDim tiles).
    const double attn_flops = 3.0 * 2.0 * (2.0 * m * s * h);
    const Time attn_time =
        attn_flops / (0.5 * cfg.peakFlops) / static_cast<double>(chips);

    // Element-wise / reduction traffic (HBM-bound): layernorms,
    // softmax, GeLU, residuals, dropout masks — roughly 20 activation
    // reads+writes of M*H plus softmax's M*s per head, fwd+bwd.
    const double e = cfg.bytesPerElement;
    const double elem_bytes =
        3.0 * (20.0 * m * h * e + 4.0 * m * s * e + 4.0 * m * f * e / 4.0);
    const Time elem_time =
        elem_bytes / cfg.hbmBandwidth / static_cast<double>(chips);

    return attn_time + elem_time;
}

} // namespace meshslice
