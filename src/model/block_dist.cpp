#include "model/block_dist.hpp"

#include "gemm/functional_gemm.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/** shard-wise: a += b. */
void
distAdd(DistMatrix &a, const DistMatrix &b)
{
    for (int i = 0; i < a.mesh().rows; ++i)
        for (int j = 0; j < a.mesh().cols; ++j)
            a.shardAt(i, j).add(b.shardAt(i, j));
}

/**
 * Per-token layer-norm statistics of a row-sharded, column-sharded
 * activation: accumulate (sum, sum_sq) across each mesh row — the
 * explicit cross-column reduction — and return one RowStats per mesh
 * row (covering that row's token shard).
 */
std::vector<RowStats>
distRowStats(const DistMatrix &x)
{
    std::vector<RowStats> stats;
    for (int i = 0; i < x.mesh().rows; ++i) {
        std::vector<double> sum, sum_sq;
        for (int j = 0; j < x.mesh().cols; ++j)
            accumulateRowSums(x.shardAt(i, j), sum, sum_sq);
        stats.push_back(rowStatsFromSums(sum, sum_sq, x.cols()));
    }
    return stats;
}

/** Apply per-mesh-row stats shard-wise. */
DistMatrix
distLayerNormApply(const DistMatrix &x, const std::vector<RowStats> &stats)
{
    DistMatrix y(x.mesh(), x.rows(), x.cols());
    for (int i = 0; i < x.mesh().rows; ++i)
        for (int j = 0; j < x.mesh().cols; ++j)
            y.shardAt(i, j) = layerNormApply(
                x.shardAt(i, j), stats[static_cast<size_t>(i)]);
    return y;
}

/** Distributed layer-norm backward (two more cross-column sums). */
DistMatrix
distLayerNormBackward(const DistMatrix &x,
                      const std::vector<RowStats> &stats,
                      const DistMatrix &dy)
{
    DistMatrix dx(x.mesh(), x.rows(), x.cols());
    for (int i = 0; i < x.mesh().rows; ++i) {
        const RowStats &st = stats[static_cast<size_t>(i)];
        const std::int64_t local_rows = x.shardRows();
        std::vector<double> r1(static_cast<size_t>(local_rows), 0.0);
        std::vector<double> r2(static_cast<size_t>(local_rows), 0.0);
        for (int j = 0; j < x.mesh().cols; ++j) {
            const Matrix &xs = x.shardAt(i, j);
            const Matrix &ds = dy.shardAt(i, j);
            for (std::int64_t r = 0; r < xs.rows(); ++r) {
                const double mean = st.mean[static_cast<size_t>(r)];
                const double inv = st.invStd[static_cast<size_t>(r)];
                for (std::int64_t c = 0; c < xs.cols(); ++c) {
                    const double xhat = (xs.at(r, c) - mean) * inv;
                    r1[static_cast<size_t>(r)] += ds.at(r, c);
                    r2[static_cast<size_t>(r)] += ds.at(r, c) * xhat;
                }
            }
        }
        for (int j = 0; j < x.mesh().cols; ++j)
            dx.shardAt(i, j) = layerNormBackward(
                x.shardAt(i, j), st, dy.shardAt(i, j), r1, r2, x.cols());
    }
    return dx;
}

/** Per-chip local attention dims under the paper's sharding. */
struct LocalAttn
{
    std::int64_t seqs;
    std::int64_t heads;
};

LocalAttn
localAttn(const BlockDims &dims, const MeshShape &mesh)
{
    if (dims.batch % mesh.rows != 0)
        panic("distBlock: mesh rows %d must divide batch %lld", mesh.rows,
              static_cast<long long>(dims.batch));
    if (dims.heads % mesh.cols != 0)
        panic("distBlock: mesh cols %d must divide heads %lld", mesh.cols,
              static_cast<long long>(dims.heads));
    return LocalAttn{dims.batch / mesh.rows, dims.heads / mesh.cols};
}

/** Y = X W via the MeshSlice OS dataflow (Table 1, forward). */
DistMatrix
fcForward(const DistBlockConfig &cfg, const DistMatrix &x,
          const DistMatrix &w)
{
    return funcMeshSliceOS(x, w, cfg.sliceCount, cfg.block);
}

/** X' = Y' W^T via the LS dataflow (Table 1, backward data). */
DistMatrix
fcBackwardData(const DistBlockConfig &cfg, const DistMatrix &dy,
               const DistMatrix &w)
{
    return funcMeshSliceLS(dy, w, cfg.sliceCount, cfg.block);
}

/** W' = X^T Y' via the RS dataflow (Table 1, backward weight). */
DistMatrix
fcBackwardWeight(const DistBlockConfig &cfg, const DistMatrix &x,
                 const DistMatrix &dy)
{
    return funcMeshSliceRS(x, dy, cfg.sliceCount, cfg.block);
}

} // namespace

DistMatrix
distBlockForward(const BlockDims &dims, const DistBlockConfig &cfg,
                 const DistMatrix &x, const BlockParams &params,
                 DistBlockCache *cache)
{
    const MeshShape mesh = cfg.mesh;
    const LocalAttn attn = localAttn(dims, mesh);
    DistBlockCache local;
    DistBlockCache &cc = cache ? *cache : local;

    DistMatrix wq = DistMatrix::scatter(params.wq, mesh);
    DistMatrix wk = DistMatrix::scatter(params.wk, mesh);
    DistMatrix wv = DistMatrix::scatter(params.wv, mesh);
    DistMatrix wo = DistMatrix::scatter(params.wo, mesh);
    DistMatrix w1 = DistMatrix::scatter(params.w1, mesh);
    DistMatrix w2 = DistMatrix::scatter(params.w2, mesh);

    cc.x = x;
    cc.stats1 = distRowStats(x);
    cc.ln1 = distLayerNormApply(x, cc.stats1);
    cc.q = fcForward(cfg, cc.ln1, wq);
    cc.k = fcForward(cfg, cc.ln1, wk);
    cc.v = fcForward(cfg, cc.ln1, wv);

    // Attention is chip-local: each chip holds whole sequences (batch
    // sharded over rows) and whole heads (sharded over columns).
    cc.ctx = DistMatrix(mesh, x.rows(), x.cols());
    cc.probs.assign(static_cast<size_t>(mesh.chips()), Matrix());
    for (int i = 0; i < mesh.rows; ++i) {
        for (int j = 0; j < mesh.cols; ++j) {
            Matrix probs;
            cc.ctx.shardAt(i, j) = attentionForward(
                attn.seqs, dims.seq, attn.heads, dims.headDim,
                cc.q.shardAt(i, j), cc.k.shardAt(i, j),
                cc.v.shardAt(i, j), &probs);
            cc.probs[static_cast<size_t>(i * mesh.cols + j)] =
                std::move(probs);
        }
    }

    cc.attnOut = fcForward(cfg, cc.ctx, wo);
    cc.h = x;
    distAdd(cc.h, cc.attnOut);
    cc.stats2 = distRowStats(cc.h);
    cc.ln2 = distLayerNormApply(cc.h, cc.stats2);
    cc.f1 = fcForward(cfg, cc.ln2, w1);
    cc.g = DistMatrix(mesh, cc.f1.rows(), cc.f1.cols());
    for (int i = 0; i < mesh.rows; ++i)
        for (int j = 0; j < mesh.cols; ++j)
            cc.g.shardAt(i, j) = geluForward(cc.f1.shardAt(i, j));
    DistMatrix y = cc.h;
    distAdd(y, fcForward(cfg, cc.g, w2));
    return y;
}

BlockGrads
distBlockBackward(const BlockDims &dims, const DistBlockConfig &cfg,
                  const BlockParams &params, const DistBlockCache &cache,
                  const DistMatrix &dy)
{
    const MeshShape mesh = cfg.mesh;
    const LocalAttn attn = localAttn(dims, mesh);

    DistMatrix wq = DistMatrix::scatter(params.wq, mesh);
    DistMatrix wk = DistMatrix::scatter(params.wk, mesh);
    DistMatrix wv = DistMatrix::scatter(params.wv, mesh);
    DistMatrix wo = DistMatrix::scatter(params.wo, mesh);
    DistMatrix w1 = DistMatrix::scatter(params.w1, mesh);
    DistMatrix w2 = DistMatrix::scatter(params.w2, mesh);

    BlockGrads grads;

    // FFN backward.
    grads.dw2 = fcBackwardWeight(cfg, cache.g, dy).gather();
    DistMatrix dg = fcBackwardData(cfg, dy, w2);
    DistMatrix df1(mesh, dg.rows(), dg.cols());
    for (int i = 0; i < mesh.rows; ++i)
        for (int j = 0; j < mesh.cols; ++j)
            df1.shardAt(i, j) = geluBackward(cache.f1.shardAt(i, j),
                                             dg.shardAt(i, j));
    grads.dw1 = fcBackwardWeight(cfg, cache.ln2, df1).gather();
    DistMatrix dln2 = fcBackwardData(cfg, df1, w1);
    DistMatrix dh = dy;
    distAdd(dh, distLayerNormBackward(cache.h, cache.stats2, dln2));

    // Attention backward.
    grads.dwo = fcBackwardWeight(cfg, cache.ctx, dh).gather();
    DistMatrix dctx = fcBackwardData(cfg, dh, wo);
    DistMatrix dq(mesh, dctx.rows(), dctx.cols());
    DistMatrix dk(mesh, dctx.rows(), dctx.cols());
    DistMatrix dv(mesh, dctx.rows(), dctx.cols());
    for (int i = 0; i < mesh.rows; ++i) {
        for (int j = 0; j < mesh.cols; ++j) {
            Matrix dq_s, dk_s, dv_s;
            attentionBackward(
                attn.seqs, dims.seq, attn.heads, dims.headDim,
                cache.q.shardAt(i, j), cache.k.shardAt(i, j),
                cache.v.shardAt(i, j),
                cache.probs[static_cast<size_t>(i * mesh.cols + j)],
                dctx.shardAt(i, j), &dq_s, &dk_s, &dv_s);
            dq.shardAt(i, j) = std::move(dq_s);
            dk.shardAt(i, j) = std::move(dk_s);
            dv.shardAt(i, j) = std::move(dv_s);
        }
    }
    grads.dwq = fcBackwardWeight(cfg, cache.ln1, dq).gather();
    grads.dwk = fcBackwardWeight(cfg, cache.ln1, dk).gather();
    grads.dwv = fcBackwardWeight(cfg, cache.ln1, dv).gather();
    DistMatrix dln1 = fcBackwardData(cfg, dq, wq);
    distAdd(dln1, fcBackwardData(cfg, dk, wk));
    distAdd(dln1, fcBackwardData(cfg, dv, wv));

    DistMatrix dx = dh;
    distAdd(dx, distLayerNormBackward(cache.x, cache.stats1, dln1));
    grads.dx = dx.gather();
    return grads;
}

} // namespace meshslice
