/**
 * @file
 * A transformer block trained with 2D tensor parallelism: every FC
 * GeMM (QKV, output projection, both FFN layers — forward and both
 * backward computations) runs through the *functional MeshSlice*
 * algorithm with the Table-1 Y-stationary dataflows, while attention,
 * GeLU, residuals and layer norms run chip-locally on the shards,
 * exactly as the paper prescribes (batch sharded over mesh rows,
 * heads over mesh columns; Sec 3.2.1 "Sharding").
 *
 * Layer-norm statistics require a per-token reduction across the
 * hidden dimension, which is sharded over the mesh columns; the
 * implementation performs that small cross-row-ring reduction
 * explicitly (the one place a non-FC operator communicates).
 *
 * The numerical outputs (activations and all weight gradients) must
 * match the dense reference block bit-for-bit-ish — verified in
 * tests/test_block_dist.cpp.
 */
#ifndef MESHSLICE_MODEL_BLOCK_DIST_HPP_
#define MESHSLICE_MODEL_BLOCK_DIST_HPP_

#include <vector>

#include "gemm/dist_matrix.hpp"
#include "gemm/ops.hpp"
#include "model/block_ref.hpp"

namespace meshslice {

/** How the distributed block runs its MeshSlice GeMMs. */
struct DistBlockConfig
{
    MeshShape mesh{1, 1};
    int sliceCount = 1; ///< MeshSlice S for every FC GeMM
    int block = 1;      ///< blocked-slicing B
};

/** Per-chip forward state kept for the backward pass. */
struct DistBlockCache
{
    DistMatrix x, ln1, q, k, v, ctx, attnOut, h, ln2, f1, g;
    std::vector<Matrix> probs;     ///< per chip, attention softmax rows
    std::vector<RowStats> stats1;  ///< per mesh row
    std::vector<RowStats> stats2;  ///< per mesh row
};

/**
 * Distributed forward pass. @p x is sharded on cfg.mesh (batch over
 * rows — mesh.rows must divide dims.batch; heads over columns —
 * mesh.cols must divide dims.heads). Params are dense and scattered
 * internally.
 */
DistMatrix distBlockForward(const BlockDims &dims,
                            const DistBlockConfig &cfg, const DistMatrix &x,
                            const BlockParams &params,
                            DistBlockCache *cache);

/**
 * Distributed backward pass from the sharded upstream gradient @p dy;
 * gradients are gathered to dense matrices for comparison against the
 * reference.
 */
BlockGrads distBlockBackward(const BlockDims &dims,
                             const DistBlockConfig &cfg,
                             const BlockParams &params,
                             const DistBlockCache &cache,
                             const DistMatrix &dy);

} // namespace meshslice

#endif // MESHSLICE_MODEL_BLOCK_DIST_HPP_
