/**
 * @file
 * A dense (single-chip) reference transformer block: pre-LayerNorm
 * multi-head self-attention plus a GeLU feed-forward network, with a
 * full analytical backward pass. Serves as the ground truth for the
 * distributed (MeshSlice-based) block in model/block_dist — the same
 * role the paper's single-TPU runs play for its cluster results.
 *
 * Structure (non-affine layer norms, no dropout):
 *   ln1 = LN(x); q,k,v = ln1 Wq|Wk|Wv; ctx = MHA(q,k,v)
 *   h = x + ctx Wo
 *   ln2 = LN(h); y = h + GeLU(ln2 W1) W2
 */
#ifndef MESHSLICE_MODEL_BLOCK_REF_HPP_
#define MESHSLICE_MODEL_BLOCK_REF_HPP_

#include "gemm/matrix.hpp"
#include "gemm/ops.hpp"

namespace meshslice {

/** Shape of a (small, testable) transformer block instance. */
struct BlockDims
{
    std::int64_t batch = 0;   ///< sequences
    std::int64_t seq = 0;     ///< tokens per sequence
    std::int64_t heads = 0;
    std::int64_t headDim = 0;
    std::int64_t ffn = 0;

    std::int64_t tokens() const { return batch * seq; }
    std::int64_t hidden() const { return heads * headDim; }
};

/** The block's six weight matrices. */
struct BlockParams
{
    Matrix wq, wk, wv; ///< hidden x hidden
    Matrix wo;         ///< hidden x hidden
    Matrix w1;         ///< hidden x ffn
    Matrix w2;         ///< ffn x hidden

    static BlockParams random(const BlockDims &dims, std::uint64_t seed);
};

/** Gradients produced by the backward pass. */
struct BlockGrads
{
    Matrix dwq, dwk, dwv, dwo, dw1, dw2;
    Matrix dx;
};

/** Forward activations cached for the backward pass. */
struct RefBlockCache
{
    Matrix x, ln1, q, k, v, probs, ctx, attnOut, h, ln2, f1, g;
    RowStats stats1, stats2;
};

/**
 * Multi-head attention on (tokens x hidden) q/k/v where tokens are
 * sequence-major and hidden is head-major: per (sequence, head),
 * softmax(q k^T / sqrt(d)) v. Returns the context and, if requested,
 * the concatenated per-(seq, head) softmax outputs (batch*heads*S rows
 * of S columns) for the backward pass.
 */
Matrix attentionForward(std::int64_t seqs, std::int64_t seq_len,
                        std::int64_t heads, std::int64_t head_dim,
                        const Matrix &q, const Matrix &k, const Matrix &v,
                        Matrix *probs_out);

/** Backward of `attentionForward`; fills dq/dk/dv. */
void attentionBackward(std::int64_t seqs, std::int64_t seq_len,
                       std::int64_t heads, std::int64_t head_dim,
                       const Matrix &q, const Matrix &k, const Matrix &v,
                       const Matrix &probs, const Matrix &dctx, Matrix *dq,
                       Matrix *dk, Matrix *dv);

/** Full block forward; caches everything needed for backward. */
Matrix refBlockForward(const BlockDims &dims, const Matrix &x,
                       const BlockParams &params, RefBlockCache *cache);

/** Full block backward from the upstream gradient @p dy. */
BlockGrads refBlockBackward(const BlockDims &dims,
                            const BlockParams &params,
                            const RefBlockCache &cache, const Matrix &dy);

} // namespace meshslice

#endif // MESHSLICE_MODEL_BLOCK_REF_HPP_
