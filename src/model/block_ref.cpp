#include "model/block_ref.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace meshslice {

BlockParams
BlockParams::random(const BlockDims &dims, std::uint64_t seed)
{
    const std::int64_t h = dims.hidden();
    // Scale down so activations stay O(1) through the GeMM chains.
    auto scaled = [](Matrix m, double s) {
        for (std::int64_t r = 0; r < m.rows(); ++r)
            for (std::int64_t c = 0; c < m.cols(); ++c)
                m.at(r, c) = static_cast<float>(m.at(r, c) * s);
        return m;
    };
    const double ws = 1.0 / std::sqrt(static_cast<double>(h));
    BlockParams p;
    p.wq = scaled(Matrix::random(h, h, seed + 1), ws);
    p.wk = scaled(Matrix::random(h, h, seed + 2), ws);
    p.wv = scaled(Matrix::random(h, h, seed + 3), ws);
    p.wo = scaled(Matrix::random(h, h, seed + 4), ws);
    p.w1 = scaled(Matrix::random(h, dims.ffn, seed + 5), ws);
    p.w2 = scaled(Matrix::random(dims.ffn, h, seed + 6),
                  1.0 / std::sqrt(static_cast<double>(dims.ffn)));
    return p;
}

namespace {

/** View of one (sequence, head) tile of a (tokens x hidden) matrix. */
Matrix
headTile(const Matrix &m, std::int64_t s, std::int64_t h,
         std::int64_t seq_len, std::int64_t head_dim)
{
    Matrix tile(seq_len, head_dim);
    for (std::int64_t r = 0; r < seq_len; ++r)
        for (std::int64_t c = 0; c < head_dim; ++c)
            tile.at(r, c) = m.at(s * seq_len + r, h * head_dim + c);
    return tile;
}

void
addHeadTile(Matrix &m, const Matrix &tile, std::int64_t s, std::int64_t h,
            std::int64_t seq_len, std::int64_t head_dim)
{
    for (std::int64_t r = 0; r < seq_len; ++r)
        for (std::int64_t c = 0; c < head_dim; ++c)
            m.at(s * seq_len + r, h * head_dim + c) += tile.at(r, c);
}

} // namespace

Matrix
attentionForward(std::int64_t seqs, std::int64_t seq_len,
                 std::int64_t heads, std::int64_t head_dim,
                 const Matrix &q, const Matrix &k, const Matrix &v,
                 Matrix *probs_out)
{
    const float scale =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(head_dim)));
    Matrix ctx(seqs * seq_len, heads * head_dim);
    Matrix probs(seqs * heads * seq_len, seq_len);
    for (std::int64_t s = 0; s < seqs; ++s) {
        for (std::int64_t h = 0; h < heads; ++h) {
            Matrix qt = headTile(q, s, h, seq_len, head_dim);
            Matrix kt = headTile(k, s, h, seq_len, head_dim);
            Matrix vt = headTile(v, s, h, seq_len, head_dim);
            Matrix scores = Matrix::gemm(qt, kt.transpose());
            for (std::int64_t r = 0; r < seq_len; ++r)
                for (std::int64_t c = 0; c < seq_len; ++c)
                    scores.at(r, c) *= scale;
            Matrix p = softmaxRows(scores);
            Matrix out = Matrix::gemm(p, vt);
            addHeadTile(ctx, out, s, h, seq_len, head_dim);
            // Stash p row-block for backward.
            const std::int64_t base = (s * heads + h) * seq_len;
            for (std::int64_t r = 0; r < seq_len; ++r)
                for (std::int64_t c = 0; c < seq_len; ++c)
                    probs.at(base + r, c) = p.at(r, c);
        }
    }
    if (probs_out)
        *probs_out = std::move(probs);
    return ctx;
}

void
attentionBackward(std::int64_t seqs, std::int64_t seq_len,
                  std::int64_t heads, std::int64_t head_dim,
                  const Matrix &q, const Matrix &k, const Matrix &v,
                  const Matrix &probs, const Matrix &dctx, Matrix *dq,
                  Matrix *dk, Matrix *dv)
{
    const float scale =
        static_cast<float>(1.0 / std::sqrt(static_cast<double>(head_dim)));
    *dq = Matrix(q.rows(), q.cols());
    *dk = Matrix(k.rows(), k.cols());
    *dv = Matrix(v.rows(), v.cols());
    for (std::int64_t s = 0; s < seqs; ++s) {
        for (std::int64_t h = 0; h < heads; ++h) {
            Matrix qt = headTile(q, s, h, seq_len, head_dim);
            Matrix kt = headTile(k, s, h, seq_len, head_dim);
            Matrix vt = headTile(v, s, h, seq_len, head_dim);
            Matrix dct = headTile(dctx, s, h, seq_len, head_dim);
            Matrix p(seq_len, seq_len);
            const std::int64_t base = (s * heads + h) * seq_len;
            for (std::int64_t r = 0; r < seq_len; ++r)
                for (std::int64_t c = 0; c < seq_len; ++c)
                    p.at(r, c) = probs.at(base + r, c);

            // dv = p^T dctx; dp = dctx v^T; dscores = softmax'(p, dp).
            Matrix dvt = Matrix::gemm(p.transpose(), dct);
            Matrix dp = Matrix::gemm(dct, vt.transpose());
            Matrix ds = softmaxRowsBackward(p, dp);
            for (std::int64_t r = 0; r < seq_len; ++r)
                for (std::int64_t c = 0; c < seq_len; ++c)
                    ds.at(r, c) *= scale;
            Matrix dqt = Matrix::gemm(ds, kt);
            Matrix dkt = Matrix::gemm(ds.transpose(), qt);
            addHeadTile(*dq, dqt, s, h, seq_len, head_dim);
            addHeadTile(*dk, dkt, s, h, seq_len, head_dim);
            addHeadTile(*dv, dvt, s, h, seq_len, head_dim);
        }
    }
}

Matrix
refBlockForward(const BlockDims &dims, const Matrix &x,
                const BlockParams &params, RefBlockCache *cache)
{
    if (x.rows() != dims.tokens() || x.cols() != dims.hidden())
        panic("refBlockForward: x must be tokens x hidden");
    RefBlockCache local;
    RefBlockCache &cc = cache ? *cache : local;
    cc.x = x;
    cc.ln1 = layerNormForward(x, &cc.stats1);
    cc.q = Matrix::gemm(cc.ln1, params.wq);
    cc.k = Matrix::gemm(cc.ln1, params.wk);
    cc.v = Matrix::gemm(cc.ln1, params.wv);
    cc.ctx = attentionForward(dims.batch, dims.seq, dims.heads,
                              dims.headDim, cc.q, cc.k, cc.v, &cc.probs);
    cc.attnOut = Matrix::gemm(cc.ctx, params.wo);
    cc.h = x;
    cc.h.add(cc.attnOut);
    cc.ln2 = layerNormForward(cc.h, &cc.stats2);
    cc.f1 = Matrix::gemm(cc.ln2, params.w1);
    cc.g = geluForward(cc.f1);
    Matrix y = cc.h;
    y.add(Matrix::gemm(cc.g, params.w2));
    return y;
}

BlockGrads
refBlockBackward(const BlockDims &dims, const BlockParams &params,
                 const RefBlockCache &cache, const Matrix &dy)
{
    BlockGrads grads;

    // FFN: y = h + GeLU(ln2 W1) W2.
    grads.dw2 = Matrix::gemm(cache.g.transpose(), dy);
    Matrix dg = Matrix::gemm(dy, params.w2.transpose());
    Matrix df1 = geluBackward(cache.f1, dg);
    grads.dw1 = Matrix::gemm(cache.ln2.transpose(), df1);
    Matrix dln2 = Matrix::gemm(df1, params.w1.transpose());
    Matrix dh = dy;
    dh.add(layerNormBackwardFull(cache.h, cache.stats2, dln2));

    // Attention: h = x + MHA(ln1) Wo.
    grads.dwo = Matrix::gemm(cache.ctx.transpose(), dh);
    Matrix dctx = Matrix::gemm(dh, params.wo.transpose());
    Matrix dq, dk, dv;
    attentionBackward(dims.batch, dims.seq, dims.heads, dims.headDim,
                      cache.q, cache.k, cache.v, cache.probs, dctx, &dq,
                      &dk, &dv);
    grads.dwq = Matrix::gemm(cache.ln1.transpose(), dq);
    grads.dwk = Matrix::gemm(cache.ln1.transpose(), dk);
    grads.dwv = Matrix::gemm(cache.ln1.transpose(), dv);
    Matrix dln1 = Matrix::gemm(dq, params.wq.transpose());
    dln1.add(Matrix::gemm(dk, params.wk.transpose()));
    dln1.add(Matrix::gemm(dv, params.wv.transpose()));

    grads.dx = dh;
    grads.dx.add(layerNormBackwardFull(cache.x, cache.stats1, dln1));
    return grads;
}

} // namespace meshslice
