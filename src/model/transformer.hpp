/**
 * @file
 * Transformer LLM workload definitions (Sec 4.4).
 *
 * A transformer block has four FC layers — two in multi-head attention
 * (QKV projection and output projection) and two in the feed-forward
 * network. Training each FC layer runs three GeMMs: forward
 * (Y = X W), backward-data (X' = Y' W^T) and backward-weight
 * (W' = X^T Y'). Only the FC layers communicate under 2D TP; the other
 * operators run chip-locally (Sec 4.4) and are covered by an analytical
 * roofline estimate standing in for the paper's single-TPU benchmarks.
 */
#ifndef MESHSLICE_MODEL_TRANSFORMER_HPP_
#define MESHSLICE_MODEL_TRANSFORMER_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/chip_config.hpp"
#include "util/units.hpp"

namespace meshslice {

/** Architecture of a transformer LLM. */
struct TransformerConfig
{
    std::string name;
    std::int64_t layers = 0;     ///< transformer blocks
    std::int64_t hiddenDim = 0;  ///< H = heads * headDim
    std::int64_t heads = 0;
    std::int64_t ffnDim = 0;     ///< feed-forward inner dimension
    std::int64_t vocab = 51200;

    std::int64_t headDim() const { return hiddenDim / heads; }

    /** Approximate parameter count of the block stack. */
    double
    parameterCount() const
    {
        const double h = static_cast<double>(hiddenDim);
        const double f = static_cast<double>(ffnDim);
        // QKV (h x 3h) + proj (h x h) + FFN (2 * h * f) per block.
        return static_cast<double>(layers) * (4.0 * h * h + 2.0 * h * f);
    }
};

/** OpenAI GPT-3 175B (Brown et al.). */
TransformerConfig gpt3Config();

/** NVIDIA/Microsoft Megatron-Turing NLG 530B (Smith et al.). */
TransformerConfig megatronNlgConfig();

/** Training hyperparameters (Sec 5.1.1). */
struct TrainingConfig
{
    std::int64_t batch = 0;     ///< sequences per step
    std::int64_t seqLen = 2048; ///< tokens per sequence

    std::int64_t tokens() const { return batch * seqLen; }

    /** Weak scaling: batch = chips / 2 (the Megatron-NLG recipe). */
    static TrainingConfig
    weakScaling(int chips)
    {
        return TrainingConfig{chips / 2, 2048};
    }
};

/** The three training computations of an FC layer. */
enum class Pass { kForward, kBackwardData, kBackwardWeight };

const char *passName(Pass pass);

/**
 * One FC-layer GeMM in training, in computational form: an m x n
 * output contracting k.
 */
struct FcGemm
{
    std::string name; ///< e.g. "qkv.fwd"
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;
    Pass pass = Pass::kForward;
    int fcLayer = 0; ///< 0=QKV, 1=proj, 2=FFN1, 3=FFN2

    Flops
    flops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);
    }
};

/**
 * The 12 FC GeMMs of one transformer block (4 layers x 3 passes) at
 * the given batch/sequence.
 */
std::vector<FcGemm> blockFcGemms(const TransformerConfig &model,
                                 const TrainingConfig &train);

/**
 * The distinct GeMM shapes among `blockFcGemms` (transpose-equivalent
 * shapes merged) — the paper's "eight distinct GeMM operations"
 * (Sec 5.1.4), annotated with how many block GeMMs share each shape.
 */
struct WeightedFcGemm
{
    FcGemm gemm;
    int count = 1;
};
std::vector<WeightedFcGemm> distinctFcGemms(const TransformerConfig &model,
                                            const TrainingConfig &train);

/**
 * Estimated per-chip execution time of one block's non-FC operators
 * (attention score/context GeMMs, softmax, layernorm, GeLU, residual)
 * for forward plus backward, with activations sharded over @p chips.
 * Roofline: batched attention GeMMs at matrix-unit throughput,
 * element-wise traffic at HBM bandwidth. Substitutes the paper's
 * single-TPU measurements.
 */
Time nonFcBlockTime(const ChipConfig &cfg, const TransformerConfig &model,
                    const TrainingConfig &train, int chips);

} // namespace meshslice

#endif // MESHSLICE_MODEL_TRANSFORMER_HPP_
