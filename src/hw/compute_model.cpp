#include "hw/compute_model.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace meshslice {

Flops
gemmFlops(const GemmWork &work)
{
    if (work.empty())
        return 0.0;
    return 2.0 * static_cast<double>(work.m) * static_cast<double>(work.k) *
           static_cast<double>(work.n);
}

double
gemmPadEfficiency(const ChipConfig &cfg, const GemmWork &work)
{
    if (work.empty())
        return 1.0;
    const double t = static_cast<double>(cfg.systolicDim);
    auto dim_eff = [t](std::int64_t d) {
        double dd = static_cast<double>(d);
        return dd / (t * static_cast<double>(ceilDiv(d, (std::int64_t)t)));
    };
    return dim_eff(work.m) * dim_eff(work.k) * dim_eff(work.n);
}

namespace {

/**
 * Pick the output tile edge T (multiple of the systolic dim, at most
 * 1024) and the K-panel depth so that a double-buffered pair of input
 * panels fits in the scratchpad.
 */
struct Tiling
{
    std::int64_t tileEdge;
    std::int64_t kPanel;
};

Tiling
chooseTiling(const ChipConfig &cfg, const GemmWork &work)
{
    const std::int64_t unit = cfg.systolicDim;
    const std::int64_t e = cfg.bytesPerElement;
    const Bytes half = cfg.scratchpadBytes / 2; // double buffering

    std::int64_t best_t = unit;
    std::int64_t best_kp = std::min<std::int64_t>(work.k, unit);
    for (std::int64_t t = 8 * unit; t >= unit; t -= unit) {
        // Largest k-panel fitting two t-wide panels in half the pad.
        std::int64_t kp = half / (2 * t * e);
        kp = std::min(kp, work.k);
        kp = std::max<std::int64_t>(kp, 1);
        if (2 * t * kp * e <= half) {
            best_t = t;
            best_kp = kp;
            break;
        }
    }
    return Tiling{best_t, best_kp};
}

} // namespace

Bytes
gemmHbmTraffic(const ChipConfig &cfg, const GemmWork &work)
{
    if (work.empty())
        return 0;
    const Tiling tiling = chooseTiling(cfg, work);
    const std::int64_t e = cfg.bytesPerElement;
    const std::int64_t tiles_m = ceilDiv(work.m, tiling.tileEdge);
    const std::int64_t tiles_n = ceilDiv(work.n, tiling.tileEdge);
    const std::int64_t k_chunks = ceilDiv(work.k, tiling.kPanel);

    // Each output tile streams an A panel and a B panel per K chunk.
    Bytes input_bytes = (work.m * work.k * tiles_n // A panels
                         + work.k * work.n * tiles_m) // B panels
                        * e;
    // The accumulator tile is read+written once per K chunk beyond the
    // first write (we count a conservative read+write per chunk).
    Bytes output_bytes = 2 * work.m * work.n * e * k_chunks;
    return input_bytes + output_bytes;
}

Time
gemmIdealTime(const ChipConfig &cfg, const GemmWork &work)
{
    if (work.empty())
        return 0.0;
    const double eff = gemmPadEfficiency(cfg, work);
    const Time compute = gemmFlops(work) / (cfg.peakFlops * eff);
    const Time memory =
        static_cast<double>(gemmHbmTraffic(cfg, work)) / cfg.hbmBandwidth;
    return std::max(compute, memory);
}

Rate
gemmEffectiveFlops(const ChipConfig &cfg, const GemmWork &work)
{
    if (work.empty())
        panic("gemmEffectiveFlops: empty GeMM");
    return gemmFlops(work) / gemmIdealTime(cfg, work);
}

} // namespace meshslice
