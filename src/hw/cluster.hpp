/**
 * @file
 * A simulated cluster of accelerator chips.
 *
 * Each chip contributes two shared resources to the fluid network: its
 * compute core (capacity = peak FLOP/s) and its HBM (capacity = memory
 * bandwidth). For ring collectives the NIC has no throughput limit of
 * its own — per the paper's TPU model (Fig 8) it drives four
 * independent ICI links and contends with the cores only through the
 * shared HBM, which is exactly how transfers are modelled there: a link
 * flow demands the link plus the source and destination HBMs. The
 * one-sided layer (`net/onesided`) additionally models NIC *queue
 * occupancy*: many concurrent RDMA gets can land on one chip, so each
 * chip exposes a lazily-registered `chip<i>.nic` resource whose
 * capacity is the aggregate bandwidth of its four ICI links — beyond
 * four concurrent full-rate gets the NIC queue becomes the bottleneck.
 * Lazy registration keeps runs that never issue one-sided ops
 * bit-identical (and their resource-stats dumps unchanged).
 */
#ifndef MESHSLICE_HW_CLUSTER_HPP_
#define MESHSLICE_HW_CLUSTER_HPP_

#include <functional>
#include <string>
#include <vector>

#include "hw/chip_config.hpp"
#include "hw/compute_model.hpp"
#include "sim/critical_path.hpp"
#include "sim/fault.hpp"
#include "sim/fluid.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace meshslice {

/** Trace lanes within one chip. */
enum TraceLane : int
{
    kLaneCompute = 0,
    kLaneHorizontalComm = 1,
    kLaneVerticalComm = 2,
};

/**
 * Owns the simulator, the fluid network and the per-chip resources.
 * Topologies (torus/ring) add link resources on top via `addLink`.
 */
class Cluster
{
  public:
    Cluster(const ChipConfig &cfg, int num_chips);

    int numChips() const { return static_cast<int>(chips_.size()); }
    const ChipConfig &config() const { return cfg_; }

    Simulator &sim() { return sim_; }
    FluidNetwork &net() { return net_; }
    TraceRecorder &trace() { return trace_; }
    StatsRegistry &stats() { return stats_; }
    const StatsRegistry &stats() const { return stats_; }
    SpanRecorder &profiler() { return profiler_; }
    const SpanRecorder &profiler() const { return profiler_; }

    /**
     * Switch the critical-path profiler on/off. Enabling also makes
     * the fluid network publish per-flow binding/throttle info, which
     * executors fold into their span nodes. Purely observational:
     * simulated times and event counts are bit-identical either way.
     */
    void
    enableProfiler(bool on)
    {
        profiler_.setEnabled(on);
        net_.setPublishFlowInfo(on);
    }

    ResourceId coreOf(int chip) const { return chips_.at(chip).core; }
    ResourceId hbmOf(int chip) const { return chips_.at(chip).hbm; }

    /**
     * The chip's NIC queue resource ("chip<i>.nic"), registered on
     * first use at `kNicLinksPerChip` times the per-link bandwidth.
     * NOTE: resources registered after a `FaultInjector::arm()` are not
     * fault targets (same precedent as detour links) — scenarios
     * address the NIC indirectly through the chip's HBM and links.
     */
    ResourceId nicOf(int chip);

    /** Independent ICI links a chip's NIC drives (TPU model, Fig 8). */
    static constexpr double kNicLinksPerChip = 4.0;

    /**
     * Attach a fault injector (non-owning; may be nullptr to detach).
     * Collectives consult it for launch jitter and link availability;
     * a cluster with no injector attached takes the exact code paths
     * of the fault-free simulator.
     */
    void attachFaults(FaultInjector *injector) { faults_ = injector; }

    /** The attached injector, or nullptr (the fault-free fast path). */
    FaultInjector *faults() const { return faults_; }

    /**
     * A fail-stop failure observed by a collective (or synthesized by
     * the elastic runtime's watchdog): which op saw it, which resource
     * died, the owning chip (-1 for a link), and the simulated time
     * detection completed.
     */
    struct Failure
    {
        std::string op;
        std::string deadResource;
        int deadChip = -1;
        Time detectedAt = 0.0;
    };

    /**
     * Install a cluster-level fail-stop handler. When set, a ring
     * collective that completes its fail-stop teardown with no
     * per-operation recovery continuation does NOT `fatal()` — it
     * reports the failure here instead, and the handler (the elastic
     * runtime) is expected to stop the simulator and run the recovery
     * transaction. Without a handler the historical behaviour stands:
     * an unhandled kill aborts the process.
     */
    void
    setFailStopHandler(std::function<void(const Failure &)> handler)
    {
        failStopHandler_ = std::move(handler);
    }

    /** The installed handler, or an empty function. */
    const std::function<void(const Failure &)> &
    failStopHandler() const
    {
        return failStopHandler_;
    }

    /** Register a directed link resource (used by topology builders). */
    ResourceId addLink(const std::string &name);

    /**
     * Run a local GeMM on @p chip: a flow on the chip's core (demand
     * scaled by the shape's padding inefficiency) and HBM (demand =
     * bytes/FLOP of the tiled schedule). Calls @p done on completion.
     * Returns the compute flow's id (-1 for empty work, which completes
     * via a zero-delay event instead of a flow) so fail-stop aware
     * executors can cancel a killed chip's in-flight compute.
     */
    FlowId runGemm(int chip, const GemmWork &work,
                   std::function<void()> done);

    /** Total FLOPs issued through runGemm so far (for utilization). */
    Flops issuedFlops() const { return issuedFlops_; }

    /** Account @p bytes of communication (called per link transfer). */
    void
    noteCommBytes(Bytes bytes)
    {
        commBytesIssued_ += bytes;
    }

    /** Total bytes pushed through links so far (counter-track source). */
    Bytes commBytesIssued() const { return commBytesIssued_; }

    /**
     * If tracing is enabled, emit one sample of the cluster-wide
     * counter tracks (cumulative issued FLOPs and link bytes) at the
     * current simulated time. Collectives and GeMM completions call
     * this so Perfetto shows the Figure-4 counters next to the lanes.
     */
    void sampleCounters();

    /**
     * Dump the fluid network's per-resource accounting into @p stats:
     * for every chip core, HBM and ICI link — capacity, busy/idle/
     * contention seconds, units moved and achieved-vs-peak rate —
     * plus the conservation inputs (`observed_s`). Names follow the
     * registry hierarchy, e.g. `chip3/hbm/busy_s` or
     * `link/E/b0/r0/c1/bytes`.
     */
    void collectResourceStats(StatsRegistry &stats) const;

  private:
    struct ChipResources
    {
        ResourceId core;
        ResourceId hbm;
        ResourceId nic = -1; ///< lazily registered (see nicOf)
    };

    ChipConfig cfg_;
    Simulator sim_;
    FluidNetwork net_;
    TraceRecorder trace_;
    StatsRegistry stats_;
    SpanRecorder profiler_;
    std::vector<ChipResources> chips_;
    FaultInjector *faults_ = nullptr;
    std::function<void(const Failure &)> failStopHandler_;
    Flops issuedFlops_ = 0.0;
    Bytes commBytesIssued_ = 0;
};

} // namespace meshslice

#endif // MESHSLICE_HW_CLUSTER_HPP_
