/**
 * @file
 * A simulated cluster of accelerator chips.
 *
 * Each chip contributes two shared resources to the fluid network: its
 * compute core (capacity = peak FLOP/s) and its HBM (capacity = memory
 * bandwidth). The NIC has no throughput limit of its own — per the
 * paper's TPU model (Fig 8) it drives four independent ICI links and
 * contends with the cores only through the shared HBM, which is exactly
 * how transfers are modelled here: a link flow demands the link plus the
 * source and destination HBMs.
 */
#ifndef MESHSLICE_HW_CLUSTER_HPP_
#define MESHSLICE_HW_CLUSTER_HPP_

#include <functional>
#include <string>
#include <vector>

#include "hw/chip_config.hpp"
#include "hw/compute_model.hpp"
#include "sim/fluid.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace meshslice {

/** Trace lanes within one chip. */
enum TraceLane : int
{
    kLaneCompute = 0,
    kLaneHorizontalComm = 1,
    kLaneVerticalComm = 2,
};

/**
 * Owns the simulator, the fluid network and the per-chip resources.
 * Topologies (torus/ring) add link resources on top via `addLink`.
 */
class Cluster
{
  public:
    Cluster(const ChipConfig &cfg, int num_chips);

    int numChips() const { return static_cast<int>(chips_.size()); }
    const ChipConfig &config() const { return cfg_; }

    Simulator &sim() { return sim_; }
    FluidNetwork &net() { return net_; }
    TraceRecorder &trace() { return trace_; }

    ResourceId coreOf(int chip) const { return chips_.at(chip).core; }
    ResourceId hbmOf(int chip) const { return chips_.at(chip).hbm; }

    /** Register a directed link resource (used by topology builders). */
    ResourceId addLink(const std::string &name);

    /**
     * Run a local GeMM on @p chip: a flow on the chip's core (demand
     * scaled by the shape's padding inefficiency) and HBM (demand =
     * bytes/FLOP of the tiled schedule). Calls @p done on completion.
     */
    void runGemm(int chip, const GemmWork &work, std::function<void()> done);

    /** Total FLOPs issued through runGemm so far (for utilization). */
    Flops issuedFlops() const { return issuedFlops_; }

  private:
    struct ChipResources
    {
        ResourceId core;
        ResourceId hbm;
    };

    ChipConfig cfg_;
    Simulator sim_;
    FluidNetwork net_;
    TraceRecorder trace_;
    std::vector<ChipResources> chips_;
    Flops issuedFlops_ = 0.0;
};

} // namespace meshslice

#endif // MESHSLICE_HW_CLUSTER_HPP_
