#include "hw/cluster.hpp"

#include "util/logging.hpp"

namespace meshslice {

Cluster::Cluster(const ChipConfig &cfg, int num_chips)
    : cfg_(cfg), net_(sim_)
{
    if (num_chips <= 0)
        panic("Cluster: need at least one chip");
    chips_.reserve(static_cast<size_t>(num_chips));
    for (int c = 0; c < num_chips; ++c) {
        ChipResources res;
        res.core = net_.addResource(strprintf("chip%d.core", c),
                                    cfg_.peakFlops);
        res.hbm = net_.addResource(strprintf("chip%d.hbm", c),
                                   cfg_.hbmBandwidth);
        chips_.push_back(res);
    }
}

ResourceId
Cluster::addLink(const std::string &name)
{
    return net_.addResource(name, cfg_.iciLinkBandwidth /
                                      cfg_.logicalMeshContention);
}

void
Cluster::runGemm(int chip, const GemmWork &work, std::function<void()> done)
{
    if (work.empty()) {
        sim_.scheduleAfter(0.0, std::move(done));
        return;
    }
    const Flops flops = gemmFlops(work);
    issuedFlops_ += flops;

    // Core demand: padding inefficiency consumes extra core-cycles per
    // useful FLOP, so the solo rate is peak * efficiency.
    const double core_demand = 1.0 / gemmPadEfficiency(cfg_, work);
    // HBM demand: bytes per useful FLOP of the tiled schedule.
    const double hbm_demand =
        static_cast<double>(gemmHbmTraffic(cfg_, work)) / flops;

    const Time begin = sim_.now();
    const bool tracing = trace_.enabled();
    auto cb = [this, chip, begin, tracing, done = std::move(done)] {
        if (tracing)
            trace_.record("gemm", "compute", chip, kLaneCompute, begin,
                          sim_.now());
        done();
    };
    net_.startFlow(flops,
                   {Demand{coreOf(chip), core_demand},
                    Demand{hbmOf(chip), hbm_demand}},
                   std::move(cb));
}

} // namespace meshslice
