#include "hw/cluster.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace meshslice {

namespace {

/**
 * Registry path of a fluid resource: the resource names use '.' as a
 * separator ("chip3.hbm", "link.E.b0.r0.c1"), the stats hierarchy uses
 * '/'.
 */
std::string
statsPathOf(const std::string &resource_name)
{
    std::string path = resource_name;
    std::replace(path.begin(), path.end(), '.', '/');
    return path;
}

} // namespace

Cluster::Cluster(const ChipConfig &cfg, int num_chips)
    : cfg_(cfg), net_(sim_)
{
    validateChipConfig(cfg_);
    if (num_chips <= 0)
        fatal("Cluster: need at least one chip (got %d)", num_chips);
    chips_.reserve(static_cast<size_t>(num_chips));
    for (int c = 0; c < num_chips; ++c) {
        ChipResources res;
        res.core = net_.addResource(strprintf("chip%d.core", c),
                                    cfg_.peakFlops);
        res.hbm = net_.addResource(strprintf("chip%d.hbm", c),
                                   cfg_.hbmBandwidth);
        chips_.push_back(res);
        // Perfetto lane names ("chip 3" / "row comm") — metadata is
        // recorded even while tracing is disabled so lanes are named
        // regardless of when the recorder gets switched on.
        trace_.setProcessName(c, strprintf("chip %d", c));
        trace_.setThreadName(c, kLaneCompute, "compute");
        trace_.setThreadName(c, kLaneHorizontalComm, "row comm");
        trace_.setThreadName(c, kLaneVerticalComm, "col comm");
    }
}

ResourceId
Cluster::addLink(const std::string &name)
{
    return net_.addResource(name, cfg_.iciLinkBandwidth /
                                      cfg_.logicalMeshContention);
}

ResourceId
Cluster::nicOf(int chip)
{
    ChipResources &res = chips_.at(static_cast<size_t>(chip));
    if (res.nic < 0)
        res.nic = net_.addResource(
            strprintf("chip%d.nic", chip),
            kNicLinksPerChip * cfg_.iciLinkBandwidth /
                cfg_.logicalMeshContention);
    return res.nic;
}

void
Cluster::sampleCounters()
{
    if (!trace_.enabled())
        return;
    trace_.recordCounter(
        "cluster", 0, sim_.now(),
        {{"issued_gflops", issuedFlops_ * 1e-9},
         {"comm_mbytes", static_cast<double>(commBytesIssued_) * 1e-6}});
}

void
Cluster::collectResourceStats(StatsRegistry &stats) const
{
    if (!stats.enabled())
        return;
    const Time now = sim_.now();
    for (size_t r = 0; r < net_.resourceCount(); ++r) {
        const ResourceStats rs =
            net_.resourceStats(static_cast<ResourceId>(r));
        const std::string base = statsPathOf(rs.name);
        const double observed = now - rs.createdAt;
        stats.set(base + "/capacity", rs.capacity);
        stats.set(base + "/busy_s", rs.busyTime);
        stats.set(base + "/idle_s", rs.idleTime);
        stats.set(base + "/contention_s", rs.contentionTime);
        stats.set(base + "/observed_s", observed);
        stats.set(base + "/consumed", rs.totalConsumed);
        // Achieved vs peak: fraction of the capacity actually moved
        // over the whole observation window.
        stats.set(base + "/achieved_frac",
                  observed > 0.0
                      ? rs.totalConsumed / (rs.capacity * observed)
                      : 0.0);
    }
}

FlowId
Cluster::runGemm(int chip, const GemmWork &work, std::function<void()> done)
{
    if (work.empty()) {
        sim_.scheduleAfter(0.0, std::move(done));
        return FlowId{-1};
    }
    const Flops flops = gemmFlops(work);
    issuedFlops_ += flops;

    // Core demand: padding inefficiency consumes extra core-cycles per
    // useful FLOP, so the solo rate is peak * efficiency.
    const double core_demand = 1.0 / gemmPadEfficiency(cfg_, work);
    // HBM demand: bytes per useful FLOP of the tiled schedule.
    const double hbm_demand =
        static_cast<double>(gemmHbmTraffic(cfg_, work)) / flops;

    const Time begin = sim_.now();
    const bool tracing = trace_.enabled();
    const bool prof = profiler_.enabled();
    // Snapshot the ambient task scope now: the completion callback
    // runs outside the synchronous task body.
    const int prof_task = prof ? profiler_.currentTask() : -1;
    std::vector<int> prof_deps;
    if (prof)
        prof_deps = profiler_.ambientDeps();
    auto cb = [this, chip, begin, tracing, prof, prof_task, flops,
               prof_deps = std::move(prof_deps),
               done = std::move(done)]() mutable {
        if (tracing) {
            trace_.record("gemm", "compute", chip, kLaneCompute, begin,
                          sim_.now());
            sampleCounters();
        }
        if (stats_.enabled()) {
            stats_.add("gemm/count", 1.0);
            stats_.add("gemm/flops", flops);
            stats_.observe("gemm/span_s", sim_.now() - begin);
        }
        if (prof) {
            int node = profiler_.addNode(
                strprintf("gemm c%d", chip), SpanCategory::kCompute,
                begin, sim_.now(), std::move(prof_deps), chip);
            profiler_.setNodeResource(node, net_.lastFinishedFlow());
            profiler_.addTaskExit(prof_task, node);
            profiler_.beginChain(prof_task, {node});
            done();
            profiler_.endChain();
        } else {
            done();
        }
    };
    return net_.startFlow(flops,
                          {Demand{coreOf(chip), core_demand},
                           Demand{hbmOf(chip), hbm_demand}},
                          std::move(cb));
}

} // namespace meshslice
