/**
 * @file
 * Tiled-GeMM compute model of one accelerator chip.
 *
 * Mirrors the paper's simulated TPU core (Sec 4.1): a GeMM request is
 * broken into output tiles; each tile's input panels are prefetched from
 * HBM into the scratchpad (software-pipelined with the multiplications).
 * The model produces (a) the FLOP count, (b) the systolic-array efficiency
 * lost to padding partial tiles — which is what makes fine-grain partial
 * GeMMs slower, as observed in Sec 5.3.1 — and (c) the HBM traffic implied
 * by the tiling, which drives NIC<->core memory contention in the fluid
 * network.
 */
#ifndef MESHSLICE_HW_COMPUTE_MODEL_HPP_
#define MESHSLICE_HW_COMPUTE_MODEL_HPP_

#include <cstdint>

#include "hw/chip_config.hpp"
#include "util/units.hpp"

namespace meshslice {

/** Dimensions of one local (per-chip) GeMM: C[m,n] += A[m,k] * B[k,n]. */
struct GemmWork
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;

    bool empty() const { return m <= 0 || k <= 0 || n <= 0; }
};

/** FLOPs of a (multiply-add counted as 2) GeMM. */
Flops gemmFlops(const GemmWork &work);

/**
 * Fraction of systolic-array throughput retained after padding every
 * dimension to the array size. In (0, 1].
 */
double gemmPadEfficiency(const ChipConfig &cfg, const GemmWork &work);

/**
 * HBM bytes moved by the tiled GeMM (input panel streaming plus output
 * accumulate read+write), given the scratchpad-constrained tile choice.
 */
Bytes gemmHbmTraffic(const ChipConfig &cfg, const GemmWork &work);

/**
 * Execution time of the GeMM on an otherwise idle chip: the larger of the
 * padded compute time and the HBM streaming time (the prefetch pipeline
 * overlaps the two).
 */
Time gemmIdealTime(const ChipConfig &cfg, const GemmWork &work);

/**
 * Effective sustained FLOP/s for this shape on an idle chip
 * (gemmFlops / gemmIdealTime).
 */
Rate gemmEffectiveFlops(const ChipConfig &cfg, const GemmWork &work);

} // namespace meshslice

#endif // MESHSLICE_HW_COMPUTE_MODEL_HPP_
