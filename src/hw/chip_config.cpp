#include "hw/chip_config.hpp"

#include "util/logging.hpp"

namespace meshslice {

void
validateChipConfig(const ChipConfig &cfg)
{
    if (cfg.peakFlops <= 0.0)
        fatal("ChipConfig: peakFlops must be positive (got %g FLOP/s)",
              cfg.peakFlops);
    if (cfg.hbmBandwidth <= 0.0)
        fatal("ChipConfig: hbmBandwidth must be positive (got %g B/s)",
              cfg.hbmBandwidth);
    if (cfg.iciLinkBandwidth <= 0.0)
        fatal("ChipConfig: iciLinkBandwidth must be positive (got %g B/s)",
              cfg.iciLinkBandwidth);
    if (cfg.hostDmaBandwidth <= 0.0)
        fatal("ChipConfig: hostDmaBandwidth must be positive (got %g B/s)",
              cfg.hostDmaBandwidth);
    if (cfg.syncLatency < 0.0)
        fatal("ChipConfig: syncLatency must be >= 0 (got %g s)",
              cfg.syncLatency);
    if (cfg.launchOverhead < 0.0)
        fatal("ChipConfig: launchOverhead must be >= 0 (got %g s)",
              cfg.launchOverhead);
    if (cfg.systolicDim <= 0)
        fatal("ChipConfig: systolicDim must be positive (got %lld)",
              static_cast<long long>(cfg.systolicDim));
    if (cfg.memBlockCols <= 0)
        fatal("ChipConfig: memBlockCols must be positive (got %lld)",
              static_cast<long long>(cfg.memBlockCols));
    if (cfg.scratchpadBytes <= 0)
        fatal("ChipConfig: scratchpadBytes must be positive (got %lld)",
              static_cast<long long>(cfg.scratchpadBytes));
    if (cfg.hbmCapacity <= 0)
        fatal("ChipConfig: hbmCapacity must be positive (got %lld)",
              static_cast<long long>(cfg.hbmCapacity));
    if (cfg.bytesPerElement <= 0)
        fatal("ChipConfig: bytesPerElement must be positive (got %d)",
              cfg.bytesPerElement);
    if (cfg.logicalMeshContention < 1.0)
        fatal("ChipConfig: logicalMeshContention must be >= 1 (got %g); "
              "1.0 models a physical torus, larger values model logical "
              "meshes sharing a network", cfg.logicalMeshContention);
}

} // namespace meshslice
