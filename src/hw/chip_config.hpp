/**
 * @file
 * Per-chip hardware parameters of the simulated ML accelerator.
 *
 * Defaults model Google's TPUv4 as described in the paper (Sec 4.1,
 * Fig 8): two cores with 128x128 systolic arrays and 64 MB scratchpads
 * sharing an HBM with a NIC; four ICI links per chip forming a 2D torus.
 * The paper quotes 272 TFLOPS peak per chip (Sec 5.1.1) and memory access
 * in 128x8 blocks, which fixes the slicing block size B = 8 (Sec 3.1.2).
 */
#ifndef MESHSLICE_HW_CHIP_CONFIG_HPP_
#define MESHSLICE_HW_CHIP_CONFIG_HPP_

#include <cstdint>

#include "util/units.hpp"

namespace meshslice {

/** Static description of one accelerator chip and its ICI interface. */
struct ChipConfig
{
    /** Peak matrix-unit throughput (both cores combined), FLOP/s. */
    Rate peakFlops = TFLOPS(272.0);

    /** HBM bandwidth shared by the cores and the NIC. */
    Rate hbmBandwidth = GBps(1200.0);

    /** Bandwidth of one ICI link direction. */
    Rate iciLinkBandwidth = GBps(45.0);

    /**
     * HBM→host DMA bandwidth per chip (PCIe / DMA engine). This is
     * what a checkpoint write is limited by: all chips drain their
     * optimizer/weight state to host storage in parallel, so the
     * checkpoint cost is bytesPerChip / hostDmaBandwidth. TPUv4 hosts
     * connect 4 chips over PCIe Gen3 x16 (~16 GB/s shared ≈ a few
     * GB/s per chip under fan-in); 4 GB/s is the defensible default.
     */
    Rate hostDmaBandwidth = GBps(4.0);

    /** Per-hop synchronization latency of a collective step. */
    Time syncLatency = us(5.0);

    /** Host-side launch overhead of one communication operation. */
    Time launchOverhead = us(20.0);

    /** Systolic array dimension (tiles are multiples of this). */
    std::int64_t systolicDim = 128;

    /**
     * Memory block width: TPUs access memory in (sublane x lane) =
     * (8 x 128) chunks, so contiguous slicing uses B = 8 columns.
     */
    std::int64_t memBlockCols = 8;

    /** Scratchpad capacity per core, bytes. */
    Bytes scratchpadBytes = MiB(64.0);

    /** HBM capacity per chip (TPUv4: 32 GiB). */
    Bytes hbmCapacity = GiB(32.0);

    /** Element size (bf16 = 2 bytes). */
    int bytesPerElement = 2;

    /**
     * True if collectives may use both directions of each ICI link
     * (splitting the payload into two opposing rings). Google Cloud's
     * 4x4 slices only expose uni-directional inter-node bandwidth
     * (Sec 5.3.1), which the Table 3 bench models by clearing this.
     */
    bool bidirectionalIci = true;

    /**
     * Contention factor of a *logical* mesh (Sec 6): on GPU clusters a
     * 2D mesh is overlaid on a shared network, so ring transfers see
     * only 1/factor of the physical link bandwidth. 1.0 = physical
     * torus (TPU). The cost-model calibration measures the effective
     * bandwidth, so the autotuner adapts automatically.
     */
    double logicalMeshContention = 1.0;

    /**
     * True if SendRecv-based schedules (Wang, Cannon) may overlap with
     * computation. On the paper's real cluster, XLA introduced
     * dependencies that serialized most of Wang's SendRecvs
     * (Sec 5.3.1); clearing this reproduces that compiler artifact.
     */
    bool allowSendRecvOverlap = true;

    /**
     * True if AG/RdS collectives may overlap with computation. Real
     * TPUv4 clusters currently cannot (Sec 5.3); the simulator's default
     * future-hardware mode can.
     */
    bool allowCollectiveOverlap = true;
};

/** The TPUv4-like configuration used throughout the evaluation. */
inline ChipConfig
tpuV4Config()
{
    return ChipConfig{};
}

/**
 * Reject configurations that would make the simulator produce nonsense
 * (non-positive rates/latencies, zero block sizes, ...). Calls `fatal()`
 * with the offending field; returns normally on a sane config. Run by
 * the `Cluster` constructor, so every simulation entry point is covered.
 */
void validateChipConfig(const ChipConfig &cfg);

} // namespace meshslice

#endif // MESHSLICE_HW_CHIP_CONFIG_HPP_
