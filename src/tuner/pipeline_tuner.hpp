/**
 * @file
 * Phase-3 autotuning: compose MeshSlice 2D TP with pipeline and data
 * parallelism into a full 3D training plan.
 *
 * The search walks every structural decomposition of the cluster —
 * pp stages x dp replicas x tp chips with pp | layers, dp | batch and
 * micro-batch counts dividing the per-replica batch — and for each one
 * re-runs the two-phase MeshSlice autotuner at the micro-batch size
 * (so tp_rows x tp_cols are co-optimized per candidate, with their own
 * `"phase":"shape"` trace records). Candidates are scored by an
 * analytical model that is *structurally exact*: the longest path over
 * the same pipeline DAG the discrete-event executor runs
 * (`analyticalSpan`), plus the non-overlapped DP gradient all-reduce,
 * with memory-infeasible schedules rejected via the activation-stash
 * model. The top-K shortlist is then ranked by full simulation
 * (`runPipeline`), which is also what guards the model: for every
 * simulated plan the analytical estimate must land within a few
 * percent, or the pipeline report's cross-check fails.
 *
 * Every candidate — pruned or evaluated — emits a
 * `"phase":"pipeline"` JSONL record through `SearchTrace`, and the
 * final decision a `"phase":"pipeline_pick"` record.
 */
#ifndef MESHSLICE_TUNER_PIPELINE_TUNER_HPP_
#define MESHSLICE_TUNER_PIPELINE_TUNER_HPP_

#include <string>
#include <vector>

#include "pipeline/stage_model.hpp"
#include "sim/critical_path.hpp"
#include "sim/stats.hpp"
#include "tuner/autotuner.hpp"

namespace meshslice {

/** Knobs of the phase-3 search. */
struct PipelineTuneConfig
{
    /** Micro-batch schedule of every candidate. */
    PipelineSchedule schedule = PipelineSchedule::k1F1B;
    /** Model chunks per stage (interleaved schedule only). */
    int chunks = 1;
    /** Cap on the micro-batch count sweep. */
    int maxMicroBatches = 64;
    /** Shortlist size re-ranked by simulation. */
    int topK = 4;
    /** Activation recompute knob applied to every candidate. */
    bool recompute = false;
    /** Fraction of the DP all-reduce hidden behind backward compute
     *  (the Sec 2.1 overlap assumption, as in `estimateClusterStep`). */
    double dpOverlap = 0.5;
    /**
     * Run the critical-path profiler during the shortlist simulations
     * and attach the analysis (`PipelineCandidate::explain`) to every
     * simulated candidate; `tunePipeline` additionally traces one
     * `"phase":"explain"` record per shortlisted candidate when the
     * search-trace sink is open. Observational only.
     */
    bool explain = false;
};

/** One (pp, dp, tp, m) decomposition, evaluated or pruned. */
struct PipelineCandidate
{
    PipelineAxes axes; ///< tpRows/tpCols filled by the phase-2 pick
    /** The 2D TP plan at the candidate's micro-batch size. */
    AutotuneResult tpPlan;
    Time blockFwd = 0.0; ///< one block's forward, one micro-batch
    Time blockBwd = 0.0; ///< the matching backward
    Time estPipeline = 0.0; ///< analytical span of the pipeline DAG
    Time estDp = 0.0;       ///< exposed DP all-reduce time
    Time estTotal = 0.0;    ///< analytic step: span + exposed DP
    /** Simulated step (span + the same DP term); < 0 = not in the
     *  shortlist, so never simulated. */
    Time simTotal = -1.0;
    /** Critical-path analysis of the simulated replica (only filled
     *  when simulated with `PipelineTuneConfig::explain`). */
    ExplainRecord explain;
    bool hasExplain = false;
    /** Peak per-chip bytes of the heaviest stage (stage 0). */
    Bytes stageMemoryBytes = 0;
    /** Peak in-flight micro-batches on stage 0 (the stash depth). */
    int peakStash = 0;
    bool feasible = false;
    std::string reason; ///< why the candidate was pruned ("" if not)
};

/** Phase-3 outcome. */
struct PipelineTuneResult
{
    /** Structurally feasible candidates, ranked by `estTotal`
     *  (entry 0 = analytic pick). */
    std::vector<PipelineCandidate> candidates;
    /** All pruned decompositions, with reasons. */
    std::vector<PipelineCandidate> pruned;
    /** Index into `candidates` of the simulation-ranked pick. */
    int pickedIndex = 0;

    const PipelineCandidate &
    picked() const
    {
        return candidates.at(static_cast<size_t>(pickedIndex));
    }
};

/**
 * Run the phase-3 search for @p chips chips. Fatal when no feasible
 * decomposition exists (e.g. chips does not factor against the model).
 * The returned candidates' `estTotal` ordering is deterministic (ties
 * broken by lower pp, then dp, then micro-batch count).
 *
 * The top-K simulated re-evaluations run concurrently on the global
 * thread pool (each candidate simulates on a private cluster); their
 * trace records are captured per candidate and flushed in serial index
 * order, so the pick and the SearchTrace file are bit-identical to a
 * `MESHSLICE_THREADS=1` run. When @p stats is non-null each simulated
 * candidate's per-resource accounting is merged under
 * `pipeline/top<i>/...`.
 */
PipelineTuneResult tunePipeline(const LlmAutotuner &tuner,
                                const TransformerConfig &model,
                                const TrainingConfig &train, int chips,
                                const PipelineTuneConfig &cfg,
                                StatsRegistry *stats = nullptr);

/**
 * Analytic + simulated step of ONE fully specified decomposition (the
 * building block of `tunePipeline`, exposed for benches and tests):
 * runs phase 1+2 at the micro-batch size, sizes the stage memory,
 * computes the analytical span and — when @p simulate is set — the
 * simulated span on a fresh pp x tpRows x tpCols cluster. DP cost is
 * added analytically to both sides (one replica is simulated). A
 * non-null @p sim_stats receives the simulated cluster's per-resource
 * accounting (merged after the run; only meaningful with @p simulate).
 */
PipelineCandidate evaluatePipelineCandidate(const LlmAutotuner &tuner,
                                            const TransformerConfig &model,
                                            const TrainingConfig &train,
                                            const PipelineAxes &axes,
                                            const PipelineTuneConfig &cfg,
                                            bool simulate,
                                            StatsRegistry *sim_stats
                                            = nullptr);

} // namespace meshslice

#endif // MESHSLICE_TUNER_PIPELINE_TUNER_HPP_
