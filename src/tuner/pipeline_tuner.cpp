#include "tuner/pipeline_tuner.hpp"

#include <algorithm>

#include "tuner/explain.hpp"
#include "tuner/search_trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace meshslice {

namespace {

/** Fraction of a block's fwd+bwd time spent in the forward pass: one
 *  of the three equal-FLOP training GeMMs per FC layer, and the same
 *  1:2 split for the non-FC roofline. */
constexpr double kFwdShare = 1.0 / 3.0;

/**
 * True when at least one rows x cols factorization of @p tp divides
 * every FC GeMM dimension at the micro-batch size. Mirrors the phase-2
 * feasibility loop so structurally impossible TP degrees (e.g. a
 * factor of 5 against GPT-3's power-of-two-times-three dimensions) are
 * *pruned* with a reason instead of tripping the autotuner's
 * no-feasible-shape panic.
 */
bool
anyTpMeshFeasible(const TransformerConfig &model,
                  const TrainingConfig &micro, int tp)
{
    const std::vector<FcGemm> gemms = blockFcGemms(model, micro);
    for (int rows = 1; rows <= tp; ++rows) {
        if (tp % rows != 0)
            continue;
        const int cols = tp / rows;
        bool ok = true;
        for (const FcGemm &gemm : gemms) {
            if (!shapeFeasible(gemm, rows, cols)) {
                ok = false;
                break;
            }
        }
        if (ok)
            return true;
    }
    return false;
}

Bytes
dpShardBytesPerChip(const ChipConfig &cfg, const TransformerConfig &model,
                    const PipelineAxes &axes)
{
    const double params_per_chip =
        model.parameterCount() /
        static_cast<double>(axes.pp * axes.tpDegree());
    return static_cast<Bytes>(params_per_chip * cfg.bytesPerElement);
}

Time
exposedDpTime(const CostModel &cost, const TransformerConfig &model,
              const PipelineAxes &axes, double dp_overlap)
{
    if (axes.dp <= 1)
        return 0.0;
    const Bytes per_chip =
        dpShardBytesPerChip(cost.chip(), model, axes);
    // AllReduce = RdS + AG of (bytes / dp) shards around the DP ring.
    const Time allreduce =
        2.0 * cost.collectiveTime(axes.dp, per_chip / axes.dp);
    return (1.0 - dp_overlap) * allreduce;
}

void
tracePipelineCandidate(int chips, const PipelineCandidate &cand,
                       bool simulated)
{
    if (!SearchTrace::global().enabled())
        return;
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"pipeline\",\"chips\":%d,\"schedule\":%s,"
        "\"pp\":%d,\"dp\":%d,\"tp\":%d,\"tp_rows\":%d,\"tp_cols\":%d,"
        "\"micro_batches\":%d,\"chunks\":%d,\"recompute\":%s,"
        "\"feasible\":%s,\"reason\":%s,\"est_s\":%s,"
        "\"est_pipeline_s\":%s,\"est_dp_s\":%s,\"sim_s\":%s,"
        "\"stage_mem_bytes\":%s,\"peak_stash\":%d}",
        chips,
        jsonString(pipelineScheduleName(cand.axes.schedule)).c_str(),
        cand.axes.pp, cand.axes.dp, cand.axes.tpDegree(),
        cand.axes.tpRows, cand.axes.tpCols, cand.axes.microBatches,
        cand.axes.chunks, cand.axes.recompute ? "true" : "false",
        cand.feasible ? "true" : "false",
        jsonString(cand.reason).c_str(),
        jsonNumber(cand.estTotal).c_str(),
        jsonNumber(cand.estPipeline).c_str(),
        jsonNumber(cand.estDp).c_str(),
        simulated ? jsonNumber(cand.simTotal).c_str() : "null",
        jsonNumber(static_cast<double>(cand.stageMemoryBytes)).c_str(),
        cand.peakStash));
}

void
tracePipelinePick(int chips, const PipelineTuneResult &result)
{
    if (!SearchTrace::global().enabled())
        return;
    const PipelineCandidate &picked = result.picked();
    const PipelineCandidate &analytic = result.candidates.front();
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"pipeline_pick\",\"chips\":%d,\"schedule\":%s,"
        "\"pp\":%d,\"dp\":%d,\"tp_rows\":%d,\"tp_cols\":%d,"
        "\"micro_batches\":%d,\"sim_s\":%s,\"est_s\":%s,"
        "\"analytic_pp\":%d,\"analytic_dp\":%d,"
        "\"analytic_micro_batches\":%d,\"pick_differs\":%s}",
        chips,
        jsonString(pipelineScheduleName(picked.axes.schedule)).c_str(),
        picked.axes.pp, picked.axes.dp, picked.axes.tpRows,
        picked.axes.tpCols, picked.axes.microBatches,
        jsonNumber(picked.simTotal).c_str(),
        jsonNumber(picked.estTotal).c_str(), analytic.axes.pp,
        analytic.axes.dp, analytic.axes.microBatches,
        result.pickedIndex != 0 ? "true" : "false"));
}

} // namespace

PipelineCandidate
evaluatePipelineCandidate(const LlmAutotuner &tuner,
                          const TransformerConfig &model,
                          const TrainingConfig &train,
                          const PipelineAxes &axes,
                          const PipelineTuneConfig &cfg, bool simulate,
                          StatsRegistry *sim_stats)
{
    const ChipConfig &chip = tuner.cost().chip();
    PipelineCandidate cand;
    cand.axes = axes;

    std::string why;
    if (!axesFeasible(model, train, axes, &why)) {
        cand.reason = why;
        return cand;
    }

    // Phase 1+2 at the micro-batch size: the TP mesh shape and slice
    // counts are co-optimized per candidate (with their own
    // "phase":"shape" trace records).
    TrainingConfig micro = train;
    micro.batch = train.batch / (axes.dp * axes.microBatches);
    const int tp = axes.tpDegree();
    if (!anyTpMeshFeasible(model, micro, tp)) {
        cand.reason = strprintf(
            "tp=%d has no mesh shape dividing the block GeMMs", tp);
        return cand;
    }
    cand.tpPlan = tuner.tune(model, micro, tp);
    cand.axes.tpRows = cand.tpPlan.rows;
    cand.axes.tpCols = cand.tpPlan.cols;

    const Time block_total =
        cand.tpPlan.blockFcTime + nonFcBlockTime(chip, model, micro, tp);
    cand.blockFwd = kFwdShare * block_total;
    cand.blockBwd = block_total - cand.blockFwd;

    const PipelineProgram program = buildPipelineProgram(
        axes.schedule, axes.pp, axes.microBatches, axes.chunks);

    PipelineStageMemorySpec mem = stageMemorySpec(
        chip, model, train, cand.axes, program, /*stage=*/0);
    if (!pipelineFitsInMemory(chip, mem) && !cand.axes.recompute) {
        // The full activation stash does not fit: fall back to
        // recompute — stash only the boundary activation per in-flight
        // micro-batch and pay one extra forward in the backward.
        cand.axes.recompute = true;
        mem.recompute = true;
    }
    cand.stageMemoryBytes = pipelineStageMemory(mem).total();
    cand.peakStash = mem.peakInFlight;
    if (!pipelineFitsInMemory(chip, mem)) {
        cand.reason = strprintf(
            "stage memory %.2f GiB exceeds HBM %.2f GiB",
            static_cast<double>(cand.stageMemoryBytes) / GiB(1.0),
            static_cast<double>(chip.hbmCapacity) / GiB(1.0));
        return cand;
    }

    const PipelineExecSpec exec =
        makeExecSpec(chip, model, train, cand.axes, cand.blockFwd,
                     cand.blockBwd, cand.axes.tpMesh());
    const PipelineTimeModel tm =
        timeModelFor(exec, chip, cand.axes.tpRows, cand.axes.tpCols);
    cand.estPipeline = analyticalSpan(program, tm);
    cand.estDp =
        exposedDpTime(tuner.cost(), model, cand.axes, cfg.dpOverlap);
    cand.estTotal = cand.estPipeline + cand.estDp;
    cand.feasible = true;

    if (simulate) {
        // One pipeline replica is simulated; the DP all-reduce is the
        // same analytic term on both sides of the comparison.
        Cluster cluster(chip, axes.pp * tp);
        if (sim_stats != nullptr)
            cluster.stats().enable(true);
        if (cfg.explain)
            cluster.enableProfiler(true);
        PipelineCluster pc(cluster, axes.pp, cand.axes.tpRows,
                           cand.axes.tpCols);
        const PipelineRunResult run = runPipeline(pc, exec);
        cand.simTotal = run.time + cand.estDp;
        if (cfg.explain) {
            cand.explain = explainGraph(cluster.profiler().nodes());
            cand.hasExplain = true;
        }
        if (sim_stats != nullptr) {
            cluster.collectResourceStats(cluster.stats());
            sim_stats->merge(cluster.stats().snapshot());
        }
    }
    return cand;
}

PipelineTuneResult
tunePipeline(const LlmAutotuner &tuner, const TransformerConfig &model,
             const TrainingConfig &train, int chips,
             const PipelineTuneConfig &cfg, StatsRegistry *stats)
{
    if (chips < 1)
        fatal("tunePipeline: need at least one chip (got %d)", chips);
    if (cfg.topK < 1)
        fatal("tunePipeline: shortlist size must be positive (got %d)",
              cfg.topK);

    PipelineTuneResult result;
    for (int pp = 1; pp <= chips; ++pp) {
        if (chips % pp != 0)
            continue;
        const int rem = chips / pp;
        for (int dp = 1; dp <= rem; ++dp) {
            if (rem % dp != 0)
                continue;
            const int tp = rem / dp;
            const std::int64_t per_replica =
                train.batch % dp == 0 ? train.batch / dp : 0;
            const int m_hi =
                pp == 1 ? 1
                        : static_cast<int>(std::min<std::int64_t>(
                              cfg.maxMicroBatches,
                              per_replica > 0 ? per_replica : 1));
            for (int m = 1; m <= m_hi; ++m) {
                if (per_replica > 0 && per_replica % m != 0)
                    continue;
                PipelineAxes axes;
                axes.tpRows = 1;
                axes.tpCols = tp;
                axes.pp = pp;
                axes.dp = dp;
                axes.microBatches = m;
                axes.chunks = cfg.chunks;
                axes.schedule = cfg.schedule;
                axes.recompute = cfg.recompute;

                std::string why;
                if (!axesFeasible(model, train, axes, &why)) {
                    PipelineCandidate pruned;
                    pruned.axes = axes;
                    pruned.reason = why;
                    tracePipelineCandidate(chips, pruned, false);
                    result.pruned.push_back(std::move(pruned));
                    continue;
                }

                PipelineCandidate cand = evaluatePipelineCandidate(
                    tuner, model, train, axes, cfg, /*simulate=*/false);
                tracePipelineCandidate(chips, cand, false);
                if (cand.feasible)
                    result.candidates.push_back(std::move(cand));
                else
                    result.pruned.push_back(std::move(cand));
            }
        }
    }
    if (result.candidates.empty())
        fatal("tunePipeline: no feasible (pp, dp, micro-batch) "
              "decomposition of %d chips for %s (batch %lld, %lld "
              "layers)", chips, model.name.c_str(),
              static_cast<long long>(train.batch),
              static_cast<long long>(model.layers));

    std::sort(result.candidates.begin(), result.candidates.end(),
              [](const PipelineCandidate &a, const PipelineCandidate &b) {
                  if (a.estTotal != b.estTotal)
                      return a.estTotal < b.estTotal;
                  if (a.axes.pp != b.axes.pp)
                      return a.axes.pp < b.axes.pp;
                  if (a.axes.dp != b.axes.dp)
                      return a.axes.dp < b.axes.dp;
                  return a.axes.microBatches < b.axes.microBatches;
              });

    // Simulate the analytic shortlist concurrently (each candidate on
    // a private cluster), then fold trace records, stats and the pick
    // in serial index order — bit-identical to the serial loop.
    const int k = std::min<int>(
        cfg.topK, static_cast<int>(result.candidates.size()));
    const bool tracing = SearchTrace::global().enabled();
    std::vector<SearchTraceCapture> captures(
        tracing ? static_cast<size_t>(k) : 0);
    std::vector<std::vector<StatSnapshot>> cand_stats(
        stats != nullptr ? static_cast<size_t>(k) : 0);
    parallelFor(k, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
            PipelineCandidate &cand =
                result.candidates[static_cast<size_t>(i)];
            StatsRegistry cand_reg;
            StatsRegistry *sim_stats =
                stats != nullptr ? &cand_reg : nullptr;
            if (tracing) {
                // Buffer this candidate's records (the inner tune's
                // "slice"/"shape" lines plus our "pipeline" line) for
                // the serial-order flush below.
                SearchTraceCapture::Scope scope(
                    captures[static_cast<size_t>(i)]);
                cand = evaluatePipelineCandidate(tuner, model, train,
                                                 cand.axes, cfg,
                                                 /*simulate=*/true,
                                                 sim_stats);
                tracePipelineCandidate(chips, cand, true);
            } else {
                cand = evaluatePipelineCandidate(tuner, model, train,
                                                 cand.axes, cfg,
                                                 /*simulate=*/true,
                                                 sim_stats);
            }
            if (stats != nullptr)
                cand_stats[static_cast<size_t>(i)] = cand_reg.snapshot();
        }
    });
    int best = 0;
    for (int i = 0; i < k; ++i) {
        const PipelineCandidate &cand =
            result.candidates[static_cast<size_t>(i)];
        if (tracing) {
            captures[static_cast<size_t>(i)].flushToGlobal();
            if (cand.hasExplain)
                SearchTrace::global().record(explainRecordJson(
                    "pipeline", Algorithm::kMeshSlice, chips, i,
                    cand.axes.tpRows, cand.axes.tpCols, cand.simTotal,
                    cand.explain));
        }
        if (stats != nullptr)
            stats->merge(cand_stats[static_cast<size_t>(i)],
                         strprintf("pipeline/top%d/", i));
        if (cand.simTotal <
            result.candidates[static_cast<size_t>(best)].simTotal)
            best = i;
    }
    result.pickedIndex = best;
    tracePipelinePick(chips, result);
    return result;
}

} // namespace meshslice
