/**
 * @file
 * Robustness-aware autotuning (opt-in).
 *
 * The nominal two-phase autotuner picks the mesh shape / slice counts
 * minimizing the *fault-free* estimated step time. Real clusters are
 * not fault-free, and overlap schedules are highly sensitive to
 * interference (T3, PAPERS.md): the nominally-best shape can be the
 * one whose critical rings die hardest under a slow link. The robust
 * tuner re-evaluates the top-K phase-2 candidates by *simulation*
 * under N fault scenarios (sampled from a seeded distribution, or
 * supplied explicitly) and picks by worst-case — or a configurable
 * quantile of — simulated step time instead of the nominal estimate.
 *
 * Every (candidate, scenario) evaluation and the final pick are
 * emitted through `SearchTrace` as `"phase":"robust"` /
 * `"phase":"robust_pick"` JSONL records.
 */
#ifndef MESHSLICE_TUNER_ROBUST_HPP_
#define MESHSLICE_TUNER_ROBUST_HPP_

#include <cstdint>
#include <vector>

#include "gemm/reshard.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/cost_model.hpp"

namespace meshslice {

/** Knobs of the robust objective. */
struct RobustTuneConfig
{
    /** Phase-2 candidates re-evaluated under the scenarios. */
    int topK = 3;
    /** Scenarios sampled when `scenarios` is empty. */
    int numScenarios = 4;
    /** Seed of the scenario sampler (and of each scenario's jitter). */
    std::uint64_t seed = 1;
    /** Bandwidth factor of a sampled degraded link-direction class. */
    double linkDegradeFactor = 0.5;
    /** Link-direction degradations per sampled scenario. */
    int faultsPerScenario = 1;
    /** Probability a sampled scenario includes a straggler chip. */
    double stragglerProb = 0.5;
    /** Core/HBM factor of a sampled straggler. */
    double stragglerFactor = 0.7;
    /** Launch jitter bound of sampled scenarios (0 = none). */
    Time maxLaunchJitter = 0.0;
    /**
     * Objective quantile over the per-scenario simulated times:
     * 1.0 = worst case (default), 0.95 = p95, ...
     */
    double quantile = 1.0;
    /**
     * Cap on how many of the 12 planned GeMMs are simulated per
     * (candidate, scenario) evaluation; 0 = all. Lower = faster,
     * coarser.
     */
    int maxGemmsPerEval = 0;
    /**
     * Explicit scenarios. When non-empty, used verbatim (and
     * `numScenarios`/sampling knobs are ignored).
     */
    std::vector<FaultScenario> scenarios;
    /**
     * Attach a `"phase":"explain"` record — critical-path category
     * attribution, hot spans and what-if sensitivities of the
     * fault-free run — to every shortlisted candidate. Only takes
     * effect while the search-trace sink is open; purely additive to
     * the trace (evaluations and the pick are unchanged).
     */
    bool explain = false;
};

/** One shortlisted candidate's robust evaluation. */
struct RobustCandidate
{
    AutotuneResult plan;   ///< shape + tuned slice counts
    Time nominalEst = 0.0; ///< phase-2 (fault-free) estimate
    /** Simulated step time under each scenario, scenario order. */
    std::vector<Time> scenarioTimes;
    /** `quantile` of `scenarioTimes` (the robust objective). */
    Time objective = 0.0;
};

/** Robust tuning outcome. */
struct RobustTuneResult
{
    /** The scenarios evaluated (sampled or supplied). */
    std::vector<FaultScenario> scenarios;
    /** Candidates in nominal rank order (entry 0 = nominal pick). */
    std::vector<RobustCandidate> candidates;
    /** Index (into `candidates`) of the robust pick. */
    int pickedIndex = 0;

    const RobustCandidate &picked() const
    {
        return candidates.at(static_cast<size_t>(pickedIndex));
    }
    const RobustCandidate &nominal() const { return candidates.at(0); }

    /** True when robustness changed the decision (the interesting
     *  case: the nominal optimum is fragile). */
    bool pickDiffers() const { return pickedIndex != 0; }
};

/**
 * Sample @p cfg.numScenarios deterministic scenarios for a cluster of
 * @p chips chips. Each scenario degrades `faultsPerScenario` random
 * link-direction classes (E/W/S/N — shape-independent patterns, so
 * the same scenario is meaningful for every candidate mesh) and, with
 * `stragglerProb`, one random straggler chip; scenario i gets jitter
 * seed `seed + i`. Bit-identical for a given (cfg, chips).
 */
std::vector<FaultScenario> sampleScenarios(const RobustTuneConfig &cfg,
                                           int chips);

/**
 * Robust phase-2: shortlist `cfg.topK` shapes with @p tuner, simulate
 * each under the scenarios, pick by the quantile objective.
 *
 * The (candidate, scenario) evaluations are independent simulations on
 * private clusters and run concurrently on the global thread pool;
 * results, trace records and stats are folded in serial cell order, so
 * the pick, the SearchTrace file and the merged registry are
 * bit-identical to a `MESHSLICE_THREADS=1` run. When @p stats is
 * non-null each cell's per-resource accounting is merged under
 * `robust/cand<ci>/scen<si>/...`.
 */
RobustTuneResult tuneRobust(const LlmAutotuner &tuner, Algorithm algo,
                            const TransformerConfig &model,
                            const TrainingConfig &train, int chips,
                            const RobustTuneConfig &cfg,
                            bool optimize_dataflow = true,
                            StatsRegistry *stats = nullptr);

/**
 * The robust re-ranking alone, over a @p shortlist the caller already
 * holds (at most `cfg.topK` entries are evaluated). `tuneRobust` is
 * exactly `tuneRobustShortlist(rankShapes(...))`; the PlanEngine's
 * incremental re-tune calls this directly with the cached phase-1/2
 * shortlist so a fault-profile-only change skips the shape sweep — and
 * is bit-identical to the cold full tune by construction.
 */
RobustTuneResult tuneRobustShortlist(
    const LlmAutotuner &tuner, Algorithm algo,
    const std::vector<AutotuneResult> &shortlist, int chips,
    const RobustTuneConfig &cfg, StatsRegistry *stats = nullptr);

/** The objective: @p q-quantile of @p times (1.0 = max). */
Time robustObjective(std::vector<Time> times, double q);

/**
 * Knobs of recovery-aware tuning: solve the Young–Daly checkpoint
 * interval *jointly* with the mesh shape. The nominal tuner ranks
 * shapes by fault-free step time; at scale the tiebreaker is recovery
 * economics — a shape with a slightly worse step time can win because
 * its single-failure re-shard is cheaper (less state changes owner
 * when a row/column is retired), which shrinks per-failure downtime
 * and lifts goodput.
 */
struct RecoveryTuneConfig
{
    /** Per-chip MTBF (seconds), required > 0. */
    Time chipMtbf = 0.0;
    /** Checkpoint state per chip (weights + optimizer shards), > 0. */
    Bytes checkpointBytesPerChip = 0;
    /** Failure-detection latency (heartbeat + consensus). */
    Time detectionLatency = 0.5;
    /** Job restart overhead (scheduler + binary + checkpoint read). */
    Time restartTime = 60.0;
    /** Phase-2 candidates re-ranked by recovery economics. */
    int topK = 3;
};

/** One shortlisted candidate's recovery evaluation. */
struct RecoveryCandidate
{
    AutotuneResult plan;    ///< shape + tuned slice counts
    Time stepTime = 0.0;    ///< nominal (fault-free) block FC time
    Time reshardTime = 0.0; ///< cheapest expected single-failure re-shard
    /** Modeled bytes changing owner in that re-shard (expectation over
     *  the uniformly random failed row/column). */
    double reshardBytes = 0.0;
    Time checkpointInterval = 0.0; ///< Young–Daly τ* for this shape
    double goodput = 0.0;          ///< g(τ*) at this shape's downtime
    /** The joint objective: stepTime / goodput — wall-clock seconds
     *  per useful step second once failures are priced in. */
    Time effectiveStepTime = 0.0;
};

/** Recovery-aware tuning outcome. */
struct RecoveryTuneResult
{
    /** Candidates in nominal rank order (entry 0 = nominal pick). */
    std::vector<RecoveryCandidate> candidates;
    /** Index (into `candidates`) of the recovery-aware pick. */
    int pickedIndex = 0;

    const RecoveryCandidate &picked() const
    {
        return candidates.at(static_cast<size_t>(pickedIndex));
    }
    const RecoveryCandidate &nominal() const { return candidates.at(0); }

    /** True when recovery economics changed the decision. */
    bool pickDiffers() const { return pickedIndex != 0; }
};

/**
 * Shortlist `cfg.topK` shapes with @p tuner, price each one's
 * checkpoint/restart economics (C from the chip's host-DMA bandwidth,
 * M = chipMtbf / chips, D = detection + restart + that shape's
 * expected re-shard), solve τ* per shape, and pick the minimum
 * `effectiveStepTime`. Candidate and pick records are emitted through
 * `SearchTrace` as `"phase":"recovery"` / `"phase":"recovery_pick"`.
 */
RecoveryTuneResult tuneWithRecovery(const LlmAutotuner &tuner,
                                    Algorithm algo,
                                    const TransformerConfig &model,
                                    const TrainingConfig &train, int chips,
                                    const RecoveryTuneConfig &cfg,
                                    bool optimize_dataflow = true);

/**
 * The recovery pricing alone, over a caller-held @p shortlist (at most
 * `cfg.topK` entries are priced). `tuneWithRecovery` is exactly
 * `tuneWithRecoveryShortlist(rankShapes(...))`; see
 * `tuneRobustShortlist` for why the split exists.
 */
RecoveryTuneResult tuneWithRecoveryShortlist(
    const LlmAutotuner &tuner, Algorithm algo,
    const std::vector<AutotuneResult> &shortlist, int chips,
    const RecoveryTuneConfig &cfg);

/** One survivor-mesh option of a mid-run re-plan. */
struct ReplanCandidate
{
    /** The shrink under consideration (retire the dead chip's row or
     *  column). */
    SurvivorMesh mesh;
    /** False when the running spec's dimensions don't divide the
     *  survivor shape — the option is traced but never picked. */
    bool feasible = false;
    /** The running spec re-fit to the survivor mesh with a re-tuned
     *  slice count. Meaningful iff `feasible`. */
    Gemm2DSpec spec;
    Time stepTime = 0.0;       ///< cost-model step estimate on `spec`
    double reshardBytes = 0.0; ///< modeled live-state bytes changing owner
    Time reshardTime = 0.0;    ///< modeled recovery re-shard span
    /** The ranking objective: reshardTime + remaining * stepTime —
     *  pay the migration once, the degraded step rate until the end. */
    Time objective = 0.0;
};

/** Outcome of `replanAfterFailure`. */
struct ReplanResult
{
    /** All survivor options, `survivorOptionsForChip` order (retire-row
     *  first) — including infeasible ones, for the trace. */
    std::vector<ReplanCandidate> candidates;
    /** Index of the pick, or -1 when no option is feasible. */
    int pickedIndex = -1;

    bool feasible() const { return pickedIndex >= 0; }
    const ReplanCandidate &picked() const;
};

/**
 * Incremental re-plan after chip @p dead_chip fail-stops mid-run while
 * executing @p spec under @p algo. Incremental because the expensive
 * tuning phases are *reused*, not redone: phase 1's calibrated cost
 * model arrives via @p cost (the process-wide memoized calibration) and
 * phase 2's shape sweep is replaced by the survivor geometry itself —
 * the only reachable shapes are `survivorOptionsForChip`'s one-row- or
 * one-column-smaller meshes. What is redone is the *ranking*: each
 * feasible option gets a re-tuned slice count (`tuneSliceCount` on the
 * degraded shape) and is charged `reshardTime + remaining_steps *
 * stepTime`, so a cheaper migration can beat a faster degraded mesh
 * when few steps remain and vice versa. Candidates and the pick are
 * emitted through `SearchTrace` as `"phase":"replan"` /
 * `"phase":"replan_pick"` records.
 */
ReplanResult replanAfterFailure(const CostModel &cost, Algorithm algo,
                                const Gemm2DSpec &spec, int dead_chip,
                                int remaining_steps);

} // namespace meshslice

#endif // MESHSLICE_TUNER_ROBUST_HPP_
