#include "tuner/robust.hpp"

#include <algorithm>
#include <cmath>

#include "core/fault_study.hpp"
#include "core/recovery_study.hpp"
#include "gemm/reshard.hpp"
#include "tuner/explain.hpp"
#include "tuner/search_trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace meshslice {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
uniform01(std::uint64_t &state)
{
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

void
traceRobustEval(Algorithm algo, int chips, const RobustCandidate &cand,
                int scenario_index, Time sim_time)
{
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"robust\",\"algo\":%s,\"chips\":%d,\"rows\":%d,"
        "\"cols\":%d,\"scenario\":%d,\"sim_s\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, cand.plan.rows,
        cand.plan.cols, scenario_index, jsonNumber(sim_time).c_str()));
}

void
traceRobustPick(Algorithm algo, int chips, const RobustTuneResult &result)
{
    const RobustCandidate &picked = result.picked();
    const RobustCandidate &nominal = result.nominal();
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"robust_pick\",\"algo\":%s,\"chips\":%d,"
        "\"rows\":%d,\"cols\":%d,\"objective_s\":%s,"
        "\"nominal_rows\":%d,\"nominal_cols\":%d,"
        "\"nominal_objective_s\":%s,\"pick_differs\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, picked.plan.rows,
        picked.plan.cols, jsonNumber(picked.objective).c_str(),
        nominal.plan.rows, nominal.plan.cols,
        jsonNumber(nominal.objective).c_str(),
        result.pickDiffers() ? "true" : "false"));
}

void
traceRecoveryEval(Algorithm algo, int chips, const RecoveryCandidate &cand)
{
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"recovery\",\"algo\":%s,\"chips\":%d,\"rows\":%d,"
        "\"cols\":%d,\"step_s\":%s,\"reshard_s\":%s,"
        "\"reshard_bytes\":%s,\"tau_opt_s\":%s,\"goodput\":%s,"
        "\"effective_step_s\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, cand.plan.rows,
        cand.plan.cols, jsonNumber(cand.stepTime).c_str(),
        jsonNumber(cand.reshardTime).c_str(),
        jsonNumber(cand.reshardBytes).c_str(),
        jsonNumber(cand.checkpointInterval).c_str(),
        jsonNumber(cand.goodput).c_str(),
        jsonNumber(cand.effectiveStepTime).c_str()));
}

void
traceRecoveryPick(Algorithm algo, int chips,
                  const RecoveryTuneResult &result)
{
    const RecoveryCandidate &picked = result.picked();
    const RecoveryCandidate &nominal = result.nominal();
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"recovery_pick\",\"algo\":%s,\"chips\":%d,"
        "\"rows\":%d,\"cols\":%d,\"effective_step_s\":%s,"
        "\"nominal_rows\":%d,\"nominal_cols\":%d,"
        "\"nominal_effective_step_s\":%s,\"pick_differs\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, picked.plan.rows,
        picked.plan.cols, jsonNumber(picked.effectiveStepTime).c_str(),
        nominal.plan.rows, nominal.plan.cols,
        jsonNumber(nominal.effectiveStepTime).c_str(),
        result.pickDiffers() ? "true" : "false"));
}

/** Expected moved bytes + modeled time of one re-shard orientation
 *  (retire a row / a column), averaged over the uniformly random
 *  failed index. */
struct ReshardEstimate
{
    double bytes = 0.0;
    Time time = -1.0; ///< negative = orientation infeasible
};

ReshardEstimate
expectedReshard(const ChipConfig &chip, int rows, int cols,
                double total_state_bytes, bool retire_row)
{
    ReshardEstimate est;
    const int n = retire_row ? rows : cols;
    if (n < 2)
        return est; // no survivor mesh in this orientation
    double sum = 0.0;
    for (int f = 0; f < n; ++f) {
        SurvivorMesh sv;
        sv.from = MeshShape{rows, cols};
        (retire_row ? sv.failedRow : sv.failedCol) = f;
        sum += reshardBytesModel(total_state_bytes, sv);
    }
    est.bytes = sum / static_cast<double>(n);
    const int survivors =
        retire_row ? (rows - 1) * cols : rows * (cols - 1);
    est.time = reshardTimeModel(chip, est.bytes, survivors);
    return est;
}

} // namespace

Time
robustObjective(std::vector<Time> times, double q)
{
    if (times.empty())
        return 0.0;
    std::sort(times.begin(), times.end());
    if (q >= 1.0)
        return times.back();
    if (q <= 0.0)
        return times.front();
    const double pos = q * static_cast<double>(times.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = std::min(times.size() - 1, lo + 1);
    const double frac = pos - std::floor(pos);
    return times[lo] * (1.0 - frac) + times[hi] * frac;
}

std::vector<FaultScenario>
sampleScenarios(const RobustTuneConfig &cfg, int chips)
{
    if (chips <= 0)
        fatal("sampleScenarios: need a positive chip count (got %d)",
              chips);
    if (cfg.numScenarios <= 0)
        fatal("sampleScenarios: numScenarios must be positive (got %d)",
              cfg.numScenarios);
    if (!(cfg.linkDegradeFactor > 0.0 && cfg.linkDegradeFactor <= 1.0))
        fatal("sampleScenarios: linkDegradeFactor %g outside (0, 1]",
              cfg.linkDegradeFactor);
    static const char *kDirections[4] = {"link.E", "link.W", "link.S",
                                         "link.N"};
    std::vector<FaultScenario> out;
    std::uint64_t rng = cfg.seed;
    for (int i = 0; i < cfg.numScenarios; ++i) {
        FaultScenario s;
        s.seed = cfg.seed + static_cast<std::uint64_t>(i);
        s.maxLaunchJitter = cfg.maxLaunchJitter;
        for (int f = 0; f < cfg.faultsPerScenario; ++f) {
            CapacityFault fault;
            fault.pattern = kDirections[splitmix64(rng) % 4];
            fault.factor = cfg.linkDegradeFactor;
            fault.start = 0.0;
            fault.duration = -1.0; // persistent
            s.faults.push_back(std::move(fault));
        }
        if (uniform01(rng) < cfg.stragglerProb) {
            StragglerFault straggler;
            straggler.chip = static_cast<int>(
                splitmix64(rng) % static_cast<std::uint64_t>(chips));
            straggler.computeFactor = cfg.stragglerFactor;
            straggler.hbmFactor = cfg.stragglerFactor;
            s.stragglers.push_back(straggler);
        }
        out.push_back(std::move(s));
    }
    return out;
}

RobustTuneResult
tuneRobust(const LlmAutotuner &tuner, Algorithm algo,
           const TransformerConfig &model, const TrainingConfig &train,
           int chips, const RobustTuneConfig &cfg, bool optimize_dataflow,
           StatsRegistry *stats)
{
    return tuneRobustShortlist(
        tuner, algo,
        tuner.rankShapes(algo, model, train, chips, cfg.topK,
                         optimize_dataflow),
        chips, cfg, stats);
}

RobustTuneResult
tuneRobustShortlist(const LlmAutotuner &tuner, Algorithm algo,
                    const std::vector<AutotuneResult> &full_shortlist,
                    int chips, const RobustTuneConfig &cfg,
                    StatsRegistry *stats)
{
    if (!(cfg.quantile > 0.0 && cfg.quantile <= 1.0))
        fatal("tuneRobust: quantile %g outside (0, 1]", cfg.quantile);
    if (full_shortlist.empty())
        fatal("tuneRobustShortlist: the shortlist is empty");

    RobustTuneResult result;
    result.scenarios = cfg.scenarios.empty() ? sampleScenarios(cfg, chips)
                                             : cfg.scenarios;

    // The caller may hold a longer shortlist than this re-rank wants
    // (the PlanEngine caches one shortlist sized for every phase);
    // evaluating the prefix is identical to rankShapes(cfg.topK).
    std::vector<AutotuneResult> shortlist = full_shortlist;
    if (cfg.topK > 0 &&
        static_cast<int>(shortlist.size()) > cfg.topK)
        shortlist.resize(static_cast<size_t>(cfg.topK));
    const ChipConfig &chip = tuner.cost().chip();

    // Per-candidate GeMM subsets (serial: cheap, and keeps the
    // truncation deterministic regardless of worker scheduling).
    std::vector<std::vector<GemmPlan>> gemm_sets;
    gemm_sets.reserve(shortlist.size());
    for (const AutotuneResult &plan : shortlist) {
        std::vector<GemmPlan> gemms = plan.allPlans();
        if (cfg.maxGemmsPerEval > 0 &&
            static_cast<int>(gemms.size()) > cfg.maxGemmsPerEval)
            gemms.resize(static_cast<size_t>(cfg.maxGemmsPerEval));
        gemm_sets.push_back(std::move(gemms));
    }

    // Every (candidate, scenario) cell is an independent simulation on
    // a private cluster: fan the cells out on the pool, then fold
    // times, trace records and stats in serial cell order below.
    const size_t num_scen = result.scenarios.size();
    const std::int64_t cells =
        static_cast<std::int64_t>(shortlist.size() * num_scen);
    std::vector<Time> cell_time(static_cast<size_t>(cells), 0.0);
    std::vector<std::vector<StatSnapshot>> cell_stats(
        stats != nullptr ? static_cast<size_t>(cells) : 0);
    parallelFor(cells, 1, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t c = begin; c < end; ++c) {
            const size_t ci = static_cast<size_t>(c) / num_scen;
            const size_t si = static_cast<size_t>(c) % num_scen;
            const AutotuneResult &plan = shortlist[ci];
            StatsRegistry cell_reg;
            StatsRegistry *cell = stats != nullptr ? &cell_reg : nullptr;
            Time step = 0.0;
            for (const GemmPlan &g : gemm_sets[ci]) {
                const Gemm2DSpec spec =
                    makeSpec(g.gemm, g.dataflow, plan.rows, plan.cols,
                             g.sliceCount, chip.bytesPerElement);
                step += runGemmUnderScenario(chip, algo, spec,
                                             &result.scenarios[si], cell)
                            .time;
            }
            cell_time[static_cast<size_t>(c)] = step;
            if (stats != nullptr)
                cell_stats[static_cast<size_t>(c)] = cell_reg.snapshot();
        }
    });

    const bool tracing = SearchTrace::global().enabled();
    for (size_t ci = 0; ci < shortlist.size(); ++ci) {
        RobustCandidate cand;
        cand.plan = shortlist[ci];
        cand.nominalEst = shortlist[ci].blockFcTime;
        for (size_t si = 0; si < num_scen; ++si) {
            const size_t c = ci * num_scen + si;
            cand.scenarioTimes.push_back(cell_time[c]);
            if (tracing)
                traceRobustEval(algo, chips, cand, static_cast<int>(si),
                                cell_time[c]);
            if (stats != nullptr)
                stats->merge(cell_stats[c],
                             strprintf("robust/cand%zu/scen%zu/", ci, si));
        }
        cand.objective = robustObjective(cand.scenarioTimes, cfg.quantile);
        // Opt-in "why": re-run the candidate's GeMM subset fault-free
        // with the critical-path profiler and trace the attribution.
        if (cfg.explain && tracing) {
            Time explain_time = 0.0;
            const ExplainRecord rec = explainPlanGemms(
                chip, algo, shortlist[ci], gemm_sets[ci], &explain_time);
            SearchTrace::global().record(explainRecordJson(
                "robust", algo, chips, static_cast<int>(ci),
                shortlist[ci].rows, shortlist[ci].cols, explain_time,
                rec));
        }
        result.candidates.push_back(std::move(cand));
    }

    // Pick the best objective; candidates are in nominal rank order,
    // so strict improvement is required to move off the nominal pick
    // (deterministic, and a tie keeps the fault-free optimum).
    for (size_t i = 1; i < result.candidates.size(); ++i)
        if (result.candidates[i].objective <
            result.candidates[static_cast<size_t>(result.pickedIndex)]
                .objective)
            result.pickedIndex = static_cast<int>(i);

    if (SearchTrace::global().enabled())
        traceRobustPick(algo, chips, result);
    return result;
}

RecoveryTuneResult
tuneWithRecovery(const LlmAutotuner &tuner, Algorithm algo,
                 const TransformerConfig &model, const TrainingConfig &train,
                 int chips, const RecoveryTuneConfig &cfg,
                 bool optimize_dataflow)
{
    if (cfg.topK <= 0)
        fatal("tuneWithRecovery: topK must be positive (got %d)",
              cfg.topK);
    return tuneWithRecoveryShortlist(
        tuner, algo,
        tuner.rankShapes(algo, model, train, chips, cfg.topK,
                         optimize_dataflow),
        chips, cfg);
}

RecoveryTuneResult
tuneWithRecoveryShortlist(const LlmAutotuner &tuner, Algorithm algo,
                          const std::vector<AutotuneResult> &full_shortlist,
                          int chips, const RecoveryTuneConfig &cfg)
{
    if (cfg.topK <= 0)
        fatal("tuneWithRecovery: topK must be positive (got %d)",
              cfg.topK);
    if (!(cfg.chipMtbf > 0.0))
        fatal("tuneWithRecovery: chipMtbf must be positive (got %g s) — "
              "recovery-aware tuning prices failures, so a failure rate "
              "is required", cfg.chipMtbf);
    if (cfg.checkpointBytesPerChip <= 0)
        fatal("tuneWithRecovery: checkpointBytesPerChip must be positive "
              "(got %lld) — the checkpoint write cost anchors the "
              "Young-Daly interval",
              static_cast<long long>(cfg.checkpointBytesPerChip));
    if (full_shortlist.empty())
        fatal("tuneWithRecoveryShortlist: the shortlist is empty");

    std::vector<AutotuneResult> shortlist = full_shortlist;
    if (static_cast<int>(shortlist.size()) > cfg.topK)
        shortlist.resize(static_cast<size_t>(cfg.topK));
    const ChipConfig &chip = tuner.cost().chip();
    const double total_state =
        static_cast<double>(cfg.checkpointBytesPerChip) *
        static_cast<double>(chips);

    // Candidate pricing is independent per shape: evaluate on the pool,
    // then trace and collect in serial index order (bit-identical to
    // the serial loop).
    RecoveryTuneResult result;
    std::vector<RecoveryCandidate> evals(shortlist.size());
    parallelFor(static_cast<std::int64_t>(shortlist.size()), 1,
                [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t idx = begin; idx < end; ++idx) {
            const AutotuneResult &plan = shortlist[static_cast<size_t>(idx)];
            RecoveryCandidate cand;
            cand.plan = plan;
            cand.stepTime = plan.blockFcTime;

            // Cheapest orientation of the single-failure re-shard: the
            // recovery controller picks row vs column retirement after
            // seeing the failure, so the tuner charges the better of
            // the two expectations.
            const ReshardEstimate by_row = expectedReshard(
                chip, plan.rows, plan.cols, total_state, true);
            const ReshardEstimate by_col = expectedReshard(
                chip, plan.rows, plan.cols, total_state, false);
            const ReshardEstimate *best = nullptr;
            if (by_row.time >= 0.0)
                best = &by_row;
            if (by_col.time >= 0.0 && (!best || by_col.time < best->time))
                best = &by_col;
            if (!best)
                fatal("tuneWithRecovery: a %dx%d mesh has no survivor "
                      "mesh to re-shard onto after a failure", plan.rows,
                      plan.cols);
            cand.reshardBytes = best->bytes;
            cand.reshardTime = best->time;

            TrainingRunModel run;
            run.checkpointBytesPerChip = cfg.checkpointBytesPerChip;
            run.chipMtbf = cfg.chipMtbf;
            run.chips = chips;
            run.detectionLatency = cfg.detectionLatency;
            run.restartTime = cfg.restartTime;
            run.reshardTime = best->time;
            const TrainingGoodput g = evaluateTrainingRun(chip, run);
            cand.checkpointInterval = g.optimalInterval;
            cand.goodput = g.goodput;
            cand.effectiveStepTime = cand.stepTime / cand.goodput;
            evals[static_cast<size_t>(idx)] = std::move(cand);
        }
    });
    const bool tracing = SearchTrace::global().enabled();
    for (RecoveryCandidate &cand : evals) {
        if (tracing)
            traceRecoveryEval(algo, chips, cand);
        result.candidates.push_back(std::move(cand));
    }

    // Argmin of the joint objective; strict improvement is required to
    // move off the nominal pick, so a tie keeps the fault-free optimum.
    for (size_t i = 1; i < result.candidates.size(); ++i)
        if (result.candidates[i].effectiveStepTime <
            result.candidates[static_cast<size_t>(result.pickedIndex)]
                .effectiveStepTime)
            result.pickedIndex = static_cast<int>(i);

    if (SearchTrace::global().enabled())
        traceRecoveryPick(algo, chips, result);
    return result;
}

namespace {

/** Does @p algo's mesh partition of @p spec divide evenly on a
 *  `rows x cols` survivor shape? (The sliceCount axis is re-tuned
 *  separately; S=1 always divides.) */
bool
meshDivides(Algorithm algo, const Gemm2DSpec &spec, int rows, int cols)
{
    if (algo == Algorithm::kOneDTP)
        return spec.n % (static_cast<std::int64_t>(rows) * cols) == 0;
    if (algo == Algorithm::kFsdp)
        return spec.m % (static_cast<std::int64_t>(rows) * cols) == 0;
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return spec.m % rows == 0 && spec.n % cols == 0;
      case Dataflow::kLS:
        return spec.m % rows == 0 && spec.k % cols == 0;
      case Dataflow::kRS:
        return spec.k % rows == 0 && spec.n % cols == 0;
    }
    return false;
}

void
traceReplanEval(Algorithm algo, int dead_chip, const ReplanCandidate &cand)
{
    const MeshShape to = cand.mesh.to();
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"replan\",\"algo\":%s,\"dead_chip\":%d,"
        "\"retire\":%s,\"rows\":%d,\"cols\":%d,\"feasible\":%s,"
        "\"slices\":%d,\"step_s\":%s,\"reshard_bytes\":%s,"
        "\"reshard_s\":%s,\"objective_s\":%s}",
        jsonString(algorithmName(algo)).c_str(), dead_chip,
        cand.mesh.failedRow >= 0 ? "\"row\"" : "\"col\"", to.rows,
        to.cols, cand.feasible ? "true" : "false",
        cand.feasible ? cand.spec.sliceCount : 0,
        jsonNumber(cand.stepTime).c_str(),
        jsonNumber(cand.reshardBytes).c_str(),
        jsonNumber(cand.reshardTime).c_str(),
        jsonNumber(cand.objective).c_str()));
}

void
traceReplanPick(Algorithm algo, int dead_chip, const ReplanResult &result)
{
    if (!result.feasible()) {
        SearchTrace::global().record(strprintf(
            "{\"phase\":\"replan_pick\",\"algo\":%s,\"dead_chip\":%d,"
            "\"feasible\":false}",
            jsonString(algorithmName(algo)).c_str(), dead_chip));
        return;
    }
    const ReplanCandidate &picked = result.picked();
    const MeshShape to = picked.mesh.to();
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"replan_pick\",\"algo\":%s,\"dead_chip\":%d,"
        "\"feasible\":true,\"retire\":%s,\"rows\":%d,\"cols\":%d,"
        "\"slices\":%d,\"objective_s\":%s}",
        jsonString(algorithmName(algo)).c_str(), dead_chip,
        picked.mesh.failedRow >= 0 ? "\"row\"" : "\"col\"", to.rows,
        to.cols, picked.spec.sliceCount,
        jsonNumber(picked.objective).c_str()));
}

} // namespace

const ReplanCandidate &
ReplanResult::picked() const
{
    if (pickedIndex < 0)
        fatal("ReplanResult::picked: no feasible survivor mesh — check "
              "feasible() first");
    return candidates.at(static_cast<size_t>(pickedIndex));
}

ReplanResult
replanAfterFailure(const CostModel &cost, Algorithm algo,
                   const Gemm2DSpec &spec, int dead_chip,
                   int remaining_steps)
{
    if (remaining_steps < 0)
        fatal("replanAfterFailure: remaining_steps must be non-negative "
              "(got %d)", remaining_steps);

    // Live state that must migrate: all three operands (A, B and the
    // accumulated C) are resident `DistMatrix` shards.
    const double live_bytes =
        static_cast<double>(spec.bytesPerElement) *
        (static_cast<double>(spec.m) * static_cast<double>(spec.k) +
         static_cast<double>(spec.k) * static_cast<double>(spec.n) +
         static_cast<double>(spec.m) * static_cast<double>(spec.n));

    ReplanResult result;
    const std::vector<SurvivorMesh> options =
        survivorOptionsForChip(MeshShape{spec.rows, spec.cols}, dead_chip);
    const bool tracing = SearchTrace::global().enabled();
    for (const SurvivorMesh &sv : options) {
        ReplanCandidate cand;
        cand.mesh = sv;
        const MeshShape to = sv.to();
        cand.reshardBytes = reshardBytesModel(live_bytes, sv);
        cand.reshardTime = reshardTimeModel(cost.chip(), cand.reshardBytes,
                                            to.rows * to.cols);
        // Cannon needs a square mesh and a one-line shrink never
        // preserves squareness from a square start; the elastic runtime
        // re-plans Cannon runs under a substitute 2D algorithm instead.
        const bool algo_fits =
            algo != Algorithm::kCannon || to.rows == to.cols;
        if (algo_fits && meshDivides(algo, spec, to.rows, to.cols)) {
            cand.feasible = true;
            cand.spec = spec;
            cand.spec.rows = to.rows;
            cand.spec.cols = to.cols;
            cand.spec.sliceCount = 1; // re-tuned below; S=1 always divides
            // The closed-form estimator covers the 2D family; the 1D
            // baselines rank via the ring-collective proxy (kCollective
            // on the same 1 x C mesh — an AG of the moving matrix plus
            // the local GeMM, the same first-order shape).
            const Algorithm est_algo =
                (algo == Algorithm::kOneDTP || algo == Algorithm::kFsdp)
                    ? Algorithm::kCollective
                    : algo;
            const auto tuned = cost.tuneSliceCount(est_algo, cand.spec);
            cand.spec.sliceCount = tuned.first;
            cand.stepTime = tuned.second;
            cand.objective =
                cand.reshardTime + remaining_steps * cand.stepTime;
        }
        if (tracing)
            traceReplanEval(algo, dead_chip, cand);
        result.candidates.push_back(std::move(cand));
    }

    for (size_t i = 0; i < result.candidates.size(); ++i) {
        const ReplanCandidate &cand = result.candidates[i];
        if (!cand.feasible)
            continue;
        if (result.pickedIndex < 0 ||
            cand.objective <
                result.candidates[static_cast<size_t>(result.pickedIndex)]
                    .objective)
            result.pickedIndex = static_cast<int>(i);
    }
    if (tracing)
        traceReplanPick(algo, dead_chip, result);
    return result;
}

} // namespace meshslice
