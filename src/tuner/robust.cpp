#include "tuner/robust.hpp"

#include <algorithm>
#include <cmath>

#include "core/fault_study.hpp"
#include "tuner/search_trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
uniform01(std::uint64_t &state)
{
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

void
traceRobustEval(Algorithm algo, int chips, const RobustCandidate &cand,
                int scenario_index, Time sim_time)
{
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"robust\",\"algo\":%s,\"chips\":%d,\"rows\":%d,"
        "\"cols\":%d,\"scenario\":%d,\"sim_s\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, cand.plan.rows,
        cand.plan.cols, scenario_index, jsonNumber(sim_time).c_str()));
}

void
traceRobustPick(Algorithm algo, int chips, const RobustTuneResult &result)
{
    const RobustCandidate &picked = result.picked();
    const RobustCandidate &nominal = result.nominal();
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"robust_pick\",\"algo\":%s,\"chips\":%d,"
        "\"rows\":%d,\"cols\":%d,\"objective_s\":%s,"
        "\"nominal_rows\":%d,\"nominal_cols\":%d,"
        "\"nominal_objective_s\":%s,\"pick_differs\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, picked.plan.rows,
        picked.plan.cols, jsonNumber(picked.objective).c_str(),
        nominal.plan.rows, nominal.plan.cols,
        jsonNumber(nominal.objective).c_str(),
        result.pickDiffers() ? "true" : "false"));
}

} // namespace

Time
robustObjective(std::vector<Time> times, double q)
{
    if (times.empty())
        return 0.0;
    std::sort(times.begin(), times.end());
    if (q >= 1.0)
        return times.back();
    if (q <= 0.0)
        return times.front();
    const double pos = q * static_cast<double>(times.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = std::min(times.size() - 1, lo + 1);
    const double frac = pos - std::floor(pos);
    return times[lo] * (1.0 - frac) + times[hi] * frac;
}

std::vector<FaultScenario>
sampleScenarios(const RobustTuneConfig &cfg, int chips)
{
    if (chips <= 0)
        fatal("sampleScenarios: need a positive chip count (got %d)",
              chips);
    if (cfg.numScenarios <= 0)
        fatal("sampleScenarios: numScenarios must be positive (got %d)",
              cfg.numScenarios);
    if (!(cfg.linkDegradeFactor > 0.0 && cfg.linkDegradeFactor <= 1.0))
        fatal("sampleScenarios: linkDegradeFactor %g outside (0, 1]",
              cfg.linkDegradeFactor);
    static const char *kDirections[4] = {"link.E", "link.W", "link.S",
                                         "link.N"};
    std::vector<FaultScenario> out;
    std::uint64_t rng = cfg.seed;
    for (int i = 0; i < cfg.numScenarios; ++i) {
        FaultScenario s;
        s.seed = cfg.seed + static_cast<std::uint64_t>(i);
        s.maxLaunchJitter = cfg.maxLaunchJitter;
        for (int f = 0; f < cfg.faultsPerScenario; ++f) {
            CapacityFault fault;
            fault.pattern = kDirections[splitmix64(rng) % 4];
            fault.factor = cfg.linkDegradeFactor;
            fault.start = 0.0;
            fault.duration = -1.0; // persistent
            s.faults.push_back(std::move(fault));
        }
        if (uniform01(rng) < cfg.stragglerProb) {
            StragglerFault straggler;
            straggler.chip = static_cast<int>(
                splitmix64(rng) % static_cast<std::uint64_t>(chips));
            straggler.computeFactor = cfg.stragglerFactor;
            straggler.hbmFactor = cfg.stragglerFactor;
            s.stragglers.push_back(straggler);
        }
        out.push_back(std::move(s));
    }
    return out;
}

RobustTuneResult
tuneRobust(const LlmAutotuner &tuner, Algorithm algo,
           const TransformerConfig &model, const TrainingConfig &train,
           int chips, const RobustTuneConfig &cfg, bool optimize_dataflow)
{
    if (!(cfg.quantile > 0.0 && cfg.quantile <= 1.0))
        fatal("tuneRobust: quantile %g outside (0, 1]", cfg.quantile);

    RobustTuneResult result;
    result.scenarios = cfg.scenarios.empty() ? sampleScenarios(cfg, chips)
                                             : cfg.scenarios;

    const std::vector<AutotuneResult> shortlist = tuner.rankShapes(
        algo, model, train, chips, cfg.topK, optimize_dataflow);
    const ChipConfig &chip = tuner.cost().chip();

    for (const AutotuneResult &plan : shortlist) {
        RobustCandidate cand;
        cand.plan = plan;
        cand.nominalEst = plan.blockFcTime;

        std::vector<GemmPlan> gemms = plan.allPlans();
        if (cfg.maxGemmsPerEval > 0 &&
            static_cast<int>(gemms.size()) > cfg.maxGemmsPerEval)
            gemms.resize(static_cast<size_t>(cfg.maxGemmsPerEval));

        for (size_t i = 0; i < result.scenarios.size(); ++i) {
            Time step = 0.0;
            for (const GemmPlan &g : gemms) {
                const Gemm2DSpec spec =
                    makeSpec(g.gemm, g.dataflow, plan.rows, plan.cols,
                             g.sliceCount, chip.bytesPerElement);
                step += runGemmUnderScenario(chip, algo, spec,
                                             &result.scenarios[i])
                            .time;
            }
            cand.scenarioTimes.push_back(step);
            if (SearchTrace::global().enabled())
                traceRobustEval(algo, chips, cand, static_cast<int>(i),
                                step);
        }
        cand.objective = robustObjective(cand.scenarioTimes, cfg.quantile);
        result.candidates.push_back(std::move(cand));
    }

    // Pick the best objective; candidates are in nominal rank order,
    // so strict improvement is required to move off the nominal pick
    // (deterministic, and a tie keeps the fault-free optimum).
    for (size_t i = 1; i < result.candidates.size(); ++i)
        if (result.candidates[i].objective <
            result.candidates[static_cast<size_t>(result.pickedIndex)]
                .objective)
            result.pickedIndex = static_cast<int>(i);

    if (SearchTrace::global().enabled())
        traceRobustPick(algo, chips, result);
    return result;
}

} // namespace meshslice
