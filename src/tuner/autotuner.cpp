#include "tuner/autotuner.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "tuner/search_trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace meshslice {

const char *
stationaryName(Stationary st)
{
    switch (st) {
      case Stationary::kY:
        return "Y-stn";
      case Stationary::kX:
        return "X-stn";
      case Stationary::kW:
        return "W-stn";
    }
    return "?";
}

Stationary
stationaryFromName(std::string_view name, const std::string &context)
{
    for (Stationary st : {Stationary::kY, Stationary::kX, Stationary::kW})
        if (name == stationaryName(st))
            return st;
    fatal("%s: unknown stationary \"%.*s\" (want Y-stn/X-stn/W-stn)",
          context.c_str(), static_cast<int>(name.size()), name.data());
}

std::vector<GemmPlan>
AutotuneResult::allPlans() const
{
    std::vector<GemmPlan> out;
    for (const FcLayerPlan &layer : layers)
        out.insert(out.end(), layer.passes.begin(), layer.passes.end());
    return out;
}

Stationary
chooseStationary(std::int64_t m, std::int64_t k, std::int64_t n)
{
    const std::int64_t y = m * n; // output
    const std::int64_t x = m * k; // input
    const std::int64_t w = k * n; // weight
    if (y >= x && y >= w)
        return Stationary::kY; // ties go to the transpose-free default
    if (x >= w)
        return Stationary::kX;
    return Stationary::kW;
}

std::vector<GemmPlan>
dataflowsForLayer(Stationary st, const FcGemm &fwd)
{
    const std::int64_t m = fwd.m;   // tokens
    const std::int64_t kin = fwd.k; // input features
    const std::int64_t nout = fwd.n;

    auto plan = [&fwd](const char *suffix, Pass pass, Dataflow df,
                       std::int64_t pm, std::int64_t pk, std::int64_t pn) {
        GemmPlan p;
        p.gemm = fwd;
        p.gemm.name =
            fwd.name.substr(0, fwd.name.find('.')) + "." + suffix;
        p.gemm.pass = pass;
        p.gemm.m = pm;
        p.gemm.k = pk;
        p.gemm.n = pn;
        p.dataflow = df;
        return p;
    };

    switch (st) {
      case Stationary::kY:
        // Y = OS(X, W); X' = LS(Y', W); W' = RS(X, Y').
        return {
            plan("fwd", Pass::kForward, Dataflow::kOS, m, kin, nout),
            plan("bwdD", Pass::kBackwardData, Dataflow::kLS, m, nout, kin),
            plan("bwdW", Pass::kBackwardWeight, Dataflow::kRS, kin, m,
                 nout),
        };
      case Stationary::kX:
        // Y = LS(X, W^T); X' = OS(Y', W^T); W'^T = RS(Y', X).
        return {
            plan("fwd", Pass::kForward, Dataflow::kLS, m, kin, nout),
            plan("bwdD", Pass::kBackwardData, Dataflow::kOS, m, nout, kin),
            plan("bwdW", Pass::kBackwardWeight, Dataflow::kRS, nout, m,
                 kin),
        };
      case Stationary::kW:
        // Y = RS(X^T, W); X'^T = LS(W, Y'); W' = OS(X^T, Y').
        return {
            plan("fwd", Pass::kForward, Dataflow::kRS, m, kin, nout),
            plan("bwdD", Pass::kBackwardData, Dataflow::kLS, kin, nout, m),
            plan("bwdW", Pass::kBackwardWeight, Dataflow::kOS, kin, m,
                 nout),
        };
    }
    panic("dataflowsForLayer: bad stationary");
}

Gemm2DSpec
makeSpec(const FcGemm &gemm, Dataflow df, int rows, int cols,
         int slice_count, int bytes_per_element)
{
    Gemm2DSpec spec;
    spec.m = gemm.m;
    spec.k = gemm.k;
    spec.n = gemm.n;
    spec.dataflow = df;
    spec.rows = rows;
    spec.cols = cols;
    spec.sliceCount = slice_count;
    spec.bytesPerElement = bytes_per_element;
    return spec;
}

bool
shapeFeasible(const FcGemm &gemm, int rows, int cols)
{
    for (std::int64_t dim : {gemm.m, gemm.k, gemm.n})
        if (dim % rows != 0 || dim % cols != 0)
            return false;
    return true;
}

AutotuneResult
LlmAutotuner::tune(const TransformerConfig &model,
                   const TrainingConfig &train, int chips,
                   bool optimize_dataflow) const
{
    return tuneForAlgorithm(Algorithm::kMeshSlice, model, train, chips,
                            optimize_dataflow);
}

namespace {

/** Phase 1: dataflow and sharding per FC layer. */
std::vector<FcLayerPlan>
buildPhase1(Algorithm algo, const TransformerConfig &model,
            const TrainingConfig &train, bool optimize_dataflow)
{
    std::vector<FcLayerPlan> layers;
    for (const FcGemm &gemm : blockFcGemms(model, train)) {
        if (gemm.pass != Pass::kForward)
            continue;
        FcLayerPlan layer;
        layer.fcLayer = gemm.fcLayer;
        layer.stationary = optimize_dataflow
                               ? chooseStationary(gemm.m, gemm.k, gemm.n)
                               : Stationary::kY;
        // Cannon only implements the OS dataflow (Sec 2.3.2), and
        // OneSided pulls into a stationary C tile, so every pass of
        // either runs output-stationary with its computational shape.
        if (algo == Algorithm::kCannon || algo == Algorithm::kOneSided) {
            layer.passes = dataflowsForLayer(Stationary::kY, gemm);
            for (GemmPlan &p : layer.passes)
                p.dataflow = Dataflow::kOS;
        } else {
            layer.passes = dataflowsForLayer(layer.stationary, gemm);
        }
        layers.push_back(std::move(layer));
    }
    return layers;
}

} // namespace

AutotuneResult
LlmAutotuner::tuneForAlgorithm(Algorithm algo,
                               const TransformerConfig &model,
                               const TrainingConfig &train, int chips,
                               bool optimize_dataflow) const
{
    return tunePhase2(
        algo, buildPhase1(algo, model, train, optimize_dataflow), chips);
}

AutotuneResult
LlmAutotuner::planAtShape(Algorithm algo, const TransformerConfig &model,
                          const TrainingConfig &train, int rows, int cols,
                          bool optimize_dataflow, int force_s) const
{
    AutotuneResult out;
    out.rows = rows;
    out.cols = cols;
    out.layers = buildPhase1(algo, model, train, optimize_dataflow);
    out.blockFcTime = 0.0;
    for (FcLayerPlan &layer : out.layers) {
        for (GemmPlan &plan : layer.passes) {
            if (!shapeFeasible(plan.gemm, rows, cols))
                panic("planAtShape: %dx%d does not divide GeMM %s", rows,
                      cols, plan.gemm.name.c_str());
            Gemm2DSpec spec = makeSpec(plan.gemm, plan.dataflow, rows,
                                       cols);
            if (force_s > 0) {
                spec.sliceCount = force_s;
                plan.sliceCount = force_s;
                plan.estTime = cost_.estimateGemmTime(algo, spec);
            } else {
                auto [s, t] = cost_.tuneSliceCount(algo, spec);
                plan.sliceCount = s;
                plan.estTime = t;
            }
            out.blockFcTime += plan.estTime;
        }
    }
    return out;
}

namespace {

/** One phase-2 candidate's tuned plan, without the layers deep copy. */
struct ShapeEval
{
    int rows = 0;
    int cols = 0;
    Time blockFcTime = 1e300;
    /** (sliceCount, estTime) per GeMM, in allPlans() order. */
    std::vector<std::pair<int, Time>> perGemm;
};

/**
 * One phase-2 JSONL record per candidate mesh shape. Shapes pruned by
 * the divisibility pre-check carry `"feasible":false` and no time;
 * evaluated shapes report the summed per-block FC time (`null` when
 * no slice count fit in memory at that shape).
 */
void
traceShapeCandidate(Algorithm algo, int chips, int rows, int cols,
                    bool feasible, Time block_fc)
{
    const bool timed = feasible && block_fc < 1e300;
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"shape\",\"algo\":%s,\"chips\":%d,\"rows\":%d,"
        "\"cols\":%d,\"feasible\":%s,\"block_fc_s\":%s}",
        jsonString(algorithmName(algo)).c_str(), chips, rows, cols,
        feasible ? "true" : "false",
        timed ? jsonNumber(block_fc).c_str() : "null"));
}

} // namespace

AutotuneResult
LlmAutotuner::tunePhase2(Algorithm algo, std::vector<FcLayerPlan> layers,
                         int chips) const
{
    // Feasibility pre-check (cheap, serial): collect the candidate
    // mesh shapes, breaking out of the pass scan on the first
    // non-dividing GeMM instead of evaluating all 12.
    std::vector<std::pair<int, int>> shapes;
    for (auto [rows, cols] : meshShapesOf(chips)) {
        if (algo == Algorithm::kCannon && rows != cols)
            continue;
        bool feasible = true;
        for (const FcLayerPlan &layer : layers) {
            for (const GemmPlan &plan : layer.passes) {
                if (!shapeFeasible(plan.gemm, static_cast<int>(rows),
                                   static_cast<int>(cols))) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible)
                break;
        }
        if (feasible)
            shapes.emplace_back(static_cast<int>(rows),
                                static_cast<int>(cols));
        else if (SearchTrace::global().enabled())
            traceShapeCandidate(algo, chips, static_cast<int>(rows),
                                static_cast<int>(cols),
                                /*feasible=*/false, 1e300);
    }
    if (shapes.empty())
        panic("LlmAutotuner: no feasible mesh shape for %d chips", chips);

    // Evaluate candidates in parallel. Each evaluation only records
    // the tuned (S, time) pairs — the layers vector is *not* copied
    // per shape; the winner's copy is materialized once at the end.
    // Trace records ("slice" lines of the inner search plus the
    // "shape" line) are buffered per candidate and flushed in serial
    // index order below, so the trace file is byte-identical to a
    // MESHSLICE_THREADS=1 run.
    const bool tracing = SearchTrace::global().enabled();
    std::vector<SearchTraceCapture> captures(tracing ? shapes.size() : 0);
    std::vector<ShapeEval> evals(shapes.size());
    parallelFor(static_cast<std::int64_t>(shapes.size()), 1,
                [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t idx = begin; idx < end; ++idx) {
            ShapeEval ev;
            ev.rows = shapes[static_cast<size_t>(idx)].first;
            ev.cols = shapes[static_cast<size_t>(idx)].second;
            ev.blockFcTime = 0.0;
            std::optional<SearchTraceCapture::Scope> scope;
            if (tracing)
                scope.emplace(captures[static_cast<size_t>(idx)]);
            for (const FcLayerPlan &layer : layers) {
                for (const GemmPlan &plan : layer.passes) {
                    const Gemm2DSpec spec = makeSpec(
                        plan.gemm, plan.dataflow, ev.rows, ev.cols);
                    auto [s, t] = cost_.tuneSliceCount(algo, spec);
                    ev.perGemm.emplace_back(s, t);
                    ev.blockFcTime += t; // 1e300 == out of memory
                }
            }
            if (tracing)
                traceShapeCandidate(algo, chips, ev.rows, ev.cols,
                                    /*feasible=*/true, ev.blockFcTime);
            evals[static_cast<size_t>(idx)] = std::move(ev);
        }
    });
    // Serial, index-ordered fold (meshShapesOf order = increasing
    // rows): ties keep the earliest candidate — lowest rows first — so
    // the result is bit-identical to the serial loop for any
    // MESHSLICE_THREADS.
    ShapeEval best;
    for (size_t i = 0; i < evals.size(); ++i) {
        if (tracing)
            captures[i].flushToGlobal();
        if (evals[i].blockFcTime < best.blockFcTime)
            best = std::move(evals[i]);
    }
    if (best.blockFcTime >= 1e300)
        panic("LlmAutotuner: no feasible mesh shape for %d chips", chips);

    AutotuneResult out;
    out.rows = best.rows;
    out.cols = best.cols;
    out.blockFcTime = best.blockFcTime;
    out.layers = std::move(layers); // the only layers copy/move
    size_t g = 0;
    for (FcLayerPlan &layer : out.layers) {
        for (GemmPlan &plan : layer.passes) {
            plan.sliceCount = best.perGemm[g].first;
            plan.estTime = best.perGemm[g].second;
            ++g;
        }
    }
    return out;
}

std::vector<AutotuneResult>
LlmAutotuner::rankShapes(Algorithm algo, const TransformerConfig &model,
                         const TrainingConfig &train, int chips, int k,
                         bool optimize_dataflow) const
{
    if (k <= 0)
        fatal("LlmAutotuner::rankShapes: k must be positive (got %d)", k);
    const std::vector<FcLayerPlan> layers =
        buildPhase1(algo, model, train, optimize_dataflow);

    std::vector<std::pair<int, int>> shapes;
    for (auto [rows, cols] : meshShapesOf(chips)) {
        if (algo == Algorithm::kCannon && rows != cols)
            continue;
        bool feasible = true;
        for (const FcLayerPlan &layer : layers) {
            for (const GemmPlan &plan : layer.passes)
                if (!shapeFeasible(plan.gemm, static_cast<int>(rows),
                                   static_cast<int>(cols))) {
                    feasible = false;
                    break;
                }
            if (!feasible)
                break;
        }
        if (feasible)
            shapes.emplace_back(static_cast<int>(rows),
                                static_cast<int>(cols));
    }
    if (shapes.empty())
        panic("LlmAutotuner: no feasible mesh shape for %d chips", chips);

    // Evaluate every candidate (deterministically indexed, so the
    // parallel fill is bit-identical to the serial loop). The inner
    // search's "slice" trace records are buffered per candidate and
    // flushed in index order for a deterministic trace file.
    const bool tracing = SearchTrace::global().enabled();
    std::vector<SearchTraceCapture> captures(tracing ? shapes.size() : 0);
    std::vector<ShapeEval> evals(shapes.size());
    parallelFor(static_cast<std::int64_t>(shapes.size()), 1,
                [&](std::int64_t begin, std::int64_t end) {
                    for (std::int64_t i = begin; i < end; ++i) {
                        ShapeEval ev;
                        ev.rows = shapes[static_cast<size_t>(i)].first;
                        ev.cols = shapes[static_cast<size_t>(i)].second;
                        ev.blockFcTime = 0.0;
                        std::optional<SearchTraceCapture::Scope> scope;
                        if (tracing)
                            scope.emplace(
                                captures[static_cast<size_t>(i)]);
                        for (const FcLayerPlan &layer : layers)
                            for (const GemmPlan &plan : layer.passes) {
                                const Gemm2DSpec spec =
                                    makeSpec(plan.gemm, plan.dataflow,
                                             ev.rows, ev.cols);
                                auto [s, t] =
                                    cost_.tuneSliceCount(algo, spec);
                                ev.perGemm.emplace_back(s, t);
                                ev.blockFcTime += t;
                            }
                        evals[static_cast<size_t>(i)] = std::move(ev);
                    }
                });
    for (SearchTraceCapture &cap : captures)
        cap.flushToGlobal();

    // meshShapesOf yields increasing rows; stable sort on time keeps
    // the lowest-rows candidate first on ties, matching tunePhase2.
    std::stable_sort(evals.begin(), evals.end(),
                     [](const ShapeEval &a, const ShapeEval &b) {
                         return a.blockFcTime < b.blockFcTime;
                     });

    std::vector<AutotuneResult> out;
    for (const ShapeEval &ev : evals) {
        if (static_cast<int>(out.size()) >= k)
            break;
        if (ev.blockFcTime >= 1e300)
            continue; // no slice count fit in memory at this shape
        AutotuneResult res;
        res.rows = ev.rows;
        res.cols = ev.cols;
        res.blockFcTime = ev.blockFcTime;
        res.layers = layers;
        size_t g = 0;
        for (FcLayerPlan &layer : res.layers)
            for (GemmPlan &plan : layer.passes) {
                plan.sliceCount = ev.perGemm[g].first;
                plan.estTime = ev.perGemm[g].second;
                ++g;
            }
        out.push_back(std::move(res));
    }
    if (out.empty())
        panic("LlmAutotuner: no feasible mesh shape for %d chips", chips);
    return out;
}

} // namespace meshslice
