#include "tuner/explain.hpp"

#include <algorithm>

#include "core/fault_study.hpp"
#include "tuner/search_trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace meshslice {

void
mergeExplain(ExplainRecord &into, const ExplainRecord &add)
{
    into.span += add.span;
    for (int c = 0; c < kSpanCategoryCount; ++c)
        into.byCategory[c] += add.byCategory[c];
    into.whatifCompute2x += add.whatifCompute2x;
    into.whatifLink2x += add.whatifLink2x;
    into.nodeCount += add.nodeCount;
    into.attributionError =
        std::max(into.attributionError, add.attributionError);
    into.hotSpans.insert(into.hotSpans.end(), add.hotSpans.begin(),
                         add.hotSpans.end());
    std::stable_sort(into.hotSpans.begin(), into.hotSpans.end(),
                     [](const HotSpan &a, const HotSpan &b) {
                         return a.duration > b.duration;
                     });
    if (into.hotSpans.size() > 5)
        into.hotSpans.resize(5);
}

ExplainRecord
explainPlanGemms(const ChipConfig &chip, Algorithm algo,
                 const AutotuneResult &plan,
                 const std::vector<GemmPlan> &gemms, Time *sim_time)
{
    ExplainRecord agg;
    Time total = 0.0;
    for (const GemmPlan &g : gemms) {
        const Gemm2DSpec spec =
            makeSpec(g.gemm, g.dataflow, plan.rows, plan.cols,
                     g.sliceCount, chip.bytesPerElement);
        ExplainRecord rec;
        total += runGemmUnderScenario(chip, algo, spec, nullptr, nullptr,
                                      &rec)
                     .time;
        mergeExplain(agg, rec);
    }
    if (sim_time != nullptr)
        *sim_time = total;
    return agg;
}

std::string
explainRecordJson(const char *context, Algorithm algo, int chips, int rank,
                  int rows, int cols, Time sim_time,
                  const ExplainRecord &rec)
{
    std::string categories = "{";
    for (int c = 0; c < kSpanCategoryCount; ++c) {
        if (c > 0)
            categories += ",";
        categories += strprintf(
            "\"%s\":%s",
            spanCategoryName(static_cast<SpanCategory>(c)),
            jsonNumber(rec.byCategory[c]).c_str());
    }
    categories += "}";

    std::string hot = "[";
    for (size_t i = 0; i < rec.hotSpans.size(); ++i) {
        const HotSpan &h = rec.hotSpans[i];
        if (i > 0)
            hot += ",";
        hot += strprintf("{\"name\":%s,\"chip\":%d,\"dur_s\":%s,"
                         "\"slack_s\":%s}",
                         jsonString(h.name).c_str(), h.chip,
                         jsonNumber(h.duration).c_str(),
                         jsonNumber(h.slack).c_str());
    }
    hot += "]";

    return strprintf(
        "{\"phase\":\"explain\",\"context\":%s,\"algo\":%s,"
        "\"chips\":%d,\"rank\":%d,\"rows\":%d,\"cols\":%d,"
        "\"sim_s\":%s,\"span_s\":%s,\"categories\":%s,\"hot\":%s,"
        "\"whatif_compute2x_s\":%s,\"whatif_link2x_s\":%s,"
        "\"nodes\":%d,\"attr_err_s\":%s}",
        jsonString(context).c_str(),
        jsonString(algorithmName(algo)).c_str(), chips, rank, rows, cols,
        jsonNumber(sim_time).c_str(), jsonNumber(rec.span).c_str(),
        categories.c_str(), hot.c_str(),
        jsonNumber(rec.whatifCompute2x).c_str(),
        jsonNumber(rec.whatifLink2x).c_str(), rec.nodeCount,
        jsonNumber(rec.attributionError).c_str());
}

std::vector<CandidateExplain>
explainShortlist(const LlmAutotuner &tuner, Algorithm algo,
                 const TransformerConfig &model, const TrainingConfig &train,
                 int chips, int k, bool optimize_dataflow, int max_gemms)
{
    const std::vector<AutotuneResult> shortlist =
        tuner.rankShapes(algo, model, train, chips, k, optimize_dataflow);
    const ChipConfig &chip = tuner.cost().chip();

    std::vector<CandidateExplain> out;
    out.reserve(shortlist.size());
    for (size_t ci = 0; ci < shortlist.size(); ++ci) {
        CandidateExplain cand;
        cand.rank = static_cast<int>(ci);
        cand.plan = shortlist[ci];
        std::vector<GemmPlan> gemms = cand.plan.allPlans();
        if (max_gemms > 0 &&
            static_cast<int>(gemms.size()) > max_gemms)
            gemms.resize(static_cast<size_t>(max_gemms));
        cand.explain = explainPlanGemms(chip, algo, cand.plan, gemms,
                                        &cand.simTime);
        if (SearchTrace::global().enabled())
            SearchTrace::global().record(explainRecordJson(
                "shape", algo, chips, cand.rank, cand.plan.rows,
                cand.plan.cols, cand.simTime, cand.explain));
        out.push_back(std::move(cand));
    }
    return out;
}

} // namespace meshslice
