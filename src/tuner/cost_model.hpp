/**
 * @file
 * Analytical cost models of communication and computation
 * (Sec 3.2.2 / 4.5).
 *
 * Communication: `cost = t_launch + steps(P) * (t_sync + shard/bw)`,
 * the paper's linear model (with the step count reflecting whether the
 * ICI rings are driven bidirectionally). The three parameters are
 * *calibrated against the simulator* by the same procedure the paper
 * used against real TPUs: AG runs on 2- and 4-chip rings over shard
 * sizes from 8 KB to 512 MB, `t_sync` from the chip-count delta and
 * `bw`/`t_launch` from linear regression.
 *
 * Computation: FLOPs divided by the shape's effective throughput (the
 * measured-constant model of Sec 3.2.2).
 *
 * On top of these, `estimateGemmTime` assembles the
 * prologue/steady-state/epilogue pipeline estimate for every algorithm
 * so the autotuner can rank configurations.
 */
#ifndef MESHSLICE_TUNER_COST_MODEL_HPP_
#define MESHSLICE_TUNER_COST_MODEL_HPP_

#include <string>

#include "core/spec.hpp"
#include "hw/chip_config.hpp"

namespace meshslice {

/** Calibrated parameters of the linear communication model. */
struct CommCostParams
{
    Rate bw = 0.0;       ///< effective per-step link bandwidth
    Time tSync = 0.0;    ///< per-step synchronization latency
    Time tLaunch = 0.0;  ///< per-operation launch overhead
};

/**
 * Calibrate the communication model against the cluster simulator
 * (stand-in for the paper's 2- and 4-chip TPUv4 microbenchmarks).
 *
 * Memoized process-wide on `chipConfigFingerprint`: repeated calls
 * with an identical configuration (every bench binary and every test
 * constructs `CostModel::calibrated(tpuV4Config())`) run the ring
 * simulations exactly once. Thread-safe with per-key single-flight:
 * concurrent callers with the *same* config wait for the one running
 * calibration instead of repeating it, while callers with *different*
 * configs calibrate concurrently — the PlanEngine hammers this from
 * every pool thread.
 */
CommCostParams calibrateCommModel(const ChipConfig &cfg);

/**
 * Exact textual fingerprint of every ChipConfig field the ring
 * simulations (and therefore any derived result) can depend on, in
 * hex-float form via `util/fingerprint` so distinct values never
 * collide through rounding. Keys the calibration memoization and the
 * cluster component of the PlanEngine's plan-cache key.
 */
std::string chipConfigFingerprint(const ChipConfig &cfg);

/**
 * Number of *actual* (cache-missing) calibration simulations this
 * process has performed. Tests assert it does not grow across
 * repeated `CostModel::calibrated` calls with the same config.
 */
long calibrationRunCount();

/** Drop all memoized calibrations (tests only; the counter stays). */
void clearCalibrationCache();

/** Analytical cost model over a fixed chip configuration. */
class CostModel
{
  public:
    CostModel(const ChipConfig &cfg, const CommCostParams &params)
        : cfg_(cfg), params_(params)
    {
    }

    /** Convenience: calibrate then construct. */
    static CostModel calibrated(const ChipConfig &cfg);

    const CommCostParams &params() const { return params_; }
    const ChipConfig &chip() const { return cfg_; }

    /** AG/RdS of @p shard bytes per chip on a P-ring. */
    Time collectiveTime(int ring_size, Bytes shard_bytes) const;

    /** SUMMA pipelined bcast/reduce of @p payload on a P-ring. */
    Time broadcastTime(int ring_size, Bytes payload_bytes) const;

    /** One SendRecv rotation of @p block bytes. */
    Time shiftTime(Bytes block_bytes) const;

    /** Local GeMM time (effective-FLOPS model). */
    Time computeTime(const GemmWork &work) const;

    /**
     * Pipeline estimate of a full 2D GeMM under @p algo:
     * prologue + (S-1) * steady + epilogue (Sec 3.2.2).
     */
    Time estimateGemmTime(Algorithm algo, const Gemm2DSpec &spec) const;

    /** MeshSlice-specific alias used by the autotuner. */
    Time
    meshSliceTime(const Gemm2DSpec &spec) const
    {
        return estimateGemmTime(Algorithm::kMeshSlice, spec);
    }

    /**
     * Best slice count for @p algo on this spec (searches the valid S
     * values, Sec 3.2.2). Returns {S, estimated time}.
     */
    std::pair<int, Time> tuneSliceCount(Algorithm algo,
                                        const Gemm2DSpec &spec) const;

  private:
    ChipConfig cfg_;
    CommCostParams params_;
};

} // namespace meshslice

#endif // MESHSLICE_TUNER_COST_MODEL_HPP_
