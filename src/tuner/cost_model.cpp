#include "tuner/cost_model.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/memory_model.hpp"
#include "net/collectives.hpp"
#include "net/topology.hpp"
#include "tuner/search_trace.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace meshslice {

namespace {

/** Simulate one AG on a fresh P-chip ring, returning its duration. */
Time
simulateAllGather(const ChipConfig &cfg, int chips, Bytes shard)
{
    Cluster cluster(cfg, chips);
    RingNetwork net(cluster);
    Time total = -1.0;
    ringAllGather(cluster, net.ring(), shard, 0,
                  [&total](const CommStats &stats) { total = stats.total; });
    cluster.sim().run();
    if (total < 0.0)
        panic("calibration: AllGather did not complete");
    return total;
}

std::mutex g_calibration_mu;
std::condition_variable g_calibration_cv;
std::unordered_map<std::string, CommCostParams> g_calibration_cache;
std::unordered_set<std::string> g_calibration_inflight;
std::atomic<long> g_calibration_runs{0};

/** Run the actual 2-/4-chip ring simulations (uncached). */
CommCostParams calibrateCommModelUncached(const ChipConfig &cfg);

} // namespace

std::string
chipConfigFingerprint(const ChipConfig &cfg)
{
    Fingerprint fp;
    fp.field("peakFlops", cfg.peakFlops)
        .field("hbmBandwidth", cfg.hbmBandwidth)
        .field("iciLinkBandwidth", cfg.iciLinkBandwidth)
        .field("hostDmaBandwidth", cfg.hostDmaBandwidth)
        .field("syncLatency", cfg.syncLatency)
        .field("launchOverhead", cfg.launchOverhead)
        .field("systolicDim", cfg.systolicDim)
        .field("memBlockCols", cfg.memBlockCols)
        .field("scratchpadBytes", cfg.scratchpadBytes)
        .field("hbmCapacity", cfg.hbmCapacity)
        .field("bytesPerElement", cfg.bytesPerElement)
        .field("bidirectionalIci", cfg.bidirectionalIci)
        .field("logicalMeshContention", cfg.logicalMeshContention)
        .field("allowSendRecvOverlap", cfg.allowSendRecvOverlap)
        .field("allowCollectiveOverlap", cfg.allowCollectiveOverlap);
    return fp.str();
}

long
calibrationRunCount()
{
    return g_calibration_runs.load(std::memory_order_relaxed);
}

void
clearCalibrationCache()
{
    std::unique_lock<std::mutex> lock(g_calibration_mu);
    g_calibration_cache.clear();
}

CommCostParams
calibrateCommModel(const ChipConfig &cfg)
{
    const std::string key = chipConfigFingerprint(cfg);
    // Memoized process-wide with per-key single-flight: every bench
    // binary and every test calibrates a given chip configuration
    // exactly once. A caller that finds its key already being
    // calibrated waits for that calibration instead of repeating it;
    // callers with *different* keys run their simulations concurrently
    // (the lock is dropped around the simulation itself).
    std::unique_lock<std::mutex> lock(g_calibration_mu);
    for (;;) {
        auto it = g_calibration_cache.find(key);
        if (it != g_calibration_cache.end())
            return it->second;
        if (g_calibration_inflight.count(key) == 0)
            break;
        g_calibration_cv.wait(lock);
    }
    g_calibration_inflight.insert(key);
    lock.unlock();
    const CommCostParams params = calibrateCommModelUncached(cfg);
    lock.lock();
    g_calibration_cache.emplace(key, params);
    g_calibration_inflight.erase(key);
    g_calibration_cv.notify_all();
    return params;
}

namespace {

CommCostParams
calibrateCommModelUncached(const ChipConfig &cfg)
{
    g_calibration_runs.fetch_add(1, std::memory_order_relaxed);
    // Shard sizes 8 KB .. 512 MB (paper Sec 4.5).
    std::vector<Bytes> sizes;
    for (Bytes s = KB(8); s <= MB(512); s *= 8)
        sizes.push_back(s);

    const int steps2 = collectiveStepCount(cfg, 2);
    const int steps4 = collectiveStepCount(cfg, 4);

    std::vector<double> t2, t4;
    for (Bytes s : sizes) {
        t2.push_back(simulateAllGather(cfg, 2, s));
        t4.push_back(simulateAllGather(cfg, 4, s));
    }

    // Linear regression of t2 against shard size:
    // t2(s) = (launch + steps2*sync) + (steps2/bw) * s.
    const size_t n = sizes.size();
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(sizes[i]);
        sx += x;
        sy += t2[i];
        sxx += x * x;
        sxy += x * t2[i];
    }
    const double slope =
        (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const double intercept = (sy - slope * sx) / n;

    CommCostParams params;
    params.bw = static_cast<double>(steps2) / slope;

    // t_sync from the chip-count delta at small sizes (where the
    // transfer term is negligible but still subtracted exactly).
    double sync_acc = 0.0;
    int sync_n = 0;
    for (size_t i = 0; i < n && sizes[i] <= MB(1); ++i) {
        const double delta = t4[i] - t2[i];
        const double per_step = delta / (steps4 - steps2);
        sync_acc += per_step - static_cast<double>(sizes[i]) / params.bw;
        ++sync_n;
    }
    params.tSync = sync_n > 0 ? sync_acc / sync_n : cfg.syncLatency;
    params.tLaunch = intercept - steps2 * params.tSync;
    if (params.tLaunch < 0.0)
        params.tLaunch = 0.0;
    return params;
}

} // namespace

CostModel
CostModel::calibrated(const ChipConfig &cfg)
{
    return CostModel(cfg, calibrateCommModel(cfg));
}

Time
CostModel::collectiveTime(int ring_size, Bytes shard_bytes) const
{
    if (ring_size <= 1 || shard_bytes <= 0)
        return 0.0;
    const int steps = collectiveStepCount(cfg_, ring_size);
    return params_.tLaunch +
           steps * (params_.tSync +
                    static_cast<double>(shard_bytes) / params_.bw);
}

Time
CostModel::broadcastTime(int ring_size, Bytes payload_bytes) const
{
    if (ring_size <= 1 || payload_bytes <= 0)
        return 0.0;
    const int total_hops = ring_size - 1;
    const int hops = (cfg_.bidirectionalIci && total_hops > 1)
                         ? (total_hops + 1) / 2
                         : total_hops;
    const int packets = optimalPacketCount(cfg_, hops, payload_bytes);
    const int stages = hops + packets - 1;
    return params_.tLaunch +
           stages * (params_.tSync + static_cast<double>(payload_bytes) /
                                         packets / params_.bw);
}

Time
CostModel::shiftTime(Bytes block_bytes) const
{
    if (block_bytes <= 0)
        return 0.0;
    Bytes per_dir = cfg_.bidirectionalIci ? (block_bytes + 1) / 2
                                          : block_bytes;
    return params_.tLaunch + params_.tSync +
           static_cast<double>(per_dir) / params_.bw;
}

Time
CostModel::computeTime(const GemmWork &work) const
{
    if (work.empty())
        return 0.0;
    return gemmIdealTime(cfg_, work);
}

Time
CostModel::estimateGemmTime(Algorithm algo, const Gemm2DSpec &spec) const
{
    const bool overlap = cfg_.allowCollectiveOverlap;
    const FlowSide h = horizontalFlow(spec);
    const FlowSide v = verticalFlow(spec);
    const Bytes chips = spec.chips();

    switch (algo) {
      case Algorithm::kMeshSlice:
      case Algorithm::kCollective: {
        Gemm2DSpec eff = spec;
        if (algo == Algorithm::kCollective)
            eff.sliceCount = 1;
        const int s = eff.sliceCount;
        const Time t_h = collectiveTime(eff.cols,
                                        h.matrixBytes / (chips * s));
        const Time t_v = collectiveTime(eff.rows,
                                        v.matrixBytes / (chips * s));
        const Time t_c = computeTime(localSliceWork(eff));
        Time pre = 0.0, post = 0.0;
        // AG sides form the prologue; RdS sides trail the compute.
        const Time th_pre = h.op == CollKind::kAllGather ? t_h : 0.0;
        const Time tv_pre = v.op == CollKind::kAllGather ? t_v : 0.0;
        const Time th_post = h.op == CollKind::kReduceScatter ? t_h : 0.0;
        const Time tv_post = v.op == CollKind::kReduceScatter ? t_v : 0.0;
        pre = overlap ? std::max(th_pre, tv_pre) : th_pre + tv_pre;
        post = th_post + tv_post;
        if (!overlap)
            return s * (pre + t_c + post);
        const Time steady = std::max({t_h, t_v, t_c});
        return pre + (s - 1) * steady + t_c + post;
      }
      case Algorithm::kWang: {
        const int s = spec.sliceCount;
        // Per-link traffic decides the overlapped direction.
        const Bytes traffic_h =
            h.matrixBytes / chips * (spec.cols - 1);
        const Bytes traffic_v =
            v.matrixBytes / chips * (spec.rows - 1);
        const bool ov_h = traffic_h >= traffic_v;
        const Bytes ov_traffic = ov_h ? traffic_h : traffic_v;
        const Bytes bl_shard = (ov_h ? v : h).matrixBytes / chips;
        const int bl_ring = ov_h ? spec.rows : spec.cols;
        const Time t_block = collectiveTime(bl_ring, bl_shard);
        const Time t_shift = shiftTime(ov_traffic / s);
        const Time t_c = computeTime(localSliceWork(spec));
        const Time steady = std::max(t_shift, t_c);
        return t_block + t_shift + (s - 1) * steady + t_c;
      }
      case Algorithm::kSumma: {
        const int p_iter = std::lcm(spec.rows, spec.cols);
        const int s = std::min(spec.sliceCount, p_iter);
        Gemm2DSpec eff = spec;
        eff.sliceCount = s;
        const Time t_bh = broadcastTime(
            spec.cols,
            h.matrixBytes / (static_cast<Bytes>(spec.rows) * p_iter));
        const Time t_bv = broadcastTime(
            spec.rows,
            v.matrixBytes / (static_cast<Bytes>(spec.cols) * p_iter));
        const Time t_c = computeTime(localSliceWork(eff));
        const Time comm_iter = overlap ? std::max(t_bh, t_bv)
                                       : t_bh + t_bv;
        const Time comm_total = p_iter * comm_iter;
        const Time comp_total = s * t_c;
        if (!overlap)
            return comm_total + comp_total;
        return comm_iter + std::max(comm_total - comm_iter,
                                    comp_total - t_c) +
               t_c;
      }
      case Algorithm::kOneSided: {
        // Brock & Golin one-sided gets: no sync term anywhere. Per
        // slice every tile pulls (P-1) peer shards along its row and
        // its column ring with shortest-path routing; averaged over a
        // ring's 2P directed links the per-link bytes come to
        // hopsSum(P)/2 * shard, hopsSum(P) = sum_d min(d, P-d).
        const int s = std::max(1, spec.sliceCount);
        auto hops_sum = [](int p) {
            Bytes total = 0;
            for (int d = 1; d < p; ++d)
                total += std::min(d, p - d);
            return total;
        };
        const Bytes h_shard = h.matrixBytes / (chips * s);
        const Bytes v_shard = v.matrixBytes / (chips * s);
        const double link_bytes =
            (static_cast<double>(hops_sum(spec.cols)) * h_shard +
             static_cast<double>(hops_sum(spec.rows)) * v_shard) /
            2.0;
        // Each get crosses both endpoints' NIC queues and HBMs, and
        // by symmetry every chip serves exactly what it pulls.
        const double endpoint_bytes =
            static_cast<double>(spec.cols - 1) * h_shard +
            static_cast<double>(spec.rows - 1) * v_shard;
        const double nic_bw = Cluster::kNicLinksPerChip * params_.bw;
        const Time t_get =
            params_.tLaunch +
            std::max({link_bytes / params_.bw,
                      endpoint_bytes / nic_bw,
                      2.0 * endpoint_bytes / cfg_.hbmBandwidth});
        const Time t_c = computeTime(localSliceWork(spec));
        if (!cfg_.allowSendRecvOverlap)
            return s * (t_get + t_c);
        return t_get + (s - 1) * std::max(t_get, t_c) + t_c;
      }
      case Algorithm::kCannon: {
        if (spec.rows != spec.cols)
            return 1e300; // infeasible configuration
        const int p = spec.rows;
        const Bytes e = spec.bytesPerElement;
        const Time shift_a = shiftTime(spec.m * spec.k * e / chips);
        const Time shift_b = shiftTime(spec.k * spec.n * e / chips);
        const Time skew = (p / 2) * std::max(shift_a, shift_b);
        const GemmWork work{spec.m / p, spec.k / p, spec.n / p};
        const Time t_c = computeTime(work);
        const Time steady = std::max({shift_a, shift_b, t_c});
        return skew + std::max(shift_a, shift_b) + (p - 1) * steady + t_c;
      }
      default:
        panic("estimateGemmTime: unsupported algorithm %s",
              algorithmName(algo));
    }
}

namespace {

/**
 * One phase-1 JSONL record per slice-count candidate: the GeMM, the
 * mesh shape, the candidate S, whether it fit in HBM, and the analytic
 * time estimate (`null` when the candidate was pruned).
 */
void
traceSliceCandidate(Algorithm algo, const Gemm2DSpec &spec, int s,
                    bool fits, Time est)
{
    SearchTrace::global().record(strprintf(
        "{\"phase\":\"slice\",\"algo\":%s,\"m\":%lld,\"k\":%lld,"
        "\"n\":%lld,\"dataflow\":%s,\"rows\":%d,\"cols\":%d,\"s\":%d,"
        "\"fits\":%s,\"est_s\":%s}",
        jsonString(algorithmName(algo)).c_str(),
        static_cast<long long>(spec.m), static_cast<long long>(spec.k),
        static_cast<long long>(spec.n),
        jsonString(dataflowName(spec.dataflow)).c_str(), spec.rows,
        spec.cols, s, fits ? "true" : "false",
        fits ? jsonNumber(est).c_str() : "null"));
}

} // namespace

std::pair<int, Time>
CostModel::tuneSliceCount(Algorithm algo, const Gemm2DSpec &spec) const
{
    const bool tracing = SearchTrace::global().enabled();
    if (algo == Algorithm::kCollective || algo == Algorithm::kCannon) {
        Gemm2DSpec fixed = spec;
        fixed.sliceCount = algo == Algorithm::kCannon ? spec.rows : 1;
        const bool fits = fitsInMemory(cfg_, algo, fixed);
        const Time est =
            fits ? estimateGemmTime(algo, fixed) : Time{1e300};
        if (tracing)
            traceSliceCandidate(algo, fixed, fixed.sliceCount, fits, est);
        return {fixed.sliceCount, est};
    }
    const std::vector<int> slice_counts = validSliceCounts(cfg_, spec);
    // Candidate evaluations are independent; the serial index-ordered
    // reduction keeps the argmin deterministic (validSliceCounts is
    // increasing, so ties resolve to the lowest S exactly as the
    // serial loop did). Chunked so the per-candidate work amortizes
    // the pool hand-off; nested calls (e.g. from the phase-2 shape
    // search) run inline on the calling worker. Trace records are
    // buffered per candidate and flushed in index order, keeping the
    // trace file deterministic when this runs at top level on the pool.
    std::vector<SearchTraceCapture> captures(
        tracing ? slice_counts.size() : 0);
    const auto eval = [&](std::int64_t i) -> std::pair<int, Time> {
        std::optional<SearchTraceCapture::Scope> scope;
        if (tracing)
            scope.emplace(captures[static_cast<size_t>(i)]);
        Gemm2DSpec candidate = spec;
        candidate.sliceCount = slice_counts[static_cast<size_t>(i)];
        // Slicing shrinks the gather buffers; configurations that blow
        // the HBM capacity are not schedulable at all.
        if (!fitsInMemory(cfg_, algo, candidate)) {
            if (tracing)
                traceSliceCandidate(algo, candidate, candidate.sliceCount,
                                    /*fits=*/false, 1e300);
            return {0, 1e300};
        }
        const Time est = estimateGemmTime(algo, candidate);
        if (tracing)
            traceSliceCandidate(algo, candidate, candidate.sliceCount,
                                /*fits=*/true, est);
        return {candidate.sliceCount, est};
    };
    const auto [best_s, best_t] = parallelMapReduce(
        static_cast<std::int64_t>(slice_counts.size()),
        std::pair<int, Time>{0, 1e300}, eval,
        [](std::pair<int, Time> acc, std::pair<int, Time> next) {
            return next.first != 0 && next.second < acc.second ? next
                                                               : acc;
        },
        /*chunk=*/4);
    for (SearchTraceCapture &cap : captures)
        cap.flushToGlobal();
    if (best_s == 0)
        return {1, 1e300}; // nothing fits at this mesh shape
    return {best_s, best_t};
}

} // namespace meshslice
