/**
 * @file
 * The MeshSlice LLM autotuner (Sec 3.2).
 *
 * Phase 1 picks, per FC layer, the dataflow that keeps the largest of
 * {X, W, Y} stationary, then derives the backward-pass dataflows from
 * the same row of Table 1 (so nothing is transposed between passes and
 * each matrix always flows in the same direction). Phase 2 exhaustively
 * co-optimizes the cluster's mesh shape and each GeMM's slice count
 * using the analytical cost models.
 */
#ifndef MESHSLICE_TUNER_AUTOTUNER_HPP_
#define MESHSLICE_TUNER_AUTOTUNER_HPP_

#include <string_view>
#include <vector>

#include "model/transformer.hpp"
#include "tuner/cost_model.hpp"

namespace meshslice {

/** Which matrix of Y = X W stays stationary (Table 1 rows). */
enum class Stationary { kY, kX, kW };

const char *stationaryName(Stationary st);

/** Inverse of `stationaryName`; `fatal` on an unknown name. */
Stationary stationaryFromName(std::string_view name,
                              const std::string &context);

/** A fully configured GeMM: shape, dataflow and slice count. */
struct GemmPlan
{
    FcGemm gemm;
    Dataflow dataflow = Dataflow::kOS;
    int sliceCount = 1;
    Time estTime = 0.0;
};

/** The three training GeMMs of one FC layer, configured. */
struct FcLayerPlan
{
    int fcLayer = 0;
    Stationary stationary = Stationary::kY;
    std::vector<GemmPlan> passes; ///< fwd, bwdD, bwdW
};

/** Autotuner output: mesh shape plus per-layer plans. */
struct AutotuneResult
{
    int rows = 1;
    int cols = 1;
    std::vector<FcLayerPlan> layers; ///< one per FC layer (4)
    Time blockFcTime = 0.0;          ///< estimated fwd+bwd FC time/block

    /** Flattened per-GeMM plans (12 entries). */
    std::vector<GemmPlan> allPlans() const;
};

/** Table 1: the largest matrix of Y[M,n] = X[M,k] W[k,n]. */
Stationary chooseStationary(std::int64_t m, std::int64_t k, std::int64_t n);

/**
 * Table 1 row lookup: dataflows and computational shapes of the three
 * training GeMMs of a layer with forward shape (M, k_in, n_out).
 */
std::vector<GemmPlan> dataflowsForLayer(Stationary st, const FcGemm &fwd);

/** Build an executor/cost-model spec from a planned GeMM. */
Gemm2DSpec makeSpec(const FcGemm &gemm, Dataflow df, int rows, int cols,
                    int slice_count = 1, int bytes_per_element = 2);

/** True if the mesh shape divides all three GeMM dimensions. */
bool shapeFeasible(const FcGemm &gemm, int rows, int cols);

/** The MeshSlice LLM autotuner. */
class LlmAutotuner
{
  public:
    explicit LlmAutotuner(CostModel cost) : cost_(std::move(cost)) {}

    const CostModel &cost() const { return cost_; }

    /**
     * Run both phases for @p chips-way 2D TP.
     * @p optimize_dataflow false = the Table 2 baseline (Y-stn
     * everywhere); true = phase-1 stationary selection.
     */
    AutotuneResult tune(const TransformerConfig &model,
                        const TrainingConfig &train, int chips,
                        bool optimize_dataflow = true) const;

    /**
     * Phase 2 for a fixed algorithm and fixed per-GeMM dataflows:
     * best mesh shape (by summed estimated time) and the per-GeMM
     * tuned slice counts at that shape. Cannon only considers square
     * shapes.
     */
    AutotuneResult tuneForAlgorithm(Algorithm algo,
                                    const TransformerConfig &model,
                                    const TrainingConfig &train, int chips,
                                    bool optimize_dataflow = true) const;

    /**
     * Phase-2 candidate ranking: the top @p k feasible mesh shapes by
     * nominal estimated block FC time, each returned as a complete
     * plan (tuned slice counts included). Entry 0 is the shape
     * `tuneForAlgorithm` would pick. Deterministic order: estimated
     * time, ties broken by lower row count. Used by the robust tuner
     * to shortlist candidates for scenario re-evaluation.
     */
    std::vector<AutotuneResult> rankShapes(Algorithm algo,
                                           const TransformerConfig &model,
                                           const TrainingConfig &train,
                                           int chips, int k,
                                           bool optimize_dataflow
                                           = true) const;

    /**
     * Phase 1 plus slice-count tuning at a *fixed* mesh shape (used by
     * the mesh-shape and slice-count sweeps of Fig 13/14). If
     * @p force_s > 0, every GeMM uses that slice count instead of the
     * tuned one.
     */
    AutotuneResult planAtShape(Algorithm algo,
                               const TransformerConfig &model,
                               const TrainingConfig &train, int rows,
                               int cols, bool optimize_dataflow = true,
                               int force_s = 0) const;

  private:
    AutotuneResult tunePhase2(Algorithm algo,
                              std::vector<FcLayerPlan> layers,
                              int chips) const;

    CostModel cost_;
};

} // namespace meshslice

#endif // MESHSLICE_TUNER_AUTOTUNER_HPP_
