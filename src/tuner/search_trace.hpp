/**
 * @file
 * JSONL trace of autotuner search decisions (observability layer).
 *
 * When opened, every candidate the two-phase autotuner evaluates —
 * slice counts in phase 1/`tuneSliceCount`, mesh shapes in phase 2 —
 * appends one JSON object per line to the sink file. The records are
 * self-describing (`"phase":"slice"` / `"phase":"shape"`) and carry
 * enough of the candidate (algorithm, GeMM dims, dataflow, mesh shape,
 * S, feasibility, estimated time) to replay or audit a search offline.
 *
 * The sink is process-wide and disabled by default; the fast path for
 * an instrumented site is a single relaxed atomic load, so closed-sink
 * overhead is negligible.
 */
#ifndef MESHSLICE_TUNER_SEARCH_TRACE_HPP_
#define MESHSLICE_TUNER_SEARCH_TRACE_HPP_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace meshslice {

class SearchTraceCapture;

/** Process-wide JSONL sink for autotuner search telemetry. */
class SearchTrace
{
  public:
    /** The singleton instrumented call sites write to. */
    static SearchTrace &global();

    SearchTrace() = default;
    ~SearchTrace();
    SearchTrace(const SearchTrace &) = delete;
    SearchTrace &operator=(const SearchTrace &) = delete;

    /**
     * Open (truncating) @p path and start recording. Returns false —
     * leaving the sink closed — if the file cannot be created.
     */
    bool open(const std::string &path);

    /** Flush and close the sink; recording stops. Idempotent. */
    void close();

    /**
     * True while records have somewhere to go: a sink file is open, or
     * the calling thread has a `SearchTraceCapture` installed. Call
     * sites must check this before building a record string.
     */
    bool enabled() const;

    /** True while a sink file is open (capture-independent). Tuners
     *  use this to decide whether per-candidate captures are needed at
     *  all: with the sink closed nothing is recorded anyway. */
    bool sinkOpen() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one JSON object (no trailing newline) as a JSONL line. If
     * the calling thread has a `SearchTraceCapture` installed the line
     * is buffered there instead (lock-free); otherwise it goes to the
     * sink file. No-op when neither is active.
     */
    void record(const std::string &json_line);

    /** Lines written since the sink was last opened. */
    long recordCount() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<long> count_{0};
    mutable std::mutex mu_;
    std::FILE *file_ = nullptr;
    std::string path_; ///< of the open sink (for error messages)
};

/**
 * Per-work-item buffer that makes concurrent tracing deterministic.
 *
 * When a tuner loop runs on the thread pool, letting each worker write
 * to the global sink interleaves records in scheduling order — a
 * nondeterministic file. Instead the tuner allocates one capture per
 * candidate index, each worker installs "its" capture for the duration
 * of the work item (`Scope`), and after the parallel loop the captures
 * are flushed in serial index order. The resulting trace is
 * byte-identical to a single-threaded run.
 *
 * `flushToGlobal` re-emits through `SearchTrace::record`, so with
 * nested parallel searches (a pipeline candidate running the shape
 * tuner inside) an inner flush lands in the *outer* thread's capture
 * and is serialized by the outer flush.
 */
class SearchTraceCapture
{
  public:
    SearchTraceCapture() = default;
    SearchTraceCapture(const SearchTraceCapture &) = delete;
    SearchTraceCapture &operator=(const SearchTraceCapture &) = delete;

    /** Installs @p cap as the calling thread's record target for the
     *  lifetime of the scope (restores the previous target after). */
    class Scope
    {
      public:
        explicit Scope(SearchTraceCapture &cap);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SearchTraceCapture *prev_;
    };

    /** Re-emit the buffered lines in capture order (through the
     *  calling thread's current target) and clear the buffer. */
    void flushToGlobal();

    const std::vector<std::string> &lines() const { return lines_; }

  private:
    friend class SearchTrace;
    std::vector<std::string> lines_;
};

} // namespace meshslice

#endif // MESHSLICE_TUNER_SEARCH_TRACE_HPP_
