/**
 * @file
 * JSONL trace of autotuner search decisions (observability layer).
 *
 * When opened, every candidate the two-phase autotuner evaluates —
 * slice counts in phase 1/`tuneSliceCount`, mesh shapes in phase 2 —
 * appends one JSON object per line to the sink file. The records are
 * self-describing (`"phase":"slice"` / `"phase":"shape"`) and carry
 * enough of the candidate (algorithm, GeMM dims, dataflow, mesh shape,
 * S, feasibility, estimated time) to replay or audit a search offline.
 *
 * The sink is process-wide and disabled by default; the fast path for
 * an instrumented site is a single relaxed atomic load, so closed-sink
 * overhead is negligible.
 */
#ifndef MESHSLICE_TUNER_SEARCH_TRACE_HPP_
#define MESHSLICE_TUNER_SEARCH_TRACE_HPP_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace meshslice {

/** Process-wide JSONL sink for autotuner search telemetry. */
class SearchTrace
{
  public:
    /** The singleton instrumented call sites write to. */
    static SearchTrace &global();

    SearchTrace() = default;
    ~SearchTrace();
    SearchTrace(const SearchTrace &) = delete;
    SearchTrace &operator=(const SearchTrace &) = delete;

    /**
     * Open (truncating) @p path and start recording. Returns false —
     * leaving the sink closed — if the file cannot be created.
     */
    bool open(const std::string &path);

    /** Flush and close the sink; recording stops. Idempotent. */
    void close();

    /** True while a sink file is open. Call sites must check this
     *  before building a record string. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Append one JSON object (no trailing newline) as a JSONL line.
     *  No-op when the sink is closed. */
    void record(const std::string &json_line);

    /** Lines written since the sink was last opened. */
    long recordCount() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<long> count_{0};
    mutable std::mutex mu_;
    std::FILE *file_ = nullptr;
    std::string path_; ///< of the open sink (for error messages)
};

} // namespace meshslice

#endif // MESHSLICE_TUNER_SEARCH_TRACE_HPP_
