/**
 * @file
 * Whole-cluster (3D = DP x PP x TP) training-step estimator, used to
 * quantify the paper's Sec 2.2 argument: replacing 8-way 1D TP with
 * wide 2D TP shrinks per-chip DP traffic (each chip holds a smaller
 * weight shard) and/or the number of pipeline stages, improving
 * end-to-end utilization at the same chip count.
 *
 * The estimator composes:
 *  - TP: the simulated (or cost-model) per-block FC time plus the
 *    non-FC roofline (this repository's core machinery);
 *  - PP: a 1F1B-style bubble model — step time scales by
 *    (microbatches + stages - 1) / microbatches;
 *  - DP: a ring all-reduce of each chip's weight-gradient shard,
 *    overlappable with backward computation up to a configurable
 *    fraction.
 */
#ifndef MESHSLICE_TUNER_CLUSTER_PLAN_HPP_
#define MESHSLICE_TUNER_CLUSTER_PLAN_HPP_

#include "model/transformer.hpp"
#include "tuner/cost_model.hpp"

namespace meshslice {

/** One way to lay a model onto a cluster. */
struct ClusterPlan
{
    int dp = 1;      ///< data-parallel replicas
    int pp = 1;      ///< pipeline stages
    int tpRows = 1;  ///< TP mesh rows (1 for 1D TP)
    int tpCols = 1;  ///< TP mesh columns (ring size for 1D TP)
    bool oneD = false; ///< true: 1D TP ring instead of a 2D mesh

    int tpDegree() const { return tpRows * tpCols; }
    int chips() const { return dp * pp * tpDegree(); }
};

/** Cost breakdown of one training step under a plan. */
struct ClusterStepCost
{
    Time tpBlockTime = 0.0;   ///< per transformer block (fwd+bwd)
    Time computePerStage = 0.0; ///< all blocks of one pipeline stage
    Time pipelineTime = 0.0;  ///< with the 1F1B bubble factor
    Time dpTime = 0.0;        ///< non-overlapped gradient all-reduce
    Time stepTime = 0.0;      ///< total
    double utilization = 0.0; ///< model FLOPs / (step * cluster peak)
    Bytes dpBytesPerChip = 0; ///< gradient traffic per chip
};

/**
 * Estimate one training step of @p model under @p plan using the
 * analytical cost models (fast enough for plan sweeps).
 *
 * @p microbatches is the pipeline's in-flight microbatch count;
 * @p dp_overlap is the fraction of the DP all-reduce hidden behind
 * backward compute (0.5 by default — parameter-update comm of one
 * layer overlaps another layer's compute, Sec 2.1).
 */
ClusterStepCost estimateClusterStep(const CostModel &cost,
                                    const TransformerConfig &model,
                                    const TrainingConfig &train,
                                    const ClusterPlan &plan,
                                    int microbatches = 8,
                                    double dp_overlap = 0.5);

} // namespace meshslice

#endif // MESHSLICE_TUNER_CLUSTER_PLAN_HPP_
