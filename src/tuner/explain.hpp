/**
 * @file
 * Tuner-facing explain layer: attaches critical-path analyses to
 * shortlisted candidates and serializes them into the search trace.
 *
 * The analytical tuners rank plans by estimated time; the explain
 * layer answers *why* a shortlisted plan costs what it costs. Each
 * candidate's GeMM subset is re-run on a private cluster with the
 * critical-path profiler enabled, and the resulting `ExplainRecord`
 * (category attribution, longest zero-slack spans, what-if
 * sensitivities) is emitted as a `"phase":"explain"` JSONL record
 * through `SearchTrace` — next to the `"phase":"shape"`/`"robust"`/
 * `"pipeline"` records of the search that produced the candidate.
 */
#ifndef MESHSLICE_TUNER_EXPLAIN_HPP_
#define MESHSLICE_TUNER_EXPLAIN_HPP_

#include <string>
#include <vector>

#include "sim/critical_path.hpp"
#include "tuner/autotuner.hpp"

namespace meshslice {

/** One shortlisted candidate with its simulated explain analysis. */
struct CandidateExplain
{
    int rank = 0; ///< 0 = the shape the nominal tuner would pick
    AutotuneResult plan;
    Time simTime = 0.0; ///< summed simulated time of the GeMM subset
    ExplainRecord explain;
};

/**
 * Fold @p add into @p into: spans, category seconds, node counts and
 * what-if predictions add (sequential composition of independent
 * runs), hot spans are re-ranked by duration and re-truncated to 5,
 * and the attribution residual takes the max. The category identity
 * (sum == span) is preserved by linearity.
 */
void mergeExplain(ExplainRecord &into, const ExplainRecord &add);

/**
 * Simulate @p gemms of @p plan one by one on private clusters (same
 * runner the robust tuner uses) with the profiler on, and fold the
 * per-GeMM analyses into one record. When @p sim_time is non-null it
 * receives the summed simulated time.
 */
ExplainRecord explainPlanGemms(const ChipConfig &chip, Algorithm algo,
                               const AutotuneResult &plan,
                               const std::vector<GemmPlan> &gemms,
                               Time *sim_time = nullptr);

/**
 * One `"phase":"explain"` JSONL object (no trailing newline).
 * @p context tags the emitting search ("shape", "robust", "pipeline").
 */
std::string explainRecordJson(const char *context, Algorithm algo,
                              int chips, int rank, int rows, int cols,
                              Time sim_time, const ExplainRecord &rec);

/**
 * Shortlist the top @p k phase-2 shapes with @p tuner and explain each
 * one's first @p max_gemms planned GeMMs (0 = all 12). Entry 0 is the
 * nominal pick. One `"phase":"explain"` record per candidate goes to
 * the search trace when it is open. Serial and deterministic.
 */
std::vector<CandidateExplain> explainShortlist(
    const LlmAutotuner &tuner, Algorithm algo,
    const TransformerConfig &model, const TrainingConfig &train, int chips,
    int k, bool optimize_dataflow = true, int max_gemms = 3);

} // namespace meshslice

#endif // MESHSLICE_TUNER_EXPLAIN_HPP_
