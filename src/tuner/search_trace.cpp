#include "tuner/search_trace.hpp"

#include "util/logging.hpp"

namespace meshslice {

SearchTrace &
SearchTrace::global()
{
    static SearchTrace trace;
    return trace;
}

SearchTrace::~SearchTrace()
{
    close();
}

bool
SearchTrace::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "w");
    path_ = file_ != nullptr ? path : std::string();
    count_.store(0, std::memory_order_relaxed);
    enabled_.store(file_ != nullptr, std::memory_order_relaxed);
    return file_ != nullptr;
}

void
SearchTrace::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    if (file_ != nullptr) {
        // Surface write errors (short writes are caught in record();
        // this catches buffered data lost at flush time). warn, not
        // fatal: close() also runs from the destructor at exit, where
        // calling exit() again is undefined.
        if (std::fflush(file_) != 0 || std::ferror(file_) != 0)
            warn("SearchTrace: write to '%s' failed (disk full?)",
                 path_.c_str());
        std::fclose(file_);
        file_ = nullptr;
        path_.clear();
    }
}

void
SearchTrace::record(const std::string &json_line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr)
        return;
    if (std::fwrite(json_line.data(), 1, json_line.size(), file_)
            != json_line.size()
        || std::fputc('\n', file_) == EOF)
        fatal("SearchTrace: write to '%s' failed (disk full?)",
              path_.c_str());
    count_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace meshslice
