#include "tuner/search_trace.hpp"

#include "util/logging.hpp"

namespace meshslice {

namespace {

/** The calling thread's active capture (innermost), if any. */
thread_local SearchTraceCapture *t_capture = nullptr;

} // namespace

bool
SearchTrace::enabled() const
{
    return t_capture != nullptr ||
           enabled_.load(std::memory_order_relaxed);
}

SearchTraceCapture::Scope::Scope(SearchTraceCapture &cap)
    : prev_(t_capture)
{
    t_capture = &cap;
}

SearchTraceCapture::Scope::~Scope()
{
    t_capture = prev_;
}

void
SearchTraceCapture::flushToGlobal()
{
    for (const std::string &line : lines_)
        SearchTrace::global().record(line);
    lines_.clear();
}

SearchTrace &
SearchTrace::global()
{
    static SearchTrace trace;
    return trace;
}

SearchTrace::~SearchTrace()
{
    close();
}

bool
SearchTrace::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "w");
    path_ = file_ != nullptr ? path : std::string();
    count_.store(0, std::memory_order_relaxed);
    enabled_.store(file_ != nullptr, std::memory_order_relaxed);
    return file_ != nullptr;
}

void
SearchTrace::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    if (file_ != nullptr) {
        // Surface write errors (short writes are caught in record();
        // this catches buffered data lost at flush time). warn, not
        // fatal: close() also runs from the destructor at exit, where
        // calling exit() again is undefined.
        if (std::fflush(file_) != 0 || std::ferror(file_) != 0)
            warn("SearchTrace: write to '%s' failed (disk full?)",
                 path_.c_str());
        std::fclose(file_);
        file_ = nullptr;
        path_.clear();
    }
}

void
SearchTrace::record(const std::string &json_line)
{
    if (t_capture != nullptr) {
        t_capture->lines_.push_back(json_line);
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr)
        return;
    if (std::fwrite(json_line.data(), 1, json_line.size(), file_)
            != json_line.size()
        || std::fputc('\n', file_) == EOF)
        fatal("SearchTrace: write to '%s' failed (disk full?)",
              path_.c_str());
    count_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace meshslice
