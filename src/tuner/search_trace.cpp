#include "tuner/search_trace.hpp"

namespace meshslice {

SearchTrace &
SearchTrace::global()
{
    static SearchTrace trace;
    return trace;
}

SearchTrace::~SearchTrace()
{
    close();
}

bool
SearchTrace::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
    file_ = std::fopen(path.c_str(), "w");
    count_.store(0, std::memory_order_relaxed);
    enabled_.store(file_ != nullptr, std::memory_order_relaxed);
    return file_ != nullptr;
}

void
SearchTrace::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
SearchTrace::record(const std::string &json_line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr)
        return;
    std::fwrite(json_line.data(), 1, json_line.size(), file_);
    std::fputc('\n', file_);
    count_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace meshslice
