#include "tuner/cluster_plan.hpp"

#include <algorithm>

#include "tuner/autotuner.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Analytic per-block FC time for Wang-overlapped 1D TP on a ring. */
Time
oneDBlockTime(const CostModel &cost, const TransformerConfig &model,
              const TrainingConfig &train, int chips)
{
    const ChipConfig &cfg = cost.chip();
    Time total = 0.0;
    const int s_count = 8;
    for (const FcGemm &gemm : blockFcGemms(model, train)) {
        Bytes comm;
        GemmWork local;
        if (gemm.pass == Pass::kBackwardWeight) {
            comm = gemm.m * gemm.n * cfg.bytesPerElement;
            local = GemmWork{gemm.m, gemm.k / chips, gemm.n};
        } else {
            comm = gemm.m * gemm.k * cfg.bytesPerElement;
            local = GemmWork{gemm.m, gemm.k, gemm.n / chips};
        }
        const Bytes traffic = comm / chips * (chips - 1);
        const Time t_shift = cost.shiftTime(traffic / s_count);
        GemmWork sliced = local;
        if (sliced.m >= sliced.n)
            sliced.m = std::max<std::int64_t>(1, sliced.m / s_count);
        else
            sliced.n = std::max<std::int64_t>(1, sliced.n / s_count);
        const Time t_c = cost.computeTime(sliced);
        total += t_shift + (s_count - 1) * std::max(t_shift, t_c) + t_c;
    }
    return total;
}

} // namespace

ClusterStepCost
estimateClusterStep(const CostModel &cost, const TransformerConfig &model,
                    const TrainingConfig &train, const ClusterPlan &plan,
                    int microbatches, double dp_overlap)
{
    const ChipConfig &cfg = cost.chip();
    if (model.layers % plan.pp != 0)
        panic("estimateClusterStep: pp %d must divide %lld layers",
              plan.pp, static_cast<long long>(model.layers));
    if (train.batch % plan.dp != 0)
        panic("estimateClusterStep: dp %d must divide batch %lld",
              plan.dp, static_cast<long long>(train.batch));

    TrainingConfig replica = train;
    replica.batch = train.batch / plan.dp;

    ClusterStepCost out;
    const int tp = plan.tpDegree();
    if (plan.oneD) {
        out.tpBlockTime = oneDBlockTime(cost, model, replica, tp) +
                          nonFcBlockTime(cfg, model, replica, tp);
    } else {
        LlmAutotuner tuner(cost);
        AutotuneResult fc = tuner.planAtShape(
            Algorithm::kMeshSlice, model, replica, plan.tpRows,
            plan.tpCols, true);
        out.tpBlockTime =
            fc.blockFcTime + nonFcBlockTime(cfg, model, replica, tp);
    }

    const std::int64_t blocks_per_stage = model.layers / plan.pp;
    out.computePerStage =
        out.tpBlockTime * static_cast<double>(blocks_per_stage);
    // 1F1B pipeline bubble: (m + p - 1) / m.
    out.pipelineTime = out.computePerStage *
                       (static_cast<double>(microbatches + plan.pp - 1) /
                        static_cast<double>(microbatches));

    // DP gradient all-reduce of each chip's weight shard.
    const double params_per_chip =
        model.parameterCount() / static_cast<double>(plan.pp * tp);
    out.dpBytesPerChip =
        static_cast<Bytes>(params_per_chip * cfg.bytesPerElement);
    if (plan.dp > 1) {
        // AllReduce = RdS + AG of (bytes / dp) shards around the DP ring.
        const Time allreduce =
            2.0 * cost.collectiveTime(plan.dp,
                                      out.dpBytesPerChip / plan.dp);
        out.dpTime = (1.0 - dp_overlap) * allreduce;
    }

    out.stepTime = out.pipelineTime + out.dpTime;
    const double step_flops =
        6.0 * model.parameterCount() * static_cast<double>(train.tokens());
    out.utilization =
        step_flops / (out.stepTime * cfg.peakFlops *
                      static_cast<double>(plan.chips()));
    return out;
}

} // namespace meshslice
