/**
 * @file
 * Discrete-event execution of a pipeline program on the cluster sim.
 *
 * `PipelineCluster` lays P stage meshes of rows x cols chips each over
 * one `Cluster` and registers the torus boundary links that carry
 * inter-stage traffic: per mesh position (r, c) a forward link
 * `link.pp+.s{s}.r{r}.c{c}` (stage s -> s+1, activations) and a
 * backward link `link.pp-.s{s}.r{r}.c{c}` (gradients upstream). With
 * interleaved chunks the last boundary wraps around to stage 0, which
 * is the torus closing edge.
 *
 * `runPipeline` realizes a `PipelineProgram` as a `TaskGraph`:
 *
 *  - each fwd/bwd task becomes a Join over per-chip core-only fluid
 *    flows of the exact task duration (the intra-stage TP time is an
 *    *input* here — it comes from the existing 2D MeshSlice executor /
 *    cost model — so compute tasks don't re-simulate the stage mesh);
 *  - each cross-stage data edge gets a transfer task in between: one
 *    flow per boundary position demanding the boundary link plus both
 *    endpoint HBMs (the cluster's transfer idiom), preceded by the
 *    host launch overhead when `chargeLaunch` is set. Zero-byte
 *    boundaries skip the transfer entirely, so uniform zero-comm runs
 *    reproduce the closed-form pipeline spans exactly.
 *
 * The bubble is never inserted: it is whatever wall-clock remains on a
 * stage after its compute and exposed transfers, emerging from the same
 * dependency structure `analyticalSpan` walks.
 */
#ifndef MESHSLICE_PIPELINE_PIPELINE_EXEC_HPP_
#define MESHSLICE_PIPELINE_PIPELINE_EXEC_HPP_

#include <vector>

#include "hw/cluster.hpp"
#include "pipeline/schedule.hpp"
#include "util/units.hpp"

namespace meshslice {

/**
 * P stage meshes of rows x cols chips on one cluster, plus the
 * inter-stage boundary links. Chip (s, r, c) is cluster chip
 * `s * rows * cols + r * cols + c`.
 */
class PipelineCluster
{
  public:
    /** Requires `cluster.numChips() == stages * rows * cols`. */
    PipelineCluster(Cluster &cluster, int stages, int rows, int cols);

    Cluster &cluster() { return cluster_; }
    const Cluster &cluster() const { return cluster_; }
    int stages() const { return stages_; }
    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int chipsPerStage() const { return rows_ * cols_; }

    int chipAt(int stage, int r, int c) const;

    /** Boundary @p s carries stage s -> (s+1) % P traffic. */
    ResourceId fwdLink(int boundary, int r, int c) const;
    /** Boundary @p s carries stage (s+1) % P -> s gradient traffic. */
    ResourceId bwdLink(int boundary, int r, int c) const;

  private:
    Cluster &cluster_;
    int stages_;
    int rows_;
    int cols_;
    std::vector<ResourceId> fwdLinks_; // [boundary][r][c] flattened
    std::vector<ResourceId> bwdLinks_;
};

/** What to run: schedule shape plus per-task costs. */
struct PipelineExecSpec
{
    PipelineSchedule schedule = PipelineSchedule::kGPipe;
    int microBatches = 1;
    int chunks = 1; ///< model chunks per stage (interleaved only)

    /** One forward of one chunk of one micro-batch on one stage (the
     *  intra-stage 2D-TP time, from the MeshSlice executor/model). */
    Time fwdTime = 0.0;
    /** The matching backward. */
    Time bwdTime = 0.0;

    /** Activation bytes one micro-batch pushes across one stage
     *  boundary, total over the mesh (split evenly over positions). */
    Bytes boundaryBytes = 0;
    /** Extra bytes when adjacent stages' 2D layouts mismatch (the
     *  cross-mesh remap traffic; see `planRemap`). */
    Bytes remapBytes = 0;
    /** Charge the host launch overhead on every boundary transfer. */
    bool chargeLaunch = false;
};

/** Wall-clock decomposition of one stage over the run. */
struct StagePhase
{
    Time compute = 0.0; ///< seconds inside fwd/bwd tasks
    Time comm = 0.0;    ///< seconds of inbound boundary transfers
    Time bubble = 0.0;  ///< max(0, span - compute - comm)
};

/** Result of one simulated pipeline step. */
struct PipelineRunResult
{
    Time time = 0.0;         ///< makespan of the whole program
    Time idealCompute = 0.0; ///< busiest stage's serialized compute
    /** 1 - sum(stage compute) / (P * time): the fraction of
     *  stage-seconds not spent computing. Equals (P-1)/(m+P-1) for
     *  uniform zero-comm GPipe. */
    double bubbleFraction = 0.0;
    Bytes interStageBytes = 0; ///< total boundary traffic moved
    std::vector<StagePhase> stagePhases;
};

/**
 * Execute @p spec's program on @p pc and return the measured step.
 * Deterministic; fatal on infeasible schedule parameters (via
 * `buildPipelineProgram`). Publishes `pipeline/...` stats into the
 * cluster registry and per-stage spans into the trace when enabled.
 */
PipelineRunResult runPipeline(PipelineCluster &pc,
                              const PipelineExecSpec &spec);

/**
 * The analytical time model matching what `runPipeline` charges per
 * task: fwd/bwd durations verbatim and
 * `sendTask = [launch +] (boundaryBytes + remapBytes) / (positions *
 * linkBandwidth)` — so `analyticalSpan(program, timeModelFor(...))`
 * and the simulator agree whenever transfers don't contend.
 */
PipelineTimeModel timeModelFor(const PipelineExecSpec &spec,
                               const ChipConfig &cfg, int rows,
                               int cols);

} // namespace meshslice

#endif // MESHSLICE_PIPELINE_PIPELINE_EXEC_HPP_
