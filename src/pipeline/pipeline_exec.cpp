#include "pipeline/pipeline_exec.hpp"

#include <algorithm>
#include <memory>

#include "core/taskgraph.hpp"
#include "sim/join.hpp"
#include "util/logging.hpp"

namespace meshslice {

PipelineCluster::PipelineCluster(Cluster &cluster, int stages, int rows,
                                 int cols)
    : cluster_(cluster), stages_(stages), rows_(rows), cols_(cols)
{
    if (stages <= 0 || rows <= 0 || cols <= 0)
        fatal("PipelineCluster: stages (%d), rows (%d) and cols (%d) "
              "must all be positive", stages, rows, cols);
    if (cluster.numChips() != stages * rows * cols)
        fatal("PipelineCluster: cluster has %d chips but %d stages x "
              "%dx%d meshes need %d", cluster.numChips(), stages, rows,
              cols, stages * rows * cols);
    if (stages < 2)
        return; // no boundaries, no links
    const size_t n = static_cast<size_t>(stages) *
                     static_cast<size_t>(rows) *
                     static_cast<size_t>(cols);
    fwdLinks_.reserve(n);
    bwdLinks_.reserve(n);
    for (int s = 0; s < stages; ++s)
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c) {
                fwdLinks_.push_back(cluster.addLink(
                    strprintf("link.pp+.s%d.r%d.c%d", s, r, c)));
                bwdLinks_.push_back(cluster.addLink(
                    strprintf("link.pp-.s%d.r%d.c%d", s, r, c)));
            }
}

int
PipelineCluster::chipAt(int stage, int r, int c) const
{
    if (stage < 0 || stage >= stages_ || r < 0 || r >= rows_ || c < 0 ||
        c >= cols_)
        fatal("PipelineCluster::chipAt: (%d, %d, %d) out of range for "
              "%d stages of %dx%d", stage, r, c, stages_, rows_, cols_);
    return (stage * rows_ + r) * cols_ + c;
}

ResourceId
PipelineCluster::fwdLink(int boundary, int r, int c) const
{
    if (stages_ < 2)
        fatal("PipelineCluster::fwdLink: a %d-stage pipeline has no "
              "boundaries", stages_);
    return fwdLinks_.at(static_cast<size_t>(
        (boundary * rows_ + r) * cols_ + c));
}

ResourceId
PipelineCluster::bwdLink(int boundary, int r, int c) const
{
    if (stages_ < 2)
        fatal("PipelineCluster::bwdLink: a %d-stage pipeline has no "
              "boundaries", stages_);
    return bwdLinks_.at(static_cast<size_t>(
        (boundary * rows_ + r) * cols_ + c));
}

PipelineTimeModel
timeModelFor(const PipelineExecSpec &spec, const ChipConfig &cfg,
             int rows, int cols)
{
    PipelineTimeModel tm;
    tm.fwdTask = spec.fwdTime;
    tm.bwdTask = spec.bwdTime;
    const Bytes total = spec.boundaryBytes + spec.remapBytes;
    if (total > 0) {
        const double per_pos =
            static_cast<double>(total) /
            static_cast<double>(rows * cols);
        tm.sendTask = per_pos / cfg.iciLinkBandwidth +
                      (spec.chargeLaunch ? cfg.launchOverhead : 0.0);
    }
    return tm;
}

namespace {

/** Mutable bookkeeping shared by the task closures of one run. */
struct RunState
{
    std::vector<Time> stageCompute; // busy seconds per stage
    std::vector<Time> stageComm;    // inbound transfer seconds per stage
    Bytes bytesMoved = 0;
};

} // namespace

PipelineRunResult
runPipeline(PipelineCluster &pc, const PipelineExecSpec &spec)
{
    Cluster &cluster = pc.cluster();
    Simulator &sim = cluster.sim();
    const ChipConfig &cfg = cluster.config();
    const int P = pc.stages();
    const int n_pos = pc.chipsPerStage();

    const PipelineProgram program = buildPipelineProgram(
        spec.schedule, P, spec.microBatches, spec.chunks);

    const Bytes boundary_total = spec.boundaryBytes + spec.remapBytes;
    const double per_pos_bytes =
        static_cast<double>(boundary_total) /
        static_cast<double>(n_pos);

    auto state = std::make_shared<RunState>();
    state->stageCompute.assign(static_cast<size_t>(P), 0.0);
    state->stageComm.assign(static_cast<size_t>(P), 0.0);

    TaskGraph graph(sim, &cluster.profiler());
    // graph id of each already-added program task (topo order => every
    // dep is added before its consumer).
    std::vector<int> graph_id(program.tasks.size(), -1);

    auto add_compute = [&](size_t idx) {
        const PipeTask &t = program.tasks[idx];
        const Time dur = t.backward ? spec.bwdTime : spec.fwdTime;
        const int stage = t.stage;
        std::vector<int> deps;
        for (int dep : t.deps) {
            const PipeTask &d = program.tasks[static_cast<size_t>(dep)];
            const int dep_graph = graph_id[static_cast<size_t>(dep)];
            if (dep_graph < 0)
                panic("runPipeline: dependency %d of task %zu not yet "
                      "added (topo order violated)", dep, idx);
            if (d.stage == stage || boundary_total <= 0) {
                // Same-stage edge (policy or stash) — or a zero-byte
                // boundary, which costs nothing: depend directly.
                deps.push_back(dep_graph);
                continue;
            }
            // Cross-stage data edge: insert the boundary transfer.
            // Forward activations ride the + link of the producer's
            // boundary; backward gradients ride the - link of the
            // consumer's boundary (producer = (consumer+1) % P).
            const bool backward = t.backward;
            const int boundary = backward ? stage : d.stage;
            auto body = [&pc, &cluster, &sim, &cfg, state, stage,
                         boundary, backward, per_pos_bytes,
                         n_pos, charge = spec.chargeLaunch](
                            std::function<void()> done) {
                const Time begin = sim.now();
                // Profiler context: the boundary transfer becomes one
                // comm node (preceded by a launch node when charged);
                // snapshot the ambient task before going async.
                SpanRecorder &prof = cluster.profiler();
                const bool profiling = prof.enabled();
                const int prof_task =
                    profiling ? prof.currentTask() : -1;
                auto prof_deps = std::make_shared<std::vector<int>>();
                std::shared_ptr<FlowInfoAccum> accum;
                if (profiling) {
                    *prof_deps = prof.ambientDeps();
                    accum = std::make_shared<FlowInfoAccum>();
                }
                auto launch = [&pc, &cluster, state, stage, boundary,
                               backward, per_pos_bytes, n_pos, begin,
                               &sim, charge, profiling, prof_task,
                               prof_deps, accum,
                               done = std::move(done)]() {
                    if (profiling && charge) {
                        const int lnode = cluster.profiler().addNode(
                            strprintf("pp launch b%d", boundary),
                            SpanCategory::kLaunch, begin, sim.now(),
                            *prof_deps, stage);
                        *prof_deps = {lnode};
                    }
                    const Time xfer_begin = sim.now();
                    Join *join = Join::create(
                        n_pos, [&cluster, state, stage, boundary,
                                backward, begin, xfer_begin, &sim,
                                profiling, prof_task, prof_deps, accum,
                                done = std::move(done)]() {
                            state->stageComm[static_cast<size_t>(
                                stage)] += sim.now() - begin;
                            if (profiling) {
                                SpanRecorder &p = cluster.profiler();
                                const int node = p.addNode(
                                    strprintf("%s b%d",
                                              backward ? "send-"
                                                       : "send+",
                                              boundary),
                                    SpanCategory::kComm, xfer_begin,
                                    sim.now(), *prof_deps, stage);
                                if (accum->info.valid)
                                    p.setNodeResource(node,
                                                      accum->info);
                                p.addTaskExit(prof_task, node);
                            }
                            done();
                        });
                    const int rows = pc.rows();
                    const int cols = pc.cols();
                    const int P = pc.stages();
                    for (int r = 0; r < rows; ++r)
                        for (int c = 0; c < cols; ++c) {
                            const int src_stage =
                                backward ? (boundary + 1) % P
                                         : boundary;
                            const int dst_stage =
                                backward ? boundary
                                         : (boundary + 1) % P;
                            const ResourceId link =
                                backward ? pc.bwdLink(boundary, r, c)
                                         : pc.fwdLink(boundary, r, c);
                            std::vector<Demand> demands = {
                                {link, 1.0},
                                {cluster.hbmOf(
                                     pc.chipAt(src_stage, r, c)),
                                 1.0},
                                {cluster.hbmOf(
                                     pc.chipAt(dst_stage, r, c)),
                                 1.0},
                            };
                            std::function<void()> on_done;
                            if (profiling) {
                                on_done = [&cluster, accum, join]() {
                                    accum->fold(cluster.net()
                                                    .lastFinishedFlow());
                                    join->signal();
                                };
                            } else {
                                on_done = [join]() { join->signal(); };
                            }
                            cluster.net().startFlow(
                                per_pos_bytes, std::move(demands),
                                std::move(on_done));
                        }
                    state->bytesMoved += static_cast<Bytes>(
                        per_pos_bytes * n_pos);
                    cluster.noteCommBytes(static_cast<Bytes>(
                        per_pos_bytes * n_pos));
                };
                if (charge)
                    sim.scheduleAfter(cfg.launchOverhead,
                                      std::move(launch));
                else
                    launch();
            };
            deps.push_back(graph.addTask(std::move(body), {dep_graph}));
        }
        auto body = [&pc, &cluster, &sim, state, stage, dur,
                     micro = t.microBatch, chunk = t.chunk,
                     backward = t.backward,
                     n_pos](std::function<void()> done) {
            const Time begin = sim.now();
            SpanRecorder &prof = cluster.profiler();
            const bool profiling = prof.enabled();
            const int prof_task = profiling ? prof.currentTask() : -1;
            auto prof_deps = std::make_shared<std::vector<int>>();
            std::shared_ptr<FlowInfoAccum> accum;
            if (profiling) {
                *prof_deps = prof.ambientDeps();
                accum = std::make_shared<FlowInfoAccum>();
            }
            Join *join = Join::create(
                n_pos, [&cluster, &sim, state, stage, begin, micro,
                        chunk, backward, profiling, prof_task,
                        prof_deps, accum, done = std::move(done)]() {
                    const Time end = sim.now();
                    state->stageCompute[static_cast<size_t>(stage)] +=
                        end - begin;
                    if (cluster.trace().enabled()) {
                        const int chip = stage; // lane per stage
                        cluster.trace().record(
                            strprintf("%s m%d v%d",
                                      backward ? "B" : "F", micro,
                                      chunk),
                            "pipeline", chip, kLaneCompute, begin,
                            end);
                    }
                    if (profiling) {
                        SpanRecorder &p = cluster.profiler();
                        const int node = p.addNode(
                            strprintf("%s m%d v%d s%d",
                                      backward ? "B" : "F", micro,
                                      chunk, stage),
                            SpanCategory::kCompute, begin, end,
                            *prof_deps, stage);
                        if (accum->info.valid)
                            p.setNodeResource(node, accum->info);
                        p.addTaskExit(prof_task, node);
                    }
                    done();
                });
            const double peak = cluster.config().peakFlops;
            for (int r = 0; r < pc.rows(); ++r)
                for (int c = 0; c < pc.cols(); ++c) {
                    const int chip = pc.chipAt(stage, r, c);
                    std::function<void()> on_done;
                    if (profiling) {
                        on_done = [&cluster, accum, join]() {
                            accum->fold(
                                cluster.net().lastFinishedFlow());
                            join->signal();
                        };
                    } else {
                        on_done = [join]() { join->signal(); };
                    }
                    cluster.net().startFlow(
                        dur * peak, {{cluster.coreOf(chip), 1.0}},
                        std::move(on_done));
                }
        };
        graph_id[idx] = graph.addTask(std::move(body), std::move(deps));
    };

    for (size_t i = 0; i < program.tasks.size(); ++i)
        add_compute(i);

    bool finished = false;
    const Time begin = sim.now();
    // Timestamp the *schedule's* completion, not the simulator's
    // drain: a fault window whose end boundary outlives the pipeline
    // (or a deadline watch armed past it) must not inflate the
    // reported step time.
    Time end = begin;
    graph.start([&finished, &end, &sim]() {
        finished = true;
        end = sim.now();
    });
    sim.run();
    if (!finished) {
        // A requested stop is a deliberate abandonment: hand back a
        // partial result the caller will discard. Anything else is
        // the historical invariant violation.
        if (sim.stopRequested()) {
            PipelineRunResult partial;
            partial.time = sim.now() - begin;
            return partial;
        }
        panic("runPipeline: simulation drained with %zu of %zu tasks "
              "incomplete", program.tasks.size(), program.tasks.size());
    }
    const Time span = end - begin;

    PipelineRunResult result;
    result.time = span;
    result.idealCompute =
        static_cast<double>(spec.microBatches * spec.chunks) *
        (spec.fwdTime + spec.bwdTime);
    result.interStageBytes = state->bytesMoved;
    result.stagePhases.resize(static_cast<size_t>(P));
    Time total_compute = 0.0;
    for (int s = 0; s < P; ++s) {
        StagePhase &ph = result.stagePhases[static_cast<size_t>(s)];
        ph.compute = state->stageCompute[static_cast<size_t>(s)];
        ph.comm = state->stageComm[static_cast<size_t>(s)];
        ph.bubble = std::max(0.0, span - ph.compute - ph.comm);
        total_compute += ph.compute;
    }
    result.bubbleFraction =
        span > 0.0
            ? std::max(0.0, 1.0 - total_compute /
                                      (static_cast<double>(P) * span))
            : 0.0;

    StatsRegistry &stats = cluster.stats();
    if (stats.enabled()) {
        stats.add("pipeline/steps", 1.0);
        stats.add("pipeline/span_s", span);
        stats.add("pipeline/inter_stage_bytes",
                  static_cast<double>(state->bytesMoved));
        for (int s = 0; s < P; ++s) {
            const StagePhase &ph =
                result.stagePhases[static_cast<size_t>(s)];
            stats.add(strprintf("pipeline/stage%d/compute_s", s),
                      ph.compute);
            stats.add(strprintf("pipeline/stage%d/comm_s", s), ph.comm);
            stats.add(strprintf("pipeline/stage%d/bubble_s", s),
                      ph.bubble);
        }
    }
    return result;
}

} // namespace meshslice
