/**
 * @file
 * Declarative pipeline-parallel micro-batch schedules.
 *
 * A pipeline program is a DAG of per-stage forward/backward micro-batch
 * tasks with *exact* dependency edges:
 *
 *  - data edges: F(m, l) needs F(m, l-1); B(m, l) needs B(m, l+1) and
 *    F(m, l), where l indexes the V*P model chunks laid out round-robin
 *    over the P stages (chunk l lives on stage l % P — the Megatron
 *    interleaved placement; V = 1 is the plain contiguous split);
 *  - policy edges: each stage executes its own tasks in the order its
 *    schedule dictates (GPipe: all forwards then all backwards; 1F1B:
 *    warmup forwards, steady one-forward-one-backward, cooldown;
 *    interleaved 1F1B: the Megatron-LM warmup/steady/cooldown order
 *    over V chunks), serialized one-at-a-time per stage.
 *
 * The program is what both the analytical model (longest path over the
 * DAG) and the discrete-event executor (`runPipeline`) consume — the
 * pipeline bubble is never hand-inserted; it *emerges* from the same
 * dependency structure in both.
 */
#ifndef MESHSLICE_PIPELINE_SCHEDULE_HPP_
#define MESHSLICE_PIPELINE_SCHEDULE_HPP_

#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace meshslice {

/** The supported micro-batch schedules. */
enum class PipelineSchedule
{
    kGPipe,           ///< all forwards, then all backwards
    k1F1B,            ///< warmup / one-forward-one-backward / cooldown
    kInterleaved1F1B, ///< Megatron-LM interleaved (V > 1 chunks/stage)
};

const char *pipelineScheduleName(PipelineSchedule sched);

/** Inverse of `pipelineScheduleName`; `fatal` on an unknown name. */
PipelineSchedule pipelineScheduleFromName(std::string_view name,
                                          const std::string &context);

/** One forward or backward execution of one micro-batch on one stage. */
struct PipeTask
{
    int stage = 0;      ///< owning pipeline stage
    int microBatch = 0; ///< micro-batch index in [0, M)
    int chunk = 0;      ///< model chunk within the stage, in [0, V)
    bool backward = false;
    /** Prerequisite task indices (into `PipelineProgram::tasks`).
     *  Always earlier indices — the program is topologically ordered. */
    std::vector<int> deps;

    /** Global layer-chunk index (0 = first layers of the model). */
    int layerChunk(int stages) const { return chunk * stages + stage; }
};

/** A complete schedule: tasks in topological order plus per-stage
 *  execution order. */
struct PipelineProgram
{
    PipelineSchedule schedule = PipelineSchedule::kGPipe;
    int stages = 1;
    int microBatches = 1;
    int chunks = 1; ///< model chunks per stage (V; 1 unless interleaved)
    /** All 2 * M * V * P tasks, topologically sorted (deps precede). */
    std::vector<PipeTask> tasks;
    /** Per stage, the task indices in that stage's execution order. */
    std::vector<std::vector<int>> stageOrder;
};

/**
 * Build the program for @p sched on @p stages stages with
 * @p micro_batches micro-batches and @p chunks model chunks per stage.
 * `kGPipe`/`k1F1B` require chunks == 1; `kInterleaved1F1B` requires
 * micro_batches % stages == 0 (the Megatron constraint — without it
 * the interleaved order deadlocks). Fatal on violations or if the
 * policy+data edges ever form a cycle (a schedule bug, not user error).
 */
PipelineProgram buildPipelineProgram(PipelineSchedule sched, int stages,
                                     int micro_batches, int chunks = 1);

/**
 * Peak number of in-flight (forward-done, backward-not-yet-started)
 * micro-batch x chunk activations stashed on @p stage, computed
 * structurally from the stage's execution order. GPipe: M * V;
 * 1F1B: min(M, P - stage).
 */
int peakInFlight(const PipelineProgram &program, int stage);

/** Durations the analytical model assigns each task kind. */
struct PipelineTimeModel
{
    Time fwdTask = 0.0;  ///< one forward of one chunk of one micro-batch
    Time bwdTask = 0.0;  ///< the matching backward
    Time sendTask = 0.0; ///< one inter-stage activation/gradient transfer
};

/**
 * Analytical step time: the longest path through the program DAG where
 * every cross-stage data edge costs an additional `sendTask` (the
 * boundary transfer the executor schedules there). Exact for
 * contention-free execution; the simulator can only be slower.
 */
Time analyticalSpan(const PipelineProgram &program,
                    const PipelineTimeModel &times);

/**
 * A true lower bound on any execution: the larger of (a) the busiest
 * stage's total compute and (b) one micro-batch's critical fwd+bwd
 * path including its exposed inter-stage transfers.
 */
Time pipelineLowerBound(const PipelineProgram &program,
                        const PipelineTimeModel &times);

/** The closed-form GPipe bubble fraction on uniform stages:
 *  (P - 1) / (m + P - 1). */
double gpipeBubbleFraction(int stages, int micro_batches);

} // namespace meshslice

#endif // MESHSLICE_PIPELINE_SCHEDULE_HPP_
