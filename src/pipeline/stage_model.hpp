/**
 * @file
 * Transformer-specific sizing of a 3D (TP x PP x DP) training plan.
 *
 * Bridges the model-agnostic pipeline machinery (`schedule`,
 * `pipeline_exec`, `pipelineStageMemory`) and the transformer workload:
 * how many layers land on each stage chunk, how many bytes one
 * micro-batch pushes across a stage boundary, how big the activation
 * stash of one micro-batch is per chip, and what the resident
 * weight/optimizer state costs. The activation estimate follows the
 * Megatron accounting (Korthikanti et al.): per token and transformer
 * block roughly 34·h bytes of bf16 activations plus 5·a·s for the
 * attention score/softmax tensors, all sharded over the TP mesh.
 */
#ifndef MESHSLICE_PIPELINE_STAGE_MODEL_HPP_
#define MESHSLICE_PIPELINE_STAGE_MODEL_HPP_

#include <string>

#include "core/memory_model.hpp"
#include "gemm/dist_matrix.hpp"
#include "model/transformer.hpp"
#include "pipeline/pipeline_exec.hpp"
#include "pipeline/schedule.hpp"

namespace meshslice {

/** The parallelism axes of one 3D training plan. */
struct PipelineAxes
{
    int tpRows = 1;      ///< TP mesh rows within a stage
    int tpCols = 1;      ///< TP mesh columns within a stage
    int pp = 1;          ///< pipeline stages
    int dp = 1;          ///< data-parallel replicas
    int microBatches = 1;
    int chunks = 1;      ///< model chunks per stage (interleaved)
    PipelineSchedule schedule = PipelineSchedule::k1F1B;
    bool recompute = false; ///< activation recompute knob

    int tpDegree() const { return tpRows * tpCols; }
    int chips() const { return tpDegree() * pp * dp; }
    MeshShape tpMesh() const { return MeshShape{tpRows, tpCols}; }
};

/**
 * Structural feasibility of @p axes for @p model / @p train: layers
 * divide over pp * chunks, batch divides over dp into micro-batches,
 * the schedule's own constraints hold (chunks vs schedule, the
 * interleaved micro_batches % stages rule). On failure returns false
 * and, when @p reason is non-null, explains which rule broke.
 */
bool axesFeasible(const TransformerConfig &model,
                  const TrainingConfig &train, const PipelineAxes &axes,
                  std::string *reason = nullptr);

/** Transformer blocks per (stage, chunk): layers / (pp * chunks). */
std::int64_t layersPerChunk(const TransformerConfig &model,
                            const PipelineAxes &axes);

/** Sequences of one micro-batch: batch / (dp * microBatches). */
std::int64_t microBatchSequences(const TrainingConfig &train,
                                 const PipelineAxes &axes);

/** Activation bytes one micro-batch pushes across one stage boundary
 *  (tokens x hidden), total over the TP mesh. */
Bytes boundaryBytesPerMicroBatch(const ChipConfig &cfg,
                                 const TransformerConfig &model,
                                 const TrainingConfig &train,
                                 const PipelineAxes &axes);

/** Full forward-activation stash of one micro-batch of one stage's
 *  chunk(s), per chip (the Megatron per-block estimate, sharded). */
Bytes activationBytesPerChip(const ChipConfig &cfg,
                             const TransformerConfig &model,
                             const TrainingConfig &train,
                             const PipelineAxes &axes);

/** Weights + gradients + Adam optimizer state of one stage's model
 *  chunk(s), per chip: (2 * bytesPerElement + 12) bytes/param. */
Bytes residentBytesPerChip(const ChipConfig &cfg,
                           const TransformerConfig &model,
                           const PipelineAxes &axes);

/**
 * The per-chip memory spec of stage @p stage under @p program (whose
 * `peakInFlight` captures the schedule's stash depth). Feed to
 * `pipelineStageMemory` / `pipelineFitsInMemory`.
 */
PipelineStageMemorySpec stageMemorySpec(const ChipConfig &cfg,
                                        const TransformerConfig &model,
                                        const TrainingConfig &train,
                                        const PipelineAxes &axes,
                                        const PipelineProgram &program,
                                        int stage);

/**
 * Build the executor spec from per-block times: @p block_fwd /
 * @p block_bwd are ONE transformer block's forward / backward times
 * for one micro-batch on the TP mesh (from the MeshSlice cost model or
 * executor). Scales by layers-per-chunk, adds the recompute forward to
 * the backward when enabled, sizes the boundary transfer, and charges
 * the cross-mesh remap traffic for a @p prev_mesh-shaped upstream
 * layout (equal shapes — the common case — remap to zero bytes).
 */
PipelineExecSpec makeExecSpec(const ChipConfig &cfg,
                              const TransformerConfig &model,
                              const TrainingConfig &train,
                              const PipelineAxes &axes, Time block_fwd,
                              Time block_bwd, MeshShape prev_mesh);

} // namespace meshslice

#endif // MESHSLICE_PIPELINE_STAGE_MODEL_HPP_
