#include "pipeline/schedule.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace meshslice {

const char *
pipelineScheduleName(PipelineSchedule sched)
{
    switch (sched) {
      case PipelineSchedule::kGPipe:
        return "GPipe";
      case PipelineSchedule::k1F1B:
        return "1F1B";
      case PipelineSchedule::kInterleaved1F1B:
        return "Interleaved1F1B";
    }
    return "?";
}

PipelineSchedule
pipelineScheduleFromName(std::string_view name, const std::string &context)
{
    for (PipelineSchedule sched :
         {PipelineSchedule::kGPipe, PipelineSchedule::k1F1B,
          PipelineSchedule::kInterleaved1F1B})
        if (name == pipelineScheduleName(sched))
            return sched;
    fatal("%s: unknown pipeline schedule \"%.*s\" "
          "(want GPipe/1F1B/Interleaved1F1B)",
          context.c_str(), static_cast<int>(name.size()), name.data());
}

namespace {

/** Raw (pre-toposort) task numbering: (dir, mb, layer chunk). */
struct RawId
{
    int micro;
    int layerChunk;
    bool backward;
};

int
rawIndex(bool backward, int micro, int layer_chunk, int total_chunks)
{
    return (backward ? 1 : 0) * 0 + // readability; see below
           (micro * total_chunks + layer_chunk) * 2 + (backward ? 1 : 0);
}

/**
 * The per-stage execution order as raw ids. `stage` owns layer chunks
 * {c * P + stage : c in [0, V)}.
 */
std::vector<RawId>
stageOrderOf(PipelineSchedule sched, int stage, int stages,
             int micro_batches, int chunks)
{
    const int P = stages;
    const int V = chunks;
    const int M = micro_batches;
    std::vector<RawId> order;
    order.reserve(static_cast<size_t>(2 * M * V));

    auto fwd_at = [&](int k) {
        // Megatron forward queue: micro-batches advance in groups of P
        // per chunk, cycling through the V chunks.
        const int chunk = (k / P) % V;
        const int mb = (k / (P * V)) * P + (k % P);
        return RawId{mb, chunk * P + stage, false};
    };
    auto bwd_at = [&](int k) {
        const int chunk = V - 1 - (k / P) % V;
        const int mb = (k / (P * V)) * P + (k % P);
        return RawId{mb, chunk * P + stage, true};
    };

    const int total = M * V;
    int warmup = 0;
    switch (sched) {
      case PipelineSchedule::kGPipe:
        warmup = total;
        break;
      case PipelineSchedule::k1F1B:
        warmup = std::min(total, P - 1 - stage);
        break;
      case PipelineSchedule::kInterleaved1F1B:
        warmup = std::min(total, (P - stage - 1) * 2 + (V - 1) * P);
        break;
    }

    if (sched == PipelineSchedule::kGPipe || V == 1) {
        // V == 1: the fwd/bwd queues are plain micro-batch order.
        for (int k = 0; k < warmup; ++k)
            order.push_back(fwd_at(k));
        for (int k = warmup; k < total; ++k) {
            order.push_back(fwd_at(k));
            order.push_back(bwd_at(k - warmup));
        }
        for (int k = std::max(0, total - warmup); k < total; ++k)
            order.push_back(bwd_at(k));
        return order;
    }

    // Interleaved: warmup forwards, steady 1F1B, cooldown backwards.
    for (int k = 0; k < warmup; ++k)
        order.push_back(fwd_at(k));
    int b = 0;
    for (int k = warmup; k < total; ++k) {
        order.push_back(fwd_at(k));
        order.push_back(bwd_at(b++));
    }
    while (b < total)
        order.push_back(bwd_at(b++));
    return order;
}

} // namespace

PipelineProgram
buildPipelineProgram(PipelineSchedule sched, int stages, int micro_batches,
                     int chunks)
{
    if (stages <= 0 || micro_batches <= 0 || chunks <= 0)
        fatal("buildPipelineProgram: stages (%d), micro_batches (%d) and "
              "chunks (%d) must all be positive", stages, micro_batches,
              chunks);
    if (sched != PipelineSchedule::kInterleaved1F1B && chunks != 1)
        fatal("buildPipelineProgram: %s requires chunks == 1 (got %d) — "
              "only the interleaved schedule places multiple model "
              "chunks per stage", pipelineScheduleName(sched), chunks);
    if (sched == PipelineSchedule::kInterleaved1F1B &&
        micro_batches % stages != 0)
        fatal("buildPipelineProgram: interleaved 1F1B needs "
              "micro_batches %% stages == 0 (got %d %% %d) — the "
              "Megatron round-robin order deadlocks otherwise",
              micro_batches, stages);

    const int P = stages;
    const int V = chunks;
    const int M = micro_batches;
    const int L = V * P; // total layer chunks
    const int n_tasks = 2 * M * L;

    // Adjacency in raw-id space: data edges + per-stage policy chain.
    std::vector<std::vector<int>> deps(static_cast<size_t>(n_tasks));
    auto add_dep = [&](int task, int dep) {
        deps[static_cast<size_t>(task)].push_back(dep);
    };
    for (int m = 0; m < M; ++m) {
        for (int l = 0; l < L; ++l) {
            const int f = rawIndex(false, m, l, L);
            const int b = rawIndex(true, m, l, L);
            if (l > 0)
                add_dep(f, rawIndex(false, m, l - 1, L));
            if (l + 1 < L)
                add_dep(b, rawIndex(true, m, l + 1, L));
            add_dep(b, f); // the stash: backward consumes its forward
        }
    }
    std::vector<std::vector<int>> stage_orders_raw(
        static_cast<size_t>(P));
    for (int s = 0; s < P; ++s) {
        const std::vector<RawId> order =
            stageOrderOf(sched, s, P, M, V);
        if (static_cast<int>(order.size()) != 2 * M * V)
            panic("buildPipelineProgram: stage %d order has %zu tasks, "
                  "want %d", s, order.size(), 2 * M * V);
        std::vector<int> &raw = stage_orders_raw[static_cast<size_t>(s)];
        for (const RawId &id : order)
            raw.push_back(
                rawIndex(id.backward, id.micro, id.layerChunk, L));
        for (size_t i = 1; i < raw.size(); ++i)
            add_dep(raw[i], raw[i - 1]);
    }

    // Deterministic Kahn toposort (lowest raw id first) — panics on a
    // cycle, which would mean the schedule policy itself deadlocks.
    std::vector<int> indegree(static_cast<size_t>(n_tasks), 0);
    std::vector<std::vector<int>> dependents(
        static_cast<size_t>(n_tasks));
    for (int t = 0; t < n_tasks; ++t) {
        auto &d = deps[static_cast<size_t>(t)];
        std::sort(d.begin(), d.end());
        d.erase(std::unique(d.begin(), d.end()), d.end());
        indegree[static_cast<size_t>(t)] = static_cast<int>(d.size());
        for (int dep : d)
            dependents[static_cast<size_t>(dep)].push_back(t);
    }
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    for (int t = 0; t < n_tasks; ++t)
        if (indegree[static_cast<size_t>(t)] == 0)
            ready.push(t);
    std::vector<int> topo_pos(static_cast<size_t>(n_tasks), -1);
    std::vector<int> topo;
    topo.reserve(static_cast<size_t>(n_tasks));
    while (!ready.empty()) {
        const int t = ready.top();
        ready.pop();
        topo_pos[static_cast<size_t>(t)] =
            static_cast<int>(topo.size());
        topo.push_back(t);
        for (int dep : dependents[static_cast<size_t>(t)])
            if (--indegree[static_cast<size_t>(dep)] == 0)
                ready.push(dep);
    }
    if (static_cast<int>(topo.size()) != n_tasks)
        panic("buildPipelineProgram: %s on %d stages x %d micro-batches "
              "x %d chunks has a dependency cycle (%zu of %d tasks "
              "sorted)", pipelineScheduleName(sched), P, M, V,
              topo.size(), n_tasks);

    PipelineProgram program;
    program.schedule = sched;
    program.stages = P;
    program.microBatches = M;
    program.chunks = V;
    program.tasks.resize(static_cast<size_t>(n_tasks));
    for (int pos = 0; pos < n_tasks; ++pos) {
        const int raw = topo[static_cast<size_t>(pos)];
        const int pair = raw / 2;
        PipeTask task;
        task.backward = (raw % 2) != 0;
        task.microBatch = pair / L;
        const int l = pair % L;
        task.stage = l % P;
        task.chunk = l / P;
        for (int dep : deps[static_cast<size_t>(raw)])
            task.deps.push_back(topo_pos[static_cast<size_t>(dep)]);
        std::sort(task.deps.begin(), task.deps.end());
        program.tasks[static_cast<size_t>(pos)] = std::move(task);
    }
    program.stageOrder.resize(static_cast<size_t>(P));
    for (int s = 0; s < P; ++s)
        for (int raw : stage_orders_raw[static_cast<size_t>(s)])
            program.stageOrder[static_cast<size_t>(s)].push_back(
                topo_pos[static_cast<size_t>(raw)]);
    return program;
}

int
peakInFlight(const PipelineProgram &program, int stage)
{
    if (stage < 0 || stage >= program.stages)
        fatal("peakInFlight: stage %d out of range for %d stages", stage,
              program.stages);
    int in_flight = 0;
    int peak = 0;
    for (int idx : program.stageOrder[static_cast<size_t>(stage)]) {
        const PipeTask &t = program.tasks[static_cast<size_t>(idx)];
        in_flight += t.backward ? -1 : 1;
        peak = std::max(peak, in_flight);
    }
    return peak;
}

namespace {

Time
taskDuration(const PipeTask &t, const PipelineTimeModel &times)
{
    return t.backward ? times.bwdTask : times.fwdTask;
}

} // namespace

Time
analyticalSpan(const PipelineProgram &program,
               const PipelineTimeModel &times)
{
    std::vector<Time> finish(program.tasks.size(), 0.0);
    Time span = 0.0;
    for (size_t i = 0; i < program.tasks.size(); ++i) {
        const PipeTask &t = program.tasks[i];
        Time start = 0.0;
        for (int dep : t.deps) {
            const PipeTask &d = program.tasks[static_cast<size_t>(dep)];
            // A cross-stage data edge carries the boundary transfer.
            const Time edge =
                d.stage != t.stage ? times.sendTask : 0.0;
            start = std::max(start,
                             finish[static_cast<size_t>(dep)] + edge);
        }
        finish[i] = start + taskDuration(t, times);
        span = std::max(span, finish[i]);
    }
    return span;
}

Time
pipelineLowerBound(const PipelineProgram &program,
                   const PipelineTimeModel &times)
{
    // (a) the busiest stage's total serialized compute.
    const Time per_stage =
        static_cast<double>(program.microBatches * program.chunks) *
        (times.fwdTask + times.bwdTask);

    // (b) one micro-batch's fwd+bwd critical path with its transfers.
    const int L = program.stages * program.chunks;
    int boundary_edges = 0;
    for (int l = 1; l < L; ++l)
        if (l % program.stages != (l - 1) % program.stages)
            ++boundary_edges;
    const Time critical =
        static_cast<double>(L) * (times.fwdTask + times.bwdTask) +
        2.0 * static_cast<double>(boundary_edges) * times.sendTask;

    return std::max(per_stage, critical);
}

double
gpipeBubbleFraction(int stages, int micro_batches)
{
    if (stages <= 0 || micro_batches <= 0)
        fatal("gpipeBubbleFraction: stages (%d) and micro_batches (%d) "
              "must be positive", stages, micro_batches);
    return static_cast<double>(stages - 1) /
           static_cast<double>(micro_batches + stages - 1);
}

} // namespace meshslice
