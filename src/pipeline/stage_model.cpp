#include "pipeline/stage_model.hpp"

#include "gemm/reshard.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

void
validateAxes(const PipelineAxes &axes)
{
    if (axes.tpRows < 1 || axes.tpCols < 1 || axes.pp < 1 ||
        axes.dp < 1 || axes.microBatches < 1 || axes.chunks < 1)
        fatal("PipelineAxes: tp %dx%d, pp %d, dp %d, micro-batches %d, "
              "chunks %d must all be positive", axes.tpRows, axes.tpCols,
              axes.pp, axes.dp, axes.microBatches, axes.chunks);
}

} // namespace

bool
axesFeasible(const TransformerConfig &model, const TrainingConfig &train,
             const PipelineAxes &axes, std::string *reason)
{
    validateAxes(axes);
    auto fail = [&](std::string why) {
        if (reason != nullptr)
            *reason = std::move(why);
        return false;
    };
    const std::int64_t slots =
        static_cast<std::int64_t>(axes.pp) * axes.chunks;
    if (model.layers % slots != 0)
        return fail(strprintf("%lld layers do not divide over pp=%d x "
                              "chunks=%d", static_cast<long long>(
                                  model.layers), axes.pp, axes.chunks));
    if (train.batch % axes.dp != 0)
        return fail(strprintf("batch %lld does not divide over dp=%d",
                              static_cast<long long>(train.batch),
                              axes.dp));
    const std::int64_t per_replica = train.batch / axes.dp;
    if (per_replica % axes.microBatches != 0)
        return fail(strprintf("per-replica batch %lld does not divide "
                              "into %d micro-batches",
                              static_cast<long long>(per_replica),
                              axes.microBatches));
    if (axes.schedule != PipelineSchedule::kInterleaved1F1B &&
        axes.chunks != 1)
        return fail(strprintf("%s requires chunks == 1 (got %d)",
                              pipelineScheduleName(axes.schedule),
                              axes.chunks));
    if (axes.schedule == PipelineSchedule::kInterleaved1F1B &&
        axes.microBatches % axes.pp != 0)
        return fail(strprintf("interleaved 1F1B needs micro_batches %% "
                              "stages == 0 (got %d %% %d)",
                              axes.microBatches, axes.pp));
    return true;
}

std::int64_t
layersPerChunk(const TransformerConfig &model, const PipelineAxes &axes)
{
    validateAxes(axes);
    const std::int64_t slots =
        static_cast<std::int64_t>(axes.pp) * axes.chunks;
    if (model.layers % slots != 0)
        fatal("layersPerChunk: %lld layers do not divide over pp=%d x "
              "chunks=%d — check axesFeasible first",
              static_cast<long long>(model.layers), axes.pp, axes.chunks);
    return model.layers / slots;
}

std::int64_t
microBatchSequences(const TrainingConfig &train, const PipelineAxes &axes)
{
    validateAxes(axes);
    const std::int64_t denom =
        static_cast<std::int64_t>(axes.dp) * axes.microBatches;
    if (train.batch % denom != 0)
        fatal("microBatchSequences: batch %lld does not divide over "
              "dp=%d x micro-batches=%d — check axesFeasible first",
              static_cast<long long>(train.batch), axes.dp,
              axes.microBatches);
    return train.batch / denom;
}

Bytes
boundaryBytesPerMicroBatch(const ChipConfig &cfg,
                           const TransformerConfig &model,
                           const TrainingConfig &train,
                           const PipelineAxes &axes)
{
    const std::int64_t tokens =
        microBatchSequences(train, axes) * train.seqLen;
    return tokens * model.hiddenDim * cfg.bytesPerElement;
}

Bytes
activationBytesPerChip(const ChipConfig &cfg,
                       const TransformerConfig &model,
                       const TrainingConfig &train,
                       const PipelineAxes &axes)
{
    const double tokens = static_cast<double>(
        microBatchSequences(train, axes) * train.seqLen);
    const double h = static_cast<double>(model.hiddenDim);
    const double a = static_cast<double>(model.heads);
    const double s = static_cast<double>(train.seqLen);
    const double bpe = static_cast<double>(cfg.bytesPerElement);
    // Megatron accounting at 2 bytes/element: 34*h + 5*a*s bytes per
    // token per block; scale linearly for other element widths.
    const double per_token_block = (17.0 * h + 2.5 * a * s) * bpe;
    const double blocks =
        static_cast<double>(layersPerChunk(model, axes) * axes.chunks);
    return static_cast<Bytes>(tokens * per_token_block * blocks /
                              static_cast<double>(axes.tpDegree()));
}

Bytes
residentBytesPerChip(const ChipConfig &cfg, const TransformerConfig &model,
                     const PipelineAxes &axes)
{
    validateAxes(axes);
    const double params_per_stage =
        model.parameterCount() / static_cast<double>(axes.pp);
    // Weights + gradients at model precision plus fp32 Adam moments
    // and master copy: 2 * bpe + 12 bytes per parameter.
    const double bytes_per_param =
        2.0 * static_cast<double>(cfg.bytesPerElement) + 12.0;
    return static_cast<Bytes>(params_per_stage * bytes_per_param /
                              static_cast<double>(axes.tpDegree()));
}

PipelineStageMemorySpec
stageMemorySpec(const ChipConfig &cfg, const TransformerConfig &model,
                const TrainingConfig &train, const PipelineAxes &axes,
                const PipelineProgram &program, int stage)
{
    PipelineStageMemorySpec spec;
    spec.residentBytes = residentBytesPerChip(cfg, model, axes);
    spec.activationBytes =
        activationBytesPerChip(cfg, model, train, axes);
    spec.boundaryBytes =
        boundaryBytesPerMicroBatch(cfg, model, train, axes) /
        axes.tpDegree();
    spec.peakInFlight = peakInFlight(program, stage);
    spec.recompute = axes.recompute;
    return spec;
}

PipelineExecSpec
makeExecSpec(const ChipConfig &cfg, const TransformerConfig &model,
             const TrainingConfig &train, const PipelineAxes &axes,
             Time block_fwd, Time block_bwd, MeshShape prev_mesh)
{
    if (block_fwd < 0.0 || block_bwd < 0.0)
        fatal("makeExecSpec: negative block times (fwd %g, bwd %g)",
              block_fwd, block_bwd);
    const std::int64_t blocks = layersPerChunk(model, axes);
    PipelineExecSpec spec;
    spec.schedule = axes.schedule;
    spec.microBatches = axes.microBatches;
    spec.chunks = axes.chunks;
    spec.fwdTime = static_cast<double>(blocks) * block_fwd;
    spec.bwdTime = static_cast<double>(blocks) *
                   (block_bwd + (axes.recompute ? block_fwd : 0.0));
    spec.boundaryBytes =
        boundaryBytesPerMicroBatch(cfg, model, train, axes);
    spec.remapBytes = static_cast<Bytes>(remapBytesModel(
        static_cast<double>(spec.boundaryBytes), prev_mesh,
        axes.tpMesh()));
    spec.chargeLaunch = true;
    return spec;
}

} // namespace meshslice
