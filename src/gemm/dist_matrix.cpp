#include "gemm/dist_matrix.hpp"

#include "util/logging.hpp"

namespace meshslice {

DistMatrix::DistMatrix(MeshShape mesh, std::int64_t rows, std::int64_t cols)
    : mesh_(mesh), rows_(rows), cols_(cols)
{
    if (mesh.rows <= 0 || mesh.cols <= 0)
        panic("DistMatrix: bad mesh %dx%d", mesh.rows, mesh.cols);
    if (rows % mesh.rows != 0 || cols % mesh.cols != 0)
        panic("DistMatrix: %lldx%lld not divisible by mesh %dx%d",
              static_cast<long long>(rows), static_cast<long long>(cols),
              mesh.rows, mesh.cols);
    shards_.reserve(static_cast<size_t>(mesh.chips()));
    for (int i = 0; i < mesh.chips(); ++i)
        shards_.emplace_back(rows / mesh.rows, cols / mesh.cols);
}

DistMatrix
DistMatrix::scatter(const Matrix &full, MeshShape mesh)
{
    DistMatrix out(mesh, full.rows(), full.cols());
    const std::int64_t sr = out.shardRows();
    const std::int64_t sc = out.shardCols();
    for (int i = 0; i < mesh.rows; ++i)
        for (int j = 0; j < mesh.cols; ++j) {
            Matrix &shard = out.shardAt(i, j);
            for (std::int64_t r = 0; r < sr; ++r)
                for (std::int64_t c = 0; c < sc; ++c)
                    shard.at(r, c) = full.at(i * sr + r, j * sc + c);
        }
    return out;
}

Matrix
DistMatrix::gather() const
{
    Matrix full(rows_, cols_);
    const std::int64_t sr = shardRows();
    const std::int64_t sc = shardCols();
    for (int i = 0; i < mesh_.rows; ++i)
        for (int j = 0; j < mesh_.cols; ++j) {
            const Matrix &shard = shardAt(i, j);
            for (std::int64_t r = 0; r < sr; ++r)
                for (std::int64_t c = 0; c < sc; ++c)
                    full.at(i * sr + r, j * sc + c) = shard.at(r, c);
        }
    return full;
}

Matrix &
DistMatrix::shardAt(int r, int c)
{
    if (r < 0 || r >= mesh_.rows || c < 0 || c >= mesh_.cols)
        panic("DistMatrix::shardAt(%d,%d) out of mesh %dx%d", r, c,
              mesh_.rows, mesh_.cols);
    return shards_[static_cast<size_t>(r * mesh_.cols + c)];
}

const Matrix &
DistMatrix::shardAt(int r, int c) const
{
    return const_cast<DistMatrix *>(this)->shardAt(r, c);
}

} // namespace meshslice
