/**
 * @file
 * Step-accurate *functional* ring collectives.
 *
 * The timing simulator models AG/RdS/bcast/reduce as sequences of
 * neighbour transfers (Fig 3); this module implements the very same
 * step structure on real data — P-1 synchronized steps in which every
 * chip passes one block to its ring neighbour — so tests can verify
 * that the schedules the timing layer charges for actually implement
 * the collective semantics (and with the exact per-step block sizes
 * the timing layer assumes).
 */
#ifndef MESHSLICE_GEMM_RING_COLLECTIVES_HPP_
#define MESHSLICE_GEMM_RING_COLLECTIVES_HPP_

#include <cstdint>
#include <vector>

#include "gemm/matrix.hpp"

namespace meshslice {

/**
 * Optional per-step transcript of a functional shard collective: one
 * entry per synchronized step, holding the element count of the block
 * *each* chip transferred in that step (the pattern is uniform — every
 * chip moves one equal-size block per step). Tests cross-check this
 * against the timing layer's step count and per-step transfer sizes
 * so the two paths cannot drift apart, in particular under the
 * degraded unidirectional fallback.
 */
using RingStepTrace = std::vector<std::int64_t>;

/**
 * Ring AllGather via P-1 neighbour shifts: chip i contributes
 * `shards[i]`; returns per-chip results, each the row-concatenation
 * shards[0] .. shards[P-1]. @p steps, when non-null, is cleared and
 * filled with the per-step per-chip transferred element counts.
 */
std::vector<Matrix> ringAllGatherFunctional(
    const std::vector<Matrix> &shards, RingStepTrace *steps = nullptr);

/**
 * Ring ReduceScatter via P-1 neighbour shifts with accumulation:
 * chip i contributes `partials[i]` (all the same shape, logically P
 * stacked blocks of rows); returns per-chip reduced blocks: result[i]
 * = sum over j of block i of partials[j]. @p steps as in
 * `ringAllGatherFunctional`.
 */
std::vector<Matrix> ringReduceScatterFunctional(
    const std::vector<Matrix> &partials, RingStepTrace *steps = nullptr);

/**
 * Pipelined ring broadcast from `root`: the payload is cut into
 * `packets` row-panels streamed hop by hop (the SUMMA primitive).
 * Returns per-chip copies (all equal to the root's payload).
 */
std::vector<Matrix> ringBroadcastFunctional(
    const std::vector<Matrix> &payloads, int root, int packets);

/**
 * Pipelined ring reduce to `root`: each chip contributes a same-shape
 * partial; the root ends with the element-wise sum. Returns the
 * root's result.
 */
Matrix ringReduceFunctional(const std::vector<Matrix> &partials, int root,
                            int packets);

/**
 * AllReduce = ReduceScatter + AllGather (the DP gradient primitive):
 * every chip contributes a same-shape partial and receives the full
 * element-wise sum.
 */
std::vector<Matrix> ringAllReduceFunctional(
    const std::vector<Matrix> &partials);

/** One rotation: result[i] = shards[(i + 1) % P] (forward receive). */
std::vector<Matrix> ringShiftFunctional(const std::vector<Matrix> &shards,
                                        bool forward);

} // namespace meshslice

#endif // MESHSLICE_GEMM_RING_COLLECTIVES_HPP_
