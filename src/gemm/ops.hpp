/**
 * @file
 * Element-wise and row-wise neural-network kernels on dense matrices:
 * GeLU, row softmax, layer normalization (non-affine) — forward and
 * backward. These are the "other layers" of the transformer block
 * (Sec 4.4) that run chip-locally under 2D TP; the distributed block
 * (model/dist_block) applies them per shard.
 */
#ifndef MESHSLICE_GEMM_OPS_HPP_
#define MESHSLICE_GEMM_OPS_HPP_

#include "gemm/matrix.hpp"

namespace meshslice {

/** tanh-approximation GeLU, element-wise. */
Matrix geluForward(const Matrix &x);

/** dL/dx of GeLU given input x and upstream gradient dy. */
Matrix geluBackward(const Matrix &x, const Matrix &dy);

/** Row-wise softmax. */
Matrix softmaxRows(const Matrix &x);

/**
 * Backward of row softmax: given the forward output p and upstream
 * gradient dp, returns dx = p .* (dp - rowsum(p .* dp)).
 */
Matrix softmaxRowsBackward(const Matrix &p, const Matrix &dp);

/** Per-row mean and 1/sqrt(var + eps) over the given column count. */
struct RowStats
{
    std::vector<float> mean;
    std::vector<float> invStd;
};

/**
 * Row statistics of x, optionally computed from externally accumulated
 * partial sums (for sharded rows): sum and sum-of-squares per row over
 * @p total_cols columns.
 */
RowStats rowStatsFromSums(const std::vector<double> &sum,
                          const std::vector<double> &sum_sq,
                          std::int64_t total_cols, double eps = 1e-5);

/** Partial per-row (sum, sum_sq) of a shard, for cross-shard stats. */
void accumulateRowSums(const Matrix &x, std::vector<double> &sum,
                       std::vector<double> &sum_sq);

/** Normalize x row-wise with the given stats: (x - mean) * invStd. */
Matrix layerNormApply(const Matrix &x, const RowStats &stats);

/**
 * Backward of non-affine layer norm over sharded rows. Given the
 * input shard x, its row stats (over the *full* row), the upstream
 * gradient shard dy, and the full-row reductions
 *   r1[i] = sum_j dy[i,j]  and  r2[i] = sum_j dy[i,j] * xhat[i,j],
 * returns dx = invStd * (dy - r1/N - xhat .* r2/N).
 */
Matrix layerNormBackward(const Matrix &x, const RowStats &stats,
                         const Matrix &dy, const std::vector<double> &r1,
                         const std::vector<double> &r2,
                         std::int64_t total_cols);

/** Convenience: full (unsharded) layer norm forward. */
Matrix layerNormForward(const Matrix &x, RowStats *stats_out = nullptr);

/** Convenience: full (unsharded) layer norm backward. */
Matrix layerNormBackwardFull(const Matrix &x, const RowStats &stats,
                             const Matrix &dy);

} // namespace meshslice

#endif // MESHSLICE_GEMM_OPS_HPP_
