#include "gemm/reshard.hpp"

#include <algorithm>
#include <unordered_map>

#include "hw/chip_config.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Torus degree: each chip sources/sinks re-shard traffic over its
 *  four ICI links in parallel (first-order aggregate bandwidth). */
constexpr int kTorusLinksPerChip = 4;

} // namespace

MeshShape
SurvivorMesh::to() const
{
    validate();
    if (failedRow >= 0)
        return MeshShape{from.rows - 1, from.cols};
    return MeshShape{from.rows, from.cols - 1};
}

std::pair<int, int>
SurvivorMesh::oldCoord(int p, int q) const
{
    const int r = (failedRow >= 0 && p >= failedRow) ? p + 1 : p;
    const int c = (failedCol >= 0 && q >= failedCol) ? q + 1 : q;
    return {r, c};
}

int
SurvivorMesh::oldChipAt(int p, int q) const
{
    auto [r, c] = oldCoord(p, q);
    return r * from.cols + c;
}

void
SurvivorMesh::validate() const
{
    if (from.rows < 1 || from.cols < 1)
        fatal("SurvivorMesh: original mesh %dx%d is empty", from.rows,
              from.cols);
    const bool row_mode = failedRow >= 0;
    const bool col_mode = failedCol >= 0;
    if (row_mode == col_mode)
        fatal("SurvivorMesh: exactly one of failedRow (%d) / failedCol "
              "(%d) must be set — a fail-stop retires one row or one "
              "column of the mesh, never both", failedRow, failedCol);
    if (row_mode && failedRow >= from.rows)
        fatal("SurvivorMesh: failedRow %d out of range for a %dx%d mesh",
              failedRow, from.rows, from.cols);
    if (col_mode && failedCol >= from.cols)
        fatal("SurvivorMesh: failedCol %d out of range for a %dx%d mesh",
              failedCol, from.rows, from.cols);
    if (row_mode && from.rows < 2)
        fatal("SurvivorMesh: cannot retire a row of a %dx%d mesh — no "
              "survivors would remain", from.rows, from.cols);
    if (col_mode && from.cols < 2)
        fatal("SurvivorMesh: cannot retire a column of a %dx%d mesh — "
              "no survivors would remain", from.rows, from.cols);
}

std::vector<SurvivorMesh>
survivorOptionsForChip(MeshShape from, int dead_chip)
{
    if (from.rows < 1 || from.cols < 1)
        fatal("survivorOptionsForChip: mesh %dx%d is empty", from.rows,
              from.cols);
    if (dead_chip < 0 || dead_chip >= from.chips())
        fatal("survivorOptionsForChip: chip %d outside the %dx%d mesh",
              dead_chip, from.rows, from.cols);
    const int dead_row = dead_chip / from.cols;
    const int dead_col = dead_chip % from.cols;
    std::vector<SurvivorMesh> options;
    if (from.rows >= 2)
        options.push_back(SurvivorMesh{from, dead_row, -1});
    if (from.cols >= 2)
        options.push_back(SurvivorMesh{from, -1, dead_col});
    if (options.empty())
        fatal("survivorOptionsForChip: a 1x1 mesh has no survivor "
              "option after chip %d dies", dead_chip);
    return options;
}

std::vector<int>
oldToNewChipMap(const SurvivorMesh &sv)
{
    sv.validate();
    const MeshShape to = sv.to();
    std::vector<int> map(static_cast<size_t>(sv.from.chips()), -1);
    for (int p = 0; p < to.rows; ++p)
        for (int q = 0; q < to.cols; ++q)
            map[static_cast<size_t>(sv.oldChipAt(p, q))] =
                p * to.cols + q;
    return map;
}

ReshardPlan
planReshard(std::int64_t rows, std::int64_t cols, int bytes_per_element,
            const SurvivorMesh &sv)
{
    sv.validate();
    const MeshShape to = sv.to();
    if (rows <= 0 || cols <= 0 || bytes_per_element <= 0)
        fatal("planReshard: matrix %lldx%lld with %d-byte elements is "
              "not re-shardable", static_cast<long long>(rows),
              static_cast<long long>(cols), bytes_per_element);
    if (rows % sv.from.rows != 0 || cols % sv.from.cols != 0 ||
        rows % to.rows != 0 || cols % to.cols != 0)
        fatal("planReshard: %lldx%lld must divide evenly by both the "
              "%dx%d source mesh and the %dx%d survivor mesh",
              static_cast<long long>(rows), static_cast<long long>(cols),
              sv.from.rows, sv.from.cols, to.rows, to.cols);

    const std::int64_t nr1 = rows / sv.from.rows; // old shard rows
    const std::int64_t nc1 = cols / sv.from.cols;
    const std::int64_t nr2 = rows / to.rows; // new shard rows
    const std::int64_t nc2 = cols / to.cols;

    ReshardPlan plan;
    plan.from = sv.from;
    plan.to = to;
    std::unordered_map<int, Bytes> ingress;
    std::unordered_map<int, Bytes> egress;

    // Destination-major enumeration of region overlaps: new shard
    // (p, q) covers global rows [p*nr2, (p+1)*nr2) x cols
    // [q*nc2, (q+1)*nc2); every old shard it intersects contributes
    // one (src -> dst) block movement.
    for (int p = 0; p < to.rows; ++p) {
        for (int q = 0; q < to.cols; ++q) {
            const int dst_chip = sv.oldChipAt(p, q);
            const std::int64_t r_lo = p * nr2;
            const std::int64_t r_hi = (p + 1) * nr2;
            const std::int64_t c_lo = q * nc2;
            const std::int64_t c_hi = (q + 1) * nc2;
            for (std::int64_t i = r_lo / nr1; i * nr1 < r_hi; ++i) {
                const std::int64_t orows =
                    std::min(r_hi, (i + 1) * nr1) - std::max(r_lo, i * nr1);
                for (std::int64_t j = c_lo / nc1; j * nc1 < c_hi; ++j) {
                    const std::int64_t ocols =
                        std::min(c_hi, (j + 1) * nc1) -
                        std::max(c_lo, j * nc1);
                    const Bytes bytes = orows * ocols * bytes_per_element;
                    const int src_chip =
                        static_cast<int>(i) * sv.from.cols +
                        static_cast<int>(j);
                    if (src_chip == dst_chip) {
                        plan.localBytes += bytes;
                        continue;
                    }
                    plan.moves.push_back(
                        ReshardMove{src_chip, dst_chip, bytes});
                    plan.totalBytes += bytes;
                    ingress[dst_chip] += bytes;
                    egress[src_chip] += bytes;
                }
            }
        }
    }
    for (const auto &[chip, bytes] : ingress)
        plan.maxChipIngress = std::max(plan.maxChipIngress, bytes);
    for (const auto &[chip, bytes] : egress)
        plan.maxChipEgress = std::max(plan.maxChipEgress, bytes);
    return plan;
}

DistMatrix
reshard(const DistMatrix &m, const SurvivorMesh &sv)
{
    sv.validate();
    if (!(m.mesh() == sv.from))
        fatal("reshard: matrix is sharded over a %dx%d mesh but the "
              "survivor description starts from %dx%d", m.mesh().rows,
              m.mesh().cols, sv.from.rows, sv.from.cols);
    const MeshShape to = sv.to();
    if (m.rows() % to.rows != 0 || m.cols() % to.cols != 0)
        fatal("reshard: %lldx%lld does not divide evenly over the %dx%d "
              "survivor mesh", static_cast<long long>(m.rows()),
              static_cast<long long>(m.cols()), to.rows, to.cols);

    const std::int64_t nr1 = m.shardRows();
    const std::int64_t nc1 = m.shardCols();
    const std::int64_t nr2 = m.rows() / to.rows;
    const std::int64_t nc2 = m.cols() / to.cols;

    DistMatrix out(to, m.rows(), m.cols());
    // Element-wise copy in global coordinates: trivially bit-exact and
    // independent of how the block movements are batched.
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        const int i = static_cast<int>(r / nr1);
        const int p = static_cast<int>(r / nr2);
        for (std::int64_t c = 0; c < m.cols(); ++c) {
            const int j = static_cast<int>(c / nc1);
            const int q = static_cast<int>(c / nc2);
            out.shardAt(p, q).at(r % nr2, c % nc2) =
                m.shardAt(i, j).at(r % nr1, c % nc1);
        }
    }
    return out;
}

double
reshardBytesModel(double total_bytes, const SurvivorMesh &sv)
{
    sv.validate();
    const MeshShape to = sv.to();
    // Same-owner fraction factorizes over the two axes because row and
    // column ownership are independent. Along an axis split into N old
    // and M new strips, floor(x*N) and floor(x*M) are constant on each
    // elementary interval [k, k+1) / (N*M), so an exact integer count
    // replaces the integral.
    auto same_fraction = [](int n_old, int n_new, int failed) {
        if (failed < 0) {
            // Axis untouched: owners renumber identically.
            return 1.0;
        }
        std::int64_t same = 0;
        const std::int64_t cells =
            static_cast<std::int64_t>(n_old) * n_new;
        for (std::int64_t k = 0; k < cells; ++k) {
            const int old_strip = static_cast<int>(k / n_new);
            const int new_strip = static_cast<int>(k / n_old);
            const int mapped =
                new_strip >= failed ? new_strip + 1 : new_strip;
            if (mapped == old_strip)
                ++same;
        }
        return static_cast<double>(same) / static_cast<double>(cells);
    };
    const double row_same =
        same_fraction(sv.from.rows, to.rows, sv.failedRow);
    const double col_same =
        same_fraction(sv.from.cols, to.cols, sv.failedCol);
    return total_bytes * (1.0 - row_same * col_same);
}

RemapPlan
planRemap(std::int64_t rows, std::int64_t cols, int bytes_per_element,
          MeshShape from, MeshShape to)
{
    if (from.rows < 1 || from.cols < 1 || to.rows < 1 || to.cols < 1)
        fatal("planRemap: mesh shapes %dx%d -> %dx%d must be non-empty",
              from.rows, from.cols, to.rows, to.cols);
    if (rows <= 0 || cols <= 0 || bytes_per_element <= 0)
        fatal("planRemap: tensor %lldx%lld with %d-byte elements is not "
              "remappable", static_cast<long long>(rows),
              static_cast<long long>(cols), bytes_per_element);
    if (rows % from.rows != 0 || cols % from.cols != 0 ||
        rows % to.rows != 0 || cols % to.cols != 0)
        fatal("planRemap: %lldx%lld must divide evenly by both the %dx%d "
              "producer mesh and the %dx%d consumer mesh",
              static_cast<long long>(rows), static_cast<long long>(cols),
              from.rows, from.cols, to.rows, to.cols);

    const std::int64_t nr1 = rows / from.rows; // producer shard rows
    const std::int64_t nc1 = cols / from.cols;
    const std::int64_t nr2 = rows / to.rows; // consumer shard rows
    const std::int64_t nc2 = cols / to.cols;

    RemapPlan plan;
    plan.from = from;
    plan.to = to;
    std::unordered_map<int, Bytes> ingress;
    std::unordered_map<int, Bytes> egress;

    for (int p = 0; p < to.rows; ++p) {
        for (int q = 0; q < to.cols; ++q) {
            const std::int64_t r_lo = p * nr2;
            const std::int64_t r_hi = (p + 1) * nr2;
            const std::int64_t c_lo = q * nc2;
            const std::int64_t c_hi = (q + 1) * nc2;
            for (std::int64_t i = r_lo / nr1; i * nr1 < r_hi; ++i) {
                const std::int64_t orows =
                    std::min(r_hi, (i + 1) * nr1) - std::max(r_lo, i * nr1);
                for (std::int64_t j = c_lo / nc1; j * nc1 < c_hi; ++j) {
                    const std::int64_t ocols =
                        std::min(c_hi, (j + 1) * nc1) -
                        std::max(c_lo, j * nc1);
                    const Bytes bytes = orows * ocols * bytes_per_element;
                    RemapMove move;
                    move.srcRow = static_cast<int>(i);
                    move.srcCol = static_cast<int>(j);
                    move.dstRow = p;
                    move.dstCol = q;
                    move.bytes = bytes;
                    move.matched =
                        move.srcRow == p && move.srcCol == q;
                    plan.totalBytes += bytes;
                    if (move.matched)
                        plan.matchedBytes += bytes;
                    else
                        plan.movedBytes += bytes;
                    ingress[p * to.cols + q] += bytes;
                    egress[static_cast<int>(i) * from.cols +
                           static_cast<int>(j)] += bytes;
                    plan.moves.push_back(move);
                }
            }
        }
    }
    for (const auto &[chip, bytes] : ingress)
        plan.maxChipIngress = std::max(plan.maxChipIngress, bytes);
    for (const auto &[chip, bytes] : egress)
        plan.maxChipEgress = std::max(plan.maxChipEgress, bytes);
    return plan;
}

double
remapBytesModel(double total_bytes, MeshShape from, MeshShape to)
{
    if (from.rows < 1 || from.cols < 1 || to.rows < 1 || to.cols < 1)
        fatal("remapBytesModel: mesh shapes %dx%d -> %dx%d must be "
              "non-empty", from.rows, from.cols, to.rows, to.cols);
    if (total_bytes < 0.0)
        fatal("remapBytesModel: total bytes must be >= 0 (got %g)",
              total_bytes);
    // Same-position fraction factorizes over the axes; along one axis
    // split into N producer and M consumer strips, floor(x*N) and
    // floor(x*M) are constant on each elementary interval of length
    // 1 / (N*M), so an exact integer count replaces the integral.
    auto same_fraction = [](int n_from, int n_to) {
        std::int64_t same = 0;
        const std::int64_t cells =
            static_cast<std::int64_t>(n_from) * n_to;
        for (std::int64_t k = 0; k < cells; ++k)
            if (k / n_to == k / n_from)
                ++same;
        return static_cast<double>(same) / static_cast<double>(cells);
    };
    const double row_same = same_fraction(from.rows, to.rows);
    const double col_same = same_fraction(from.cols, to.cols);
    return total_bytes * (1.0 - row_same * col_same);
}

Time
reshardTime(const ChipConfig &cfg, const ReshardPlan &plan)
{
    const Bytes bottleneck =
        std::max(plan.maxChipIngress, plan.maxChipEgress);
    return cfg.launchOverhead +
           static_cast<double>(bottleneck) / reshardChipRate(cfg) +
           cfg.syncLatency;
}

Time
reshardTimeModel(const ChipConfig &cfg, double moved_bytes,
                 int survivor_chips)
{
    if (survivor_chips < 1)
        fatal("reshardTimeModel: need at least one survivor chip (got %d)",
              survivor_chips);
    if (moved_bytes < 0.0)
        fatal("reshardTimeModel: moved bytes must be >= 0 (got %g)",
              moved_bytes);
    return cfg.launchOverhead +
           moved_bytes / static_cast<double>(survivor_chips) /
               reshardChipRate(cfg) +
           cfg.syncLatency;
}

std::vector<ReshardChipTraffic>
reshardChipTraffic(const ReshardPlan &plan)
{
    std::unordered_map<int, ReshardChipTraffic> by_chip;
    auto slot = [&by_chip](int chip) -> ReshardChipTraffic & {
        ReshardChipTraffic &t = by_chip[chip];
        t.chip = chip;
        return t;
    };
    for (const ReshardMove &mv : plan.moves) {
        slot(mv.srcChip).egress += mv.bytes;
        slot(mv.dstChip).ingress += mv.bytes;
    }
    std::vector<ReshardChipTraffic> out;
    out.reserve(by_chip.size());
    for (const auto &kv : by_chip)
        out.push_back(kv.second);
    std::sort(out.begin(), out.end(),
              [](const ReshardChipTraffic &a, const ReshardChipTraffic &b) {
                  return a.chip < b.chip;
              });
    return out;
}

Rate
reshardChipRate(const ChipConfig &cfg)
{
    return kTorusLinksPerChip * cfg.iciLinkBandwidth /
           cfg.logicalMeshContention;
}

} // namespace meshslice
