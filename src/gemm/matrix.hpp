/**
 * @file
 * A small dense row-major matrix library.
 *
 * This is the numerical substrate of the *functional* distributed GeMM
 * runtime: the timing simulator never touches element data, but the
 * functional algorithms (used to verify that MeshSlice's slicing is a
 * correct partition of the computation) run real float math through it.
 */
#ifndef MESHSLICE_GEMM_MATRIX_HPP_
#define MESHSLICE_GEMM_MATRIX_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace meshslice {

/** Dense row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::int64_t rows, std::int64_t cols);

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    float &
    at(std::int64_t r, std::int64_t c)
    {
        return data_[static_cast<size_t>(r * cols_ + c)];
    }
    float
    at(std::int64_t r, std::int64_t c) const
    {
        return data_[static_cast<size_t>(r * cols_ + c)];
    }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    /** Deterministic pseudo-random matrix in [-1, 1). */
    static Matrix random(std::int64_t rows, std::int64_t cols,
                         std::uint64_t seed);

    /** Identity-like matrix (1 on the main diagonal). */
    static Matrix identity(std::int64_t n);

    Matrix transpose() const;

    /** Contiguous row block [start, start+count). */
    Matrix rowBlock(std::int64_t start, std::int64_t count) const;

    /** Contiguous column block [start, start+count). */
    Matrix colBlock(std::int64_t start, std::int64_t count) const;

    /** Horizontal concatenation (equal row counts). */
    static Matrix hcat(const std::vector<Matrix> &parts);

    /** Vertical concatenation (equal column counts). */
    static Matrix vcat(const std::vector<Matrix> &parts);

    /** this += other (same shape). */
    void add(const Matrix &other);

    /** Max absolute element difference; shapes must match. */
    double maxAbsDiff(const Matrix &other) const;

    /** True if every element differs by at most @p tol. */
    bool allClose(const Matrix &other, double tol = 1e-3) const;

    /**
     * c += a * b (shapes must agree). Cache-blocked (64-row x 256-k
     * panels) and parallelized over row panels on the shared pool;
     * per output element the contraction accumulates in increasing-k
     * order, so results are bit-identical to the naive triple loop
     * for any `MESHSLICE_THREADS`.
     */
    static void gemmAcc(const Matrix &a, const Matrix &b, Matrix &c);

    /** a * b. */
    static Matrix gemm(const Matrix &a, const Matrix &b);

  private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace meshslice

#endif // MESHSLICE_GEMM_MATRIX_HPP_
