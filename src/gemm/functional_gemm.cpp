#include "gemm/functional_gemm.hpp"

#include <numeric>

#include "gemm/ring_collectives.hpp"
#include "gemm/slicing.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

void
checkSameMesh(const DistMatrix &a, const DistMatrix &b, const char *what)
{
    if (!(a.mesh() == b.mesh()))
        panic("%s: operands on different meshes", what);
}

} // namespace

// --------------------------------------------------------------------
// MeshSlice (Fig 5)
// --------------------------------------------------------------------

DistMatrix
funcMeshSliceOS(const DistMatrix &a, const DistMatrix &b, int s_count,
                int block)
{
    checkSameMesh(a, b, "funcMeshSliceOS");
    const MeshShape mesh = a.mesh();
    if (a.cols() != b.rows())
        panic("funcMeshSliceOS: K mismatch");
    DistMatrix c(mesh, a.rows(), b.cols());

    for (int s = 0; s < s_count; ++s) {
        // A' per row: AG_col of the s-th column sub-shards.
        std::vector<Matrix> a_prime(static_cast<size_t>(mesh.rows));
        for (int i = 0; i < mesh.rows; ++i) {
            std::vector<Matrix> parts;
            parts.reserve(static_cast<size_t>(mesh.cols));
            for (int j = 0; j < mesh.cols; ++j)
                parts.push_back(
                    sliceCols(a.shardAt(i, j), s_count, s, block));
            a_prime[static_cast<size_t>(i)] = Matrix::hcat(parts);
        }
        // B' per column: AG_row of the s-th row sub-shards.
        std::vector<Matrix> b_prime(static_cast<size_t>(mesh.cols));
        for (int j = 0; j < mesh.cols; ++j) {
            std::vector<Matrix> parts;
            parts.reserve(static_cast<size_t>(mesh.rows));
            for (int i = 0; i < mesh.rows; ++i)
                parts.push_back(
                    sliceRows(b.shardAt(i, j), s_count, s, block));
            b_prime[static_cast<size_t>(j)] = Matrix::vcat(parts);
        }
        // Partial GeMM accumulated into the stationary C.
        for (int i = 0; i < mesh.rows; ++i)
            for (int j = 0; j < mesh.cols; ++j)
                Matrix::gemmAcc(a_prime[static_cast<size_t>(i)],
                                b_prime[static_cast<size_t>(j)],
                                c.shardAt(i, j));
    }
    return c;
}

DistMatrix
funcMeshSliceLS(const DistMatrix &a, const DistMatrix &b, int s_count,
                int block)
{
    checkSameMesh(a, b, "funcMeshSliceLS");
    const MeshShape mesh = a.mesh();
    if (a.cols() != b.cols())
        panic("funcMeshSliceLS: K mismatch (A is MxK, B is NxK)");
    const std::int64_t n = b.rows();
    DistMatrix c(mesh, a.rows(), n);
    const std::int64_t c_sub_cols = n / (mesh.cols * s_count);

    for (int s = 0; s < s_count; ++s) {
        // B' per column: AG_row of the s-th row sub-shards of B.
        std::vector<Matrix> b_prime(static_cast<size_t>(mesh.cols));
        for (int j = 0; j < mesh.cols; ++j) {
            std::vector<Matrix> parts;
            for (int i = 0; i < mesh.rows; ++i)
                parts.push_back(
                    sliceRows(b.shardAt(i, j), s_count, s, block));
            b_prime[static_cast<size_t>(j)] = Matrix::vcat(parts);
        }
        for (int i = 0; i < mesh.rows; ++i) {
            // C' = A_ij * (B'_j)^T summed across the row (the reduce
            // part of RdS_col).
            Matrix csum(a.shardRows(), n / s_count);
            for (int j = 0; j < mesh.cols; ++j) {
                Matrix bt =
                    b_prime[static_cast<size_t>(j)].transpose();
                Matrix::gemmAcc(a.shardAt(i, j), bt, csum);
            }
            // Scatter: chip j keeps its contiguous run of the sliced
            // column list, un-sliced back into its C shard.
            for (int j = 0; j < mesh.cols; ++j) {
                Matrix sub = csum.colBlock(j * c_sub_cols, c_sub_cols);
                unsliceColsInto(c.shardAt(i, j), sub, s_count, s, block);
            }
        }
    }
    return c;
}

DistMatrix
funcMeshSliceRS(const DistMatrix &a, const DistMatrix &b, int s_count,
                int block)
{
    checkSameMesh(a, b, "funcMeshSliceRS");
    const MeshShape mesh = a.mesh();
    if (a.rows() != b.rows())
        panic("funcMeshSliceRS: K mismatch (A is KxM, B is KxN)");
    const std::int64_t m = a.cols();
    DistMatrix c(mesh, m, b.cols());
    const std::int64_t c_sub_rows = m / (mesh.rows * s_count);

    for (int s = 0; s < s_count; ++s) {
        // A' per row: AG_col of the s-th column sub-shards of A.
        std::vector<Matrix> a_prime(static_cast<size_t>(mesh.rows));
        for (int i = 0; i < mesh.rows; ++i) {
            std::vector<Matrix> parts;
            for (int j = 0; j < mesh.cols; ++j)
                parts.push_back(
                    sliceCols(a.shardAt(i, j), s_count, s, block));
            a_prime[static_cast<size_t>(i)] = Matrix::hcat(parts);
        }
        for (int j = 0; j < mesh.cols; ++j) {
            // C' = (A'_i)^T * B_ij summed down the column.
            Matrix csum(m / s_count, b.shardCols());
            for (int i = 0; i < mesh.rows; ++i) {
                Matrix at = a_prime[static_cast<size_t>(i)].transpose();
                Matrix::gemmAcc(at, b.shardAt(i, j), csum);
            }
            for (int i = 0; i < mesh.rows; ++i) {
                Matrix sub = csum.rowBlock(i * c_sub_rows, c_sub_rows);
                unsliceRowsInto(c.shardAt(i, j), sub, s_count, s, block);
            }
        }
    }
    return c;
}

// --------------------------------------------------------------------
// OneSided (Brock & Golin): per-tile RDMA pulls, no collectives
// --------------------------------------------------------------------

DistMatrix
funcOneSidedOS(const DistMatrix &a, const DistMatrix &b, int s_count,
               int block)
{
    checkSameMesh(a, b, "funcOneSidedOS");
    const MeshShape mesh = a.mesh();
    if (a.cols() != b.rows())
        panic("funcOneSidedOS: K mismatch");
    DistMatrix c(mesh, a.rows(), b.cols());

    // Per-tile loop: tile (i, j) independently pulls the s-th column
    // sub-shard of A from each row peer and the s-th row sub-shard of
    // B from each column peer, then accumulates into its stationary C.
    // Mathematically identical to funcMeshSliceOS — the difference is
    // that no two tiles ever synchronize, which is exactly what lets
    // the timed executor survive per-chip faults.
    for (int i = 0; i < mesh.rows; ++i) {
        for (int j = 0; j < mesh.cols; ++j) {
            for (int s = 0; s < s_count; ++s) {
                std::vector<Matrix> a_parts;
                a_parts.reserve(static_cast<size_t>(mesh.cols));
                for (int jj = 0; jj < mesh.cols; ++jj)
                    a_parts.push_back(
                        sliceCols(a.shardAt(i, jj), s_count, s, block));
                std::vector<Matrix> b_parts;
                b_parts.reserve(static_cast<size_t>(mesh.rows));
                for (int ii = 0; ii < mesh.rows; ++ii)
                    b_parts.push_back(
                        sliceRows(b.shardAt(ii, j), s_count, s, block));
                Matrix::gemmAcc(Matrix::hcat(a_parts),
                                Matrix::vcat(b_parts), c.shardAt(i, j));
            }
        }
    }
    return c;
}

// --------------------------------------------------------------------
// Collective 2D GeMM (Fig 2b)
// --------------------------------------------------------------------

DistMatrix
funcCollectiveOS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcCollectiveOS");
    const MeshShape mesh = a.mesh();
    DistMatrix c(mesh, a.rows(), b.cols());
    for (int i = 0; i < mesh.rows; ++i) {
        std::vector<Matrix> arow;
        for (int j = 0; j < mesh.cols; ++j)
            arow.push_back(a.shardAt(i, j));
        Matrix a_full = Matrix::hcat(arow); // A_i* = AG_col(A_ij)
        for (int j = 0; j < mesh.cols; ++j) {
            std::vector<Matrix> bcol;
            for (int i2 = 0; i2 < mesh.rows; ++i2)
                bcol.push_back(b.shardAt(i2, j));
            Matrix b_full = Matrix::vcat(bcol); // B_*j = AG_row(B_ij)
            Matrix::gemmAcc(a_full, b_full, c.shardAt(i, j));
        }
    }
    return c;
}

DistMatrix
funcCollectiveLS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcCollectiveLS");
    const MeshShape mesh = a.mesh();
    const std::int64_t n = b.rows();
    DistMatrix c(mesh, a.rows(), n);
    const std::int64_t nc = n / mesh.cols;
    for (int i = 0; i < mesh.rows; ++i) {
        Matrix csum(a.shardRows(), n);
        for (int j = 0; j < mesh.cols; ++j) {
            std::vector<Matrix> bcol;
            for (int i2 = 0; i2 < mesh.rows; ++i2)
                bcol.push_back(b.shardAt(i2, j));
            Matrix b_full = Matrix::vcat(bcol); // N x K/Pc
            Matrix bt = b_full.transpose();
            Matrix::gemmAcc(a.shardAt(i, j), bt, csum);
        }
        // RdS_col: chip (i, j) keeps its N/Pc columns.
        for (int j = 0; j < mesh.cols; ++j)
            c.shardAt(i, j) = csum.colBlock(j * nc, nc);
    }
    return c;
}

DistMatrix
funcCollectiveRS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcCollectiveRS");
    const MeshShape mesh = a.mesh();
    const std::int64_t m = a.cols();
    DistMatrix c(mesh, m, b.cols());
    const std::int64_t mr = m / mesh.rows;
    for (int j = 0; j < mesh.cols; ++j) {
        Matrix csum(m, b.shardCols());
        for (int i = 0; i < mesh.rows; ++i) {
            std::vector<Matrix> arow;
            for (int j2 = 0; j2 < mesh.cols; ++j2)
                arow.push_back(a.shardAt(i, j2));
            Matrix a_full = Matrix::hcat(arow); // K/Pr x M
            Matrix at = a_full.transpose();
            Matrix::gemmAcc(at, b.shardAt(i, j), csum);
        }
        // RdS_row: chip (i, j) keeps its M/Pr rows.
        for (int i = 0; i < mesh.rows; ++i)
            c.shardAt(i, j) = csum.rowBlock(i * mr, mr);
    }
    return c;
}

// --------------------------------------------------------------------
// SUMMA (Fig 2a): P = lcm(Pr, Pc) panel iterations.
// --------------------------------------------------------------------

DistMatrix
funcSummaOS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcSummaOS");
    const MeshShape mesh = a.mesh();
    const int p_iter = std::lcm(mesh.rows, mesh.cols);
    const std::int64_t k = a.cols();
    if (k % p_iter != 0)
        panic("funcSummaOS: K %% lcm(Pr,Pc) != 0");
    const std::int64_t kp = k / p_iter;
    DistMatrix c(mesh, a.rows(), b.cols());
    for (int p = 0; p < p_iter; ++p) {
        const int owner_col = p * mesh.cols / p_iter;
        const std::int64_t a_off = p * kp - owner_col * a.shardCols();
        const int owner_row = p * mesh.rows / p_iter;
        const std::int64_t b_off = p * kp - owner_row * b.shardRows();
        for (int i = 0; i < mesh.rows; ++i) {
            // bcast_col(A_ip): owner column's panel shared by the row.
            Matrix a_panel = a.shardAt(i, owner_col).colBlock(a_off, kp);
            for (int j = 0; j < mesh.cols; ++j) {
                Matrix b_panel =
                    b.shardAt(owner_row, j).rowBlock(b_off, kp);
                Matrix::gemmAcc(a_panel, b_panel, c.shardAt(i, j));
            }
        }
    }
    return c;
}

DistMatrix
funcSummaLS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcSummaLS");
    const MeshShape mesh = a.mesh();
    const int p_iter = std::lcm(mesh.rows, mesh.cols);
    const std::int64_t n = b.rows();
    if (n % p_iter != 0)
        panic("funcSummaLS: N %% lcm(Pr,Pc) != 0");
    const std::int64_t np = n / p_iter;
    DistMatrix c(mesh, a.rows(), n);
    for (int p = 0; p < p_iter; ++p) {
        const int owner_row = p * mesh.rows / p_iter;
        const std::int64_t b_off = p * np - owner_row * b.shardRows();
        const int owner_col = p * mesh.cols / p_iter;
        const std::int64_t c_off = p * np - owner_col * c.shardCols();
        for (int i = 0; i < mesh.rows; ++i) {
            Matrix csum(a.shardRows(), np);
            for (int j = 0; j < mesh.cols; ++j) {
                // bcast_row(B_pj): owner row's panel down the column.
                Matrix b_panel =
                    b.shardAt(owner_row, j).rowBlock(b_off, np);
                Matrix bt = b_panel.transpose();
                Matrix::gemmAcc(a.shardAt(i, j), bt, csum);
            }
            // reduce_col(C', C_ip): into the owner column's C panel.
            Matrix &dst = c.shardAt(i, owner_col);
            for (std::int64_t r = 0; r < csum.rows(); ++r)
                for (std::int64_t cc = 0; cc < np; ++cc)
                    dst.at(r, c_off + cc) += csum.at(r, cc);
        }
    }
    return c;
}

DistMatrix
funcSummaRS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcSummaRS");
    const MeshShape mesh = a.mesh();
    const int p_iter = std::lcm(mesh.rows, mesh.cols);
    const std::int64_t m = a.cols();
    if (m % p_iter != 0)
        panic("funcSummaRS: M %% lcm(Pr,Pc) != 0");
    const std::int64_t mp = m / p_iter;
    DistMatrix c(mesh, m, b.cols());
    for (int p = 0; p < p_iter; ++p) {
        const int owner_col = p * mesh.cols / p_iter;
        const std::int64_t a_off = p * mp - owner_col * a.shardCols();
        const int owner_row = p * mesh.rows / p_iter;
        const std::int64_t c_off = p * mp - owner_row * c.shardRows();
        for (int j = 0; j < mesh.cols; ++j) {
            Matrix csum(mp, b.shardCols());
            for (int i = 0; i < mesh.rows; ++i) {
                // bcast_col(A_ip): owner column's panel along the row.
                Matrix a_panel =
                    a.shardAt(i, owner_col).colBlock(a_off, mp);
                Matrix at = a_panel.transpose();
                Matrix::gemmAcc(at, b.shardAt(i, j), csum);
            }
            // reduce_row(C', C_pj): into the owner row's C panel.
            Matrix &dst = c.shardAt(owner_row, j);
            for (std::int64_t r = 0; r < mp; ++r)
                for (std::int64_t cc = 0; cc < csum.cols(); ++cc)
                    dst.at(c_off + r, cc) += csum.at(r, cc);
        }
    }
    return c;
}

// --------------------------------------------------------------------
// Cannon (square mesh) and Wang
// --------------------------------------------------------------------

DistMatrix
funcCannon(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcCannon");
    const MeshShape mesh = a.mesh();
    if (mesh.rows != mesh.cols)
        panic("funcCannon: requires a square mesh, got %dx%d", mesh.rows,
              mesh.cols);
    const int p = mesh.rows;
    DistMatrix c(mesh, a.rows(), b.cols());

    // Skew: A row i rotated left by i, B column j rotated up by j.
    std::vector<Matrix> awork(static_cast<size_t>(p * p));
    std::vector<Matrix> bwork(static_cast<size_t>(p * p));
    for (int i = 0; i < p; ++i)
        for (int j = 0; j < p; ++j) {
            awork[static_cast<size_t>(i * p + j)] =
                a.shardAt(i, (j + i) % p);
            bwork[static_cast<size_t>(i * p + j)] =
                b.shardAt((i + j) % p, j);
        }

    for (int t = 0; t < p; ++t) {
        for (int i = 0; i < p; ++i)
            for (int j = 0; j < p; ++j)
                Matrix::gemmAcc(awork[static_cast<size_t>(i * p + j)],
                                bwork[static_cast<size_t>(i * p + j)],
                                c.shardAt(i, j));
        if (t + 1 == p)
            break;
        // Rotate A left, B up (the systolic SendRecv step).
        std::vector<Matrix> anext(awork.size()), bnext(bwork.size());
        for (int i = 0; i < p; ++i)
            for (int j = 0; j < p; ++j) {
                anext[static_cast<size_t>(i * p + j)] =
                    awork[static_cast<size_t>(i * p + (j + 1) % p)];
                bnext[static_cast<size_t>(i * p + j)] =
                    bwork[static_cast<size_t>(((i + 1) % p) * p + j)];
            }
        awork = std::move(anext);
        bwork = std::move(bnext);
    }
    return c;
}

DistMatrix
func25DGemm(const DistMatrix &a, const DistMatrix &b, int depth)
{
    checkSameMesh(a, b, "func25DGemm");
    const MeshShape mesh = a.mesh();
    if (mesh.rows != mesh.cols)
        panic("func25DGemm: requires a square base mesh, got %dx%d",
              mesh.rows, mesh.cols);
    const int p = mesh.rows;
    if (depth <= 0 || p % depth != 0)
        panic("func25DGemm: depth %d must divide the base dimension %d",
              depth, p);
    const int iterations = p / depth;
    DistMatrix c(mesh, a.rows(), b.cols());

    // Each depth layer holds a replica of the (skewed) shards and
    // performs `iterations` Cannon steps from its own rotation offset;
    // the final per-layer partials are reduced over depth (here: the
    // accumulation into the shared C shards).
    for (int l = 0; l < depth; ++l) {
        const int offset = l * iterations;
        for (int t = 0; t < iterations; ++t) {
            const int shift = offset + t;
            for (int i = 0; i < p; ++i) {
                for (int j = 0; j < p; ++j) {
                    // Cannon alignment after `shift` rotations: chip
                    // (i, j) multiplies A(i, i+j+shift) by
                    // B(i+j+shift, j).
                    const int kidx = (i + j + shift) % p;
                    Matrix::gemmAcc(a.shardAt(i, kidx),
                                    b.shardAt(kidx, j), c.shardAt(i, j));
                }
            }
        }
    }
    return c;
}

DistMatrix
funcWangOS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcWangOS");
    const MeshShape mesh = a.mesh();
    DistMatrix c(mesh, a.rows(), b.cols());
    const std::int64_t kc = a.shardCols();

    // Blocking direction: full AG_row of B per column.
    std::vector<Matrix> b_full(static_cast<size_t>(mesh.cols));
    for (int j = 0; j < mesh.cols; ++j) {
        std::vector<Matrix> parts;
        for (int i = 0; i < mesh.rows; ++i)
            parts.push_back(b.shardAt(i, j));
        b_full[static_cast<size_t>(j)] = Matrix::vcat(parts);
    }
    // Overlapped direction: A rotates through the row ring; each step
    // multiplies the currently-held shard with the matching K rows.
    for (int t = 0; t < mesh.cols; ++t) {
        for (int i = 0; i < mesh.rows; ++i)
            for (int j = 0; j < mesh.cols; ++j) {
                const int src = (j + t) % mesh.cols;
                Matrix b_rows = b_full[static_cast<size_t>(j)].rowBlock(
                    src * kc, kc);
                Matrix::gemmAcc(a.shardAt(i, src), b_rows,
                                c.shardAt(i, j));
            }
    }
    return c;
}

DistMatrix
funcWangLS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcWangLS");
    const MeshShape mesh = a.mesh();
    const std::int64_t n = b.rows();
    DistMatrix c(mesh, a.rows(), n);
    for (int i = 0; i < mesh.rows; ++i) {
        // Blocking direction: full AG_row of B per column (as in the
        // timed executor's non-overlapped collective).
        // Overlapped direction: the per-row ReduceScatter of the
        // partial C', run through the step-accurate ring RdS.
        std::vector<Matrix> partials;
        for (int j = 0; j < mesh.cols; ++j) {
            std::vector<Matrix> bcol;
            for (int i2 = 0; i2 < mesh.rows; ++i2)
                bcol.push_back(b.shardAt(i2, j));
            Matrix b_full = Matrix::vcat(bcol); // N x K/Pc
            Matrix bt = b_full.transpose();
            // C' arranged as Pc stacked column-chunks so the ring RdS
            // (which scatters row blocks) applies: transpose chunks.
            Matrix cp = Matrix::gemm(a.shardAt(i, j), bt); // M/Pr x N
            partials.push_back(cp.transpose()); // N x M/Pr
        }
        std::vector<Matrix> reduced =
            ringReduceScatterFunctional(partials);
        for (int j = 0; j < mesh.cols; ++j)
            c.shardAt(i, j) =
                reduced[static_cast<size_t>(j)].transpose();
    }
    return c;
}

DistMatrix
funcWangRS(const DistMatrix &a, const DistMatrix &b)
{
    checkSameMesh(a, b, "funcWangRS");
    const MeshShape mesh = a.mesh();
    const std::int64_t m = a.cols();
    DistMatrix c(mesh, m, b.cols());
    for (int j = 0; j < mesh.cols; ++j) {
        std::vector<Matrix> partials;
        for (int i = 0; i < mesh.rows; ++i) {
            std::vector<Matrix> arow;
            for (int j2 = 0; j2 < mesh.cols; ++j2)
                arow.push_back(a.shardAt(i, j2));
            Matrix a_full = Matrix::hcat(arow); // K/Pr x M
            Matrix at = a_full.transpose();
            partials.push_back(
                Matrix::gemm(at, b.shardAt(i, j))); // M x N/Pc
        }
        std::vector<Matrix> reduced =
            ringReduceScatterFunctional(partials);
        for (int i = 0; i < mesh.rows; ++i)
            c.shardAt(i, j) = reduced[static_cast<size_t>(i)];
    }
    return c;
}

// --------------------------------------------------------------------
// 1D baselines
// --------------------------------------------------------------------

std::vector<Matrix>
func1DTP(const Matrix &x, const Matrix &w, int chips)
{
    if (x.rows() % chips != 0 || w.cols() % chips != 0)
        panic("func1DTP: dimensions not divisible by %d chips", chips);
    // X sharded by rows; AG makes it whole; W sharded by columns.
    std::vector<Matrix> x_shards;
    for (int c = 0; c < chips; ++c)
        x_shards.push_back(
            x.rowBlock(c * (x.rows() / chips), x.rows() / chips));
    Matrix x_full = Matrix::vcat(x_shards); // the AllGather
    std::vector<Matrix> y_shards;
    const std::int64_t nc = w.cols() / chips;
    for (int c = 0; c < chips; ++c)
        y_shards.push_back(Matrix::gemm(x_full, w.colBlock(c * nc, nc)));
    return y_shards;
}

std::vector<Matrix>
funcFsdp(const Matrix &x, const Matrix &w, int chips)
{
    if (x.rows() % chips != 0 || w.rows() % chips != 0)
        panic("funcFsdp: dimensions not divisible by %d chips", chips);
    // W sharded by rows; AG makes it whole; X stays data-sharded.
    std::vector<Matrix> w_shards;
    for (int c = 0; c < chips; ++c)
        w_shards.push_back(
            w.rowBlock(c * (w.rows() / chips), w.rows() / chips));
    Matrix w_full = Matrix::vcat(w_shards); // the AllGather
    std::vector<Matrix> y_shards;
    const std::int64_t mr = x.rows() / chips;
    for (int c = 0; c < chips; ++c)
        y_shards.push_back(Matrix::gemm(x.rowBlock(c * mr, mr), w_full));
    return y_shards;
}

} // namespace meshslice
