#include "gemm/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace meshslice {

Matrix::Matrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), 0.0f)
{
    if (rows < 0 || cols < 0)
        panic("Matrix: negative dimensions %lld x %lld",
              static_cast<long long>(rows), static_cast<long long>(cols));
}

Matrix
Matrix::random(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Matrix m(rows, cols);
    // SplitMix64: deterministic across platforms.
    std::uint64_t state = seed;
    for (auto &v : m.data_) {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        v = static_cast<float>(static_cast<double>(z >> 11) /
                                   9007199254740992.0 * 2.0 -
                               1.0);
    }
    return m;
}

Matrix
Matrix::identity(std::int64_t n)
{
    Matrix m(n, n);
    for (std::int64_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0f;
    return m;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::int64_t r = 0; r < rows_; ++r)
        for (std::int64_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::rowBlock(std::int64_t start, std::int64_t count) const
{
    if (start < 0 || start + count > rows_)
        panic("Matrix::rowBlock out of range");
    Matrix b(count, cols_);
    std::copy_n(data_.begin() + static_cast<size_t>(start * cols_),
                static_cast<size_t>(count * cols_), b.data_.begin());
    return b;
}

Matrix
Matrix::colBlock(std::int64_t start, std::int64_t count) const
{
    if (start < 0 || start + count > cols_)
        panic("Matrix::colBlock out of range");
    Matrix b(rows_, count);
    for (std::int64_t r = 0; r < rows_; ++r)
        std::copy_n(data_.begin() +
                        static_cast<size_t>(r * cols_ + start),
                    static_cast<size_t>(count),
                    b.data_.begin() + static_cast<size_t>(r * count));
    return b;
}

Matrix
Matrix::hcat(const std::vector<Matrix> &parts)
{
    if (parts.empty())
        panic("Matrix::hcat: no parts");
    std::int64_t cols = 0;
    for (const Matrix &p : parts) {
        if (p.rows() != parts.front().rows())
            panic("Matrix::hcat: row mismatch");
        cols += p.cols();
    }
    Matrix out(parts.front().rows(), cols);
    std::int64_t offset = 0;
    for (const Matrix &p : parts) {
        for (std::int64_t r = 0; r < p.rows(); ++r)
            std::copy_n(p.data_.begin() +
                            static_cast<size_t>(r * p.cols()),
                        static_cast<size_t>(p.cols()),
                        out.data_.begin() +
                            static_cast<size_t>(r * cols + offset));
        offset += p.cols();
    }
    return out;
}

Matrix
Matrix::vcat(const std::vector<Matrix> &parts)
{
    if (parts.empty())
        panic("Matrix::vcat: no parts");
    std::int64_t rows = 0;
    for (const Matrix &p : parts) {
        if (p.cols() != parts.front().cols())
            panic("Matrix::vcat: column mismatch");
        rows += p.rows();
    }
    Matrix out(rows, parts.front().cols());
    auto it = out.data_.begin();
    for (const Matrix &p : parts)
        it = std::copy(p.data_.begin(), p.data_.end(), it);
    return out;
}

void
Matrix::add(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix::add: shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix::maxAbsDiff: shape mismatch (%lldx%lld vs %lldx%lld)",
              static_cast<long long>(rows_), static_cast<long long>(cols_),
              static_cast<long long>(other.rows_),
              static_cast<long long>(other.cols_));
    double worst = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        worst = std::max(
            worst, static_cast<double>(std::fabs(data_[i] - other.data_[i])));
    return worst;
}

bool
Matrix::allClose(const Matrix &other, double tol) const
{
    return maxAbsDiff(other) <= tol;
}

void
Matrix::gemmAcc(const Matrix &a, const Matrix &b, Matrix &c)
{
    if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols())
        panic("Matrix::gemmAcc: shape mismatch");
    const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t p = 0; p < k; ++p) {
            const float av = a.at(i, p);
            if (av == 0.0f)
                continue;
            const float *brow = b.data() + p * n;
            float *crow = c.data() + i * n;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

Matrix
Matrix::gemm(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    gemmAcc(a, b, c);
    return c;
}

} // namespace meshslice
