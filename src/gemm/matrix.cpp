#include "gemm/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"

namespace meshslice {

Matrix::Matrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows * cols), 0.0f)
{
    if (rows < 0 || cols < 0)
        panic("Matrix: negative dimensions %lld x %lld",
              static_cast<long long>(rows), static_cast<long long>(cols));
}

Matrix
Matrix::random(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Matrix m(rows, cols);
    // SplitMix64: deterministic across platforms.
    std::uint64_t state = seed;
    for (auto &v : m.data_) {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        v = static_cast<float>(static_cast<double>(z >> 11) /
                                   9007199254740992.0 * 2.0 -
                               1.0);
    }
    return m;
}

Matrix
Matrix::identity(std::int64_t n)
{
    Matrix m(n, n);
    for (std::int64_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0f;
    return m;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::int64_t r = 0; r < rows_; ++r)
        for (std::int64_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::rowBlock(std::int64_t start, std::int64_t count) const
{
    if (start < 0 || start + count > rows_)
        panic("Matrix::rowBlock out of range");
    Matrix b(count, cols_);
    std::copy_n(data_.begin() + static_cast<size_t>(start * cols_),
                static_cast<size_t>(count * cols_), b.data_.begin());
    return b;
}

Matrix
Matrix::colBlock(std::int64_t start, std::int64_t count) const
{
    if (start < 0 || start + count > cols_)
        panic("Matrix::colBlock out of range");
    Matrix b(rows_, count);
    for (std::int64_t r = 0; r < rows_; ++r)
        std::copy_n(data_.begin() +
                        static_cast<size_t>(r * cols_ + start),
                    static_cast<size_t>(count),
                    b.data_.begin() + static_cast<size_t>(r * count));
    return b;
}

Matrix
Matrix::hcat(const std::vector<Matrix> &parts)
{
    if (parts.empty())
        panic("Matrix::hcat: no parts");
    std::int64_t cols = 0;
    for (const Matrix &p : parts) {
        if (p.rows() != parts.front().rows())
            panic("Matrix::hcat: row mismatch");
        cols += p.cols();
    }
    Matrix out(parts.front().rows(), cols);
    std::int64_t offset = 0;
    for (const Matrix &p : parts) {
        for (std::int64_t r = 0; r < p.rows(); ++r)
            std::copy_n(p.data_.begin() +
                            static_cast<size_t>(r * p.cols()),
                        static_cast<size_t>(p.cols()),
                        out.data_.begin() +
                            static_cast<size_t>(r * cols + offset));
        offset += p.cols();
    }
    return out;
}

Matrix
Matrix::vcat(const std::vector<Matrix> &parts)
{
    if (parts.empty())
        panic("Matrix::vcat: no parts");
    std::int64_t rows = 0;
    for (const Matrix &p : parts) {
        if (p.cols() != parts.front().cols())
            panic("Matrix::vcat: column mismatch");
        rows += p.rows();
    }
    Matrix out(rows, parts.front().cols());
    auto it = out.data_.begin();
    for (const Matrix &p : parts)
        it = std::copy(p.data_.begin(), p.data_.end(), it);
    return out;
}

void
Matrix::add(const Matrix &other)
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix::add: shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        panic("Matrix::maxAbsDiff: shape mismatch (%lldx%lld vs %lldx%lld)",
              static_cast<long long>(rows_), static_cast<long long>(cols_),
              static_cast<long long>(other.rows_),
              static_cast<long long>(other.cols_));
    double worst = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        worst = std::max(
            worst, static_cast<double>(std::fabs(data_[i] - other.data_[i])));
    return worst;
}

bool
Matrix::allClose(const Matrix &other, double tol) const
{
    return maxAbsDiff(other) <= tol;
}

namespace {

/** Rows of A/C per panel: one panel of C plus the matching A panel
 *  stays cache-resident while a K-panel of B streams through. */
constexpr std::int64_t kRowTile = 64;

/** Contraction extent per panel (~64 KiB of B rows at n=64). */
constexpr std::int64_t kColTileK = 256;

/**
 * One (kRowTile x kColTileK) panel update: C[i0:i1, :] +=
 * A[i0:i1, k0:k1] * B[k0:k1, :]. Branch-free, with the contraction
 * unrolled 4x so each C element stays in a register across four
 * multiply-adds (4x less C traffic than the naive loop). The four
 * adds are issued as *separate* statements in increasing-p order and
 * the k-panels are visited in order, so every output element
 * accumulates its terms in exactly the naive triple loop's order —
 * results are bit-identical, not merely close.
 */
void
gemmPanel(const float *__restrict a, const float *__restrict b,
          float *__restrict c, std::int64_t i0, std::int64_t i1,
          std::int64_t k0, std::int64_t k1, std::int64_t k,
          std::int64_t n)
{
    for (std::int64_t i = i0; i < i1; ++i) {
        const float *arow = a + i * k;
        float *__restrict crow = c + i * n;
        std::int64_t p = k0;
        for (; p + 4 <= k1; p += 4) {
            const float a0 = arow[p], a1 = arow[p + 1];
            const float a2 = arow[p + 2], a3 = arow[p + 3];
            const float *b0 = b + p * n, *b1 = b0 + n;
            const float *b2 = b1 + n, *b3 = b2 + n;
            for (std::int64_t j = 0; j < n; ++j) {
                float v = crow[j];
                v += a0 * b0[j];
                v += a1 * b1[j];
                v += a2 * b2[j];
                v += a3 * b3[j];
                crow[j] = v;
            }
        }
        for (; p < k1; ++p) {
            const float av = arow[p];
            const float *brow = b + p * n;
            for (std::int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

} // namespace

void
Matrix::gemmAcc(const Matrix &a, const Matrix &b, Matrix &c)
{
    if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols())
        panic("Matrix::gemmAcc: shape mismatch");
    const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
    if (m == 0 || k == 0 || n == 0)
        return;
    // Cache-blocked (i/k tiled) kernel, parallelized over row panels:
    // each pool task owns disjoint C rows, so there are no write
    // races and the result is independent of the thread count.
    const std::int64_t panels = ceilDiv(m, kRowTile);
    const auto run_panels = [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t panel = begin; panel < end; ++panel) {
            const std::int64_t i0 = panel * kRowTile;
            const std::int64_t i1 = std::min(i0 + kRowTile, m);
            for (std::int64_t k0 = 0; k0 < k; k0 += kColTileK)
                gemmPanel(a.data(), b.data(), c.data(), i0, i1, k0,
                          std::min(k0 + kColTileK, k), k, n);
        }
    };
    // Pool dispatch costs a mutex round-trip plus a std::function call
    // per chunk — pure overhead when the pool has a single executing
    // thread or the matrix is a panel or two tall. Run those inline.
    if (ThreadPool::global().threads() == 1 || panels <= 2) {
        run_panels(0, panels);
        return;
    }
    parallelFor(panels, 1, run_panels);
}

Matrix
Matrix::gemm(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    gemmAcc(a, b, c);
    return c;
}

} // namespace meshslice
