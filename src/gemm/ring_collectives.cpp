#include "gemm/ring_collectives.hpp"

#include "util/logging.hpp"

namespace meshslice {

namespace {

void
checkUniform(const std::vector<Matrix> &mats, const char *what)
{
    if (mats.empty())
        panic("%s: empty participant list", what);
    for (const Matrix &m : mats)
        if (m.rows() != mats.front().rows() ||
            m.cols() != mats.front().cols())
            panic("%s: participants have mismatched shapes", what);
}

} // namespace

std::vector<Matrix>
ringAllGatherFunctional(const std::vector<Matrix> &shards,
                        RingStepTrace *steps)
{
    checkUniform(shards, "ringAllGatherFunctional");
    const int p = static_cast<int>(shards.size());
    if (steps)
        steps->clear();

    // slots[i][j] = shard j as currently known by chip i.
    std::vector<std::vector<Matrix>> slots(
        static_cast<size_t>(p), std::vector<Matrix>(static_cast<size_t>(p)));
    for (int i = 0; i < p; ++i)
        slots[static_cast<size_t>(i)][static_cast<size_t>(i)] = shards[i];

    // P-1 synchronized steps; in step t chip i forwards the shard it
    // received t steps ago (its own at t=0) to its +1 neighbour.
    for (int t = 0; t < p - 1; ++t) {
        if (steps)
            steps->push_back(shards.front().rows() *
                             shards.front().cols());
        std::vector<std::pair<int, Matrix>> in_flight(
            static_cast<size_t>(p));
        for (int i = 0; i < p; ++i) {
            const int idx = (i - t + p) % p;
            in_flight[static_cast<size_t>((i + 1) % p)] = {
                idx, slots[static_cast<size_t>(i)][static_cast<size_t>(idx)]};
        }
        for (int i = 0; i < p; ++i) {
            auto &[idx, shard] = in_flight[static_cast<size_t>(i)];
            slots[static_cast<size_t>(i)][static_cast<size_t>(idx)] =
                std::move(shard);
        }
    }

    std::vector<Matrix> out;
    out.reserve(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i)
        out.push_back(Matrix::vcat(slots[static_cast<size_t>(i)]));
    return out;
}

std::vector<Matrix>
ringReduceScatterFunctional(const std::vector<Matrix> &partials,
                            RingStepTrace *steps)
{
    checkUniform(partials, "ringReduceScatterFunctional");
    const int p = static_cast<int>(partials.size());
    if (partials.front().rows() % p != 0)
        panic("ringReduceScatterFunctional: rows %% P != 0");
    const std::int64_t block = partials.front().rows() / p;
    if (steps)
        steps->clear();

    // chunks[i][c] = chip i's running partial sum of block c.
    std::vector<std::vector<Matrix>> chunks(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i)
        for (int c = 0; c < p; ++c)
            chunks[static_cast<size_t>(i)].push_back(
                partials[static_cast<size_t>(i)].rowBlock(c * block,
                                                          block));

    // P-1 steps: chip i sends its running sum of chunk (i - t) and the
    // receiver accumulates it into its own copy.
    for (int t = 0; t < p - 1; ++t) {
        if (steps)
            steps->push_back(block * partials.front().cols());
        std::vector<std::pair<int, Matrix>> in_flight(
            static_cast<size_t>(p));
        for (int i = 0; i < p; ++i) {
            const int idx = (i - t + p) % p;
            in_flight[static_cast<size_t>((i + 1) % p)] = {
                idx,
                chunks[static_cast<size_t>(i)][static_cast<size_t>(idx)]};
        }
        for (int i = 0; i < p; ++i) {
            auto &[idx, chunk] = in_flight[static_cast<size_t>(i)];
            chunks[static_cast<size_t>(i)][static_cast<size_t>(idx)].add(
                chunk);
        }
    }

    // After the loop, chip i holds the fully reduced chunk (i+1) % P;
    // relabel so result[c] is chunk c.
    std::vector<Matrix> out(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i) {
        const int c = (i + 1) % p;
        out[static_cast<size_t>(c)] =
            std::move(chunks[static_cast<size_t>(i)][static_cast<size_t>(c)]);
    }
    return out;
}

std::vector<Matrix>
ringBroadcastFunctional(const std::vector<Matrix> &payloads, int root,
                        int packets)
{
    const int p = static_cast<int>(payloads.size());
    if (root < 0 || root >= p)
        panic("ringBroadcastFunctional: bad root %d", root);
    const Matrix &payload = payloads[static_cast<size_t>(root)];
    if (packets <= 0 || payload.rows() % packets != 0)
        panic("ringBroadcastFunctional: packets must divide rows");
    const std::int64_t panel = payload.rows() / packets;

    // received[i][q] = packet q at chip i (hop distance i from root).
    std::vector<std::vector<Matrix>> received(
        static_cast<size_t>(p),
        std::vector<Matrix>(static_cast<size_t>(packets)));
    for (int q = 0; q < packets; ++q)
        received[static_cast<size_t>(root)][static_cast<size_t>(q)] =
            payload.rowBlock(q * panel, panel);

    // Pipeline stages: packet q crosses hop h at stage q + h.
    const int stages = (p - 1) + packets - 1;
    for (int stage = 0; stage <= stages; ++stage) {
        // Walk hops from the far end so a packet moves one hop/stage.
        for (int h = std::min(p - 2, stage); h >= 0; --h) {
            const int q = stage - h;
            if (q < 0 || q >= packets)
                continue;
            const int src = (root + h) % p;
            const int dst = (root + h + 1) % p;
            received[static_cast<size_t>(dst)][static_cast<size_t>(q)] =
                received[static_cast<size_t>(src)][static_cast<size_t>(q)];
        }
    }

    std::vector<Matrix> out;
    out.reserve(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i)
        out.push_back(Matrix::vcat(received[static_cast<size_t>(i)]));
    return out;
}

Matrix
ringReduceFunctional(const std::vector<Matrix> &partials, int root,
                     int packets)
{
    checkUniform(partials, "ringReduceFunctional");
    const int p = static_cast<int>(partials.size());
    if (root < 0 || root >= p)
        panic("ringReduceFunctional: bad root %d", root);
    if (packets <= 0 || partials.front().rows() % packets != 0)
        panic("ringReduceFunctional: packets must divide rows");
    const std::int64_t panel = partials.front().rows() / packets;

    // Accumulate panel-wise down the chain (root+P-1) -> ... -> root,
    // mirroring the pipelined reduce's hop structure.
    Matrix result(partials.front().rows(), partials.front().cols());
    for (int q = 0; q < packets; ++q) {
        Matrix acc = partials[static_cast<size_t>((root + p - 1) % p)]
                         .rowBlock(q * panel, panel);
        for (int h = p - 2; h >= 0; --h) {
            Matrix local = partials[static_cast<size_t>((root + h) % p)]
                               .rowBlock(q * panel, panel);
            acc.add(local);
        }
        for (std::int64_t r = 0; r < panel; ++r)
            for (std::int64_t c = 0; c < acc.cols(); ++c)
                result.at(q * panel + r, c) = acc.at(r, c);
    }
    return result;
}

std::vector<Matrix>
ringAllReduceFunctional(const std::vector<Matrix> &partials)
{
    // The classic composition used for DP gradients: ReduceScatter
    // produces per-chip reduced blocks, AllGather recombines them.
    std::vector<Matrix> reduced = ringReduceScatterFunctional(partials);
    return ringAllGatherFunctional(reduced);
}

std::vector<Matrix>
ringShiftFunctional(const std::vector<Matrix> &shards, bool forward)
{
    checkUniform(shards, "ringShiftFunctional");
    const int p = static_cast<int>(shards.size());
    std::vector<Matrix> out(static_cast<size_t>(p));
    for (int i = 0; i < p; ++i) {
        const int src = forward ? (i + 1) % p : (i - 1 + p) % p;
        out[static_cast<size_t>(i)] = shards[static_cast<size_t>(src)];
    }
    return out;
}

} // namespace meshslice
