/**
 * @file
 * Functional (data-carrying) implementations of every distributed GeMM
 * algorithm in the paper, used to verify numerical correctness — in
 * particular that MeshSlice's interleaved blocked slicing (Sec 3.1) is
 * a correct partition of the K-dimension reduction, which the paper
 * stresses is the non-trivial part ("most arbitrary slicings result in
 * an incorrect computation").
 *
 * Dataflow semantics (Fig 1/2):
 *  - OS: C = A * B        A: M x K, B: K x N        (C stationary)
 *  - LS: C = A * B^T      A: M x K (stationary), B: N x K
 *  - RS: C = A^T * B      A: K x M, B: K x N (stationary)
 *
 * All functions take matrices already sharded on the same mesh and
 * return the sharded result; `gather()` + a dense reference GeMM checks
 * equality.
 */
#ifndef MESHSLICE_GEMM_FUNCTIONAL_GEMM_HPP_
#define MESHSLICE_GEMM_FUNCTIONAL_GEMM_HPP_

#include "gemm/dist_matrix.hpp"

namespace meshslice {

/** @name MeshSlice (Fig 5), S-way sliced with block size B. @{ */
DistMatrix funcMeshSliceOS(const DistMatrix &a, const DistMatrix &b,
                           int s_count, int block);
DistMatrix funcMeshSliceLS(const DistMatrix &a, const DistMatrix &b,
                           int s_count, int block);
DistMatrix funcMeshSliceRS(const DistMatrix &a, const DistMatrix &b,
                           int s_count, int block);
/** @} */

/**
 * OneSided sliced GeMM (Brock & Golin): every tile independently pulls
 * the slices it needs from its row/column peers (no collectives, no
 * inter-tile synchronization) and accumulates into its stationary C.
 * Same interleaved blocked slicing as MeshSlice.
 */
DistMatrix funcOneSidedOS(const DistMatrix &a, const DistMatrix &b,
                          int s_count, int block);

/** @name Collective 2D GeMM (Fig 2b) — one AG/RdS per direction. @{ */
DistMatrix funcCollectiveOS(const DistMatrix &a, const DistMatrix &b);
DistMatrix funcCollectiveLS(const DistMatrix &a, const DistMatrix &b);
DistMatrix funcCollectiveRS(const DistMatrix &a, const DistMatrix &b);
/** @} */

/** @name SUMMA (Fig 2a) with P = lcm(Pr, Pc) iterations. @{ */
DistMatrix funcSummaOS(const DistMatrix &a, const DistMatrix &b);
DistMatrix funcSummaLS(const DistMatrix &a, const DistMatrix &b);
DistMatrix funcSummaRS(const DistMatrix &a, const DistMatrix &b);
/** @} */

/** Cannon's algorithm (square mesh, OS semantics, skew + rotate). */
DistMatrix funcCannon(const DistMatrix &a, const DistMatrix &b);

/**
 * 2.5D GeMM (Solomonik-Demmel, Sec 7) on a P x P x c logical torus:
 * the P x P sharded inputs are replicated over c depth layers, layer l
 * runs P/c Cannon iterations starting from rotation offset l * P/c,
 * and the per-layer partial outputs are reduced over depth. Requires
 * c to divide P. Returns the P x P sharded product.
 */
DistMatrix func25DGemm(const DistMatrix &a, const DistMatrix &b,
                       int depth);

/**
 * Wang et al.'s algorithm (OS semantics): B's direction uses a full
 * collective AllGather; A's direction is decomposed into SendRecv
 * rotations overlapped with partial GeMMs.
 */
DistMatrix funcWangOS(const DistMatrix &a, const DistMatrix &b);

/**
 * Wang for the LS dataflow (C = A B^T): B's AllGather is the blocking
 * collective; C's ReduceScatter is decomposed into the step-accurate
 * ring reduce-scatter (per-row rings).
 */
DistMatrix funcWangLS(const DistMatrix &a, const DistMatrix &b);

/** Wang for the RS dataflow (C = A^T B), symmetric to funcWangLS. */
DistMatrix funcWangRS(const DistMatrix &a, const DistMatrix &b);

/**
 * 1D TP (sequence-parallel style): X sharded by rows over the ring, W
 * by columns; X is all-gathered, every chip computes its Y column
 * shard. Returns the Y column shards.
 */
std::vector<Matrix> func1DTP(const Matrix &x, const Matrix &w, int chips);

/**
 * FSDP: X sharded by rows (the data), W sharded by rows over the ring
 * and all-gathered before use; every chip computes its Y row shard.
 */
std::vector<Matrix> funcFsdp(const Matrix &x, const Matrix &w, int chips);

} // namespace meshslice

#endif // MESHSLICE_GEMM_FUNCTIONAL_GEMM_HPP_
