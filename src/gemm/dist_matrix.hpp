/**
 * @file
 * A matrix sharded over a 2D mesh of chips (Sec 2.3.1): the matrix is
 * partitioned in both dimensions and shard (i, j) lives on chip (i, j).
 * This is the functional counterpart of the timing simulator's shards —
 * it holds real data so algorithm implementations can be verified
 * against a dense reference GeMM.
 */
#ifndef MESHSLICE_GEMM_DIST_MATRIX_HPP_
#define MESHSLICE_GEMM_DIST_MATRIX_HPP_

#include <vector>

#include "gemm/matrix.hpp"

namespace meshslice {

/** Shape of a chip mesh. */
struct MeshShape
{
    int rows = 1;
    int cols = 1;

    int chips() const { return rows * cols; }
    bool operator==(const MeshShape &o) const = default;
};

/** A (rows x cols) matrix split into mesh.rows x mesh.cols shards. */
class DistMatrix
{
  public:
    DistMatrix() = default;

    /** Zero-initialized distributed matrix of global shape. */
    DistMatrix(MeshShape mesh, std::int64_t rows, std::int64_t cols);

    /** Shard a dense matrix (dimensions must divide evenly). */
    static DistMatrix scatter(const Matrix &full, MeshShape mesh);

    /** Reassemble the dense matrix from the shards. */
    Matrix gather() const;

    MeshShape mesh() const { return mesh_; }
    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t shardRows() const { return rows_ / mesh_.rows; }
    std::int64_t shardCols() const { return cols_ / mesh_.cols; }

    Matrix &shardAt(int r, int c);
    const Matrix &shardAt(int r, int c) const;

  private:
    MeshShape mesh_;
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<Matrix> shards_;
};

} // namespace meshslice

#endif // MESHSLICE_GEMM_DIST_MATRIX_HPP_
