#include "gemm/ops.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace meshslice {

namespace {

constexpr double kGeluC = 0.7978845608028654; // sqrt(2/pi)

double
geluScalar(double x)
{
    return 0.5 * x * (1.0 + std::tanh(kGeluC * (x + 0.044715 * x * x * x)));
}

double
geluGradScalar(double x)
{
    const double u = kGeluC * (x + 0.044715 * x * x * x);
    const double t = std::tanh(u);
    const double du = kGeluC * (1.0 + 3.0 * 0.044715 * x * x);
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du;
}

} // namespace

Matrix
geluForward(const Matrix &x)
{
    Matrix y(x.rows(), x.cols());
    for (std::int64_t r = 0; r < x.rows(); ++r)
        for (std::int64_t c = 0; c < x.cols(); ++c)
            y.at(r, c) = static_cast<float>(geluScalar(x.at(r, c)));
    return y;
}

Matrix
geluBackward(const Matrix &x, const Matrix &dy)
{
    if (x.rows() != dy.rows() || x.cols() != dy.cols())
        panic("geluBackward: shape mismatch");
    Matrix dx(x.rows(), x.cols());
    for (std::int64_t r = 0; r < x.rows(); ++r)
        for (std::int64_t c = 0; c < x.cols(); ++c)
            dx.at(r, c) = static_cast<float>(geluGradScalar(x.at(r, c)) *
                                             dy.at(r, c));
    return dx;
}

Matrix
softmaxRows(const Matrix &x)
{
    Matrix p(x.rows(), x.cols());
    for (std::int64_t r = 0; r < x.rows(); ++r) {
        float max = x.at(r, 0);
        for (std::int64_t c = 1; c < x.cols(); ++c)
            max = std::max(max, x.at(r, c));
        double denom = 0.0;
        for (std::int64_t c = 0; c < x.cols(); ++c)
            denom += std::exp(static_cast<double>(x.at(r, c) - max));
        for (std::int64_t c = 0; c < x.cols(); ++c)
            p.at(r, c) = static_cast<float>(
                std::exp(static_cast<double>(x.at(r, c) - max)) / denom);
    }
    return p;
}

Matrix
softmaxRowsBackward(const Matrix &p, const Matrix &dp)
{
    if (p.rows() != dp.rows() || p.cols() != dp.cols())
        panic("softmaxRowsBackward: shape mismatch");
    Matrix dx(p.rows(), p.cols());
    for (std::int64_t r = 0; r < p.rows(); ++r) {
        double dot = 0.0;
        for (std::int64_t c = 0; c < p.cols(); ++c)
            dot += static_cast<double>(p.at(r, c)) * dp.at(r, c);
        for (std::int64_t c = 0; c < p.cols(); ++c)
            dx.at(r, c) = static_cast<float>(
                p.at(r, c) * (dp.at(r, c) - dot));
    }
    return dx;
}

RowStats
rowStatsFromSums(const std::vector<double> &sum,
                 const std::vector<double> &sum_sq,
                 std::int64_t total_cols, double eps)
{
    RowStats stats;
    stats.mean.resize(sum.size());
    stats.invStd.resize(sum.size());
    const double n = static_cast<double>(total_cols);
    for (size_t r = 0; r < sum.size(); ++r) {
        const double mean = sum[r] / n;
        const double var = sum_sq[r] / n - mean * mean;
        stats.mean[r] = static_cast<float>(mean);
        stats.invStd[r] =
            static_cast<float>(1.0 / std::sqrt(std::max(var, 0.0) + eps));
    }
    return stats;
}

void
accumulateRowSums(const Matrix &x, std::vector<double> &sum,
                  std::vector<double> &sum_sq)
{
    sum.resize(static_cast<size_t>(x.rows()), 0.0);
    sum_sq.resize(static_cast<size_t>(x.rows()), 0.0);
    for (std::int64_t r = 0; r < x.rows(); ++r) {
        for (std::int64_t c = 0; c < x.cols(); ++c) {
            const double v = x.at(r, c);
            sum[static_cast<size_t>(r)] += v;
            sum_sq[static_cast<size_t>(r)] += v * v;
        }
    }
}

Matrix
layerNormApply(const Matrix &x, const RowStats &stats)
{
    Matrix y(x.rows(), x.cols());
    for (std::int64_t r = 0; r < x.rows(); ++r)
        for (std::int64_t c = 0; c < x.cols(); ++c)
            y.at(r, c) = (x.at(r, c) - stats.mean[static_cast<size_t>(r)]) *
                         stats.invStd[static_cast<size_t>(r)];
    return y;
}

Matrix
layerNormBackward(const Matrix &x, const RowStats &stats, const Matrix &dy,
                  const std::vector<double> &r1,
                  const std::vector<double> &r2, std::int64_t total_cols)
{
    Matrix dx(x.rows(), x.cols());
    const double n = static_cast<double>(total_cols);
    for (std::int64_t r = 0; r < x.rows(); ++r) {
        const double mean = stats.mean[static_cast<size_t>(r)];
        const double inv = stats.invStd[static_cast<size_t>(r)];
        for (std::int64_t c = 0; c < x.cols(); ++c) {
            const double xhat = (x.at(r, c) - mean) * inv;
            dx.at(r, c) = static_cast<float>(
                inv * (dy.at(r, c) - r1[static_cast<size_t>(r)] / n -
                       xhat * r2[static_cast<size_t>(r)] / n));
        }
    }
    return dx;
}

Matrix
layerNormForward(const Matrix &x, RowStats *stats_out)
{
    std::vector<double> sum, sum_sq;
    accumulateRowSums(x, sum, sum_sq);
    RowStats stats = rowStatsFromSums(sum, sum_sq, x.cols());
    Matrix y = layerNormApply(x, stats);
    if (stats_out)
        *stats_out = std::move(stats);
    return y;
}

Matrix
layerNormBackwardFull(const Matrix &x, const RowStats &stats,
                      const Matrix &dy)
{
    std::vector<double> r1(static_cast<size_t>(x.rows()), 0.0);
    std::vector<double> r2(static_cast<size_t>(x.rows()), 0.0);
    for (std::int64_t r = 0; r < x.rows(); ++r) {
        const double mean = stats.mean[static_cast<size_t>(r)];
        const double inv = stats.invStd[static_cast<size_t>(r)];
        for (std::int64_t c = 0; c < x.cols(); ++c) {
            const double xhat = (x.at(r, c) - mean) * inv;
            r1[static_cast<size_t>(r)] += dy.at(r, c);
            r2[static_cast<size_t>(r)] += dy.at(r, c) * xhat;
        }
    }
    return layerNormBackward(x, stats, dy, r1, r2, x.cols());
}

} // namespace meshslice
