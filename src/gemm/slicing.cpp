#include "gemm/slicing.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace meshslice {

namespace {

void
checkArgs(std::int64_t extent, int s_count, int s, int block,
          const char *what)
{
    if (s_count <= 0 || block <= 0)
        panic("%s: S and block must be positive", what);
    if (s < 0 || s >= s_count)
        panic("%s: sub-shard index %d out of [0, %d)", what, s, s_count);
    if (extent % (static_cast<std::int64_t>(s_count) * block) != 0)
        panic("%s: extent %lld not divisible by S*B = %d*%d", what,
              static_cast<long long>(extent), s_count, block);
}

} // namespace

Matrix
sliceCols(const Matrix &x, int s_count, int s, int block)
{
    checkArgs(x.cols(), s_count, s, block, "sliceCols");
    const std::int64_t groups = x.cols() / (s_count * block);
    Matrix out(x.rows(), x.cols() / s_count);
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int64_t src = (g * s_count + s) * block;
        const std::int64_t dst = g * block;
        for (std::int64_t r = 0; r < x.rows(); ++r)
            for (std::int64_t b = 0; b < block; ++b)
                out.at(r, dst + b) = x.at(r, src + b);
    }
    return out;
}

Matrix
sliceRows(const Matrix &x, int s_count, int s, int block)
{
    checkArgs(x.rows(), s_count, s, block, "sliceRows");
    const std::int64_t groups = x.rows() / (s_count * block);
    Matrix out(x.rows() / s_count, x.cols());
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int64_t src = (g * s_count + s) * block;
        const std::int64_t dst = g * block;
        for (std::int64_t b = 0; b < block; ++b)
            for (std::int64_t c = 0; c < x.cols(); ++c)
                out.at(dst + b, c) = x.at(src + b, c);
    }
    return out;
}

void
unsliceColsInto(Matrix &x, const Matrix &sub, int s_count, int s, int block)
{
    checkArgs(x.cols(), s_count, s, block, "unsliceColsInto");
    if (sub.rows() != x.rows() || sub.cols() != x.cols() / s_count)
        panic("unsliceColsInto: sub-shard shape mismatch");
    const std::int64_t groups = x.cols() / (s_count * block);
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int64_t dst = (g * s_count + s) * block;
        const std::int64_t src = g * block;
        for (std::int64_t r = 0; r < x.rows(); ++r)
            for (std::int64_t b = 0; b < block; ++b)
                x.at(r, dst + b) = sub.at(r, src + b);
    }
}

void
unsliceRowsInto(Matrix &x, const Matrix &sub, int s_count, int s, int block)
{
    checkArgs(x.rows(), s_count, s, block, "unsliceRowsInto");
    if (sub.cols() != x.cols() || sub.rows() != x.rows() / s_count)
        panic("unsliceRowsInto: sub-shard shape mismatch");
    const std::int64_t groups = x.rows() / (s_count * block);
    for (std::int64_t g = 0; g < groups; ++g) {
        const std::int64_t dst = (g * s_count + s) * block;
        const std::int64_t src = g * block;
        for (std::int64_t b = 0; b < block; ++b)
            for (std::int64_t c = 0; c < x.cols(); ++c)
                x.at(dst + b, c) = sub.at(src + b, c);
    }
}

} // namespace meshslice
