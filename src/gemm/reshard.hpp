/**
 * @file
 * Elastic mesh re-sharding after a fail-stop failure.
 *
 * When a chip dies permanently, the surviving R'xC' mesh (one row or
 * one column smaller) must take over the work of the old RxC mesh:
 * every `DistMatrix` operand is re-partitioned onto the survivor
 * shapes and the blocks that changed owner move over the ICI. This
 * module provides both halves of that story:
 *
 *  - the *functional* re-shard (`reshard`): a bit-exact redistribution
 *    of real shard data, so tests can prove a MeshSlice GeMM on the
 *    survivor mesh still matches the single-chip reference; and
 *  - the *modeled* re-shard (`planReshard` / `reshardTime`): the exact
 *    block-movement traffic (per-move SendRecv bytes, per-chip
 *    ingress/egress) and a first-order time estimate, which the
 *    recovery-aware tuner charges when comparing mesh shapes.
 *
 * Ownership convention matches `DistMatrix`: the global matrix is cut
 * into equal blocks, shard (i, j) lives on the chip at mesh coordinate
 * (i, j). Survivors keep their physical chip ids; only their mesh
 * coordinates are renumbered (row-major, skipping the dead row/col).
 */
#ifndef MESHSLICE_GEMM_RESHARD_HPP_
#define MESHSLICE_GEMM_RESHARD_HPP_

#include <cstdint>
#include <utility>
#include <vector>

#include "gemm/dist_matrix.hpp"
#include "util/units.hpp"

namespace meshslice {

struct ChipConfig;

/**
 * The survivor mesh after exactly one row *or* one column of an RxC
 * mesh is retired (the row/column containing the dead chip — 2D
 * collectives need full rows/columns, so the whole line is drained
 * even though only one chip died; its healthy peers become spares).
 */
struct SurvivorMesh
{
    /** The mesh shape before the failure. */
    MeshShape from;
    /** Index of the retired row, or -1 when a column was retired. */
    int failedRow = -1;
    /** Index of the retired column, or -1 when a row was retired. */
    int failedCol = -1;

    /** Shape of the surviving mesh (one row or column fewer). */
    MeshShape to() const;

    /**
     * Old mesh coordinate of the survivor at new coordinate (p, q):
     * rows/cols renumber past the retired line.
     */
    std::pair<int, int> oldCoord(int p, int q) const;

    /** Old linear chip id (r * from.cols + c) of survivor (p, q). */
    int oldChipAt(int p, int q) const;

    /** Fatal unless exactly one of failedRow/failedCol is in range
     *  and the survivor mesh is non-empty. */
    void validate() const;
};

/** One block movement of a re-shard (modeled SendRecv). */
struct ReshardMove
{
    /** Old linear chip ids. `srcChip` may be in the retired line:
     *  its blocks still hold the state that must reach survivors. */
    int srcChip = -1;
    int dstChip = -1;
    Bytes bytes = 0;
};

/** The complete traffic picture of one re-shard. */
struct ReshardPlan
{
    MeshShape from;
    MeshShape to;
    /** Cross-chip movements, ordered by (dst, src) for determinism. */
    std::vector<ReshardMove> moves;
    /** Sum of `moves[].bytes` (bytes that cross the ICI). */
    Bytes totalBytes = 0;
    /** Bytes whose owner did not change (pure local relabeling). */
    Bytes localBytes = 0;
    /** Heaviest per-chip receive / send totals — what the first-order
     *  time model is limited by. */
    Bytes maxChipIngress = 0;
    Bytes maxChipEgress = 0;
};

/**
 * The survivor meshes reachable after chip @p dead_chip (old linear
 * id) fails on a `from`-shaped mesh: retire its row (when the mesh has
 * at least two rows) and/or retire its column (at least two columns).
 * Ordered retire-row first for determinism; fatal when neither exists
 * (a 1x1 mesh has no survivors) or the chip id is out of range. The
 * elastic re-planner ranks these options by degraded step time plus
 * re-shard cost.
 */
std::vector<SurvivorMesh> survivorOptionsForChip(MeshShape from,
                                                 int dead_chip);

/**
 * Old linear chip id -> new linear chip id under @p sv, with -1 for
 * every chip of the retired line. The elastic runtime uses this to
 * renumber scenario patterns and straggler ids after a shrink.
 */
std::vector<int> oldToNewChipMap(const SurvivorMesh &sv);

/**
 * Exact block-movement plan for re-sharding a global (rows x cols)
 * matrix of @p bytes_per_element-byte elements from `sv.from` onto
 * `sv.to()`. Dimensions must divide evenly by both mesh shapes (the
 * same invariant `DistMatrix::scatter` enforces).
 */
ReshardPlan planReshard(std::int64_t rows, std::int64_t cols,
                        int bytes_per_element, const SurvivorMesh &sv);

/**
 * Functional re-shard: returns @p m redistributed onto the survivor
 * mesh. Pure data movement — every element is copied bit-exactly, so
 * `reshard(m, sv).gather()` equals `m.gather()` exactly.
 */
DistMatrix reshard(const DistMatrix &m, const SurvivorMesh &sv);

/**
 * Continuous (mesh-only) approximation of the moved fraction: the
 * measure of the unit square whose owner changes between the two
 * partitions, times @p total_bytes. Equals `planReshard(...).totalBytes`
 * exactly whenever the dimensions divide both meshes — the discrete
 * plan is the ground truth, this form is what closed-form tuner
 * sweeps use when no matrix is in scope.
 */
double reshardBytesModel(double total_bytes, const SurvivorMesh &sv);

/**
 * First-order re-shard time for @p plan: one launch, then every chip
 * streams its ingress/egress through its 4 torus links in parallel
 * (the bottleneck chip sets the pace), then one barrier.
 */
Time reshardTime(const ChipConfig &cfg, const ReshardPlan &plan);

/**
 * Companion of `reshardBytesModel` for closed-form sweeps: the
 * first-order re-shard time when only the modeled moved-byte total is
 * known. Assumes the moved bytes spread evenly over the survivors'
 * ingress (the balanced approximation of `reshardTime`'s bottleneck).
 */
Time reshardTimeModel(const ChipConfig &cfg, double moved_bytes,
                      int survivor_chips);

/** Aggregate traffic of one chip across a re-shard plan. */
struct ReshardChipTraffic
{
    int chip = -1;
    Bytes ingress = 0; ///< bytes this chip receives
    Bytes egress = 0;  ///< bytes this chip sends
};

/**
 * Per-chip ingress/egress totals of @p plan, ordered by chip id.
 * `max_element` over these reproduces `plan.maxChipIngress/Egress`;
 * the simulated re-shard (`runReshard`) sizes its per-chip NIC
 * resources from this list.
 */
std::vector<ReshardChipTraffic> reshardChipTraffic(const ReshardPlan &plan);

/**
 * Per-chip streaming rate both re-shard time models charge: all four
 * torus links in parallel, derated by the logical-mesh contention
 * factor. Exposed so the simulated re-shard uses the identical NIC
 * capacity as the closed-form `reshardTime`.
 */
Rate reshardChipRate(const ChipConfig &cfg);

/**
 * One block movement of a cross-mesh remap: source mesh coordinate on
 * the producing mesh, destination coordinate on the consuming mesh.
 * `matched` marks position-preserving movements ((i, j) -> (i, j)),
 * which ride the direct boundary link between the two meshes; the rest
 * needs rerouting inside the destination mesh.
 */
struct RemapMove
{
    int srcRow = 0;
    int srcCol = 0;
    int dstRow = 0;
    int dstCol = 0;
    Bytes bytes = 0;
    bool matched = false;
};

/**
 * The complete traffic picture of handing a (rows x cols) tensor from
 * one 2D mesh layout to another — the cross-mesh resharding between
 * adjacent pipeline stages (Zhuang et al.'s inter-stage cost). Unlike
 * `ReshardPlan`, the two meshes are *disjoint chip sets* (stage s and
 * stage s+1), so every byte crosses the boundary; the interesting
 * split is matched (same (i, j) position on both meshes — a pure
 * point-to-point boundary hop) versus moved (owner position changes —
 * extra intra-mesh forwarding on the consumer side).
 */
struct RemapPlan
{
    MeshShape from;
    MeshShape to;
    /** Movements ordered by (dst, src) position for determinism. */
    std::vector<RemapMove> moves;
    Bytes totalBytes = 0;   ///< the whole tensor (matched + moved)
    Bytes matchedBytes = 0; ///< position-preserving boundary traffic
    Bytes movedBytes = 0;   ///< traffic that changes mesh position
    /** Heaviest per-destination-position receive / per-source send. */
    Bytes maxChipIngress = 0;
    Bytes maxChipEgress = 0;
};

/**
 * Exact block-overlap plan for re-laying a global (rows x cols) tensor
 * of @p bytes_per_element-byte elements from a `from`-shaped mesh onto
 * a `to`-shaped one (the same destination-major overlap enumeration as
 * `planReshard`). Dimensions must divide evenly by both shapes. When
 * `from == to` the plan is all-matched: zero remap bytes, which is how
 * layout-aligned adjacent stages get their free boundary.
 */
RemapPlan planRemap(std::int64_t rows, std::int64_t cols,
                    int bytes_per_element, MeshShape from, MeshShape to);

/**
 * Continuous companion of `planRemap` for closed-form sweeps: the
 * moved-byte total (position-changing fraction of @p total_bytes).
 * Equals `planRemap(...).movedBytes` exactly whenever the dimensions
 * divide both meshes — computed on the elementary-interval lattice per
 * axis, like `reshardBytesModel`.
 */
double remapBytesModel(double total_bytes, MeshShape from, MeshShape to);

} // namespace meshslice

#endif // MESHSLICE_GEMM_RESHARD_HPP_
