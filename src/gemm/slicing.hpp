/**
 * @file
 * MeshSlice's blocked slicing operators (paper Sec 3.1.2, Algorithm 2).
 *
 * `sliceCols(X, S, s, B)` reshapes X's columns into blocks of B
 * contiguous columns and collects every S-th block starting at block s
 * — the memory-friendly version of "every S-th column vector". The
 * `unslice*Into` operators are the exact inverses, used to scatter
 * ReduceScatter results back into an output shard.
 */
#ifndef MESHSLICE_GEMM_SLICING_HPP_
#define MESHSLICE_GEMM_SLICING_HPP_

#include "gemm/matrix.hpp"

namespace meshslice {

/**
 * The s-th of S column sub-shards of @p x with block size @p block.
 * Requires S * block to divide x.cols(). Result: x.rows() x x.cols()/S.
 */
Matrix sliceCols(const Matrix &x, int s_count, int s, int block);

/** Row-dimension analogue of `sliceCols`. */
Matrix sliceRows(const Matrix &x, int s_count, int s, int block);

/** Scatter @p sub (a sliceCols result) back into @p x. */
void unsliceColsInto(Matrix &x, const Matrix &sub, int s_count, int s,
                     int block);

/** Scatter @p sub (a sliceRows result) back into @p x. */
void unsliceRowsInto(Matrix &x, const Matrix &sub, int s_count, int s,
                     int block);

} // namespace meshslice

#endif // MESHSLICE_GEMM_SLICING_HPP_
