#include "net/topology.hpp"

#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Store-and-forward hops a detour route takes through an adjacent
 *  ring (down, across, up) — the detour link gets 1/hops bandwidth. */
constexpr double kDetourHops = 3.0;

/**
 * Build a ring over all chips of @p ring except the one at @p fail_pos.
 * Direct links between surviving neighbours are kept; the two directed
 * hops that passed through the failed chip become fresh "detour"
 * resources at 1/kDetourHops of the ICI bandwidth.
 */
Ring
detourRing(Cluster &cluster, const Ring &ring, int fail_pos,
           const std::string &name_base)
{
    const int n = ring.size();
    Ring out;
    const int m = n - 1; // survivors
    for (int j = 0; j < m; ++j)
        out.chips.push_back(
            ring.chips[static_cast<size_t>((fail_pos + 1 + j) % n)]);
    if (m <= 1)
        return out; // 1-ring: no links needed, collectives no-op

    const double detour_bw = cluster.config().iciLinkBandwidth /
                             cluster.config().logicalMeshContention /
                             kDetourHops;
    const ResourceId detour_fwd = cluster.net().addResource(
        "link.detour.fwd." + name_base, detour_bw);
    const ResourceId detour_bwd = cluster.net().addResource(
        "link.detour.bwd." + name_base, detour_bw);

    // Survivor j sits at original position (fail_pos + 1 + j) % n.
    // fwd[j]: survivor j -> survivor (j+1)%m. Direct except for the
    // last survivor, whose next hop used to run through the failure.
    // bwd[j]: survivor j -> survivor (j-1+m)%m. Direct except for
    // survivor 0, whose previous neighbour was the failed chip.
    for (int j = 0; j < m; ++j) {
        const size_t orig = static_cast<size_t>((fail_pos + 1 + j) % n);
        out.fwd.push_back(j == m - 1 ? detour_fwd : ring.fwd[orig]);
        out.bwd.push_back(j == 0 ? detour_bwd : ring.bwd[orig]);
    }
    return out;
}

} // namespace

TorusMesh::TorusMesh(Cluster &cluster, int rows, int cols, int chip_base)
    : cluster_(cluster), rows_(rows), cols_(cols), chipBase_(chip_base)
{
    if (rows <= 0 || cols <= 0)
        fatal("TorusMesh: invalid shape %dx%d — both dimensions must be "
              "positive", rows, cols);
    if (chip_base < 0 || chip_base + rows * cols > cluster.numChips())
        fatal("TorusMesh: %dx%d at base %d exceeds %d chips — build the "
              "Cluster with at least chip_base + rows*cols chips", rows,
              cols, chip_base, cluster.numChips());

    rowRings_.resize(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
        Ring &ring = rowRings_[static_cast<size_t>(r)];
        for (int c = 0; c < cols; ++c)
            ring.chips.push_back(chipAt(r, c));
        for (int c = 0; c < cols; ++c) {
            ring.fwd.push_back(cluster.addLink(
                strprintf("link.E.b%d.r%d.c%d", chip_base, r, c)));
            ring.bwd.push_back(cluster.addLink(
                strprintf("link.W.b%d.r%d.c%d", chip_base, r, c)));
        }
    }

    colRings_.resize(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
        Ring &ring = colRings_[static_cast<size_t>(c)];
        for (int r = 0; r < rows; ++r)
            ring.chips.push_back(chipAt(r, c));
        for (int r = 0; r < rows; ++r) {
            ring.fwd.push_back(cluster.addLink(
                strprintf("link.S.b%d.r%d.c%d", chip_base, r, c)));
            ring.bwd.push_back(cluster.addLink(
                strprintf("link.N.b%d.r%d.c%d", chip_base, r, c)));
        }
    }
}

Ring
TorusMesh::rowRingWithout(int r, int c_fail)
{
    if (r < 0 || r >= rows_ || c_fail < 0 || c_fail >= cols_)
        fatal("TorusMesh: rowRingWithout(%d, %d) out of range for a "
              "%dx%d mesh", r, c_fail, rows_, cols_);
    if (rows_ < 2)
        fatal("TorusMesh: cannot detour row ring around chip (%d, %d) — "
              "a 1x%d mesh has no adjacent row to route through "
              "(unroutable ring)", r, c_fail, cols_);
    return detourRing(cluster_, rowRing(r), c_fail,
                      strprintf("E.b%d.r%d.c%d", chipBase_, r, c_fail));
}

Ring
TorusMesh::colRingWithout(int c, int r_fail)
{
    if (c < 0 || c >= cols_ || r_fail < 0 || r_fail >= rows_)
        fatal("TorusMesh: colRingWithout(%d, %d) out of range for a "
              "%dx%d mesh", c, r_fail, rows_, cols_);
    if (cols_ < 2)
        fatal("TorusMesh: cannot detour column ring around chip (%d, %d) "
              "— a %dx1 mesh has no adjacent column to route through "
              "(unroutable ring)", r_fail, c, rows_);
    return detourRing(cluster_, colRing(c), r_fail,
                      strprintf("S.b%d.r%d.c%d", chipBase_, r_fail, c));
}

RingNetwork::RingNetwork(Cluster &cluster) : cluster_(cluster)
{
    const int n = cluster.numChips();
    for (int i = 0; i < n; ++i)
        ring_.chips.push_back(i);
    for (int i = 0; i < n; ++i) {
        ring_.fwd.push_back(cluster.addLink(strprintf("link.CW.%d", i)));
        ring_.bwd.push_back(cluster.addLink(strprintf("link.CCW.%d", i)));
    }
}

} // namespace meshslice
