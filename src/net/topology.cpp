#include "net/topology.hpp"

#include "util/logging.hpp"

namespace meshslice {

TorusMesh::TorusMesh(Cluster &cluster, int rows, int cols, int chip_base)
    : cluster_(cluster), rows_(rows), cols_(cols), chipBase_(chip_base)
{
    if (rows <= 0 || cols <= 0)
        panic("TorusMesh: invalid shape %dx%d", rows, cols);
    if (chip_base < 0 || chip_base + rows * cols > cluster.numChips())
        panic("TorusMesh: %dx%d at base %d exceeds %d chips", rows, cols,
              chip_base, cluster.numChips());

    rowRings_.resize(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
        Ring &ring = rowRings_[static_cast<size_t>(r)];
        for (int c = 0; c < cols; ++c)
            ring.chips.push_back(chipAt(r, c));
        for (int c = 0; c < cols; ++c) {
            ring.fwd.push_back(cluster.addLink(
                strprintf("link.E.b%d.r%d.c%d", chip_base, r, c)));
            ring.bwd.push_back(cluster.addLink(
                strprintf("link.W.b%d.r%d.c%d", chip_base, r, c)));
        }
    }

    colRings_.resize(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
        Ring &ring = colRings_[static_cast<size_t>(c)];
        for (int r = 0; r < rows; ++r)
            ring.chips.push_back(chipAt(r, c));
        for (int r = 0; r < rows; ++r) {
            ring.fwd.push_back(cluster.addLink(
                strprintf("link.S.b%d.r%d.c%d", chip_base, r, c)));
            ring.bwd.push_back(cluster.addLink(
                strprintf("link.N.b%d.r%d.c%d", chip_base, r, c)));
        }
    }
}

RingNetwork::RingNetwork(Cluster &cluster) : cluster_(cluster)
{
    const int n = cluster.numChips();
    for (int i = 0; i < n; ++i)
        ring_.chips.push_back(i);
    for (int i = 0; i < n; ++i) {
        ring_.fwd.push_back(cluster.addLink(strprintf("link.CW.%d", i)));
        ring_.bwd.push_back(cluster.addLink(strprintf("link.CCW.%d", i)));
    }
}

} // namespace meshslice
