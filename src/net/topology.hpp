/**
 * @file
 * Interconnect topologies: 2D torus mesh and 1D ring.
 *
 * Directions follow the paper's geometry: *horizontal* communication
 * happens within a row of the mesh (across columns — what Figure 2
 * subscripts as `col`, "inter-column"), *vertical* communication within
 * a column (across rows, subscript `row`). Every physical ICI link is
 * represented as two directed resources so collectives can optionally
 * exploit both directions.
 */
#ifndef MESHSLICE_NET_TOPOLOGY_HPP_
#define MESHSLICE_NET_TOPOLOGY_HPP_

#include <vector>

#include "hw/cluster.hpp"

namespace meshslice {

/**
 * A ring of chips with directed links in both orientations.
 * `fwd[i]` connects `chips[i] -> chips[(i+1) % size]`,
 * `bwd[i]` connects `chips[i] -> chips[(i-1+size) % size]`.
 */
struct Ring
{
    std::vector<int> chips;
    std::vector<ResourceId> fwd;
    std::vector<ResourceId> bwd;

    int size() const { return static_cast<int>(chips.size()); }
};

/**
 * A Pr x Pc 2D torus (the paper's TPU mesh). Chip (r, c) has index
 * r * cols + c. Each chip owns four outgoing directed links: east/west
 * (horizontal) and south/north (vertical).
 */
class TorusMesh
{
  public:
    /**
     * Build a torus over chips [chip_base, chip_base + rows*cols) of
     * the cluster; chip_base > 0 is used by 3D clusters whose layers
     * are stacked 2D tori (Sec 7).
     */
    TorusMesh(Cluster &cluster, int rows, int cols, int chip_base = 0);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int chipBase() const { return chipBase_; }
    int chipAt(int r, int c) const { return chipBase_ + r * cols_ + c; }

    /** Ring across the columns of row @p r (horizontal communication). */
    const Ring &rowRing(int r) const { return rowRings_.at(r); }

    /** Ring across the rows of column @p c (vertical communication). */
    const Ring &colRing(int c) const { return colRings_.at(c); }

    /**
     * Rebuild the row ring of row @p r without the (failed) chip in
     * column @p c_fail: the surviving cols-1 chips keep their direct
     * links, and the one hop that used to pass through the failed chip
     * is replaced in each direction by a *detour* link — a fresh fluid
     * resource at 1/3 of the ICI link bandwidth, modelling the
     * 3-hop store-and-forward route through an adjacent row (down,
     * across, up). Requires rows >= 2 (otherwise there is no adjacent
     * row to route through and the ring is unroutable — a clean
     * `fatal()`, never a hang). Call once per failure; each call
     * registers new detour resources.
     */
    Ring rowRingWithout(int r, int c_fail);

    /** Column-ring analogue of `rowRingWithout` (requires cols >= 2). */
    Ring colRingWithout(int c, int r_fail);

    const std::vector<Ring> &rowRings() const { return rowRings_; }
    const std::vector<Ring> &colRings() const { return colRings_; }

    Cluster &cluster() { return cluster_; }

  private:
    Cluster &cluster_;
    int rows_;
    int cols_;
    int chipBase_;
    std::vector<Ring> rowRings_;
    std::vector<Ring> colRings_;
};

/**
 * A 1D ring over all chips (the 1D TP / FSDP baselines, Sec 4.3). Each
 * chip connects to two neighbours only, so a chip exposes half the link
 * bandwidth it would have in a 2D mesh.
 */
class RingNetwork
{
  public:
    explicit RingNetwork(Cluster &cluster);

    const Ring &ring() const { return ring_; }
    Cluster &cluster() { return cluster_; }

  private:
    Cluster &cluster_;
    Ring ring_;
};

} // namespace meshslice

#endif // MESHSLICE_NET_TOPOLOGY_HPP_
