#include "net/collectives.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/abandon.hpp"
#include "sim/fault.hpp"
#include "sim/join.hpp"
#include "util/logging.hpp"

namespace meshslice {

CommStats &
CommStats::operator+=(const CommStats &other)
{
    launch += other.launch;
    transfer += other.transfer;
    sync += other.sync;
    bubble += other.bubble;
    total += other.total;
    syncCount += other.syncCount;
    bytesPerLink += other.bytesPerLink;
    return *this;
}

CommStats &
CommStats::mergeParallel(const CommStats &other)
{
    launch = std::max(launch, other.launch);
    transfer = std::max(transfer, other.transfer);
    sync = std::max(sync, other.sync);
    bubble = std::max(bubble, other.bubble);
    total = std::max(total, other.total);
    syncCount = std::max(syncCount, other.syncCount);
    bytesPerLink = std::max(bytesPerLink, other.bytesPerLink);
    return *this;
}

int
collectiveStepCount(const ChipConfig &cfg, int ring_size)
{
    if (ring_size <= 1)
        return 0;
    const int steps = ring_size - 1;
    return cfg.bidirectionalIci ? (steps + 1) / 2 : steps;
}

namespace {

/** Completes `done` immediately (next event batch) with empty stats. */
void
completeEmpty(Cluster &cluster, CommDone done)
{
    cluster.sim().scheduleAfter(0.0, [done = std::move(done)] {
        done(CommStats{});
    });
}

/**
 * True if every directed link of @p ring's @p forward orientation is
 * currently up. A collective direction is usable only as a whole: ring
 * steps move all chips in lockstep, so one dead link kills the chain.
 */
bool
chainUsable(Cluster &cluster, const Ring &ring, bool forward)
{
    const std::vector<ResourceId> &links = forward ? ring.fwd : ring.bwd;
    for (ResourceId id : links)
        if (!cluster.net().isAvailable(id))
            return false;
    return true;
}

/**
 * Diagnose a ring with no usable direction. Dead links are listed by
 * name so the user can match them against the fault scenario.
 */
[[noreturn]] void
failUnroutable(Cluster &cluster, const Ring &ring, const char *op)
{
    std::string dead;
    for (const std::vector<ResourceId> *links : {&ring.fwd, &ring.bwd})
        for (ResourceId id : *links)
            if (!cluster.net().isAvailable(id))
                dead += " " + cluster.net().resourceName(id);
    fatal("%s: ring has no usable direction — dead link(s):%s. The "
          "collective cannot route; rebuild the ring around the failure "
          "(TorusMesh::rowRingWithout/colRingWithout) or revise the "
          "fault scenario.", op, dead.c_str());
}

/**
 * Shared machinery: runs a number of direction chains concurrently,
 * each a sequence of synchronized steps, after a single launch delay;
 * reports assembled stats and self-deletes.
 */
class RingOpBase
{
  public:
    RingOpBase(Cluster &cluster, const Ring &ring, int lane,
               const char *name, CommDone done)
        : cluster_(cluster), ring_(ring), lane_(lane), name_(name),
          done_(std::move(done)), begin_(cluster.sim().now())
    {
        // Profiler snapshot: the op is constructed inside the task
        // body (or a recovery scope), but records its span nodes from
        // event callbacks later, so the ambient context is captured
        // here. A retry op constructed inside a recovery scope marks
        // every node as a recovery detour.
        SpanRecorder &prof = cluster.profiler();
        profEnabled_ = prof.enabled();
        if (profEnabled_) {
            profTask_ = prof.currentTask();
            profDeps_ = prof.ambientDeps();
            profRecovery_ = prof.inRecovery();
            if (prof.recoveryDep() >= 0)
                profDeps_.push_back(prof.recoveryDep());
        }
        // An op stranded by a phase abandonment (its remaining events
        // cancelled by `Simulator::requestStop`) is reclaimed by the
        // elastic runtime's abandon sweep. Free when no registry is
        // installed (every non-elastic caller).
        if (AbandonRegistry *reg = AbandonRegistry::current()) {
            abandonRegistry_ = reg;
            abandonId_ = reg->track([this] { delete this; });
        }
    }

    virtual ~RingOpBase()
    {
        if (abandonRegistry_ != nullptr)
            abandonRegistry_->untrack(abandonId_);
    }

  protected:
    /** Start @p chains concurrent step chains after the launch delay. */
    void
    launch(int chains)
    {
        activeChains_ = chains;
        stats_.launch = cluster_.config().launchOverhead;
        // Host launch jitter from the fault scenario (0 when no
        // injector is attached, or when the scenario has none — the
        // PRNG is not even consulted then, keeping the empty scenario
        // bit-identical to a run without an injector).
        if (FaultInjector *inj = cluster_.faults())
            stats_.launch += inj->nextLaunchJitter();
        launchEvent_ = cluster_.sim().scheduleAfter(stats_.launch, [this] {
            if (profEnabled_) {
                profLaunchNode_ = cluster_.profiler().addNode(
                    strprintf("%s launch", name_),
                    profCat(SpanCategory::kLaunch), begin_,
                    cluster_.sim().now(), profDeps_, profChip());
                profChainPrev_[0] = profLaunchNode_;
                profChainPrev_[1] = profLaunchNode_;
            }
            const int chains = activeChains_;
            for (int chain = 0; chain < chains; ++chain)
                startStep(chain, 0);
        });
    }

    /**
     * Arm the fail-stop abort watch: if the fault scenario kills any
     * resource this op depends on (a ring chip's HBM or a link of an
     * orientation in use), schedule an abort at kill time + the
     * scenario's detection latency. Guarded by `hasKills()` so a
     * kill-free run schedules nothing extra and stays bit-identical
     * to a run without an injector. Call after `watchLinks_` is set.
     */
    void
    armFailStopWatch()
    {
        FaultInjector *inj = cluster_.faults();
        if (!inj || !inj->hasKills())
            return;
        std::vector<ResourceId> watch;
        watch.reserve(ring_.chips.size() + watchLinks_.size());
        for (int chip : ring_.chips)
            watch.push_back(cluster_.hbmOf(chip));
        watch.insert(watch.end(), watchLinks_.begin(), watchLinks_.end());
        const Time kill = inj->earliestKillAfter(cluster_.sim().now(),
                                                 watch);
        if (kill < 0.0)
            return;
        watchArmed_ = true;
        abortEvent_ = cluster_.sim().schedule(
            kill + inj->detectionLatency(), [this] { abortFailStop(); });
    }

    /**
     * The detection timeout fired: a resource this op depends on has
     * failed permanently. Tear down everything in flight (launch
     * event, pending step joins, sync waits, live transfers), then
     * surface a typed `CollectiveError` through the failure handler —
     * or `fatal()` naming the corpse when no handler is installed.
     */
    void
    abortFailStop()
    {
        FaultInjector *inj = cluster_.faults();
        CollectiveError err;
        err.op = name_;
        err.detectedAt = cluster_.sim().now();
        // Prefer a dead chip: that is what the retry evicts. A dead
        // link at fwd[i]/bwd[i] is also cured by evicting chips[i]
        // (the detour ring drops fwd[i-1..i] and bwd[i..i+1]).
        for (int pos = 0; pos < ring_.size() && err.deadRingPos < 0;
             ++pos) {
            const ResourceId hbm = cluster_.hbmOf(
                ring_.chips[static_cast<size_t>(pos)]);
            if (inj && inj->isKilled(hbm)) {
                err.deadChip = ring_.chips[static_cast<size_t>(pos)];
                err.deadRingPos = pos;
                err.deadResource = cluster_.net().resourceName(hbm);
            }
        }
        for (int i = 0; i < ring_.size() && err.deadRingPos < 0; ++i) {
            const ResourceId fwd = ring_.fwd[static_cast<size_t>(i)];
            const ResourceId bwd = ring_.bwd[static_cast<size_t>(i)];
            const ResourceId dead_link =
                inj && inj->isKilled(fwd)
                    ? fwd
                    : (inj && inj->isKilled(bwd) ? bwd : ResourceId{-1});
            if (dead_link >= 0) {
                err.deadChip = ring_.chips[static_cast<size_t>(i)];
                err.deadRingPos = i;
                err.deadResource = cluster_.net().resourceName(dead_link);
            }
        }
        if (err.deadRingPos < 0)
            panic("%s: fail-stop abort fired but no killed resource was "
                  "found in the ring", name_);

        cluster_.sim().cancel(launchEvent_);
        for (int chain = 0; chain < 2; ++chain) {
            cluster_.sim().cancel(chainSync_[chain]);
            delete chainJoin_[chain]; // pending join; its flows die below
            chainJoin_[chain] = nullptr;
        }
        for (FlowId id : startedFlows_)
            cluster_.net().cancelFlow(id); // no-op for completed flows
        StatsRegistry &st = cluster_.stats();
        if (st.enabled())
            st.add(std::string("collective/") + name_ + "/abort", 1.0);
        if (cluster_.trace().enabled() && !ring_.chips.empty()) {
            cluster_.trace().recordInstant(std::string(name_) + ".abort",
                                           "fault", ring_.chips[0], lane_,
                                           cluster_.sim().now());
        }
        if (!fail_) {
            // No per-op recovery continuation: if the cluster has a
            // fail-stop handler (the elastic runtime), report the typed
            // failure and stop the phase — the runtime abandons this
            // cluster and executes the recovery transaction on a
            // survivor mesh. Otherwise the historical contract stands.
            const auto &handler = cluster_.failStopHandler();
            if (!handler)
                fatal("%s: %s failed permanently (kill detected at %g s) "
                      "and the collective cannot complete; no recovery "
                      "handler installed — use the recoverable variant to "
                      "retry on a ring rebuilt without chip %d "
                      "(TorusMesh::rowRingWithout/colRingWithout), or "
                      "revise the fault scenario",
                      name_, err.deadResource.c_str(), err.detectedAt,
                      err.deadChip);
            Cluster &cl = cluster_;
            Cluster::Failure failure;
            failure.op = name_;
            failure.deadResource = err.deadResource;
            failure.deadChip = err.deadChip;
            failure.detectedAt = err.detectedAt;
            delete this;
            cl.sim().requestStop();
            cl.failStopHandler()(failure);
            return;
        }
        // Record the failed attempt as a recovery detour rooted at an
        // abort marker, then run the failure continuation inside a
        // recovery scope: the retry op it constructs inherits both the
        // original task scope (so its exits land where the first
        // attempt's would have) and the detour dependency.
        Cluster &cl = cluster_;
        const bool prof = profEnabled_;
        const int prof_task = profTask_;
        int abort_node = -1;
        if (prof) {
            abort_node = cl.profiler().addNode(
                strprintf("%s abort", name_), SpanCategory::kRecovery,
                begin_, cl.sim().now(), profDeps_, profChip());
        }
        CommFail fail = std::move(fail_);
        delete this;
        if (prof) {
            SpanRecorder &p = cl.profiler();
            if (prof_task >= 0)
                p.beginTask(prof_task);
            p.beginRecovery(abort_node);
            fail(err);
            p.endRecovery();
            if (prof_task >= 0)
                p.endTask();
        } else {
            fail(err);
        }
    }

    /** Subclass: begin step @p step of @p chain; call stepFlows(). */
    virtual void startStep(int chain, int step) = 0;

    /** Subclass: number of steps in @p chain. */
    virtual int stepCount(int chain) const = 0;

    /**
     * Create the join for @p flow_count flows of (chain, step); when all
     * signalled, wait the sync latency and move to the next step of the
     * chain, or finish once every chain has drained. Each step's
     * transfer duration feeds the per-step phase breakdown (Fig 10).
     */
    Join *
    stepJoin(int chain, int step, int flow_count)
    {
        if (flow_count <= 0) {
            panic("RingOpBase: step with no flows");
        }
        const Time step_begin = cluster_.sim().now();
        if (profEnabled_) {
            profCurrentChain_ = chain;
            profAccum_[chain] = FlowInfoAccum{};
        }
        Join *join = Join::create(flow_count, [this, chain, step,
                                               step_begin] {
            chainJoin_[chain] = nullptr; // the join is self-deleting now
            const Time step_dur = cluster_.sim().now() - step_begin;
            StatsRegistry &st = cluster_.stats();
            if (st.enabled()) {
                st.observe(std::string("collective/") + name_ + "/step_s",
                           step_dur);
            }
            if (cluster_.trace().enabled() && !ring_.chips.empty()) {
                cluster_.trace().recordInstant(
                    std::string(name_) + ".sync", "sync", ring_.chips[0],
                    lane_, cluster_.sim().now());
            }
            const Time sync = cluster_.config().syncLatency;
            if (profEnabled_) {
                // One transfer node per ring step, chained per
                // direction; a fixed-latency sync node follows it.
                SpanRecorder &prof = cluster_.profiler();
                const int prev = profChainPrev_[chain];
                std::vector<int> deps =
                    prev >= 0 ? std::vector<int>{prev} : profDeps_;
                const Time now = cluster_.sim().now();
                int node = prof.addNode(
                    strprintf("%s s%d.%d", name_, chain, step),
                    profCat(SpanCategory::kComm), step_begin, now,
                    std::move(deps), profChip());
                if (profAccum_[chain].info.valid)
                    prof.setNodeResource(node, profAccum_[chain].info);
                profChainPrev_[chain] = prof.addNode(
                    strprintf("%s y%d.%d", name_, chain, step),
                    profCat(SpanCategory::kSync), now, now + sync,
                    {node}, profChip());
            }
            chainSync_[chain] =
                cluster_.sim().scheduleAfter(sync, [this, chain, step] {
                    chainSync_[chain] = EventId{};
                    if (step + 1 < stepCount(chain)) {
                        startStep(chain, step + 1);
                    } else if (--activeChains_ == 0) {
                        finish();
                    }
                });
        });
        chainJoin_[chain] = join;
        return join;
    }

    /** Transfer one block over `ring.fwd/bwd[pos]` with HBM demands. */
    void
    transfer(int pos, bool forward, Bytes bytes, double dst_hbm_demand,
             Join *join)
    {
        const int size = ring_.size();
        const int src = ring_.chips[static_cast<size_t>(pos)];
        const int nxt = forward ? (pos + 1) % size : (pos - 1 + size) % size;
        const int dst = ring_.chips[static_cast<size_t>(nxt)];
        const ResourceId link =
            forward ? ring_.fwd[static_cast<size_t>(pos)]
                    : ring_.bwd[static_cast<size_t>(pos)];
        cluster_.noteCommBytes(bytes);
        std::function<void()> on_done;
        if (profEnabled_) {
            // Fold each flow's binding/throttle info into the step's
            // accumulator before signalling the join.
            const int chain = profCurrentChain_;
            on_done = [this, chain, join] {
                profAccum_[chain].fold(cluster_.net().lastFinishedFlow());
                join->signal();
            };
        } else {
            on_done = [join] { join->signal(); };
        }
        const FlowId fid = cluster_.net().startFlow(
            static_cast<double>(bytes),
            {Demand{link, 1.0}, Demand{cluster_.hbmOf(src), 1.0},
             Demand{cluster_.hbmOf(dst), dst_hbm_demand}},
            std::move(on_done));
        if (watchArmed_)
            startedFlows_.push_back(fid); // abort cancels these
    }

    void
    finish()
    {
        // The op completed before any watched kill could strand it.
        if (watchArmed_)
            cluster_.sim().cancel(abortEvent_);
        stats_.total = cluster_.sim().now() - begin_;
        stats_.sync = cluster_.config().syncLatency * stats_.syncCount;
        stats_.transfer = stats_.total - stats_.launch - stats_.sync;
        if (stats_.transfer < 0.0)
            stats_.transfer = 0.0;
        // Bubble: transfer beyond the contention-free ideal of pushing
        // bytesPerLink through one solo link.
        const ChipConfig &cfg = cluster_.config();
        const double solo_rate =
            cfg.iciLinkBandwidth / cfg.logicalMeshContention;
        const Time ideal =
            static_cast<double>(stats_.bytesPerLink) / solo_rate;
        stats_.bubble = std::max(0.0, stats_.transfer - ideal);
        if (cluster_.trace().enabled()) {
            for (int chip : ring_.chips)
                cluster_.trace().record(name_, "comm", chip, lane_, begin_,
                                        cluster_.sim().now());
            cluster_.sampleCounters();
        }
        StatsRegistry &st = cluster_.stats();
        if (st.enabled()) {
            const std::string base = std::string("collective/") + name_;
            st.add(base + "/count", 1.0);
            st.add(base + "/launch_s", stats_.launch);
            st.add(base + "/transfer_s", stats_.transfer);
            st.add(base + "/sync_s", stats_.sync);
            st.add(base + "/bubble_s", stats_.bubble);
            st.add(base + "/total_s", stats_.total);
            st.add(base + "/sync_count", stats_.syncCount);
            st.add(base + "/bytes_per_link",
                   static_cast<double>(stats_.bytesPerLink));
        }
        std::vector<int> exits;
        if (profEnabled_) {
            // The op's exits are each chain's final sync node (falling
            // back to the launch node for a chain that never stepped).
            SpanRecorder &prof = cluster_.profiler();
            for (int chain = 0; chain < 2; ++chain) {
                const int node = profChainPrev_[chain];
                if (node >= 0 && node != profLaunchNode_)
                    exits.push_back(node);
            }
            if (exits.empty() && profLaunchNode_ >= 0)
                exits.push_back(profLaunchNode_);
            for (int node : exits)
                prof.addTaskExit(profTask_, node);
        }
        Cluster &cl = cluster_;
        const bool prof_chain = profEnabled_ && !exits.empty();
        const int prof_task = profTask_;
        CommDone done = std::move(done_);
        CommStats stats = stats_;
        delete this;
        // Run the continuation inside a chain scope so a follow-on op
        // constructed in the callback (e.g. AllReduce's AG after RdS)
        // depends on this op's final nodes.
        if (prof_chain)
            cl.profiler().beginChain(prof_task, std::move(exits));
        done(stats);
        if (prof_chain)
            cl.profiler().endChain();
    }

    Cluster &cluster_;
    const Ring ring_; // copy: caller's Ring may be a temporary
    int lane_;
    const char *name_;
    CommDone done_;
    /** Failure continuation; null = unrecoverable (fatal on abort). */
    CommFail fail_;
    Time begin_;
    CommStats stats_;
    int activeChains_ = 0;
    /** Orientation links in use, for the fail-stop watch (subclass). */
    std::vector<ResourceId> watchLinks_;
    /** True once `armFailStopWatch` scheduled an abort. */
    bool watchArmed_ = false;
    EventId launchEvent_;
    EventId abortEvent_;
    /** Per-chain pending step join / sync event, for abort teardown. */
    Join *chainJoin_[2] = {nullptr, nullptr};
    EventId chainSync_[2];
    /** Every flow this op started (only tracked when watch armed). */
    std::vector<FlowId> startedFlows_;
    /** Abandon-sweep bookkeeping (null outside elastic phases). */
    AbandonRegistry *abandonRegistry_ = nullptr;
    std::uint64_t abandonId_ = 0;

    // --- critical-path profiler state (inert when disabled) ---

    /** Representative chip for span nodes. */
    int
    profChip() const
    {
        return ring_.chips.empty() ? -1 : ring_.chips[0];
    }
    /** Category override for ops constructed inside a recovery scope
     *  (their nodes are recorded after the scope closed). */
    SpanCategory
    profCat(SpanCategory cat) const
    {
        return profRecovery_ ? SpanCategory::kRecovery : cat;
    }

    bool profEnabled_ = false;
    int profTask_ = -1;          ///< ambient task scope at construction
    std::vector<int> profDeps_;  ///< entry deps (incl. recovery root)
    bool profRecovery_ = false;
    int profLaunchNode_ = -1;
    /** Latest recorded node per chain (next step's dependency). */
    int profChainPrev_[2] = {-1, -1};
    /** Chain whose step is being populated (set by stepJoin, read by
     *  transfer — the calls are synchronous within one step). */
    int profCurrentChain_ = 0;
    FlowInfoAccum profAccum_[2];
};

/**
 * AG / RdS: all chips transfer a full sub-shard per step. One chain
 * (unidirectional) or two counter-rotating chains (bidirectional).
 */
class ShardCollectiveOp : public RingOpBase
{
  public:
    ShardCollectiveOp(Cluster &cluster, const Ring &ring, Bytes shard,
                      double dst_hbm_demand, int lane, const char *name,
                      CommDone done, CommFail fail = nullptr)
        : RingOpBase(cluster, ring, lane, name, std::move(done)),
          shard_(shard), dstHbmDemand_(dst_hbm_demand)
    {
        fail_ = std::move(fail);
        const int total_steps = ring.size() - 1;
        // Degraded-ring fallback (paper Fig 3 degenerate case): a dead
        // directed link kills its whole chain, so with one surviving
        // orientation the op runs unidirectionally over P-1 steps.
        const bool fwd_ok = chainUsable(cluster, ring, true);
        const bool bwd_ok = chainUsable(cluster, ring, false);
        if (!fwd_ok && !bwd_ok) {
            // When the ring is unroutable because of a *kill* and a
            // recovery handler is installed, surface the typed error
            // after the detection latency instead of a fatal: the
            // caller will rebuild the ring around the corpse. A
            // both-directions capacity window stays fatal (it is a
            // transient the caller should have waited out).
            FaultInjector *inj = cluster.faults();
            if (fail_ && inj && inj->hasKills()) {
                bool link_killed = false;
                for (const std::vector<ResourceId> *links :
                     {&ring.fwd, &ring.bwd})
                    for (ResourceId id : *links)
                        if (inj->isKilled(id))
                            link_killed = true;
                if (link_killed) {
                    watchArmed_ = true;
                    abortEvent_ = cluster.sim().schedule(
                        cluster.sim().now() + inj->detectionLatency(),
                        [this] { abortFailStop(); });
                    return; // nothing launches; abort path owns us
                }
            }
            failUnroutable(cluster, ring, name);
        }
        if (cluster.config().bidirectionalIci && fwd_ok && bwd_ok) {
            stepsPerChain_[0] = (total_steps + 1) / 2;
            stepsPerChain_[1] = total_steps / 2;
        } else {
            stepsPerChain_[0] = total_steps;
            stepsPerChain_[1] = 0;
            chainForward_[0] = fwd_ok;
        }
        stats_.syncCount = stepsPerChain_[0];
        stats_.bytesPerLink = shard_ * stepsPerChain_[0];
        // Fail-stop watch over the orientations actually in use (plus
        // every ring chip's HBM, added by armFailStopWatch itself).
        if (stepsPerChain_[1] > 0 || chainForward_[0])
            watchLinks_.insert(watchLinks_.end(), ring.fwd.begin(),
                               ring.fwd.end());
        if (stepsPerChain_[1] > 0 || !chainForward_[0])
            watchLinks_.insert(watchLinks_.end(), ring.bwd.begin(),
                               ring.bwd.end());
        armFailStopWatch();
        launch(stepsPerChain_[1] > 0 ? 2 : 1);
    }

  protected:
    int
    stepCount(int chain) const override
    {
        return stepsPerChain_[chain];
    }

    void
    startStep(int chain, int step) override
    {
        const bool forward = chainForward_[chain];
        Join *join = stepJoin(chain, step, ring_.size());
        for (int pos = 0; pos < ring_.size(); ++pos)
            transfer(pos, forward, shard_, dstHbmDemand_, join);
    }

  private:
    Bytes shard_;
    double dstHbmDemand_;
    int stepsPerChain_[2] = {0, 0};
    bool chainForward_[2] = {true, false};
};

/**
 * SUMMA bcast/reduce: D packets streamed over the hops of one or two
 * chains rooted at `root_pos`, one pipeline stage per synchronized
 * step. Stage t of a chain carries packet p over hop h = t - p. With
 * bidirectional ICI the root streams all packets down both arcs of the
 * ring (ceil/floor((P-1)/2) hops each), halving the chain depth.
 */
class PipelinedChainOp : public RingOpBase
{
  public:
    PipelinedChainOp(Cluster &cluster, const Ring &ring, int root_pos,
                     Bytes total_bytes, int packets, double dst_hbm_demand,
                     int lane, const char *name, CommDone done)
        : RingOpBase(cluster, ring, lane, name, std::move(done)),
          rootPos_(root_pos), dstHbmDemand_(dst_hbm_demand)
    {
        packets_ = std::max(1, packets);
        packetBytes_ = std::max<Bytes>(1, total_bytes / packets_);
        const int total_hops = ring.size() - 1;
        const bool fwd_ok = chainUsable(cluster, ring, true);
        const bool bwd_ok = chainUsable(cluster, ring, false);
        if (!fwd_ok && !bwd_ok)
            failUnroutable(cluster, ring, name);
        if (cluster.config().bidirectionalIci && total_hops > 1 &&
            fwd_ok && bwd_ok) {
            hops_[0] = (total_hops + 1) / 2;
            hops_[1] = total_hops / 2;
        } else {
            // Single surviving arc: stream every packet the long way
            // round (P-1 hops) on the usable orientation.
            hops_[0] = total_hops;
            hops_[1] = 0;
            chainForward_[0] = fwd_ok;
        }
        stats_.syncCount = hops_[0] + packets_ - 1;
        stats_.bytesPerLink = packetBytes_ * packets_;
        launch(hops_[1] > 0 ? 2 : 1);
    }

  protected:
    int
    stepCount(int chain) const override
    {
        return hops_[chain] + packets_ - 1;
    }

    void
    startStep(int chain, int stage) override
    {
        const int hops = hops_[chain];
        const bool forward = chainForward_[chain];
        // Active packet-hops in this stage.
        const int p_lo = std::max(0, stage - (hops - 1));
        const int p_hi = std::min(packets_ - 1, stage);
        const int count = p_hi - p_lo + 1;
        Join *join = stepJoin(chain, stage, count);
        const int size = ring_.size();
        for (int p = p_lo; p <= p_hi; ++p) {
            const int hop = stage - p;
            const int pos = forward
                                ? (rootPos_ + hop) % size
                                : (rootPos_ - hop + 2 * size) % size;
            transfer(pos, forward, packetBytes_, dstHbmDemand_, join);
        }
    }

  private:
    int rootPos_;
    double dstHbmDemand_;
    int packets_ = 1;
    Bytes packetBytes_ = 0;
    int hops_[2] = {0, 0};
    bool chainForward_[2] = {true, false};
};

/** One synchronized rotation of all chips' blocks. */
class ShiftOp : public RingOpBase
{
  public:
    ShiftOp(Cluster &cluster, const Ring &ring, Bytes block, bool forward,
            int lane, CommDone done)
        : RingOpBase(cluster, ring, lane, forward ? "shift+" : "shift-",
                     std::move(done)),
          block_(block), forward_(forward)
    {
        // Degraded-ring fallback: if the requested orientation has a
        // dead link, one rotation forward equals P-1 rotations
        // backward, so the shift still completes (at P-1x the cost) on
        // the surviving orientation.
        if (!chainUsable(cluster, ring, forward_)) {
            if (!chainUsable(cluster, ring, !forward_))
                failUnroutable(cluster, ring, name_);
            forward_ = !forward_;
            steps_ = ring.size() - 1;
        }
        stats_.syncCount = steps_;
        stats_.bytesPerLink = block * steps_;
        launch(1);
    }

  protected:
    int
    stepCount(int) const override
    {
        return steps_;
    }

    void
    startStep(int chain, int step) override
    {
        Join *join = stepJoin(chain, step, ring_.size());
        for (int pos = 0; pos < ring_.size(); ++pos)
            transfer(pos, forward_, block_, 1.0, join);
    }

  private:
    Bytes block_;
    bool forward_;
    int steps_ = 1;
};

} // namespace

void
ringAllGather(Cluster &cluster, const Ring &ring, Bytes shard_bytes,
              int lane, CommDone done)
{
    if (ring.size() <= 1 || shard_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    new ShardCollectiveOp(cluster, ring, shard_bytes, 1.0, lane,
                          "allgather", std::move(done));
}

void
ringReduceScatter(Cluster &cluster, const Ring &ring, Bytes shard_bytes,
                  int lane, CommDone done)
{
    if (ring.size() <= 1 || shard_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    // Accumulation at the destination reads the partial sum back, hence
    // the doubled destination-HBM demand.
    new ShardCollectiveOp(cluster, ring, shard_bytes, 2.0, lane,
                          "reducescatter", std::move(done));
}

void
ringAllGatherRecoverable(Cluster &cluster, const Ring &ring,
                         Bytes shard_bytes, int lane, CommDone done,
                         CommFail fail)
{
    if (ring.size() <= 1 || shard_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    new ShardCollectiveOp(cluster, ring, shard_bytes, 1.0, lane,
                          "allgather", std::move(done), std::move(fail));
}

void
ringReduceScatterRecoverable(Cluster &cluster, const Ring &ring,
                             Bytes shard_bytes, int lane, CommDone done,
                             CommFail fail)
{
    if (ring.size() <= 1 || shard_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    new ShardCollectiveOp(cluster, ring, shard_bytes, 2.0, lane,
                          "reducescatter", std::move(done),
                          std::move(fail));
}

namespace {

void
startShardCollective(Cluster &cluster, RingCollectiveKind kind,
                     const Ring &ring, Bytes shard_bytes, int lane,
                     CommDone done, CommFail fail)
{
    if (kind == RingCollectiveKind::kAllGather)
        ringAllGatherRecoverable(cluster, ring, shard_bytes, lane,
                                 std::move(done), std::move(fail));
    else
        ringReduceScatterRecoverable(cluster, ring, shard_bytes, lane,
                                     std::move(done), std::move(fail));
}

} // namespace

void
runRecoverableCollective(TorusMesh &mesh, RingCollectiveKind kind,
                         bool row_ring, int index, Bytes shard_bytes,
                         int lane, RecoveryDone done)
{
    TorusMesh *mesh_p = &mesh;
    Cluster &cluster = mesh.cluster();
    const Time begin = cluster.sim().now();

    CommDone first_ok = [mesh_p, begin, done](const CommStats &stats) {
        RecoveryOutcome out;
        out.stats = stats;
        out.totalTime = mesh_p->cluster().sim().now() - begin;
        done(out);
    };
    CommFail first_fail = [mesh_p, kind, row_ring, index, shard_bytes,
                           lane, begin, done](const CollectiveError &err) {
        Cluster &cl = mesh_p->cluster();
        if (err.deadRingPos < 0)
            panic("runRecoverableCollective: error without a ring "
                  "position to evict");
        StatsRegistry &st = cl.stats();
        if (st.enabled())
            st.add("collective/" + err.op + "/retry", 1.0);
        // Rebuild the ring around the corpse: the surviving chips keep
        // their direct links, the hop through the dead chip becomes a
        // store-and-forward detour (rowRingWithout/colRingWithout).
        Ring rebuilt =
            row_ring ? mesh_p->rowRingWithout(index, err.deadRingPos)
                     : mesh_p->colRingWithout(index, err.deadRingPos);
        CommDone retry_ok = [mesh_p, begin, err,
                             done](const CommStats &stats) {
            RecoveryOutcome out;
            out.stats = stats;
            out.retried = true;
            out.error = err;
            out.totalTime = mesh_p->cluster().sim().now() - begin;
            done(out);
        };
        // One retry is the recovery budget: a second fail-stop during
        // the retry means the survivor set changed again mid-recovery,
        // which is checkpoint-restart territory, not ring surgery. The
        // audit text names both corpses — the failure the ring was
        // rebuilt around and the fresh one on the rebuilt ring — with
        // their ring positions, so the operator can line the pair up
        // against the fault scenario without replaying the run.
        CommFail retry_fail = [err](const CollectiveError &err2) {
            fatal("%s: retry on the rebuilt ring also hit a dead "
                  "resource — first failure %s (ring position %d, chip "
                  "%d, detected at %g s), second failure %s (rebuilt-"
                  "ring position %d, chip %d, detected at %g s) — one "
                  "retry is the recovery budget; restart from the last "
                  "checkpoint on the surviving mesh",
                  err2.op.c_str(), err.deadResource.c_str(),
                  err.deadRingPos, err.deadChip, err.detectedAt,
                  err2.deadResource.c_str(), err2.deadRingPos,
                  err2.deadChip, err2.detectedAt);
        };
        startShardCollective(cl, kind, rebuilt, shard_bytes, lane,
                             std::move(retry_ok), std::move(retry_fail));
    };

    const Ring &ring = row_ring ? mesh.rowRing(index) : mesh.colRing(index);
    startShardCollective(cluster, kind, ring, shard_bytes, lane,
                         std::move(first_ok), std::move(first_fail));
}

void
ringBroadcast(Cluster &cluster, const Ring &ring, int root_pos,
              Bytes total_bytes, int packets, int lane, CommDone done)
{
    if (ring.size() <= 1 || total_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    new PipelinedChainOp(cluster, ring, root_pos, total_bytes, packets,
                         1.0, lane, "broadcast", std::move(done));
}

void
ringReduce(Cluster &cluster, const Ring &ring, int root_pos,
           Bytes total_bytes, int packets, int lane, CommDone done)
{
    if (ring.size() <= 1 || total_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    new PipelinedChainOp(cluster, ring, root_pos, total_bytes, packets,
                         2.0, lane, "reduce", std::move(done));
}

void
ringAllReduce(Cluster &cluster, const Ring &ring, Bytes total_bytes,
              int lane, CommDone done)
{
    if (ring.size() <= 1 || total_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    const Bytes shard = total_bytes / ring.size();
    // Ring copy keeps the AllGather phase valid even if the caller's
    // Ring was a temporary.
    Ring ring_copy = ring;
    ringReduceScatter(
        cluster, ring_copy, shard, lane,
        [&cluster, ring_copy, shard, lane,
         done = std::move(done)](const CommStats &rds) mutable {
            ringAllGather(cluster, ring_copy, shard, lane,
                          [rds, done = std::move(done)](
                              const CommStats &ag) {
                              CommStats both = rds;
                              both += ag;
                              done(both);
                          });
        });
}

void
ringShift(Cluster &cluster, const Ring &ring, Bytes block_bytes,
          bool forward, int lane, CommDone done)
{
    if (ring.size() <= 1 || block_bytes <= 0) {
        completeEmpty(cluster, std::move(done));
        return;
    }
    new ShiftOp(cluster, ring, block_bytes, forward, lane, std::move(done));
}

} // namespace meshslice
