/**
 * @file
 * Collective communication operations on ring channels.
 *
 * Implements the communication primitives of Sections 2.3 and 3.1:
 *
 *  - `ringAllGather` / `ringReduceScatter`: the efficient AG/RdS
 *    collectives (Fig 3, right). P-1 synchronized steps; each step every
 *    chip forwards one shard to its neighbour. With bidirectional ICI the
 *    payload is split over two counter-rotating rings (ceil/floor of the
 *    P-1 steps each), which is how TPU collectives use both directions.
 *  - `ringBroadcast` / `ringReduce`: SUMMA's fine-grain primitives
 *    (Fig 3, left). The payload is split into D packets streamed over the
 *    P-1 hops of the ring in P+D-2 pipeline stages, with a
 *    synchronization per stage — the source of SUMMA's O(P^2) overhead.
 *  - `ringShift`: one SendRecv rotation step (Cannon / Wang building
 *    block).
 *
 * Every operation reports a `CommStats` breakdown into launch, transfer
 * and synchronization time — the decomposition plotted in Figure 10.
 */
#ifndef MESHSLICE_NET_COLLECTIVES_HPP_
#define MESHSLICE_NET_COLLECTIVES_HPP_

#include <functional>
#include <string>

#include "hw/cluster.hpp"
#include "net/topology.hpp"

namespace meshslice {

/** Cost breakdown of one (or an accumulation of) communication op(s). */
struct CommStats
{
    Time launch = 0.0;   ///< host launch overhead
    Time transfer = 0.0; ///< time spent moving bytes (incl. contention)
    Time sync = 0.0;     ///< per-step synchronization latency
    /**
     * Pipeline bubble: transfer time beyond the contention-free ideal
     * (bytesPerLink / solo link rate) — stragglers, HBM interference,
     * and rate-sharing cuts show up here. Subset of `transfer`.
     */
    Time bubble = 0.0;
    Time total = 0.0;    ///< wall-clock duration of the op(s)
    int syncCount = 0;   ///< number of synchronizations
    Bytes bytesPerLink = 0; ///< bytes pushed through the busiest link

    CommStats &operator+=(const CommStats &other);
    /** Merge a concurrent op: component-wise max of times. */
    CommStats &mergeParallel(const CommStats &other);
};

using CommDone = std::function<void(const CommStats &)>;

/**
 * Typed description of a fail-stop failure a collective ran into: a
 * chip or link in its ring was **killed** (permanent failure from the
 * fault scenario) and the op aborted after the scenario's detection
 * latency instead of completing. Carries everything a recovery layer
 * needs to rebuild the ring and retry.
 */
struct CollectiveError
{
    /** Collective that aborted ("allgather", "reducescatter", ...). */
    std::string op;
    /** Name of the dead resource ("chip5.hbm", "link.E.b0.r1.c2"). */
    std::string deadResource;
    /** Dead chip id, or -1 when only a link died. */
    int deadChip = -1;
    /**
     * Ring position to evict for the retry: pass it to
     * `TorusMesh::rowRingWithout` / `colRingWithout` as the failed
     * column / row. Always >= 0 for errors surfaced by the
     * recoverable collectives.
     */
    int deadRingPos = -1;
    /** Simulated time the failure was detected (kill + detection). */
    Time detectedAt = 0.0;
};

/** Failure continuation of a recoverable collective. */
using CommFail = std::function<void(const CollectiveError &)>;

/**
 * AllGather on @p ring: every chip contributes @p shard_bytes and ends
 * with all P shards. Completion (with stats) via @p done.
 * @p lane is the trace lane (kLaneHorizontalComm / kLaneVerticalComm).
 */
void ringAllGather(Cluster &cluster, const Ring &ring, Bytes shard_bytes,
                   int lane, CommDone done);

/**
 * ReduceScatter on @p ring: every chip contributes a @p shard_bytes * P
 * partial buffer and ends with one reduced shard of @p shard_bytes.
 * Identical communication pattern (and cost) to AllGather, plus the
 * accumulation's extra HBM read at each step's destination.
 */
void ringReduceScatter(Cluster &cluster, const Ring &ring,
                       Bytes shard_bytes, int lane, CommDone done);

/**
 * SUMMA-style pipelined broadcast of @p total_bytes from ring position
 * @p root_pos to all ring members, streamed as @p packets packets.
 */
void ringBroadcast(Cluster &cluster, const Ring &ring, int root_pos,
                   Bytes total_bytes, int packets, int lane, CommDone done);

/** SUMMA-style pipelined reduce (cost-symmetric to ringBroadcast). */
void ringReduce(Cluster &cluster, const Ring &ring, int root_pos,
                Bytes total_bytes, int packets, int lane, CommDone done);

/**
 * AllReduce on @p ring (the DP gradient primitive): every chip
 * contributes a @p total_bytes partial buffer and receives the full
 * sum. Implemented as ReduceScatter followed by AllGather of
 * total_bytes / P shards; stats cover both phases.
 */
void ringAllReduce(Cluster &cluster, const Ring &ring, Bytes total_bytes,
                   int lane, CommDone done);

/**
 * One synchronized SendRecv rotation: every chip sends @p block_bytes
 * one hop (@p forward picks the direction).
 */
void ringShift(Cluster &cluster, const Ring &ring, Bytes block_bytes,
               bool forward, int lane, CommDone done);

/**
 * Fail-stop-aware AllGather: like `ringAllGather`, but when the fault
 * scenario **kills** a chip or link the op depends on, the op aborts
 * `detectionLatency` seconds after the kill — cancelling its in-flight
 * transfers and pending steps — and reports a `CollectiveError`
 * through @p fail instead of stranding flows until the watchdog. With
 * a null @p fail (or a scenario without kills) behaviour is identical
 * to `ringAllGather`, including bit-identical event sequences.
 */
void ringAllGatherRecoverable(Cluster &cluster, const Ring &ring,
                              Bytes shard_bytes, int lane, CommDone done,
                              CommFail fail);

/** Fail-stop-aware ReduceScatter (see `ringAllGatherRecoverable`). */
void ringReduceScatterRecoverable(Cluster &cluster, const Ring &ring,
                                  Bytes shard_bytes, int lane,
                                  CommDone done, CommFail fail);

/** Which shard collective `runRecoverableCollective` should run. */
enum class RingCollectiveKind
{
    kAllGather,
    kReduceScatter,
};

/** Result of `runRecoverableCollective`: stats of the attempt that
 *  succeeded, plus the failure (if any) that forced the retry. */
struct RecoveryOutcome
{
    /** Stats of the successful attempt (the retry's, if it retried). */
    CommStats stats;
    /** True when the first attempt aborted and the op re-ran on a
     *  ring rebuilt around the dead chip. */
    bool retried = false;
    /** The error of the aborted first attempt (valid iff `retried`). */
    CollectiveError error;
    /** Wall-clock from the first launch to final completion — includes
     *  the failed attempt, the detection latency, and the retry. */
    Time totalTime = 0.0;
};

using RecoveryDone = std::function<void(const RecoveryOutcome &)>;

/**
 * Timeout/retry state machine around a recoverable shard collective
 * (the runtime's fail-stop recovery protocol):
 *
 *   attempt #1 on the mesh's row/col ring
 *     └─ CollectiveError after the detection timeout
 *          └─ rebuild the ring without the dead position
 *             (`rowRingWithout` / `colRingWithout` detour rings)
 *               └─ attempt #2 — a second failure is fatal (named
 *                  resource), matching "retry once" semantics.
 *
 * @p row_ring selects `mesh.rowRing(index)` vs `mesh.colRing(index)`.
 * @p mesh must outlive the completion (rings are rebuilt through it).
 */
void runRecoverableCollective(TorusMesh &mesh, RingCollectiveKind kind,
                              bool row_ring, int index, Bytes shard_bytes,
                              int lane, RecoveryDone done);

/**
 * Number of synchronized steps an AG/RdS performs on a P-ring under the
 * given config (accounts for the bidirectional split). Exposed for the
 * analytical cost model's calibration tests.
 */
int collectiveStepCount(const ChipConfig &cfg, int ring_size);

} // namespace meshslice

#endif // MESHSLICE_NET_COLLECTIVES_HPP_
