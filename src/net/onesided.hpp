/**
 * @file
 * One-sided (RDMA-style) communication primitives on the torus mesh.
 *
 * Brock & Golin's "Slicing Is All You Need" replaces bulk sliced
 * collectives with asynchronous one-sided *gets*: a stationary-C tile
 * pulls the A/B slices it needs directly from the owners' memories,
 * with no global synchronization point anywhere. This file provides
 * the timed primitive on the existing fluid link controllers:
 *
 *  - `OneSidedComm::get`: a routed, timed RDMA get of `bytes` from a
 *    source chip's HBM into the destination chip's HBM along the row
 *    or column ring connecting them. The flow demands every directed
 *    link on the (shortest available) path, both HBMs, and both chips'
 *    NIC queue resources (`Cluster::nicOf`) — so many concurrent gets
 *    landing on one chip queue up at its NIC once the four-link
 *    aggregate bandwidth is exceeded.
 *  - Degraded/dead-link awareness: routing prefers the orientation
 *    whose links are all currently available (`FluidNetwork::
 *    isAvailable`, which reflects `FaultScenario` capacity windows and
 *    kills), falling back to the longer way round.
 *  - Per-get retry instead of collective-wide abort: when the fault
 *    scenario *kills* a resource the get depends on, the get aborts
 *    `detectionLatency` seconds after the kill, cancels its flow, and
 *    retries once over a store-and-forward detour resource (1/3 link
 *    bandwidth, shared per corpse) — re-reading a dead source's slice
 *    from its ring-neighbour replica. The abort and the retry are
 *    recorded as `kRecovery` spans for `sim/critical_path`, so
 *    detoured gets show up under the recovery category. A second kill
 *    during the retry is fatal (one retry is the recovery budget,
 *    matching the collectives' policy).
 *
 * Only the tiles whose gets touch the failed resource pay the detour;
 * every other tile's chain proceeds untouched — the fault-tolerance
 * property the `OneSided` executor builds on.
 */
#ifndef MESHSLICE_NET_ONESIDED_HPP_
#define MESHSLICE_NET_ONESIDED_HPP_

#include <unordered_map>
#include <unordered_set>

#include "net/collectives.hpp"
#include "net/topology.hpp"

namespace meshslice {

/** Which ring a one-sided get routes along. */
enum class GetAxis
{
    kRow, ///< source and destination share a mesh row
    kCol, ///< source and destination share a mesh column
};

/**
 * One-sided get/put engine bound to a mesh. Stateless apart from the
 * per-corpse detour-resource cache (so every retried get around one
 * dead chip contends on the same narrow recovery path) and stats.
 * Construct once per executor run; `get` may be called concurrently
 * (in simulated time) without any coordination between calls.
 */
class OneSidedComm
{
  public:
    explicit OneSidedComm(TorusMesh &mesh) : mesh_(mesh) {}

    /**
     * Timed RDMA get: the chip at (dst_r, dst_c) pulls @p bytes from
     * the chip at (src_r, src_c)'s HBM. The two must share a row
     * (@p axis == kRow) or a column (kCol). @p done receives the
     * get's CommStats (pure transfer: no launch or sync components —
     * batching of launch overhead is the caller's schedule decision).
     * A put is the mirror image with identical cost; model puts by
     * swapping src and dst.
     */
    void get(GetAxis axis, int dst_r, int dst_c, int src_r, int src_c,
             Bytes bytes, int lane, CommDone done);

    TorusMesh &mesh() { return mesh_; }

    /**
     * The shared detour resource used to route around @p chip once it
     * (or a link next to it) is dead: a store-and-forward path through
     * an adjacent ring at 1/3 link bandwidth, registered on first use.
     */
    ResourceId detourAround(int chip);

    /**
     * Membership cache: a chip whose HBM death has already been
     * detected (by an aborted get, or by the executor's death watch).
     * Later gets consult it and go straight to the replica read over
     * the detour instead of re-paying the detection latency — the
     * first detection is broadcast, exactly like a membership service.
     * Only ever populated under kill scenarios, so fault-free runs are
     * bit-identical with or without the cache.
     */
    bool isKnownDead(int chip) const
    {
        return knownDead_.count(chip) != 0;
    }
    void markDead(int chip) { knownDead_.insert(chip); }

  private:
    TorusMesh &mesh_;
    std::unordered_map<int, ResourceId> detours_;
    std::unordered_set<int> knownDead_;
};

} // namespace meshslice

#endif // MESHSLICE_NET_ONESIDED_HPP_
