#include "net/onesided.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/fault.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Store-and-forward hops of a detour route through an adjacent ring
 *  (down, across, up) — the detour resource gets 1/hops bandwidth,
 *  matching the collectives' detour-ring model. */
constexpr double kGetDetourHops = 3.0;

/** Directed links of the @p forward orientation path from ring
 *  position @p src to @p dst. */
std::vector<ResourceId>
pathLinks(const Ring &ring, int src, int dst, bool forward)
{
    const int n = ring.size();
    std::vector<ResourceId> links;
    if (forward) {
        for (int p = src; p != dst; p = (p + 1) % n)
            links.push_back(ring.fwd[static_cast<size_t>(p)]);
    } else {
        for (int p = src; p != dst; p = (p - 1 + n) % n)
            links.push_back(ring.bwd[static_cast<size_t>(p)]);
    }
    return links;
}

bool
allAvailable(Cluster &cluster, const std::vector<ResourceId> &links)
{
    for (ResourceId id : links)
        if (!cluster.net().isAvailable(id))
            return false;
    return true;
}

/**
 * One self-deleting RDMA get: a single fluid flow over the routed path
 * plus both endpoints' HBM and NIC queues. When the fault scenario
 * kills a watched resource, the get aborts after the detection latency
 * and either retries once over the corpse's shared detour resource
 * (source or path failure) or writes the transfer off (destination
 * died — its whole tile is gone; completing keeps the graph draining).
 */
class OneSidedGetOp
{
  public:
    OneSidedGetOp(OneSidedComm &comm, const Ring &ring, int src_pos,
                  int dst_pos, Bytes bytes, int lane, CommDone done)
        : comm_(comm), cluster_(comm.mesh().cluster()), ring_(ring),
          srcPos_(src_pos), dstPos_(dst_pos), bytes_(bytes), lane_(lane),
          done_(std::move(done)), begin_(cluster_.sim().now())
    {
        // Profiler snapshot (same pattern as the collectives): the op
        // is constructed inside a task body or chain scope but records
        // its nodes from event callbacks later.
        SpanRecorder &prof = cluster_.profiler();
        profEnabled_ = prof.enabled();
        if (profEnabled_) {
            profTask_ = prof.currentTask();
            profDeps_ = prof.ambientDeps();
            profRecovery_ = prof.inRecovery();
            if (prof.recoveryDep() >= 0)
                profDeps_.push_back(prof.recoveryDep());
        }

        const int n = ring_.size();
        const int fwd_hops = (dstPos_ - srcPos_ + n) % n;
        const int bwd_hops = n - fwd_hops;
        // Degraded/dead-link-aware routing: shortest orientation first,
        // the long way round if the short one has an unavailable link.
        // Neither available: take the short path anyway — the flow
        // parks through transient capacity windows, and a *kill* on the
        // path is handled by the fail-stop watch below.
        bool forward = fwd_hops <= bwd_hops;
        std::vector<ResourceId> links =
            pathLinks(ring_, srcPos_, dstPos_, forward);
        if (!allAvailable(cluster_, links)) {
            std::vector<ResourceId> other =
                pathLinks(ring_, srcPos_, dstPos_, !forward);
            if (allAvailable(cluster_, other)) {
                forward = !forward;
                links = std::move(other);
            }
        }
        // Membership cache: a corpse already detected by an earlier get
        // (or the executor's death watch) is not re-detected — the
        // detection latency is paid once per corpse, not once per get.
        if (comm_.isKnownDead(dstChip())) {
            // The pulling tile itself is a known corpse: write the get
            // off immediately so the survivors' graph drains.
            cluster_.sim().scheduleAfter(0.0, [this] {
                StatsRegistry &st = cluster_.stats();
                if (st.enabled())
                    st.add("onesided/get/writeoff", 1.0);
                finish(CommStats{}, {});
            });
            return;
        }
        if (comm_.isKnownDead(srcChip())) {
            redirectToReplica();
            return;
        }
        armFailStop(links);
        startFlow(srcChip(), std::move(links));
    }

  private:
    int srcChip() const { return ring_.chips[static_cast<size_t>(srcPos_)]; }
    int dstChip() const { return ring_.chips[static_cast<size_t>(dstPos_)]; }

    SpanCategory
    profCat(SpanCategory cat) const
    {
        return profRecovery_ ? SpanCategory::kRecovery : cat;
    }

    /** Schedule the abort for the earliest kill among the resources the
     *  current attempt depends on (guarded by hasKills, so kill-free
     *  runs stay bit-identical to runs without an injector). */
    void
    armFailStop(const std::vector<ResourceId> &links)
    {
        FaultInjector *inj = cluster_.faults();
        if (!inj || !inj->hasKills())
            return;
        std::vector<ResourceId> watch{cluster_.hbmOf(srcChip()),
                                      cluster_.hbmOf(dstChip())};
        watch.insert(watch.end(), links.begin(), links.end());
        const Time kill =
            inj->earliestKillAfter(cluster_.sim().now(), watch);
        if (kill < 0.0)
            return;
        watchArmed_ = true;
        abortEvent_ = cluster_.sim().schedule(
            kill + inj->detectionLatency(), [this] { abortFailStop(); });
    }

    void
    startFlow(int src_chip, std::vector<ResourceId> links)
    {
        curSrc_ = src_chip;
        links_ = std::move(links);
        const int dst = dstChip();
        std::vector<Demand> demands;
        demands.reserve(links_.size() + 4);
        for (ResourceId id : links_)
            demands.push_back(Demand{id, 1.0});
        if (src_chip != dst) {
            demands.push_back(Demand{cluster_.hbmOf(src_chip), 1.0});
            demands.push_back(Demand{cluster_.nicOf(src_chip), 1.0});
        }
        demands.push_back(Demand{cluster_.hbmOf(dst), 1.0});
        demands.push_back(Demand{cluster_.nicOf(dst), 1.0});
        cluster_.noteCommBytes(bytes_);
        flow_ = cluster_.net().startFlow(
            static_cast<double>(bytes_), std::move(demands),
            [this] { complete(); });
    }

    /** The attempt's flow finished: assemble stats and self-delete. */
    void
    complete()
    {
        if (watchArmed_) {
            cluster_.sim().cancel(abortEvent_);
            watchArmed_ = false;
        }
        CommStats stats;
        stats.total = cluster_.sim().now() - begin_;
        stats.transfer = stats.total;
        stats.bytesPerLink = bytes_;
        const ChipConfig &cfg = cluster_.config();
        const double solo_rate =
            cfg.iciLinkBandwidth / cfg.logicalMeshContention;
        stats.bubble = std::max(
            0.0, stats.transfer - static_cast<double>(bytes_) / solo_rate);
        StatsRegistry &st = cluster_.stats();
        if (st.enabled()) {
            st.add("onesided/get/count", 1.0);
            st.add("onesided/get/bytes", static_cast<double>(bytes_));
            st.observe("onesided/get/total_s", stats.total);
            if (retried_)
                st.add("onesided/get/retry", 1.0);
        }
        if (cluster_.trace().enabled()) {
            cluster_.trace().record("get", "comm", dstChip(), lane_,
                                    begin_, cluster_.sim().now());
        }
        std::vector<int> exits;
        if (profEnabled_) {
            SpanRecorder &prof = cluster_.profiler();
            // The retry leg is a recovery detour rooted at the abort
            // marker; a clean get is a comm span.
            const int node = prof.addNode(
                strprintf("get c%d<-c%d%s", dstChip(), srcChip(),
                          retried_ ? " retry" : ""),
                retried_ ? SpanCategory::kRecovery
                         : profCat(SpanCategory::kComm),
                retried_ ? retryBegin_ : begin_, cluster_.sim().now(),
                retried_ && abortNode_ >= 0 ? std::vector<int>{abortNode_}
                                            : profDeps_,
                dstChip());
            prof.setNodeResource(node, cluster_.net().lastFinishedFlow());
            prof.addTaskExit(profTask_, node);
            exits.push_back(node);
        }
        finish(stats, std::move(exits));
    }

    /** Call `done` inside a chain scope on the final node(s) so the
     *  continuation (e.g. the compute fed by this get's join) records
     *  its dependency on the get. */
    void
    finish(const CommStats &stats, std::vector<int> exits)
    {
        Cluster &cl = cluster_;
        const bool prof_chain = profEnabled_ && !exits.empty();
        const int prof_task = profTask_;
        CommDone done = std::move(done_);
        delete this;
        if (prof_chain)
            cl.profiler().beginChain(prof_task, std::move(exits));
        done(stats);
        if (prof_chain)
            cl.profiler().endChain();
    }

    /**
     * The detection timeout fired. Identify the corpse, cancel the
     * in-flight transfer, and take the per-get recovery action: a dead
     * *destination* writes the get off (the pulling tile is gone, so
     * completing lets the survivors' graph drain); anything else
     * retries once over the corpse's shared detour resource, reading a
     * dead source's slice from its ring-neighbour replica.
     */
    void
    abortFailStop()
    {
        FaultInjector *inj = cluster_.faults();
        watchArmed_ = false;
        const ResourceId src_hbm = cluster_.hbmOf(curSrc_);
        const ResourceId dst_hbm = cluster_.hbmOf(dstChip());
        ResourceId corpse = -1;
        int corpse_chip = -1;
        if (curSrc_ != dstChip() && inj->isKilled(src_hbm)) {
            corpse = src_hbm;
            corpse_chip = curSrc_;
        } else if (inj->isKilled(dst_hbm)) {
            corpse = dst_hbm;
            corpse_chip = dstChip();
        } else {
            const int n = ring_.size();
            for (size_t i = 0; i < links_.size() && corpse < 0; ++i)
                if (inj->isKilled(links_[i])) {
                    corpse = links_[i];
                    // fwd[p]/bwd[p] belong to the chip at position p.
                    int p = srcPos_;
                    for (size_t h = 0; h < i; ++h)
                        p = routeForward() ? (p + 1) % n
                                           : (p - 1 + n) % n;
                    corpse_chip = ring_.chips[static_cast<size_t>(p)];
                }
        }
        if (corpse < 0)
            panic("onesided get: fail-stop abort fired but no killed "
                  "resource was found on the route");
        // First detection broadcasts membership: gets issued from here
        // on skip their own detection window for this corpse.
        if (corpse == src_hbm || corpse == dst_hbm)
            comm_.markDead(corpse_chip);
        cluster_.net().cancelFlow(flow_);
        StatsRegistry &st = cluster_.stats();
        if (st.enabled())
            st.add("onesided/get/abort", 1.0);

        if (profEnabled_) {
            abortNode_ = cluster_.profiler().addNode(
                strprintf("get c%d<-c%d abort", dstChip(), srcChip()),
                SpanCategory::kRecovery, begin_, cluster_.sim().now(),
                profDeps_, dstChip());
        }

        if (retried_) {
            fatal("onesided get (chip %d <- chip %d): retry over the "
                  "detour also hit a dead resource (%s, detected at "
                  "%g s) — one retry is the recovery budget; restart "
                  "from the last checkpoint on the surviving mesh",
                  dstChip(), srcChip(),
                  cluster_.net().resourceName(corpse).c_str(),
                  cluster_.sim().now());
        }
        if (corpse == dst_hbm) {
            // Destination tile is dead: its pull can never land. Write
            // the transfer off so the graph drains; the dead chip's
            // schedule completes vacuously from here on.
            if (st.enabled())
                st.add("onesided/get/writeoff", 1.0);
            CommStats stats;
            stats.total = cluster_.sim().now() - begin_;
            stats.transfer = stats.total;
            std::vector<int> exits;
            if (abortNode_ >= 0) {
                cluster_.profiler().addTaskExit(profTask_, abortNode_);
                exits.push_back(abortNode_);
            }
            finish(stats, std::move(exits));
            return;
        }

        // Retry once over the corpse's shared detour resource. A dead
        // source's slice is re-read from its ring-neighbour replica
        // (the chip that would have forwarded it in a ring collective);
        // a dead path link keeps the original source and just routes
        // around the failure.
        retried_ = true;
        retryBegin_ = cluster_.sim().now();
        int retry_src = srcChip();
        if (corpse == src_hbm) {
            const int n = ring_.size();
            int pos = (srcPos_ + 1) % n;
            if (pos == dstPos_)
                pos = (srcPos_ - 1 + n) % n;
            // On a 2-ring the only survivor is the destination itself:
            // the replica is local and the "get" is an HBM-side re-read.
            retry_src = ring_.chips[static_cast<size_t>(pos)];
        }
        const ResourceId detour = comm_.detourAround(corpse_chip);
        armRetryFailStop(retry_src);
        startFlow(retry_src, {detour});
    }

    /** The source was already a known corpse when this get was issued:
     *  skip the doomed attempt (no second detection window) and read
     *  the slice from its ring-neighbour replica over the corpse's
     *  shared detour. Counts as the get's one retry, so a further kill
     *  on the replica path still exhausts the budget. */
    void
    redirectToReplica()
    {
        retried_ = true;
        retryBegin_ = begin_;
        StatsRegistry &st = cluster_.stats();
        if (st.enabled())
            st.add("onesided/get/redirect", 1.0);
        const int corpse_chip = srcChip();
        const int n = ring_.size();
        int pos = (srcPos_ + 1) % n;
        if (pos == dstPos_)
            pos = (srcPos_ - 1 + n) % n;
        // On a 2-ring the only survivor is the destination itself: the
        // replica is local and the "get" is an HBM-side re-read.
        const int retry_src = ring_.chips[static_cast<size_t>(pos)];
        const ResourceId detour = comm_.detourAround(corpse_chip);
        armRetryFailStop(retry_src);
        startFlow(retry_src, {detour});
    }

    /** Second-kill watch over the retry's endpoints (the detour
     *  resource itself is registered post-arm, so it cannot die). */
    void
    armRetryFailStop(int retry_src)
    {
        FaultInjector *inj = cluster_.faults();
        std::vector<ResourceId> watch{cluster_.hbmOf(retry_src),
                                      cluster_.hbmOf(dstChip())};
        const Time kill =
            inj->earliestKillAfter(cluster_.sim().now(), watch);
        if (kill < 0.0)
            return;
        watchArmed_ = true;
        abortEvent_ = cluster_.sim().schedule(
            kill + inj->detectionLatency(), [this] { abortFailStop(); });
    }

    /** Orientation of `links_` (true = fwd). Only valid when the path
     *  is non-empty; used to map a dead link back to its owner chip. */
    bool
    routeForward() const
    {
        return !links_.empty() &&
               links_[0] == ring_.fwd[static_cast<size_t>(srcPos_)];
    }

    OneSidedComm &comm_;
    Cluster &cluster_;
    const Ring ring_; // copy: caller's Ring may be a temporary
    int srcPos_;
    int dstPos_;
    Bytes bytes_;
    int lane_;
    CommDone done_;
    Time begin_;
    Time retryBegin_ = 0.0;
    /** Source chip of the current attempt (the replica's after a
     *  dead-source retry). */
    int curSrc_ = -1;
    /** Route of the current attempt ({detour} on the retry leg). */
    std::vector<ResourceId> links_;
    FlowId flow_ = -1;
    bool watchArmed_ = false;
    EventId abortEvent_;
    bool retried_ = false;

    bool profEnabled_ = false;
    int profTask_ = -1;
    std::vector<int> profDeps_;
    bool profRecovery_ = false;
    int abortNode_ = -1;
};

} // namespace

ResourceId
OneSidedComm::detourAround(int chip)
{
    auto it = detours_.find(chip);
    if (it != detours_.end())
        return it->second;
    Cluster &cluster = mesh_.cluster();
    const double bw = cluster.config().iciLinkBandwidth /
                      cluster.config().logicalMeshContention /
                      kGetDetourHops;
    const ResourceId id = cluster.net().addResource(
        strprintf("link.detour.get.chip%d", chip), bw);
    detours_.emplace(chip, id);
    return id;
}

void
OneSidedComm::get(GetAxis axis, int dst_r, int dst_c, int src_r, int src_c,
                  Bytes bytes, int lane, CommDone done)
{
    Cluster &cluster = mesh_.cluster();
    if (axis == GetAxis::kRow && src_r != dst_r)
        panic("OneSidedComm::get: row-axis get between rows %d and %d",
              src_r, dst_r);
    if (axis == GetAxis::kCol && src_c != dst_c)
        panic("OneSidedComm::get: col-axis get between cols %d and %d",
              src_c, dst_c);
    if (bytes <= 0 || (src_r == dst_r && src_c == dst_c)) {
        cluster.sim().scheduleAfter(0.0, [done = std::move(done)] {
            done(CommStats{});
        });
        return;
    }
    const Ring &ring = axis == GetAxis::kRow ? mesh_.rowRing(dst_r)
                                             : mesh_.colRing(dst_c);
    const int src_pos = axis == GetAxis::kRow ? src_c : src_r;
    const int dst_pos = axis == GetAxis::kRow ? dst_c : dst_r;
    new OneSidedGetOp(*this, ring, src_pos, dst_pos, bytes, lane,
                      std::move(done));
}

} // namespace meshslice
