#include "run/elastic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/reshard_exec.hpp"
#include "gemm/reshard.hpp"
#include "net/topology.hpp"
#include "pipeline/pipeline_exec.hpp"
#include "sim/abandon.hpp"
#include "sim/stats.hpp"
#include "tuner/robust.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Per-step weight-update scale of the functional state. Elementwise,
 *  so the result is bit-exact across shard layouts and re-shards. */
constexpr float kElasticLr = 0.5f;

/** Linear chip id of a `"chip<i>."` kill pattern; fatal on anything
 *  else — the elastic runtime recovers from whole-chip fail-stops
 *  only (a link kill retires no chip and has no survivor geometry). */
int
chipOfKillPattern(const std::string &pattern, int chips)
{
    const std::string prefix = "chip";
    bool ok = pattern.size() > prefix.size() &&
              pattern.compare(0, prefix.size(), prefix) == 0;
    size_t i = prefix.size();
    int chip = 0;
    bool digits = false;
    while (ok && i < pattern.size() && pattern[i] >= '0' &&
           pattern[i] <= '9') {
        chip = chip * 10 + (pattern[i] - '0');
        digits = true;
        ++i;
    }
    if (!ok || !digits || i != pattern.size() - 1 || pattern[i] != '.')
        fatal("runElastic: kill pattern \"%s\" is not a whole-chip kill "
              "(\"chip<i>.\") — the elastic runtime recovers from chip "
              "fail-stops only", pattern.c_str());
    if (chip < 0 || chip >= chips)
        fatal("runElastic: kill pattern \"%s\" addresses a chip outside "
              "the %d-chip cluster", pattern.c_str(), chips);
    return chip;
}

/** m, k and n all divide both axes of @p shape — the precondition for
 *  exact operand re-shard plans and functional scatter. */
bool
fullyDivides(const Gemm2DSpec &spec, MeshShape shape)
{
    return spec.m % shape.rows == 0 && spec.m % shape.cols == 0 &&
           spec.k % shape.rows == 0 && spec.k % shape.cols == 0 &&
           spec.n % shape.rows == 0 && spec.n % shape.cols == 0;
}

/** Forward-pass 1D spec of a 2D GeMM spec (same construction as the
 *  fault study's): activations move for 1D TP, weights for FSDP. */
Gemm1DSpec
to1DSpec(const Gemm2DSpec &spec, Algorithm algo)
{
    Gemm1DSpec s;
    s.m = spec.m;
    s.k = spec.k;
    s.n = spec.n;
    s.chips = spec.chips();
    s.sliceCount = spec.sliceCount;
    s.bytesPerElement = spec.bytesPerElement;
    const Bytes e = spec.bytesPerElement;
    if (algo == Algorithm::kOneDTP) {
        s.commBytes = spec.m * spec.k * e;
        s.commIsReduce = false;
        s.local = GemmWork{spec.m, spec.k, spec.n / s.chips};
    } else { // FSDP
        s.commBytes = spec.k * spec.n * e;
        s.commIsReduce = false;
        s.local = GemmWork{spec.m / s.chips, spec.k, spec.n};
    }
    return s;
}

/** Closed-form checkpoint span matching `runCheckpoint` when nothing
 *  else contends: per-chip rate = min(HBM, target/chips). */
Time
checkpointModelCost(const ChipConfig &cfg, int chips, Bytes bytes_per_chip,
                    Rate target_bw)
{
    const Rate rate = std::min(cfg.hbmBandwidth,
                               target_bw / static_cast<double>(chips));
    return cfg.launchOverhead +
           static_cast<double>(bytes_per_chip) / rate + cfg.syncLatency;
}

/** Outcome of one phase simulation (step / checkpoint / re-shard). */
struct PhaseOut
{
    Time span = 0.0; ///< committed span, or kill + detection if failed
    std::uint64_t events = 0;
    bool failed = false;
    Cluster::Failure failure;
    double cat[kSpanCategoryCount] = {0, 0, 0, 0, 0, 0, 0};
};

void
foldProfile(Cluster &cluster, PhaseOut &out)
{
    if (!cluster.profiler().enabled())
        return;
    const Attribution attr =
        extractCriticalPath(cluster.profiler().nodes());
    for (int i = 0; i < kSpanCategoryCount; ++i)
        out.cat[i] = attr.byCategory[i];
}

/** The single kill of @p sliced, or a negative time when none. */
Time
killTimeOf(const FaultScenario *sliced)
{
    if (sliced == nullptr || sliced->kills.empty())
        return -1.0;
    return sliced->kills.front().at;
}

/**
 * Classify a finished phase: a kill that fired before the phase's
 * measured end consumed it (abort paths measure exactly
 * kill + detection; a schedule that absorbed the kill — OneSided —
 * completed but its corpse-resident results are lost). The recovery
 * transaction starts at kill + detection either way.
 */
void
classifyKill(const FaultScenario *sliced, int chips, Time measured,
             bool handler_failed, const Cluster::Failure &handler_failure,
             PhaseOut &out)
{
    const Time kill_at = killTimeOf(sliced);
    const bool killed =
        handler_failed || (kill_at >= 0.0 && kill_at < measured);
    if (!killed) {
        out.span = measured;
        return;
    }
    out.failed = true;
    out.span = kill_at + sliced->detectionLatency;
    if (handler_failed) {
        out.failure = handler_failure;
        if (out.failure.deadChip < 0)
            out.failure.deadChip =
                chipOfKillPattern(sliced->kills.front().pattern, chips);
    } else {
        out.failure.op = "elastic.watchdog";
        out.failure.deadResource = sliced->kills.front().pattern;
        out.failure.deadChip =
            chipOfKillPattern(sliced->kills.front().pattern, chips);
        out.failure.detectedAt = out.span;
    }
}

/**
 * Arm the runtime's own detection watchdog: a kill the schedule
 * absorbs (OneSided) or parks on (a compute-only tail with no
 * collective fail-stop watch live) would otherwise drain to the
 * quiescence abort. Fires at kill + detection; a no-op when the
 * simulator already stopped (a collective's abort won the race —
 * deterministic: same time, lower sequence number wins).
 */
void
armElasticWatchdog(Cluster &cluster, const FaultScenario &sliced)
{
    if (sliced.kills.empty())
        return;
    const Time at =
        sliced.kills.front().at + sliced.detectionLatency;
    Cluster *cl = &cluster;
    cluster.sim().scheduleAfter(at, [cl] {
        if (!cl->sim().stopRequested())
            cl->sim().requestStop();
    });
}

/** One GeMM training step on a fresh cluster at local t = 0. */
PhaseOut
runGemmStepPhase(const ChipConfig &cfg, Algorithm algo,
                 const Gemm2DSpec &spec, const FaultScenario *sliced,
                 bool profile)
{
    PhaseOut out;
    const bool is_1d =
        algo == Algorithm::kOneDTP || algo == Algorithm::kFsdp;
    Cluster cluster(cfg, spec.chips());
    // Declared after the cluster so the destructor sweep (reclaiming
    // ring ops / joins orphaned by a mid-schedule abort) runs while
    // the cluster is still alive.
    AbandonRegistry abandoned;
    ScopedAbandonRegistry abandonScope(abandoned);
    if (profile)
        cluster.enableProfiler(true);
    FaultInjector injector(cluster.sim(), cluster.net(),
                           sliced ? *sliced : FaultScenario{});
    bool handler_failed = false;
    Cluster::Failure handler_failure;
    cluster.setFailStopHandler([&](const Cluster::Failure &f) {
        if (!handler_failed) {
            handler_failed = true;
            handler_failure = f;
        }
    });
    GemmRunResult res;
    if (is_1d) {
        RingNetwork ring(cluster);
        if (sliced) {
            injector.arm();
            cluster.attachFaults(&injector);
            armElasticWatchdog(cluster, *sliced);
        }
        res = runGemm1D(ring, to1DSpec(spec, algo), algo);
    } else {
        TorusMesh mesh(cluster, spec.rows, spec.cols);
        if (sliced) {
            injector.arm();
            cluster.attachFaults(&injector);
            armElasticWatchdog(cluster, *sliced);
        }
        GemmExecutor executor(mesh);
        res = executor.run(algo, spec);
    }
    out.events = cluster.sim().eventsProcessed();
    classifyKill(sliced, spec.chips(), res.time, handler_failed,
                 handler_failure, out);
    foldProfile(cluster, out);
    return out;
}

/** One pipeline step on a fresh cluster (kill-free by validation). */
PhaseOut
runPipelineStepPhase(const ChipConfig &cfg, const Gemm2DSpec &spec,
                     const ElasticPipelineSpec &pipe,
                     const FaultScenario *sliced, bool profile)
{
    PhaseOut out;
    const int chips = pipe.stages * spec.rows * spec.cols;
    Cluster cluster(cfg, chips);
    AbandonRegistry abandoned;
    ScopedAbandonRegistry abandonScope(abandoned);
    if (profile)
        cluster.enableProfiler(true);
    PipelineCluster pc(cluster, pipe.stages, spec.rows, spec.cols);
    FaultInjector injector(cluster.sim(), cluster.net(),
                           sliced ? *sliced : FaultScenario{});
    if (sliced) {
        injector.arm();
        cluster.attachFaults(&injector);
    }
    const PipelineRunResult res = runPipeline(pc, pipe.exec);
    out.span = res.time;
    out.events = cluster.sim().eventsProcessed();
    foldProfile(cluster, out);
    return out;
}

/**
 * One timed checkpoint on a fresh cluster. Checkpoint flows touch only
 * HBMs and the shared target, so link-pattern windows are filtered out
 * of the armed scenario (they could not resolve on this link-less
 * cluster and could not bind its flows anyway); chip-addressed windows,
 * stragglers and the kill stay live.
 */
PhaseOut
runCheckpointPhase(const ChipConfig &cfg, int chips,
                   const CheckpointSpec &spec, const FaultScenario *sliced,
                   bool profile)
{
    PhaseOut out;
    FaultScenario filtered;
    bool armed = false;
    if (sliced) {
        filtered = *sliced;
        std::vector<CapacityFault> chip_faults;
        for (const CapacityFault &f : filtered.faults)
            if (f.pattern.compare(0, 4, "chip") == 0)
                chip_faults.push_back(f);
        filtered.faults = std::move(chip_faults);
        armed = !filtered.empty();
    }
    Cluster cluster(cfg, chips);
    AbandonRegistry abandoned;
    ScopedAbandonRegistry abandonScope(abandoned);
    if (profile)
        cluster.enableProfiler(true);
    FaultInjector injector(cluster.sim(), cluster.net(), filtered);
    if (armed) {
        injector.arm();
        cluster.attachFaults(&injector);
    }
    bool done = false;
    Time span = 0.0;
    if (armed)
        armElasticWatchdog(cluster, filtered);
    runCheckpoint(cluster, spec, [&](Time t) {
        done = true;
        span = t;
    });
    cluster.sim().run();
    if (!done) {
        if (!cluster.sim().stopRequested())
            panic("runElastic: checkpoint phase did not drain");
        // The watchdog stopped a checkpoint parked on a corpse.
        span = killTimeOf(sliced) + sliced->detectionLatency;
    }
    out.events = cluster.sim().eventsProcessed();
    classifyKill(sliced, chips, span, false, Cluster::Failure{}, out);
    foldProfile(cluster, out);
    return out;
}

/** Exact combined re-shard plan of the three live operands. */
ReshardPlan
liveStatePlan(const Gemm2DSpec &spec, const SurvivorMesh &sv)
{
    const ReshardPlan a =
        planReshard(spec.m, spec.k, spec.bytesPerElement, sv);
    const ReshardPlan b =
        planReshard(spec.k, spec.n, spec.bytesPerElement, sv);
    const ReshardPlan w =
        planReshard(spec.m, spec.n, spec.bytesPerElement, sv);
    ReshardPlan out;
    out.from = a.from;
    out.to = a.to;
    for (const ReshardPlan *p : {&a, &b, &w}) {
        out.moves.insert(out.moves.end(), p->moves.begin(),
                         p->moves.end());
        out.totalBytes += p->totalBytes;
        out.localBytes += p->localBytes;
    }
    for (const ReshardChipTraffic &t : reshardChipTraffic(out)) {
        out.maxChipIngress = std::max(out.maxChipIngress, t.ingress);
        out.maxChipEgress = std::max(out.maxChipEgress, t.egress);
    }
    return out;
}

/** The enacted recovery re-shard on a fresh old-shape cluster. */
PhaseOut
runRecoveryReshardPhase(const ChipConfig &cfg, const Gemm2DSpec &spec,
                        const ReshardPlan &plan, int dead_chip,
                        Rate restore_bw, bool profile)
{
    PhaseOut out;
    Cluster cluster(cfg, spec.chips());
    AbandonRegistry abandoned;
    ScopedAbandonRegistry abandonScope(abandoned);
    if (profile) {
        cluster.enableProfiler(true);
        const int marker = cluster.profiler().addNode(
            "fail-stop abort", SpanCategory::kRecovery, 0.0, 0.0, {},
            dead_chip);
        cluster.profiler().beginRecovery(marker);
    }
    bool done = false;
    Time span = 0.0;
    runRecoveryReshard(cluster, plan, dead_chip, restore_bw,
                       [&](Time t) {
                           done = true;
                           span = t;
                       });
    cluster.sim().run();
    if (profile)
        cluster.profiler().endRecovery();
    if (!done)
        panic("runElastic: recovery re-shard did not drain");
    out.span = span;
    out.events = cluster.sim().eventsProcessed();
    foldProfile(cluster, out);
    return out;
}

/** Functional training state: A, B and the weight accumulator W are
 *  live `DistMatrix`es; P = A*B is the dense per-step update. */
struct FunctionalState
{
    Matrix aFull, bFull, pFull, w0Full;
    DistMatrix a, b, w, p;
    DistMatrix ckptW; ///< W snapshot at the last checkpoint
};

void
initFunctional(FunctionalState &fs, const Gemm2DSpec &spec,
               std::uint64_t seed)
{
    const MeshShape mesh{spec.rows, spec.cols};
    fs.aFull = Matrix::random(spec.m, spec.k, seed);
    fs.bFull = Matrix::random(spec.k, spec.n, seed + 1);
    fs.w0Full = Matrix::random(spec.m, spec.n, seed + 2);
    fs.pFull = Matrix::gemm(fs.aFull, fs.bFull);
    fs.a = DistMatrix::scatter(fs.aFull, mesh);
    fs.b = DistMatrix::scatter(fs.bFull, mesh);
    fs.w = DistMatrix::scatter(fs.w0Full, mesh);
    fs.p = DistMatrix::scatter(fs.pFull, mesh);
    fs.ckptW = fs.w;
}

/** W += lr * P, shard-wise (elementwise, so layout-independent). */
void
applyStepUpdate(DistMatrix &w, const DistMatrix &p)
{
    for (int r = 0; r < w.mesh().rows; ++r) {
        for (int c = 0; c < w.mesh().cols; ++c) {
            Matrix &ws = w.shardAt(r, c);
            const Matrix &ps = p.shardAt(r, c);
            float *wd = ws.data();
            const float *pd = ps.data();
            const std::int64_t n = ws.rows() * ws.cols();
            for (std::int64_t i = 0; i < n; ++i)
                wd[i] += kElasticLr * pd[i];
        }
    }
}

/** The serial reference of the final W: W0 then `steps` elementwise
 *  updates, the exact per-element operation sequence the distributed
 *  run applies regardless of shard layout or mid-run re-shards. */
Matrix
referenceFinalW(const FunctionalState &fs, int steps)
{
    Matrix ref = fs.w0Full;
    float *rd = ref.data();
    const float *pd = fs.pFull.data();
    const std::int64_t n = ref.rows() * ref.cols();
    for (int s = 0; s < steps; ++s)
        for (std::int64_t i = 0; i < n; ++i)
            rd[i] += kElasticLr * pd[i];
    return ref;
}

void
recordPhase(std::vector<ElasticPhase> &phases, StatsRegistry &agg,
            ElasticPhase::Kind kind, int index, Time start,
            const PhaseOut &out)
{
    ElasticPhase ph;
    ph.kind = kind;
    ph.index = index;
    ph.start = start;
    ph.span = out.span;
    ph.events = out.events;
    ph.committed = !out.failed;
    const std::string base =
        strprintf("elastic/phase%03d", static_cast<int>(phases.size()));
    agg.set(base + "/kind", static_cast<double>(kind));
    agg.set(base + "/index", index);
    agg.set(base + "/span_s", out.span);
    agg.set(base + "/events", static_cast<double>(out.events));
    agg.set(base + "/committed", out.failed ? 0.0 : 1.0);
    phases.push_back(ph);
}

void
validateElasticConfig(const ElasticRunConfig &run, int chips0)
{
    if (run.steps <= 0)
        fatal("runElastic: steps must be positive (got %d)", run.steps);
    if (run.pipeline.enabled) {
        if (run.pipeline.stages < 1)
            fatal("runElastic: pipeline stages must be >= 1 (got %d)",
                  run.pipeline.stages);
        if (run.functionalState)
            fatal("runElastic: functional state is defined for the GeMM "
                  "step body, not pipeline schedules");
    }
    if (run.haveScenario) {
        validateScenario(run.scenario, "runElastic scenario");
        if (run.scenario.kills.size() > 1)
            fatal("runElastic: the elastic runtime recovers from at most "
                  "one fail-stop per run (scenario has %d kills)",
                  static_cast<int>(run.scenario.kills.size()));
        if (!run.scenario.kills.empty()) {
            if (run.pipeline.enabled)
                fatal("runElastic: fail-stop recovery is not implemented "
                      "for pipeline step bodies (stage retirement needs "
                      "a schedule re-plan) — use a kill-free scenario");
            chipOfKillPattern(run.scenario.kills.front().pattern, chips0);
            if (!(run.scenario.detectionLatency > 0.0))
                fatal("runElastic: fail-stop recovery requires a "
                      "strictly positive detection latency");
            if (!(run.checkpointTargetBandwidth > 0.0))
                fatal("runElastic: recovery restores the corpse's blocks "
                      "from the checkpoint target — "
                      "checkpointTargetBandwidth must be positive when "
                      "the scenario kills a chip");
            if (!fullyDivides(run.spec,
                              MeshShape{run.spec.rows, run.spec.cols}))
                fatal("runElastic: fail-stop recovery re-shards all "
                      "three operands exactly, so m, k and n must "
                      "divide both mesh axes");
        }
    }
    if (run.functionalState &&
        !fullyDivides(run.spec, MeshShape{run.spec.rows, run.spec.cols}))
        fatal("runElastic: functional state scatters A, B and W, so m, "
              "k and n must divide both mesh axes");
}

} // namespace

const char *
elasticPhaseKindName(ElasticPhase::Kind kind)
{
    switch (kind) {
      case ElasticPhase::Kind::kStep:
        return "step";
      case ElasticPhase::Kind::kCheckpoint:
        return "checkpoint";
      case ElasticPhase::Kind::kRecovery:
        return "recovery";
    }
    return "?";
}

ElasticRunResult
runElastic(const ChipConfig &cfg, const ElasticRunConfig &run)
{
    const int chips0 =
        run.pipeline.enabled
            ? run.pipeline.stages * run.spec.rows * run.spec.cols
            : run.spec.chips();
    validateElasticConfig(run, chips0);

    const bool ckpt_on = run.checkpointBytesPerChip > 0 &&
                         run.checkpointTargetBandwidth > 0.0;
    const double live_bytes =
        static_cast<double>(run.spec.bytesPerElement) *
        (static_cast<double>(run.spec.m) * run.spec.k +
         static_cast<double>(run.spec.k) * run.spec.n +
         static_cast<double>(run.spec.m) * run.spec.n);

    // Checkpoint interval: explicit, or the Young–Daly optimum of this
    // cluster's recovery economics.
    Time interval = 0.0;
    if (ckpt_on) {
        if (run.checkpointInterval > 0.0) {
            interval = run.checkpointInterval;
        } else {
            if (!(run.chipMtbf > 0.0))
                fatal("runElastic: set checkpointInterval or a positive "
                      "chipMtbf to solve the Young-Daly interval");
            TrainingRunModel m;
            m.checkpointBytesPerChip = run.checkpointBytesPerChip;
            m.chipMtbf = run.chipMtbf;
            m.chips = chips0;
            m.detectionLatency =
                run.haveScenario ? run.scenario.detectionLatency : 0.5;
            m.restartTime = run.restartTime;
            const std::vector<SurvivorMesh> opts = survivorOptionsForChip(
                MeshShape{run.spec.rows, run.spec.cols}, 0);
            m.reshardTime = reshardTimeModel(
                cfg, reshardBytesModel(live_bytes, opts.front()),
                opts.front().to().chips());
            interval = evaluateTrainingRun(cfg, m).optimalInterval;
        }
    }

    StatsRegistry agg;
    agg.enable(true);

    FunctionalState fs;
    if (run.functionalState)
        initFunctional(fs, run.spec, run.functionalSeed);

    ElasticRunResult result;
    result.finalSpec = run.spec;
    result.finalAlgo = run.algo;

    // Fault-free probe: the measured full-mesh step time anchoring
    // both the goodput denominator and the analytic prediction. Runs
    // on its own cluster; the main loop's phases are unaffected.
    {
        const PhaseOut probe =
            run.pipeline.enabled
                ? runPipelineStepPhase(cfg, run.spec, run.pipeline,
                                       nullptr, false)
                : runGemmStepPhase(cfg, run.algo, run.spec, nullptr,
                                   false);
        result.stepTimeFullMesh = probe.span;
    }

    FaultScenario live = run.scenario; // global-time; remapped on shrink
    Gemm2DSpec spec_cur = run.spec;
    Algorithm algo_cur = run.algo;
    Time wall = 0.0;
    Time useful_since_ckpt = 0.0;
    int step = 0;
    int last_ckpt_step = 0;
    Time survivor_step_est = 0.0;
    Time survivor_reshard_est = 0.0;

    while (step < run.steps) {
        const std::uint64_t step_seed =
            derivePhaseSeed(run.scenario.seed,
                            static_cast<std::uint64_t>(step));
        FaultScenario sliced;
        const FaultScenario *sp = nullptr;
        if (run.haveScenario) {
            sliced = sliceScenarioForPhase(live, wall, step_seed);
            sp = &sliced;
        }
        const PhaseOut out =
            run.pipeline.enabled
                ? runPipelineStepPhase(cfg, spec_cur, run.pipeline, sp,
                                       run.profile)
                : runGemmStepPhase(cfg, algo_cur, spec_cur, sp,
                                   run.profile);
        recordPhase(result.phases, agg, ElasticPhase::Kind::kStep, step,
                    wall, out);
        for (int i = 0; i < kSpanCategoryCount; ++i)
            result.pathSeconds[i] += out.cat[i];

        if (!out.failed) {
            wall += out.span;
            useful_since_ckpt += out.span;
            ++step;
            if (run.functionalState)
                applyStepUpdate(fs.w, fs.p);
            if (step < run.steps && ckpt_on &&
                useful_since_ckpt >= interval) {
                const std::uint64_t ckpt_seed = derivePhaseSeed(
                    run.scenario.seed,
                    0x10000u + static_cast<std::uint64_t>(
                                   result.checkpoints));
                FaultScenario csliced;
                const FaultScenario *cp = nullptr;
                if (run.haveScenario) {
                    csliced =
                        sliceScenarioForPhase(live, wall, ckpt_seed);
                    cp = &csliced;
                }
                CheckpointSpec cspec;
                cspec.bytesPerChip = run.checkpointBytesPerChip;
                cspec.targetBandwidth = run.checkpointTargetBandwidth;
                const int cur_chips =
                    run.pipeline.enabled
                        ? run.pipeline.stages * spec_cur.rows *
                              spec_cur.cols
                        : spec_cur.chips();
                const PhaseOut cout = runCheckpointPhase(
                    cfg, cur_chips, cspec, cp, run.profile);
                recordPhase(result.phases, agg,
                            ElasticPhase::Kind::kCheckpoint,
                            result.checkpoints, wall, cout);
                for (int i = 0; i < kSpanCategoryCount; ++i)
                    result.pathSeconds[i] += cout.cat[i];
                if (cout.failed) {
                    goto recovery; // NOLINT: single recovery funnel
                }
                wall += cout.span;
                ++result.checkpoints;
                useful_since_ckpt = 0.0;
                last_ckpt_step = step;
                if (run.functionalState)
                    fs.ckptW = fs.w;
            }
            continue;
        }

      recovery: {
        // The recovery transaction. Exactly one per run: the scenario
        // carries at most one kill, and a second fail-stop would have
        // no kill left to be attributed to.
        if (result.recovered)
            fatal("runElastic: a second fail-stop was observed — the "
                  "elastic runtime recovers from one kill per run");
        const ElasticPhase &aborted = result.phases.back();
        const int dead = aborted.kind == ElasticPhase::Kind::kStep
                             ? out.failure.deadChip
                             : chipOfKillPattern(
                                   live.kills.front().pattern,
                                   spec_cur.chips());
        result.recovered = true;
        result.deadChip = dead;
        result.redoneSteps = step - last_ckpt_step;
        result.detectionSpan = run.scenario.detectionLatency;
        wall += aborted.span; // local kill time + detection

        // Incremental re-plan: phase 1/2 (calibration, shape sweep)
        // are reused — only the survivor ranking is redone. Cannon
        // cannot survive a one-line shrink (squareness), so it
        // re-plans onto MeshSlice.
        const Algorithm post_algo = algo_cur == Algorithm::kCannon
                                        ? Algorithm::kMeshSlice
                                        : algo_cur;
        const CostModel cost = CostModel::calibrated(cfg);
        const ReplanResult rp = replanAfterFailure(
            cost, post_algo, spec_cur, dead, run.steps - last_ckpt_step);
        int pick = -1;
        for (size_t i = 0; i < rp.candidates.size(); ++i) {
            const ReplanCandidate &cand = rp.candidates[i];
            if (!cand.feasible ||
                !fullyDivides(spec_cur, cand.mesh.to()))
                continue;
            if (pick < 0 ||
                cand.objective <
                    rp.candidates[static_cast<size_t>(pick)].objective)
                pick = static_cast<int>(i);
        }
        if (pick < 0)
            fatal("runElastic: no survivor mesh of %dx%d can host the "
                  "run after chip %d died", spec_cur.rows, spec_cur.cols,
                  dead);
        const ReplanCandidate &cand =
            rp.candidates[static_cast<size_t>(pick)];
        const SurvivorMesh sv = cand.mesh;
        survivor_step_est = cand.stepTime;
        survivor_reshard_est = cand.reshardTime;
        result.replanSpan = run.restartTime;
        wall += run.restartTime;

        // The enacted re-shard: all three live operands, survivor
        // blocks over real links, corpse blocks from the checkpoint
        // target.
        const ReshardPlan plan = liveStatePlan(spec_cur, sv);
        const PhaseOut rout = runRecoveryReshardPhase(
            cfg, spec_cur, plan, dead, run.checkpointTargetBandwidth,
            run.profile);
        recordPhase(result.phases, agg, ElasticPhase::Kind::kRecovery, 0,
                    wall, rout);
        for (int i = 0; i < kSpanCategoryCount; ++i)
            result.pathSeconds[i] += rout.cat[i];
        result.reshardSpan = rout.span;
        wall += rout.span;
        agg.set("elastic/recovery/detect_s", result.detectionSpan);
        agg.set("elastic/recovery/replan_s", result.replanSpan);
        agg.set("elastic/recovery/reshard_s", result.reshardSpan);
        agg.set("elastic/recovery/reshard_bytes",
                static_cast<double>(plan.totalBytes));

        // Rollback: restore the last checkpoint's functional state and
        // re-shard everything onto the survivor mesh (bit-exact).
        if (run.functionalState) {
            fs.w = reshard(fs.ckptW, sv);
            fs.a = reshard(fs.a, sv);
            fs.b = reshard(fs.b, sv);
            fs.p = DistMatrix::scatter(fs.pFull, sv.to());
            fs.ckptW = fs.w;
            if (fs.a.gather().maxAbsDiff(fs.aFull) != 0.0 ||
                fs.b.gather().maxAbsDiff(fs.bFull) != 0.0)
                fatal("runElastic: functional re-shard corrupted A/B — "
                      "reshard() must be a bit-exact redistribution");
        }
        if (run.haveScenario) {
            FaultScenario stripped = live;
            stripped.kills.clear();
            live = remapScenarioChips(stripped, oldToNewChipMap(sv));
        }
        spec_cur = cand.spec;
        algo_cur = post_algo;
        result.finalSpec = spec_cur;
        result.finalAlgo = algo_cur;
        step = last_ckpt_step;
        useful_since_ckpt = 0.0;
      }
    }

    result.wall = wall;
    result.usefulTime = run.steps * result.stepTimeFullMesh;
    result.goodput = wall > 0.0 ? result.usefulTime / wall : 0.0;

    if (run.functionalState) {
        result.functionalChecked = true;
        const Matrix ref = referenceFinalW(fs, run.steps);
        result.functionalOk = fs.w.gather().maxAbsDiff(ref) == 0.0;
    }

    // Analytic mirror: measured full-mesh step time + closed-form
    // phase models walked through the same state machine.
    {
        ElasticPredictionInput pin;
        pin.steps = run.steps;
        pin.stepTime = result.stepTimeFullMesh;
        pin.survivorStepTime =
            result.recovered ? survivor_step_est : result.stepTimeFullMesh;
        if (ckpt_on) {
            pin.checkpointCost = checkpointModelCost(
                cfg, chips0, run.checkpointBytesPerChip,
                run.checkpointTargetBandwidth);
            const int surv_chips =
                run.pipeline.enabled
                    ? run.pipeline.stages * result.finalSpec.rows *
                          result.finalSpec.cols
                    : result.finalSpec.chips();
            pin.survivorCheckpointCost = checkpointModelCost(
                cfg, surv_chips, run.checkpointBytesPerChip,
                run.checkpointTargetBandwidth);
            pin.checkpointInterval = interval;
        }
        if (run.haveScenario && !run.scenario.kills.empty()) {
            pin.killTime = run.scenario.kills.front().at;
            pin.detectionLatency = run.scenario.detectionLatency;
            pin.replanTime = run.restartTime;
            pin.reshardTime = survivor_reshard_est;
        }
        result.predicted = predictElasticWall(pin);
        result.modelError =
            result.predicted.wall > 0.0
                ? std::abs(result.wall - result.predicted.wall) /
                      result.predicted.wall
                : 0.0;
    }

    agg.set("elastic/steps", run.steps);
    agg.set("elastic/wall_s", result.wall);
    agg.set("elastic/useful_s", result.usefulTime);
    agg.set("elastic/goodput", result.goodput);
    agg.set("elastic/step_full_mesh_s", result.stepTimeFullMesh);
    agg.set("elastic/checkpoints", result.checkpoints);
    agg.set("elastic/redone_steps", result.redoneSteps);
    agg.set("elastic/recovered", result.recovered ? 1.0 : 0.0);
    agg.set("elastic/predicted/wall_s", result.predicted.wall);
    agg.set("elastic/predicted/goodput", result.predicted.goodput);
    agg.set("elastic/predicted/checkpoints", result.predicted.checkpoints);
    agg.set("elastic/predicted/redone_steps",
            result.predicted.redoneSteps);
    agg.set("elastic/model_error", result.modelError);
    if (result.functionalChecked)
        agg.set("elastic/functional_ok",
                result.functionalOk ? 1.0 : 0.0);
    result.statsJson = agg.toJson();
    return result;
}

PlainRunResult
runPlainSteps(const ChipConfig &cfg, const ElasticRunConfig &run)
{
    const int chips0 =
        run.pipeline.enabled
            ? run.pipeline.stages * run.spec.rows * run.spec.cols
            : run.spec.chips();
    if (run.steps <= 0)
        fatal("runPlainSteps: steps must be positive (got %d)",
              run.steps);
    (void)chips0;

    PlainRunResult result;
    FunctionalState fs;
    if (run.functionalState) {
        if (run.pipeline.enabled)
            fatal("runPlainSteps: functional state is defined for the "
                  "GeMM step body, not pipeline schedules");
        initFunctional(fs, run.spec, run.functionalSeed);
    }
    Time wall = 0.0;
    StatsRegistry sink; // phases recorded for the caller, stats unused
    for (int step = 0; step < run.steps; ++step) {
        const std::uint64_t step_seed =
            derivePhaseSeed(run.scenario.seed,
                            static_cast<std::uint64_t>(step));
        FaultScenario sliced;
        const FaultScenario *sp = nullptr;
        if (run.haveScenario) {
            sliced = sliceScenarioForPhase(run.scenario, wall, step_seed);
            sp = &sliced;
        }
        const PhaseOut out =
            run.pipeline.enabled
                ? runPipelineStepPhase(cfg, run.spec, run.pipeline, sp,
                                       false)
                : runGemmStepPhase(cfg, run.algo, run.spec, sp, false);
        if (out.failed)
            fatal("runPlainSteps: a fail-stop fired inside step %d — "
                  "the plain loop has no recovery; use runElastic",
                  step);
        recordPhase(result.steps, sink, ElasticPhase::Kind::kStep, step,
                    wall, out);
        wall += out.span;
        if (run.functionalState)
            applyStepUpdate(fs.w, fs.p);
    }
    result.wall = wall;
    if (run.functionalState) {
        result.functionalChecked = true;
        const Matrix ref = referenceFinalW(fs, run.steps);
        result.functionalOk = fs.w.gather().maxAbsDiff(ref) == 0.0;
    }
    return result;
}

std::string
elasticTraceJson(const ElasticRunResult &r)
{
    std::string out;
    for (const ElasticPhase &ph : r.phases) {
        out += strprintf(
            "{\"phase\":%s,\"index\":%d,\"start_s\":%s,\"span_s\":%s,"
            "\"events\":%llu,\"committed\":%s}\n",
            jsonString(elasticPhaseKindName(ph.kind)).c_str(), ph.index,
            jsonNumber(ph.start).c_str(), jsonNumber(ph.span).c_str(),
            static_cast<unsigned long long>(ph.events),
            ph.committed ? "true" : "false");
    }
    out += strprintf(
        "{\"phase\":\"summary\",\"wall_s\":%s,\"goodput\":%s,"
        "\"checkpoints\":%d,\"redone_steps\":%d,\"recovered\":%s,"
        "\"predicted_wall_s\":%s,\"model_error\":%s}\n",
        jsonNumber(r.wall).c_str(), jsonNumber(r.goodput).c_str(),
        r.checkpoints, r.redoneSteps, r.recovered ? "true" : "false",
        jsonNumber(r.predicted.wall).c_str(),
        jsonNumber(r.modelError).c_str());
    return out;
}

void
writeElasticTrace(const ElasticRunResult &r, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("writeElasticTrace: cannot open %s", path.c_str());
    const std::string text = elasticTraceJson(r);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace meshslice
