/**
 * @file
 * Elastic training-run runtime: enacted checkpoint/restart, mid-run
 * re-shard + re-plan, and deterministic fault recovery.
 *
 * `runElastic` drives N simulated training steps of one distributed
 * GeMM algorithm (any of the eight) or one pipeline schedule, with the
 * recovery machinery *enacted* rather than merely priced:
 *
 *  - every phase (step, checkpoint, recovery re-shard) runs on its own
 *    fresh `Cluster` at local t = 0 while a global wall clock
 *    accumulates the phase spans — which is what makes a fault-free
 *    elastic run bit-identical to the plain step loop
 *    (`runPlainSteps`) and the whole run invariant to
 *    `MESHSLICE_THREADS`;
 *  - at the configured (or Young–Daly) interval the run emits a timed
 *    checkpoint (`runCheckpoint`): per-chip HBM reads contending on a
 *    shared checkpoint target, recorded as `kCheckpoint` spans;
 *  - a `KillFault` triggers the full recovery transaction live:
 *    detection (the collective's fail-stop abort, or the runtime's own
 *    watchdog when the schedule absorbs the kill), an incremental
 *    re-plan on the degraded geometry (`replanAfterFailure` — reuses
 *    the calibrated cost model, redoes only the ranking), a simulated
 *    recovery re-shard (`runRecoveryReshard` — survivor blocks over
 *    real links, corpse blocks from the checkpoint target), rollback
 *    to the last checkpoint, and resumption on the survivor mesh;
 *  - the measured wall/goodput is cross-validated against the analytic
 *    `predictElasticWall` mirror (the model-error band the elastic
 *    bench asserts).
 *
 * Scenario times (`FaultScenario` windows and kill times) are global
 * wall-clock; each phase arms the scenario re-based onto its local
 * timeline (`sliceScenarioForPhase`) with a per-*step* jitter seed, so
 * checkpoints never shift a step's jitter stream. Supported failure
 * model: at most one chip kill per run (`"chip<i>."` pattern) with a
 * strictly positive detection latency.
 */
#ifndef MESHSLICE_RUN_ELASTIC_HPP_
#define MESHSLICE_RUN_ELASTIC_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "core/recovery_study.hpp"
#include "core/spec.hpp"
#include "pipeline/pipeline_exec.hpp"
#include "sim/critical_path.hpp"
#include "sim/fault.hpp"

namespace meshslice {

/** Pipeline-schedule step body (instead of a single GeMM). */
struct ElasticPipelineSpec
{
    bool enabled = false;
    /** Stage count; the run's cluster has `stages * rows * cols`
     *  chips (`spec.rows/cols` give the per-stage mesh). */
    int stages = 2;
    PipelineExecSpec exec;
};

/** Everything one elastic training run needs. */
struct ElasticRunConfig
{
    Algorithm algo = Algorithm::kMeshSlice;
    /** The per-step GeMM (also the per-stage mesh shape when
     *  `pipeline.enabled`). */
    Gemm2DSpec spec;
    int steps = 4;

    /** Global-wall-clock scenario; ignored unless `haveScenario`. */
    bool haveScenario = false;
    FaultScenario scenario;

    /** Checkpointing is enabled iff both fields are positive. */
    Bytes checkpointBytesPerChip = 0;
    Rate checkpointTargetBandwidth = 0.0;
    /** Useful seconds between checkpoints; 0 = solve Young–Daly from
     *  `chipMtbf` (required positive in that case). */
    Time checkpointInterval = 0.0;
    Time chipMtbf = 0.0;
    /** Re-plan + restart overhead charged once per recovery. */
    Time restartTime = 0.0;

    /** Maintain functional `DistMatrix` state (A, B and a weight
     *  accumulator W updated each step), checkpoint/restore/re-shard
     *  it alongside the timed run, and verify the final W against the
     *  serial reference bit-exactly. Requires every dimension to
     *  divide both mesh axes; incompatible with `pipeline`. */
    bool functionalState = false;
    std::uint64_t functionalSeed = 7;

    /** Per-phase critical-path profiling, folded into
     *  `ElasticRunResult::pathSeconds`. Observational only. */
    bool profile = false;

    ElasticPipelineSpec pipeline;
};

/** One phase of an elastic run, in execution order. */
struct ElasticPhase
{
    enum class Kind { kStep, kCheckpoint, kRecovery };
    Kind kind = Kind::kStep;
    /** Step number / checkpoint ordinal / 0 for recovery. */
    int index = 0;
    /** Global wall clock when the phase began. */
    Time start = 0.0;
    /** Phase span: the committed simulated span, or (aborted phases)
     *  local kill time + detection latency. */
    Time span = 0.0;
    /** Simulator events the phase processed (bit-identity contract). */
    std::uint64_t events = 0;
    /** False when a fail-stop consumed the phase (it was rolled back). */
    bool committed = true;
};

const char *elasticPhaseKindName(ElasticPhase::Kind kind);

/** Outcome of one elastic run. */
struct ElasticRunResult
{
    Time wall = 0.0;       ///< end-to-end global wall clock
    /** steps x the measured fault-free full-mesh step time. */
    Time usefulTime = 0.0;
    double goodput = 0.0;  ///< usefulTime / wall
    /** Measured fault-free full-mesh step span (the probe phase). */
    Time stepTimeFullMesh = 0.0;

    int checkpoints = 0;
    int redoneSteps = 0;
    bool recovered = false;
    int deadChip = -1;
    Time detectionSpan = 0.0; ///< detection latency charged on recovery
    Time replanSpan = 0.0;    ///< restart/re-plan overhead charged
    Time reshardSpan = 0.0;   ///< measured recovery re-shard span

    /** The spec in effect at run end (shrunk after a recovery). */
    Gemm2DSpec finalSpec;
    /** The algorithm in effect at run end (Cannon re-plans onto
     *  MeshSlice: no one-line shrink preserves squareness). */
    Algorithm finalAlgo = Algorithm::kMeshSlice;

    std::vector<ElasticPhase> phases;

    /** Critical-path seconds per `SpanCategory`, summed over phases
     *  (filled when `profile`; checkpoint traffic lands in
     *  `kCheckpoint`, recovery re-shard in `kRecovery`). */
    double pathSeconds[kSpanCategoryCount] = {0, 0, 0, 0, 0, 0, 0};

    /** The analytic mirror of this run and its relative wall error —
     *  the measured-vs-model band the elastic bench asserts. */
    ElasticWallPrediction predicted;
    double modelError = 0.0;

    bool functionalChecked = false;
    bool functionalOk = false;

    /** Scalar per-phase and summary stats (`elastic/...` keys). */
    std::string statsJson;
};

/** Execute one elastic run. Deterministic: bit-identical phases,
 *  events and stats for a given (cfg, run) on any host/thread count. */
ElasticRunResult runElastic(const ChipConfig &cfg,
                            const ElasticRunConfig &run);

/** The non-elastic baseline: the same N step phases back-to-back with
 *  the same per-step seeds and scenario slicing, but no checkpoints,
 *  no watchdog and no recovery (a kill firing inside a step is fatal).
 *  A fault-free elastic run's step phases are bit-identical to this. */
struct PlainRunResult
{
    Time wall = 0.0;
    std::vector<ElasticPhase> steps;
    bool functionalChecked = false;
    bool functionalOk = false;
};

PlainRunResult runPlainSteps(const ChipConfig &cfg,
                             const ElasticRunConfig &run);

/** JSONL phase trace of @p r (one object per phase, `\n`-separated,
 *  trailing newline) — byte-stable across hosts and thread counts. */
std::string elasticTraceJson(const ElasticRunResult &r);

/** `elasticTraceJson` into @p path (fatal on open failure). */
void writeElasticTrace(const ElasticRunResult &r, const std::string &path);

} // namespace meshslice

#endif // MESHSLICE_RUN_ELASTIC_HPP_
