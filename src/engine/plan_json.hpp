/**
 * @file
 * Deterministic JSON serialization of complete plans (and the cached
 * shortlist intermediates), plus query parsing for the plan server.
 *
 * Writers emit compact single-line JSON with a fixed key order and
 * `%.17g` numbers (round-trippable doubles), so serialize → parse →
 * serialize is **byte-identical** — the property the PlanEngine's
 * cache cross-checks and the persistence layer rely on. Parsers go
 * through `util/json`'s `parseJson`, so every syntax error is a
 * `fatal` with a byte offset into the named source; semantic errors
 * (missing or mistyped keys) are `fatal` with the key path.
 */
#ifndef MESHSLICE_ENGINE_PLAN_JSON_HPP_
#define MESHSLICE_ENGINE_PLAN_JSON_HPP_

#include <string>
#include <vector>

#include "engine/plan_types.hpp"
#include "util/json.hpp"

namespace meshslice {

/** Serialize a complete plan (compact single line, fixed key order). */
std::string enginePlanToJson(const EnginePlan &plan);

/**
 * Parse the JSON emitted by `enginePlanToJson`. @p context names the
 * source in errors (a file path, "cache", ...).
 */
EnginePlan enginePlanFromJson(const std::string &text,
                              const std::string &context = "<string>");

/** Serialize a phase-1/2 shortlist (compact single line). */
std::string shortlistToJson(const std::vector<AutotuneResult> &shortlist);

/** Parse the JSON emitted by `shortlistToJson`. */
std::vector<AutotuneResult>
shortlistFromJson(const std::string &text,
                  const std::string &context = "<string>");

/**
 * Parse one plan-server query line into a `PlanQuery`. Supported keys
 * (all optional unless noted):
 *   model        "gpt3" / "megatron-nlg", or an object with
 *                name/layers/hiddenDim/heads/ffnDim[/vocab] (required)
 *   train        {batch, seqLen}; default = weak scaling at `chips`
 *   chips        chip count (default 16)
 *   algo         algorithm name (default "MeshSlice")
 *   optimizeDataflow  bool (default true)
 *   robust       object enabling the robust phase: topK, numScenarios,
 *                seed, linkDegradeFactor, faultsPerScenario,
 *                stragglerProb, stragglerFactor, maxLaunchJitter,
 *                quantile, maxGemmsPerEval
 *   recovery     object enabling recovery pricing: chipMtbf (required),
 *                checkpointBytesPerChip (required), detectionLatency,
 *                restartTime, topK
 *   pipeline     object enabling the 3D phase: schedule, chunks,
 *                maxMicroBatches, topK, recompute, dpOverlap
 * The chip hardware description comes from @p chip (queries address a
 * fixed serving cluster). Unknown keys are fatal.
 */
PlanQuery planQueryFromJson(const std::string &text, const ChipConfig &chip,
                            const std::string &context = "<string>");

/** `planQueryFromJson` on an already-parsed object (for batch files). */
PlanQuery planQueryFromValue(const JsonValue &root, const ChipConfig &chip,
                             const std::string &context);

} // namespace meshslice

#endif // MESHSLICE_ENGINE_PLAN_JSON_HPP_
