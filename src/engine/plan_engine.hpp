/**
 * @file
 * PlanEngine: the concurrent plan-serving facade (DESIGN.md §4k).
 *
 * All tuning routes through one declared sequence of `PlanPhase`
 * stages — phase1-shortlist → phase2-dataflow-slice → robust-rerank →
 * recovery-pricing → pipeline-3d — each consuming and producing the
 * typed `PlanState`. The facade wraps the existing `LlmAutotuner` /
 * robust / recovery / pipeline entry points; new search stages are
 * added by inserting a phase, not by growing another ad-hoc function.
 *
 * Serving semantics:
 *  - **Content-addressed cache**: results are stored under the exact
 *    `PlanKey` fingerprint; a repeated query is a lookup, not a tune.
 *  - **Single-flight**: two identical queries in flight compute once;
 *    the second blocks on the first and returns the cached plan
 *    (`kCoalesced`).
 *  - **Incremental re-tune**: a query whose key differs from a cached
 *    entry only in the fault component reuses that entry's phase-1/2
 *    shortlist and re-runs only the fault-aware phases — bit-identical
 *    to a cold full tune because the shortlist itself is deterministic
 *    (optionally verified per serve via `Options::verifyIncremental`).
 *  - **Concurrency**: `planMany` fans queries out on the global
 *    `util/parallel` pool; per-query results are bit-identical for any
 *    `MESHSLICE_THREADS`, only the cold/coalesced attribution varies.
 */
#ifndef MESHSLICE_ENGINE_PLAN_ENGINE_HPP_
#define MESHSLICE_ENGINE_PLAN_ENGINE_HPP_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/plan_cache.hpp"
#include "engine/plan_types.hpp"

namespace meshslice {

/** One stage of the engine's declared search pipeline. */
class PlanPhase
{
  public:
    virtual ~PlanPhase() = default;

    /** Stable phase name (appears in docs, stats and `pickedBy`). */
    virtual const char *name() const = 0;

    /**
     * True when the phase's output is a pure function of the query's
     * *base* key (model|cluster|tune) — independent of the fault
     * profile — and is cached as an intermediate. Incremental queries
     * skip reusable phases and warm-start from the cached state.
     */
    virtual bool reusableAcrossFaultProfiles() const = 0;

    /** True when @p query asks for this phase at all. */
    virtual bool enabled(const PlanQuery &query) const = 0;

    /** Consume/extend @p state. @p tuner is calibrated for the query's
     *  chip config. */
    virtual void run(const LlmAutotuner &tuner, PlanState &state) const
        = 0;
};

/** How a served plan was obtained. */
enum class PlanSource
{
    kCold,        ///< full phase pipeline ran
    kCacheHit,    ///< exact key already cached
    kCoalesced,   ///< waited on an identical in-flight query
    kIncremental, ///< fault-only delta; reused the cached shortlist
};

const char *planSourceName(PlanSource source);

/** One served plan. */
struct PlanResult
{
    EnginePlan plan;
    /** The canonical serialized plan (`enginePlanToJson`); cache hits
     *  and incremental serves are byte-identical to the cold serve. */
    std::string planJson;
    PlanKey key;
    PlanSource source = PlanSource::kCold;
};

/** The long-running plan-serving subsystem. */
class PlanEngine
{
  public:
    struct Options
    {
        /** LRU capacity of the plan cache. */
        size_t cacheCapacity = 64;
        /**
         * Warm-start/persistence file: loaded (if present) at
         * construction, written by `persist()`. Empty = in-memory only.
         */
        std::string persistPath;
        /**
         * Cross-check every incremental serve against a cold full tune
         * and `panic` on any byte difference (the acceptance guarantee,
         * paid for by doubling incremental work — benches and tests).
         */
        bool verifyIncremental = false;
    };

    explicit PlanEngine(Options options);
    PlanEngine(); ///< default options

    /** Serve one query (thread-safe; callable from pool tasks). */
    PlanResult plan(const PlanQuery &query);

    /**
     * Serve a batch concurrently on the global thread pool. Results
     * are returned in input order, and every result's `planJson` is
     * bit-identical to serving the same list serially.
     */
    std::vector<PlanResult> planMany(const std::vector<PlanQuery> &queries);

    /** The declared phase sequence, in execution order. */
    static std::vector<std::string> phaseNames();

    /** Write the cache to `Options::persistPath` (fatal if empty). */
    void persist() const;

    /** Hit/miss/eviction and serve counters (`engine/...`). */
    const StatsRegistry &stats() const { return stats_; }

    /** Serves that actually ran the phase pipeline (cold+incremental). */
    long computedCount() const;

  private:
    PlanState runPhases(const PlanQuery &query, const PlanKey &key,
                        const std::string &cached_shortlist_json);

    Options options_;
    StatsRegistry stats_;
    std::vector<std::unique_ptr<PlanPhase>> phases_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    PlanCache cache_;
    std::unordered_set<std::string> inflight_;
};

} // namespace meshslice

#endif // MESHSLICE_ENGINE_PLAN_ENGINE_HPP_
