#include "engine/plan_engine.hpp"

#include <utility>

#include "engine/plan_json.hpp"
#include "tuner/cost_model.hpp"
#include "tuner/pipeline_tuner.hpp"
#include "tuner/robust.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace meshslice {

const char *
planSourceName(PlanSource source)
{
    switch (source) {
      case PlanSource::kCold:
        return "cold";
      case PlanSource::kCacheHit:
        return "cache_hit";
      case PlanSource::kCoalesced:
        return "coalesced";
      case PlanSource::kIncremental:
        return "incremental";
    }
    return "?";
}

namespace {

/** Set the plan's 2D TP decision (shape + per-GeMM plans), keeping the
 *  3D cluster axes in sync for the phases that run pre-pipeline. */
void
adoptTpPick(PlanState &state, const AutotuneResult &pick,
            const char *phase_name)
{
    state.plan.tp = pick;
    state.plan.cluster.tpRows = pick.rows;
    state.plan.cluster.tpCols = pick.cols;
    state.plan.pickedBy = phase_name;
}

/** Phase 1+2 of the paper's autotuner: the ranked top-K mesh-shape
 *  shortlist, each entry a complete plan (stationary selection, tuned
 *  slice counts). Fault-independent, so cached and reused across
 *  fault-profile deltas. */
class ShortlistPhase : public PlanPhase
{
  public:
    const char *name() const override { return "phase1-shortlist"; }
    bool reusableAcrossFaultProfiles() const override { return true; }
    bool enabled(const PlanQuery &) const override { return true; }

    void
    run(const LlmAutotuner &tuner, PlanState &state) const override
    {
        const PlanQuery &q = state.query;
        state.shortlist =
            tuner.rankShapes(q.algo, q.model, q.train, q.chips,
                             shortlistSizeFor(q), q.optimizeDataflow);
    }
};

/** Fix the nominal decision: the shortlist head becomes the plan's 2D
 *  TP pick (per-GeMM dataflow + slice counts). Downstream phases may
 *  override the pick; this phase guarantees every plan has one. */
class DataflowSlicePhase : public PlanPhase
{
  public:
    const char *name() const override { return "phase2-dataflow-slice"; }
    bool reusableAcrossFaultProfiles() const override { return false; }
    bool enabled(const PlanQuery &) const override { return true; }

    void
    run(const LlmAutotuner &, PlanState &state) const override
    {
        if (state.shortlist.empty())
            panic("PlanEngine: phase1-shortlist produced no candidates");
        state.plan.cluster.dp = 1;
        state.plan.cluster.pp = 1;
        state.plan.cluster.oneD = false;
        adoptTpPick(state, state.shortlist.front(), name());
    }
};

/** Robust re-rank of the shortlist under the query's fault profile. */
class RobustRerankPhase : public PlanPhase
{
  public:
    const char *name() const override { return "robust-rerank"; }
    bool reusableAcrossFaultProfiles() const override { return false; }

    bool
    enabled(const PlanQuery &q) const override
    {
        return q.runRobust;
    }

    void
    run(const LlmAutotuner &tuner, PlanState &state) const override
    {
        const PlanQuery &q = state.query;
        state.robust = tuneRobustShortlist(tuner, q.algo, state.shortlist,
                                           q.chips, q.robust);
        state.plan.hasRobust = true;
        state.plan.robustObjective = state.robust.picked().objective;
        state.plan.robustPickIndex = state.robust.pickedIndex;
        adoptTpPick(state, state.robust.picked().plan, name());
    }
};

/** Recovery-economics pricing over the same shortlist. */
class RecoveryPricingPhase : public PlanPhase
{
  public:
    const char *name() const override { return "recovery-pricing"; }
    bool reusableAcrossFaultProfiles() const override { return false; }

    bool
    enabled(const PlanQuery &q) const override
    {
        return q.runRecovery;
    }

    void
    run(const LlmAutotuner &tuner, PlanState &state) const override
    {
        const PlanQuery &q = state.query;
        state.recovery = tuneWithRecoveryShortlist(
            tuner, q.algo, state.shortlist, q.chips, q.recovery);
        const RecoveryCandidate &picked = state.recovery.picked();
        state.plan.hasRecovery = true;
        state.plan.checkpointInterval = picked.checkpointInterval;
        state.plan.goodput = picked.goodput;
        state.plan.effectiveStepTime = picked.effectiveStepTime;
        adoptTpPick(state, picked.plan, name());
    }
};

/** Phase-3 3D composition (pp x dp x tp). Runs its own shape search at
 *  the micro-batch size, so it replaces the 2D pick wholesale. */
class Pipeline3dPhase : public PlanPhase
{
  public:
    const char *name() const override { return "pipeline-3d"; }
    bool reusableAcrossFaultProfiles() const override { return false; }

    bool
    enabled(const PlanQuery &q) const override
    {
        return q.runPipeline;
    }

    void
    run(const LlmAutotuner &tuner, PlanState &state) const override
    {
        const PlanQuery &q = state.query;
        state.pipeline3d = tunePipeline(tuner, q.model, q.train, q.chips,
                                        q.pipeline);
        const PipelineCandidate &picked = state.pipeline3d.picked();
        state.plan.hasPipeline = true;
        state.plan.axes = picked.axes;
        state.plan.pipelineEstTotal = picked.estTotal;
        state.plan.pipelineSimTotal = picked.simTotal;
        state.plan.stageMemoryBytes = picked.stageMemoryBytes;
        state.plan.peakStash = picked.peakStash;
        state.plan.cluster.dp = picked.axes.dp;
        state.plan.cluster.pp = picked.axes.pp;
        adoptTpPick(state, picked.tpPlan, name());
    }
};

std::vector<std::unique_ptr<PlanPhase>>
buildPhases()
{
    std::vector<std::unique_ptr<PlanPhase>> phases;
    phases.push_back(std::make_unique<ShortlistPhase>());
    phases.push_back(std::make_unique<DataflowSlicePhase>());
    phases.push_back(std::make_unique<RobustRerankPhase>());
    phases.push_back(std::make_unique<RecoveryPricingPhase>());
    phases.push_back(std::make_unique<Pipeline3dPhase>());
    return phases;
}

} // namespace

PlanEngine::PlanEngine() : PlanEngine(Options{}) {}

PlanEngine::PlanEngine(Options options)
    : options_(std::move(options)), phases_(buildPhases()),
      cache_(options_.cacheCapacity, &stats_)
{
    stats_.enable(true);
    if (!options_.persistPath.empty())
        cache_.loadFileIfExists(options_.persistPath);
}

std::vector<std::string>
PlanEngine::phaseNames()
{
    std::vector<std::string> names;
    for (const auto &phase : buildPhases())
        names.push_back(phase->name());
    return names;
}

PlanState
PlanEngine::runPhases(const PlanQuery &query, const PlanKey &key,
                      const std::string &cached_shortlist_json)
{
    PlanState state;
    state.query = query;
    state.key = key;
    if (!cached_shortlist_json.empty()) {
        state.shortlist = shortlistFromJson(
            cached_shortlist_json, "PlanCache shortlist " + key.digest());
        state.shortlistFromCache = true;
    }
    const LlmAutotuner tuner(CostModel::calibrated(query.chip));
    for (const auto &phase : phases_) {
        if (!phase->enabled(query))
            continue;
        if (state.shortlistFromCache &&
            phase->reusableAcrossFaultProfiles())
            continue;
        phase->run(tuner, state);
        stats_.add(std::string("engine/phase/") + phase->name() + "/runs",
                   1.0);
    }
    return state;
}

PlanResult
PlanEngine::plan(const PlanQuery &query)
{
    if (query.chips <= 0)
        fatal("PlanEngine: chips must be positive (got %d)", query.chips);
    const PlanKey key = planKeyOf(query);
    const std::string full = key.full();

    bool waited = false;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        std::string cached;
        if (cache_.lookup(full, &cached)) {
            lock.unlock();
            stats_.add(waited ? "engine/serve/coalesced"
                              : "engine/serve/cache_hit", 1.0);
            PlanResult result;
            result.key = key;
            result.plan = enginePlanFromJson(
                cached, "PlanCache entry " + key.digest());
            result.planJson = std::move(cached);
            result.source = waited ? PlanSource::kCoalesced
                                   : PlanSource::kCacheHit;
            return result;
        }
        if (inflight_.count(full) == 0)
            break;
        waited = true;
        cv_.wait(lock);
    }
    inflight_.insert(full);
    std::string cached_shortlist;
    const bool incremental =
        cache_.shortlistForBase(key.base(), &cached_shortlist);
    lock.unlock();

    const PlanState state =
        runPhases(query, key, incremental ? cached_shortlist : "");
    std::string plan_json = enginePlanToJson(state.plan);
    std::string shortlist_json = shortlistToJson(state.shortlist);

    if (incremental && options_.verifyIncremental) {
        const PlanState cold = runPhases(query, key, "");
        if (enginePlanToJson(cold.plan) != plan_json ||
            shortlistToJson(cold.shortlist) != shortlist_json)
            panic("PlanEngine: incremental re-tune of %s is not "
                  "bit-identical to the cold full tune",
                  key.digest().c_str());
        stats_.add("engine/serve/incremental_verified", 1.0);
    }

    lock.lock();
    cache_.insert(full, key.base(), plan_json, std::move(shortlist_json));
    inflight_.erase(full);
    lock.unlock();
    cv_.notify_all();
    stats_.add(incremental ? "engine/serve/incremental"
                           : "engine/serve/cold", 1.0);
    stats_.add("engine/serve/computed", 1.0);

    PlanResult result;
    result.plan = state.plan;
    result.planJson = std::move(plan_json);
    result.key = key;
    result.source =
        incremental ? PlanSource::kIncremental : PlanSource::kCold;
    return result;
}

std::vector<PlanResult>
PlanEngine::planMany(const std::vector<PlanQuery> &queries)
{
    std::vector<PlanResult> results(queries.size());
    parallelFor(static_cast<std::int64_t>(queries.size()), 1,
                [&](std::int64_t begin, std::int64_t end) {
                    for (std::int64_t i = begin; i < end; ++i)
                        results[static_cast<size_t>(i)] =
                            plan(queries[static_cast<size_t>(i)]);
                });
    return results;
}

void
PlanEngine::persist() const
{
    if (options_.persistPath.empty())
        fatal("PlanEngine: persist() requires Options::persistPath");
    std::unique_lock<std::mutex> lock(mu_);
    cache_.saveFile(options_.persistPath);
}

long
PlanEngine::computedCount() const
{
    return static_cast<long>(stats_.counter("engine/serve/computed"));
}

} // namespace meshslice
