#include "engine/plan_cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace meshslice {

PlanCache::PlanCache(size_t capacity, StatsRegistry *stats)
    : capacity_(capacity), stats_(stats)
{
    if (capacity_ == 0)
        fatal("PlanCache: capacity must be positive");
}

void
PlanCache::count(const char *name) const
{
    if (stats_ != nullptr)
        stats_->add(std::string("engine/cache/") + name, 1.0);
}

bool
PlanCache::lookup(const std::string &key, std::string *plan_json,
                  std::string *shortlist_json)
{
    auto it = index_.find(key);
    if (it == index_.end()) {
        count("miss");
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    if (plan_json != nullptr)
        *plan_json = lru_.front().planJson;
    if (shortlist_json != nullptr)
        *shortlist_json = lru_.front().shortlistJson;
    count("hit");
    return true;
}

bool
PlanCache::shortlistForBase(const std::string &base,
                            std::string *shortlist_json) const
{
    for (const Entry &e : lru_) {
        if (e.base != base)
            continue;
        if (shortlist_json != nullptr)
            *shortlist_json = e.shortlistJson;
        count("base_hit");
        return true;
    }
    return false;
}

void
PlanCache::insert(const std::string &key, const std::string &base,
                  std::string plan_json, std::string shortlist_json)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        lru_.front().base = base;
        lru_.front().planJson = std::move(plan_json);
        lru_.front().shortlistJson = std::move(shortlist_json);
    } else {
        lru_.push_front(Entry{key, base, std::move(plan_json),
                              std::move(shortlist_json)});
        index_[key] = lru_.begin();
        count("insert");
        while (index_.size() > capacity_) {
            index_.erase(lru_.back().key);
            lru_.pop_back();
            count("eviction");
        }
    }
    if (stats_ != nullptr)
        stats_->set("engine/cache/size",
                    static_cast<double>(index_.size()));
}

std::string
PlanCache::serialize() const
{
    std::vector<const Entry *> sorted;
    sorted.reserve(lru_.size());
    for (const Entry &e : lru_)
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) { return a->key < b->key; });
    std::string out;
    out += "{\n  \"entries\": [";
    for (size_t i = 0; i < sorted.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"key\": ";
        out += jsonString(sorted[i]->key);
        out += ", \"base\": ";
        out += jsonString(sorted[i]->base);
        out += ", \"plan\": ";
        out += jsonString(sorted[i]->planJson);
        out += ", \"shortlist\": ";
        out += jsonString(sorted[i]->shortlistJson);
        out += "}";
    }
    out += sorted.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

void
PlanCache::load(const std::string &text, const std::string &context)
{
    const JsonValue root = parseJson(text, "PlanCache", context);
    if (root.kind != JsonValue::kObject)
        fatal("PlanCache: %s: top-level value must be an object",
              context.c_str());
    const JsonValue *entries = root.find("entries");
    if (entries == nullptr || entries->kind != JsonValue::kArray)
        fatal("PlanCache: %s: missing \"entries\" array",
              context.c_str());
    lru_.clear();
    index_.clear();
    for (size_t i = 0; i < entries->arr.size(); ++i) {
        const JsonValue &e = entries->arr[i];
        if (e.kind != JsonValue::kObject)
            fatal("PlanCache: %s: entry %zu must be an object",
                  context.c_str(), i);
        const JsonValue *key = e.find("key");
        const JsonValue *base = e.find("base");
        const JsonValue *plan = e.find("plan");
        const JsonValue *shortlist = e.find("shortlist");
        if (key == nullptr || key->kind != JsonValue::kString ||
            base == nullptr || base->kind != JsonValue::kString ||
            plan == nullptr || plan->kind != JsonValue::kString ||
            shortlist == nullptr ||
            shortlist->kind != JsonValue::kString)
            fatal("PlanCache: %s: entry %zu needs string "
                  "key/base/plan/shortlist", context.c_str(), i);
        insert(key->str, base->str, plan->str, shortlist->str);
    }
}

void
PlanCache::saveFile(const std::string &path) const
{
    std::ofstream out(path);
    out << serialize();
    out.flush();
    if (!out)
        fatal("PlanCache: failed writing %s", path.c_str());
}

bool
PlanCache::loadFileIfExists(const std::string &path)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        fatal("PlanCache: failed reading %s", path.c_str());
    load(buf.str(), path);
    return true;
}

} // namespace meshslice
