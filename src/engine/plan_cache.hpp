/**
 * @file
 * Content-addressed LRU cache of serialized plans (DESIGN.md §4k).
 *
 * Keys are the exact `PlanKey::full()` fingerprint texts (not hashes —
 * two queries share an entry iff every fingerprinted field is
 * identical). Each entry stores the canonical serialized plan plus the
 * phase-1/2 shortlist intermediate; the latter is what a query with a
 * matching *base* key (model|cluster|tune equal, fault different)
 * reuses on the incremental re-tune path.
 *
 * Persistence is deterministic JSON: entries sorted by key, so
 * serialize → load → serialize is byte-identical and a restarted
 * engine warm-starts from disk. Counters (hit/miss/eviction/insert/
 * base_hit, plus a size gauge) publish through an optional
 * `StatsRegistry` under `engine/cache/...`.
 *
 * NOT internally synchronized: the `PlanEngine` serializes all access
 * under its own mutex (the cache is also usable directly from
 * single-threaded tests and tools).
 */
#ifndef MESHSLICE_ENGINE_PLAN_CACHE_HPP_
#define MESHSLICE_ENGINE_PLAN_CACHE_HPP_

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/stats.hpp"

namespace meshslice {

/** LRU map from full plan keys to serialized plans + intermediates. */
class PlanCache
{
  public:
    /** @p capacity > 0 entries; @p stats may be null (no counters). */
    explicit PlanCache(size_t capacity, StatsRegistry *stats = nullptr);

    /**
     * Look @p key up; on a hit copies the stored plan JSON (and the
     * shortlist JSON when @p shortlist_json is non-null) and makes the
     * entry most-recently-used. Counts `engine/cache/hit` or `.../miss`.
     */
    bool lookup(const std::string &key, std::string *plan_json,
                std::string *shortlist_json = nullptr);

    /**
     * Find the most-recently-used entry whose base key equals @p base
     * (any fault profile) and copy its shortlist JSON — the
     * incremental-re-tune warm start. Does not touch recency. Counts
     * `engine/cache/base_hit` on success.
     */
    bool shortlistForBase(const std::string &base,
                          std::string *shortlist_json) const;

    /**
     * Insert (or overwrite) @p key as most-recently-used, evicting the
     * least-recently-used entry when over capacity. Counts
     * `engine/cache/insert` and `engine/cache/eviction`.
     */
    void insert(const std::string &key, const std::string &base,
                std::string plan_json, std::string shortlist_json);

    size_t size() const { return index_.size(); }
    size_t capacity() const { return capacity_; }

    /**
     * Deterministic persistence document: entries sorted by full key
     * (recency is an in-memory detail; sorted order makes the file a
     * pure function of the cache *contents*).
     */
    std::string serialize() const;

    /**
     * Replace the contents with @p text (a `serialize()` document).
     * Entries insert in sorted-key order under the cache's own
     * capacity, so loading a larger dump keeps the lexicographically
     * last `capacity()` entries. Malformed input is fatal with a byte
     * offset into @p context.
     */
    void load(const std::string &text, const std::string &context);

    /** `serialize()` into @p path; fatal when the write fails. */
    void saveFile(const std::string &path) const;

    /** `load()` from @p path; returns false (untouched cache) when the
     *  file does not exist, fatal on an unreadable or malformed one. */
    bool loadFileIfExists(const std::string &path);

  private:
    struct Entry
    {
        std::string key;
        std::string base;
        std::string planJson;
        std::string shortlistJson;
    };

    void count(const char *name) const;

    size_t capacity_;
    StatsRegistry *stats_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

} // namespace meshslice

#endif // MESHSLICE_ENGINE_PLAN_CACHE_HPP_
