#include "engine/plan_types.hpp"

#include <algorithm>

#include "tuner/cost_model.hpp"
#include "util/fingerprint.hpp"
#include "util/logging.hpp"

namespace meshslice {

std::string
PlanKey::digest() const
{
    return fnv1a64Hex(full());
}

namespace {

Fingerprint
modelComponent(const PlanQuery &q)
{
    Fingerprint model;
    model.field("name", std::string_view(q.model.name))
        .field("layers", q.model.layers)
        .field("hiddenDim", q.model.hiddenDim)
        .field("heads", q.model.heads)
        .field("ffnDim", q.model.ffnDim)
        .field("vocab", q.model.vocab);
    Fingerprint train;
    train.field("batch", q.train.batch).field("seqLen", q.train.seqLen);
    Fingerprint fp;
    fp.sub("model", model).sub("train", train);
    return fp;
}

Fingerprint
clusterComponent(const PlanQuery &q)
{
    Fingerprint fp;
    fp.field("chips", q.chips)
        .field("chip", std::string_view(chipConfigFingerprint(q.chip)));
    return fp;
}

Fingerprint
tuneComponent(const PlanQuery &q)
{
    Fingerprint fp;
    fp.field("algo", std::string_view(algorithmName(q.algo)))
        .field("optimizeDataflow", q.optimizeDataflow)
        .field("runRobust", q.runRobust)
        .field("runRecovery", q.runRecovery)
        .field("runPipeline", q.runPipeline);
    if (q.runRobust) {
        // Only the *objective* knobs; the scenario source lives in the
        // fault component so a scenario-only delta stays incremental.
        Fingerprint robust;
        robust.field("topK", q.robust.topK)
            .field("quantile", q.robust.quantile)
            .field("maxGemmsPerEval", q.robust.maxGemmsPerEval)
            .field("explain", q.robust.explain);
        fp.sub("robust", robust);
    }
    if (q.runRecovery) {
        Fingerprint rec;
        rec.field("chipMtbf", q.recovery.chipMtbf)
            .field("checkpointBytesPerChip",
                   q.recovery.checkpointBytesPerChip)
            .field("detectionLatency", q.recovery.detectionLatency)
            .field("restartTime", q.recovery.restartTime)
            .field("topK", q.recovery.topK);
        fp.sub("recovery", rec);
    }
    if (q.runPipeline) {
        Fingerprint pipe;
        pipe.field("schedule", std::string_view(pipelineScheduleName(
                                   q.pipeline.schedule)))
            .field("chunks", q.pipeline.chunks)
            .field("maxMicroBatches", q.pipeline.maxMicroBatches)
            .field("topK", q.pipeline.topK)
            .field("recompute", q.pipeline.recompute)
            .field("dpOverlap", q.pipeline.dpOverlap)
            .field("explain", q.pipeline.explain);
        fp.sub("pipeline", pipe);
    }
    return fp;
}

Fingerprint
faultComponent(const PlanQuery &q)
{
    Fingerprint fp;
    if (!q.runRobust) {
        fp.field("none", true);
        return fp;
    }
    if (!q.robust.scenarios.empty()) {
        // Explicit scenarios: the serialized scenario IS the profile.
        fp.field("scenarioCount",
                 static_cast<std::int64_t>(q.robust.scenarios.size()));
        for (size_t i = 0; i < q.robust.scenarios.size(); ++i)
            fp.field(strprintf("scenario%zu", i),
                     std::string_view(q.robust.scenarios[i].toJson()));
        return fp;
    }
    // Sampled scenarios: the sampler knobs determine them exactly.
    fp.field("numScenarios", q.robust.numScenarios)
        .field("seed", static_cast<std::int64_t>(q.robust.seed))
        .field("linkDegradeFactor", q.robust.linkDegradeFactor)
        .field("faultsPerScenario", q.robust.faultsPerScenario)
        .field("stragglerProb", q.robust.stragglerProb)
        .field("stragglerFactor", q.robust.stragglerFactor)
        .field("maxLaunchJitter", q.robust.maxLaunchJitter);
    return fp;
}

} // namespace

PlanKey
planKeyOf(const PlanQuery &query)
{
    PlanKey key;
    key.model = modelComponent(query).str();
    key.cluster = clusterComponent(query).str();
    key.tune = tuneComponent(query).str();
    key.fault = faultComponent(query).str();
    return key;
}

int
shortlistSizeFor(const PlanQuery &query)
{
    int k = 1;
    if (query.runRobust)
        k = std::max(k, query.robust.topK);
    if (query.runRecovery)
        k = std::max(k, query.recovery.topK);
    return k;
}

} // namespace meshslice
