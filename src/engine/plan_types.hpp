/**
 * @file
 * Typed state of the PlanEngine's phase pipeline (DESIGN.md §4k).
 *
 * A `PlanQuery` is everything a "plan my training job" request can
 * vary: the model and batch, the cluster (chip count + `ChipConfig`),
 * which tuning phases to run, and the knobs of each phase. Its
 * content-addressed identity is a `PlanKey` of four exact fingerprint
 * components — model | cluster | tune | fault — built with
 * `util/fingerprint` (hex-float doubles, so distinct values never
 * collide through rounding). The split matters: two queries with equal
 * model/cluster/tune components but different fault components share
 * every fault-independent phase result, which is what makes the
 * engine's incremental re-tune sound.
 *
 * An `EnginePlan` is the serializable outcome: the 3D `ClusterPlan`,
 * the picked 2D TP plan with per-GeMM dataflow/slice counts, and the
 * summaries of whichever robust / recovery / pipeline phases ran.
 * `PlanState` is the working state threaded through the `PlanPhase`
 * sequence; the shortlist it carries is also the cached per-phase
 * intermediate that warm-starts incremental queries.
 */
#ifndef MESHSLICE_ENGINE_PLAN_TYPES_HPP_
#define MESHSLICE_ENGINE_PLAN_TYPES_HPP_

#include <string>
#include <vector>

#include "hw/chip_config.hpp"
#include "model/transformer.hpp"
#include "pipeline/stage_model.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/cluster_plan.hpp"
#include "tuner/pipeline_tuner.hpp"
#include "tuner/robust.hpp"

namespace meshslice {

/** One fully specified plan request. */
struct PlanQuery
{
    TransformerConfig model;
    TrainingConfig train;
    /** Cluster: chip count and the per-chip hardware description. */
    int chips = 16;
    ChipConfig chip;
    /** 2D TP algorithm the phases plan for. */
    Algorithm algo = Algorithm::kMeshSlice;
    /** Phase-1 stationary selection (false = Y-stn baseline). */
    bool optimizeDataflow = true;
    /** Which fault-aware phases run. */
    bool runRobust = false;
    bool runRecovery = false;
    bool runPipeline = false;
    RobustTuneConfig robust;
    RecoveryTuneConfig recovery;
    PipelineTuneConfig pipeline;
};

/**
 * Content-addressed identity of a query. Each component is the exact
 * `Fingerprint` text (not a hash — collision-free by construction);
 * `digest()` is the 16-hex FNV-1a tag used for display and stats.
 */
struct PlanKey
{
    std::string model;   ///< model architecture + batch/seqLen
    std::string cluster; ///< chip count + every ChipConfig field
    std::string tune;    ///< algorithm + enabled phases + their knobs
    std::string fault;   ///< scenario sampling knobs or explicit scenarios

    /** The fault-independent prefix shared by incremental queries. */
    std::string
    base() const
    {
        return model + "#" + cluster + "#" + tune;
    }

    /** The complete cache key. */
    std::string
    full() const
    {
        return base() + "#" + fault;
    }

    /** Short display tag of `full()`. */
    std::string digest() const;

    /** True when only the fault component may differ — the condition
     *  for the incremental re-tune path. */
    bool
    sameBase(const PlanKey &other) const
    {
        return model == other.model && cluster == other.cluster &&
               tune == other.tune;
    }
};

/** Build the four-component key of @p query. */
PlanKey planKeyOf(const PlanQuery &query);

/** The serializable outcome of a full phase pipeline. */
struct EnginePlan
{
    /** 3D decomposition; dp = pp = 1 unless the pipeline phase ran. */
    ClusterPlan cluster;
    /** The picked 2D TP plan: mesh shape plus the 12 per-GeMM
     *  dataflow/slice-count decisions. */
    AutotuneResult tp;
    /** Name of the phase whose decision `tp`/`cluster` reflect. */
    std::string pickedBy;

    bool hasRobust = false;
    Time robustObjective = 0.0; ///< quantile objective of the pick
    int robustPickIndex = 0;    ///< 0 = the nominal shape survived

    bool hasRecovery = false;
    Time checkpointInterval = 0.0; ///< Young–Daly τ* of the pick
    double goodput = 0.0;
    Time effectiveStepTime = 0.0; ///< stepTime / goodput

    bool hasPipeline = false;
    PipelineAxes axes;             ///< pp x dp x tp (+ schedule knobs)
    Time pipelineEstTotal = 0.0;   ///< analytic step of the pick
    Time pipelineSimTotal = -1.0;  ///< simulated step (< 0 = none)
    Bytes stageMemoryBytes = 0;    ///< peak per-chip bytes, stage 0
    int peakStash = 0;             ///< peak in-flight micro-batches
};

/** Working state consumed/produced by the `PlanPhase` sequence. */
struct PlanState
{
    PlanQuery query;
    PlanKey key;

    /**
     * Phase-1/2 output: the top-K mesh shapes by nominal estimate,
     * each a complete plan (dataflows + tuned slice counts). Sized to
     * the largest topK any enabled downstream phase needs, and prefix
     * stable, so every consumer truncates to its own K. This is the
     * cached intermediate incremental queries reuse.
     */
    std::vector<AutotuneResult> shortlist;
    /** True when `shortlist` was warm-started from the cache (the
     *  incremental path) instead of computed by phase1-shortlist. */
    bool shortlistFromCache = false;

    /** Full phase outputs (not serialized; `plan` carries summaries). */
    RobustTuneResult robust;
    RecoveryTuneResult recovery;
    PipelineTuneResult pipeline3d;

    /** The accumulating outcome. */
    EnginePlan plan;
};

/**
 * Shortlist size phase1-shortlist computes for @p query: the largest
 * topK among the enabled downstream consumers (robust / recovery), at
 * least 1. `rankShapes` is prefix-stable, so one list serves all.
 */
int shortlistSizeFor(const PlanQuery &query);

} // namespace meshslice

#endif // MESHSLICE_ENGINE_PLAN_TYPES_HPP_
