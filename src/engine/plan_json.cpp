#include "engine/plan_json.hpp"

#include <cmath>
#include <initializer_list>
#include <string>

#include "util/logging.hpp"

namespace meshslice {

namespace {

// ---------------------------------------------------------------- parse
// Semantic accessors over a parsed JsonValue. Every failure is a fatal
// naming the key path and the source, matching the positional contract
// of parseJson (which already covers syntax errors with byte offsets).

const JsonValue &
memberAt(const JsonValue &obj, const char *path, const char *key,
         const std::string &ctx)
{
    if (obj.kind != JsonValue::kObject)
        fatal("%s: \"%s\" must be an object", ctx.c_str(), path);
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        fatal("%s: missing key \"%s.%s\"", ctx.c_str(), path, key);
    return *v;
}

double
numberAt(const JsonValue &obj, const char *path, const char *key,
         const std::string &ctx)
{
    const JsonValue &v = memberAt(obj, path, key, ctx);
    if (v.kind != JsonValue::kNumber)
        fatal("%s: \"%s.%s\" must be a number", ctx.c_str(), path, key);
    return v.number;
}

std::int64_t
i64At(const JsonValue &obj, const char *path, const char *key,
      const std::string &ctx)
{
    const double v = numberAt(obj, path, key, ctx);
    if (std::floor(v) != v)
        fatal("%s: \"%s.%s\" must be an integer (got %g)", ctx.c_str(),
              path, key, v);
    return static_cast<std::int64_t>(v);
}

int
intAt(const JsonValue &obj, const char *path, const char *key,
      const std::string &ctx)
{
    return static_cast<int>(i64At(obj, path, key, ctx));
}

bool
boolAt(const JsonValue &obj, const char *path, const char *key,
       const std::string &ctx)
{
    const JsonValue &v = memberAt(obj, path, key, ctx);
    if (v.kind != JsonValue::kBool)
        fatal("%s: \"%s.%s\" must be a boolean", ctx.c_str(), path, key);
    return v.boolean;
}

const std::string &
stringAt(const JsonValue &obj, const char *path, const char *key,
         const std::string &ctx)
{
    const JsonValue &v = memberAt(obj, path, key, ctx);
    if (v.kind != JsonValue::kString)
        fatal("%s: \"%s.%s\" must be a string", ctx.c_str(), path, key);
    return v.str;
}

const std::vector<JsonValue> &
arrayAt(const JsonValue &obj, const char *path, const char *key,
        const std::string &ctx)
{
    const JsonValue &v = memberAt(obj, path, key, ctx);
    if (v.kind != JsonValue::kArray)
        fatal("%s: \"%s.%s\" must be an array", ctx.c_str(), path, key);
    return v.arr;
}

Pass
passFromName(const std::string &name, const std::string &ctx)
{
    for (Pass p : {Pass::kForward, Pass::kBackwardData,
                   Pass::kBackwardWeight})
        if (name == passName(p))
            return p;
    fatal("%s: unknown pass \"%s\" (want fwd/bwdD/bwdW)", ctx.c_str(),
          name.c_str());
}

// ---------------------------------------------------------------- emit
// Canonical writers: compact, fixed key order, %.17g numbers. The
// byte-identical round-trip property holds because the writer is the
// single source of formatting.

void
appendGemmPlan(std::string &out, const GemmPlan &p)
{
    out += "{\"name\":";
    out += jsonString(p.gemm.name);
    out += ",\"m\":";
    out += std::to_string(p.gemm.m);
    out += ",\"k\":";
    out += std::to_string(p.gemm.k);
    out += ",\"n\":";
    out += std::to_string(p.gemm.n);
    out += ",\"pass\":";
    out += jsonString(passName(p.gemm.pass));
    out += ",\"fcLayer\":";
    out += std::to_string(p.gemm.fcLayer);
    out += ",\"dataflow\":";
    out += jsonString(dataflowName(p.dataflow));
    out += ",\"sliceCount\":";
    out += std::to_string(p.sliceCount);
    out += ",\"estTime\":";
    out += jsonNumber(p.estTime);
    out += "}";
}

GemmPlan
gemmPlanFromValue(const JsonValue &v, const std::string &ctx)
{
    GemmPlan p;
    p.gemm.name = stringAt(v, "pass", "name", ctx);
    p.gemm.m = i64At(v, "pass", "m", ctx);
    p.gemm.k = i64At(v, "pass", "k", ctx);
    p.gemm.n = i64At(v, "pass", "n", ctx);
    p.gemm.pass = passFromName(stringAt(v, "pass", "pass", ctx), ctx);
    p.gemm.fcLayer = intAt(v, "pass", "fcLayer", ctx);
    p.dataflow = dataflowFromName(stringAt(v, "pass", "dataflow", ctx),
                                  ctx);
    p.sliceCount = intAt(v, "pass", "sliceCount", ctx);
    p.estTime = numberAt(v, "pass", "estTime", ctx);
    return p;
}

void
appendAutotuneResult(std::string &out, const AutotuneResult &r)
{
    out += "{\"rows\":";
    out += std::to_string(r.rows);
    out += ",\"cols\":";
    out += std::to_string(r.cols);
    out += ",\"blockFcTime\":";
    out += jsonNumber(r.blockFcTime);
    out += ",\"layers\":[";
    for (size_t i = 0; i < r.layers.size(); ++i) {
        const FcLayerPlan &layer = r.layers[i];
        if (i != 0)
            out += ",";
        out += "{\"fcLayer\":";
        out += std::to_string(layer.fcLayer);
        out += ",\"stationary\":";
        out += jsonString(stationaryName(layer.stationary));
        out += ",\"passes\":[";
        for (size_t j = 0; j < layer.passes.size(); ++j) {
            if (j != 0)
                out += ",";
            appendGemmPlan(out, layer.passes[j]);
        }
        out += "]}";
    }
    out += "]}";
}

AutotuneResult
autotuneResultFromValue(const JsonValue &v, const std::string &ctx)
{
    AutotuneResult r;
    r.rows = intAt(v, "tp", "rows", ctx);
    r.cols = intAt(v, "tp", "cols", ctx);
    r.blockFcTime = numberAt(v, "tp", "blockFcTime", ctx);
    for (const JsonValue &lv : arrayAt(v, "tp", "layers", ctx)) {
        FcLayerPlan layer;
        layer.fcLayer = intAt(lv, "layer", "fcLayer", ctx);
        layer.stationary = stationaryFromName(
            stringAt(lv, "layer", "stationary", ctx), ctx);
        for (const JsonValue &pv : arrayAt(lv, "layer", "passes", ctx))
            layer.passes.push_back(gemmPlanFromValue(pv, ctx));
        r.layers.push_back(std::move(layer));
    }
    return r;
}

void
appendAxes(std::string &out, const PipelineAxes &axes)
{
    out += "{\"tpRows\":";
    out += std::to_string(axes.tpRows);
    out += ",\"tpCols\":";
    out += std::to_string(axes.tpCols);
    out += ",\"pp\":";
    out += std::to_string(axes.pp);
    out += ",\"dp\":";
    out += std::to_string(axes.dp);
    out += ",\"microBatches\":";
    out += std::to_string(axes.microBatches);
    out += ",\"chunks\":";
    out += std::to_string(axes.chunks);
    out += ",\"schedule\":";
    out += jsonString(pipelineScheduleName(axes.schedule));
    out += ",\"recompute\":";
    out += axes.recompute ? "true" : "false";
    out += "}";
}

PipelineAxes
axesFromValue(const JsonValue &v, const std::string &ctx)
{
    PipelineAxes axes;
    axes.tpRows = intAt(v, "axes", "tpRows", ctx);
    axes.tpCols = intAt(v, "axes", "tpCols", ctx);
    axes.pp = intAt(v, "axes", "pp", ctx);
    axes.dp = intAt(v, "axes", "dp", ctx);
    axes.microBatches = intAt(v, "axes", "microBatches", ctx);
    axes.chunks = intAt(v, "axes", "chunks", ctx);
    axes.schedule = pipelineScheduleFromName(
        stringAt(v, "axes", "schedule", ctx), ctx);
    axes.recompute = boolAt(v, "axes", "recompute", ctx);
    return axes;
}

} // namespace

std::string
enginePlanToJson(const EnginePlan &plan)
{
    std::string out;
    out.reserve(4096);
    out += "{\"cluster\":{\"dp\":";
    out += std::to_string(plan.cluster.dp);
    out += ",\"pp\":";
    out += std::to_string(plan.cluster.pp);
    out += ",\"tpRows\":";
    out += std::to_string(plan.cluster.tpRows);
    out += ",\"tpCols\":";
    out += std::to_string(plan.cluster.tpCols);
    out += ",\"oneD\":";
    out += plan.cluster.oneD ? "true" : "false";
    out += "},\"pickedBy\":";
    out += jsonString(plan.pickedBy);
    out += ",\"tp\":";
    appendAutotuneResult(out, plan.tp);
    if (plan.hasRobust) {
        out += ",\"robust\":{\"objective\":";
        out += jsonNumber(plan.robustObjective);
        out += ",\"pickIndex\":";
        out += std::to_string(plan.robustPickIndex);
        out += "}";
    }
    if (plan.hasRecovery) {
        out += ",\"recovery\":{\"checkpointInterval\":";
        out += jsonNumber(plan.checkpointInterval);
        out += ",\"goodput\":";
        out += jsonNumber(plan.goodput);
        out += ",\"effectiveStepTime\":";
        out += jsonNumber(plan.effectiveStepTime);
        out += "}";
    }
    if (plan.hasPipeline) {
        out += ",\"pipeline\":{\"axes\":";
        appendAxes(out, plan.axes);
        out += ",\"estTotal\":";
        out += jsonNumber(plan.pipelineEstTotal);
        out += ",\"simTotal\":";
        out += jsonNumber(plan.pipelineSimTotal);
        out += ",\"stageMemoryBytes\":";
        out += std::to_string(plan.stageMemoryBytes);
        out += ",\"peakStash\":";
        out += std::to_string(plan.peakStash);
        out += "}";
    }
    out += "}";
    return out;
}

EnginePlan
enginePlanFromJson(const std::string &text, const std::string &context)
{
    const JsonValue root = parseJson(text, "EnginePlan", context);
    if (root.kind != JsonValue::kObject)
        fatal("EnginePlan: %s: top-level value must be an object",
              context.c_str());
    EnginePlan plan;
    const JsonValue &cluster = memberAt(root, "plan", "cluster", context);
    plan.cluster.dp = intAt(cluster, "cluster", "dp", context);
    plan.cluster.pp = intAt(cluster, "cluster", "pp", context);
    plan.cluster.tpRows = intAt(cluster, "cluster", "tpRows", context);
    plan.cluster.tpCols = intAt(cluster, "cluster", "tpCols", context);
    plan.cluster.oneD = boolAt(cluster, "cluster", "oneD", context);
    plan.pickedBy = stringAt(root, "plan", "pickedBy", context);
    plan.tp = autotuneResultFromValue(
        memberAt(root, "plan", "tp", context), context);
    if (const JsonValue *robust = root.find("robust")) {
        plan.hasRobust = true;
        plan.robustObjective =
            numberAt(*robust, "robust", "objective", context);
        plan.robustPickIndex =
            intAt(*robust, "robust", "pickIndex", context);
    }
    if (const JsonValue *rec = root.find("recovery")) {
        plan.hasRecovery = true;
        plan.checkpointInterval =
            numberAt(*rec, "recovery", "checkpointInterval", context);
        plan.goodput = numberAt(*rec, "recovery", "goodput", context);
        plan.effectiveStepTime =
            numberAt(*rec, "recovery", "effectiveStepTime", context);
    }
    if (const JsonValue *pipe = root.find("pipeline")) {
        plan.hasPipeline = true;
        plan.axes = axesFromValue(
            memberAt(*pipe, "pipeline", "axes", context), context);
        plan.pipelineEstTotal =
            numberAt(*pipe, "pipeline", "estTotal", context);
        plan.pipelineSimTotal =
            numberAt(*pipe, "pipeline", "simTotal", context);
        plan.stageMemoryBytes =
            i64At(*pipe, "pipeline", "stageMemoryBytes", context);
        plan.peakStash = intAt(*pipe, "pipeline", "peakStash", context);
    }
    return plan;
}

std::string
shortlistToJson(const std::vector<AutotuneResult> &shortlist)
{
    std::string out;
    out.reserve(4096);
    out += "[";
    for (size_t i = 0; i < shortlist.size(); ++i) {
        if (i != 0)
            out += ",";
        appendAutotuneResult(out, shortlist[i]);
    }
    out += "]";
    return out;
}

std::vector<AutotuneResult>
shortlistFromJson(const std::string &text, const std::string &context)
{
    const JsonValue root = parseJson(text, "Shortlist", context);
    if (root.kind != JsonValue::kArray)
        fatal("Shortlist: %s: top-level value must be an array",
              context.c_str());
    std::vector<AutotuneResult> shortlist;
    shortlist.reserve(root.arr.size());
    for (const JsonValue &v : root.arr)
        shortlist.push_back(autotuneResultFromValue(v, context));
    return shortlist;
}

namespace {

void
rejectUnknownKeys(const JsonValue &obj, const char *path,
                  std::initializer_list<const char *> allowed,
                  const std::string &ctx)
{
    for (const auto &[key, value] : obj.obj) {
        bool known = false;
        for (const char *a : allowed)
            if (key == a) {
                known = true;
                break;
            }
        if (!known)
            fatal("%s: unknown key \"%s.%s\"", ctx.c_str(), path,
                  key.c_str());
    }
}

TransformerConfig
modelFromValue(const JsonValue &v, const std::string &ctx)
{
    if (v.kind == JsonValue::kString) {
        if (v.str == "gpt3")
            return gpt3Config();
        if (v.str == "megatron-nlg")
            return megatronNlgConfig();
        fatal("%s: unknown model preset \"%s\" "
              "(want gpt3/megatron-nlg or an object)",
              ctx.c_str(), v.str.c_str());
    }
    if (v.kind != JsonValue::kObject)
        fatal("%s: \"model\" must be a preset name or an object",
              ctx.c_str());
    rejectUnknownKeys(v, "model",
                      {"name", "layers", "hiddenDim", "heads", "ffnDim",
                       "vocab"},
                      ctx);
    TransformerConfig model;
    model.name = stringAt(v, "model", "name", ctx);
    model.layers = i64At(v, "model", "layers", ctx);
    model.hiddenDim = i64At(v, "model", "hiddenDim", ctx);
    model.heads = i64At(v, "model", "heads", ctx);
    model.ffnDim = i64At(v, "model", "ffnDim", ctx);
    if (v.find("vocab") != nullptr)
        model.vocab = i64At(v, "model", "vocab", ctx);
    return model;
}

} // namespace

PlanQuery
planQueryFromValue(const JsonValue &root, const ChipConfig &chip,
                   const std::string &context)
{
    if (root.kind != JsonValue::kObject)
        fatal("PlanQuery: %s: top-level value must be an object",
              context.c_str());
    rejectUnknownKeys(root, "query",
                      {"id", "model", "train", "chips", "algo",
                       "optimizeDataflow", "robust", "recovery",
                       "pipeline"},
                      context);
    PlanQuery q;
    q.chip = chip;
    q.model = modelFromValue(
        memberAt(root, "query", "model", context), context);
    if (root.find("chips") != nullptr)
        q.chips = intAt(root, "query", "chips", context);
    if (q.chips <= 0)
        fatal("PlanQuery: %s: \"chips\" must be positive (got %d)",
              context.c_str(), q.chips);
    if (const JsonValue *train = root.find("train")) {
        rejectUnknownKeys(*train, "train", {"batch", "seqLen"}, context);
        q.train.batch = i64At(*train, "train", "batch", context);
        if (train->find("seqLen") != nullptr)
            q.train.seqLen = i64At(*train, "train", "seqLen", context);
    } else {
        q.train = TrainingConfig::weakScaling(q.chips);
    }
    if (root.find("algo") != nullptr)
        q.algo = algorithmFromName(stringAt(root, "query", "algo", context),
                                   context);
    if (root.find("optimizeDataflow") != nullptr)
        q.optimizeDataflow =
            boolAt(root, "query", "optimizeDataflow", context);

    if (const JsonValue *robust = root.find("robust")) {
        rejectUnknownKeys(*robust, "robust",
                          {"topK", "numScenarios", "seed",
                           "linkDegradeFactor", "faultsPerScenario",
                           "stragglerProb", "stragglerFactor",
                           "maxLaunchJitter", "quantile",
                           "maxGemmsPerEval"},
                          context);
        q.runRobust = true;
        if (robust->find("topK") != nullptr)
            q.robust.topK = intAt(*robust, "robust", "topK", context);
        if (robust->find("numScenarios") != nullptr)
            q.robust.numScenarios =
                intAt(*robust, "robust", "numScenarios", context);
        if (robust->find("seed") != nullptr)
            q.robust.seed = static_cast<std::uint64_t>(
                i64At(*robust, "robust", "seed", context));
        if (robust->find("linkDegradeFactor") != nullptr)
            q.robust.linkDegradeFactor =
                numberAt(*robust, "robust", "linkDegradeFactor", context);
        if (robust->find("faultsPerScenario") != nullptr)
            q.robust.faultsPerScenario =
                intAt(*robust, "robust", "faultsPerScenario", context);
        if (robust->find("stragglerProb") != nullptr)
            q.robust.stragglerProb =
                numberAt(*robust, "robust", "stragglerProb", context);
        if (robust->find("stragglerFactor") != nullptr)
            q.robust.stragglerFactor =
                numberAt(*robust, "robust", "stragglerFactor", context);
        if (robust->find("maxLaunchJitter") != nullptr)
            q.robust.maxLaunchJitter =
                numberAt(*robust, "robust", "maxLaunchJitter", context);
        if (robust->find("quantile") != nullptr)
            q.robust.quantile =
                numberAt(*robust, "robust", "quantile", context);
        if (robust->find("maxGemmsPerEval") != nullptr)
            q.robust.maxGemmsPerEval =
                intAt(*robust, "robust", "maxGemmsPerEval", context);
    }

    if (const JsonValue *rec = root.find("recovery")) {
        rejectUnknownKeys(*rec, "recovery",
                          {"chipMtbf", "checkpointBytesPerChip",
                           "detectionLatency", "restartTime", "topK"},
                          context);
        q.runRecovery = true;
        q.recovery.chipMtbf =
            numberAt(*rec, "recovery", "chipMtbf", context);
        q.recovery.checkpointBytesPerChip =
            i64At(*rec, "recovery", "checkpointBytesPerChip", context);
        if (rec->find("detectionLatency") != nullptr)
            q.recovery.detectionLatency =
                numberAt(*rec, "recovery", "detectionLatency", context);
        if (rec->find("restartTime") != nullptr)
            q.recovery.restartTime =
                numberAt(*rec, "recovery", "restartTime", context);
        if (rec->find("topK") != nullptr)
            q.recovery.topK = intAt(*rec, "recovery", "topK", context);
    }

    if (const JsonValue *pipe = root.find("pipeline")) {
        rejectUnknownKeys(*pipe, "pipeline",
                          {"schedule", "chunks", "maxMicroBatches",
                           "topK", "recompute", "dpOverlap"},
                          context);
        q.runPipeline = true;
        if (pipe->find("schedule") != nullptr)
            q.pipeline.schedule = pipelineScheduleFromName(
                stringAt(*pipe, "pipeline", "schedule", context), context);
        if (pipe->find("chunks") != nullptr)
            q.pipeline.chunks =
                intAt(*pipe, "pipeline", "chunks", context);
        if (pipe->find("maxMicroBatches") != nullptr)
            q.pipeline.maxMicroBatches =
                intAt(*pipe, "pipeline", "maxMicroBatches", context);
        if (pipe->find("topK") != nullptr)
            q.pipeline.topK = intAt(*pipe, "pipeline", "topK", context);
        if (pipe->find("recompute") != nullptr)
            q.pipeline.recompute =
                boolAt(*pipe, "pipeline", "recompute", context);
        if (pipe->find("dpOverlap") != nullptr)
            q.pipeline.dpOverlap =
                numberAt(*pipe, "pipeline", "dpOverlap", context);
    }
    return q;
}

PlanQuery
planQueryFromJson(const std::string &text, const ChipConfig &chip,
                  const std::string &context)
{
    const JsonValue root = parseJson(text, "PlanQuery", context);
    return planQueryFromValue(root, chip, context);
}

} // namespace meshslice
