/**
 * @file
 * Content-addressed fingerprinting of configuration structs.
 *
 * A `Fingerprint` is an exact, order-sensitive textual encoding of a
 * sequence of named fields: doubles are rendered in hex-float form
 * (`%a`) so distinct values never collide through decimal rounding,
 * integers and booleans exactly, and strings length-prefixed so field
 * boundaries cannot be forged by crafted names. Two configurations
 * fingerprint equal iff every appended field is identical — the
 * property the PlanEngine's content-addressed plan cache and the
 * comm-calibration memoization both key on.
 *
 * Fingerprints are *not* hashes: the full text is the key (collision
 * free by construction). `digest()` additionally provides a short
 * FNV-1a 64-bit hex tag for display, stats paths and log lines.
 */
#ifndef MESHSLICE_UTIL_FINGERPRINT_HPP_
#define MESHSLICE_UTIL_FINGERPRINT_HPP_

#include <cstdint>
#include <string>
#include <string_view>

namespace meshslice {

/** Incremental builder of an exact textual configuration key. */
class Fingerprint
{
  public:
    /** Append a double in hex-float form (`name=<%a>;`). */
    Fingerprint &field(std::string_view name, double v);

    /** Append an integer exactly. */
    Fingerprint &field(std::string_view name, std::int64_t v);
    Fingerprint &field(std::string_view name, int v);

    /** Append a boolean as 0/1. */
    Fingerprint &field(std::string_view name, bool v);

    /** Append a string, length-prefixed (`name=<len>:<bytes>;`). */
    Fingerprint &field(std::string_view name, std::string_view v);

    /** Append a nested fingerprint under `name` (length-prefixed). */
    Fingerprint &sub(std::string_view name, const Fingerprint &fp);

    /** The exact key text accumulated so far. */
    const std::string &str() const { return text_; }

    /** 16-hex-digit FNV-1a 64 tag of `str()` (display only). */
    std::string digest() const;

  private:
    Fingerprint &append(std::string_view name, std::string_view value);

    std::string text_;
};

/** FNV-1a 64-bit hash of @p s, as 16 lowercase hex digits. */
std::string fnv1a64Hex(std::string_view s);

} // namespace meshslice

#endif // MESHSLICE_UTIL_FINGERPRINT_HPP_
