#include "util/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "util/logging.hpp"

namespace meshslice {

namespace {

/** True while the current thread is executing a pool chunk; nested
 *  parallelFor calls from such threads run inline to avoid deadlock. */
thread_local bool t_inside_pool_task = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

} // namespace

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("MESHSLICE_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(std::min(v, 512L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        panic("ThreadPool: thread count %d < 1", threads);
    workers_.reserve(static_cast<size_t>(threads - 1));
    for (int i = 0; i < threads - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runChunks(Job &job)
{
    const bool was_inside = t_inside_pool_task;
    t_inside_pool_task = true;
    for (;;) {
        const std::int64_t begin =
            job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.n)
            break;
        (*job.body)(begin, std::min(begin + job.chunk, job.n));
    }
    t_inside_pool_task = was_inside;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_epoch = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_cv_.wait(lock, [&] {
                return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
            });
            if (stop_)
                return;
            job = job_;
            seen_epoch = epoch_;
            job->working.fetch_add(1, std::memory_order_relaxed);
        }
        runChunks(*job);
        if (job->working.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last worker out: wake the caller (which may be waiting
            // for stragglers after exhausting the index space itself).
            std::unique_lock<std::mutex> lock(mu_);
            done_cv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::int64_t n, std::int64_t chunk,
                        const ChunkFn &body)
{
    if (n <= 0)
        return;
    if (chunk < 1)
        chunk = 1;
    // Serial pool, single-chunk loops and nested calls run inline:
    // same code path, no synchronization, deterministic by
    // construction.
    if (workers_.empty() || n <= chunk || t_inside_pool_task) {
        for (std::int64_t begin = 0; begin < n; begin += chunk)
            body(begin, std::min(begin + chunk, n));
        return;
    }

    Job job;
    job.n = n;
    job.chunk = chunk;
    job.body = &body;
    {
        std::unique_lock<std::mutex> lock(mu_);
        job_ = &job;
        ++epoch_;
    }
    wake_cv_.notify_all();
    runChunks(job); // the caller participates
    {
        // All indices are claimed; wait for workers still executing
        // their final chunk, then retract the job so late-waking
        // workers (which re-check `epoch_`) never touch a dead frame.
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
            return job.working.load(std::memory_order_acquire) == 0;
        });
        job_ = nullptr;
    }
}

ThreadPool &
ThreadPool::global()
{
    std::unique_lock<std::mutex> lock(g_global_mu);
    if (!g_global_pool)
        g_global_pool =
            std::make_unique<ThreadPool>(defaultThreadCount());
    return *g_global_pool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    std::unique_lock<std::mutex> lock(g_global_mu);
    g_global_pool = std::make_unique<ThreadPool>(threads);
}

void
parallelFor(std::int64_t n, std::int64_t chunk, const ChunkFn &body)
{
    ThreadPool::global().parallelFor(n, chunk, body);
}

} // namespace meshslice
