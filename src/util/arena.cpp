#include "util/arena.hpp"

#include "util/logging.hpp"

namespace meshslice {

Arena::Arena(std::size_t chunk_bytes) : chunkBytes_(roundUp(chunk_bytes))
{
    if (chunk_bytes == 0)
        panic("Arena: chunk size must be positive");
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (align > kGranule)
        panic("Arena: over-aligned allocation (align %zu > %zu)", align,
              kGranule);
    const std::size_t size = roundUp(bytes ? bytes : 1);
    inUse_ += size;

    // Recycle a freed block of the same size class if one exists.
    const std::size_t cls = size / kGranule;
    if (cls < freeLists_.size() && freeLists_[cls] != nullptr) {
        FreeBlock *block = freeLists_[cls];
        freeLists_[cls] = block->next;
        return block;
    }

    if (size > curLeft_) {
        // Oversized requests (bucket arrays of a growing hash map) get
        // a dedicated chunk; the partially-used current chunk is kept
        // for subsequent small allocations.
        const std::size_t chunk = size > chunkBytes_ ? size : chunkBytes_;
        chunks_.push_back(std::make_unique<char[]>(chunk));
        reserved_ += chunk;
        if (size > chunkBytes_) {
            // Dedicated chunk: consumed whole, bump state untouched.
            return chunks_.back().get();
        }
        cur_ = chunks_.back().get();
        curLeft_ = chunk;
    }
    char *p = cur_;
    cur_ += size;
    curLeft_ -= size;
    return p;
}

void
Arena::deallocate(void *p, std::size_t bytes)
{
    if (p == nullptr)
        return;
    const std::size_t size = roundUp(bytes ? bytes : 1);
    inUse_ -= size;
    const std::size_t cls = size / kGranule;
    if (freeLists_.size() <= cls)
        freeLists_.resize(cls + 1, nullptr);
    FreeBlock *block = static_cast<FreeBlock *>(p);
    block->next = freeLists_[cls];
    freeLists_[cls] = block;
}

} // namespace meshslice
