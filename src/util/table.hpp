/**
 * @file
 * ASCII table printer used by the benchmark harness to emit the
 * rows/series the paper's tables and figures report.
 */
#ifndef MESHSLICE_UTIL_TABLE_HPP_
#define MESHSLICE_UTIL_TABLE_HPP_

#include <ostream>
#include <string>
#include <vector>

namespace meshslice {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"algo", "chips", "util"});
 *   t.addRow({"MeshSlice", "256", "67.4%"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

    /** Convenience: format a ratio as a percentage string. */
    static std::string pct(double ratio, int digits = 1);

    /** Render the table with aligned columns and a separator rule. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (for downstream plotting). */
    void printCsv(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace meshslice

#endif // MESHSLICE_UTIL_TABLE_HPP_
