/**
 * @file
 * Per-run arena allocator for simulation objects.
 *
 * A simulation run churns through many small, identically-sized
 * allocations — fluid-flow map nodes, event bookkeeping — whose
 * lifetimes all end with the run. `Arena` serves them from large
 * chunks with a bump pointer plus per-size-class free lists, so
 * allocation is a pointer increment, freed blocks are recycled without
 * touching the global heap, and everything is released at once when
 * the owning run (its `Cluster`) is destroyed. Because each run owns
 * its arena, concurrent candidate simulations never contend on a
 * shared allocator — one of the isolation requirements of the
 * parallel tuner loops.
 *
 * Not thread-safe by design: an arena belongs to exactly one
 * simulation run, which is single-threaded.
 */
#ifndef MESHSLICE_UTIL_ARENA_HPP_
#define MESHSLICE_UTIL_ARENA_HPP_

#include <cstddef>
#include <memory>
#include <vector>

namespace meshslice {

/** Chunked bump allocator with size-class free-list recycling. */
class Arena
{
  public:
    /** @p chunk_bytes is the granularity of upstream allocations. */
    explicit Arena(std::size_t chunk_bytes = 64 * 1024);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes aligned to @p align (<= alignof(max_align_t);
     * the arena is for ordinary objects, not over-aligned types).
     * Never returns null (allocation failure is fatal, as everywhere
     * in this codebase).
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Return a block to the arena's free list for reuse. */
    void deallocate(void *p, std::size_t bytes);

    /** Total bytes reserved from the upstream allocator. */
    std::size_t bytesReserved() const { return reserved_; }

    /** Bytes currently handed out (allocated minus deallocated). */
    std::size_t bytesInUse() const { return inUse_; }

  private:
    struct FreeBlock
    {
        FreeBlock *next;
    };

    /** All blocks are rounded up to a multiple of this (and it is the
     *  maximum alignment served). */
    static constexpr std::size_t kGranule = alignof(std::max_align_t);

    static std::size_t roundUp(std::size_t bytes)
    {
        return (bytes + kGranule - 1) / kGranule * kGranule;
    }

    std::vector<std::unique_ptr<char[]>> chunks_;
    std::size_t chunkBytes_;
    char *cur_ = nullptr;       ///< bump pointer into the last chunk
    std::size_t curLeft_ = 0;   ///< bytes left after the bump pointer
    /** Free list heads, indexed by size class (rounded size / granule). */
    std::vector<FreeBlock *> freeLists_;
    std::size_t reserved_ = 0;
    std::size_t inUse_ = 0;
};

/**
 * Minimal STL allocator over an `Arena` (the arena must outlive every
 * container using it). Containers sharing one arena compare equal.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(
            arena_->allocate(n * sizeof(T), alignof(T)));
    }

    void deallocate(T *p, std::size_t n)
    {
        arena_->deallocate(p, n * sizeof(T));
    }

    Arena *arena() const { return arena_; }

  private:
    Arena *arena_;
};

template <typename A, typename B>
bool
operator==(const ArenaAllocator<A> &a, const ArenaAllocator<B> &b)
{
    return a.arena() == b.arena();
}

template <typename A, typename B>
bool
operator!=(const ArenaAllocator<A> &a, const ArenaAllocator<B> &b)
{
    return !(a == b);
}

} // namespace meshslice

#endif // MESHSLICE_UTIL_ARENA_HPP_
