#include "util/fingerprint.hpp"

#include <cstdio>

namespace meshslice {

Fingerprint &
Fingerprint::append(std::string_view name, std::string_view value)
{
    text_.append(name);
    text_ += '=';
    text_.append(value);
    text_ += ';';
    return *this;
}

Fingerprint &
Fingerprint::field(std::string_view name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return append(name, buf);
}

Fingerprint &
Fingerprint::field(std::string_view name, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return append(name, buf);
}

Fingerprint &
Fingerprint::field(std::string_view name, int v)
{
    return field(name, static_cast<std::int64_t>(v));
}

Fingerprint &
Fingerprint::field(std::string_view name, bool v)
{
    return append(name, v ? "1" : "0");
}

Fingerprint &
Fingerprint::field(std::string_view name, std::string_view v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zu", v.size());
    text_.append(name);
    text_ += '=';
    text_ += buf;
    text_ += ':';
    text_.append(v);
    text_ += ';';
    return *this;
}

Fingerprint &
Fingerprint::sub(std::string_view name, const Fingerprint &fp)
{
    return field(name, std::string_view(fp.text_));
}

std::string
Fingerprint::digest() const
{
    return fnv1a64Hex(text_);
}

std::string
fnv1a64Hex(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace meshslice
