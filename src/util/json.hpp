/**
 * @file
 * Minimal JSON emission and parsing helpers shared by every reader and
 * writer in the repo (Chrome traces, stats dumps, tuner search JSONL,
 * bench reports, fault scenarios, serialized plans).
 *
 * Historically each writer spliced raw strings into its output, which
 * produced invalid JSON the moment a span name contained a quote or a
 * backslash. All writers now route strings through `escapeJson` and
 * numbers through `jsonNumber` (which maps non-finite values to
 * `null`, the only legal JSON spelling).
 *
 * The parser (`parseJson`) started life inside `sim/fault` for
 * `FaultScenario::fromJson` and moved here when the PlanEngine's plan
 * serialization needed the same machinery: a small recursive-descent
 * parser over objects/arrays/strings/numbers/bools/null whose every
 * error goes through `fatal` with a *byte offset* and a caller-chosen
 * prefix, so a broken input file points at the problem.
 */
#ifndef MESHSLICE_UTIL_JSON_HPP_
#define MESHSLICE_UTIL_JSON_HPP_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meshslice {

/**
 * Escape @p s for inclusion inside a double-quoted JSON string:
 * backslash, quote, and control characters (U+0000..U+001F) are
 * escaped; everything else (including UTF-8 multibyte sequences) is
 * passed through verbatim. Does NOT add the surrounding quotes.
 */
std::string escapeJson(std::string_view s);

/** `"` + escapeJson(s) + `"`. */
std::string jsonString(std::string_view s);

/**
 * Format @p v as a JSON number with round-trippable precision
 * (`%.17g`). Infinities and NaNs — which JSON cannot represent — are
 * emitted as `null`.
 */
std::string jsonNumber(double v);

/**
 * One parsed JSON value. Objects preserve key order (so a document
 * can be inspected for duplicate/unknown keys deterministically);
 * numbers are doubles, matching what `jsonNumber` can emit.
 */
struct JsonValue
{
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** First value under @p key of an object, or nullptr. */
    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/**
 * Parse one complete JSON document from @p text. Any syntax error is
 * `fatal("<error_prefix>: <what> at byte <off> of <context>")` — the
 * same positional-diagnostic contract `FaultScenario::fromJson`
 * established. Trailing non-whitespace after the document is an error.
 */
JsonValue parseJson(const std::string &text, const char *error_prefix,
                    const std::string &context);

} // namespace meshslice

#endif // MESHSLICE_UTIL_JSON_HPP_
