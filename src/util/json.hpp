/**
 * @file
 * Minimal JSON emission helpers shared by every writer in the repo
 * (Chrome traces, stats dumps, tuner search JSONL, bench reports).
 *
 * Historically each writer spliced raw strings into its output, which
 * produced invalid JSON the moment a span name contained a quote or a
 * backslash. All writers now route strings through `escapeJson` and
 * numbers through `jsonNumber` (which maps non-finite values to
 * `null`, the only legal JSON spelling).
 */
#ifndef MESHSLICE_UTIL_JSON_HPP_
#define MESHSLICE_UTIL_JSON_HPP_

#include <string>
#include <string_view>

namespace meshslice {

/**
 * Escape @p s for inclusion inside a double-quoted JSON string:
 * backslash, quote, and control characters (U+0000..U+001F) are
 * escaped; everything else (including UTF-8 multibyte sequences) is
 * passed through verbatim. Does NOT add the surrounding quotes.
 */
std::string escapeJson(std::string_view s);

/** `"` + escapeJson(s) + `"`. */
std::string jsonString(std::string_view s);

/**
 * Format @p v as a JSON number with round-trippable precision
 * (`%.17g`). Infinities and NaNs — which JSON cannot represent — are
 * emitted as `null`.
 */
std::string jsonNumber(double v);

} // namespace meshslice

#endif // MESHSLICE_UTIL_JSON_HPP_
