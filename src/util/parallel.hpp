/**
 * @file
 * Shared CPU parallelism layer: a small fixed-size thread pool with
 * deterministic map/reduce helpers.
 *
 * The pool backs the two hot paths of the repo — the autotuner's
 * design-space search (mesh shapes x slice counts) and the functional
 * runtime's blocked GeMM kernel — so a single `MESHSLICE_THREADS`
 * knob controls all host parallelism:
 *
 *  - `MESHSLICE_THREADS` unset: `std::thread::hardware_concurrency()`.
 *  - `MESHSLICE_THREADS=1`: fully serial execution (determinism
 *    debugging; the pool spawns no workers at all).
 *  - `MESHSLICE_THREADS=N`: exactly N executing threads (the caller
 *    participates, so N-1 workers are spawned).
 *
 * Determinism guarantee: `parallelFor` only promises that every index
 * in [0, n) is visited exactly once; `parallelMapReduce` additionally
 * guarantees a *serial, index-ordered* reduction, so any fold over it
 * (argmin with tie-breaks, float summation, ...) is bit-identical to
 * the serial loop regardless of thread count.
 *
 * Nested parallel regions degrade gracefully: a `parallelFor` issued
 * from inside a pool task runs inline on the issuing thread, so
 * library code may use the pool without caring who calls it.
 */
#ifndef MESHSLICE_UTIL_PARALLEL_HPP_
#define MESHSLICE_UTIL_PARALLEL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace meshslice {

/** Chunked loop body: processes indices [begin, end). */
using ChunkFn = std::function<void(std::int64_t, std::int64_t)>;

/** A fixed-size pool of worker threads executing chunked loops. */
class ThreadPool
{
  public:
    /**
     * @p threads is the number of *executing* threads (callers of
     * `parallelFor` participate): `threads - 1` workers are spawned,
     * and `threads <= 1` means no workers (serial execution).
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Executing threads (workers + the calling thread), >= 1. */
    int threads() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Run @p body over [0, n) in chunks of at most @p chunk indices.
     * Chunks are claimed dynamically (work stealing off one atomic
     * counter); every index is processed exactly once. Blocks until
     * all n indices are done. Runs inline when serial, when n fits in
     * one chunk, or when called from inside another pool task.
     */
    void parallelFor(std::int64_t n, std::int64_t chunk,
                     const ChunkFn &body);

    /**
     * The process-wide pool, lazily created with
     * `defaultThreadCount()` threads on first use.
     */
    static ThreadPool &global();

    /**
     * Destroy and re-create the global pool with @p threads executing
     * threads (tests and benchmarks use this to compare serial vs
     * parallel runs within one process). Not safe to call while the
     * global pool is executing a loop.
     */
    static void setGlobalThreads(int threads);

    /**
     * Thread count the global pool starts with: `MESHSLICE_THREADS`
     * if set (clamped to [1, 512]), else hardware concurrency.
     */
    static int defaultThreadCount();

  private:
    struct Job
    {
        std::atomic<std::int64_t> next{0}; ///< first unclaimed index
        std::int64_t n = 0;
        std::int64_t chunk = 1;
        const ChunkFn *body = nullptr;
        std::atomic<int> working{0}; ///< workers still inside run()
    };

    void workerLoop();
    static void runChunks(Job &job);

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable wake_cv_; ///< workers: new job / shutdown
    std::condition_variable done_cv_; ///< caller: workers drained
    Job *job_ = nullptr;              ///< current job, null when idle
    std::uint64_t epoch_ = 0;         ///< bumped per job
    bool stop_ = false;
};

/** `ThreadPool::global().parallelFor(n, chunk, body)`. */
void parallelFor(std::int64_t n, std::int64_t chunk, const ChunkFn &body);

/**
 * Deterministic parallel map-reduce: computes `map(i)` for every i in
 * [0, n) on the global pool, then folds `acc = reduce(acc, result_i)`
 * *serially in index order*. The fold is therefore bit-identical to
 * the equivalent serial loop for any (even non-associative) reduce.
 */
template <typename Result, typename MapFn, typename ReduceFn>
Result
parallelMapReduce(std::int64_t n, Result init, const MapFn &map,
                  const ReduceFn &reduce, std::int64_t chunk = 1)
{
    std::vector<Result> partial(static_cast<size_t>(n > 0 ? n : 0));
    parallelFor(n, chunk, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
            partial[static_cast<size_t>(i)] = map(i);
    });
    Result acc = std::move(init);
    for (Result &p : partial)
        acc = reduce(std::move(acc), std::move(p));
    return acc;
}

} // namespace meshslice

#endif // MESHSLICE_UTIL_PARALLEL_HPP_
