/**
 * @file
 * Minimal logging and error-reporting facilities.
 *
 * Follows the gem5 distinction between `panic` (internal invariant broken,
 * aborts) and `fatal` (user error, exits cleanly), plus `warn`/`inform`
 * status messages. All helpers format with printf-style semantics via
 * std::snprintf to avoid iostream overhead inside the simulator hot path.
 */
#ifndef MESHSLICE_UTIL_LOGGING_HPP_
#define MESHSLICE_UTIL_LOGGING_HPP_

#include <cstdarg>
#include <string>

namespace meshslice {

/** Verbosity levels for status messages. */
enum class LogLevel { kQuiet = 0, kWarn = 1, kInform = 2, kDebug = 3 };

/** Global log threshold; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violated: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unrecoverable user/configuration error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Possibly-incorrect behaviour the user should know about. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Normal operating status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** High-volume debugging message (suppressed unless kDebug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace meshslice

#endif // MESHSLICE_UTIL_LOGGING_HPP_
