/**
 * @file
 * Small integer-math helpers shared by the sharding and cost-model code.
 */
#ifndef MESHSLICE_UTIL_MATH_HPP_
#define MESHSLICE_UTIL_MATH_HPP_

#include <cstdint>
#include <vector>

namespace meshslice {

/** Ceiling division for non-negative integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr std::int64_t
roundUp(std::int64_t a, std::int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** True iff @p v is a power of two (v > 0). */
constexpr bool
isPow2(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** All positive divisors of @p n, in increasing order. */
std::vector<std::int64_t> divisorsOf(std::int64_t n);

/**
 * All (rows, cols) factorizations of @p n with rows * cols == n,
 * in increasing order of rows.
 */
std::vector<std::pair<std::int64_t, std::int64_t>>
meshShapesOf(std::int64_t n);

} // namespace meshslice

#endif // MESHSLICE_UTIL_MATH_HPP_
