#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace meshslice {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        panic("Table: header must not be empty");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size())
        panic("Table: row arity %zu != header arity %zu", cells.size(),
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

std::string
Table::pct(double ratio, int digits)
{
    return num(ratio * 100.0, digits) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };

    emit_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << row[c];
        os << "\n";
    };
    emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace meshslice
