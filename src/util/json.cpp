#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace meshslice {

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonString(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += escapeJson(s);
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace meshslice
