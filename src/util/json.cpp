#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hpp"

namespace meshslice {

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonString(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    out += escapeJson(s);
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace {

/**
 * Recursive-descent parser over objects/arrays/strings/numbers/bools/
 * null. Errors go through `fatal` with a byte offset so a broken input
 * file points at the problem.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &text, const char *error_prefix,
               const std::string &context)
        : text_(text), prefix_(error_prefix), context_(context)
    {
    }

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *msg)
    {
        fatal("%s: %s at byte %zu of %s", prefix_, msg, pos_,
              context_.c_str());
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strprintf("expected '%c'", c).c_str());
        ++pos_;
    }

    bool
    consumeKeyword(const char *kw)
    {
        size_t len = std::string(kw).size();
        if (text_.compare(pos_, len, kw) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::kString;
            v.str = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::kBool;
            if (consumeKeyword("true"))
                v.boolean = true;
            else if (consumeKeyword("false"))
                v.boolean = false;
            else
                fail("bad keyword");
            return v;
          }
          case 'n': {
            if (!consumeKeyword("null"))
                fail("bad keyword");
            return JsonValue{};
          }
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::kObject;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.obj.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::kArray;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.arr.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (cp >= 0xd800 && cp <= 0xdfff)
                    fail("surrogate \\u escapes are not supported");
                // Encode as UTF-8.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double num = std::strtod(begin, &end);
        if (end == begin)
            fail("expected a JSON value");
        pos_ += static_cast<size_t>(end - begin);
        JsonValue v;
        v.kind = JsonValue::kNumber;
        v.number = num;
        return v;
    }

    const std::string &text_;
    const char *prefix_;
    const std::string &context_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text, const char *error_prefix,
          const std::string &context)
{
    return JsonParser(text, error_prefix, context).parseDocument();
}

} // namespace meshslice
