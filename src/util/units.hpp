/**
 * @file
 * Basic unit types and literals used across the MeshSlice libraries.
 *
 * Simulated time is a double in seconds. Rates are bytes/second or
 * FLOP/second. Helper constructors keep call sites readable
 * (e.g. `us(1.5)`, `GiB(2)`).
 */
#ifndef MESHSLICE_UTIL_UNITS_HPP_
#define MESHSLICE_UTIL_UNITS_HPP_

#include <cstdint>

namespace meshslice {

/** Simulated time in seconds. */
using Time = double;

/** Transfer or compute rate (bytes/s or FLOP/s). */
using Rate = double;

/** Number of bytes (may exceed 32 bits for large tensors). */
using Bytes = std::int64_t;

/** Floating-point operation count. */
using Flops = double;

/** @name Time literals. @{ */
constexpr Time seconds(double v) { return v; }
constexpr Time ms(double v) { return v * 1e-3; }
constexpr Time us(double v) { return v * 1e-6; }
constexpr Time ns(double v) { return v * 1e-9; }
/** @} */

/** @name Size literals (decimal and binary). @{ */
constexpr Bytes KB(double v) { return static_cast<Bytes>(v * 1e3); }
constexpr Bytes MB(double v) { return static_cast<Bytes>(v * 1e6); }
constexpr Bytes GB(double v) { return static_cast<Bytes>(v * 1e9); }
constexpr Bytes KiB(double v) { return static_cast<Bytes>(v * 1024.0); }
constexpr Bytes MiB(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0); }
constexpr Bytes GiB(double v)
{
    return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0);
}
/** @} */

/** @name Rate literals. @{ */
constexpr Rate GBps(double v) { return v * 1e9; }
constexpr Rate TFLOPS(double v) { return v * 1e12; }
/** @} */

} // namespace meshslice

#endif // MESHSLICE_UTIL_UNITS_HPP_
