#include "util/math.hpp"

#include "util/logging.hpp"

namespace meshslice {

std::vector<std::int64_t>
divisorsOf(std::int64_t n)
{
    if (n <= 0)
        panic("divisorsOf: n must be positive, got %lld",
              static_cast<long long>(n));
    std::vector<std::int64_t> lo, hi;
    for (std::int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            lo.push_back(d);
            if (d != n / d)
                hi.push_back(n / d);
        }
    }
    for (auto it = hi.rbegin(); it != hi.rend(); ++it)
        lo.push_back(*it);
    return lo;
}

std::vector<std::pair<std::int64_t, std::int64_t>>
meshShapesOf(std::int64_t n)
{
    std::vector<std::pair<std::int64_t, std::int64_t>> shapes;
    for (std::int64_t r : divisorsOf(n))
        shapes.emplace_back(r, n / r);
    return shapes;
}

} // namespace meshslice
