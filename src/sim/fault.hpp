/**
 * @file
 * Deterministic fault & straggler injection.
 *
 * A `FaultScenario` is a declarative description of everything that can
 * go wrong in a run: ICI links running below nominal bandwidth for a
 * window, links going fully down, straggler chips (scaled compute / HBM
 * capacity), and per-op host launch jitter. A `FaultInjector` turns the
 * scenario into capacity-modulation events on a `FluidNetwork` — all
 * scheduling happens up front from `arm()`, and the jitter stream is a
 * seeded counter-free PRNG, so a scenario replays **bit-identically**
 * for a given seed regardless of host, thread count, or wall clock.
 *
 * Faults address resources by *name pattern* (substring match against
 * the fluid network's registered names, e.g. `"link.E"` hits every
 * east-going link and `"chip3."` hits chip 3's core and HBM). This
 * keeps the injector in the sim layer: it needs no knowledge of the
 * torus, only of the resource naming convention.
 *
 * Semantics (documented in DESIGN.md §4d):
 *  - `factor` scales the resource's *nominal* capacity; overlapping
 *    windows on the same resource multiply.
 *  - `factor == 0` means the resource is down for the window: flows
 *    demanding it park (progress frozen) and resume on recovery. If
 *    nothing else can make progress the simulator's watchdog aborts
 *    with a flow dump rather than hanging or finishing early.
 *  - `duration < 0` means the fault persists to the end of the run.
 *  - launch jitter is a uniform draw in [0, maxLaunchJitter) added to
 *    every collective's host launch overhead. With
 *    `maxLaunchJitter == 0` the PRNG is never consulted, so an empty
 *    scenario is bit-identical to running with no injector at all.
 */
#ifndef MESHSLICE_SIM_FAULT_HPP_
#define MESHSLICE_SIM_FAULT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fluid.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace meshslice {

/**
 * One capacity-modulation window applied to every resource whose name
 * contains `pattern`.
 */
struct CapacityFault
{
    /** Substring matched against resource names ("link.E", "chip3."). */
    std::string pattern;
    /** Capacity multiplier in [0, 1]; exactly 0 takes the resource down. */
    double factor = 1.0;
    /** Window start (simulated seconds). */
    Time start = 0.0;
    /** Window length; negative = persists to the end of the run. */
    Time duration = -1.0;
};

/**
 * A permanent **fail-stop** event: every resource whose name contains
 * `pattern` goes down at `at` and never comes back. Unlike a
 * `CapacityFault` with `factor == 0` (a *degradation window* the
 * simulation waits out), a kill changes the failure semantics: work
 * routed through a killed resource can never finish, so collectives
 * must detect the failure (after the scenario's `detectionLatency`),
 * abort, and retry on a ring rebuilt around the corpse — or the run
 * is over. `"chip3."` kills chip 3 (core + HBM); `"link.E.b0.r1.c2"`
 * kills one link direction.
 */
struct KillFault
{
    /** Substring matched against resource names. */
    std::string pattern;
    /** Simulated time of the permanent failure (seconds, >= 0). */
    Time at = 0.0;
};

/**
 * A straggler chip: its core and HBM run below nominal for a window.
 * Sugar over two `CapacityFault`s on "chip<i>.core" / "chip<i>.hbm".
 */
struct StragglerFault
{
    int chip = -1;
    double computeFactor = 1.0;
    double hbmFactor = 1.0;
    Time start = 0.0;
    Time duration = -1.0;
};

/**
 * Declarative, seed-replayable description of a degraded cluster.
 * Construct programmatically or parse from JSON (`fromJson`).
 */
struct FaultScenario
{
    /** Seed for the launch-jitter stream (and only that stream). */
    std::uint64_t seed = 1;
    /** Upper bound of the per-op uniform launch jitter (seconds). */
    Time maxLaunchJitter = 0.0;
    std::vector<CapacityFault> faults;
    std::vector<StragglerFault> stragglers;
    /** Permanent fail-stop events (chips or links that die for good). */
    std::vector<KillFault> kills;
    /**
     * Failure-detection latency: how long after a kill the runtime
     * *notices* (heartbeat interval + consensus). Collectives touching
     * a killed resource abort `detectionLatency` seconds after the
     * kill (or after their launch, if they launch into a corpse).
     * Inert when `kills` is empty.
     */
    Time detectionLatency = 0.5;

    /** True when the scenario perturbs nothing at all. */
    bool empty() const;

    /** Serialize to a standalone JSON document (schema in DESIGN.md). */
    std::string toJson() const;

    /**
     * Parse the JSON emitted by `toJson` (all keys optional). Calls
     * `fatal()` with position information on malformed input or
     * out-of-range values. @p context names the source in errors
     * (e.g. a file path).
     */
    static FaultScenario fromJson(const std::string &text,
                                  const std::string &context = "<string>");

    /** `fromJson` on the contents of @p path; fatal if unreadable. */
    static FaultScenario fromJsonFile(const std::string &path);
};

/**
 * Malformed-scenario checks shared by `fromJson` and `FaultInjector::
 * arm()`: negative `detectionLatency`, a second kill of an already-dead
 * resource (two kills with colliding patterns where the later one fires
 * at or after the earlier one's detection window), and a kill whose
 * `at` lies inside another kill's detection window on the same
 * resource. Each violation is a `fatal()` naming the offending kill
 * indices. Patterns are substring matches, so two kills can hit the
 * same resource only when one pattern contains the other.
 */
void validateScenario(const FaultScenario &scenario,
                      const std::string &context);

/**
 * The deterministic jitter seed of phase @p phase of an elastic run
 * re-based on @p seed (one splitmix64 mix; stable across hosts).
 */
std::uint64_t derivePhaseSeed(std::uint64_t seed, std::uint64_t phase);

/**
 * Re-base @p scenario onto a phase whose global start time is
 * @p start, with @p phase_seed as the jitter seed: window starts shift
 * by `-start` (a window already in progress is clamped to start at 0
 * with its remaining duration; a fully elapsed window is dropped), and
 * kill times clamp to `max(0, at - start)` — a chip that died before
 * the phase began is still dead *at* phase start. The elastic runtime
 * runs every phase on a fresh cluster at local t=0; this is the
 * scenario each phase's injector arms.
 */
FaultScenario sliceScenarioForPhase(const FaultScenario &scenario,
                                    Time start, std::uint64_t phase_seed);

/**
 * Rewrite chip-addressed entries ("chip<i>." patterns, straggler chip
 * ids) after a mesh shrink: @p old_to_new maps old linear chip ids to
 * survivor ids (-1 = retired). Entries addressing retired chips are
 * dropped; link-pattern capacity faults are dropped too (survivor
 * links are renumbered, so old link names are meaningless). Kills must
 * already be consumed (the elastic runtime handles one kill per run);
 * a remaining kill is fatal.
 */
FaultScenario remapScenarioChips(const FaultScenario &scenario,
                                 const std::vector<int> &old_to_new);

/**
 * Applies a `FaultScenario` to a live `FluidNetwork`.
 *
 * `arm()` resolves every fault's pattern against the network's resource
 * names and schedules capacity updates at each window boundary; at each
 * boundary the *product* of all active factors on a resource decides
 * its capacity (0 → down). Collectives consult `nextLaunchJitter()` on
 * every op launch.
 */
class FaultInjector
{
  public:
    FaultInjector(Simulator &sim, FluidNetwork &net, FaultScenario scenario);

    /**
     * Resolve patterns and schedule all capacity events. Call exactly
     * once, after every resource is registered and before `run()`.
     * A pattern matching no resource is a fatal error (most likely a
     * typo in the scenario, and silently ignoring it would make a
     * "robust" result meaningless).
     */
    void arm();

    /**
     * Next host launch jitter draw (seconds, uniform in
     * [0, maxLaunchJitter)). Returns 0.0 *without consuming a PRNG
     * draw* when the scenario has no jitter, preserving bit-identical
     * behaviour of the empty scenario.
     */
    Time nextLaunchJitter();

    const FaultScenario &scenario() const { return scenario_; }

    /** Number of (resource, window) pairs scheduled by `arm()`. */
    int armedWindowCount() const { return armedWindows_; }

    /** True iff the scenario has at least one kill event. Collectives
     *  guard all fail-stop bookkeeping behind this so a kill-free run
     *  stays bit-identical to a run with no injector at all. */
    bool hasKills() const { return !scenario_.kills.empty(); }

    /** True iff @p id is permanently dead at the current sim time. */
    bool isKilled(ResourceId id) const;

    /** Kill time of @p id, or a negative value if it is never killed. */
    Time killTime(ResourceId id) const;

    /**
     * Earliest kill time `t` with `t >= after` among @p resources
     * (a kill at or before `after` that already happened also counts:
     * the failure is *still in effect*, so the earliest relevant time
     * is `after` itself). Returns a negative value when none of the
     * resources is ever killed.
     */
    Time earliestKillAfter(Time after,
                           const std::vector<ResourceId> &resources) const;

    /** The scenario's failure-detection latency (seconds). */
    Time detectionLatency() const { return scenario_.detectionLatency; }

  private:
    Simulator &sim_;
    FluidNetwork &net_;
    FaultScenario scenario_;
    std::uint64_t rngState_;
    int armedWindows_ = 0;
    bool armed_ = false;
    /** resource id -> kill time, filled by arm(). */
    std::unordered_map<ResourceId, Time> killAt_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_FAULT_HPP_
