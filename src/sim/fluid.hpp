/**
 * @file
 * Fluid (rate-shared) resource network.
 *
 * This is the contention substrate of the cluster simulator and stands in
 * for the paper's packet-level SST + DRAMSim3 stack. Every shared piece of
 * hardware (an ICI link direction, a chip's HBM, a compute core) is a
 * `Resource` with a capacity in units/second. Work in flight (a shard
 * transfer, a GeMM's memory stream, a GeMM's FLOPs) is a `Flow` with a
 * size and a per-resource demand vector.
 *
 * Between events every flow progresses at a constant rate
 *
 *     rate(f) = min over its resources r of  alloc(f, r) / demand(f, r)
 *
 * where allocations are computed with a work-conserving saturate-and-
 * waterfill pass: flows start at their solo rate (capacity-limited on each
 * resource independently); while some resource is oversubscribed, the most
 * oversubscribed one is picked and its flows are water-filled so the
 * heaviest consumers are cut to an equal consumption level that exactly
 * fills the capacity. This reproduces the first-order behaviour the paper
 * relies on: NIC transfers capped by link bandwidth, compute streams using
 * the *remaining* HBM bandwidth, and slowdowns when the sum oversubscribes
 * HBM (the NIC<->core interference of Sec 4.1).
 *
 * Event batching (the default): per-resource accounting is settled
 * *lazily* — only resources whose load is about to change are brought
 * up to date, instead of sweeping every registered resource at every
 * event. Between settles a resource's load is constant, so the deferred
 * segment is recovered exactly (`resourceStats` folds the unsettled
 * tail on read) and the conservation law `busy + idle == wall` holds to
 * the same tolerances as the eager sweep. Likewise the waterfill and
 * the load-refresh loops touch only the resources that current flows
 * actually demand. This turns the per-event cost from O(all resources)
 * into O(active members) — the difference between a 100-chip and a
 * 100k-chip torus being simulable. `setEagerAccounting(true)` restores
 * the legacy full sweep (benchmarks A/B the two; flow completion times
 * are identical in both modes).
 */
#ifndef MESHSLICE_SIM_FLUID_HPP_
#define MESHSLICE_SIM_FLUID_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/critical_path.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"
#include "util/units.hpp"

namespace meshslice {

using ResourceId = std::int32_t;
using FlowId = std::int64_t;

/** One resource requirement of a flow. */
struct Demand
{
    ResourceId resource;
    /** Resource units consumed per flow unit (e.g. bytes per FLOP). */
    double perUnit;
};

/** Snapshot of a resource's accounting, for tests and reports. */
struct ResourceStats
{
    std::string name;
    double capacity = 0.0;
    /** Capacity the resource was registered with (fault-free value). */
    double nominalCapacity = 0.0;
    /**
     * Seconds during which the resource ran below its nominal capacity
     * (a fault injector degraded it) or was unavailable entirely. This
     * is where "degraded-seconds" land for robustness reports.
     */
    double degradedTime = 0.0;
    /** False while the resource is down (flows demanding it park). */
    bool available = true;
    /** Total units consumed so far (integral of load over time). */
    double totalConsumed = 0.0;
    /** Integral of load/capacity over time (busy-seconds). */
    double busyTime = 0.0;
    /**
     * Integral of (1 - load/capacity): seconds of unused capacity.
     * Tracked independently of `busyTime` so the conservation law
     * `busyTime + idleTime == now - createdAt` is a real check of the
     * accounting (a missed advance breaks it).
     */
    double idleTime = 0.0;
    /**
     * Seconds during which the flows' *uncontended* demand exceeded the
     * capacity — i.e. the rate-sharing waterfill actually cut somebody.
     * This is the fluid-model analogue of queueing/contention time.
     */
    double contentionTime = 0.0;
    /** Simulated time the resource was registered (accounting start). */
    Time createdAt = 0.0;
    int activeFlows = 0;
};

/**
 * Rate-shared resources and flows on top of a `Simulator`.
 *
 * Rates are recomputed lazily: flow arrivals/departures mark the network
 * dirty and a zero-delay event performs one recomputation per timestamp,
 * so batches of simultaneous changes (all chips of a ring step) cost one
 * global update.
 */
class FluidNetwork
{
  public:
    explicit FluidNetwork(Simulator &sim);

    /** Create a resource with @p capacity units/second. */
    ResourceId addResource(std::string name, double capacity);

    /**
     * Change a resource's capacity (takes effect at next recompute).
     * Accounting of the elapsed segment is settled at the *old*
     * capacity first, so time-varying capacities attribute busy/idle/
     * degraded seconds to the correct windows and the conservation law
     * `busy + idle == wall` keeps holding.
     */
    void setCapacity(ResourceId id, double capacity);

    /**
     * Mark a resource up/down. Flows demanding a down resource park at
     * rate zero (they freeze, keeping their progress) and resume when
     * the resource comes back. If the simulation drains its event
     * queue while flows are parked, the watchdog aborts with a
     * diagnostic dump instead of silently finishing early.
     */
    void setAvailable(ResourceId id, bool available);

    /** True unless `setAvailable(id, false)` is in effect. */
    bool isAvailable(ResourceId id) const;

    double capacity(ResourceId id) const;

    /** The capacity the resource was registered with. */
    double nominalCapacity(ResourceId id) const;

    /** Registered name of @p id (e.g. "link.E.b0.r0.c1"). */
    const std::string &resourceName(ResourceId id) const;

    /**
     * Diagnostic dump of flows that can never finish (parked on a down
     * resource) plus any other still-active flows; "" when no flow is
     * outstanding. Installed as the simulator's quiescence check.
     */
    std::string stallDiagnostic() const;

    /**
     * Start a flow of @p size units with the given demand vector.
     * @p on_complete fires when the flow finishes. Demands must be
     * non-empty with positive coefficients.
     * @return id usable with `isActive`.
     */
    FlowId startFlow(double size, std::vector<Demand> demands,
                     std::function<void()> on_complete);

    bool isActive(FlowId id) const { return flows_.count(id) > 0; }

    /**
     * Abort an in-flight flow without running its completion callback.
     * Progress made so far stays attributed to the resources (the
     * elapsed segment is settled first), the pending completion event
     * is cancelled, and the flow is removed — this is how a collective
     * abandons transfers stranded on a chip that failed permanently.
     * @return false if @p id is unknown or already finished (callers
     * racing with natural completion need not care).
     */
    bool cancelFlow(FlowId id);

    size_t activeFlowCount() const { return flows_.size(); }

    /** Number of registered resources (ids are [0, resourceCount)). */
    size_t resourceCount() const { return resources_.size(); }

    /** Accounting snapshot for @p id (updated through current time). */
    ResourceStats resourceStats(ResourceId id) const;

    /** Current rate of an active flow (units/s), 0 if finished. */
    double flowRate(FlowId id) const;

    /**
     * Restore the legacy per-event full accounting sweep (every
     * registered resource settled at every flow event / recompute).
     * Results are identical — flow completion times and event counts do
     * not depend on the accounting mode — but the eager sweep costs
     * O(resources) per event. Benchmarks use it as the "serial
     * accounting" baseline of the event-batching comparison.
     */
    void setEagerAccounting(bool eager) { eagerAccounting_ = eager; }
    bool eagerAccounting() const { return eagerAccounting_; }

    /**
     * Publish per-flow critical-path info (binding resource, throttled
     * seconds, per-class solo floors) for the span-graph profiler.
     * Purely observational: rates, completion times and event counts
     * are bit-identical with publishing on or off, and the off path
     * allocates nothing extra.
     */
    void setPublishFlowInfo(bool on) { publishFlowInfo_ = on; }
    bool publishFlowInfo() const { return publishFlowInfo_; }

    /**
     * Info about the most recently finished flow, valid only during
     * that flow's completion callback (zero-size flows publish an
     * invalid record). Callers fold this into their span nodes.
     */
    const FlowEndInfo &lastFinishedFlow() const { return lastFlowInfo_; }

  private:
    struct Resource
    {
        std::string name;
        double capacity = 0.0;
        double nominalCapacity = 0.0;
        bool available = true;
        double load = 0.0; // current total consumption rate
        /** Sum of the flows' *solo* (uncontended) consumption rates;
         *  load < soloLoad means rate-sharing is cutting someone. */
        double soloLoad = 0.0;
        double totalConsumed = 0.0;
        double busyTime = 0.0;
        double idleTime = 0.0;
        double contentionTime = 0.0;
        double degradedTime = 0.0;
        Time createdAt = 0.0;
        Time lastUpdate = 0.0;
        int activeFlows = 0;
    };

    struct Flow
    {
        double remaining = 0.0;
        double rate = 0.0;
        Time lastUpdate = 0.0;
        std::vector<Demand> demands;
        std::function<void()> onComplete;
        EventId completion;
        // --- profiler fields, maintained only while publishFlowInfo_
        double size = 0.0;     ///< original size (for solo floors)
        double soloRate = 0.0; ///< uncontended rate of last recompute
        double throttled = 0.0; ///< integral of (1 - rate/solo) dt
        ResourceId binding = -1; ///< rate-limiting resource
    };

    /** Flow map nodes live on the per-run arena. */
    using FlowMap = std::unordered_map<
        FlowId, Flow, std::hash<FlowId>, std::equal_to<FlowId>,
        ArenaAllocator<std::pair<const FlowId, Flow>>>;

    void markDirty();
    void recompute();
    void advanceFlow(Flow &flow);
    /** Settle one resource's busy/idle/contention/degraded integrals
     *  up to the current time (load is constant since `lastUpdate`). */
    void settleResource(Resource &res);
    /** Legacy eager sweep: settle every registered resource. */
    void advanceResourceAccounting();
    /** Settle the resources whose load is about to change: everything
     *  loaded by the previous rate assignment plus @p demands. */
    void settleFlowResources(const std::vector<Demand> &demands);
    void finishFlow(FlowId id);

    Simulator &sim_;
    std::vector<Resource> resources_;
    Arena arena_;
    FlowMap flows_;
    FlowId nextFlowId_ = 1;
    bool dirty_ = false;
    bool eagerAccounting_ = false;
    bool publishFlowInfo_ = false;
    FlowEndInfo lastFlowInfo_;

    // --- recompute scratch, reused across calls (capacity persists so
    // steady-state recomputes allocate nothing) ---
    std::vector<Flow *> scratchFlows_;
    std::vector<FlowId> scratchIds_;
    std::vector<double> scratchRate_;
    std::vector<double> scratchSolo_;
    std::vector<char> scratchParked_;
    /** Binding resource per flow (profiler only; empty when off). */
    std::vector<ResourceId> scratchBinding_;
    /** Resources demanded by at least one non-parked flow this round. */
    std::vector<ResourceId> memberIds_;
    /** memberLists_[memberSlot_[r]] = (flow index, coeff) pairs on r;
     *  valid while resourceEpoch_[r] == epoch_. */
    std::vector<std::vector<std::pair<std::size_t, double>>> memberLists_;
    std::vector<std::int32_t> memberSlot_;
    std::vector<std::uint64_t> resourceEpoch_;
    std::uint64_t epoch_ = 0;
    std::vector<char> memberProcessed_;
    /** Resources carrying nonzero load from the previous assignment. */
    std::vector<ResourceId> loadedIds_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_FLUID_HPP_
