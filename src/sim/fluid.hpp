/**
 * @file
 * Fluid (rate-shared) resource network.
 *
 * This is the contention substrate of the cluster simulator and stands in
 * for the paper's packet-level SST + DRAMSim3 stack. Every shared piece of
 * hardware (an ICI link direction, a chip's HBM, a compute core) is a
 * `Resource` with a capacity in units/second. Work in flight (a shard
 * transfer, a GeMM's memory stream, a GeMM's FLOPs) is a `Flow` with a
 * size and a per-resource demand vector.
 *
 * Between events every flow progresses at a constant rate
 *
 *     rate(f) = min over its resources r of  alloc(f, r) / demand(f, r)
 *
 * where allocations are computed with a work-conserving saturate-and-
 * waterfill pass: flows start at their solo rate (capacity-limited on each
 * resource independently); while some resource is oversubscribed, the most
 * oversubscribed one is picked and its flows are water-filled so the
 * heaviest consumers are cut to an equal consumption level that exactly
 * fills the capacity. This reproduces the first-order behaviour the paper
 * relies on: NIC transfers capped by link bandwidth, compute streams using
 * the *remaining* HBM bandwidth, and slowdowns when the sum oversubscribes
 * HBM (the NIC<->core interference of Sec 4.1).
 */
#ifndef MESHSLICE_SIM_FLUID_HPP_
#define MESHSLICE_SIM_FLUID_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace meshslice {

using ResourceId = std::int32_t;
using FlowId = std::int64_t;

/** One resource requirement of a flow. */
struct Demand
{
    ResourceId resource;
    /** Resource units consumed per flow unit (e.g. bytes per FLOP). */
    double perUnit;
};

/** Snapshot of a resource's accounting, for tests and reports. */
struct ResourceStats
{
    std::string name;
    double capacity = 0.0;
    /** Capacity the resource was registered with (fault-free value). */
    double nominalCapacity = 0.0;
    /**
     * Seconds during which the resource ran below its nominal capacity
     * (a fault injector degraded it) or was unavailable entirely. This
     * is where "degraded-seconds" land for robustness reports.
     */
    double degradedTime = 0.0;
    /** False while the resource is down (flows demanding it park). */
    bool available = true;
    /** Total units consumed so far (integral of load over time). */
    double totalConsumed = 0.0;
    /** Integral of load/capacity over time (busy-seconds). */
    double busyTime = 0.0;
    /**
     * Integral of (1 - load/capacity): seconds of unused capacity.
     * Tracked independently of `busyTime` so the conservation law
     * `busyTime + idleTime == now - createdAt` is a real check of the
     * accounting (a missed advance breaks it).
     */
    double idleTime = 0.0;
    /**
     * Seconds during which the flows' *uncontended* demand exceeded the
     * capacity — i.e. the rate-sharing waterfill actually cut somebody.
     * This is the fluid-model analogue of queueing/contention time.
     */
    double contentionTime = 0.0;
    /** Simulated time the resource was registered (accounting start). */
    Time createdAt = 0.0;
    int activeFlows = 0;
};

/**
 * Rate-shared resources and flows on top of a `Simulator`.
 *
 * Rates are recomputed lazily: flow arrivals/departures mark the network
 * dirty and a zero-delay event performs one recomputation per timestamp,
 * so batches of simultaneous changes (all chips of a ring step) cost one
 * global update.
 */
class FluidNetwork
{
  public:
    explicit FluidNetwork(Simulator &sim);

    /** Create a resource with @p capacity units/second. */
    ResourceId addResource(std::string name, double capacity);

    /**
     * Change a resource's capacity (takes effect at next recompute).
     * Accounting of the elapsed segment is settled at the *old*
     * capacity first, so time-varying capacities attribute busy/idle/
     * degraded seconds to the correct windows and the conservation law
     * `busy + idle == wall` keeps holding.
     */
    void setCapacity(ResourceId id, double capacity);

    /**
     * Mark a resource up/down. Flows demanding a down resource park at
     * rate zero (they freeze, keeping their progress) and resume when
     * the resource comes back. If the simulation drains its event
     * queue while flows are parked, the watchdog aborts with a
     * diagnostic dump instead of silently finishing early.
     */
    void setAvailable(ResourceId id, bool available);

    /** True unless `setAvailable(id, false)` is in effect. */
    bool isAvailable(ResourceId id) const;

    double capacity(ResourceId id) const;

    /** The capacity the resource was registered with. */
    double nominalCapacity(ResourceId id) const;

    /** Registered name of @p id (e.g. "link.E.b0.r0.c1"). */
    const std::string &resourceName(ResourceId id) const;

    /**
     * Diagnostic dump of flows that can never finish (parked on a down
     * resource) plus any other still-active flows; "" when no flow is
     * outstanding. Installed as the simulator's quiescence check.
     */
    std::string stallDiagnostic() const;

    /**
     * Start a flow of @p size units with the given demand vector.
     * @p on_complete fires when the flow finishes. Demands must be
     * non-empty with positive coefficients.
     * @return id usable with `isActive`.
     */
    FlowId startFlow(double size, std::vector<Demand> demands,
                     std::function<void()> on_complete);

    bool isActive(FlowId id) const { return flows_.count(id) > 0; }

    /**
     * Abort an in-flight flow without running its completion callback.
     * Progress made so far stays attributed to the resources (the
     * elapsed segment is settled first), the pending completion event
     * is cancelled, and the flow is removed — this is how a collective
     * abandons transfers stranded on a chip that failed permanently.
     * @return false if @p id is unknown or already finished (callers
     * racing with natural completion need not care).
     */
    bool cancelFlow(FlowId id);

    size_t activeFlowCount() const { return flows_.size(); }

    /** Number of registered resources (ids are [0, resourceCount)). */
    size_t resourceCount() const { return resources_.size(); }

    /** Accounting snapshot for @p id (updated through current time). */
    ResourceStats resourceStats(ResourceId id) const;

    /** Current rate of an active flow (units/s), 0 if finished. */
    double flowRate(FlowId id) const;

  private:
    struct Resource
    {
        std::string name;
        double capacity = 0.0;
        double nominalCapacity = 0.0;
        bool available = true;
        double load = 0.0; // current total consumption rate
        /** Sum of the flows' *solo* (uncontended) consumption rates;
         *  load < soloLoad means rate-sharing is cutting someone. */
        double soloLoad = 0.0;
        double totalConsumed = 0.0;
        double busyTime = 0.0;
        double idleTime = 0.0;
        double contentionTime = 0.0;
        double degradedTime = 0.0;
        Time createdAt = 0.0;
        Time lastUpdate = 0.0;
        int activeFlows = 0;
    };

    struct Flow
    {
        double remaining = 0.0;
        double rate = 0.0;
        Time lastUpdate = 0.0;
        std::vector<Demand> demands;
        std::function<void()> onComplete;
        EventId completion;
    };

    void markDirty();
    void recompute();
    void advanceFlow(Flow &flow);
    void advanceResourceAccounting();
    void finishFlow(FlowId id);

    Simulator &sim_;
    std::vector<Resource> resources_;
    std::unordered_map<FlowId, Flow> flows_;
    FlowId nextFlowId_ = 1;
    bool dirty_ = false;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_FLUID_HPP_
