#include "sim/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/**
 * splitmix64: tiny, portable, and — unlike `std::uniform_real_distribution`
 * over a standard engine — guaranteed to produce the same stream on every
 * implementation, which the bit-identical-replay contract depends on.
 */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform double in [0, 1) from the top 53 bits of a splitmix64 draw. */
double
uniform01(std::uint64_t &state)
{
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double
requireNumber(const JsonValue &obj, const char *key, double fallback,
              const std::string &ctx)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    if (v->kind != JsonValue::kNumber)
        fatal("FaultScenario: key \"%s\" must be a number in %s", key,
              ctx.c_str());
    return v->number;
}

std::string
requireString(const JsonValue &obj, const char *key, const std::string &ctx)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->kind != JsonValue::kString)
        fatal("FaultScenario: key \"%s\" must be a string in %s", key,
              ctx.c_str());
    return v->str;
}

void
rejectUnknownKeys(const JsonValue &obj, std::initializer_list<const char *>
                  known, const char *what, const std::string &ctx)
{
    for (const auto &[key, value] : obj.obj) {
        bool found = false;
        for (const char *k : known)
            if (key == k)
                found = true;
        if (!found)
            fatal("FaultScenario: unknown key \"%s\" in %s of %s "
                  "(typo in the scenario file?)",
                  key.c_str(), what, ctx.c_str());
    }
}

void
validateWindow(double factor, Time start, Time duration, const char *what,
               const std::string &who)
{
    if (!(factor >= 0.0 && factor <= 1.0))
        fatal("FaultScenario: %s %s has factor %g outside [0, 1]", what,
              who.c_str(), factor);
    if (!(start >= 0.0) || !std::isfinite(start))
        fatal("FaultScenario: %s %s has negative or non-finite start %g s",
              what, who.c_str(), start);
    if (std::isnan(duration))
        fatal("FaultScenario: %s %s has NaN duration", what, who.c_str());
}

} // namespace

void
validateScenario(const FaultScenario &scenario, const std::string &context)
{
    if (scenario.detectionLatency < 0.0 ||
        !std::isfinite(scenario.detectionLatency))
        fatal("FaultScenario: \"detection_latency_s\" must be finite and "
              ">= 0 in %s (got %g)", context.c_str(),
              scenario.detectionLatency);
    // Two kills can hit the same resource only when one pattern
    // contains the other (substring matching). For such a pair the
    // later kill is meaningless at best: either the resource was dead
    // long enough that the runtime already noticed (a "second kill of
    // a corpse"), or the second kill lands inside the first one's
    // detection window, which would make detection-latency accounting
    // ambiguous. Both are scenario bugs worth failing loudly on.
    for (size_t i = 0; i < scenario.kills.size(); ++i) {
        for (size_t j = 0; j < scenario.kills.size(); ++j) {
            if (i == j)
                continue;
            const KillFault &first = scenario.kills[i];
            const KillFault &second = scenario.kills[j];
            const bool patterns_collide =
                first.pattern.find(second.pattern) != std::string::npos ||
                second.pattern.find(first.pattern) != std::string::npos;
            if (!patterns_collide)
                continue;
            // Break the symmetric pair deterministically: report with
            // `first` as the earlier kill (ties by index).
            if (second.at < first.at ||
                (second.at == first.at && j < i))
                continue;
            if (second.at < first.at + scenario.detectionLatency)
                fatal("FaultScenario: kill #%zu (pattern \"%s\", at %g s) "
                      "lies inside kill #%zu's detection window "
                      "[%g s, %g s) on the same resource in %s — a "
                      "failure cannot be re-detected while the first "
                      "detection is still in flight",
                      j, second.pattern.c_str(), second.at, i, first.at,
                      first.at + scenario.detectionLatency,
                      context.c_str());
            fatal("FaultScenario: kill #%zu (pattern \"%s\", at %g s) "
                  "kills a resource kill #%zu (pattern \"%s\", at %g s) "
                  "already took down in %s — a fail-stop resource dies "
                  "exactly once",
                  j, second.pattern.c_str(), second.at, i,
                  first.pattern.c_str(), first.at, context.c_str());
        }
    }
}

std::uint64_t
derivePhaseSeed(std::uint64_t seed, std::uint64_t phase)
{
    // Decorrelate (seed, phase) pairs with one splitmix64 mix; the
    // golden-ratio stride keeps phase 0 distinct from the raw seed.
    std::uint64_t state = seed + (phase + 1) * 0x9e3779b97f4a7c15ULL;
    return splitmix64(state);
}

namespace {

/** Shift one window by -start; false = fully elapsed, drop it. */
bool
sliceWindow(Time start, Time &w_start, Time &w_duration)
{
    if (w_start >= start) {
        w_start -= start;
        return true;
    }
    if (w_duration < 0.0) { // persists to end of run
        w_start = 0.0;
        return true;
    }
    const Time remaining = w_start + w_duration - start;
    if (remaining <= 0.0)
        return false;
    w_start = 0.0;
    w_duration = remaining;
    return true;
}

} // namespace

FaultScenario
sliceScenarioForPhase(const FaultScenario &scenario, Time start,
                      std::uint64_t phase_seed)
{
    if (!(start >= 0.0) || !std::isfinite(start))
        fatal("sliceScenarioForPhase: phase start %g must be finite and "
              ">= 0", start);
    FaultScenario out;
    out.seed = phase_seed;
    out.maxLaunchJitter = scenario.maxLaunchJitter;
    out.detectionLatency = scenario.detectionLatency;
    for (CapacityFault f : scenario.faults)
        if (sliceWindow(start, f.start, f.duration))
            out.faults.push_back(std::move(f));
    for (StragglerFault s : scenario.stragglers)
        if (sliceWindow(start, s.start, s.duration))
            out.stragglers.push_back(s);
    for (KillFault k : scenario.kills) {
        // A kill is permanent: one that predates the phase is still in
        // effect, so it becomes a kill at local t=0.
        k.at = std::max(0.0, k.at - start);
        out.kills.push_back(std::move(k));
    }
    return out;
}

FaultScenario
remapScenarioChips(const FaultScenario &scenario,
                   const std::vector<int> &old_to_new)
{
    if (!scenario.kills.empty())
        fatal("remapScenarioChips: %zu kill(s) remain in the scenario — "
              "the elastic runtime consumes the kill before remapping "
              "onto the survivor mesh", scenario.kills.size());
    // "chip<i>." prefix -> old chip id, or -1 for non-chip patterns.
    auto chip_of = [](const std::string &pattern) -> int {
        if (pattern.rfind("chip", 0) != 0)
            return -1;
        size_t pos = 4;
        if (pos >= pattern.size() ||
            !std::isdigit(static_cast<unsigned char>(pattern[pos])))
            return -1;
        int chip = 0;
        while (pos < pattern.size() &&
               std::isdigit(static_cast<unsigned char>(pattern[pos])))
            chip = chip * 10 + (pattern[pos++] - '0');
        return chip;
    };
    auto renumber = [&](int old_chip) -> int {
        if (old_chip < 0 || old_chip >= static_cast<int>(old_to_new.size()))
            fatal("remapScenarioChips: chip %d outside the old mesh "
                  "(%zu chips)", old_chip, old_to_new.size());
        return old_to_new[old_chip];
    };
    FaultScenario out;
    out.seed = scenario.seed;
    out.maxLaunchJitter = scenario.maxLaunchJitter;
    out.detectionLatency = scenario.detectionLatency;
    for (const CapacityFault &f : scenario.faults) {
        const int old_chip = chip_of(f.pattern);
        if (old_chip < 0)
            continue; // link names are renumbered on the survivor mesh
        const int new_chip = renumber(old_chip);
        if (new_chip < 0)
            continue; // addressed a retired chip
        CapacityFault g = f;
        const std::string old_prefix = strprintf("chip%d", old_chip);
        g.pattern = strprintf("chip%d", new_chip) +
                    f.pattern.substr(old_prefix.size());
        out.faults.push_back(std::move(g));
    }
    for (const StragglerFault &s : scenario.stragglers) {
        const int new_chip = renumber(s.chip);
        if (new_chip < 0)
            continue;
        StragglerFault t = s;
        t.chip = new_chip;
        out.stragglers.push_back(t);
    }
    return out;
}

bool
FaultScenario::empty() const
{
    // `detectionLatency` is deliberately not consulted: with no kills
    // it is inert, and a scenario that perturbs nothing must stay
    // bit-identical to running with no injector at all.
    return maxLaunchJitter == 0.0 && faults.empty() && stragglers.empty() &&
           kills.empty();
}

std::string
FaultScenario::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"seed\": " << seed << ",\n";
    out << "  \"max_launch_jitter_s\": " << jsonNumber(maxLaunchJitter)
        << ",\n";
    out << "  \"faults\": [";
    for (size_t i = 0; i < faults.size(); ++i) {
        const CapacityFault &f = faults[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"pattern\": " << jsonString(f.pattern)
            << ", \"factor\": " << jsonNumber(f.factor)
            << ", \"start_s\": " << jsonNumber(f.start)
            << ", \"duration_s\": " << jsonNumber(f.duration) << "}";
    }
    out << (faults.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"stragglers\": [";
    for (size_t i = 0; i < stragglers.size(); ++i) {
        const StragglerFault &s = stragglers[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"chip\": " << s.chip
            << ", \"compute_factor\": " << jsonNumber(s.computeFactor)
            << ", \"hbm_factor\": " << jsonNumber(s.hbmFactor)
            << ", \"start_s\": " << jsonNumber(s.start)
            << ", \"duration_s\": " << jsonNumber(s.duration) << "}";
    }
    out << (stragglers.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"kills\": [";
    for (size_t i = 0; i < kills.size(); ++i) {
        const KillFault &k = kills[i];
        out << (i ? ",\n    " : "\n    ");
        out << "{\"pattern\": " << jsonString(k.pattern)
            << ", \"at_s\": " << jsonNumber(k.at) << "}";
    }
    out << (kills.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"detection_latency_s\": " << jsonNumber(detectionLatency)
        << "\n";
    out << "}\n";
    return out.str();
}

FaultScenario
FaultScenario::fromJson(const std::string &text, const std::string &context)
{
    JsonValue root = parseJson(text, "FaultScenario", context);
    if (root.kind != JsonValue::kObject)
        fatal("FaultScenario: top-level JSON value in %s must be an object",
              context.c_str());
    rejectUnknownKeys(root,
                      {"seed", "max_launch_jitter_s", "faults", "stragglers",
                       "kills", "detection_latency_s"},
                      "the scenario", context);

    FaultScenario scenario;
    const double seed = requireNumber(root, "seed", 1.0, context);
    if (seed < 0.0 || seed != std::floor(seed))
        fatal("FaultScenario: \"seed\" must be a non-negative integer "
              "in %s", context.c_str());
    scenario.seed = static_cast<std::uint64_t>(seed);
    scenario.maxLaunchJitter =
        requireNumber(root, "max_launch_jitter_s", 0.0, context);
    if (scenario.maxLaunchJitter < 0.0 ||
        !std::isfinite(scenario.maxLaunchJitter))
        fatal("FaultScenario: \"max_launch_jitter_s\" must be finite and "
              ">= 0 in %s", context.c_str());

    if (const JsonValue *arr = root.find("faults")) {
        if (arr->kind != JsonValue::kArray)
            fatal("FaultScenario: \"faults\" must be an array in %s",
                  context.c_str());
        for (const JsonValue &entry : arr->arr) {
            if (entry.kind != JsonValue::kObject)
                fatal("FaultScenario: every entry of \"faults\" must be "
                      "an object in %s", context.c_str());
            rejectUnknownKeys(entry,
                              {"pattern", "factor", "start_s", "duration_s"},
                              "a fault entry", context);
            CapacityFault f;
            f.pattern = requireString(entry, "pattern", context);
            f.factor = requireNumber(entry, "factor", 1.0, context);
            f.start = requireNumber(entry, "start_s", 0.0, context);
            f.duration = requireNumber(entry, "duration_s", -1.0, context);
            validateWindow(f.factor, f.start, f.duration, "fault",
                           "\"" + f.pattern + "\"");
            if (f.pattern.empty())
                fatal("FaultScenario: fault pattern must be non-empty "
                      "in %s (an empty pattern matches everything, which "
                      "is never what you want)", context.c_str());
            scenario.faults.push_back(std::move(f));
        }
    }

    if (const JsonValue *arr = root.find("stragglers")) {
        if (arr->kind != JsonValue::kArray)
            fatal("FaultScenario: \"stragglers\" must be an array in %s",
                  context.c_str());
        for (const JsonValue &entry : arr->arr) {
            if (entry.kind != JsonValue::kObject)
                fatal("FaultScenario: every entry of \"stragglers\" must "
                      "be an object in %s", context.c_str());
            rejectUnknownKeys(entry,
                              {"chip", "compute_factor", "hbm_factor",
                               "start_s", "duration_s"},
                              "a straggler entry", context);
            StragglerFault s;
            const double chip = requireNumber(entry, "chip", -1.0, context);
            if (chip < 0.0 || chip != std::floor(chip))
                fatal("FaultScenario: straggler \"chip\" must be a "
                      "non-negative integer in %s", context.c_str());
            s.chip = static_cast<int>(chip);
            s.computeFactor =
                requireNumber(entry, "compute_factor", 1.0, context);
            s.hbmFactor = requireNumber(entry, "hbm_factor", 1.0, context);
            s.start = requireNumber(entry, "start_s", 0.0, context);
            s.duration = requireNumber(entry, "duration_s", -1.0, context);
            validateWindow(s.computeFactor, s.start, s.duration, "straggler",
                           strprintf("chip %d", s.chip));
            validateWindow(s.hbmFactor, s.start, s.duration, "straggler",
                           strprintf("chip %d", s.chip));
            scenario.stragglers.push_back(s);
        }
    }

    if (const JsonValue *arr = root.find("kills")) {
        if (arr->kind != JsonValue::kArray)
            fatal("FaultScenario: \"kills\" must be an array in %s",
                  context.c_str());
        for (const JsonValue &entry : arr->arr) {
            if (entry.kind != JsonValue::kObject)
                fatal("FaultScenario: every entry of \"kills\" must be "
                      "an object in %s", context.c_str());
            rejectUnknownKeys(entry, {"pattern", "at_s"}, "a kill entry",
                              context);
            KillFault k;
            k.pattern = requireString(entry, "pattern", context);
            k.at = requireNumber(entry, "at_s", 0.0, context);
            if (k.pattern.empty())
                fatal("FaultScenario: kill pattern must be non-empty "
                      "in %s", context.c_str());
            if (!(k.at >= 0.0) || !std::isfinite(k.at))
                fatal("FaultScenario: kill \"%s\" has negative or "
                      "non-finite at_s %g in %s", k.pattern.c_str(), k.at,
                      context.c_str());
            scenario.kills.push_back(std::move(k));
        }
    }

    scenario.detectionLatency =
        requireNumber(root, "detection_latency_s",
                      scenario.detectionLatency, context);
    if (scenario.detectionLatency < 0.0 ||
        !std::isfinite(scenario.detectionLatency))
        fatal("FaultScenario: \"detection_latency_s\" must be finite and "
              ">= 0 in %s", context.c_str());

    // A kill and a capacity window aimed at (an overlapping set of)
    // resources with intersecting times is almost certainly a scenario
    // bug: the capacity window used to silently multiply into the dead
    // resource's factor, which makes the "robust" numbers meaningless.
    // Patterns are substring matches, so two patterns can hit the same
    // resource only if one contains the other.
    for (size_t ki = 0; ki < scenario.kills.size(); ++ki) {
        const KillFault &k = scenario.kills[ki];
        for (size_t fi = 0; fi < scenario.faults.size(); ++fi) {
            const CapacityFault &f = scenario.faults[fi];
            const bool patterns_collide =
                k.pattern.find(f.pattern) != std::string::npos ||
                f.pattern.find(k.pattern) != std::string::npos;
            if (!patterns_collide)
                continue;
            // Kill is active on [at, inf); window on [start, end).
            const bool times_overlap =
                f.duration < 0.0 || f.start + f.duration > k.at;
            if (times_overlap)
                fatal("FaultScenario: kill #%zu (pattern \"%s\", at %g s) "
                      "overlaps capacity fault #%zu (pattern \"%s\", "
                      "window [%g s, %s)) in %s — a capacity window on a "
                      "killed resource is contradictory; shorten the "
                      "window or drop the kill",
                      ki, k.pattern.c_str(), k.at, fi, f.pattern.c_str(),
                      f.start,
                      f.duration < 0.0
                          ? "inf"
                          : strprintf("%g s", f.start + f.duration).c_str(),
                      context.c_str());
        }
    }
    validateScenario(scenario, context);
    return scenario;
}

FaultScenario
FaultScenario::fromJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("FaultScenario: cannot open scenario file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        fatal("FaultScenario: I/O error reading scenario file '%s'",
              path.c_str());
    return fromJson(text.str(), path);
}

FaultInjector::FaultInjector(Simulator &sim, FluidNetwork &net,
                             FaultScenario scenario)
    : sim_(sim), net_(net), scenario_(std::move(scenario)),
      rngState_(scenario_.seed)
{
}

void
FaultInjector::arm()
{
    if (armed_)
        panic("FaultInjector: arm() called twice");
    armed_ = true;

    // Expand stragglers into plain capacity faults on the chip's two
    // resources, then validate everything (programmatic scenarios skip
    // the JSON-side checks).
    std::vector<CapacityFault> expanded = scenario_.faults;
    for (const StragglerFault &s : scenario_.stragglers) {
        if (s.chip < 0)
            fatal("FaultInjector: straggler chip index %d is negative",
                  s.chip);
        CapacityFault core;
        core.pattern = strprintf("chip%d.core", s.chip);
        core.factor = s.computeFactor;
        core.start = s.start;
        core.duration = s.duration;
        CapacityFault hbm = core;
        hbm.pattern = strprintf("chip%d.hbm", s.chip);
        hbm.factor = s.hbmFactor;
        expanded.push_back(std::move(core));
        expanded.push_back(std::move(hbm));
    }
    for (const CapacityFault &f : expanded) {
        if (f.pattern.empty())
            fatal("FaultInjector: fault pattern must be non-empty");
        validateWindow(f.factor, f.start, f.duration, "fault",
                       "\"" + f.pattern + "\"");
    }
    if (scenario_.maxLaunchJitter < 0.0)
        fatal("FaultInjector: maxLaunchJitter must be >= 0");
    validateScenario(scenario_, "<programmatic scenario>");

    // Resolve kills first: the capacity-window `apply` below consults
    // `killAt_` so a window boundary can never resurrect a corpse.
    const size_t resource_count = net_.resourceCount();
    for (const KillFault &k : scenario_.kills) {
        if (k.pattern.empty())
            fatal("FaultInjector: kill pattern must be non-empty");
        if (!(k.at >= 0.0) || !std::isfinite(k.at))
            fatal("FaultInjector: kill \"%s\" has negative or non-finite "
                  "time %g", k.pattern.c_str(), k.at);
        bool matched_kill = false;
        for (size_t r = 0; r < resource_count; ++r) {
            const ResourceId id = static_cast<ResourceId>(r);
            if (net_.resourceName(id).find(k.pattern) == std::string::npos)
                continue;
            matched_kill = true;
            auto [it, inserted] = killAt_.emplace(id, k.at);
            if (!inserted)
                fatal("FaultInjector: kill pattern \"%s\" (at %g s) hits "
                      "resource \"%s\", which another kill already takes "
                      "down at %g s — a fail-stop resource dies exactly "
                      "once", k.pattern.c_str(), k.at,
                      net_.resourceName(id).c_str(), it->second);
        }
        if (!matched_kill)
            fatal("FaultInjector: kill pattern \"%s\" matches no "
                  "resource — check the scenario against the cluster's "
                  "resource names (chip<i>.core, chip<i>.hbm, "
                  "link.<dir>...)", k.pattern.c_str());
    }
    // Schedule in resource-id order so same-timestamp kills enqueue in
    // a deterministic sequence (bit-identical replay contract).
    {
        std::vector<ResourceId> kill_ids;
        kill_ids.reserve(killAt_.size());
        for (const auto &[id, when] : killAt_)
            kill_ids.push_back(id);
        std::sort(kill_ids.begin(), kill_ids.end());
        for (ResourceId id : kill_ids) {
            const Time when = killAt_.at(id);
            auto die = [this, id] { net_.setAvailable(id, false); };
            if (when <= sim_.now())
                die();
            else
                sim_.schedule(when, die);
        }
    }

    // Per-resource fault lists (a pattern may hit many resources; a
    // resource may be hit by many faults — overlaps multiply).
    const size_t num_resources = net_.resourceCount();
    std::vector<std::vector<const CapacityFault *>> hits(num_resources);
    std::vector<bool> matched(expanded.size(), false);
    for (size_t r = 0; r < num_resources; ++r) {
        const std::string &name =
            net_.resourceName(static_cast<ResourceId>(r));
        for (size_t f = 0; f < expanded.size(); ++f) {
            if (name.find(expanded[f].pattern) != std::string::npos) {
                hits[r].push_back(&expanded[f]);
                matched[f] = true;
            }
        }
    }
    for (size_t f = 0; f < expanded.size(); ++f) {
        if (!matched[f])
            fatal("FaultInjector: fault pattern \"%s\" matches no "
                  "resource — check the scenario against the cluster's "
                  "resource names (chip<i>.core, chip<i>.hbm, "
                  "link.<dir>...)", expanded[f].pattern.c_str());
    }

    // For every affected resource, schedule one update per window
    // boundary. Each update recomputes the resource's effective state
    // from scratch (product of the factors of all windows containing
    // the boundary time), so overlapping windows compose correctly in
    // any order.
    for (size_t r = 0; r < num_resources; ++r) {
        if (hits[r].empty())
            continue;
        const ResourceId id = static_cast<ResourceId>(r);
        std::vector<Time> boundaries;
        for (const CapacityFault *f : hits[r]) {
            boundaries.push_back(f->start);
            if (f->duration >= 0.0)
                boundaries.push_back(f->start + f->duration);
            ++armedWindows_;
        }
        // Capture the fault list by value: `expanded` dies with arm().
        std::vector<CapacityFault> local;
        local.reserve(hits[r].size());
        for (const CapacityFault *f : hits[r])
            local.push_back(*f);
        auto apply = [this, id, local] {
            const Time now = sim_.now();
            // Kill wins: a window boundary must never resurrect (or
            // re-rate) a resource that failed permanently.
            auto kill = killAt_.find(id);
            if (kill != killAt_.end() && now >= kill->second) {
                net_.setAvailable(id, false);
                return;
            }
            double product = 1.0;
            bool down = false;
            for (const CapacityFault &f : local) {
                const bool active =
                    now >= f.start &&
                    (f.duration < 0.0 || now < f.start + f.duration);
                if (!active)
                    continue;
                if (f.factor == 0.0)
                    down = true;
                else
                    product *= f.factor;
            }
            net_.setAvailable(id, !down);
            if (!down)
                net_.setCapacity(id, net_.nominalCapacity(id) * product);
        };
        for (Time when : boundaries) {
            // Boundaries at (or before) the current time apply
            // immediately: ops launched at t=now must already see the
            // degraded state when they make their routing decision —
            // a zero-delay event would run after their constructors.
            if (when <= sim_.now())
                apply();
            else
                sim_.schedule(when, apply);
        }
    }
}

bool
FaultInjector::isKilled(ResourceId id) const
{
    auto it = killAt_.find(id);
    return it != killAt_.end() && sim_.now() >= it->second;
}

Time
FaultInjector::killTime(ResourceId id) const
{
    auto it = killAt_.find(id);
    return it == killAt_.end() ? -1.0 : it->second;
}

Time
FaultInjector::earliestKillAfter(
    Time after, const std::vector<ResourceId> &resources) const
{
    Time best = -1.0;
    for (ResourceId id : resources) {
        auto it = killAt_.find(id);
        if (it == killAt_.end())
            continue;
        // A kill already in effect is still relevant now.
        const Time t = std::max(it->second, after);
        if (best < 0.0 || t < best)
            best = t;
    }
    return best;
}

Time
FaultInjector::nextLaunchJitter()
{
    // No draw for the empty case: keeps the zero-jitter scenario
    // bit-identical to a run with no injector attached at all.
    if (scenario_.maxLaunchJitter == 0.0)
        return 0.0;
    return uniform01(rngState_) * scenario_.maxLaunchJitter;
}

} // namespace meshslice
