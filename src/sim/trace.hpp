/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto JSON) recording of simulated
 * schedules. Produces the visual equivalent of the paper's Figure 4
 * timelines: per-chip lanes for compute, inter-row and inter-column
 * communication, plus counter tracks sampled from the telemetry
 * registry, instant markers, metadata (process/thread names so a lane
 * reads "chip 3 / row comm" in Perfetto) and flow arrows linking
 * dependent compute <-> communication spans.
 *
 * All `record*` calls are thread-safe: PR 1's parallel autotuner may
 * drive traced simulations concurrently from pool workers.
 */
#ifndef MESHSLICE_SIM_TRACE_HPP_
#define MESHSLICE_SIM_TRACE_HPP_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace meshslice {

/**
 * Collects trace events and serializes them as a Chrome trace.
 *
 * Recording is opt-in; a disabled recorder makes every `record*` call a
 * no-op (one relaxed atomic load) so the hot path stays cheap. Metadata
 * (`setProcessName` / `setThreadName`) is kept even while disabled: it
 * is cheap, bounded by topology size, and must exist before the first
 * span no matter when tracing gets switched on.
 */
class TraceRecorder
{
  public:
    /** One completed span on a (pid, tid) lane. */
    struct Span
    {
        std::string name;
        std::string category;
        int pid; // chip id
        int tid; // lane within chip (0=compute, 1=row comm, 2=col comm)
        Time begin;
        Time end;
    };

    /** One sample of one or more counter series on a track. */
    struct CounterEvent
    {
        std::string name; ///< counter track name
        int pid;
        Time ts;
        std::vector<std::pair<std::string, double>> series;
    };

    /** A zero-duration marker. */
    struct InstantEvent
    {
        std::string name;
        std::string category;
        int pid;
        int tid;
        Time ts;
    };

    /** One endpoint of a flow arrow (start or finish). */
    struct FlowEvent
    {
        std::string name;
        std::string category;
        std::uint64_t id;
        int pid;
        int tid;
        Time ts;
        bool start; ///< true = ph "s", false = ph "f" (bp "e")
    };

    /** A process or thread display name. */
    struct MetaEvent
    {
        int pid;
        int tid;       ///< ignored for process names
        bool process;  ///< true = process_name, false = thread_name
        std::string name;
    };

    void
    enable(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record a completed span (no-op while disabled). */
    void record(std::string name, std::string category, int pid, int tid,
                Time begin, Time end);

    /** Record a counter sample (ph "C"; no-op while disabled). */
    void recordCounter(std::string name, int pid, Time ts,
                       std::vector<std::pair<std::string, double>> series);

    /** Record an instant marker (ph "i"; no-op while disabled). */
    void recordInstant(std::string name, std::string category, int pid,
                       int tid, Time ts);

    /** Allocate a fresh flow id (unique within this recorder). */
    std::uint64_t
    newFlowId()
    {
        return nextFlowId_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Record one endpoint of flow @p id. The start binds to the span
     * enclosing @p ts on (pid, tid); the finish binds to the enclosing
     * slice (`bp:"e"`), drawing an arrow between the two in Perfetto.
     * No-op while disabled.
     */
    void recordFlow(std::string name, std::string category,
                    std::uint64_t id, int pid, int tid, Time ts,
                    bool start);

    /** Name a process lane group ("chip 3"). Kept even while disabled. */
    void setProcessName(int pid, std::string name);

    /** Name one lane ("row comm"). Kept even while disabled. */
    void setThreadName(int pid, int tid, std::string name);

    /** Serialize all events as Chrome trace JSON into @p path. */
    void writeJson(const std::string &path) const;

    /** Drop all recorded events (metadata included). */
    void clear();

    size_t spanCount() const;
    size_t counterCount() const;
    size_t instantCount() const;
    size_t flowCount() const;

    /** Spans in record order. Not synchronized against concurrent
     *  recording — read only after the traced run finished. */
    const std::vector<Span> &spans() const { return spans_; }

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> nextFlowId_{1};
    mutable std::mutex mu_;
    std::vector<Span> spans_;
    std::vector<CounterEvent> counters_;
    std::vector<InstantEvent> instants_;
    std::vector<FlowEvent> flows_;
    std::vector<MetaEvent> metas_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_TRACE_HPP_
