/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto JSON) recording of simulated
 * schedules. Produces the visual equivalent of the paper's Figure 4
 * timelines: per-chip lanes for compute, inter-row and inter-column
 * communication.
 */
#ifndef MESHSLICE_SIM_TRACE_HPP_
#define MESHSLICE_SIM_TRACE_HPP_

#include <string>
#include <vector>

#include "util/units.hpp"

namespace meshslice {

/**
 * Collects duration events and serializes them as a Chrome trace.
 *
 * Recording is opt-in; a disabled recorder makes `record` a no-op so the
 * hot path stays cheap.
 */
class TraceRecorder
{
  public:
    /** One completed span on a (pid, tid) lane. */
    struct Span
    {
        std::string name;
        std::string category;
        int pid; // chip id
        int tid; // lane within chip (0=compute, 1=row comm, 2=col comm)
        Time begin;
        Time end;
    };

    void enable(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Record a completed span (no-op while disabled). */
    void record(std::string name, std::string category, int pid, int tid,
                Time begin, Time end);

    /** Serialize all spans as Chrome trace JSON into @p path. */
    void writeJson(const std::string &path) const;

    void clear() { spans_.clear(); }
    size_t spanCount() const { return spans_.size(); }
    const std::vector<Span> &spans() const { return spans_; }

  private:
    bool enabled_ = false;
    std::vector<Span> spans_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_TRACE_HPP_
