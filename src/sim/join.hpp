/**
 * @file
 * Countdown-latch helper for fan-in synchronization of simulated events.
 *
 * Collectives complete a ring step when all participating chips finish
 * their transfer; `Join` counts the completions and fires a continuation.
 * Instances are heap-allocated and self-deleting so they can outlive the
 * scope that created them.
 */
#ifndef MESHSLICE_SIM_JOIN_HPP_
#define MESHSLICE_SIM_JOIN_HPP_

#include <cstdint>
#include <functional>

#include "sim/abandon.hpp"
#include "util/logging.hpp"

namespace meshslice {

/**
 * Fires a callback after being signalled an expected number of times,
 * then deletes itself.
 */
class Join
{
  public:
    /**
     * @param expected number of `signal()` calls before firing; must be
     *                 positive (use the callback directly for zero).
     */
    static Join *
    create(int expected, std::function<void()> on_done)
    {
        if (expected <= 0)
            panic("Join: expected count must be positive");
        return new Join(expected, std::move(on_done));
    }

    /** Record one arrival; fires and self-destructs on the last one. */
    void
    signal()
    {
        if (--remaining_ == 0) {
            auto cb = std::move(onDone_);
            delete this;
            cb();
        } else if (remaining_ < 0) {
            panic("Join: signalled more times than expected");
        }
    }

    /** Public so owners that cancel a pending join (fail-stop abort
     *  teardown, abandon sweeps) can `delete` it directly. */
    ~Join()
    {
        if (registry_ != nullptr)
            registry_->untrack(trackId_);
    }

  private:
    Join(int expected, std::function<void()> on_done)
        : remaining_(expected), onDone_(std::move(on_done))
    {
        // A latch abandoned mid-count (its remaining signals cancelled
        // by a fail-stop stop request) is reclaimed by the phase's
        // abandon sweep. Without an ambient registry this is free.
        if (AbandonRegistry *reg = AbandonRegistry::current()) {
            registry_ = reg;
            trackId_ = reg->track([this] { delete this; });
        }
    }

    int remaining_;
    std::function<void()> onDone_;
    AbandonRegistry *registry_ = nullptr;
    std::uint64_t trackId_ = 0;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_JOIN_HPP_
