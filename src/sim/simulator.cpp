#include "sim/simulator.hpp"

#include <utility>

#include "util/logging.hpp"

namespace meshslice {

void
Simulator::pushHeap(HeapEntry entry)
{
    heap_.push_back(entry);
    size_t i = heap_.size() - 1;
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!later(heap_[parent], heap_[i]))
            break;
        std::swap(heap_[parent], heap_[i]);
        i = parent;
    }
}

Simulator::HeapEntry
Simulator::popHeap()
{
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
        const size_t left = 2 * i + 1;
        if (left >= n)
            break;
        const size_t right = left + 1;
        size_t least = left;
        if (right < n && later(heap_[left], heap_[right]))
            least = right;
        if (!later(heap_[i], heap_[least]))
            break;
        std::swap(heap_[i], heap_[least]);
        i = least;
    }
    return top;
}

EventId
Simulator::schedule(Time when, Callback fn)
{
    if (when < now_) {
        // Floating-point scheduling slop from rate arithmetic is clamped;
        // anything visibly in the past is a logic error.
        if (when < now_ - 1e-12)
            panic("Simulator: scheduling into the past (%.12f < %.12f)",
                  when, now_);
        when = now_;
    }
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    const std::uint64_t seq = nextSeq_++;
    slots_[slot].fn = std::move(fn);
    slots_[slot].seq = seq;
    pushHeap(HeapEntry{when, seq, slot});
    ++live_;
    return EventId{when, seq, slot};
}

EventId
Simulator::scheduleAfter(Time delay, Callback fn)
{
    return schedule(now_ + delay, std::move(fn));
}

bool
Simulator::cancel(const EventId &id)
{
    if (!id.valid() || id.slot >= slots_.size())
        return false;
    Slot &slot = slots_[id.slot];
    if (slot.seq != id.seq)
        return false; // already executed, cancelled, or slot reused
    slot.fn = nullptr;
    slot.seq = 0;
    freeSlots_.push_back(id.slot);
    --live_;
    // The heap entry stays and is discarded when it surfaces: a slot
    // reuse cannot be confused with it because sequence numbers are
    // unique and strictly increasing.
    return true;
}

Time
Simulator::run()
{
    return runUntil(1e300);
}

Time
Simulator::runUntil(Time deadline)
{
    while (!heap_.empty()) {
        if (stopRequested_)
            return now_;
        const HeapEntry top = heap_.front();
        if (slots_[top.slot].seq != top.seq) {
            popHeap(); // stale entry of a cancelled/rescheduled event
            continue;
        }
        if (top.when > deadline) {
            now_ = deadline;
            return now_;
        }
        popHeap();
        now_ = top.when;
        Slot &slot = slots_[top.slot];
        Callback fn = std::move(slot.fn);
        slot.fn = nullptr;
        slot.seq = 0;
        freeSlots_.push_back(top.slot);
        --live_;
        ++processed_;
        fn();
    }
    // The queue fully drained (we did not stop at the deadline): give
    // the watchdog checks a chance to veto "finished" — outstanding
    // work with no runnable event is a stall, not a completion. A
    // requested stop is an abandonment, not a completion, so stalled
    // work is expected there and the watchdog stays quiet.
    if (!stopRequested_)
        checkQuiescence();
    return now_;
}

void
Simulator::addQuiescenceCheck(QuiescenceCheck check)
{
    quiescenceChecks_.push_back(std::move(check));
}

void
Simulator::checkQuiescence() const
{
    for (const QuiescenceCheck &check : quiescenceChecks_) {
        const std::string diagnostic = check();
        if (!diagnostic.empty())
            fatal("Simulator watchdog: event queue drained at t=%.9f s "
                  "with stalled work outstanding (no runnable event can "
                  "ever complete it).\n%s",
                  now_, diagnostic.c_str());
    }
}

} // namespace meshslice
