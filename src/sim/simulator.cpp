#include "sim/simulator.hpp"

#include <utility>

#include "util/logging.hpp"

namespace meshslice {

EventId
Simulator::schedule(Time when, Callback fn)
{
    if (when < now_) {
        // Floating-point scheduling slop from rate arithmetic is clamped;
        // anything visibly in the past is a logic error.
        if (when < now_ - 1e-12)
            panic("Simulator: scheduling into the past (%.12f < %.12f)",
                  when, now_);
        when = now_;
    }
    EventId id{when, nextSeq_++};
    queue_.emplace(Key{id.when, id.seq}, std::move(fn));
    return id;
}

EventId
Simulator::scheduleAfter(Time delay, Callback fn)
{
    return schedule(now_ + delay, std::move(fn));
}

bool
Simulator::cancel(const EventId &id)
{
    if (!id.valid())
        return false;
    return queue_.erase(Key{id.when, id.seq}) > 0;
}

Time
Simulator::run()
{
    return runUntil(1e300);
}

Time
Simulator::runUntil(Time deadline)
{
    while (!queue_.empty()) {
        auto it = queue_.begin();
        if (it->first.first > deadline) {
            now_ = deadline;
            return now_;
        }
        now_ = it->first.first;
        Callback fn = std::move(it->second);
        queue_.erase(it);
        ++processed_;
        fn();
    }
    return now_;
}

} // namespace meshslice
