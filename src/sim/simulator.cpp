#include "sim/simulator.hpp"

#include <utility>

#include "util/logging.hpp"

namespace meshslice {

EventId
Simulator::schedule(Time when, Callback fn)
{
    if (when < now_) {
        // Floating-point scheduling slop from rate arithmetic is clamped;
        // anything visibly in the past is a logic error.
        if (when < now_ - 1e-12)
            panic("Simulator: scheduling into the past (%.12f < %.12f)",
                  when, now_);
        when = now_;
    }
    EventId id{when, nextSeq_++};
    queue_.emplace(Key{id.when, id.seq}, std::move(fn));
    return id;
}

EventId
Simulator::scheduleAfter(Time delay, Callback fn)
{
    return schedule(now_ + delay, std::move(fn));
}

bool
Simulator::cancel(const EventId &id)
{
    if (!id.valid())
        return false;
    return queue_.erase(Key{id.when, id.seq}) > 0;
}

Time
Simulator::run()
{
    return runUntil(1e300);
}

Time
Simulator::runUntil(Time deadline)
{
    while (!queue_.empty()) {
        auto it = queue_.begin();
        if (it->first.first > deadline) {
            now_ = deadline;
            return now_;
        }
        now_ = it->first.first;
        Callback fn = std::move(it->second);
        queue_.erase(it);
        ++processed_;
        fn();
    }
    // The queue fully drained (we did not stop at the deadline): give
    // the watchdog checks a chance to veto "finished" — outstanding
    // work with no runnable event is a stall, not a completion.
    checkQuiescence();
    return now_;
}

void
Simulator::addQuiescenceCheck(QuiescenceCheck check)
{
    quiescenceChecks_.push_back(std::move(check));
}

void
Simulator::checkQuiescence() const
{
    for (const QuiescenceCheck &check : quiescenceChecks_) {
        const std::string diagnostic = check();
        if (!diagnostic.empty())
            fatal("Simulator watchdog: event queue drained at t=%.9f s "
                  "with stalled work outstanding (no runnable event can "
                  "ever complete it).\n%s",
                  now_, diagnostic.c_str());
    }
}

} // namespace meshslice
