#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace meshslice {

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::kCounter:
        return "counter";
      case StatKind::kAccumulator:
        return "accumulator";
      case StatKind::kHistogram:
        return "histogram";
    }
    return "?";
}

StatsRegistry::Entry &
StatsRegistry::entryLocked(const std::string &name, StatKind kind)
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = kind;
        it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != kind) {
        panic("StatsRegistry: '%s' is a %s, used as a %s", name.c_str(),
              statKindName(it->second.kind), statKindName(kind));
    }
    return it->second;
}

void
StatsRegistry::observeLocked(Entry &e, double v)
{
    if (e.count == 0) {
        e.min = v;
        e.max = v;
    } else {
        e.min = std::min(e.min, v);
        e.max = std::max(e.max, v);
    }
    e.value += v;
    e.count++;
}

void
StatsRegistry::add(const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entryLocked(name, StatKind::kCounter);
    e.value += v;
    e.count++;
}

void
StatsRegistry::set(const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entryLocked(name, StatKind::kCounter);
    e.value = v;
    e.count++;
}

void
StatsRegistry::observe(const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    observeLocked(entryLocked(name, StatKind::kAccumulator), v);
}

void
StatsRegistry::observeHistogram(const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entryLocked(name, StatKind::kHistogram);
    observeLocked(e, v);
    // Bucket 0: v < 1; bucket i >= 1: v in [2^(i-1), 2^i).
    size_t bucket = 0;
    if (v >= 1.0) {
        bucket = static_cast<size_t>(std::ilogb(v)) + 1;
        bucket = std::min<size_t>(bucket, 63);
    }
    if (e.buckets.size() <= bucket)
        e.buckets.resize(bucket + 1, 0);
    e.buckets[bucket]++;
}

double
StatsRegistry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.value;
}

StatSnapshot
StatsRegistry::snapshotOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    StatSnapshot out;
    out.name = name;
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        const Entry &e = it->second;
        out.kind = e.kind;
        out.value = e.value;
        out.count = e.count;
        out.min = e.min;
        out.max = e.max;
        out.buckets = e.buckets;
    }
    return out;
}

std::vector<StatSnapshot>
StatsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<StatSnapshot> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_) {
        StatSnapshot s;
        s.name = name;
        s.kind = e.kind;
        s.value = e.value;
        s.count = e.count;
        s.min = e.min;
        s.max = e.max;
        s.buckets = e.buckets;
        out.push_back(std::move(s));
    }
    return out;
}

void
StatsRegistry::merge(const std::vector<StatSnapshot> &snaps,
                     const std::string &prefix)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const StatSnapshot &s : snaps) {
        Entry &e = entryLocked(prefix + s.name, s.kind);
        if (s.count == 0)
            continue;
        if (s.kind == StatKind::kCounter) {
            e.value += s.value;
            e.count += s.count;
        } else {
            if (e.count == 0) {
                e.min = s.min;
                e.max = s.max;
            } else {
                e.min = std::min(e.min, s.min);
                e.max = std::max(e.max, s.max);
            }
            e.value += s.value;
            e.count += s.count;
        }
        if (s.kind == StatKind::kHistogram) {
            if (e.buckets.size() < s.buckets.size())
                e.buckets.resize(s.buckets.size(), 0);
            for (size_t i = 0; i < s.buckets.size(); ++i)
                e.buckets[i] += s.buckets[i];
        }
    }
}

size_t
StatsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
StatsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

namespace {

/** Tree node used to nest '/'-separated names into JSON objects. */
struct JsonNode
{
    std::map<std::string, JsonNode> children;
    const StatSnapshot *leaf = nullptr;
};

std::string
leafJson(const StatSnapshot &s)
{
    if (s.kind == StatKind::kCounter)
        return jsonNumber(s.value);
    std::string out = "{\"sum\":" + jsonNumber(s.value) +
                      ",\"count\":" + jsonNumber(static_cast<double>(s.count)) +
                      ",\"min\":" + jsonNumber(s.min) +
                      ",\"max\":" + jsonNumber(s.max) +
                      ",\"mean\":" + jsonNumber(s.mean());
    if (s.kind == StatKind::kHistogram) {
        out += ",\"buckets\":[";
        for (size_t i = 0; i < s.buckets.size(); ++i) {
            if (i)
                out += ',';
            out += jsonNumber(static_cast<double>(s.buckets[i]));
        }
        out += ']';
    }
    out += '}';
    return out;
}

void
emitNode(const JsonNode &node, std::string &out)
{
    // A name that is both a leaf and an interior node keeps its leaf
    // under the reserved key "__self".
    out += '{';
    bool first = true;
    if (node.leaf) {
        out += "\"__self\":" + leafJson(*node.leaf);
        first = false;
    }
    for (const auto &[key, child] : node.children) {
        if (!first)
            out += ',';
        first = false;
        out += jsonString(key);
        out += ':';
        if (child.children.empty() && child.leaf)
            out += leafJson(*child.leaf);
        else
            emitNode(child, out);
    }
    out += '}';
}

} // namespace

std::string
StatsRegistry::toJson() const
{
    const std::vector<StatSnapshot> snaps = snapshot();
    JsonNode root;
    for (const StatSnapshot &s : snaps) {
        JsonNode *node = &root;
        size_t begin = 0;
        while (begin <= s.name.size()) {
            const size_t slash = s.name.find('/', begin);
            const std::string part = s.name.substr(
                begin, slash == std::string::npos ? std::string::npos
                                                  : slash - begin);
            node = &node->children[part];
            if (slash == std::string::npos)
                break;
            begin = slash + 1;
        }
        node->leaf = &s;
    }
    std::string out;
    emitNode(root, out);
    out += '\n';
    return out;
}

void
StatsRegistry::writeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("StatsRegistry: cannot open '%s' for writing", path.c_str());
    os << toJson();
    os.flush();
    if (!os)
        fatal("StatsRegistry: write to '%s' failed (disk full?)",
              path.c_str());
}

void
StatsRegistry::printTable(std::ostream &os) const
{
    Table t({"stat", "kind", "value/sum", "count", "min", "max", "mean"});
    for (const StatSnapshot &s : snapshot()) {
        if (s.kind == StatKind::kCounter) {
            t.addRow({s.name, "counter", Table::num(s.value, 6),
                      std::to_string(s.count), "", "", ""});
        } else {
            t.addRow({s.name, statKindName(s.kind), Table::num(s.value, 6),
                      std::to_string(s.count), Table::num(s.min, 6),
                      Table::num(s.max, 6), Table::num(s.mean(), 6)});
        }
    }
    t.print(os);
}

} // namespace meshslice
