/**
 * @file
 * Leak-free abandonment of in-flight simulation phases.
 *
 * The elastic runtime stops a phase mid-flight on a fail-stop abort
 * (`Simulator::requestStop`). At that point heap-allocated, self-
 * deleting simulation objects — `Join` latches waiting on arrivals
 * that will never come, ring collective ops whose remaining steps
 * were cancelled — are orphaned: nobody will ever run the event that
 * would have deleted them. `AbandonRegistry` tracks those objects so
 * an abandoned phase can sweep them before its cluster is destroyed,
 * keeping the address-sanitizer leg leak-clean.
 *
 * Registration is ambient: the runtime installs a registry for the
 * duration of one phase via `ScopedAbandonRegistry`, and self-deleting
 * objects register themselves through `AbandonRegistry::current()`.
 * When no registry is installed (every pre-existing caller: the
 * tuner's parallel candidate sims, the bench reports, plain executor
 * runs) tracking is a null-pointer check and nothing else — event
 * ordering, timing and allocation behaviour are unchanged, so
 * bit-identity contracts are unaffected.
 *
 * Not thread-safe by design: the registry pointer is thread-local and
 * a phase runs its simulator on one thread. Concurrent simulators on
 * other threads see no registry (or their own).
 */
#ifndef MESHSLICE_SIM_ABANDON_HPP_
#define MESHSLICE_SIM_ABANDON_HPP_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

namespace meshslice {

/** Tracks self-deleting simulation objects for post-abandon cleanup. */
class AbandonRegistry
{
  public:
    AbandonRegistry() = default;
    AbandonRegistry(const AbandonRegistry &) = delete;
    AbandonRegistry &operator=(const AbandonRegistry &) = delete;
    ~AbandonRegistry() { sweep(); }

    /** The ambient registry of this thread, or nullptr. */
    static AbandonRegistry *current() { return current_; }

    /**
     * Track an object; @p deleter destroys it if it is still alive at
     * `sweep()` time. Returns a handle for `untrack`.
     */
    std::uint64_t
    track(std::function<void()> deleter)
    {
        const std::uint64_t id = nextId_++;
        tracked_.emplace(id, std::move(deleter));
        return id;
    }

    /** Forget a tracked object (it completed and deleted itself).
     *  Unknown handles are ignored so objects may untrack after a
     *  sweep already released them. */
    void untrack(std::uint64_t id) { tracked_.erase(id); }

    /** Destroy every still-tracked object. Deleters may untrack other
     *  objects recursively (a swept latch releasing a captured op), so
     *  the map is drained one entry at a time. */
    void
    sweep()
    {
        while (!tracked_.empty()) {
            auto it = tracked_.begin();
            std::function<void()> deleter = std::move(it->second);
            tracked_.erase(it);
            deleter();
        }
    }

    size_t trackedCount() const { return tracked_.size(); }

  private:
    friend class ScopedAbandonRegistry;

    static thread_local AbandonRegistry *current_;

    std::uint64_t nextId_ = 1;
    std::unordered_map<std::uint64_t, std::function<void()>> tracked_;
};

/** RAII installer: makes @p reg the thread's ambient registry. */
class ScopedAbandonRegistry
{
  public:
    explicit ScopedAbandonRegistry(AbandonRegistry &reg)
        : previous_(AbandonRegistry::current_)
    {
        AbandonRegistry::current_ = &reg;
    }
    ~ScopedAbandonRegistry() { AbandonRegistry::current_ = previous_; }

    ScopedAbandonRegistry(const ScopedAbandonRegistry &) = delete;
    ScopedAbandonRegistry &operator=(const ScopedAbandonRegistry &) = delete;

  private:
    AbandonRegistry *previous_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_ABANDON_HPP_
