#include "sim/trace.hpp"

#include <fstream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace meshslice {

void
TraceRecorder::record(std::string name, std::string category, int pid,
                      int tid, Time begin, Time end)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(Span{std::move(name), std::move(category), pid, tid,
                          begin, end});
}

void
TraceRecorder::recordCounter(
    std::string name, int pid, Time ts,
    std::vector<std::pair<std::string, double>> series)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    counters_.push_back(
        CounterEvent{std::move(name), pid, ts, std::move(series)});
}

void
TraceRecorder::recordInstant(std::string name, std::string category,
                             int pid, int tid, Time ts)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    instants_.push_back(
        InstantEvent{std::move(name), std::move(category), pid, tid, ts});
}

void
TraceRecorder::recordFlow(std::string name, std::string category,
                          std::uint64_t id, int pid, int tid, Time ts,
                          bool start)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    flows_.push_back(FlowEvent{std::move(name), std::move(category), id,
                               pid, tid, ts, start});
}

void
TraceRecorder::setProcessName(int pid, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    metas_.push_back(MetaEvent{pid, 0, true, std::move(name)});
}

void
TraceRecorder::setThreadName(int pid, int tid, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    metas_.push_back(MetaEvent{pid, tid, false, std::move(name)});
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    counters_.clear();
    instants_.clear();
    flows_.clear();
    metas_.clear();
}

size_t
TraceRecorder::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

size_t
TraceRecorder::counterCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size();
}

size_t
TraceRecorder::instantCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return instants_.size();
}

size_t
TraceRecorder::flowCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return flows_.size();
}

void
TraceRecorder::writeJson(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ofstream os(path);
    if (!os)
        fatal("TraceRecorder: cannot open '%s' for writing", path.c_str());
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&os, &first] {
        if (!first)
            os << ",\n";
        first = false;
    };
    // Metadata first so viewers name lanes before any event references
    // them.
    for (const MetaEvent &meta : metas_) {
        sep();
        os << "{\"name\":\""
           << (meta.process ? "process_name" : "thread_name")
           << "\",\"ph\":\"M\",\"pid\":" << meta.pid;
        if (!meta.process)
            os << ",\"tid\":" << meta.tid;
        os << ",\"args\":{\"name\":" << jsonString(meta.name) << "}}";
    }
    // Times in microseconds, as the trace format expects.
    for (const Span &span : spans_) {
        sep();
        os << "{\"name\":" << jsonString(span.name)
           << ",\"cat\":" << jsonString(span.category)
           << ",\"ph\":\"X\",\"pid\":" << span.pid
           << ",\"tid\":" << span.tid
           << ",\"ts\":" << jsonNumber(span.begin * 1e6)
           << ",\"dur\":" << jsonNumber((span.end - span.begin) * 1e6)
           << "}";
    }
    for (const CounterEvent &c : counters_) {
        sep();
        os << "{\"name\":" << jsonString(c.name)
           << ",\"ph\":\"C\",\"pid\":" << c.pid
           << ",\"ts\":" << jsonNumber(c.ts * 1e6) << ",\"args\":{";
        bool sfirst = true;
        for (const auto &[series, value] : c.series) {
            if (!sfirst)
                os << ',';
            sfirst = false;
            os << jsonString(series) << ':' << jsonNumber(value);
        }
        os << "}}";
    }
    for (const InstantEvent &i : instants_) {
        sep();
        os << "{\"name\":" << jsonString(i.name)
           << ",\"cat\":" << jsonString(i.category)
           << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << i.pid
           << ",\"tid\":" << i.tid
           << ",\"ts\":" << jsonNumber(i.ts * 1e6) << "}";
    }
    for (const FlowEvent &f : flows_) {
        sep();
        os << "{\"name\":" << jsonString(f.name)
           << ",\"cat\":" << jsonString(f.category) << ",\"ph\":\""
           << (f.start ? 's' : 'f') << "\"";
        if (!f.start)
            os << ",\"bp\":\"e\"";
        os << ",\"id\":" << f.id << ",\"pid\":" << f.pid
           << ",\"tid\":" << f.tid
           << ",\"ts\":" << jsonNumber(f.ts * 1e6) << "}";
    }
    os << "\n]}\n";
    os.flush();
    if (!os)
        fatal("TraceRecorder: write to '%s' failed (disk full?)",
              path.c_str());
}

} // namespace meshslice
