#include "sim/trace.hpp"

#include <fstream>

#include "util/logging.hpp"

namespace meshslice {

void
TraceRecorder::record(std::string name, std::string category, int pid,
                      int tid, Time begin, Time end)
{
    if (!enabled_)
        return;
    spans_.push_back(Span{std::move(name), std::move(category), pid, tid,
                          begin, end});
}

void
TraceRecorder::writeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        fatal("TraceRecorder: cannot open '%s' for writing", path.c_str());
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const Span &span : spans_) {
        if (!first)
            os << ",\n";
        first = false;
        // Times in microseconds, as the trace format expects.
        os << "{\"name\":\"" << span.name << "\",\"cat\":\"" << span.category
           << "\",\"ph\":\"X\",\"pid\":" << span.pid
           << ",\"tid\":" << span.tid << ",\"ts\":" << span.begin * 1e6
           << ",\"dur\":" << (span.end - span.begin) * 1e6 << "}";
    }
    os << "\n]}\n";
}

} // namespace meshslice
