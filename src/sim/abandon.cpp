#include "sim/abandon.hpp"

namespace meshslice {

thread_local AbandonRegistry *AbandonRegistry::current_ = nullptr;

} // namespace meshslice
