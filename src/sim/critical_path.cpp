#include "sim/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/trace.hpp"
#include "util/logging.hpp"

namespace meshslice {

const char *
spanCategoryName(SpanCategory cat)
{
    switch (cat) {
      case SpanCategory::kCompute: return "compute";
      case SpanCategory::kComm: return "comm";
      case SpanCategory::kLaunch: return "launch";
      case SpanCategory::kSync: return "sync";
      case SpanCategory::kBubble: return "bubble";
      case SpanCategory::kRecovery: return "recovery";
      case SpanCategory::kCheckpoint: return "checkpoint";
    }
    return "?";
}

ResourceClass
resourceClassOf(const std::string &name)
{
    if (name.rfind("link.", 0) == 0 || name.rfind("ici.", 0) == 0 ||
        name.rfind("dcn", 0) == 0) {
        return ResourceClass::kLink;
    }
    auto dot = name.rfind('.');
    std::string leaf = dot == std::string::npos ? name
                                                : name.substr(dot + 1);
    if (leaf == "core")
        return ResourceClass::kCore;
    if (leaf == "hbm")
        return ResourceClass::kHbm;
    return ResourceClass::kOther;
}

void
FlowInfoAccum::fold(const FlowEndInfo &f)
{
    if (!f.valid)
        return;
    // The join finishes with its last flow; that flow's binding
    // resource is what the node waits on, so later folds win.
    info.binding = f.binding;
    info.throttledSeconds = std::max(info.throttledSeconds,
                                     f.throttledSeconds);
    info.coreFloor = std::max(info.coreFloor, f.coreFloor);
    info.hbmFloor = std::max(info.hbmFloor, f.hbmFloor);
    info.linkFloor = std::max(info.linkFloor, f.linkFloor);
    info.valid = true;
}

// --- SpanRecorder ----------------------------------------------------

void
SpanRecorder::clear()
{
    nodes_.clear();
    tasks_.clear();
    ambient_.clear();
    recoveryDepth_ = 0;
    recoveryDep_ = -1;
}

int
SpanRecorder::addNode(std::string name, SpanCategory cat, Time begin,
                      Time end, std::vector<int> deps, int chip)
{
    if (!enabled())
        return -1;
    int id = static_cast<int>(nodes_.size());
    if (recoveryDepth_ > 0) {
        cat = SpanCategory::kRecovery;
        if (recoveryDep_ >= 0 &&
            std::find(deps.begin(), deps.end(), recoveryDep_) ==
                deps.end()) {
            deps.push_back(recoveryDep_);
        }
    }
    for (int dep : deps) {
        if (dep < 0 || dep >= id)
            panic("SpanRecorder: bad dep %d for node %d", dep, id);
    }
    SpanNode node;
    node.id = id;
    node.name = std::move(name);
    node.category = cat;
    node.begin = begin;
    node.end = end;
    node.chip = chip;
    node.deps = std::move(deps);
    nodes_.push_back(std::move(node));
    return id;
}

void
SpanRecorder::setNodeResource(int node, const FlowEndInfo &info)
{
    if (!enabled() || node < 0 || !info.valid)
        return;
    SpanNode &n = nodes_.at(node);
    n.binding = info.binding;
    n.throttledSeconds = info.throttledSeconds;
    n.coreFloor = info.coreFloor;
    n.hbmFloor = info.hbmFloor;
    n.linkFloor = info.linkFloor;
}

int
SpanRecorder::newTask(const std::vector<int> &dep_tasks)
{
    if (!enabled())
        return -1;
    int id = static_cast<int>(tasks_.size());
    TaskScope scope;
    scope.depTasks = dep_tasks;
    tasks_.push_back(std::move(scope));
    return id;
}

void
SpanRecorder::beginTask(int task)
{
    Scope scope;
    scope.task = task;
    ambient_.push_back(std::move(scope));
}

void
SpanRecorder::endTask()
{
    if (!ambient_.empty())
        ambient_.pop_back();
}

void
SpanRecorder::beginChain(int task, std::vector<int> deps)
{
    Scope scope;
    scope.task = task;
    scope.hasDeps = true;
    scope.deps = std::move(deps);
    ambient_.push_back(std::move(scope));
}

void
SpanRecorder::endChain()
{
    if (!ambient_.empty())
        ambient_.pop_back();
}

int
SpanRecorder::currentTask() const
{
    return ambient_.empty() ? -1 : ambient_.back().task;
}

std::vector<int>
SpanRecorder::taskDeps(int task) const
{
    std::vector<int> deps;
    if (task < 0 || task >= static_cast<int>(tasks_.size()))
        return deps;
    for (int dep_task : tasks_[task].depTasks) {
        for (int node : tasks_[dep_task].exits) {
            if (std::find(deps.begin(), deps.end(), node) == deps.end())
                deps.push_back(node);
        }
    }
    return deps;
}

std::vector<int>
SpanRecorder::ambientDeps() const
{
    if (!ambient_.empty() && ambient_.back().hasDeps)
        return ambient_.back().deps;
    return taskDeps(currentTask());
}

void
SpanRecorder::addTaskExit(int task, int node)
{
    if (task < 0 || node < 0)
        return;
    tasks_.at(task).exits.push_back(node);
}

void
SpanRecorder::finishTask(int task)
{
    if (task < 0 || task >= static_cast<int>(tasks_.size()))
        return;
    TaskScope &scope = tasks_[task];
    if (scope.exits.empty()) {
        // Nodeless task (e.g. a pure join): forward its entry deps so
        // downstream tasks still see through to the real work.
        scope.exits = taskDeps(task);
    }
}

void
SpanRecorder::beginRecovery(int dep_node)
{
    ++recoveryDepth_;
    if (recoveryDepth_ == 1)
        recoveryDep_ = dep_node;
}

void
SpanRecorder::endRecovery()
{
    if (recoveryDepth_ > 0 && --recoveryDepth_ == 0)
        recoveryDep_ = -1;
}

// --- analysis --------------------------------------------------------

double
Attribution::total() const
{
    double sum = 0.0;
    for (double v : byCategory)
        sum += v;
    return sum;
}

Attribution
extractCriticalPath(const std::vector<SpanNode> &nodes)
{
    Attribution attr;
    if (nodes.empty())
        return attr;

    Time t0 = std::numeric_limits<double>::infinity();
    int last = 0;
    for (const SpanNode &n : nodes) {
        t0 = std::min(t0, n.begin);
        // Latest end wins; ties resolve to the smallest id so the
        // walk is deterministic regardless of recording interleaving.
        if (n.end > nodes[last].end)
            last = n.id;
    }
    attr.spanBegin = t0;
    attr.spanEnd = nodes[last].end;

    auto emit = [&attr](int node, SpanCategory cat, Time b, Time e) {
        if (e <= b)
            return;
        attr.segments.push_back({node, cat, b, e});
        attr.byCategory[static_cast<int>(cat)] += e - b;
    };

    // Backward telescoping walk: each iteration owns [?, frontier] and
    // hands the earlier part to its latest-ending dependency. Bodies
    // and gaps are contiguous, so they partition [t0, t1] exactly and
    // the per-category sums telescope to t1 - t0.
    int cur = last;
    Time frontier = nodes[last].end;
    while (true) {
        const SpanNode &n = nodes[cur];
        Time body_begin = std::min(n.begin, frontier);
        emit(cur, n.category, body_begin, frontier);
        attr.pathNodes.push_back(cur);
        frontier = body_begin;
        if (frontier <= t0)
            break;
        int pred = -1;
        for (int dep : n.deps) {
            if (pred < 0 || nodes[dep].end > nodes[pred].end)
                pred = dep;
        }
        if (pred < 0) {
            // Root node idle-started after t0: charge the wait.
            emit(-1, SpanCategory::kBubble, t0, frontier);
            break;
        }
        if (nodes[pred].end < frontier) {
            emit(-1, SpanCategory::kBubble, nodes[pred].end, frontier);
            frontier = nodes[pred].end;
        }
        cur = pred;
    }
    std::reverse(attr.segments.begin(), attr.segments.end());
    std::reverse(attr.pathNodes.begin(), attr.pathNodes.end());
    return attr;
}

std::vector<double>
computeSlack(const std::vector<SpanNode> &nodes)
{
    std::vector<double> slack(nodes.size(), 0.0);
    if (nodes.empty())
        return slack;
    Time t1 = -std::numeric_limits<double>::infinity();
    for (const SpanNode &n : nodes)
        t1 = std::max(t1, n.end);
    std::vector<char> has_succ(nodes.size(), 0);
    for (const SpanNode &n : nodes)
        for (int dep : n.deps)
            has_succ[dep] = 1;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i)
        slack[i] = has_succ[i] ? kInf : t1 - nodes[i].end;
    // deps are < id, so reverse id order is a reverse topological walk.
    for (std::size_t i = nodes.size(); i-- > 0;) {
        const SpanNode &n = nodes[i];
        for (int dep : n.deps) {
            double lag = std::max(0.0, n.begin - nodes[dep].end);
            slack[dep] = std::min(slack[dep], slack[i] + lag);
        }
    }
    return slack;
}

namespace {

double
classScale(const WhatIfScale &s, ResourceClass cls)
{
    switch (cls) {
      case ResourceClass::kCore: return s.core;
      case ResourceClass::kHbm: return s.hbm;
      case ResourceClass::kLink: return s.link;
      default: return 1.0;
    }
}

/** The resource class whose speed bounds @p n under what-if scaling. */
ResourceClass
bindingClassOf(const SpanNode &n)
{
    if (!n.binding.empty())
        return resourceClassOf(n.binding);
    // Flow-less nodes: infer from the category so graphs recorded
    // without fluid info (hand-built tests) still replay sensibly.
    switch (n.category) {
      case SpanCategory::kCompute: return ResourceClass::kCore;
      case SpanCategory::kComm: return ResourceClass::kLink;
      default: return ResourceClass::kOther;
    }
}

} // namespace

double
whatIfReplay(const std::vector<SpanNode> &nodes, const WhatIfScale &scale)
{
    if (nodes.empty())
        return 0.0;
    std::vector<Time> new_end(nodes.size(), 0.0);
    Time begin0 = std::numeric_limits<double>::infinity();
    Time span_end = -std::numeric_limits<double>::infinity();
    for (const SpanNode &n : nodes) {
        double dur = n.duration();
        bool scalable = n.category == SpanCategory::kCompute ||
                        n.category == SpanCategory::kComm ||
                        n.category == SpanCategory::kRecovery;
        if (scalable) {
            double scaled = dur / classScale(scale, bindingClassOf(n));
            // A class that is not the binding one still imposes its
            // solo-service floor: 2x links cannot push a transfer
            // below the time its HBM stream needs.
            scaled = std::max(scaled, n.coreFloor / scale.core);
            scaled = std::max(scaled, n.hbmFloor / scale.hbm);
            scaled = std::max(scaled, n.linkFloor / scale.link);
            dur = std::min(dur, scaled); // speedups only shrink work
        }
        Time begin = n.begin;
        if (!n.deps.empty()) {
            // The gap between the last-finishing dependency and this
            // node's start is launch/queueing cost and is preserved;
            // gaps to earlier-finishing dependencies are slack, not
            // constraints, so they must not pin the replayed start.
            Time dep_end = -std::numeric_limits<double>::infinity();
            Time new_dep_end = dep_end;
            for (int dep : n.deps) {
                dep_end = std::max(dep_end, nodes[dep].end);
                new_dep_end = std::max(new_dep_end, new_end[dep]);
            }
            begin = new_dep_end + std::max(0.0, n.begin - dep_end);
        }
        new_end[n.id] = begin + dur;
        begin0 = std::min(begin0, begin);
        span_end = std::max(span_end, new_end[n.id]);
    }
    return span_end - begin0;
}

double
ExplainRecord::categoryShare(SpanCategory cat) const
{
    return span > 0.0 ? byCategory[static_cast<int>(cat)] / span : 0.0;
}

ExplainRecord
explainGraph(const std::vector<SpanNode> &nodes)
{
    ExplainRecord rec;
    rec.nodeCount = static_cast<int>(nodes.size());
    if (nodes.empty())
        return rec;
    Attribution attr = extractCriticalPath(nodes);
    rec.span = attr.span();
    for (int c = 0; c < kSpanCategoryCount; ++c)
        rec.byCategory[c] = attr.byCategory[c];
    rec.attributionError = std::fabs(attr.total() - rec.span);

    std::vector<double> slack = computeSlack(nodes);
    std::vector<int> zero;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (slack[i] <= 1e-12 && nodes[i].duration() > 0.0)
            zero.push_back(static_cast<int>(i));
    }
    std::sort(zero.begin(), zero.end(), [&](int a, int b) {
        double da = nodes[a].duration(), db = nodes[b].duration();
        return da != db ? da > db : a < b;
    });
    for (std::size_t i = 0; i < zero.size() && i < 5; ++i) {
        const SpanNode &n = nodes[zero[i]];
        rec.hotSpans.push_back({n.name, n.chip, n.duration(),
                                slack[zero[i]]});
    }

    WhatIfScale compute2x;
    compute2x.core = 2.0;
    rec.whatifCompute2x = whatIfReplay(nodes, compute2x);
    WhatIfScale link2x;
    link2x.link = 2.0;
    rec.whatifLink2x = whatIfReplay(nodes, link2x);
    return rec;
}

void
annotateCriticalPath(TraceRecorder &trace,
                     const std::vector<SpanNode> &nodes,
                     const Attribution &attr)
{
    if (!trace.enabled() || attr.segments.empty())
        return;
    trace.setProcessName(kCriticalPathPid, "critical_path");
    trace.setThreadName(kCriticalPathPid, 0, "attribution");
    for (const PathSegment &seg : attr.segments) {
        std::string name = spanCategoryName(seg.category);
        if (seg.node >= 0)
            name += ": " + nodes[seg.node].name;
        trace.record(std::move(name), "critical_path", kCriticalPathPid,
                     0, seg.begin, seg.end);
    }
    // Flow arrows chain consecutive path nodes on their home lanes.
    for (std::size_t i = 0; i + 1 < attr.pathNodes.size(); ++i) {
        const SpanNode &a = nodes[attr.pathNodes[i]];
        const SpanNode &b = nodes[attr.pathNodes[i + 1]];
        std::uint64_t id = trace.newFlowId();
        int pid_a = a.chip >= 0 ? a.chip : kCriticalPathPid;
        int pid_b = b.chip >= 0 ? b.chip : kCriticalPathPid;
        trace.recordFlow("critical_path", "critical_path", id, pid_a, 0,
                         a.end, true);
        trace.recordFlow("critical_path", "critical_path", id, pid_b, 0,
                         std::max(b.begin, a.end), false);
    }
}

} // namespace meshslice
