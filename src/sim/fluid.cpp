#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace meshslice {

namespace {

/// Relative tolerance for "resource is oversubscribed" checks.
constexpr double kOverloadEps = 1e-9;

/// Relative tolerance for "capacity is below nominal" (degraded).
constexpr double kDegradedEps = 1e-12;

} // namespace

FluidNetwork::FluidNetwork(Simulator &sim) : sim_(sim)
{
    // Watchdog: flows parked on a down resource have no completion
    // event; if the queue drains while any flow is outstanding the
    // simulation stalled rather than finished.
    sim_.addQuiescenceCheck([this] { return stallDiagnostic(); });
}

ResourceId
FluidNetwork::addResource(std::string name, double capacity)
{
    if (capacity <= 0.0)
        panic("FluidNetwork: resource '%s' needs positive capacity",
              name.c_str());
    Resource res;
    res.name = std::move(name);
    res.capacity = capacity;
    res.nominalCapacity = capacity;
    res.createdAt = sim_.now();
    res.lastUpdate = sim_.now();
    resources_.push_back(std::move(res));
    return static_cast<ResourceId>(resources_.size() - 1);
}

void
FluidNetwork::setCapacity(ResourceId id, double capacity)
{
    if (capacity <= 0.0)
        panic("FluidNetwork: capacity must be positive");
    // Settle the elapsed segment at the old capacity so busy/idle/
    // degraded seconds are attributed to the window they belong to.
    advanceResourceAccounting();
    resources_.at(static_cast<size_t>(id)).capacity = capacity;
    markDirty();
}

void
FluidNetwork::setAvailable(ResourceId id, bool available)
{
    advanceResourceAccounting();
    resources_.at(static_cast<size_t>(id)).available = available;
    markDirty();
}

bool
FluidNetwork::isAvailable(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).available;
}

double
FluidNetwork::capacity(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).capacity;
}

double
FluidNetwork::nominalCapacity(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).nominalCapacity;
}

const std::string &
FluidNetwork::resourceName(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).name;
}

std::string
FluidNetwork::stallDiagnostic() const
{
    if (flows_.empty())
        return "";
    std::string out = strprintf("%zu flow(s) still outstanding:\n",
                                flows_.size());
    // Ordered by id for a deterministic dump.
    std::vector<FlowId> ids;
    ids.reserve(flows_.size());
    for (const auto &entry : flows_)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());
    for (FlowId id : ids) {
        const Flow &flow = flows_.at(id);
        out += strprintf("  flow %lld: remaining %.6g units, rate %.6g "
                         "units/s, demands:",
                         static_cast<long long>(id), flow.remaining,
                         flow.rate);
        for (const Demand &d : flow.demands) {
            const Resource &res =
                resources_[static_cast<size_t>(d.resource)];
            out += strprintf(" %s%s", res.name.c_str(),
                             res.available ? "" : " [DOWN]");
        }
        out += '\n';
    }
    out += "hint: a collective is likely waiting on a dead link with no "
           "fallback; check the fault scenario or rebuild the ring "
           "around the failure.";
    return out;
}

FlowId
FluidNetwork::startFlow(double size, std::vector<Demand> demands,
                        std::function<void()> on_complete)
{
    if (size < 0.0)
        panic("FluidNetwork: negative flow size %g", size);
    if (size == 0.0) {
        // Zero-size work completes after the current event batch.
        sim_.scheduleAfter(0.0, std::move(on_complete));
        return 0;
    }
    if (demands.empty())
        panic("FluidNetwork: flow needs at least one demand");
    for (const auto &d : demands) {
        if (d.resource < 0 ||
            static_cast<size_t>(d.resource) >= resources_.size())
            panic("FluidNetwork: bad resource id %d", d.resource);
        if (d.perUnit <= 0.0)
            panic("FluidNetwork: demand coefficients must be positive");
    }

    FlowId id = nextFlowId_++;
    Flow flow;
    flow.remaining = size;
    flow.rate = 0.0;
    flow.lastUpdate = sim_.now();
    flow.demands = std::move(demands);
    flow.onComplete = std::move(on_complete);
    for (const auto &d : flow.demands)
        resources_[static_cast<size_t>(d.resource)].activeFlows++;
    flows_.emplace(id, std::move(flow));
    markDirty();
    return id;
}

bool
FluidNetwork::cancelFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return false;
    // Settle accounting so the work done before the abort stays
    // attributed to the correct window, then drop the flow without
    // invoking its completion callback.
    advanceResourceAccounting();
    advanceFlow(it->second);
    sim_.cancel(it->second.completion);
    for (const auto &d : it->second.demands)
        resources_[static_cast<size_t>(d.resource)].activeFlows--;
    flows_.erase(it);
    markDirty();
    return true;
}

ResourceStats
FluidNetwork::resourceStats(ResourceId id) const
{
    const Resource &res = resources_.at(static_cast<size_t>(id));
    ResourceStats stats;
    stats.name = res.name;
    stats.capacity = res.capacity;
    stats.nominalCapacity = res.nominalCapacity;
    stats.available = res.available;
    double dt = sim_.now() - res.lastUpdate;
    const double frac = std::min(1.0, res.load / res.capacity);
    stats.totalConsumed = res.totalConsumed + res.load * dt;
    stats.busyTime = res.busyTime + frac * dt;
    stats.idleTime = res.idleTime + (1.0 - frac) * dt;
    stats.contentionTime = res.contentionTime;
    if (res.soloLoad > res.capacity * (1.0 + kOverloadEps))
        stats.contentionTime += dt;
    stats.degradedTime = res.degradedTime;
    if (!res.available ||
        res.capacity < res.nominalCapacity * (1.0 - kDegradedEps))
        stats.degradedTime += dt;
    stats.createdAt = res.createdAt;
    stats.activeFlows = res.activeFlows;
    return stats;
}

double
FluidNetwork::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

void
FluidNetwork::markDirty()
{
    if (dirty_)
        return;
    dirty_ = true;
    sim_.scheduleAfter(0.0, [this] { recompute(); });
}

void
FluidNetwork::advanceFlow(Flow &flow)
{
    double dt = sim_.now() - flow.lastUpdate;
    if (dt > 0.0) {
        flow.remaining -= flow.rate * dt;
        if (flow.remaining < 0.0)
            flow.remaining = 0.0;
    }
    flow.lastUpdate = sim_.now();
}

void
FluidNetwork::advanceResourceAccounting()
{
    for (Resource &res : resources_) {
        double dt = sim_.now() - res.lastUpdate;
        if (dt > 0.0) {
            const double frac = std::min(1.0, res.load / res.capacity);
            res.totalConsumed += res.load * dt;
            res.busyTime += frac * dt;
            res.idleTime += (1.0 - frac) * dt;
            if (res.soloLoad > res.capacity * (1.0 + kOverloadEps))
                res.contentionTime += dt;
            if (!res.available ||
                res.capacity < res.nominalCapacity * (1.0 - kDegradedEps))
                res.degradedTime += dt;
        }
        res.lastUpdate = sim_.now();
    }
}

void
FluidNetwork::finishFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return; // cancelled completion that raced with a reschedule
    advanceResourceAccounting();
    advanceFlow(it->second);
    std::function<void()> cb = std::move(it->second.onComplete);
    for (const auto &d : it->second.demands)
        resources_[static_cast<size_t>(d.resource)].activeFlows--;
    flows_.erase(it);
    markDirty();
    if (cb)
        cb();
}

void
FluidNetwork::recompute()
{
    dirty_ = false;
    advanceResourceAccounting();

    // Gather active flows into a dense working set.
    std::vector<FlowId> ids;
    ids.reserve(flows_.size());
    for (auto &entry : flows_) {
        advanceFlow(entry.second);
        ids.push_back(entry.first);
    }

    // Solo rates: each flow limited by every resource's full capacity.
    // Flows demanding a *down* resource park at rate zero: they keep
    // their progress, get no completion event, and resume when the
    // resource comes back up.
    std::vector<double> rate(ids.size());
    std::vector<bool> parked(ids.size(), false);
    for (size_t i = 0; i < ids.size(); ++i) {
        const Flow &flow = flows_[ids[i]];
        double r = 1e300;
        for (const auto &d : flow.demands) {
            const Resource &res =
                resources_[static_cast<size_t>(d.resource)];
            if (!res.available) {
                parked[i] = true;
                break;
            }
            r = std::min(r, res.capacity / d.perUnit);
        }
        rate[i] = parked[i] ? 0.0 : r;
    }
    // Snapshot of the uncontended rates (the waterfill mutates `rate`),
    // for the per-resource contention attribution.
    const std::vector<double> solo_rate = rate;

    // Per-resource membership: (flow index, demand coefficient).
    // Parked flows consume nothing and stay out of the waterfill.
    std::vector<std::vector<std::pair<size_t, double>>> members(
        resources_.size());
    for (size_t i = 0; i < ids.size(); ++i) {
        if (parked[i])
            continue;
        for (const auto &d : flows_[ids[i]].demands)
            members[static_cast<size_t>(d.resource)].emplace_back(i,
                                                                  d.perUnit);
    }

    // Saturate-and-waterfill: repeatedly pick the most oversubscribed
    // resource and cut its heaviest consumers to an equal consumption
    // level that exactly fills the capacity. Rates only decrease, so each
    // resource needs processing at most once.
    std::vector<bool> processed(resources_.size(), false);
    for (;;) {
        int worst = -1;
        double worst_ratio = 1.0 + kOverloadEps;
        for (size_t r = 0; r < resources_.size(); ++r) {
            if (processed[r] || members[r].empty())
                continue;
            double load = 0.0;
            for (const auto &[i, d] : members[r])
                load += d * rate[i];
            double ratio = load / resources_[r].capacity;
            if (ratio > worst_ratio) {
                worst_ratio = ratio;
                worst = static_cast<int>(r);
            }
        }
        if (worst < 0)
            break;
        processed[static_cast<size_t>(worst)] = true;

        // Water-fill consumptions on `worst` to its capacity.
        auto &flows_on_r = members[static_cast<size_t>(worst)];
        std::vector<std::pair<double, size_t>> consumption; // (c_f, idx)
        consumption.reserve(flows_on_r.size());
        for (size_t k = 0; k < flows_on_r.size(); ++k)
            consumption.emplace_back(
                flows_on_r[k].second * rate[flows_on_r[k].first], k);
        std::sort(consumption.begin(), consumption.end());

        double cap = resources_[static_cast<size_t>(worst)].capacity;
        double below = 0.0; // sum of consumptions kept as-is
        size_t n = consumption.size();
        double level = 0.0;
        for (size_t k = 0; k < n; ++k) {
            // Remaining flows all cut to `level`; is consumption[k] kept?
            double candidate = (cap - below) / static_cast<double>(n - k);
            if (consumption[k].first <= candidate) {
                below += consumption[k].first;
                level = candidate; // provisional, refined each iteration
            } else {
                level = candidate;
                break;
            }
        }
        for (const auto &[c, k] : consumption) {
            if (c > level) {
                size_t i = flows_on_r[k].first;
                double d = flows_on_r[k].second;
                rate[i] = std::min(rate[i], level / d);
            }
        }
    }

    // Apply rates, reschedule completions, refresh resource loads.
    for (Resource &res : resources_) {
        res.load = 0.0;
        res.soloLoad = 0.0;
    }
    for (size_t i = 0; i < ids.size(); ++i) {
        Flow &flow = flows_[ids[i]];
        if (parked[i]) {
            // Freeze: keep progress, drop the completion event. The
            // invalid EventId forces a reschedule once the flow resumes.
            sim_.cancel(flow.completion);
            flow.completion = EventId{};
            flow.rate = 0.0;
            continue;
        }
        if (rate[i] <= 0.0)
            panic("FluidNetwork: flow starved (zero rate)");
        bool changed =
            std::abs(rate[i] - flow.rate) > 1e-12 * std::max(1.0, flow.rate);
        flow.rate = rate[i];
        for (const auto &d : flow.demands) {
            Resource &res = resources_[static_cast<size_t>(d.resource)];
            res.load += d.perUnit * flow.rate;
            res.soloLoad += d.perUnit * solo_rate[i];
        }
        if (changed || !flow.completion.valid()) {
            sim_.cancel(flow.completion);
            FlowId id = ids[i];
            flow.completion = sim_.schedule(
                sim_.now() + flow.remaining / flow.rate,
                [this, id] { finishFlow(id); });
        }
    }
}

} // namespace meshslice
