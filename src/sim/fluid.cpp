#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace meshslice {

namespace {

/// Relative tolerance for "resource is oversubscribed" checks.
constexpr double kOverloadEps = 1e-9;

/// Relative tolerance for "capacity is below nominal" (degraded).
constexpr double kDegradedEps = 1e-12;

} // namespace

FluidNetwork::FluidNetwork(Simulator &sim)
    : sim_(sim),
      flows_(0, std::hash<FlowId>(), std::equal_to<FlowId>(),
             ArenaAllocator<std::pair<const FlowId, Flow>>(&arena_))
{
    // Watchdog: flows parked on a down resource have no completion
    // event; if the queue drains while any flow is outstanding the
    // simulation stalled rather than finished.
    sim_.addQuiescenceCheck([this] { return stallDiagnostic(); });
}

ResourceId
FluidNetwork::addResource(std::string name, double capacity)
{
    if (capacity <= 0.0)
        panic("FluidNetwork: resource '%s' needs positive capacity",
              name.c_str());
    Resource res;
    res.name = std::move(name);
    res.capacity = capacity;
    res.nominalCapacity = capacity;
    res.createdAt = sim_.now();
    res.lastUpdate = sim_.now();
    resources_.push_back(std::move(res));
    resourceEpoch_.push_back(0);
    memberSlot_.push_back(-1);
    return static_cast<ResourceId>(resources_.size() - 1);
}

void
FluidNetwork::setCapacity(ResourceId id, double capacity)
{
    if (capacity <= 0.0)
        panic("FluidNetwork: capacity must be positive");
    // Settle the elapsed segment at the old capacity so busy/idle/
    // degraded seconds are attributed to the window they belong to.
    if (eagerAccounting_)
        advanceResourceAccounting();
    else
        settleResource(resources_.at(static_cast<size_t>(id)));
    resources_.at(static_cast<size_t>(id)).capacity = capacity;
    markDirty();
}

void
FluidNetwork::setAvailable(ResourceId id, bool available)
{
    if (eagerAccounting_)
        advanceResourceAccounting();
    else
        settleResource(resources_.at(static_cast<size_t>(id)));
    resources_.at(static_cast<size_t>(id)).available = available;
    markDirty();
}

bool
FluidNetwork::isAvailable(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).available;
}

double
FluidNetwork::capacity(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).capacity;
}

double
FluidNetwork::nominalCapacity(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).nominalCapacity;
}

const std::string &
FluidNetwork::resourceName(ResourceId id) const
{
    return resources_.at(static_cast<size_t>(id)).name;
}

std::string
FluidNetwork::stallDiagnostic() const
{
    if (flows_.empty())
        return "";
    std::string out = strprintf("%zu flow(s) still outstanding:\n",
                                flows_.size());
    // Ordered by id for a deterministic dump.
    std::vector<FlowId> ids;
    ids.reserve(flows_.size());
    for (const auto &entry : flows_)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());
    for (FlowId id : ids) {
        const Flow &flow = flows_.at(id);
        out += strprintf("  flow %lld: remaining %.6g units, rate %.6g "
                         "units/s, demands:",
                         static_cast<long long>(id), flow.remaining,
                         flow.rate);
        for (const Demand &d : flow.demands) {
            const Resource &res =
                resources_[static_cast<size_t>(d.resource)];
            out += strprintf(" %s%s", res.name.c_str(),
                             res.available ? "" : " [DOWN]");
        }
        out += '\n';
    }
    out += "hint: a collective is likely waiting on a dead link with no "
           "fallback; check the fault scenario or rebuild the ring "
           "around the failure.";
    return out;
}

FlowId
FluidNetwork::startFlow(double size, std::vector<Demand> demands,
                        std::function<void()> on_complete)
{
    if (size < 0.0)
        panic("FluidNetwork: negative flow size %g", size);
    if (size == 0.0) {
        // Zero-size work completes after the current event batch.
        if (publishFlowInfo_) {
            // No flow ran, so no binding/throttle info: invalidate the
            // stash so the callback cannot read a predecessor's.
            sim_.scheduleAfter(0.0,
                               [this, cb = std::move(on_complete)] {
                                   lastFlowInfo_ = FlowEndInfo{};
                                   if (cb)
                                       cb();
                               });
        } else {
            sim_.scheduleAfter(0.0, std::move(on_complete));
        }
        return 0;
    }
    if (demands.empty())
        panic("FluidNetwork: flow needs at least one demand");
    for (const auto &d : demands) {
        if (d.resource < 0 ||
            static_cast<size_t>(d.resource) >= resources_.size())
            panic("FluidNetwork: bad resource id %d", d.resource);
        if (d.perUnit <= 0.0)
            panic("FluidNetwork: demand coefficients must be positive");
    }

    FlowId id = nextFlowId_++;
    Flow flow;
    flow.remaining = size;
    flow.size = size;
    flow.rate = 0.0;
    flow.lastUpdate = sim_.now();
    flow.demands = std::move(demands);
    flow.onComplete = std::move(on_complete);
    for (const auto &d : flow.demands)
        resources_[static_cast<size_t>(d.resource)].activeFlows++;
    flows_.emplace(id, std::move(flow));
    markDirty();
    return id;
}

bool
FluidNetwork::cancelFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return false;
    // Settle accounting so the work done before the abort stays
    // attributed to the correct window, then drop the flow without
    // invoking its completion callback.
    if (eagerAccounting_)
        advanceResourceAccounting();
    else
        settleFlowResources(it->second.demands);
    advanceFlow(it->second);
    sim_.cancel(it->second.completion);
    for (const auto &d : it->second.demands)
        resources_[static_cast<size_t>(d.resource)].activeFlows--;
    flows_.erase(it);
    markDirty();
    return true;
}

ResourceStats
FluidNetwork::resourceStats(ResourceId id) const
{
    const Resource &res = resources_.at(static_cast<size_t>(id));
    ResourceStats stats;
    stats.name = res.name;
    stats.capacity = res.capacity;
    stats.nominalCapacity = res.nominalCapacity;
    stats.available = res.available;
    double dt = sim_.now() - res.lastUpdate;
    const double frac = std::min(1.0, res.load / res.capacity);
    stats.totalConsumed = res.totalConsumed + res.load * dt;
    stats.busyTime = res.busyTime + frac * dt;
    stats.idleTime = res.idleTime + (1.0 - frac) * dt;
    stats.contentionTime = res.contentionTime;
    if (res.soloLoad > res.capacity * (1.0 + kOverloadEps))
        stats.contentionTime += dt;
    stats.degradedTime = res.degradedTime;
    if (!res.available ||
        res.capacity < res.nominalCapacity * (1.0 - kDegradedEps))
        stats.degradedTime += dt;
    stats.createdAt = res.createdAt;
    stats.activeFlows = res.activeFlows;
    return stats;
}

double
FluidNetwork::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

void
FluidNetwork::markDirty()
{
    if (dirty_)
        return;
    dirty_ = true;
    sim_.scheduleAfter(0.0, [this] { recompute(); });
}

void
FluidNetwork::advanceFlow(Flow &flow)
{
    double dt = sim_.now() - flow.lastUpdate;
    if (dt > 0.0) {
        flow.remaining -= flow.rate * dt;
        if (flow.remaining < 0.0)
            flow.remaining = 0.0;
        if (publishFlowInfo_ && flow.soloRate > 0.0) {
            flow.throttled +=
                dt * std::max(0.0, 1.0 - flow.rate / flow.soloRate);
        }
    }
    flow.lastUpdate = sim_.now();
}

void
FluidNetwork::settleResource(Resource &res)
{
    double dt = sim_.now() - res.lastUpdate;
    if (dt > 0.0) {
        const double frac = std::min(1.0, res.load / res.capacity);
        res.totalConsumed += res.load * dt;
        res.busyTime += frac * dt;
        res.idleTime += (1.0 - frac) * dt;
        if (res.soloLoad > res.capacity * (1.0 + kOverloadEps))
            res.contentionTime += dt;
        if (!res.available ||
            res.capacity < res.nominalCapacity * (1.0 - kDegradedEps))
            res.degradedTime += dt;
    }
    res.lastUpdate = sim_.now();
}

void
FluidNetwork::advanceResourceAccounting()
{
    for (Resource &res : resources_)
        settleResource(res);
}

void
FluidNetwork::settleFlowResources(const std::vector<Demand> &demands)
{
    // Settling twice at one timestamp is harmless (dt == 0), so no
    // dedup is needed.
    for (const Demand &d : demands)
        settleResource(resources_[static_cast<size_t>(d.resource)]);
}

void
FluidNetwork::finishFlow(FlowId id)
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return; // cancelled completion that raced with a reschedule
    if (eagerAccounting_)
        advanceResourceAccounting();
    else
        settleFlowResources(it->second.demands);
    advanceFlow(it->second);
    if (publishFlowInfo_) {
        // Stash the profiler view of this flow before it is erased;
        // the completion callback reads it via lastFinishedFlow().
        const Flow &flow = it->second;
        FlowEndInfo info;
        info.valid = true;
        if (flow.binding >= 0)
            info.binding =
                resources_[static_cast<size_t>(flow.binding)].name;
        info.throttledSeconds = flow.throttled;
        for (const Demand &d : flow.demands) {
            const Resource &res =
                resources_[static_cast<size_t>(d.resource)];
            double solo_s = flow.size * d.perUnit / res.capacity;
            switch (resourceClassOf(res.name)) {
              case ResourceClass::kCore:
                info.coreFloor = std::max(info.coreFloor, solo_s);
                break;
              case ResourceClass::kHbm:
                info.hbmFloor = std::max(info.hbmFloor, solo_s);
                break;
              case ResourceClass::kLink:
                info.linkFloor = std::max(info.linkFloor, solo_s);
                break;
              default:
                break;
            }
        }
        lastFlowInfo_ = std::move(info);
    }
    std::function<void()> cb = std::move(it->second.onComplete);
    for (const auto &d : it->second.demands)
        resources_[static_cast<size_t>(d.resource)].activeFlows--;
    flows_.erase(it);
    markDirty();
    if (cb)
        cb();
}

void
FluidNetwork::recompute()
{
    dirty_ = false;

    // Gather active flows into a dense working set (scratch vectors
    // keep their capacity across recomputes, so the steady state
    // allocates nothing).
    scratchFlows_.clear();
    scratchIds_.clear();
    for (auto &entry : flows_) {
        advanceFlow(entry.second);
        scratchIds_.push_back(entry.first);
        scratchFlows_.push_back(&entry.second);
    }
    const size_t n = scratchFlows_.size();

    // Solo rates: each flow limited by every resource's full capacity.
    // Flows demanding a *down* resource park at rate zero: they keep
    // their progress, get no completion event, and resume when the
    // resource comes back up.
    scratchRate_.assign(n, 0.0);
    scratchParked_.assign(n, 0);
    if (publishFlowInfo_)
        scratchBinding_.assign(n, -1);
    for (size_t i = 0; i < n; ++i) {
        const Flow &flow = *scratchFlows_[i];
        double r = 1e300;
        for (const auto &d : flow.demands) {
            const Resource &res =
                resources_[static_cast<size_t>(d.resource)];
            if (!res.available) {
                scratchParked_[i] = 1;
                break;
            }
            double lim = res.capacity / d.perUnit;
            if (lim < r) {
                r = lim;
                if (publishFlowInfo_)
                    scratchBinding_[i] = d.resource;
            }
        }
        scratchRate_[i] = scratchParked_[i] ? 0.0 : r;
    }
    // Snapshot of the uncontended rates (the waterfill mutates the
    // working rates), for the per-resource contention attribution.
    scratchSolo_ = scratchRate_;

    // Per-resource membership, built only for resources that current
    // flows actually demand: (flow index, demand coefficient). Parked
    // flows consume nothing and stay out of the waterfill.
    ++epoch_;
    memberIds_.clear();
    for (size_t i = 0; i < n; ++i) {
        if (scratchParked_[i])
            continue;
        for (const auto &d : scratchFlows_[i]->demands) {
            const size_t r = static_cast<size_t>(d.resource);
            if (resourceEpoch_[r] != epoch_) {
                resourceEpoch_[r] = epoch_;
                memberSlot_[r] =
                    static_cast<std::int32_t>(memberIds_.size());
                if (memberLists_.size() <= memberIds_.size())
                    memberLists_.emplace_back();
                memberLists_[memberIds_.size()].clear();
                memberIds_.push_back(d.resource);
            }
            memberLists_[static_cast<size_t>(memberSlot_[r])]
                .emplace_back(i, d.perUnit);
        }
    }
    // The waterfill scans members in increasing resource id (matching
    // the legacy full-resource sweep, so tie-breaks — and therefore
    // rates — are bit-identical to it).
    std::sort(memberIds_.begin(), memberIds_.end());

    // Settle accounting for every resource whose load may change:
    // whatever the previous assignment loaded plus this round's
    // members. Untouched resources keep a constant load, so their
    // deferred segment is recovered exactly on the next settle or
    // stats read. The eager mode already swept everything per event.
    if (eagerAccounting_) {
        advanceResourceAccounting();
    } else {
        for (ResourceId r : loadedIds_)
            settleResource(resources_[static_cast<size_t>(r)]);
        for (ResourceId r : memberIds_)
            settleResource(resources_[static_cast<size_t>(r)]);
    }

    // Saturate-and-waterfill: repeatedly pick the most oversubscribed
    // resource and cut its heaviest consumers to an equal consumption
    // level that exactly fills the capacity. Rates only decrease, so each
    // resource needs processing at most once.
    memberProcessed_.assign(memberIds_.size(), 0);
    std::vector<std::pair<double, size_t>> consumption; // (c_f, idx)
    for (;;) {
        ResourceId worst = -1;
        std::int32_t worst_slot = -1;
        double worst_ratio = 1.0 + kOverloadEps;
        for (size_t m = 0; m < memberIds_.size(); ++m) {
            if (memberProcessed_[m])
                continue;
            const ResourceId r = memberIds_[m];
            const auto &on_r =
                memberLists_[static_cast<size_t>(
                    memberSlot_[static_cast<size_t>(r)])];
            double load = 0.0;
            for (const auto &[i, d] : on_r)
                load += d * scratchRate_[i];
            double ratio =
                load / resources_[static_cast<size_t>(r)].capacity;
            if (ratio > worst_ratio) {
                worst_ratio = ratio;
                worst = r;
                worst_slot = static_cast<std::int32_t>(m);
            }
        }
        if (worst < 0)
            break;
        memberProcessed_[static_cast<size_t>(worst_slot)] = 1;

        // Water-fill consumptions on `worst` to its capacity.
        const auto &flows_on_r = memberLists_[static_cast<size_t>(
            memberSlot_[static_cast<size_t>(worst)])];
        consumption.clear();
        consumption.reserve(flows_on_r.size());
        for (size_t k = 0; k < flows_on_r.size(); ++k)
            consumption.emplace_back(
                flows_on_r[k].second * scratchRate_[flows_on_r[k].first],
                k);
        std::sort(consumption.begin(), consumption.end());

        double cap = resources_[static_cast<size_t>(worst)].capacity;
        double below = 0.0; // sum of consumptions kept as-is
        size_t cn = consumption.size();
        double level = 0.0;
        for (size_t k = 0; k < cn; ++k) {
            // Remaining flows all cut to `level`; is consumption[k] kept?
            double candidate =
                (cap - below) / static_cast<double>(cn - k);
            if (consumption[k].first <= candidate) {
                below += consumption[k].first;
                level = candidate; // provisional, refined each iteration
            } else {
                level = candidate;
                break;
            }
        }
        for (const auto &[c, k] : consumption) {
            if (c > level) {
                size_t i = flows_on_r[k].first;
                double d = flows_on_r[k].second;
                double cut = level / d;
                if (cut < scratchRate_[i]) {
                    scratchRate_[i] = cut;
                    // Rates only decrease, so the last resource that
                    // strictly cut the flow is its binding resource.
                    if (publishFlowInfo_)
                        scratchBinding_[i] = worst;
                }
            }
        }
    }

    // Apply rates, reschedule completions, refresh resource loads —
    // zeroing only what the previous assignment loaded, accumulating
    // only over this round's members.
    if (eagerAccounting_) {
        for (Resource &res : resources_) {
            res.load = 0.0;
            res.soloLoad = 0.0;
        }
    } else {
        for (ResourceId r : loadedIds_) {
            Resource &res = resources_[static_cast<size_t>(r)];
            res.load = 0.0;
            res.soloLoad = 0.0;
        }
    }
    for (size_t i = 0; i < n; ++i) {
        Flow &flow = *scratchFlows_[i];
        if (scratchParked_[i]) {
            // Freeze: keep progress, drop the completion event. The
            // invalid EventId forces a reschedule once the flow resumes.
            sim_.cancel(flow.completion);
            flow.completion = EventId{};
            flow.rate = 0.0;
            continue;
        }
        if (scratchRate_[i] <= 0.0)
            panic("FluidNetwork: flow starved (zero rate)");
        bool changed = std::abs(scratchRate_[i] - flow.rate) >
                       1e-12 * std::max(1.0, flow.rate);
        flow.rate = scratchRate_[i];
        if (publishFlowInfo_) {
            flow.soloRate = scratchSolo_[i];
            flow.binding = scratchBinding_[i];
        }
        for (const auto &d : flow.demands) {
            Resource &res = resources_[static_cast<size_t>(d.resource)];
            res.load += d.perUnit * flow.rate;
            res.soloLoad += d.perUnit * scratchSolo_[i];
        }
        if (changed || !flow.completion.valid()) {
            sim_.cancel(flow.completion);
            FlowId id = scratchIds_[i];
            flow.completion = sim_.schedule(
                sim_.now() + flow.remaining / flow.rate,
                [this, id] { finishFlow(id); });
        }
    }
    loadedIds_.assign(memberIds_.begin(), memberIds_.end());
}

} // namespace meshslice
