/**
 * @file
 * Discrete-event simulation core.
 *
 * The MeshSlice cluster simulator replaces the paper's SST-based setup.
 * `Simulator` owns a time-ordered event queue; every other model (links,
 * HBM, compute cores, collectives) schedules callbacks on it. Events that
 * share a timestamp run in scheduling order, which makes runs fully
 * deterministic.
 *
 * The queue is a binary min-heap over (time, sequence) backed by a
 * recycled slot pool for the callbacks — the event arena of a run.
 * Cancellation is O(1): the slot is invalidated and freed immediately,
 * and the stale heap entry is discarded when it surfaces (it does not
 * count as a processed event). Rate-shared flows reschedule their
 * completion on every rate change, so cancel is a hot operation; the
 * lazy scheme turns what used to be an O(log n) tree erase per
 * reschedule into a pointer swap.
 */
#ifndef MESHSLICE_SIM_SIMULATOR_HPP_
#define MESHSLICE_SIM_SIMULATOR_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace meshslice {

/** Handle used to cancel a scheduled event. */
struct EventId
{
    Time when = 0.0;
    std::uint64_t seq = 0;
    /** Index of the callback's slot in the simulator's slot pool. */
    std::uint32_t slot = 0;

    bool valid() const { return seq != 0; }
};

/**
 * A deterministic discrete-event simulator.
 *
 * Not thread-safe; one instance per simulated cluster. Independent
 * simulators (one per candidate run) may execute concurrently on
 * different threads.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time (seconds). */
    Time now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId schedule(Time when, Callback fn);

    /** Schedule @p fn @p delay seconds from now (delay >= 0). */
    EventId scheduleAfter(Time delay, Callback fn);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and got removed.
     */
    bool cancel(const EventId &id);

    /** Run until the event queue drains. @return final time. */
    Time run();

    /** Run until @p deadline or until the queue drains. */
    Time runUntil(Time deadline);

    /**
     * Stalled-work watchdog check, run by `run`/`runUntil` whenever the
     * event queue fully drains. Each registered check returns a
     * diagnostic string describing work that is still outstanding (or
     * "" if none). A non-empty diagnostic means the event loop stalled
     * — e.g. a fluid flow parked on a dead link with no fallback, whose
     * completion can never fire — and the simulator aborts via
     * `fatal()` with the dump instead of silently finishing early.
     */
    using QuiescenceCheck = std::function<std::string()>;

    /** Register a watchdog check (the fluid network installs one). */
    void addQuiescenceCheck(QuiescenceCheck check);

    /**
     * Ask the event loop to stop before executing the next event. Used
     * by the elastic runtime's fail-stop handler to abandon a phase
     * mid-flight: pending events stay queued (they are simply never
     * run), and the quiescence watchdog is skipped — a stopped run is
     * an abandonment, not a completion, so stalled work is expected.
     * Safe to call from inside an event callback or before `run()`.
     */
    void requestStop() { stopRequested_ = true; }

    /** True once `requestStop()` has been called. Never reset. */
    bool stopRequested() const { return stopRequested_; }

    /** Number of events executed so far (cancelled events never
     *  count, whether cancelled before or after their heap entry
     *  surfaces). */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** Number of currently pending (live, uncancelled) events. */
    size_t pendingEvents() const { return live_; }

  private:
    /** Heap key + slot reference; stale once the slot's seq moved on. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** One pooled callback; seq == 0 marks the slot free. */
    struct Slot
    {
        Callback fn;
        std::uint64_t seq = 0;
    };

    static bool later(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when > b.when || (a.when == b.when && a.seq > b.seq);
    }

    void pushHeap(HeapEntry entry);
    HeapEntry popHeap();
    void checkQuiescence() const;

    Time now_ = 0.0;
    bool stopRequested_ = false;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t processed_ = 0;
    size_t live_ = 0; ///< heap entries whose slot is still current
    std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<QuiescenceCheck> quiescenceChecks_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_SIMULATOR_HPP_
