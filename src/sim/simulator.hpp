/**
 * @file
 * Discrete-event simulation core.
 *
 * The MeshSlice cluster simulator replaces the paper's SST-based setup.
 * `Simulator` owns a time-ordered event queue; every other model (links,
 * HBM, compute cores, collectives) schedules callbacks on it. Events that
 * share a timestamp run in scheduling order, which makes runs fully
 * deterministic.
 */
#ifndef MESHSLICE_SIM_SIMULATOR_HPP_
#define MESHSLICE_SIM_SIMULATOR_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace meshslice {

/** Handle used to cancel a scheduled event. */
struct EventId
{
    Time when = 0.0;
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }
};

/**
 * A deterministic discrete-event simulator.
 *
 * Not thread-safe; one instance per simulated cluster.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time (seconds). */
    Time now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId schedule(Time when, Callback fn);

    /** Schedule @p fn @p delay seconds from now (delay >= 0). */
    EventId scheduleAfter(Time delay, Callback fn);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and got removed.
     */
    bool cancel(const EventId &id);

    /** Run until the event queue drains. @return final time. */
    Time run();

    /** Run until @p deadline or until the queue drains. */
    Time runUntil(Time deadline);

    /**
     * Stalled-work watchdog check, run by `run`/`runUntil` whenever the
     * event queue fully drains. Each registered check returns a
     * diagnostic string describing work that is still outstanding (or
     * "" if none). A non-empty diagnostic means the event loop stalled
     * — e.g. a fluid flow parked on a dead link with no fallback, whose
     * completion can never fire — and the simulator aborts via
     * `fatal()` with the dump instead of silently finishing early.
     */
    using QuiescenceCheck = std::function<std::string()>;

    /** Register a watchdog check (the fluid network installs one). */
    void addQuiescenceCheck(QuiescenceCheck check);

    /** Number of events executed so far. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** Number of currently pending events. */
    size_t pendingEvents() const { return queue_.size(); }

  private:
    using Key = std::pair<Time, std::uint64_t>;

    void checkQuiescence() const;

    Time now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t processed_ = 0;
    std::map<Key, Callback> queue_;
    std::vector<QuiescenceCheck> quiescenceChecks_;
};

} // namespace meshslice

#endif // MESHSLICE_SIM_SIMULATOR_HPP_
