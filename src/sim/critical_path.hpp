/**
 * @file
 * Critical-path profiler: causal span graph, bottleneck attribution,
 * slack, and Daydream-style what-if replay.
 *
 * While a simulation runs with the profiler enabled, every unit of
 * simulated work (a chip's GeMM flow, one ring step of a collective
 * with its launch/transfer/sync sub-spans, a reshard transfer, a
 * pipeline micro-batch task) is recorded as a `SpanNode` with causal
 * dependency edges. Edges come from three sources: the TaskGraph (a
 * task's first nodes depend on the exit nodes of its dependency
 * tasks), intra-operation ordering (ring step s+1 depends on step s),
 * and recovery detours (a retried collective depends on the abort
 * marker of the failed attempt). The fluid network additionally
 * publishes, per finished flow, which resource was rate-limiting
 * ("binding"), how many seconds contention cost the flow, and the
 * per-resource-class solo-service floors — enough to replay the graph
 * under hypothetical hardware without re-simulating.
 *
 * On top of the recorded graph this header provides:
 *  - `extractCriticalPath`: a backward telescoping walk from the last-
 *    finishing node whose segments partition [t0, t1] exactly, so the
 *    per-category attribution sums to the simulated span to float
 *    tolerance (enforced as a bench cross-check);
 *  - `computeSlack`: per-node slack (seconds the node's finish can
 *    slip, offsets preserved, without growing the span);
 *  - `whatIfReplay`: re-estimate the span after scaling a resource
 *    class by x k, clamped by the other classes' service floors;
 *  - `explainGraph`: the machine-readable `ExplainRecord` the tuners
 *    attach to top-K candidates;
 *  - `annotateCriticalPath`: Chrome-trace flow events + a dedicated
 *    `critical_path` track so Perfetto highlights the path.
 *
 * The recorder follows the stats-registry convention: one relaxed
 * atomic load when disabled, no allocation, and recording never feeds
 * back into simulation (bit-identical-off, thread-count-invariant —
 * each Cluster owns its recorder and clusters are single-threaded).
 */
#ifndef MESHSLICE_SIM_CRITICAL_PATH_HPP_
#define MESHSLICE_SIM_CRITICAL_PATH_HPP_

#include <atomic>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace meshslice {

class TraceRecorder;

/** Attribution category of one span-graph node. */
enum class SpanCategory : int
{
    kCompute = 0,  ///< a chip's GeMM (core+HBM) flow
    kComm = 1,     ///< exposed communication (transfer on links)
    kLaunch = 2,   ///< fixed software launch overhead
    kSync = 3,     ///< fixed per-step synchronization latency
    kBubble = 4,   ///< idle gap on the critical path (no node runs)
    kRecovery = 5, ///< recovery detour (abort + retried work)
    kCheckpoint = 6, ///< elastic-runtime checkpoint write traffic
};
constexpr int kSpanCategoryCount = 7;

/** Display name of @p cat ("compute", "comm", ...). */
const char *spanCategoryName(SpanCategory cat);

/** Resource class of a named cluster resource, for what-if scaling. */
enum class ResourceClass : int
{
    kCore = 0,
    kHbm = 1,
    kLink = 2,
    kOther = 3,
};

/** Classify a fluid-resource name ("chip3.core", "link.E.b0.r0.c1"). */
ResourceClass resourceClassOf(const std::string &name);

/** One node of the causal span graph. */
struct SpanNode
{
    int id = -1;
    std::string name;
    SpanCategory category = SpanCategory::kCompute;
    Time begin = 0.0;
    Time end = 0.0;
    int chip = -1; ///< representative chip (-1: mesh-wide)
    /** Causal predecessors; every dep id is < this id. */
    std::vector<int> deps;
    /** Rate-limiting resource of the node's (last-finishing) flow. */
    std::string binding;
    /** Seconds the flow ran below its solo rate (contention cost). */
    double throttledSeconds = 0.0;
    /** Solo-service floors per resource class (seconds the node needs
     *  on that class even if everything else were infinitely fast). */
    double coreFloor = 0.0;
    double hbmFloor = 0.0;
    double linkFloor = 0.0;

    double duration() const { return end - begin; }
};

/** Per-flow info the fluid network publishes when profiling is on. */
struct FlowEndInfo
{
    bool valid = false;
    std::string binding; ///< rate-limiting resource name ("" unknown)
    double throttledSeconds = 0.0;
    double coreFloor = 0.0;
    double hbmFloor = 0.0;
    double linkFloor = 0.0;
};

/** Running max-fold of FlowEndInfo over the flows joined by a node. */
struct FlowInfoAccum
{
    FlowEndInfo info;
    void fold(const FlowEndInfo &f);
};

/**
 * Records the span graph of one simulated run. Owned by `Cluster`
 * alongside the trace recorder and stats registry; off by default.
 * All recording calls are single-threaded per recorder (a cluster's
 * simulation is single-threaded); `enabled()` is a relaxed atomic so
 * cross-thread enable checks are race-free.
 */
class SpanRecorder
{
  public:
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Drop all nodes and task scopes (enable state unchanged). */
    void clear();

    /**
     * Append a node. Deps must reference earlier nodes (enforced).
     * While a recovery scope is open the category is overridden to
     * `kRecovery` and the scope's detour root is added as a dep.
     * @return the node id, or -1 while disabled.
     */
    int addNode(std::string name, SpanCategory cat, Time begin, Time end,
                std::vector<int> deps = {}, int chip = -1);

    /** Attach fluid flow info to an existing node. */
    void setNodeResource(int node, const FlowEndInfo &info);

    const std::vector<SpanNode> &nodes() const { return nodes_; }

    // --- TaskGraph integration -----------------------------------
    // The TaskGraph allocates one scope per task; while a task body
    // runs synchronously the scope is "ambient", so operations started
    // inside capture it and later register their final nodes as the
    // task's exits. A task that records no nodes forwards its entry
    // deps as exits, keeping cross-task edges transitive.

    /** Allocate a task scope depending on earlier scopes. */
    int newTask(const std::vector<int> &dep_tasks);
    /** Push/pop the ambient task around the synchronous task body. */
    void beginTask(int task);
    void endTask();
    /** Ambient task scope, or -1 outside any task body. */
    int currentTask() const;
    /** Entry deps of @p task: union of its dep tasks' exit nodes. */
    std::vector<int> taskDeps(int task) const;
    /** Node deps to give a node started right now: the ambient task's
     *  entry deps (empty outside a task). */
    std::vector<int> ambientDeps() const;
    /** Register @p node as an exit of @p task (-1 task ignored). */
    void addTaskExit(int task, int node);
    /** Task completed: forward entry deps if it recorded no exits. */
    void finishTask(int task);

    /**
     * Push a completion-chain scope: while open, `ambientDeps()`
     * returns @p deps and `currentTask()` returns @p task. Operations
     * wrap their `done` continuation in one of these so a follow-on
     * op constructed inside the callback (outside any task body)
     * still depends on this op's final nodes.
     */
    void beginChain(int task, std::vector<int> deps);
    void endChain();

    // --- recovery scopes -----------------------------------------

    /** Open a recovery scope rooted at @p dep_node (an abort marker);
     *  nodes recorded while open become `kRecovery` detours. */
    void beginRecovery(int dep_node);
    void endRecovery();
    bool inRecovery() const { return recoveryDepth_ > 0; }
    int recoveryDep() const { return recoveryDep_; }

  private:
    struct TaskScope
    {
        std::vector<int> depTasks;
        std::vector<int> exits;
    };

    /** One ambient frame: a task body or a completion chain. */
    struct Scope
    {
        int task = -1;
        bool hasDeps = false;    ///< chain scope with explicit deps
        std::vector<int> deps;
    };

    std::atomic<bool> enabled_{false};
    std::vector<SpanNode> nodes_;
    std::vector<TaskScope> tasks_;
    std::vector<Scope> ambient_; ///< stack of active scopes
    int recoveryDepth_ = 0;
    int recoveryDep_ = -1;
};

/** One segment of the extracted critical path. `node` is -1 for idle
 *  gaps (category `kBubble`) between consecutive path nodes. */
struct PathSegment
{
    int node = -1;
    SpanCategory category = SpanCategory::kBubble;
    Time begin = 0.0;
    Time end = 0.0;
};

/** Critical path plus exact per-category attribution. */
struct Attribution
{
    Time spanBegin = 0.0;
    Time spanEnd = 0.0;
    /** Contiguous partition of [spanBegin, spanEnd], in time order. */
    std::vector<PathSegment> segments;
    /** Node ids on the path, in time order (gaps excluded). */
    std::vector<int> pathNodes;
    /** Seconds per category, indexed by SpanCategory. */
    double byCategory[kSpanCategoryCount] = {0, 0, 0, 0, 0, 0, 0};

    double span() const { return spanEnd - spanBegin; }
    /** Sum of per-category seconds (== span() to float tolerance). */
    double total() const;
};

/**
 * Extract the critical path of @p nodes: starting from the node with
 * the latest end (ties: smallest id), walk backwards always following
 * the latest-ending dependency; the walked bodies plus the idle gaps
 * between them partition [min begin, max end] exactly, so the
 * attribution identity `total() == span()` holds by construction.
 * Empty input yields an empty attribution.
 */
Attribution extractCriticalPath(const std::vector<SpanNode> &nodes);

/**
 * Per-node slack: how far node i's finish can slip (downstream offsets
 * preserved) without growing the overall span. Nodes on the critical
 * path report 0. slack(i) = t1 - end(i) for sink nodes, else
 * min over successors s of slack(s) + max(0, begin(s) - end(i)).
 */
std::vector<double> computeSlack(const std::vector<SpanNode> &nodes);

/** Scale factors for what-if replay (1.0 = unchanged hardware). */
struct WhatIfScale
{
    double core = 1.0;
    double hbm = 1.0;
    double link = 1.0;
};

/**
 * Daydream-style replay: re-estimate the span after scaling resource
 * classes by the given factors, without re-simulating. Each node whose
 * binding resource belongs to a scaled class has its duration divided
 * by the factor, clamped below by every class's solo-service floor at
 * its own factor; begin offsets relative to dependencies are
 * preserved. Launch/sync/bubble latencies are treated as fixed.
 * @return the predicted span (max new end - min new begin).
 */
double whatIfReplay(const std::vector<SpanNode> &nodes,
                    const WhatIfScale &scale);

/** A near-critical span in an explain record. */
struct HotSpan
{
    std::string name;
    int chip = -1;
    double duration = 0.0;
    double slack = 0.0;
};

/** Machine-readable "why is this plan slow" record for one run. */
struct ExplainRecord
{
    double span = 0.0; ///< spanEnd - spanBegin of the recorded graph
    /** Critical-path seconds per category (sums to `span`). */
    double byCategory[kSpanCategoryCount] = {0, 0, 0, 0, 0, 0, 0};
    /** Up to 5 longest zero-slack spans (the bottleneck work). */
    std::vector<HotSpan> hotSpans;
    /** Predicted spans under 2x compute / 2x link bandwidth. */
    double whatifCompute2x = 0.0;
    double whatifLink2x = 0.0;
    int nodeCount = 0;
    /** |sum of categories - span|: the attribution identity residual. */
    double attributionError = 0.0;

    double categoryShare(SpanCategory cat) const;
};

/** Run extraction + slack + what-if on @p nodes. */
ExplainRecord explainGraph(const std::vector<SpanNode> &nodes);

/** Pseudo-pid of the `critical_path` track in Chrome traces. */
constexpr int kCriticalPathPid = 1000000;

/**
 * Highlight @p attr in a Chrome trace: a `critical_path` pseudo-
 * process with one span per path segment (named by category), plus
 * flow arrows chaining consecutive path nodes so Perfetto draws the
 * path across the per-chip lanes. No-op if @p trace is disabled.
 */
void annotateCriticalPath(TraceRecorder &trace,
                          const std::vector<SpanNode> &nodes,
                          const Attribution &attr);

} // namespace meshslice

#endif // MESHSLICE_SIM_CRITICAL_PATH_HPP_
