/**
 * @file
 * Hierarchical statistics registry for cluster-wide telemetry.
 *
 * Every simulated subsystem (the fluid resource network, the ring
 * collectives, the GeMM executors) attributes what it does to named
 * stats in one `StatsRegistry`: counters (monotone totals), gauges
 * (last-value), accumulators (count/sum/min/max over observations) and
 * log2-bucketed histograms. Names are '/'-separated paths — e.g.
 * `chip3/hbm/busy_s` or `collective/allgather/step_s` — and the JSON
 * dump nests along that hierarchy so the paper's per-resource
 * breakdowns (Fig 4 / Fig 10 / Fig 15) fall directly out of a run.
 *
 * A disabled registry (the default) reduces every mutation to one
 * relaxed atomic load, so instrumented hot paths stay free when nobody
 * is looking. Mutations are thread-safe: independent simulations run
 * concurrently under the PR-1 parallel autotuner and may share a
 * registry.
 */
#ifndef MESHSLICE_SIM_STATS_HPP_
#define MESHSLICE_SIM_STATS_HPP_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace meshslice {

/** What a registry entry measures. */
enum class StatKind
{
    kCounter,     ///< monotone total (`add`) or gauge (`set`)
    kAccumulator, ///< count/sum/min/max of `observe`d samples
    kHistogram,   ///< accumulator plus log2 bucket counts
};

const char *statKindName(StatKind kind);

/** Immutable copy of one entry, for dumps and tests. */
struct StatSnapshot
{
    std::string name;
    StatKind kind = StatKind::kCounter;
    double value = 0.0; ///< counter value / accumulator sum
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets; ///< histogram only

    double mean() const { return count ? value / static_cast<double>(count) : 0.0; }
};

/**
 * Registry of named stats with cheap disabled paths and JSON/table
 * dumps. See the file comment for the naming convention.
 */
class StatsRegistry
{
  public:
    void
    enable(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Counter: `name += v` (no-op while disabled). */
    void add(const std::string &name, double v);

    /** Gauge: `name = v` (no-op while disabled). */
    void set(const std::string &name, double v);

    /** Accumulator: record one sample (no-op while disabled). */
    void observe(const std::string &name, double v);

    /**
     * Histogram: record one sample into the accumulator stats plus a
     * log2 bucket (bucket i counts samples in [2^(i-1), 2^i), bucket 0
     * counts samples < 1).
     */
    void observeHistogram(const std::string &name, double v);

    /** Current value of a counter/gauge (0 if absent). */
    double counter(const std::string &name) const;

    /** Snapshot of one entry; `count == 0 && value == 0` if absent. */
    StatSnapshot snapshotOf(const std::string &name) const;

    /** All entries, sorted by name (deterministic). */
    std::vector<StatSnapshot> snapshot() const;

    size_t size() const;
    void clear();

    /**
     * Fold a snapshot (typically another registry's `snapshot()`) into
     * this registry, each entry under `prefix + its name`. Counters
     * add, accumulators/histograms combine sample statistics. Applied
     * regardless of `enabled()` — merging is an explicit aggregation
     * step, not hot-path instrumentation. Concurrent tuner runs merge
     * their per-run registries in serial index order through this, so
     * the aggregate is deterministic.
     */
    void merge(const std::vector<StatSnapshot> &snaps,
               const std::string &prefix = "");

    /**
     * Serialize as a JSON object nested along the '/' hierarchy.
     * Counters become numbers; accumulators/histograms become objects
     * with sum/count/min/max/mean (+buckets).
     */
    std::string toJson() const;

    /** `toJson()` into @p path (fatal on open failure). */
    void writeJson(const std::string &path) const;

    /** Human-readable dump, one aligned row per entry (util/table). */
    void printTable(std::ostream &os) const;

  private:
    struct Entry
    {
        StatKind kind = StatKind::kCounter;
        double value = 0.0;
        std::uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        std::vector<std::uint64_t> buckets;
    };

    Entry &entryLocked(const std::string &name, StatKind kind);
    void observeLocked(Entry &e, double v);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_; ///< ordered => stable dumps
};

} // namespace meshslice

#endif // MESHSLICE_SIM_STATS_HPP_
