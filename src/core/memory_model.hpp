/**
 * @file
 * Per-chip memory footprint of the distributed GeMM algorithms.
 *
 * TP's motivation is memory (Sec 2.1: "TP requires the least memory
 * footprint"), and slicing changes the peak: Collective 2D GeMM must
 * materialize the fully gathered input panels, while MeshSlice only
 * buffers 1/S of them per iteration (double-buffered for the software
 * pipeline). The autotuner uses this model to reject configurations
 * that exceed the chip's HBM capacity.
 */
#ifndef MESHSLICE_CORE_MEMORY_MODEL_HPP_
#define MESHSLICE_CORE_MEMORY_MODEL_HPP_

#include "core/spec.hpp"

namespace meshslice {

/** Breakdown of one chip's memory use during a distributed GeMM. */
struct MemoryFootprint
{
    /** Resident shards of all three matrices (A, B, C). */
    Bytes residentShards = 0;
    /** Gathered-panel / staging buffers (double-buffered). */
    Bytes gatherBuffers = 0;
    /** Partial-result staging (LS/RS reduce sources). */
    Bytes partialBuffers = 0;

    Bytes
    total() const
    {
        return residentShards + gatherBuffers + partialBuffers;
    }
};

/** Peak per-chip memory of @p algo executing @p spec. */
MemoryFootprint gemmMemoryFootprint(Algorithm algo,
                                    const Gemm2DSpec &spec);

/** Peak per-chip memory of a 1D baseline. */
MemoryFootprint gemmMemoryFootprint1D(const Gemm1DSpec &spec);

/** True if @p algo on @p spec fits the chip's HBM. */
bool fitsInMemory(const ChipConfig &cfg, Algorithm algo,
                  const Gemm2DSpec &spec);

} // namespace meshslice

#endif // MESHSLICE_CORE_MEMORY_MODEL_HPP_
