/**
 * @file
 * Per-chip memory footprint of the distributed GeMM algorithms.
 *
 * TP's motivation is memory (Sec 2.1: "TP requires the least memory
 * footprint"), and slicing changes the peak: Collective 2D GeMM must
 * materialize the fully gathered input panels, while MeshSlice only
 * buffers 1/S of them per iteration (double-buffered for the software
 * pipeline). The autotuner uses this model to reject configurations
 * that exceed the chip's HBM capacity.
 */
#ifndef MESHSLICE_CORE_MEMORY_MODEL_HPP_
#define MESHSLICE_CORE_MEMORY_MODEL_HPP_

#include "core/spec.hpp"

namespace meshslice {

/** Breakdown of one chip's memory use during a distributed GeMM. */
struct MemoryFootprint
{
    /** Resident shards of all three matrices (A, B, C). */
    Bytes residentShards = 0;
    /** Gathered-panel / staging buffers (double-buffered). */
    Bytes gatherBuffers = 0;
    /** Partial-result staging (LS/RS reduce sources). */
    Bytes partialBuffers = 0;

    Bytes
    total() const
    {
        return residentShards + gatherBuffers + partialBuffers;
    }
};

/** Peak per-chip memory of @p algo executing @p spec. */
MemoryFootprint gemmMemoryFootprint(Algorithm algo,
                                    const Gemm2DSpec &spec);

/** Peak per-chip memory of a 1D baseline. */
MemoryFootprint gemmMemoryFootprint1D(const Gemm1DSpec &spec);

/** True if @p algo on @p spec fits the chip's HBM. */
bool fitsInMemory(const ChipConfig &cfg, Algorithm algo,
                  const Gemm2DSpec &spec);

/**
 * Per-chip memory inputs of one pipeline stage. All quantities are
 * plain byte counts so this stays model-agnostic — the transformer-
 * specific activation estimates live in `src/pipeline/stage_model`.
 */
struct PipelineStageMemorySpec
{
    /** Resident state of the stage's model chunk(s): weights plus
     *  gradients plus optimizer moments, per chip. */
    Bytes residentBytes = 0;
    /** Full forward-activation stash of ONE micro-batch of the
     *  stage's chunk(s), per chip — what the backward consumes. */
    Bytes activationBytes = 0;
    /** Boundary (stage-input) activation of one micro-batch, per
     *  chip — what recompute must still keep, and what the send/recv
     *  buffers hold. */
    Bytes boundaryBytes = 0;
    /** Peak in-flight (forward-done, backward-pending) micro-batch x
     *  chunk count on this stage — `peakInFlight(program, stage)`.
     *  GPipe: M * V; 1F1B: min(M, P - stage). */
    int peakInFlight = 1;
    /** Recompute knob: stash only the boundary activation per
     *  in-flight micro-batch and re-run the forward inside the
     *  backward (which costs an extra forward of compute time). */
    bool recompute = false;
};

/** Breakdown of one chip's memory on one pipeline stage. */
struct PipelineMemoryFootprint
{
    /** Weights + gradients + optimizer state. */
    Bytes resident = 0;
    /** The activation stash: peakInFlight copies of either the full
     *  per-micro-batch activations or (recompute) just the boundary. */
    Bytes stash = 0;
    /** Double-buffered boundary send/recv staging. */
    Bytes boundaryBuffers = 0;

    Bytes
    total() const
    {
        return resident + stash + boundaryBuffers;
    }
};

/**
 * Peak per-chip memory of a pipeline stage: the stash is what
 * distinguishes schedules — GPipe holds every micro-batch in flight
 * while 1F1B caps the stash at the stage's pipeline depth. Fatal on
 * negative byte counts or a non-positive in-flight peak.
 */
PipelineMemoryFootprint
pipelineStageMemory(const PipelineStageMemorySpec &spec);

/** True if the stage's footprint fits the chip's HBM — infeasible
 *  schedules are rejected exactly like infeasible GeMMs. */
bool pipelineFitsInMemory(const ChipConfig &cfg,
                          const PipelineStageMemorySpec &spec);

} // namespace meshslice

#endif // MESHSLICE_CORE_MEMORY_MODEL_HPP_
