#include "core/spec.hpp"

#include <numeric>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace meshslice {

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::kOS:
        return "OS";
      case Dataflow::kLS:
        return "LS";
      case Dataflow::kRS:
        return "RS";
    }
    return "?";
}

const char *
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::kMeshSlice:
        return "MeshSlice";
      case Algorithm::kCollective:
        return "Collective";
      case Algorithm::kWang:
        return "Wang";
      case Algorithm::kSumma:
        return "SUMMA";
      case Algorithm::kCannon:
        return "Cannon";
      case Algorithm::kOneDTP:
        return "1DTP";
      case Algorithm::kFsdp:
        return "FSDP";
    }
    return "?";
}

std::vector<Algorithm>
all2DAlgorithms()
{
    return {Algorithm::kMeshSlice, Algorithm::kCollective, Algorithm::kWang,
            Algorithm::kSumma, Algorithm::kCannon};
}

std::vector<Algorithm>
allAlgorithms()
{
    return {Algorithm::kMeshSlice, Algorithm::kCollective, Algorithm::kWang,
            Algorithm::kSumma, Algorithm::kCannon, Algorithm::kOneDTP,
            Algorithm::kFsdp};
}

std::string
Gemm2DSpec::str() const
{
    return strprintf("%s[M=%lld,K=%lld,N=%lld]@%dx%d,S=%d",
                     dataflowName(dataflow), static_cast<long long>(m),
                     static_cast<long long>(k), static_cast<long long>(n),
                     rows, cols, sliceCount);
}

FlowSide
horizontalFlow(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    switch (spec.dataflow) {
      case Dataflow::kOS:
      case Dataflow::kRS:
        return FlowSide{spec.m * spec.k * e, CollKind::kAllGather};
      case Dataflow::kLS:
        return FlowSide{spec.m * spec.n * e, CollKind::kReduceScatter};
    }
    panic("horizontalFlow: bad dataflow");
}

FlowSide
verticalFlow(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    switch (spec.dataflow) {
      case Dataflow::kOS:
      case Dataflow::kLS:
        return FlowSide{spec.k * spec.n * e, CollKind::kAllGather};
      case Dataflow::kRS:
        return FlowSide{spec.m * spec.n * e, CollKind::kReduceScatter};
    }
    panic("verticalFlow: bad dataflow");
}

Bytes
stationaryShardBytes(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    const Bytes chips = spec.rows * static_cast<Bytes>(spec.cols);
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return spec.m * spec.n * e / chips;
      case Dataflow::kLS:
        return spec.m * spec.k * e / chips;
      case Dataflow::kRS:
        return spec.k * spec.n * e / chips;
    }
    panic("stationaryShardBytes: bad dataflow");
}

GemmWork
localSliceWork(const Gemm2DSpec &spec)
{
    const std::int64_t s = spec.sliceCount;
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return GemmWork{spec.m / spec.rows, spec.k / s, spec.n / spec.cols};
      case Dataflow::kLS:
        return GemmWork{spec.m / spec.rows, spec.k / spec.cols,
                        spec.n / s};
      case Dataflow::kRS:
        return GemmWork{spec.m / s, spec.k / spec.rows, spec.n / spec.cols};
    }
    panic("localSliceWork: bad dataflow");
}

std::int64_t
slicedDim(const Gemm2DSpec &spec)
{
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return spec.k;
      case Dataflow::kLS:
        return spec.n;
      case Dataflow::kRS:
        return spec.m;
    }
    panic("slicedDim: bad dataflow");
}

std::vector<int>
validSliceCounts(const ChipConfig &cfg, const Gemm2DSpec &spec, int max_s)
{
    const std::int64_t dim = slicedDim(spec);
    // The sliced matrix shards have extent dim/rows (resp. dim/cols) in
    // the sliced dimension; S * B must divide both per-chip extents.
    const std::int64_t per_row = dim / spec.rows;
    const std::int64_t per_col = dim / spec.cols;
    const std::int64_t g = std::gcd(per_row, per_col) / cfg.memBlockCols;
    std::vector<int> out;
    if (g <= 0)
        return {1};
    for (std::int64_t d : divisorsOf(g)) {
        if (d > max_s)
            break;
        out.push_back(static_cast<int>(d));
    }
    if (out.empty())
        out.push_back(1);
    return out;
}

} // namespace meshslice
