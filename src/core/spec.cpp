#include "core/spec.hpp"

#include <numeric>

#include "util/logging.hpp"
#include "util/math.hpp"

namespace meshslice {

const char *
dataflowName(Dataflow df)
{
    switch (df) {
      case Dataflow::kOS:
        return "OS";
      case Dataflow::kLS:
        return "LS";
      case Dataflow::kRS:
        return "RS";
    }
    return "?";
}

const char *
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::kMeshSlice:
        return "MeshSlice";
      case Algorithm::kCollective:
        return "Collective";
      case Algorithm::kWang:
        return "Wang";
      case Algorithm::kSumma:
        return "SUMMA";
      case Algorithm::kCannon:
        return "Cannon";
      case Algorithm::kOneSided:
        return "OneSided";
      case Algorithm::kOneDTP:
        return "1DTP";
      case Algorithm::kFsdp:
        return "FSDP";
    }
    return "?";
}

Dataflow
dataflowFromName(std::string_view name, const std::string &context)
{
    for (Dataflow df : {Dataflow::kOS, Dataflow::kLS, Dataflow::kRS})
        if (name == dataflowName(df))
            return df;
    fatal("%s: unknown dataflow \"%.*s\" (want OS/LS/RS)",
          context.c_str(), static_cast<int>(name.size()), name.data());
}

Algorithm
algorithmFromName(std::string_view name, const std::string &context)
{
    for (Algorithm algo : allAlgorithms())
        if (name == algorithmName(algo))
            return algo;
    fatal("%s: unknown algorithm \"%.*s\"", context.c_str(),
          static_cast<int>(name.size()), name.data());
}

std::vector<Algorithm>
all2DAlgorithms()
{
    return {Algorithm::kMeshSlice, Algorithm::kCollective, Algorithm::kWang,
            Algorithm::kSumma, Algorithm::kCannon, Algorithm::kOneSided};
}

std::vector<Algorithm>
allAlgorithms()
{
    return {Algorithm::kMeshSlice, Algorithm::kCollective, Algorithm::kWang,
            Algorithm::kSumma, Algorithm::kCannon, Algorithm::kOneSided,
            Algorithm::kOneDTP, Algorithm::kFsdp};
}

std::string
Gemm2DSpec::str() const
{
    return strprintf("%s[M=%lld,K=%lld,N=%lld]@%dx%d,S=%d",
                     dataflowName(dataflow), static_cast<long long>(m),
                     static_cast<long long>(k), static_cast<long long>(n),
                     rows, cols, sliceCount);
}

FlowSide
horizontalFlow(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    switch (spec.dataflow) {
      case Dataflow::kOS:
      case Dataflow::kRS:
        return FlowSide{spec.m * spec.k * e, CollKind::kAllGather};
      case Dataflow::kLS:
        return FlowSide{spec.m * spec.n * e, CollKind::kReduceScatter};
    }
    panic("horizontalFlow: bad dataflow");
}

FlowSide
verticalFlow(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    switch (spec.dataflow) {
      case Dataflow::kOS:
      case Dataflow::kLS:
        return FlowSide{spec.k * spec.n * e, CollKind::kAllGather};
      case Dataflow::kRS:
        return FlowSide{spec.m * spec.n * e, CollKind::kReduceScatter};
    }
    panic("verticalFlow: bad dataflow");
}

Bytes
stationaryShardBytes(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    const Bytes chips = spec.rows * static_cast<Bytes>(spec.cols);
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return spec.m * spec.n * e / chips;
      case Dataflow::kLS:
        return spec.m * spec.k * e / chips;
      case Dataflow::kRS:
        return spec.k * spec.n * e / chips;
    }
    panic("stationaryShardBytes: bad dataflow");
}

GemmWork
localSliceWork(const Gemm2DSpec &spec)
{
    const std::int64_t s = spec.sliceCount;
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return GemmWork{spec.m / spec.rows, spec.k / s, spec.n / spec.cols};
      case Dataflow::kLS:
        return GemmWork{spec.m / spec.rows, spec.k / spec.cols,
                        spec.n / s};
      case Dataflow::kRS:
        return GemmWork{spec.m / s, spec.k / spec.rows, spec.n / spec.cols};
    }
    panic("localSliceWork: bad dataflow");
}

std::int64_t
slicedDim(const Gemm2DSpec &spec)
{
    switch (spec.dataflow) {
      case Dataflow::kOS:
        return spec.k;
      case Dataflow::kLS:
        return spec.n;
      case Dataflow::kRS:
        return spec.m;
    }
    panic("slicedDim: bad dataflow");
}

namespace {

void
requireDivides(const char *what, std::int64_t dim, std::int64_t by,
               const char *by_name, const std::string &spec)
{
    if (by > 0 && dim % by != 0)
        fatal("Gemm2DSpec %s: %s=%lld is not divisible by %s=%lld "
              "(the partition would truncate work)",
              spec.c_str(), what, static_cast<long long>(dim), by_name,
              static_cast<long long>(by));
}

} // namespace

void
validateSpec(const Gemm2DSpec &spec)
{
    const std::string s = spec.str();
    if (spec.m <= 0 || spec.k <= 0 || spec.n <= 0)
        fatal("Gemm2DSpec %s: dimensions must be positive", s.c_str());
    if (spec.rows < 1 || spec.cols < 1)
        fatal("Gemm2DSpec %s: mesh shape %dx%d must be at least 1x1",
              s.c_str(), spec.rows, spec.cols);
    if (spec.sliceCount < 1)
        fatal("Gemm2DSpec %s: slice count %d must be >= 1", s.c_str(),
              spec.sliceCount);
    if (spec.bytesPerElement <= 0)
        fatal("Gemm2DSpec %s: bytesPerElement %d must be positive",
              s.c_str(), spec.bytesPerElement);
    // Divisibility of the localSliceWork partition, per Fig 1 dataflow.
    switch (spec.dataflow) {
      case Dataflow::kOS:
        requireDivides("M", spec.m, spec.rows, "rows", s);
        requireDivides("N", spec.n, spec.cols, "cols", s);
        requireDivides("K", spec.k, spec.sliceCount, "sliceCount", s);
        break;
      case Dataflow::kLS:
        requireDivides("M", spec.m, spec.rows, "rows", s);
        requireDivides("K", spec.k, spec.cols, "cols", s);
        requireDivides("N", spec.n, spec.sliceCount, "sliceCount", s);
        break;
      case Dataflow::kRS:
        requireDivides("M", spec.m, spec.sliceCount, "sliceCount", s);
        requireDivides("K", spec.k, spec.rows, "rows", s);
        requireDivides("N", spec.n, spec.cols, "cols", s);
        break;
    }
}

void
validateSpec(const Gemm1DSpec &spec)
{
    if (spec.m <= 0 || spec.k <= 0 || spec.n <= 0)
        fatal("Gemm1DSpec [M=%lld,K=%lld,N=%lld]: dimensions must be "
              "positive",
              static_cast<long long>(spec.m),
              static_cast<long long>(spec.k),
              static_cast<long long>(spec.n));
    if (spec.chips < 1)
        fatal("Gemm1DSpec: chip count %d must be >= 1", spec.chips);
    if (spec.sliceCount < 1)
        fatal("Gemm1DSpec: slice count %d must be >= 1", spec.sliceCount);
    if (spec.bytesPerElement <= 0)
        fatal("Gemm1DSpec: bytesPerElement %d must be positive",
              spec.bytesPerElement);
    if (spec.commBytes < 0)
        fatal("Gemm1DSpec: commBytes %lld must be non-negative",
              static_cast<long long>(spec.commBytes));
    if (spec.local.m <= 0 || spec.local.k <= 0 || spec.local.n <= 0)
        fatal("Gemm1DSpec: local GeMM work [%lld,%lld,%lld] must be "
              "positive (was the builder skipped?)",
              static_cast<long long>(spec.local.m),
              static_cast<long long>(spec.local.k),
              static_cast<long long>(spec.local.n));
}

std::vector<int>
validSliceCounts(const ChipConfig &cfg, const Gemm2DSpec &spec, int max_s)
{
    const std::int64_t dim = slicedDim(spec);
    // The sliced matrix shards have extent dim/rows (resp. dim/cols) in
    // the sliced dimension; S * B must divide both per-chip extents.
    const std::int64_t per_row = dim / spec.rows;
    const std::int64_t per_col = dim / spec.cols;
    const std::int64_t g = std::gcd(per_row, per_col) / cfg.memBlockCols;
    std::vector<int> out;
    if (g <= 0)
        return {1};
    for (std::int64_t d : divisorsOf(g)) {
        if (d > max_s)
            break;
        out.push_back(static_cast<int>(d));
    }
    if (out.empty())
        out.push_back(1);
    return out;
}

} // namespace meshslice
