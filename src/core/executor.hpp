/**
 * @file
 * Timing executors for the distributed GeMM algorithms (Sec 4.2/4.3).
 *
 * Each algorithm is expressed as a task graph of mesh-wide operations
 * (collectives, shifts, local GeMMs) with the dependency structure of
 * its software pipeline; the fluid cluster simulator then produces the
 * wall-clock time and the launch/transfer/sync breakdown (Fig 10):
 *
 *  - MeshSlice: S-way sliced partial AG/RdS in both directions,
 *    comm(s) chained per direction, compute(s) after its comms.
 *  - Collective: MeshSlice with S = 1 (no overlap possible).
 *  - Wang: the heavier direction's collective decomposed into S
 *    SendRecv rotations overlapped with computes; the other direction
 *    is a blocking collective prologue/epilogue.
 *  - SUMMA: S unrolled iterations of pipelined bcast/reduce.
 *  - Cannon: square mesh only; skew prologue then P systolic SendRecv
 *    iterations.
 *  - OneSided: no collectives at all — per (tile, slice), one
 *    launch-batched set of RDMA gets (`net/onesided`) pulls the A/B
 *    slices from the row/column peers, then the tile's compute; the
 *    only dependencies are within each tile's own chain, so a
 *    straggling or killed source chip delays exactly the tiles that
 *    read from it (gets from a corpse retry over a detour, gets into
 *    it are written off, its compute completes vacuously).
 *  - 1DTP / FSDP: a ring with Wang-style overlapped shifts.
 *
 * When `ChipConfig::allowCollectiveOverlap` is false (the real-TPUv4
 * mode of Sec 5.3), AG/RdS/bcast/reduce-based schedules serialize
 * communication and computation; SendRecv-based overlap stays enabled,
 * matching the hardware capability the paper describes.
 */
#ifndef MESHSLICE_CORE_EXECUTOR_HPP_
#define MESHSLICE_CORE_EXECUTOR_HPP_

#include "core/spec.hpp"
#include "core/taskgraph.hpp"
#include "net/topology.hpp"

namespace meshslice {

/**
 * Runs 2D distributed GeMM algorithms on a torus mesh, one at a time.
 * The underlying cluster's simulated clock advances monotonically
 * across runs; results report per-run durations.
 */
class GemmExecutor
{
  public:
    explicit GemmExecutor(TorusMesh &mesh) : mesh_(mesh) {}

    /**
     * Simulate @p algo executing @p spec (blocking until the simulated
     * schedule drains). @p algo must be a 2D algorithm; `kCollective`
     * ignores `spec.sliceCount`, Cannon requires a square mesh and uses
     * `mesh rows` iterations, `kOneSided` uses `spec.sliceCount` as the
     * per-tile get/compute chain depth.
     */
    GemmRunResult run(Algorithm algo, const Gemm2DSpec &spec);

  private:
    TorusMesh &mesh_;
};

/**
 * Append @p algo's software-pipelined schedule for @p spec to an
 * existing task graph on @p mesh (which may be one layer of a 3D
 * cluster), accumulating communication stats and FLOPs into @p accum.
 * Used to compose multi-mesh schedules (e.g. MeshSlice+DP, Sec 7).
 */
void buildGemmSchedule(TaskGraph &graph, TorusMesh &mesh, Algorithm algo,
                       const Gemm2DSpec &spec, GemmRunResult *accum);

/** Simulate a 1D baseline (`kOneDTP` semantics == `kFsdp`: the spec's
 *  comm matrix and local work differ, the schedule is the same).
 *  @p algo only labels the telemetry (per-algorithm overlap metrics in
 *  the cluster's stats registry). */
GemmRunResult runGemm1D(RingNetwork &net, const Gemm1DSpec &spec,
                        Algorithm algo = Algorithm::kOneDTP);

/**
 * The SUMMA packet count minimizing the pipelined broadcast time of
 * @p payload bytes over @p hops hops (closed-form, clamped to [1,64]).
 */
int optimalPacketCount(const ChipConfig &cfg, int hops, Bytes payload);

} // namespace meshslice

#endif // MESHSLICE_CORE_EXECUTOR_HPP_
