#include "core/taskgraph.hpp"

#include "util/logging.hpp"

namespace meshslice {

int
TaskGraph::addTask(TaskFn fn, std::vector<int> deps)
{
    if (started_)
        panic("TaskGraph: cannot add tasks after start");
    const int id = static_cast<int>(tasks_.size());
    Task task;
    task.fn = std::move(fn);
    for (int dep : deps) {
        if (dep < 0 || dep >= id)
            panic("TaskGraph: bad dependency %d for task %d", dep, id);
        tasks_[static_cast<size_t>(dep)].dependents.push_back(id);
        ++task.blockers;
    }
    if (prof_) {
        std::vector<int> dep_scopes;
        dep_scopes.reserve(deps.size());
        for (int dep : deps)
            dep_scopes.push_back(tasks_[static_cast<size_t>(dep)].profId);
        task.profId = prof_->newTask(dep_scopes);
    }
    tasks_.push_back(std::move(task));
    return id;
}

void
TaskGraph::start(std::function<void()> all_done)
{
    if (started_)
        panic("TaskGraph: started twice");
    started_ = true;
    allDone_ = std::move(all_done);
    remaining_ = static_cast<int>(tasks_.size());
    if (remaining_ == 0) {
        sim_.scheduleAfter(0.0, allDone_);
        return;
    }
    for (size_t id = 0; id < tasks_.size(); ++id)
        if (tasks_[id].blockers == 0)
            launchTask(static_cast<int>(id));
}

void
TaskGraph::launchTask(int id)
{
    Task &task = tasks_[static_cast<size_t>(id)];
    if (task.launched)
        return; // a synchronously-completing dependency already did it
    task.launched = true;
    // The synchronous part of the body runs with the task's profiler
    // scope ambient; async completions capture the scope themselves.
    if (prof_)
        prof_->beginTask(task.profId);
    task.fn([this, id] { completeTask(id); });
    if (prof_)
        prof_->endTask();
}

void
TaskGraph::completeTask(int id)
{
    Task &task = tasks_[static_cast<size_t>(id)];
    if (task.completed)
        panic("TaskGraph: task %d completed twice", id);
    task.completed = true;
    if (prof_)
        prof_->finishTask(task.profId);
    for (int dep : task.dependents) {
        Task &next = tasks_[static_cast<size_t>(dep)];
        if (--next.blockers == 0)
            launchTask(dep);
    }
    if (--remaining_ == 0)
        allDone_();
}

} // namespace meshslice
