/**
 * @file
 * Fail-stop recovery modeling for long training runs.
 *
 * PR 3 made the simulated cluster survive *degradation*; this layer
 * models surviving *permanent* failures, which dominate at the scales
 * MeshSlice targets (a 512-chip torus has a job-level MTBF far shorter
 * than a training run). Three pieces:
 *
 *  - an analytical **goodput model**: a training job checkpoints every
 *    τ seconds of useful work at cost C (HBM→host DMA), fails as a
 *    Poisson process with job MTBF M, and pays downtime D (detection +
 *    restart + elastic re-shard) plus half a segment of lost work per
 *    failure. Goodput g(τ) = τ / E[wall per segment];
 *  - the **Young–Daly optimal checkpoint interval** for that model in
 *    closed form, τ* = sqrt(C² + 2C(M + D)) — reducing to the classic
 *    sqrt(2CM) when C, D ≪ M;
 *  - a **simulated recovery transaction** (`runCollectiveRecovery`):
 *    one recoverable collective on a fresh cluster under a kill
 *    scenario, exercising the full detect → abort → rebuild → retry
 *    machinery and reporting deterministic event/time/stats figures
 *    (the bit-identical-replay contract extends to recovery runs).
 */
#ifndef MESHSLICE_CORE_RECOVERY_STUDY_HPP_
#define MESHSLICE_CORE_RECOVERY_STUDY_HPP_

#include <cstdint>
#include <string>

#include "hw/chip_config.hpp"
#include "net/collectives.hpp"
#include "sim/fault.hpp"

namespace meshslice {

/** Parameters of the analytical checkpoint/restart goodput model. */
struct GoodputModel
{
    /** Checkpoint write cost C (seconds), > 0. */
    Time checkpointWrite = 0.0;
    /** Job-level mean time between failures M (seconds), > 0. */
    Time mtbf = 0.0;
    /** Per-failure downtime D: detection + restart + re-shard. */
    Time downtime = 0.0;
};

/** Checkpoint write time: every chip drains its state to host storage
 *  in parallel, limited by `cfg.hostDmaBandwidth`. */
Time checkpointWriteTime(const ChipConfig &cfg, Bytes bytes_per_chip);

/**
 * Goodput at checkpoint interval @p tau (> 0): useful seconds per
 * expected wall-clock second,
 *
 *   g(τ) = τ / [ (τ+C) · (1 + (D + (τ+C)/2) / M) ]
 *
 * — each segment of τ useful seconds costs τ+C wall, suffers
 * (τ+C)/M failures in expectation, and each failure costs D plus on
 * average half the segment redone.
 */
double goodputAt(const GoodputModel &m, Time tau);

/**
 * The interval maximizing `goodputAt`: τ* = sqrt(C² + 2C(M + D)),
 * the Young–Daly optimum generalized to non-negligible C and D
 * (obtained by solving dg/dτ = 0 exactly for the model above).
 */
Time youngDalyInterval(const GoodputModel &m);

/** Ingredients of one training run's recovery economics. */
struct TrainingRunModel
{
    /** Checkpoint state per chip (weights + optimizer shards). */
    Bytes checkpointBytesPerChip = 0;
    /** Per-chip MTBF; the job fails when any chip does. */
    Time chipMtbf = 0.0;
    /** Number of chips in the mesh. */
    int chips = 1;
    /** Failure-detection latency (heartbeat + consensus). */
    Time detectionLatency = 0.5;
    /** Job restart overhead (scheduler + binary + checkpoint read). */
    Time restartTime = 60.0;
    /** Elastic re-shard time onto the survivor mesh
     *  (`reshardTime(cfg, planReshard(...))`). */
    Time reshardTime = 0.0;
};

/** Outcome of composing a `TrainingRunModel` into goodput figures. */
struct TrainingGoodput
{
    /** C: checkpoint write cost. */
    Time checkpointWrite = 0.0;
    /** M: job MTBF = chipMtbf / chips (independent exponentials). */
    Time jobMtbf = 0.0;
    /** D: detection + restart + re-shard. */
    Time downtime = 0.0;
    /** τ*: the Young–Daly optimal checkpoint interval. */
    Time optimalInterval = 0.0;
    /** g(τ*): fraction of wall-clock doing useful work. */
    double goodput = 0.0;
};

/** Compose checkpoint cost, failure process and recovery downtime
 *  into the optimal-interval goodput of one training configuration. */
TrainingGoodput evaluateTrainingRun(const ChipConfig &cfg,
                                    const TrainingRunModel &run);

/** Deterministic record of one simulated recovery transaction. */
struct CollectiveRecoveryResult
{
    /** Final simulated time after the queue drained. */
    Time finalTime = 0.0;
    /** Events executed — part of the bit-identity contract. */
    std::uint64_t eventsProcessed = 0;
    /** Stats of the attempt that completed (the retry's, if any). */
    CommStats stats;
    /** Launch-to-completion wall clock of the whole transaction. */
    Time totalTime = 0.0;
    /** True when the collective aborted once and re-ran on a ring
     *  rebuilt around the dead chip. */
    bool retried = false;
    /** The error that triggered the retry (valid iff `retried`). */
    CollectiveError error;
    /** Full stats-registry JSON (collective + resource accounting). */
    std::string statsJson;
};

/**
 * Run one recoverable shard collective on a fresh `rows x cols` torus
 * under @p scenario (nullptr = fault-free: identical code paths, so an
 * empty trace is bit-identical to no injector at all). The collective
 * runs on `rowRing(index)` / `colRing(index)`; a kill in its path
 * exercises timeout → abort → ring rebuild → retry.
 */
CollectiveRecoveryResult runCollectiveRecovery(
    const ChipConfig &cfg, int rows, int cols, Bytes shard_bytes,
    const FaultScenario *scenario,
    RingCollectiveKind kind = RingCollectiveKind::kAllGather,
    bool row_ring = true, int index = 0);

/**
 * Closed-form inputs of `predictElasticWall`: per-phase cost estimates
 * for the elastic runtime's state machine (step loop + checkpoint rule
 * + single-kill recovery transaction).
 */
struct ElasticPredictionInput
{
    int steps = 0;                  ///< training steps to commit
    Time stepTime = 0.0;            ///< est. step time, full mesh
    Time survivorStepTime = 0.0;    ///< est. step time, survivor mesh
    Time checkpointCost = 0.0;      ///< est. checkpoint span, full mesh
    Time survivorCheckpointCost = 0.0; ///< est. span, survivor mesh
    /** Checkpoint interval τ: a checkpoint is emitted after the step
     *  that pushes accumulated useful time since the last one past τ. */
    Time checkpointInterval = 0.0;
    /** Global simulated time of the kill; negative = fault-free. */
    Time killTime = -1.0;
    Time detectionLatency = 0.0;
    /** Re-plan + restart overhead charged once per recovery. */
    Time replanTime = 0.0;
    /** Estimated recovery re-shard span (`reshardTime` of the plan). */
    Time reshardTime = 0.0;
};

/** Analytic mirror of one elastic run. */
struct ElasticWallPrediction
{
    Time wall = 0.0;       ///< predicted end-to-end wall clock
    Time usefulTime = 0.0; ///< steps x full-mesh step time (the ideal)
    double goodput = 0.0;  ///< usefulTime / wall
    int checkpoints = 0;   ///< checkpoints emitted (incl. post-fault)
    int redoneSteps = 0;   ///< steps rolled back and re-executed
    bool recovered = false; ///< the kill fired inside the run
};

/**
 * Deterministic analytic prediction of one elastic run's wall clock:
 * walks the runtime's exact state machine (step, checkpoint-after-step
 * at interval τ, single-kill detect → re-plan → re-shard → rollback →
 * resume) with closed-form per-phase costs instead of simulation. The
 * measured/predicted ratio is the model error band the elastic bench
 * reports; `evaluateTrainingRun` remains the expectation over the
 * failure process, this is the prediction for one concrete scenario.
 */
ElasticWallPrediction predictElasticWall(const ElasticPredictionInput &in);

} // namespace meshslice

#endif // MESHSLICE_CORE_RECOVERY_STUDY_HPP_
