#include "core/reshard_exec.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/join.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/**
 * Shared body of `runReshard` (dead_chip < 0) and `runRecoveryReshard`
 * (dead_chip >= 0: moves sourced at the corpse stream from the shared
 * `ckpt.restore` resource instead of the corpse's NIC + HBM).
 */
void
runReshardImpl(Cluster &cluster, const ReshardPlan &plan, int dead_chip,
               Rate restore_bandwidth, std::function<void(Time)> done)
{
    Cluster *cl = &cluster;
    Simulator &sim = cluster.sim();
    const ChipConfig &cfg = cluster.config();
    SpanRecorder &prof = cluster.profiler();

    for (const ReshardMove &mv : plan.moves) {
        if (mv.srcChip < 0 || mv.srcChip >= cluster.numChips() ||
            mv.dstChip < 0 || mv.dstChip >= cluster.numChips())
            panic("runReshard: move %d->%d outside the %d-chip cluster",
                  mv.srcChip, mv.dstChip, cluster.numChips());
    }

    struct State
    {
        std::function<void(Time)> done;
        Time begin = 0.0;
        Time xferBegin = 0.0;
        bool profiling = false;
        bool recovery = false;
        int profTask = -1;
        int launchNode = -1;
        std::vector<int> moveNodes;
    };
    auto st = std::make_shared<State>();
    st->done = std::move(done);
    st->begin = sim.now();
    st->profiling = prof.enabled();

    // Snapshot the ambient task scope now: everything below runs in
    // event callbacks, outside the synchronous task body. A recovery
    // scope open at launch makes the whole re-shard a detour.
    std::vector<int> prof_deps;
    if (st->profiling) {
        st->profTask = prof.currentTask();
        prof_deps = prof.ambientDeps();
        st->recovery = prof.inRecovery();
        if (st->recovery) {
            const int rec = prof.recoveryDep();
            if (rec >= 0 &&
                std::find(prof_deps.begin(), prof_deps.end(), rec) ==
                    prof_deps.end())
                prof_deps.push_back(rec);
        }
    }

    sim.scheduleAfter(cfg.launchOverhead, [cl, st, plan, dead_chip,
                                           restore_bandwidth,
                                           prof_deps =
                                               std::move(prof_deps)]() mutable {
        Simulator &sim = cl->sim();
        SpanRecorder &prof = cl->profiler();
        const SpanCategory xfer_cat = st->recovery ? SpanCategory::kRecovery
                                                   : SpanCategory::kComm;
        if (st->profiling)
            st->launchNode = prof.addNode(
                "reshard launch",
                st->recovery ? SpanCategory::kRecovery
                             : SpanCategory::kLaunch,
                st->begin, sim.now(), std::move(prof_deps),
                plan.moves.empty() ? -1 : plan.moves.front().dstChip);
        st->xferBegin = sim.now();

        // Per-chip NIC resources, created lazily for the chips this
        // plan actually touches. Ingress and egress are independent
        // directions, mirroring max(maxChipIngress, maxChipEgress) in
        // the analytic model. The "ici." prefix keeps them in the link
        // resource class for what-if scaling.
        const Rate nic = reshardChipRate(cl->config());
        auto nics = std::make_shared<std::unordered_map<int, ResourceId>>();
        auto nic_of = [cl, nics, nic](int chip, bool in) {
            const int key = chip * 2 + (in ? 1 : 0);
            auto it = nics->find(key);
            if (it == nics->end())
                it = nics->emplace(key, cl->net().addResource(
                                            strprintf("ici.rs.%s.c%d",
                                                      in ? "in" : "out",
                                                      chip),
                                            nic))
                         .first;
            return it->second;
        };

        // The +1 guard signal lets an all-local plan (no moves) still
        // reach the barrier.
        Join *join = Join::create(
            static_cast<int>(plan.moves.size()) + 1, [cl, st] {
                const Time xfer_end = cl->sim().now();
                cl->sim().scheduleAfter(
                    cl->config().syncLatency, [cl, st, xfer_end] {
                        const Time now = cl->sim().now();
                        if (!st->profiling) {
                            st->done(now - st->begin);
                            return;
                        }
                        SpanRecorder &prof = cl->profiler();
                        std::vector<int> deps = st->moveNodes;
                        if (deps.empty() && st->launchNode >= 0)
                            deps.push_back(st->launchNode);
                        const int sync = prof.addNode(
                            "reshard sync",
                            st->recovery ? SpanCategory::kRecovery
                                         : SpanCategory::kSync,
                            xfer_end, now, std::move(deps), -1);
                        prof.addTaskExit(st->profTask, sync);
                        prof.beginChain(st->profTask, {sync});
                        st->done(now - st->begin);
                        prof.endChain();
                    });
            });
        // Restore path of the recovery variant: one shared resource
        // standing in for the checkpoint target's egress (host DMA /
        // DCN), registered only when a corpse-sourced move exists so
        // the plain re-shard's resource census is unchanged.
        ResourceId restore_res = -1;
        auto restore_of = [cl, &restore_res, restore_bandwidth]() {
            if (restore_res < 0)
                restore_res = cl->net().addResource("ckpt.restore",
                                                    restore_bandwidth);
            return restore_res;
        };
        for (const ReshardMove &mv : plan.moves) {
            cl->noteCommBytes(mv.bytes);
            const bool from_ckpt = mv.srcChip == dead_chip && dead_chip >= 0;
            auto flow_done = [cl, st, join, xfer_cat, from_ckpt,
                              src = mv.srcChip, dst = mv.dstChip] {
                if (st->profiling) {
                    SpanRecorder &prof = cl->profiler();
                    std::vector<int> deps;
                    if (st->launchNode >= 0)
                        deps.push_back(st->launchNode);
                    const int node = prof.addNode(
                        from_ckpt
                            ? strprintf("restore %d->%d", src, dst)
                            : strprintf("reshard %d->%d", src, dst),
                        xfer_cat, st->xferBegin, cl->sim().now(),
                        std::move(deps), dst);
                    prof.setNodeResource(node,
                                         cl->net().lastFinishedFlow());
                    st->moveNodes.push_back(node);
                }
                join->signal();
            };
            std::vector<Demand> demands;
            if (from_ckpt) {
                demands = {Demand{restore_of(), 1.0},
                           Demand{nic_of(mv.dstChip, true), 1.0},
                           Demand{cl->hbmOf(mv.dstChip), 1.0}};
            } else {
                demands = {Demand{nic_of(mv.srcChip, false), 1.0},
                           Demand{nic_of(mv.dstChip, true), 1.0},
                           Demand{cl->hbmOf(mv.srcChip), 1.0},
                           Demand{cl->hbmOf(mv.dstChip), 1.0}};
            }
            cl->net().startFlow(static_cast<double>(mv.bytes),
                                std::move(demands), std::move(flow_done));
        }
        join->signal();
    });
}

} // namespace

void
runReshard(Cluster &cluster, const ReshardPlan &plan,
           std::function<void(Time)> done)
{
    runReshardImpl(cluster, plan, -1, 0.0, std::move(done));
}

void
runRecoveryReshard(Cluster &cluster, const ReshardPlan &plan, int dead_chip,
                   Rate restore_bandwidth, std::function<void(Time)> done)
{
    if (dead_chip < 0 || dead_chip >= cluster.numChips())
        panic("runRecoveryReshard: dead chip %d outside the %d-chip "
              "cluster", dead_chip, cluster.numChips());
    if (!(restore_bandwidth > 0.0))
        panic("runRecoveryReshard: restore bandwidth must be positive "
              "(got %g)", restore_bandwidth);
    runReshardImpl(cluster, plan, dead_chip, restore_bandwidth,
                   std::move(done));
}

void
runCheckpoint(Cluster &cluster, const CheckpointSpec &spec,
              std::function<void(Time)> done)
{
    if (spec.bytesPerChip <= 0)
        panic("runCheckpoint: bytesPerChip must be positive (got %lld)",
              static_cast<long long>(spec.bytesPerChip));
    if (!(spec.targetBandwidth > 0.0))
        panic("runCheckpoint: target bandwidth must be positive (got %g)",
              spec.targetBandwidth);

    Cluster *cl = &cluster;
    Simulator &sim = cluster.sim();
    const ChipConfig &cfg = cluster.config();
    SpanRecorder &prof = cluster.profiler();

    struct State
    {
        std::function<void(Time)> done;
        Time begin = 0.0;
        Time xferBegin = 0.0;
        bool profiling = false;
        int profTask = -1;
        int launchNode = -1;
        std::vector<int> writeNodes;
    };
    auto st = std::make_shared<State>();
    st->done = std::move(done);
    st->begin = sim.now();
    st->profiling = prof.enabled();

    std::vector<int> prof_deps;
    if (st->profiling) {
        st->profTask = prof.currentTask();
        prof_deps = prof.ambientDeps();
    }

    sim.scheduleAfter(cfg.launchOverhead, [cl, st, spec,
                                           prof_deps =
                                               std::move(prof_deps)]() mutable {
        Simulator &sim = cl->sim();
        SpanRecorder &prof = cl->profiler();
        if (st->profiling)
            st->launchNode = prof.addNode(
                "checkpoint launch", SpanCategory::kCheckpoint, st->begin,
                sim.now(), std::move(prof_deps), -1);
        st->xferBegin = sim.now();

        const ResourceId target =
            cl->net().addResource("ckpt.target", spec.targetBandwidth);
        const int chips = cl->numChips();
        Join *join = Join::create(chips + 1, [cl, st] {
            const Time xfer_end = cl->sim().now();
            cl->sim().scheduleAfter(
                cl->config().syncLatency, [cl, st, xfer_end] {
                    const Time now = cl->sim().now();
                    if (!st->profiling) {
                        st->done(now - st->begin);
                        return;
                    }
                    SpanRecorder &prof = cl->profiler();
                    std::vector<int> deps = st->writeNodes;
                    if (deps.empty() && st->launchNode >= 0)
                        deps.push_back(st->launchNode);
                    const int sync = prof.addNode(
                        "checkpoint sync", SpanCategory::kCheckpoint,
                        xfer_end, now, std::move(deps), -1);
                    prof.addTaskExit(st->profTask, sync);
                    prof.beginChain(st->profTask, {sync});
                    st->done(now - st->begin);
                    prof.endChain();
                });
        });
        for (int chip = 0; chip < chips; ++chip) {
            auto flow_done = [cl, st, join, chip] {
                if (st->profiling) {
                    SpanRecorder &prof = cl->profiler();
                    std::vector<int> deps;
                    if (st->launchNode >= 0)
                        deps.push_back(st->launchNode);
                    const int node = prof.addNode(
                        strprintf("ckpt write c%d", chip),
                        SpanCategory::kCheckpoint, st->xferBegin,
                        cl->sim().now(), std::move(deps), chip);
                    prof.setNodeResource(node,
                                         cl->net().lastFinishedFlow());
                    st->writeNodes.push_back(node);
                }
                join->signal();
            };
            cl->net().startFlow(static_cast<double>(spec.bytesPerChip),
                                {Demand{cl->hbmOf(chip), 1.0},
                                 Demand{target, 1.0}},
                                std::move(flow_done));
        }
        join->signal();
    });
}

} // namespace meshslice
