/**
 * @file
 * Fault-sensitivity study of the distributed GeMM algorithms.
 *
 * Runs a GeMM spec under a `FaultScenario` and under the fault-free
 * baseline on identical fresh clusters, and reports — per algorithm —
 * the slowdown, the extra *exposed* (un-hidden) communication, and the
 * overlap-efficiency delta. This is the Sec-3/Fig-10 question turned
 * around: the paper argues MeshSlice's sliced collectives hide
 * communication; the study measures how much of that hiding survives
 * slow links, stragglers and launch jitter.
 */
#ifndef MESHSLICE_CORE_FAULT_STUDY_HPP_
#define MESHSLICE_CORE_FAULT_STUDY_HPP_

#include <vector>

#include "core/spec.hpp"
#include "sim/critical_path.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"

namespace meshslice {

/** One algorithm's nominal-vs-faulted comparison. */
struct FaultStudyEntry
{
    Algorithm algo = Algorithm::kMeshSlice;
    GemmRunResult nominal; ///< fault-free baseline
    GemmRunResult faulted; ///< same spec under the scenario
    /** faulted.time / nominal.time (>= 1 for any real degradation). */
    double slowdown = 1.0;
    /** Extra core-idle (exposed-comm) seconds caused by the faults. */
    Time exposedCommDelta = 0.0;
    /** overlapEfficiency(faulted) - overlapEfficiency(nominal). */
    double overlapDelta = 0.0;
};

/** Study outcome over a set of algorithms. */
struct FaultStudyResult
{
    std::vector<FaultStudyEntry> entries;

    const FaultStudyEntry *find(Algorithm algo) const;
};

/**
 * Simulate @p algo executing @p spec on a fresh cluster, optionally
 * under @p scenario (nullptr = fault-free; identical code paths, so
 * the two runs differ only by the injected faults). 2D algorithms run
 * on a `spec.rows x spec.cols` torus; `kOneDTP` / `kFsdp` run the
 * forward-pass 1D schedule on a ring of `spec.chips()` chips.
 *
 * When @p stats is non-null, the run's per-resource accounting (the
 * fresh cluster's own registry) is merged into it after the run. The
 * run itself only ever touches its private cluster, so concurrent
 * calls from pool workers are safe; callers wanting deterministic
 * aggregates pass nullptr here and merge per-run snapshots serially.
 *
 * When @p explain is non-null, the critical-path profiler is switched
 * on for the run and @p explain receives the full analysis
 * (attribution, hot spans, what-if sensitivities) of the recorded span
 * graph. Observational only: the simulated result is bit-identical
 * either way.
 */
GemmRunResult runGemmUnderScenario(const ChipConfig &cfg, Algorithm algo,
                                   const Gemm2DSpec &spec,
                                   const FaultScenario *scenario,
                                   StatsRegistry *stats = nullptr,
                                   ExplainRecord *explain = nullptr);

/**
 * Run every algorithm of @p algos nominally and under @p scenario.
 * Cannon is skipped automatically on non-square meshes. When @p stats
 * is non-null and enabled, per-algorithm deltas are recorded under
 * `fault_study/<algo>/...` (nominal_s, faulted_s, slowdown,
 * exposed_comm_nominal_s, exposed_comm_faulted_s, overlap_nominal,
 * overlap_faulted).
 */
FaultStudyResult runFaultStudy(const ChipConfig &cfg, const Gemm2DSpec &spec,
                               const FaultScenario &scenario,
                               const std::vector<Algorithm> &algos,
                               StatsRegistry *stats = nullptr);

} // namespace meshslice

#endif // MESHSLICE_CORE_FAULT_STUDY_HPP_
