#include "core/mesh_ops.hpp"

#include <memory>

#include "sim/join.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Aggregates stats of concurrent symmetric ring ops, then fires. */
struct RingFanout
{
    CommStats merged;
    CommDone done;
};

/** Run @p issue on every ring of @p dir, merging the per-ring stats. */
template <typename IssueFn>
void
fanoutRings(TorusMesh &mesh, Dir dir, CommDone done, IssueFn issue)
{
    const auto &rings = dir == Dir::kHorizontal ? mesh.rowRings()
                                                : mesh.colRings();
    auto state = std::make_shared<RingFanout>();
    state->done = std::move(done);
    Join *join = Join::create(static_cast<int>(rings.size()),
                              [state] { state->done(state->merged); });
    const int lane = dir == Dir::kHorizontal ? kLaneHorizontalComm
                                             : kLaneVerticalComm;
    for (const Ring &ring : rings) {
        issue(ring, lane, [state, join](const CommStats &stats) {
            state->merged.mergeParallel(stats);
            join->signal();
        });
    }
}

} // namespace

void
meshCollective(TorusMesh &mesh, Dir dir, CollKind kind, Bytes shard_bytes,
               CommDone done)
{
    Cluster &cluster = mesh.cluster();
    fanoutRings(mesh, dir, std::move(done),
                [&cluster, kind, shard_bytes](const Ring &ring, int lane,
                                              CommDone ring_done) {
                    if (kind == CollKind::kAllGather) {
                        ringAllGather(cluster, ring, shard_bytes, lane,
                                      std::move(ring_done));
                    } else {
                        ringReduceScatter(cluster, ring, shard_bytes, lane,
                                          std::move(ring_done));
                    }
                });
}

void
meshBroadcastReduce(TorusMesh &mesh, Dir dir, bool is_reduce, int root_pos,
                    Bytes payload_bytes, int packets, CommDone done)
{
    Cluster &cluster = mesh.cluster();
    fanoutRings(mesh, dir, std::move(done),
                [&cluster, is_reduce, root_pos, payload_bytes,
                 packets](const Ring &ring, int lane, CommDone ring_done) {
                    const int root = root_pos % std::max(1, ring.size());
                    if (is_reduce) {
                        ringReduce(cluster, ring, root, payload_bytes,
                                   packets, lane, std::move(ring_done));
                    } else {
                        ringBroadcast(cluster, ring, root, payload_bytes,
                                      packets, lane, std::move(ring_done));
                    }
                });
}

void
meshShift(TorusMesh &mesh, Dir dir, Bytes block_bytes, bool forward,
          CommDone done)
{
    Cluster &cluster = mesh.cluster();
    fanoutRings(mesh, dir, std::move(done),
                [&cluster, block_bytes, forward](const Ring &ring, int lane,
                                                 CommDone ring_done) {
                    ringShift(cluster, ring, block_bytes, forward, lane,
                              std::move(ring_done));
                });
}

void
meshGemm(TorusMesh &mesh, const GemmWork &work, std::function<void()> done)
{
    Cluster &cluster = mesh.cluster();
    if (work.empty()) {
        cluster.sim().scheduleAfter(0.0, std::move(done));
        return;
    }
    const int chips = mesh.rows() * mesh.cols();
    Join *join = Join::create(chips, std::move(done));
    for (int r = 0; r < mesh.rows(); ++r)
        for (int c = 0; c < mesh.cols(); ++c)
            cluster.runGemm(mesh.chipAt(r, c), work,
                            [join] { join->signal(); });
}

void
ringNetGemm(RingNetwork &net, const GemmWork &work,
            std::function<void()> done)
{
    Cluster &cluster = net.cluster();
    if (work.empty()) {
        cluster.sim().scheduleAfter(0.0, std::move(done));
        return;
    }
    Join *join = Join::create(cluster.numChips(), std::move(done));
    for (int chip = 0; chip < cluster.numChips(); ++chip)
        cluster.runGemm(chip, work, [join] { join->signal(); });
}

} // namespace meshslice
