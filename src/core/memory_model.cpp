#include "core/memory_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace meshslice {

namespace {

/** Shards of all three matrices, resident for the whole operation. */
Bytes
residentBytes(const Gemm2DSpec &spec)
{
    const Bytes e = spec.bytesPerElement;
    const Bytes chips = spec.chips();
    return (spec.m * spec.k + spec.k * spec.n + spec.m * spec.n) * e /
           chips;
}

} // namespace

MemoryFootprint
gemmMemoryFootprint(Algorithm algo, const Gemm2DSpec &spec)
{
    MemoryFootprint fp;
    fp.residentShards = residentBytes(spec);

    const FlowSide h = horizontalFlow(spec);
    const FlowSide v = verticalFlow(spec);
    // Fully gathered panel sizes per chip (the Collective working set):
    // a horizontal AG materializes the matrix's whole row share, a
    // vertical one its whole column share.
    const Bytes h_panel = h.matrixBytes / spec.rows;
    const Bytes v_panel = v.matrixBytes / spec.cols;
    const Bytes s = std::max(1, spec.sliceCount);

    auto side_bytes = [](const FlowSide &side, Bytes panel, Bytes slices) {
        // AG sides buffer the gathered panel; RdS sides stage the
        // partial result of the same extent before scattering.
        return std::pair<Bytes, Bytes>{
            side.op == CollKind::kAllGather ? panel / slices : 0,
            side.op == CollKind::kReduceScatter ? panel / slices : 0};
    };

    switch (algo) {
      case Algorithm::kMeshSlice: {
        auto [hg, hp] = side_bytes(h, h_panel, s);
        auto [vg, vp] = side_bytes(v, v_panel, s);
        // Double buffering: next iteration's gather overlaps this
        // iteration's compute.
        fp.gatherBuffers = 2 * (hg + vg);
        fp.partialBuffers = 2 * (hp + vp);
        return fp;
      }
      case Algorithm::kCollective: {
        auto [hg, hp] = side_bytes(h, h_panel, 1);
        auto [vg, vp] = side_bytes(v, v_panel, 1);
        fp.gatherBuffers = hg + vg; // no pipeline, single buffers
        fp.partialBuffers = hp + vp;
        return fp;
      }
      case Algorithm::kWang: {
        // The blocking direction materializes its full panel; the
        // overlapped direction stages 1/S rotations, double-buffered.
        const double traffic_h = static_cast<double>(h.matrixBytes) /
                                 spec.chips() * (spec.cols - 1);
        const double traffic_v = static_cast<double>(v.matrixBytes) /
                                 spec.chips() * (spec.rows - 1);
        const bool ov_h = traffic_h >= traffic_v;
        const Bytes ov_panel = ov_h ? h_panel : v_panel;
        const Bytes bl_panel = ov_h ? v_panel : h_panel;
        fp.gatherBuffers = bl_panel + 2 * (ov_panel / s);
        return fp;
      }
      case Algorithm::kSumma: {
        // Per-iteration broadcast panels (1/P of the row/col share),
        // double-buffered; reduce sides stage symmetric partials.
        const Bytes p_iter = std::max(spec.rows, spec.cols);
        fp.gatherBuffers = 2 * (h_panel + v_panel) / p_iter;
        return fp;
      }
      case Algorithm::kOneSided: {
        // Each tile pulls 1/S slices of both panels via one-sided
        // gets, double-buffered so the next slice's gets overlap this
        // slice's compute — same working set as MeshSlice at equal S.
        fp.gatherBuffers = 2 * (h_panel + v_panel) / s;
        return fp;
      }
      case Algorithm::kCannon: {
        // Shards rotate: one extra receive buffer per input matrix.
        const Bytes e = spec.bytesPerElement;
        fp.gatherBuffers =
            (spec.m * spec.k + spec.k * spec.n) * e / spec.chips();
        return fp;
      }
      default:
        panic("gemmMemoryFootprint: %s is not a 2D algorithm",
              algorithmName(algo));
    }
}

MemoryFootprint
gemmMemoryFootprint1D(const Gemm1DSpec &spec)
{
    MemoryFootprint fp;
    const Bytes e = spec.bytesPerElement;
    fp.residentShards =
        (spec.m * spec.k + spec.k * spec.n + spec.m * spec.n) * e /
        spec.chips;
    // The communicated matrix is materialized in full on each chip —
    // that is what AG around the whole ring produces (the 1D memory
    // cliff that motivates 2D TP).
    fp.gatherBuffers = spec.commBytes;
    return fp;
}

bool
fitsInMemory(const ChipConfig &cfg, Algorithm algo,
             const Gemm2DSpec &spec)
{
    return gemmMemoryFootprint(algo, spec).total() <= cfg.hbmCapacity;
}

PipelineMemoryFootprint
pipelineStageMemory(const PipelineStageMemorySpec &spec)
{
    if (spec.residentBytes < 0 || spec.activationBytes < 0 ||
        spec.boundaryBytes < 0)
        fatal("pipelineStageMemory: negative byte counts (resident %lld, "
              "activation %lld, boundary %lld)",
              static_cast<long long>(spec.residentBytes),
              static_cast<long long>(spec.activationBytes),
              static_cast<long long>(spec.boundaryBytes));
    if (spec.peakInFlight <= 0)
        fatal("pipelineStageMemory: peak in-flight count must be "
              "positive (got %d) — every schedule stashes at least the "
              "micro-batch it is working on", spec.peakInFlight);
    PipelineMemoryFootprint fp;
    fp.resident = spec.residentBytes;
    const Bytes per_mb =
        spec.recompute ? spec.boundaryBytes : spec.activationBytes;
    fp.stash = static_cast<Bytes>(spec.peakInFlight) * per_mb;
    // One receive buffer for the incoming micro-batch and one send
    // buffer for the outgoing one (double-buffered boundaries).
    fp.boundaryBuffers = 2 * spec.boundaryBytes;
    return fp;
}

bool
pipelineFitsInMemory(const ChipConfig &cfg,
                     const PipelineStageMemorySpec &spec)
{
    return pipelineStageMemory(spec).total() <= cfg.hbmCapacity;
}

} // namespace meshslice
