/**
 * @file
 * Mesh-wide operation helpers: run one collective on *every* ring of a
 * direction (all rows or all columns) concurrently, or one local GeMM
 * on every chip, completing when all finish. These are the building
 * blocks the timing executors schedule through the task graph.
 */
#ifndef MESHSLICE_CORE_MESH_OPS_HPP_
#define MESHSLICE_CORE_MESH_OPS_HPP_

#include <functional>

#include "core/spec.hpp"
#include "hw/compute_model.hpp"
#include "net/collectives.hpp"
#include "net/topology.hpp"

namespace meshslice {

/** Mesh communication direction. */
enum class Dir { kHorizontal, kVertical };

/**
 * Run an AllGather or ReduceScatter on every ring of @p dir with
 * @p shard_bytes per chip; @p done receives stats merged over the
 * (symmetric, concurrent) rings with `mergeParallel`.
 */
void meshCollective(TorusMesh &mesh, Dir dir, CollKind kind,
                    Bytes shard_bytes, CommDone done);

/**
 * Run a SUMMA pipelined broadcast (or reduce) of @p payload_bytes on
 * every ring of @p dir, rooted at ring position @p root_pos, streamed
 * as @p packets packets.
 */
void meshBroadcastReduce(TorusMesh &mesh, Dir dir, bool is_reduce,
                         int root_pos, Bytes payload_bytes, int packets,
                         CommDone done);

/** One SendRecv rotation of @p block_bytes on every ring of @p dir. */
void meshShift(TorusMesh &mesh, Dir dir, Bytes block_bytes, bool forward,
               CommDone done);

/** The same local GeMM on every chip of the mesh. */
void meshGemm(TorusMesh &mesh, const GemmWork &work,
              std::function<void()> done);

/** The same local GeMM on every chip of a 1D ring network. */
void ringNetGemm(RingNetwork &net, const GemmWork &work,
                 std::function<void()> done);

} // namespace meshslice

#endif // MESHSLICE_CORE_MESH_OPS_HPP_
