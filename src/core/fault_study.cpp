#include "core/fault_study.hpp"

#include <string>

#include "core/executor.hpp"
#include "net/topology.hpp"
#include "util/logging.hpp"

namespace meshslice {

namespace {

/**
 * Forward-pass 1D spec equivalent of a 2D GeMM spec: activations move
 * for 1D TP, weights for FSDP (Sec 4.3).
 */
Gemm1DSpec
to1DSpec(const Gemm2DSpec &spec, Algorithm algo)
{
    Gemm1DSpec s;
    s.m = spec.m;
    s.k = spec.k;
    s.n = spec.n;
    s.chips = spec.chips();
    s.sliceCount = spec.sliceCount;
    s.bytesPerElement = spec.bytesPerElement;
    const Bytes e = spec.bytesPerElement;
    if (algo == Algorithm::kOneDTP) {
        s.commBytes = spec.m * spec.k * e;
        s.commIsReduce = false;
        s.local = GemmWork{spec.m, spec.k, spec.n / s.chips};
    } else { // FSDP
        s.commBytes = spec.k * spec.n * e;
        s.commIsReduce = false;
        s.local = GemmWork{spec.m / s.chips, spec.k, spec.n};
    }
    return s;
}

} // namespace

const FaultStudyEntry *
FaultStudyResult::find(Algorithm algo) const
{
    for (const FaultStudyEntry &e : entries)
        if (e.algo == algo)
            return &e;
    return nullptr;
}

GemmRunResult
runGemmUnderScenario(const ChipConfig &cfg, Algorithm algo,
                     const Gemm2DSpec &spec, const FaultScenario *scenario,
                     StatsRegistry *stats, ExplainRecord *explain)
{
    const bool is_1d =
        algo == Algorithm::kOneDTP || algo == Algorithm::kFsdp;
    Cluster cluster(cfg, spec.chips());
    if (stats != nullptr)
        cluster.stats().enable(true);
    if (explain != nullptr)
        cluster.enableProfiler(true);
    GemmRunResult result;
    if (is_1d) {
        RingNetwork ring(cluster);
        FaultInjector injector(cluster.sim(), cluster.net(),
                               scenario ? *scenario : FaultScenario{});
        if (scenario) {
            injector.arm();
            cluster.attachFaults(&injector);
        }
        result = runGemm1D(ring, to1DSpec(spec, algo), algo);
    } else {
        TorusMesh mesh(cluster, spec.rows, spec.cols);
        FaultInjector injector(cluster.sim(), cluster.net(),
                               scenario ? *scenario : FaultScenario{});
        if (scenario) {
            injector.arm();
            cluster.attachFaults(&injector);
        }
        GemmExecutor executor(mesh);
        result = executor.run(algo, spec);
    }
    if (explain != nullptr)
        *explain = explainGraph(cluster.profiler().nodes());
    if (stats != nullptr) {
        cluster.collectResourceStats(cluster.stats());
        stats->merge(cluster.stats().snapshot());
    }
    return result;
}

FaultStudyResult
runFaultStudy(const ChipConfig &cfg, const Gemm2DSpec &spec,
              const FaultScenario &scenario,
              const std::vector<Algorithm> &algos, StatsRegistry *stats)
{
    FaultStudyResult result;
    for (Algorithm algo : algos) {
        if (algo == Algorithm::kCannon && spec.rows != spec.cols)
            continue; // Cannon needs a square mesh
        FaultStudyEntry entry;
        entry.algo = algo;
        entry.nominal = runGemmUnderScenario(cfg, algo, spec, nullptr);
        entry.faulted = runGemmUnderScenario(cfg, algo, spec, &scenario);
        entry.slowdown = entry.nominal.time > 0.0
                             ? entry.faulted.time / entry.nominal.time
                             : 1.0;
        entry.exposedCommDelta =
            entry.faulted.exposedComm - entry.nominal.exposedComm;
        entry.overlapDelta = entry.faulted.overlapEfficiency() -
                             entry.nominal.overlapEfficiency();
        if (stats && stats->enabled()) {
            const std::string base =
                std::string("fault_study/") + algorithmName(algo);
            stats->set(base + "/nominal_s", entry.nominal.time);
            stats->set(base + "/faulted_s", entry.faulted.time);
            stats->set(base + "/slowdown", entry.slowdown);
            stats->set(base + "/exposed_comm_nominal_s",
                       entry.nominal.exposedComm);
            stats->set(base + "/exposed_comm_faulted_s",
                       entry.faulted.exposedComm);
            stats->set(base + "/exposed_comm_delta_s",
                       entry.exposedCommDelta);
            stats->set(base + "/overlap_nominal",
                       entry.nominal.overlapEfficiency());
            stats->set(base + "/overlap_faulted",
                       entry.faulted.overlapEfficiency());
            stats->set(base + "/overlap_delta", entry.overlapDelta);
        }
        result.entries.push_back(entry);
    }
    return result;
}

} // namespace meshslice
