/**
 * @file
 * A tiny dependency graph of asynchronous simulation tasks.
 *
 * Timing executors describe a software-pipelined schedule as tasks
 * ("all-rows partial AllGather of slice s", "all-chips partial GeMM of
 * slice s") with dependencies; the graph starts every task as soon as
 * its dependencies complete, which is exactly how overlap emerges in
 * MeshSlice's pipelines (Fig 4).
 */
#ifndef MESHSLICE_CORE_TASKGRAPH_HPP_
#define MESHSLICE_CORE_TASKGRAPH_HPP_

#include <functional>
#include <vector>

#include "sim/critical_path.hpp"
#include "sim/simulator.hpp"

namespace meshslice {

/**
 * Build with `addTask`, then `start`. Tasks receive a completion
 * callback they must invoke exactly once (possibly asynchronously).
 * The graph object must outlive the simulation run.
 *
 * When a `SpanRecorder` is attached, each task gets a profiler scope:
 * the synchronous part of the task body runs with that scope ambient,
 * so operations started inside register their span nodes as the
 * task's exits, and nodes started by dependent tasks inherit those
 * exits as causal deps — the TaskGraph edges become span-graph edges.
 */
class TaskGraph
{
  public:
    /** A task body: do work, then call `done()`. */
    using TaskFn = std::function<void(std::function<void()> done)>;

    explicit TaskGraph(Simulator &sim, SpanRecorder *prof = nullptr)
        : sim_(sim), prof_(prof && prof->enabled() ? prof : nullptr)
    {}

    /** The attached profiler, or nullptr (also when disabled). */
    SpanRecorder *profiler() const { return prof_; }

    /**
     * Add a task depending on previously added tasks.
     * @return the task id, usable as a dependency of later tasks.
     */
    int addTask(TaskFn fn, std::vector<int> deps = {});

    /** Begin execution; @p all_done fires when every task completed. */
    void start(std::function<void()> all_done);

  private:
    struct Task
    {
        TaskFn fn;
        std::vector<int> dependents;
        int blockers = 0;
        bool launched = false;
        bool completed = false;
        int profId = -1; ///< SpanRecorder task scope
    };

    void launchTask(int id);
    void completeTask(int id);

    Simulator &sim_;
    SpanRecorder *prof_ = nullptr;
    std::vector<Task> tasks_;
    std::function<void()> allDone_;
    int remaining_ = 0;
    bool started_ = false;
};

} // namespace meshslice

#endif // MESHSLICE_CORE_TASKGRAPH_HPP_
