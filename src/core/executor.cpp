#include "core/executor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>

#include "core/mesh_ops.hpp"
#include "core/taskgraph.hpp"
#include "net/onesided.hpp"
#include "sim/join.hpp"
#include "util/logging.hpp"

namespace meshslice {

int
optimalPacketCount(const ChipConfig &cfg, int hops, Bytes payload)
{
    if (hops <= 1 || payload <= 0)
        return 1;
    // Minimize (hops + D - 1) * (t_sync + payload / (D * bw)) over D.
    const double bw = cfg.iciLinkBandwidth / cfg.logicalMeshContention;
    const double ideal =
        std::sqrt(static_cast<double>(hops - 1) *
                  static_cast<double>(payload) / (bw * cfg.syncLatency));
    return std::clamp(static_cast<int>(std::lround(ideal)), 1, 64);
}

namespace {

/** Accumulate one op's stats into the right direction of the result. */
CommDone
statsSink(GemmRunResult *result, Dir dir, std::function<void()> done)
{
    return [result, dir, done = std::move(done)](const CommStats &stats) {
        if (dir == Dir::kHorizontal)
            result->horizontal += stats;
        else
            result->vertical += stats;
        done();
    };
}

/** Sum of the chips' core busy-seconds (overlap attribution input). */
double
sumCoreBusy(Cluster &cluster)
{
    double sum = 0.0;
    for (int chip = 0; chip < cluster.numChips(); ++chip)
        sum += cluster.net().resourceStats(cluster.coreOf(chip)).busyTime;
    return sum;
}

/**
 * Fill the overlap-efficiency fields of @p result from the core-busy
 * delta across the run and publish the per-algorithm metrics into the
 * cluster's stats registry.
 */
void
finishRunTelemetry(Cluster &cluster, const char *algo_name,
                   GemmRunResult &result, double core_busy_before,
                   int chips)
{
    const double busy =
        (sumCoreBusy(cluster) - core_busy_before) / std::max(1, chips);
    result.computeBusy = busy;
    result.exposedComm = std::max(0.0, result.time - busy);
    StatsRegistry &st = cluster.stats();
    if (!st.enabled())
        return;
    const std::string base = std::string("algo/") + algo_name;
    st.add(base + "/runs", 1.0);
    st.add(base + "/time_s", result.time);
    st.add(base + "/compute_busy_s", result.computeBusy);
    st.add(base + "/exposed_comm_s", result.exposedComm);
    st.observe(base + "/overlap_efficiency",
               result.overlapEfficiency());
    st.observe(base + "/compute_bound_frac",
               result.computeBoundFraction());
}

/**
 * Per-schedule flow-event plumbing: input collectives deposit a flow
 * id as they complete; the next compute task consumes all pending ids,
 * drawing comm -> compute dependency arrows in Perfetto.
 */
struct FlowLinks
{
    std::vector<std::uint64_t> pending;
};

/** One side of a sliced schedule. */
struct Side
{
    Dir dir;
    CollKind op;
    Bytes shardPerIter; ///< AG/RdS per-chip shard bytes per iteration
    Bytes payloadPerIter; ///< SUMMA per-ring payload bytes per iteration
    int ringSize;
};

std::vector<Side>
sidesOf(const Gemm2DSpec &spec)
{
    const FlowSide h = horizontalFlow(spec);
    const FlowSide v = verticalFlow(spec);
    const Bytes chips = spec.chips();
    const std::int64_t s = spec.sliceCount;
    return {
        Side{Dir::kHorizontal, h.op, h.matrixBytes / (chips * s),
             h.matrixBytes / (spec.rows * s), spec.cols},
        Side{Dir::kVertical, v.op, v.matrixBytes / (chips * s),
             v.matrixBytes / (spec.cols * s), spec.rows},
    };
}

/**
 * Build the software-pipelined sliced schedule shared by MeshSlice and
 * Collective (S=1).
 */
void
buildSliced(TaskGraph &graph, TorusMesh &mesh, const Gemm2DSpec &spec,
            GemmRunResult *state)
{
    const ChipConfig &cfg = mesh.cluster().config();
    const bool overlap = cfg.allowCollectiveOverlap;
    const int s_count = spec.sliceCount;
    const GemmWork work = localSliceWork(spec);
    const auto sides = sidesOf(spec);

    // Flow arrows (Perfetto): each completed input collective deposits
    // a flow id; the compute that consumes it closes the arrow.
    auto links = std::make_shared<FlowLinks>();
    const int chip0 = mesh.chipAt(0, 0);

    auto comm_task = [&, links, chip0](const Side &side, int iter) {
        (void)iter;
        return [&mesh, side, state, links,
                chip0](std::function<void()> done) {
            Cluster &cl = mesh.cluster();
            const bool is_input = side.op == CollKind::kAllGather;
            auto wrapped = [&cl, links, chip0, side, is_input,
                            done = std::move(done)] {
                TraceRecorder &tr = cl.trace();
                if (is_input && tr.enabled()) {
                    const std::uint64_t id = tr.newFlowId();
                    const int lane = side.dir == Dir::kHorizontal
                                         ? kLaneHorizontalComm
                                         : kLaneVerticalComm;
                    // 1ns inside the comm span so the arrow binds to it.
                    tr.recordFlow("feeds", "dep", id, chip0, lane,
                                  cl.sim().now() - ns(1.0), true);
                    links->pending.push_back(id);
                }
                done();
            };
            meshCollective(mesh, side.dir, side.op, side.shardPerIter,
                           statsSink(state, side.dir, std::move(wrapped)));
        };
    };
    auto gemm_task = [&mesh, work, links,
                      chip0](std::function<void()> done) {
        Cluster &cl = mesh.cluster();
        TraceRecorder &tr = cl.trace();
        if (tr.enabled() && !links->pending.empty()) {
            for (std::uint64_t id : links->pending)
                tr.recordFlow("feeds", "dep", id, chip0, kLaneCompute,
                              cl.sim().now() + ns(1.0), false);
            links->pending.clear();
        }
        meshGemm(mesh, work, std::move(done));
    };

    if (!overlap) {
        // Real-TPUv4 mode: strict program order, no comm/compute overlap.
        int prev = -1;
        auto chain = [&](TaskGraph::TaskFn fn) {
            prev = graph.addTask(std::move(fn),
                                 prev < 0 ? std::vector<int>{}
                                          : std::vector<int>{prev});
        };
        for (int s = 0; s < s_count; ++s) {
            for (const Side &side : sides)
                if (side.op == CollKind::kAllGather)
                    chain(comm_task(side, s));
            chain(gemm_task);
            for (const Side &side : sides)
                if (side.op == CollKind::kReduceScatter)
                    chain(comm_task(side, s));
        }
        return;
    }

    // Pipelined schedule: per-direction comm chains; compute(s) waits
    // for its input comms and the previous compute; output comms follow
    // their compute, chained per direction.
    int prev_pre[2] = {-1, -1};
    int prev_post[2] = {-1, -1};
    int prev_comp = -1;
    for (int s = 0; s < s_count; ++s) {
        std::vector<int> comp_deps;
        if (prev_comp >= 0)
            comp_deps.push_back(prev_comp);
        for (size_t i = 0; i < sides.size(); ++i) {
            if (sides[i].op != CollKind::kAllGather)
                continue;
            std::vector<int> deps;
            if (prev_pre[i] >= 0)
                deps.push_back(prev_pre[i]);
            prev_pre[i] = graph.addTask(comm_task(sides[i], s), deps);
            comp_deps.push_back(prev_pre[i]);
        }
        const int comp = graph.addTask(gemm_task, comp_deps);
        prev_comp = comp;
        for (size_t i = 0; i < sides.size(); ++i) {
            if (sides[i].op != CollKind::kReduceScatter)
                continue;
            std::vector<int> deps{comp};
            if (prev_post[i] >= 0)
                deps.push_back(prev_post[i]);
            prev_post[i] = graph.addTask(comm_task(sides[i], s), deps);
        }
    }
}

/**
 * SUMMA: the matrices are split into P x P shards (P a common multiple
 * of Pr and Pc, Sec 2.3.3), giving P communication iterations of
 * pipelined bcast/reduce per direction — the O(P^2) synchronization
 * cost. Loop unrolling (Sec 4.2) merges the *computation* into the
 * autotuned S groups but leaves the fine-grain communication in place.
 */
void
buildSumma(TaskGraph &graph, TorusMesh &mesh, const Gemm2DSpec &spec,
           GemmRunResult *state)
{
    const ChipConfig &cfg = mesh.cluster().config();
    const bool overlap = cfg.allowCollectiveOverlap;
    const int p_iter =
        static_cast<int>(std::lcm(spec.rows, spec.cols));
    const int s_count = std::min(spec.sliceCount, p_iter);
    Gemm2DSpec comp_spec = spec;
    comp_spec.sliceCount = s_count;
    const GemmWork work = localSliceWork(comp_spec);

    // Per-direction, per-communication-iteration payload of one ring.
    const FlowSide h = horizontalFlow(spec);
    const FlowSide v = verticalFlow(spec);
    struct SummaSide
    {
        Dir dir;
        bool isReduce;
        Bytes payload;
        int ringSize;
    };
    const SummaSide sides[2] = {
        {Dir::kHorizontal, h.op == CollKind::kReduceScatter,
         h.matrixBytes / (static_cast<Bytes>(spec.rows) * p_iter),
         spec.cols},
        {Dir::kVertical, v.op == CollKind::kReduceScatter,
         v.matrixBytes / (static_cast<Bytes>(spec.cols) * p_iter),
         spec.rows},
    };

    auto comm_task = [&mesh, state](const SummaSide &side, int iter) {
        return [&mesh, state, side, iter](std::function<void()> done) {
            const ChipConfig &c = mesh.cluster().config();
            const int hops = c.bidirectionalIci
                                 ? std::max(1, side.ringSize / 2)
                                 : side.ringSize - 1;
            const int packets =
                optimalPacketCount(c, hops, side.payload);
            meshBroadcastReduce(mesh, side.dir, side.isReduce, iter,
                                side.payload, packets,
                                statsSink(state, side.dir,
                                          std::move(done)));
        };
    };
    auto gemm_task = [&mesh, work](std::function<void()> done) {
        meshGemm(mesh, work, std::move(done));
    };

    // Comm iteration range feeding compute group g: [lo(g), hi(g)).
    auto group_hi = [p_iter, s_count](int g) {
        return (g + 1) * p_iter / s_count;
    };

    if (!overlap) {
        int prev = -1;
        auto chain = [&](TaskGraph::TaskFn fn) {
            prev = graph.addTask(std::move(fn),
                                 prev < 0 ? std::vector<int>{}
                                          : std::vector<int>{prev});
        };
        int it_pre = 0;
        int it_post = 0;
        for (int g = 0; g < s_count; ++g) {
            for (; it_pre < group_hi(g); ++it_pre)
                for (const SummaSide &side : sides)
                    if (!side.isReduce)
                        chain(comm_task(side, it_pre));
            chain(gemm_task);
            for (; it_post < group_hi(g); ++it_post)
                for (const SummaSide &side : sides)
                    if (side.isReduce)
                        chain(comm_task(side, it_post));
        }
        return;
    }

    // Pipelined: per-direction comm chains at p_iter granularity;
    // compute group g waits for all its input comm iterations; reduce
    // iteration it waits for the compute group that produced it.
    int prev_comm[2] = {-1, -1};
    std::vector<int> pre_last(static_cast<size_t>(p_iter), -1);
    // Pre-communication chains (both directions advance independently).
    for (int it = 0; it < p_iter; ++it) {
        int last = -1;
        for (int i = 0; i < 2; ++i) {
            if (sides[i].isReduce)
                continue;
            std::vector<int> deps;
            if (prev_comm[i] >= 0)
                deps.push_back(prev_comm[i]);
            prev_comm[i] = graph.addTask(comm_task(sides[i], it), deps);
            last = prev_comm[i];
        }
        pre_last[static_cast<size_t>(it)] = last;
    }
    int prev_comp = -1;
    std::vector<int> comp_of_group(static_cast<size_t>(s_count), -1);
    for (int g = 0; g < s_count; ++g) {
        std::vector<int> deps;
        if (prev_comp >= 0)
            deps.push_back(prev_comp);
        // Depend on every pre-comm iteration of the group's range (the
        // chains make the last of each direction sufficient, but both
        // directions' last iterations matter).
        const int hi = group_hi(g);
        for (int it = (g == 0 ? 0 : group_hi(g - 1)); it < hi; ++it)
            if (pre_last[static_cast<size_t>(it)] >= 0)
                deps.push_back(pre_last[static_cast<size_t>(it)]);
        prev_comp = graph.addTask(gemm_task, deps);
        comp_of_group[static_cast<size_t>(g)] = prev_comp;
    }
    // Post (reduce) chains.
    int prev_post[2] = {-1, -1};
    for (int it = 0; it < p_iter; ++it) {
        const int g = std::min(s_count - 1, it * s_count / p_iter);
        for (int i = 0; i < 2; ++i) {
            if (!sides[i].isReduce)
                continue;
            std::vector<int> deps{comp_of_group[static_cast<size_t>(g)]};
            if (prev_post[i] >= 0)
                deps.push_back(prev_post[i]);
            prev_post[i] = graph.addTask(comm_task(sides[i], it), deps);
        }
    }
}

/** Wang: overlap the heavier direction via SendRecv rotations. */
void
buildWang(TaskGraph &graph, TorusMesh &mesh, const Gemm2DSpec &spec,
          GemmRunResult *state)
{
    const ChipConfig &cfg = mesh.cluster().config();
    const int s_count = spec.sliceCount;
    const GemmWork work = localSliceWork(spec);
    const auto sides = sidesOf(spec);

    // Per-link traffic of each direction decides which one to overlap.
    auto link_traffic = [](const Side &side) {
        return static_cast<double>(side.shardPerIter) *
               static_cast<double>(side.ringSize - 1);
    };
    const size_t ov = link_traffic(sides[0]) >= link_traffic(sides[1]) ? 0
                                                                       : 1;
    const Side &ov_side = sides[ov];
    const Side &bl_side = sides[1 - ov];

    // Per-iteration rotation bytes: the whole (P-1)/P fraction of the
    // overlapped matrix split over S SendRecvs. With bidirectional ICI
    // the rotation is split over both directions.
    const Bytes iter_bytes = ov_side.shardPerIter * (ov_side.ringSize - 1);
    const bool bidir = cfg.bidirectionalIci && ov_side.ringSize > 2;

    auto shift_task = [&mesh, ov_side, iter_bytes, bidir, state](
                          std::function<void()> done) {
        if (bidir) {
            // shared_ptr (not a raw new/delete pair): if the phase is
            // abandoned mid-shift the Join is reclaimed by the abandon
            // sweep, and destroying its callback must release the
            // half-merged stats too.
            auto merged = std::make_shared<CommStats>();
            CommDone sink = statsSink(state, ov_side.dir, std::move(done));
            Join *join = Join::create(2, [merged, sink] {
                sink(*merged);
            });
            auto half_done = [merged, join](const CommStats &stats) {
                merged->mergeParallel(stats);
                join->signal();
            };
            meshShift(mesh, ov_side.dir, iter_bytes / 2, true, half_done);
            meshShift(mesh, ov_side.dir, iter_bytes - iter_bytes / 2, false,
                      half_done);
        } else {
            meshShift(mesh, ov_side.dir, iter_bytes, true,
                      statsSink(state, ov_side.dir, std::move(done)));
        }
    };
    auto gemm_task = [&mesh, work](std::function<void()> done) {
        meshGemm(mesh, work, std::move(done));
    };
    // Blocking side: one full (unsliced) collective.
    auto blocking_task = [&mesh, bl_side, s_count, state](
                             std::function<void()> done) {
        meshCollective(mesh, bl_side.dir, bl_side.op,
                       bl_side.shardPerIter * s_count,
                       statsSink(state, bl_side.dir, std::move(done)));
    };

    const bool ov_is_ag = ov_side.op == CollKind::kAllGather;
    const bool bl_is_ag = bl_side.op == CollKind::kAllGather;
    const bool overlap = cfg.allowSendRecvOverlap;

    int prologue = -1;
    if (bl_is_ag)
        prologue = graph.addTask(blocking_task);

    auto with_prologue = [prologue](std::vector<int> deps) {
        if (prologue >= 0)
            deps.push_back(prologue);
        return deps;
    };

    int prev_shift = -1;
    int prev_comp = -1;
    for (int s = 0; s < s_count; ++s) {
        if (ov_is_ag) {
            // shift feeds compute
            std::vector<int> sdeps;
            if (prev_shift >= 0)
                sdeps.push_back(prev_shift);
            // XLA-artifact mode: the shift additionally waits for the
            // previous compute, serializing the pipeline (Sec 5.3.1).
            if (!overlap && prev_comp >= 0)
                sdeps.push_back(prev_comp);
            prev_shift = graph.addTask(shift_task, with_prologue(sdeps));
            std::vector<int> cdeps{prev_shift};
            if (prev_comp >= 0)
                cdeps.push_back(prev_comp);
            prev_comp = graph.addTask(gemm_task, cdeps);
        } else {
            // compute feeds shift (RdS decomposition)
            std::vector<int> cdeps;
            if (prev_comp >= 0)
                cdeps.push_back(prev_comp);
            prev_comp = graph.addTask(gemm_task, with_prologue(cdeps));
            std::vector<int> sdeps{prev_comp};
            if (prev_shift >= 0)
                sdeps.push_back(prev_shift);
            prev_shift = graph.addTask(shift_task, sdeps);
            if (!overlap)
                prev_comp = prev_shift; // next compute waits the shift
        }
    }
    if (!bl_is_ag) {
        // Blocking ReduceScatter epilogue after the last compute.
        graph.addTask(blocking_task, {prev_comp});
    }
}

/** Cannon: square mesh, skew prologue, P systolic iterations. */
void
buildCannon(TaskGraph &graph, TorusMesh &mesh, const Gemm2DSpec &spec,
            GemmRunResult *state)
{
    if (spec.rows != spec.cols)
        panic("Cannon requires a square mesh, got %dx%d", spec.rows,
              spec.cols);
    const int p = spec.rows;
    const Bytes e = spec.bytesPerElement;
    const Bytes chips = spec.chips();
    const Bytes shard_a = spec.m * spec.k * e / chips;
    const Bytes shard_b = spec.k * spec.n * e / chips;
    const GemmWork work{spec.m / p, spec.k / p, spec.n / p};

    auto shift_task = [&mesh, state](Dir dir, Bytes bytes) {
        return [&mesh, state, dir, bytes](std::function<void()> done) {
            meshShift(mesh, dir, bytes, true,
                      statsSink(state, dir, std::move(done)));
        };
    };
    auto gemm_task = [&mesh, work](std::function<void()> done) {
        meshGemm(mesh, work, std::move(done));
    };

    // Skew: row i shifts A by i hops, column j shifts B by j hops. With
    // wraparound the worst chip moves floor(P/2) hops; modelled as that
    // many sequential full-shard rotations in each direction.
    int prev_h = -1;
    int prev_v = -1;
    for (int h = 0; h < p / 2; ++h) {
        prev_h = graph.addTask(shift_task(Dir::kHorizontal, shard_a),
                               prev_h < 0 ? std::vector<int>{}
                                          : std::vector<int>{prev_h});
        prev_v = graph.addTask(shift_task(Dir::kVertical, shard_b),
                               prev_v < 0 ? std::vector<int>{}
                                          : std::vector<int>{prev_v});
    }

    int prev_comp = -1;
    for (int s = 0; s < p; ++s) {
        std::vector<int> cdeps;
        if (prev_comp >= 0)
            cdeps.push_back(prev_comp);
        if (prev_h >= 0)
            cdeps.push_back(prev_h);
        if (prev_v >= 0)
            cdeps.push_back(prev_v);
        prev_comp = graph.addTask(gemm_task, cdeps);
        if (s + 1 < p) {
            prev_h = graph.addTask(shift_task(Dir::kHorizontal, shard_a),
                                   prev_h < 0 ? std::vector<int>{}
                                              : std::vector<int>{prev_h});
            prev_v = graph.addTask(shift_task(Dir::kVertical, shard_b),
                                   prev_v < 0 ? std::vector<int>{}
                                              : std::vector<int>{prev_v});
        }
    }
}

// --------------------------------------------------------------------
// OneSided (Brock & Golin): stationary-C tiles pull their A/B slices
// via async RDMA gets. No mesh-wide task exists anywhere — the
// schedule is rows*cols independent per-tile chains (gets(s) ->
// compute(s)), so a straggling or killed chip delays only the tiles
// whose gets read from it.
// --------------------------------------------------------------------

/** Per-chip schedule state of one OneSided run. */
struct OneSidedChip
{
    /** Fail-stop detected on this chip: its remaining tasks complete
     *  vacuously (per-tile independence — nobody else waits for it). */
    bool dead = false;
    /** In-flight compute flow, cancelled if the chip dies mid-GeMM. */
    FlowId compute = -1;
    /** Pending compute-task continuation, fired on death so the graph
     *  drains without a global abort. */
    std::function<void()> computeDone;
    /** Per-chip accumulated get stats (summed over slices). */
    CommStats h, v;
};

struct OneSidedState
{
    explicit OneSidedState(TorusMesh &mesh) : comm(mesh) {}
    OneSidedComm comm;
    std::vector<OneSidedChip> chips;
};

void
buildOneSided(TaskGraph &graph, TorusMesh &mesh, const Gemm2DSpec &spec,
              GemmRunResult *state)
{
    if (spec.dataflow != Dataflow::kOS)
        panic("OneSided pulls into a stationary C tile: dataflow must "
              "be OS, got %s", dataflowName(spec.dataflow));
    Cluster &cluster = mesh.cluster();
    const bool overlap = cluster.config().allowSendRecvOverlap;
    const int rows = spec.rows;
    const int cols = spec.cols;
    const int s_count = spec.sliceCount;
    const GemmWork work = localSliceWork(spec);
    const auto sides = sidesOf(spec);
    const Bytes h_shard = sides[0].shardPerIter;
    const Bytes v_shard = sides[1].shardPerIter;

    auto st = std::make_shared<OneSidedState>(mesh);
    st->chips.resize(static_cast<size_t>(rows) * cols);

    // Per-chip fail-stop watch (guarded by hasKills, so kill-free runs
    // schedule nothing extra): when a chip dies, cancel its in-flight
    // compute and complete its pending task so the rest of the graph
    // keeps draining. Gets *from* the corpse retry over a detour, gets
    // *into* it are written off — both inside OneSidedComm.
    if (FaultInjector *inj = cluster.faults();
        inj != nullptr && inj->hasKills()) {
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                const int chip = mesh.chipAt(r, c);
                const size_t idx = static_cast<size_t>(r) * cols + c;
                const Time kill = inj->earliestKillAfter(
                    cluster.sim().now(),
                    {cluster.coreOf(chip), cluster.hbmOf(chip)});
                if (kill < 0.0)
                    continue;
                cluster.sim().schedule(
                    kill + inj->detectionLatency(),
                    [st, &cluster, inj, chip, idx] {
                        OneSidedChip &cs = st->chips[idx];
                        cs.dead = true;
                        // Broadcast HBM deaths to the membership cache
                        // so later gets skip their own detection window
                        // (a core-only kill leaves the HBM readable).
                        if (inj->isKilled(cluster.hbmOf(chip)))
                            st->comm.markDead(chip);
                        if (cs.compute >= 0) {
                            cluster.net().cancelFlow(cs.compute);
                            cs.compute = -1;
                        }
                        if (cluster.stats().enabled())
                            cluster.stats().add("onesided/chip_writeoff",
                                                1.0);
                        if (cs.computeDone) {
                            auto done = std::move(cs.computeDone);
                            cs.computeDone = nullptr;
                            done();
                        }
                    });
            }
        }
    }

    // Get batch of one (chip, slice): a single host launch posts the
    // (cols-1) row gets and (rows-1) col gets; all pull concurrently
    // (contending at this chip's NIC queue) and a join fires the task's
    // completion when the last one lands.
    auto get_task = [st, &mesh, rows, cols, h_shard, v_shard](int r,
                                                              int c) {
        return [st, &mesh, rows, cols, h_shard, v_shard, r,
                c](std::function<void()> done) {
            Cluster &cl = mesh.cluster();
            const size_t idx = static_cast<size_t>(r) * cols + c;
            const int count = (cols - 1) + (rows - 1);
            if (st->chips[idx].dead || count == 0) {
                cl.sim().scheduleAfter(0.0, std::move(done));
                return;
            }
            const int chip = mesh.chipAt(r, c);
            Time launch = cl.config().launchOverhead;
            if (FaultInjector *inj = cl.faults())
                launch += inj->nextLaunchJitter();
            SpanRecorder &prof = cl.profiler();
            const bool profe = prof.enabled();
            const int ptask = profe ? prof.currentTask() : -1;
            std::vector<int> pdeps;
            if (profe)
                pdeps = prof.ambientDeps();
            const Time begin = cl.sim().now();
            cl.sim().scheduleAfter(
                launch,
                [st, &mesh, rows, cols, h_shard, v_shard, r, c, chip, idx,
                 count, launch, begin, profe, ptask,
                 pdeps = std::move(pdeps),
                 done = std::move(done)]() mutable {
                    Cluster &cl = mesh.cluster();
                    int launch_node = -1;
                    if (profe)
                        launch_node = cl.profiler().addNode(
                            strprintf("getbatch c%d launch", chip),
                            SpanCategory::kLaunch, begin, cl.sim().now(),
                            std::move(pdeps), chip);
                    // Parallel-merge the batch's gets per direction,
                    // then fold into the chip's running totals.
                    auto acc = std::make_shared<std::array<CommStats, 2>>();
                    Join *join = Join::create(
                        count, [st, idx, acc, launch,
                                done = std::move(done)]() mutable {
                            OneSidedChip &cs = st->chips[idx];
                            CommStats h = (*acc)[0];
                            h.launch = launch;
                            h.total += launch;
                            cs.h += h;
                            cs.v += (*acc)[1];
                            done();
                        });
                    const bool chain = profe && launch_node >= 0;
                    if (chain)
                        cl.profiler().beginChain(ptask, {launch_node});
                    for (int cc = 0; cc < cols; ++cc) {
                        if (cc == c)
                            continue;
                        st->comm.get(GetAxis::kRow, r, c, r, cc, h_shard,
                                     kLaneHorizontalComm,
                                     [acc, join](const CommStats &s) {
                                         (*acc)[0].mergeParallel(s);
                                         join->signal();
                                     });
                    }
                    for (int rr = 0; rr < rows; ++rr) {
                        if (rr == r)
                            continue;
                        st->comm.get(GetAxis::kCol, r, c, rr, c, v_shard,
                                     kLaneVerticalComm,
                                     [acc, join](const CommStats &s) {
                                         (*acc)[1].mergeParallel(s);
                                         join->signal();
                                     });
                    }
                    if (chain)
                        cl.profiler().endChain();
                });
        };
    };

    auto comp_task = [st, &mesh, cols, work](int r, int c) {
        return [st, &mesh, cols, work, r, c](std::function<void()> done) {
            Cluster &cl = mesh.cluster();
            const size_t idx = static_cast<size_t>(r) * cols + c;
            OneSidedChip &cs = st->chips[idx];
            if (cs.dead) {
                cl.sim().scheduleAfter(0.0, std::move(done));
                return;
            }
            cs.computeDone = std::move(done);
            cs.compute = cl.runGemm(mesh.chipAt(r, c), work, [st, idx] {
                OneSidedChip &cs2 = st->chips[idx];
                cs2.compute = -1;
                if (cs2.computeDone) {
                    auto d = std::move(cs2.computeDone);
                    cs2.computeDone = nullptr;
                    d();
                }
            });
        };
    };

    // Per-tile chains: gets(s) -> compute(s), with gets(s+1) pipelined
    // over compute(s) unless SendRecv-style overlap is disabled (the
    // real-TPUv4 mode serializes RDMA behind the consuming compute).
    std::vector<int> prev_get(st->chips.size(), -1);
    std::vector<int> prev_comp(st->chips.size(), -1);
    for (int s = 0; s < s_count; ++s) {
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
                const size_t idx = static_cast<size_t>(r) * cols + c;
                std::vector<int> gdeps;
                if (prev_get[idx] >= 0)
                    gdeps.push_back(prev_get[idx]);
                if (!overlap && prev_comp[idx] >= 0)
                    gdeps.push_back(prev_comp[idx]);
                prev_get[idx] = graph.addTask(get_task(r, c), gdeps);
                std::vector<int> cdeps{prev_get[idx]};
                if (prev_comp[idx] >= 0)
                    cdeps.push_back(prev_comp[idx]);
                prev_comp[idx] = graph.addTask(comp_task(r, c), cdeps);
            }
        }
    }

    // Collector: chips ran concurrently, so the run-level stats are the
    // parallel merge (component-wise max) of the per-chip sums — the
    // same convention as concurrent rings in the collective executors.
    // Costs nothing: it depends on tasks the graph waits for anyway.
    std::vector<int> finals;
    for (int t : prev_comp)
        if (t >= 0)
            finals.push_back(t);
    graph.addTask(
        [st, state](std::function<void()> done) {
            for (const OneSidedChip &cs : st->chips) {
                state->horizontal.mergeParallel(cs.h);
                state->vertical.mergeParallel(cs.v);
            }
            done();
        },
        finals);
}

} // namespace

void
buildGemmSchedule(TaskGraph &graph, TorusMesh &mesh, Algorithm algo,
                  const Gemm2DSpec &spec, GemmRunResult *accum)
{
    if (spec.rows != mesh.rows() || spec.cols != mesh.cols())
        panic("buildGemmSchedule: spec mesh %dx%d != topology %dx%d",
              spec.rows, spec.cols, mesh.rows(), mesh.cols());
    accum->flops += spec.totalFlops();
    Gemm2DSpec eff = spec;
    switch (algo) {
      case Algorithm::kMeshSlice:
        buildSliced(graph, mesh, eff, accum);
        break;
      case Algorithm::kCollective:
        eff.sliceCount = 1;
        buildSliced(graph, mesh, eff, accum);
        break;
      case Algorithm::kSumma:
        buildSumma(graph, mesh, eff, accum);
        break;
      case Algorithm::kWang:
        buildWang(graph, mesh, eff, accum);
        break;
      case Algorithm::kCannon:
        buildCannon(graph, mesh, eff, accum);
        break;
      case Algorithm::kOneSided:
        buildOneSided(graph, mesh, eff, accum);
        break;
      default:
        panic("buildGemmSchedule: %s is not a 2D algorithm",
              algorithmName(algo));
    }
}

GemmRunResult
GemmExecutor::run(Algorithm algo, const Gemm2DSpec &spec)
{
    // Only MeshSlice and OneSided consume the slice count; the
    // baselines ignore it, so don't hold them to its divisibility
    // constraint.
    Gemm2DSpec checked = spec;
    if (algo != Algorithm::kMeshSlice && algo != Algorithm::kOneSided)
        checked.sliceCount = 1;
    validateSpec(checked);
    Cluster &cluster = mesh_.cluster();
    GemmRunResult result;
    bool finished = false;

    TaskGraph graph(cluster.sim(), &cluster.profiler());
    buildGemmSchedule(graph, mesh_, algo, spec, &result);

    const double core_busy_before = sumCoreBusy(cluster);
    const Time begin = cluster.sim().now();
    // Timestamp the *graph's* completion, not the simulator's drain:
    // a fault window whose end boundary outlives the GeMM (or a death
    // watch armed past it) must not inflate the reported step time.
    Time end = begin;
    graph.start([&finished, &end, &cluster] {
        finished = true;
        end = cluster.sim().now();
    });
    cluster.sim().run();
    if (!finished) {
        // A requested stop is a deliberate abandonment (the elastic
        // runtime's fail-stop handler fired mid-schedule): hand back a
        // partial result the caller will discard. Anything else is the
        // historical invariant violation.
        if (cluster.sim().stopRequested()) {
            result.time = cluster.sim().now() - begin;
            return result;
        }
        panic("GemmExecutor: schedule did not drain");
    }
    result.time = end - begin;
    finishRunTelemetry(cluster, algorithmName(algo), result,
                       core_busy_before, cluster.numChips());
    return result;
}

GemmRunResult
runGemm1D(RingNetwork &net, const Gemm1DSpec &spec, Algorithm algo)
{
    validateSpec(spec);
    Cluster &cluster = net.cluster();
    const ChipConfig &cfg = cluster.config();
    const int chips = spec.chips;
    if (chips != cluster.numChips())
        panic("runGemm1D: spec chips %d != cluster %d", chips,
              cluster.numChips());

    GemmRunResult result;
    bool finished = false;
    result.flops = spec.totalFlops();
    // The 1D baselines also overlap via SendRecv rotations, so the
    // XLA-artifact mode (Sec 5.3.1) serializes them too.
    const bool overlap = cfg.allowSendRecvOverlap;

    const int s_count = spec.sliceCount;
    // Slice the larger free dimension of the local GeMM.
    GemmWork work = spec.localWork();
    if (work.m >= work.n)
        work.m = std::max<std::int64_t>(1, work.m / s_count);
    else
        work.n = std::max<std::int64_t>(1, work.n / s_count);

    const Bytes ring_bytes =
        spec.commBytes / chips * (chips - 1); // per link, whole op
    const Bytes iter_bytes = ring_bytes / s_count;
    const bool bidir = cfg.bidirectionalIci && chips > 2;
    const Ring &ring = net.ring();

    auto shift_task = [&cluster, &ring, iter_bytes, bidir, &result](
                          std::function<void()> done) {
        CommDone sink =
            statsSink(&result, Dir::kHorizontal, std::move(done));
        if (bidir) {
            // shared_ptr for the same abandonment-safety reason as the
            // 2D shift task above.
            auto merged = std::make_shared<CommStats>();
            Join *join = Join::create(2, [merged, sink] {
                sink(*merged);
            });
            auto half_done = [merged, join](const CommStats &stats) {
                merged->mergeParallel(stats);
                join->signal();
            };
            ringShift(cluster, ring, iter_bytes / 2, true,
                      kLaneHorizontalComm, half_done);
            ringShift(cluster, ring, iter_bytes - iter_bytes / 2, false,
                      kLaneHorizontalComm, half_done);
        } else {
            ringShift(cluster, ring, iter_bytes, true, kLaneHorizontalComm,
                      sink);
        }
    };
    auto gemm_task = [&net, work](std::function<void()> done) {
        ringNetGemm(net, work, std::move(done));
    };

    TaskGraph graph(cluster.sim(), &cluster.profiler());
    int prev_shift = -1;
    int prev_comp = -1;
    for (int s = 0; s < s_count; ++s) {
        if (!spec.commIsReduce) {
            std::vector<int> sdeps;
            if (prev_shift >= 0)
                sdeps.push_back(prev_shift);
            if (!overlap && prev_comp >= 0)
                sdeps.push_back(prev_comp);
            prev_shift = graph.addTask(shift_task, sdeps);
            std::vector<int> cdeps{prev_shift};
            if (prev_comp >= 0)
                cdeps.push_back(prev_comp);
            prev_comp = graph.addTask(gemm_task, cdeps);
        } else {
            std::vector<int> cdeps;
            if (prev_comp >= 0)
                cdeps.push_back(prev_comp);
            prev_comp = graph.addTask(gemm_task, cdeps);
            std::vector<int> sdeps{prev_comp};
            if (prev_shift >= 0)
                sdeps.push_back(prev_shift);
            prev_shift = graph.addTask(shift_task, sdeps);
            if (!overlap)
                prev_comp = prev_shift; // next compute waits the shift
        }
    }

    const double core_busy_before = sumCoreBusy(cluster);
    const Time begin = cluster.sim().now();
    // As in GemmExecutor::run: the graph's completion time, not the
    // simulator's drain time (fault-window boundaries may outlive it).
    Time end = begin;
    graph.start([&finished, &end, &cluster] {
        finished = true;
        end = cluster.sim().now();
    });
    cluster.sim().run();
    if (!finished) {
        // Same abandonment escape as GemmExecutor::run.
        if (cluster.sim().stopRequested()) {
            result.time = cluster.sim().now() - begin;
            return result;
        }
        panic("runGemm1D: schedule did not drain");
    }
    result.time = end - begin;
    finishRunTelemetry(cluster, algorithmName(algo), result,
                       core_busy_before, cluster.numChips());
    return result;
}

} // namespace meshslice
