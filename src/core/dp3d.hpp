/**
 * @file
 * 3D-cluster composition (Sec 7): stacked 2D tori with depth rings,
 * plus timed executors for the two ways to run a GeMM on 1024+ chips:
 *
 *  - MeshSlice+DP: every depth layer runs the MeshSlice 2D GeMM on its
 *    batch shard; the weight gradients are then all-reduced over the
 *    depth rings (standard data parallelism).
 *  - 2.5D GeMM (Solomonik–Demmel): the inputs are replicated over the
 *    c depth layers, each layer runs P/c Cannon-style shifted
 *    iterations from a rotated start, and the partial outputs are
 *    reduced back over depth. Inherits Cannon's square-base-mesh
 *    restriction and skew traffic.
 */
#ifndef MESHSLICE_CORE_DP3D_HPP_
#define MESHSLICE_CORE_DP3D_HPP_

#include <memory>
#include <vector>

#include "core/executor.hpp"
#include "core/spec.hpp"
#include "net/topology.hpp"

namespace meshslice {

/**
 * A rows x cols x depth torus: `depth` stacked 2D tori plus one depth
 * ring per (row, col) position. Chip (r, c, l) has index
 * l * rows * cols + r * cols + c.
 */
class Torus3D
{
  public:
    Torus3D(Cluster &cluster, int rows, int cols, int depth);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int depth() const { return depth_; }
    int chips() const { return rows_ * cols_ * depth_; }

    TorusMesh &layer(int l) { return *layers_.at(static_cast<size_t>(l)); }
    const Ring &depthRing(int r, int c) const
    {
        return depthRings_.at(static_cast<size_t>(r * cols_ + c));
    }

    Cluster &cluster() { return cluster_; }

  private:
    Cluster &cluster_;
    int rows_;
    int cols_;
    int depth_;
    std::vector<std::unique_ptr<TorusMesh>> layers_;
    std::vector<Ring> depthRings_;
};

/** Outcome of a 3D GeMM execution. */
struct Gemm3DResult
{
    Time time = 0.0;
    Flops flops = 0.0;
    CommStats intraLayer; ///< 2D-mesh communication (both directions)
    CommStats interLayer; ///< depth-ring communication

    double
    utilization(const ChipConfig &cfg, int chips) const
    {
        if (time <= 0.0)
            return 0.0;
        return flops / (time * cfg.peakFlops * static_cast<double>(chips));
    }
};

/**
 * MeshSlice+DP on @p torus: each layer executes @p algo (normally
 * kMeshSlice) on the per-layer spec (whose M must already be the
 * per-replica batch share), then the depth rings all-reduce
 * @p weight_grad_bytes of gradients per chip. Layers run concurrently.
 */
Gemm3DResult runMeshSliceDP(Torus3D &torus, Algorithm algo,
                            const Gemm2DSpec &layer_spec,
                            Bytes weight_grad_bytes);

/**
 * 2.5D GeMM of an (m x n, contracting k) product on @p torus. Requires
 * a square base mesh and depth | rows.
 */
Gemm3DResult run25DGemm(Torus3D &torus, std::int64_t m, std::int64_t k,
                        std::int64_t n, int bytes_per_element = 2);

} // namespace meshslice

#endif // MESHSLICE_CORE_DP3D_HPP_
