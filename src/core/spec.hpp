/**
 * @file
 * Specifications of distributed GeMM problems and their dataflow
 * geometry (Sec 2.3, Fig 1/2, Sec 3.1).
 *
 * A 2D GeMM computes an M x N output contracting a K dimension on a
 * `rows x cols` mesh. The dataflow fixes which matrix stays stationary
 * and how the other two move:
 *
 *  | dataflow | horizontal (row rings)  | vertical (col rings) | local iter GeMM      |
 *  |----------|-------------------------|----------------------|----------------------|
 *  | OS       | A (M*K), AllGather      | B (K*N), AllGather   | (M/Pr, K/S, N/Pc)    |
 *  | LS       | C (M*N), ReduceScatter  | B (K*N), AllGather   | (M/Pr, K/Pc, N/S)    |
 *  | RS       | A (M*K), AllGather      | C (M*N), ReduceScatter | (M/S, K/Pr, N/Pc)  |
 *
 * (The paper's `col`-subscripted ops are within-row = horizontal; the
 * `row`-subscripted ops are within-column = vertical.)
 */
#ifndef MESHSLICE_CORE_SPEC_HPP_
#define MESHSLICE_CORE_SPEC_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hw/chip_config.hpp"
#include "hw/compute_model.hpp"
#include "net/collectives.hpp"
#include "util/units.hpp"

namespace meshslice {

/** Which matrix of C = A * B stays stationary (Fig 1). */
enum class Dataflow { kOS, kLS, kRS };

const char *dataflowName(Dataflow df);

/**
 * Inverse of `dataflowName` for plan deserialization. Unknown names
 * are `fatal` with @p context naming the offending document.
 */
Dataflow dataflowFromName(std::string_view name,
                          const std::string &context);

/** The collective a moving matrix needs. */
enum class CollKind { kAllGather, kReduceScatter };

/** The distributed GeMM algorithms evaluated in the paper (Sec 4.2/4.3),
 *  plus the one-sided sliced GeMM (Brock & Golin) added on top. */
enum class Algorithm
{
    kMeshSlice,
    kCollective,
    kWang,
    kSumma,
    kCannon,
    kOneSided,
    kOneDTP,
    kFsdp,
};

const char *algorithmName(Algorithm algo);

/** Inverse of `algorithmName`; `fatal` on an unknown name. */
Algorithm algorithmFromName(std::string_view name,
                            const std::string &context);

/** The six 2D algorithms (Fig 9..12 baselines + OneSided). */
std::vector<Algorithm> all2DAlgorithms();

/** All eight algorithms including the 1D baselines. */
std::vector<Algorithm> allAlgorithms();

/** A 2D distributed GeMM problem instance. */
struct Gemm2DSpec
{
    std::int64_t m = 0; ///< output rows
    std::int64_t k = 0; ///< contraction dimension
    std::int64_t n = 0; ///< output columns
    Dataflow dataflow = Dataflow::kOS;
    int rows = 1;       ///< mesh rows (Pr)
    int cols = 1;       ///< mesh columns (Pc)
    int sliceCount = 1; ///< MeshSlice S (1 = Collective behaviour)
    int bytesPerElement = 2;

    int chips() const { return rows * cols; }
    Flops totalFlops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);
    }
    std::string str() const;
};

/**
 * Reject malformed 2D specs via `fatal()`: non-positive dimensions,
 * mesh factors or slice counts, and dimensions the dataflow's mesh /
 * slice partition does not divide evenly (which would silently drop
 * work to integer truncation). Called by `GemmExecutor::run`; safe to
 * call early from user-facing spec builders.
 */
void validateSpec(const Gemm2DSpec &spec);

/** One moving matrix: its full size and the collective it uses. */
struct FlowSide
{
    Bytes matrixBytes = 0;
    CollKind op = CollKind::kAllGather;
};

/** The matrix moving horizontally (on row rings of length `cols`). */
FlowSide horizontalFlow(const Gemm2DSpec &spec);

/** The matrix moving vertically (on column rings of length `rows`). */
FlowSide verticalFlow(const Gemm2DSpec &spec);

/** Bytes of the stationary matrix's per-chip shard. */
Bytes stationaryShardBytes(const Gemm2DSpec &spec);

/** Local GeMM computed per chip in one of the S loop iterations. */
GemmWork localSliceWork(const Gemm2DSpec &spec);

/**
 * The tensor dimension MeshSlice slices for this dataflow (K for OS,
 * N for LS, M for RS).
 */
std::int64_t slicedDim(const Gemm2DSpec &spec);

/**
 * Valid slice counts: divisors of the per-chip sliced extent divided by
 * the memory block size B (paper Sec 3.1.2), capped at @p max_s.
 */
std::vector<int> validSliceCounts(const ChipConfig &cfg,
                                  const Gemm2DSpec &spec, int max_s = 64);

/** A 1D distributed GeMM (1D TP or FSDP baseline, Sec 4.3). */
struct Gemm1DSpec
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    std::int64_t n = 0;
    /** Matrix communicated around the ring (activations for 1D TP,
     *  weights for FSDP). */
    Bytes commBytes = 0;
    /** True if the communication is a ReduceScatter (otherwise AG). */
    bool commIsReduce = false;
    int chips = 1;
    int sliceCount = 1;
    int bytesPerElement = 2;
    /** Per-chip local GeMM over the whole operation (set by builder:
     *  (m, k, n/chips) for 1D TP, (m/chips, k, n) for FSDP). */
    GemmWork local;

    GemmWork localWork() const { return local; }
    Flops totalFlops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);
    }
};

/** The 1D analogue of `validateSpec(Gemm2DSpec)` (used by
 *  `runGemm1D`). */
void validateSpec(const Gemm1DSpec &spec);

/** Outcome of one simulated distributed GeMM. */
struct GemmRunResult
{
    Time time = 0.0;
    Flops flops = 0.0;
    CommStats horizontal; ///< summed over iterations (max over rings)
    CommStats vertical;

    /**
     * Overlap-efficiency attribution (filled by `GemmExecutor::run` /
     * `runGemm1D` from the fluid network's core accounting):
     * `computeBusy` is the mean per-chip core busy-seconds during the
     * run; `exposedComm` is the wall time the cores sat idle — the
     * communication (and bubbles) the schedule failed to hide.
     */
    Time computeBusy = 0.0;
    Time exposedComm = 0.0;

    /** Achieved / peak throughput over the whole cluster. */
    double
    utilization(const ChipConfig &cfg, int chips) const
    {
        if (time <= 0.0)
            return 0.0;
        return flops / (time * cfg.peakFlops * static_cast<double>(chips));
    }

    /** Fraction of the run during which the cores were busy. */
    double
    computeBoundFraction() const
    {
        if (time <= 0.0)
            return 0.0;
        return computeBusy / time;
    }

    /** Fraction of the run during which the cores were idle (waiting
     *  on un-hidden communication or pipeline bubbles). */
    double
    commBoundFraction() const
    {
        return 1.0 - computeBoundFraction();
    }

    /**
     * Fraction of the issued communication wall time that was hidden
     * behind computation: 1 = fully overlapped (MeshSlice's goal),
     * 0 = fully exposed (the Collective baseline). Clamped to [0, 1].
     */
    double
    overlapEfficiency() const
    {
        const Time comm_wall = horizontal.total + vertical.total;
        if (comm_wall <= 0.0)
            return 1.0;
        const double eff = (comm_wall - exposedComm) / comm_wall;
        return eff < 0.0 ? 0.0 : (eff > 1.0 ? 1.0 : eff);
    }
};

} // namespace meshslice

#endif // MESHSLICE_CORE_SPEC_HPP_
