#include "core/dp3d.hpp"

#include <algorithm>

#include "core/mesh_ops.hpp"
#include "core/taskgraph.hpp"
#include "sim/join.hpp"
#include "util/logging.hpp"

namespace meshslice {

Torus3D::Torus3D(Cluster &cluster, int rows, int cols, int depth)
    : cluster_(cluster), rows_(rows), cols_(cols), depth_(depth)
{
    if (rows <= 0 || cols <= 0 || depth <= 0)
        panic("Torus3D: bad shape %dx%dx%d", rows, cols, depth);
    if (rows * cols * depth != cluster.numChips())
        panic("Torus3D: %dx%dx%d != %d chips", rows, cols, depth,
              cluster.numChips());
    for (int l = 0; l < depth; ++l)
        layers_.push_back(std::make_unique<TorusMesh>(
            cluster, rows, cols, l * rows * cols));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            Ring ring;
            for (int l = 0; l < depth; ++l)
                ring.chips.push_back(l * rows * cols + r * cols + c);
            for (int l = 0; l < depth; ++l) {
                ring.fwd.push_back(cluster.addLink(
                    strprintf("link.D+.r%d.c%d.l%d", r, c, l)));
                ring.bwd.push_back(cluster.addLink(
                    strprintf("link.D-.r%d.c%d.l%d", r, c, l)));
            }
            depthRings_.push_back(std::move(ring));
        }
    }
}

namespace {

/** Fan an operation out to every depth ring; join with merged stats. */
template <typename IssueFn>
void
allDepthRings(Torus3D &torus, CommDone done, IssueFn issue)
{
    struct Fanout
    {
        CommStats merged;
        CommDone done;
    };
    auto state = std::make_shared<Fanout>();
    state->done = std::move(done);
    const int rings = torus.rows() * torus.cols();
    Join *join = Join::create(rings, [state] { state->done(state->merged); });
    for (int r = 0; r < torus.rows(); ++r)
        for (int c = 0; c < torus.cols(); ++c)
            issue(torus.depthRing(r, c),
                  [state, join](const CommStats &stats) {
                      state->merged.mergeParallel(stats);
                      join->signal();
                  });
}

} // namespace

Gemm3DResult
runMeshSliceDP(Torus3D &torus, Algorithm algo,
               const Gemm2DSpec &layer_spec, Bytes weight_grad_bytes)
{
    Cluster &cluster = torus.cluster();
    Gemm3DResult out;
    GemmRunResult layer_accum;
    bool finished = false;

    TaskGraph graph(cluster.sim(), &cluster.profiler());
    // Layers are independent data-parallel replicas: their schedules
    // share the graph with no cross dependencies.
    for (int l = 0; l < torus.depth(); ++l)
        buildGemmSchedule(graph, torus.layer(l), algo, layer_spec,
                          &layer_accum);
    // The DP gradient all-reduce runs after every layer's GeMM. The
    // task graph has no explicit "whole layer" node, so chain it on a
    // barrier task depending on all tasks added so far: emulate by
    // starting the all-reduce from graph completion — instead, run the
    // graph, then the all-reduce, measuring both phases.
    const Time begin = cluster.sim().now();
    graph.start([&finished] { finished = true; });
    cluster.sim().run();
    if (!finished)
        panic("runMeshSliceDP: layer schedules did not drain");

    // DP all-reduce over the depth rings (weight-gradient sync).
    if (torus.depth() > 1 && weight_grad_bytes > 0) {
        bool dp_done = false;
        allDepthRings(
            torus,
            [&](const CommStats &stats) {
                out.interLayer += stats;
                dp_done = true;
            },
            [&](const Ring &ring, CommDone ring_done) {
                ringAllReduce(cluster, ring, weight_grad_bytes,
                              kLaneVerticalComm, std::move(ring_done));
            });
        cluster.sim().run();
        if (!dp_done)
            panic("runMeshSliceDP: all-reduce did not drain");
    }

    out.time = cluster.sim().now() - begin;
    out.flops = layer_accum.flops;
    out.intraLayer += layer_accum.horizontal;
    out.intraLayer += layer_accum.vertical;
    return out;
}

Gemm3DResult
run25DGemm(Torus3D &torus, std::int64_t m, std::int64_t k, std::int64_t n,
           int bytes_per_element)
{
    Cluster &cluster = torus.cluster();
    const int p = torus.rows();
    const int c_depth = torus.depth();
    if (torus.rows() != torus.cols())
        panic("run25DGemm: 2.5D requires a square base mesh, got %dx%d",
              torus.rows(), torus.cols());
    if (p % c_depth != 0)
        panic("run25DGemm: depth %d must divide the base dimension %d",
              c_depth, p);

    Gemm3DResult out;
    out.flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                static_cast<double>(n);
    GemmRunResult intra;

    const Bytes e = bytes_per_element;
    const Bytes chips2d = static_cast<Bytes>(p) * p;
    const Bytes shard_a = m * k * e / chips2d;
    const Bytes shard_b = k * n * e / chips2d;
    const Bytes shard_c = m * n * e / chips2d;
    const GemmWork iter_work{m / p, k / p, n / p};
    const int iterations = p / c_depth;

    TaskGraph graph(cluster.sim(), &cluster.profiler());
    bool finished = false;

    // Phase 1: replicate the A and B shards across the depth rings
    // (broadcast from layer 0 — the 2.5D "c copies of the inputs").
    int replicate_task = graph.addTask([&](std::function<void()> done) {
        allDepthRings(
            torus,
            [&out, done = std::move(done)](const CommStats &stats) {
                out.interLayer += stats;
                done();
            },
            [&](const Ring &ring, CommDone ring_done) {
                ringBroadcast(cluster, ring, 0, shard_a + shard_b,
                              c_depth, kLaneVerticalComm,
                              std::move(ring_done));
            });
    });

    // Phase 2 per layer: Cannon skew then `iterations` shifted
    // multiply-rotate steps (each layer starts from a different
    // rotation offset; timing is identical).
    auto shift_task = [&](int l, Dir dir, Bytes bytes) {
        return [&, l, dir, bytes](std::function<void()> done) {
            meshShift(torus.layer(l), dir, bytes, true,
                      [&intra, dir, done = std::move(done)](
                          const CommStats &stats) {
                          if (dir == Dir::kHorizontal)
                              intra.horizontal += stats;
                          else
                              intra.vertical += stats;
                          done();
                      });
        };
    };
    auto gemm_task = [&, iter_work](int l) {
        return [&, l, iter_work](std::function<void()> done) {
            meshGemm(torus.layer(l), iter_work, std::move(done));
        };
    };

    std::vector<int> reduce_deps;
    for (int l = 0; l < torus.depth(); ++l) {
        int prev_h = replicate_task;
        int prev_v = replicate_task;
        for (int h = 0; h < p / 2; ++h) {
            prev_h = graph.addTask(shift_task(l, Dir::kHorizontal,
                                              shard_a),
                                   {prev_h});
            prev_v = graph.addTask(shift_task(l, Dir::kVertical, shard_b),
                                   {prev_v});
        }
        int prev_comp = -1;
        for (int it = 0; it < iterations; ++it) {
            std::vector<int> deps{prev_h, prev_v};
            if (prev_comp >= 0)
                deps.push_back(prev_comp);
            prev_comp = graph.addTask(gemm_task(l), deps);
            if (it + 1 < iterations) {
                prev_h = graph.addTask(shift_task(l, Dir::kHorizontal,
                                                  shard_a),
                                       {prev_h});
                prev_v = graph.addTask(shift_task(l, Dir::kVertical,
                                                  shard_b),
                                       {prev_v});
            }
        }
        reduce_deps.push_back(prev_comp);
    }

    // Phase 3: reduce the partial C's over the depth rings.
    graph.addTask(
        [&](std::function<void()> done) {
            allDepthRings(
                torus,
                [&out, done = std::move(done)](const CommStats &stats) {
                    out.interLayer += stats;
                    done();
                },
                [&](const Ring &ring, CommDone ring_done) {
                    const int packets =
                        std::max(1, c_depth);
                    ringReduce(cluster, ring, 0, shard_c, packets,
                               kLaneVerticalComm, std::move(ring_done));
                });
        },
        reduce_deps);

    const Time begin = cluster.sim().now();
    graph.start([&finished] { finished = true; });
    cluster.sim().run();
    if (!finished)
        panic("run25DGemm: schedule did not drain");

    out.time = cluster.sim().now() - begin;
    out.intraLayer += intra.horizontal;
    out.intraLayer += intra.vertical;
    return out;
}

} // namespace meshslice
