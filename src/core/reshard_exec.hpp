/**
 * @file
 * Simulated re-shard: lowers a `ReshardPlan` onto the cluster's fluid
 * network instead of the closed-form `reshardTime` estimate.
 *
 * Every block movement becomes a fluid flow demanding the source
 * chip's egress NIC, the destination chip's ingress NIC (both sized by
 * `reshardChipRate`, the same four-links-in-parallel aggregate the
 * analytic model charges) and the two HBMs. Ingress/egress contention
 * and HBM sharing therefore *emerge* instead of being summarized by
 * the bottleneck chip, and the span recorder sees one reshard-transfer
 * node per move — which is how re-shard traffic shows up on the
 * critical path with a binding resource attached.
 *
 * Inside a recovery scope the recorded nodes are categorized as
 * recovery detours (like collectives' abort/retry path), so elastic
 * re-shard time attributes to `kRecovery` rather than `kComm`.
 */
#ifndef MESHSLICE_CORE_RESHARD_EXEC_HPP_
#define MESHSLICE_CORE_RESHARD_EXEC_HPP_

#include <functional>

#include "gemm/reshard.hpp"
#include "hw/cluster.hpp"

namespace meshslice {

/**
 * Execute @p plan on @p cluster's fluid network: one launch overhead,
 * all moves streaming concurrently, one closing barrier. Calls
 * @p done with the end-to-end simulated span (the caller still has to
 * drive `cluster.sim().run()`). Chip ids in the plan must exist on the
 * cluster. With a balanced plan the span agrees with
 * `reshardTime(cfg, plan)`; skewed plans and background traffic make
 * the simulated span the ground truth the analytic form approximates.
 */
void runReshard(Cluster &cluster, const ReshardPlan &plan,
                std::function<void(Time)> done);

} // namespace meshslice

#endif // MESHSLICE_CORE_RESHARD_EXEC_HPP_
