/**
 * @file
 * Simulated re-shard: lowers a `ReshardPlan` onto the cluster's fluid
 * network instead of the closed-form `reshardTime` estimate.
 *
 * Every block movement becomes a fluid flow demanding the source
 * chip's egress NIC, the destination chip's ingress NIC (both sized by
 * `reshardChipRate`, the same four-links-in-parallel aggregate the
 * analytic model charges) and the two HBMs. Ingress/egress contention
 * and HBM sharing therefore *emerge* instead of being summarized by
 * the bottleneck chip, and the span recorder sees one reshard-transfer
 * node per move — which is how re-shard traffic shows up on the
 * critical path with a binding resource attached.
 *
 * Inside a recovery scope the recorded nodes are categorized as
 * recovery detours (like collectives' abort/retry path), so elastic
 * re-shard time attributes to `kRecovery` rather than `kComm`.
 */
#ifndef MESHSLICE_CORE_RESHARD_EXEC_HPP_
#define MESHSLICE_CORE_RESHARD_EXEC_HPP_

#include <functional>

#include "gemm/reshard.hpp"
#include "hw/cluster.hpp"

namespace meshslice {

/**
 * Execute @p plan on @p cluster's fluid network: one launch overhead,
 * all moves streaming concurrently, one closing barrier. Calls
 * @p done with the end-to-end simulated span (the caller still has to
 * drive `cluster.sim().run()`). Chip ids in the plan must exist on the
 * cluster. With a balanced plan the span agrees with
 * `reshardTime(cfg, plan)`; skewed plans and background traffic make
 * the simulated span the ground truth the analytic form approximates.
 */
void runReshard(Cluster &cluster, const ReshardPlan &plan,
                std::function<void(Time)> done);

/**
 * Recovery-transaction variant of `runReshard`: @p dead_chip died and
 * cannot source its blocks over the ICI, so every move whose source is
 * the corpse instead streams from the checkpoint target — a shared
 * `ckpt.restore` resource registered at @p restore_bandwidth (the
 * host-DMA/DCN path the checkpoint was written through), demanding
 * only the destination side's ingress NIC and HBM. Moves between
 * surviving chips (including the retired line's healthy spares) run on
 * real links exactly as in `runReshard`. Call inside a recovery scope
 * so the profiler attributes the transfers to `kRecovery`.
 */
void runRecoveryReshard(Cluster &cluster, const ReshardPlan &plan,
                        int dead_chip, Rate restore_bandwidth,
                        std::function<void(Time)> done);

/** Timed checkpoint emitted by the elastic runtime at the Young–Daly
 *  interval. */
struct CheckpointSpec
{
    /** Bytes each chip streams out (optimizer + weight shards). */
    Bytes bytesPerChip = 0;
    /** Aggregate ingest bandwidth of the checkpoint target (the shared
     *  `ckpt.target` resource all per-chip write flows contend on). */
    Rate targetBandwidth = 0.0;
};

/**
 * Execute one checkpoint on @p cluster: a launch overhead, then one
 * flow per chip demanding the chip's HBM plus the shared checkpoint
 * target, then a closing barrier of one sync latency. Calls @p done
 * with the end-to-end span (the caller drives `cluster.sim().run()`).
 * All recorded span nodes carry the `kCheckpoint` category, so
 * checkpoint traffic is a first-class slice of the critical-path
 * attribution. The write also leaves each chip's checkpoint copy in
 * local HBM — which is why a later recovery re-shard can source
 * survivor blocks over real links and only the corpse's blocks from
 * the target (`runRecoveryReshard`).
 */
void runCheckpoint(Cluster &cluster, const CheckpointSpec &spec,
                   std::function<void(Time)> done);

} // namespace meshslice

#endif // MESHSLICE_CORE_RESHARD_EXEC_HPP_
