#include "core/recovery_study.hpp"

#include <cmath>

#include "hw/cluster.hpp"
#include "net/topology.hpp"
#include "util/logging.hpp"

namespace meshslice {

Time
checkpointWriteTime(const ChipConfig &cfg, Bytes bytes_per_chip)
{
    if (bytes_per_chip <= 0)
        fatal("checkpointWriteTime: checkpoint state must be positive "
              "(got %lld bytes per chip)",
              static_cast<long long>(bytes_per_chip));
    return static_cast<double>(bytes_per_chip) / cfg.hostDmaBandwidth;
}

namespace {

/** Fatal unless the goodput model is well-posed (C > 0, M > 0, D >= 0). */
void
validateGoodputModel(const GoodputModel &m, const char *who)
{
    if (!(m.checkpointWrite > 0.0))
        fatal("%s: checkpointWrite must be positive (got %g s) — a free "
              "checkpoint makes the optimal interval zero and the model "
              "degenerate", who, m.checkpointWrite);
    if (!(m.mtbf > 0.0))
        fatal("%s: mtbf must be positive (got %g s)", who, m.mtbf);
    if (m.downtime < 0.0)
        fatal("%s: downtime must be >= 0 (got %g s)", who, m.downtime);
}

} // namespace

double
goodputAt(const GoodputModel &m, Time tau)
{
    validateGoodputModel(m, "goodputAt");
    if (!(tau > 0.0))
        fatal("goodputAt: checkpoint interval must be positive (got %g s)",
              tau);
    // One segment: tau useful seconds plus the checkpoint write, then
    // in expectation (tau+C)/M failures, each costing D downtime plus
    // half the segment's wall redone.
    const Time s = tau + m.checkpointWrite;
    const Time wall = s * (1.0 + (m.downtime + s / 2.0) / m.mtbf);
    return tau / wall;
}

Time
youngDalyInterval(const GoodputModel &m)
{
    validateGoodputModel(m, "youngDalyInterval");
    const Time c = m.checkpointWrite;
    // d/dtau of tau / [(tau+C)(1 + (D + (tau+C)/2)/M)] = 0
    //   =>  tau^2 + 2*C*tau - (C^2 + 2C(M + D)) + ... collapses to
    //   (tau+C)^2 = 2C(M + D) + 2C^2  =>  tau* = sqrt(C^2 + 2C(M+D)).
    return std::sqrt(c * c + 2.0 * c * (m.mtbf + m.downtime));
}

TrainingGoodput
evaluateTrainingRun(const ChipConfig &cfg, const TrainingRunModel &run)
{
    if (run.chips < 1)
        fatal("evaluateTrainingRun: need at least one chip (got %d)",
              run.chips);
    if (!(run.chipMtbf > 0.0))
        fatal("evaluateTrainingRun: chipMtbf must be positive (got %g s)",
              run.chipMtbf);
    if (run.detectionLatency < 0.0 || run.restartTime < 0.0 ||
        run.reshardTime < 0.0)
        fatal("evaluateTrainingRun: detectionLatency (%g s), restartTime "
              "(%g s) and reshardTime (%g s) must all be >= 0",
              run.detectionLatency, run.restartTime, run.reshardTime);

    GoodputModel m;
    m.checkpointWrite =
        checkpointWriteTime(cfg, run.checkpointBytesPerChip);
    // The job fails when any chip does: the minimum of `chips`
    // independent exponentials is exponential with 1/chips the mean.
    m.mtbf = run.chipMtbf / static_cast<double>(run.chips);
    m.downtime = run.detectionLatency + run.restartTime + run.reshardTime;

    TrainingGoodput out;
    out.checkpointWrite = m.checkpointWrite;
    out.jobMtbf = m.mtbf;
    out.downtime = m.downtime;
    out.optimalInterval = youngDalyInterval(m);
    out.goodput = goodputAt(m, out.optimalInterval);
    return out;
}

CollectiveRecoveryResult
runCollectiveRecovery(const ChipConfig &cfg, int rows, int cols,
                      Bytes shard_bytes, const FaultScenario *scenario,
                      RingCollectiveKind kind, bool row_ring, int index)
{
    Cluster cluster(cfg, rows * cols);
    TorusMesh mesh(cluster, rows, cols);
    // Same idiom as runGemmUnderScenario: the injector object exists on
    // both paths but is armed only when a scenario is supplied, so the
    // fault-free run takes bit-identical code paths.
    FaultInjector injector(cluster.sim(), cluster.net(),
                           scenario ? *scenario : FaultScenario{});
    if (scenario) {
        injector.arm();
        cluster.attachFaults(&injector);
    }

    CollectiveRecoveryResult result;
    bool finished = false;
    runRecoverableCollective(
        mesh, kind, row_ring, index, shard_bytes,
        row_ring ? kLaneHorizontalComm : kLaneVerticalComm,
        [&](const RecoveryOutcome &out) {
            result.stats = out.stats;
            result.retried = out.retried;
            result.error = out.error;
            result.totalTime = out.totalTime;
            finished = true;
        });
    result.finalTime = cluster.sim().run();
    if (!finished)
        fatal("runCollectiveRecovery: the collective never completed — "
              "the event queue drained at %g s without the recovery "
              "transaction finishing", result.finalTime);
    result.eventsProcessed = cluster.sim().eventsProcessed();
    cluster.collectResourceStats(cluster.stats());
    result.statsJson = cluster.stats().toJson();
    return result;
}

ElasticWallPrediction
predictElasticWall(const ElasticPredictionInput &in)
{
    if (in.steps <= 0)
        fatal("predictElasticWall: steps must be positive (got %d)",
              in.steps);
    if (!(in.stepTime > 0.0))
        fatal("predictElasticWall: stepTime must be positive (got %g)",
              in.stepTime);

    ElasticWallPrediction out;
    out.usefulTime = in.steps * in.stepTime;

    // Walk the elastic runtime's state machine with estimates in place
    // of simulated phases. One pass, single-kill: after recovery the
    // kill can't fire again.
    Time wall = 0.0;
    Time since_ckpt = 0.0; // useful seconds since the last checkpoint
    int step = 0;
    int committed_at_ckpt = 0; // steps safe in the last checkpoint
    bool faulted = false;
    const bool has_kill = in.killTime >= 0.0;

    while (step < in.steps) {
        const Time t_step = faulted ? in.survivorStepTime : in.stepTime;
        if (!faulted && has_kill && in.killTime < wall + t_step) {
            // The kill lands inside this step (or a checkpoint that
            // preceded it — the runtime aborts whichever phase is
            // live). Recovery: detect, re-plan, re-shard + restore,
            // roll back to the last checkpoint.
            wall = in.killTime + in.detectionLatency + in.replanTime +
                   in.reshardTime;
            out.redoneSteps = step - committed_at_ckpt;
            step = committed_at_ckpt;
            since_ckpt = 0.0;
            faulted = true;
            out.recovered = true;
            continue;
        }
        wall += t_step;
        since_ckpt += t_step;
        ++step;
        if (step < in.steps && in.checkpointInterval > 0.0 &&
            since_ckpt >= in.checkpointInterval) {
            const Time c = faulted ? in.survivorCheckpointCost
                                   : in.checkpointCost;
            if (!faulted && has_kill && in.killTime < wall + c) {
                wall = in.killTime + in.detectionLatency + in.replanTime +
                       in.reshardTime;
                out.redoneSteps = step - committed_at_ckpt;
                step = committed_at_ckpt;
                since_ckpt = 0.0;
                faulted = true;
                out.recovered = true;
                continue;
            }
            wall += c;
            ++out.checkpoints;
            committed_at_ckpt = step;
            since_ckpt = 0.0;
        }
    }

    out.wall = wall;
    out.goodput = out.usefulTime / wall;
    return out;
}

} // namespace meshslice
