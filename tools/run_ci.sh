#!/usr/bin/env bash
# Full CI sweep: builds the Release, ThreadSanitizer and
# AddressSanitizer configurations, runs ctest on each, and validates
# every BENCH_*.json artifact via the `check-json` target of the
# Release build — including the smoke run of the sim-throughput
# microbenchmark, whose BENCH_kernels.json must carry a valid
# sim_throughput section (batched-accounting identity and
# thread-count-invariant robust picks are checked inside it). Every
# ctest pass also runs the `sim-throughput-smoke`- and
# `profiler-smoke`-labelled tests, so the concurrent-candidate path
# and the critical-path recorder execute under both sanitizers. The
# release leg finishes with a bench-diff report: the smoke BENCH
# artifacts are regenerated and compared against the previous run's
# via tools/bench_diff.py (throughput keys gated at 20%, embedded
# cross-checks must stay true).
#
# Usage: tools/run_ci.sh [build-root]
#   build-root defaults to ./build-ci; one subdirectory per config.
#
# Environment:
#   CTEST_PARALLEL  parallel test jobs (default: nproc)
#   CONFIGS         space-separated subset of "release thread address"
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
root=${1:-"$repo/build-ci"}
jobs=${CTEST_PARALLEL:-$(nproc)}
configs=${CONFIGS:-"release thread address"}

failures=()

build_and_test() {
    local name=$1
    shift
    local dir="$root/$name"
    echo "=== [$name] configure ==="
    cmake -S "$repo" -B "$dir" "$@" > "$dir-configure.log" 2>&1 ||
        { echo "configure failed (see $dir-configure.log)"; return 1; }
    echo "=== [$name] build ==="
    cmake --build "$dir" -j "$jobs" > "$dir-build.log" 2>&1 ||
        { echo "build failed (see $dir-build.log)"; return 1; }
    echo "=== [$name] ctest ==="
    # --timeout is the per-test watchdog: a wedged simulation (e.g. an
    # elastic run that never drains) fails its one test instead of
    # hanging the whole CI leg. Individual tests may still set tighter
    # TIMEOUT properties of their own.
    (cd "$dir" && ctest -j "$jobs" --timeout 900 --output-on-failure)
}

mkdir -p "$root"

for config in $configs; do
    case "$config" in
      release)
        if build_and_test release \
               -DCMAKE_BUILD_TYPE=Release -DMESHSLICE_SANITIZE=; then
            echo "=== [release] check-json (BENCH_*.json artifacts) ==="
            cmake --build "$root/release" --target check-json ||
                failures+=("release/check-json")
            # Bench-diff report: regenerate the profiler/kernel/
            # elastic/plan-server smoke artifacts and diff them
            # against the previous CI run's
            # (seeded on the first run; override the baseline location
            # with BENCH_BASELINE_DIR). Gates throughput keys and the
            # embedded cross-checks via tools/bench_diff.py.
            echo "=== [release] bench-diff (vs previous run) ==="
            artifacts="$root/release/bench-artifacts"
            baseline="${BENCH_BASELINE_DIR:-$root/bench-baseline}"
            mkdir -p "$artifacts"
            if (cd "$artifacts" &&
                "$root/release/bench/explain_report" --smoke \
                    > explain_report.out &&
                "$root/release/bench/micro_kernels" --smoke \
                    > micro_kernels.out &&
                "$root/release/bench/elastic_report" --smoke \
                    > elastic_report.out &&
                "$root/release/bench/plan_server_report" --smoke \
                    > plan_server_report.out); then
                if ls "$baseline"/BENCH_*.json > /dev/null 2>&1; then
                    for f in "$artifacts"/BENCH_*.json; do
                        name=$(basename "$f")
                        [ -f "$baseline/$name" ] || continue
                        python3 "$repo/tools/bench_diff.py" \
                            "$baseline/$name" "$f" ||
                            failures+=("release/bench-diff:$name")
                    done
                else
                    echo "no baseline in $baseline; seeding from this run"
                fi
                mkdir -p "$baseline"
                cp "$artifacts"/BENCH_*.json "$baseline"/
            else
                failures+=("release/bench-artifacts")
            fi
        else
            failures+=("release")
        fi
        ;;
      thread)
        # TSan slows the simulator ~10x; the suite still finishes in
        # minutes. MESHSLICE_THREADS is left alone so the thread pool
        # actually exercises cross-thread access.
        build_and_test thread \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DMESHSLICE_SANITIZE=thread || failures+=("thread")
        ;;
      address)
        build_and_test address \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DMESHSLICE_SANITIZE=address || failures+=("address")
        ;;
      *)
        echo "unknown config '$config' (want: release thread address)"
        failures+=("$config")
        ;;
    esac
done

echo
if [ ${#failures[@]} -gt 0 ]; then
    echo "CI FAILED: ${failures[*]}"
    exit 1
fi
echo "CI OK: all configs passed ($configs)"
