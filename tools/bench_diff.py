#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag regressions.

Walks both documents and pairs up every leaf by its JSON path:

  - throughput-like numeric leaves (key contains "per_sec" or
    "throughput" — steps_per_sec, sim events/sec, the plan server's
    plans_per_sec_cold/warm) are *gated*: the current value may not
    fall more than --threshold (default 20%) below the baseline,
    host-speed noise being the reason the bar is not tighter;
  - boolean leaves that were true in the baseline (the cross_checks /
    identity_check sections: attribution identity, what-if validation,
    bit-identical-off, ...) must still be true — a check that
    regresses to false fails the diff regardless of threshold;
  - every other shared numeric leaf (simulated spans, category
    attributions, node counts) is reported by relative delta but not
    gated, since simulated quantities are deterministic and expected
    to move only when the model intentionally changes;
  - added/removed paths are listed informationally.

Exit status: 0 = no regressions, 1 = regression, 2 = usage/IO error.

Usage: bench_diff.py <baseline.json> <current.json> [--threshold 0.2]
                     [--top 20]
"""

import argparse
import json
import sys

THROUGHPUT_MARKERS = ("per_sec", "throughput")


def flatten(doc, prefix=""):
    """Yield (path, leaf) for every scalar leaf of a JSON document."""
    if isinstance(doc, dict):
        for key, val in doc.items():
            yield from flatten(val, f"{prefix}{key}." if prefix or key
                               else prefix)
    elif isinstance(doc, list):
        for i, val in enumerate(doc):
            yield from flatten(val, f"{prefix}{i}.")
    else:
        yield prefix[:-1], doc


def load(path):
    try:
        with open(path) as fh:
            return dict(flatten(json.load(fh)))
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_diff: cannot read {path}: {exc}")


def is_number(val):
    return isinstance(val, (int, float)) and not isinstance(val, bool)


def rel_delta(base, cur):
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return (cur - base) / abs(base)


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="max relative drop for throughput keys "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--top", type=int, default=20,
                        help="ungated numeric deltas to print")
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    base = load(args.baseline)
    cur = load(args.current)

    shared = sorted(base.keys() & cur.keys())
    added = sorted(cur.keys() - base.keys())
    removed = sorted(base.keys() - cur.keys())

    failures = []
    gated_rows = []
    other_rows = []
    for path in shared:
        b, c = base[path], cur[path]
        if isinstance(b, bool) or isinstance(c, bool):
            if b is True and c is not True:
                failures.append(f"check regressed to false: {path}")
            continue
        if not (is_number(b) and is_number(c)):
            if b != c:
                other_rows.append((float("inf"), path, b, c))
            continue
        delta = rel_delta(b, c)
        if any(m in path for m in THROUGHPUT_MARKERS):
            gated_rows.append((delta, path, b, c))
            if delta < -args.threshold:
                failures.append(
                    f"throughput regression: {path} "
                    f"{b:.6g} -> {c:.6g} ({delta * 100:+.1f}%, "
                    f"limit -{args.threshold * 100:.0f}%)")
        elif delta != 0.0:
            other_rows.append((abs(delta), path, b, c))

    print(f"bench_diff: {args.baseline} -> {args.current} "
          f"({len(shared)} shared leaves)")
    if gated_rows:
        print(f"\ngated throughput keys (limit "
              f"-{args.threshold * 100:.0f}%):")
        for delta, path, b, c in sorted(gated_rows, key=lambda r: r[0]):
            print(f"  {delta * 100:+8.1f}%  {path}  "
                  f"{b:.6g} -> {c:.6g}")
    if other_rows:
        other_rows.sort(key=lambda r: r[0], reverse=True)
        print(f"\nlargest ungated deltas (top {args.top}):")
        for _, path, b, c in other_rows[:args.top]:
            print(f"  {path}  {b!r} -> {c!r}")
    if added:
        print(f"\nadded paths ({len(added)}):")
        for path in added[:args.top]:
            print(f"  + {path}")
    if removed:
        print(f"\nremoved paths ({len(removed)}):")
        for path in removed[:args.top]:
            print(f"  - {path}")

    if failures:
        print(f"\nFAIL ({len(failures)}):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nOK: no throughput or cross-check regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
