#!/usr/bin/env bash
# Runs the observability report (and, when given, the robustness,
# recovery and pipeline reports) in a scratch directory and validates
# every JSON artifact they produce with `python3 -m json.tool`, plus
# per-line checks of the JSONL search traces. A missing-but-expected
# artifact is a failure. Reports run in `--smoke` mode (shrunken
# sweeps, same JSON schema) to keep the tier-1 `check_json` ctest and
# the `check-json` build target fast.
#
# Usage: check_json.sh <observability_report> [robustness_report]
#        [recovery_report] [pipeline_report] [chips]
set -euo pipefail

bin=$(readlink -f "$1")
shift
robust_bin=""
recovery_bin=""
pipeline_bin=""
chips=16
for arg in "$@"; do
    if [ -f "$arg" ] && [ -x "$arg" ]; then
        if [ -z "$robust_bin" ]; then
            robust_bin=$(readlink -f "$arg")
        elif [ -z "$recovery_bin" ]; then
            recovery_bin=$(readlink -f "$arg")
        elif [ -z "$pipeline_bin" ]; then
            pipeline_bin=$(readlink -f "$arg")
        else
            echo "check_json.sh: too many report binaries: $arg" >&2
            exit 2
        fi
    else
        chips=$arg
    fi
done
python3=${PYTHON3:-python3}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$bin" "$chips" --smoke > report.out

status=0
check_file() {
    local f=$1
    if [ ! -f "$f" ]; then
        echo "FAIL $f was not produced"
        status=1
    elif "$python3" -m json.tool "$f" > /dev/null; then
        echo "ok   $f"
    else
        echo "FAIL $f is not valid JSON"
        status=1
    fi
}

# JSONL: every non-empty line must be its own JSON document.
check_jsonl() {
    local f=$1
    if [ ! -f "$f" ]; then
        echo "FAIL $f was not produced"
        status=1
        return
    fi
    if "$python3" - "$f" <<'EOF'
import json, sys

path = sys.argv[1]
lines = 0
with open(path) as fh:
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError as exc:
            sys.exit("%s:%d: %s" % (path, lineno, exc))
        lines += 1
if lines == 0:
    sys.exit("%s: no records" % path)
EOF
    then
        echo "ok   $f"
    else
        echo "FAIL $f"
        status=1
    fi
}

for f in BENCH_observability.json observability_trace.json \
         observability_stats.json; do
    check_file "$f"
done
check_jsonl tuner_search.jsonl

if [ -n "$robust_bin" ]; then
    "$robust_bin" "$chips" --smoke > robust_report.out
    for f in BENCH_robustness.json robustness_scenario.json; do
        check_file "$f"
    done
    check_jsonl robust_search.jsonl
fi

if [ -n "$recovery_bin" ]; then
    "$recovery_bin" "$chips" --smoke > recovery_report.out
    for f in BENCH_recovery.json recovery_scenario.json; do
        check_file "$f"
    done
    check_jsonl recovery_search.jsonl
fi

if [ -n "$pipeline_bin" ]; then
    # The pipeline report sizes its own clusters (GPT-3 vs Megatron-NLG
    # need different factorizations), so it runs at its built-in default
    # chip count rather than the shared positional one.
    "$pipeline_bin" --smoke > pipeline_report.out
    check_file BENCH_pipeline.json
    check_jsonl pipeline_search.jsonl
    # The report embeds its own acceptance cross-checks; surface them.
    if "$python3" - BENCH_pipeline.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
checks = doc.get("cross_checks", {})
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_pipeline.json cross-checks failed: %s" % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_pipeline.json cross-checks"
    else
        echo "FAIL BENCH_pipeline.json cross-checks"
        status=1
    fi
fi

exit $status
