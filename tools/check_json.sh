#!/usr/bin/env bash
# Runs the observability report in a scratch directory and validates
# every JSON artifact it produces with `python3 -m json.tool`, plus a
# per-line check of the JSONL search trace. Used by the `check_json`
# ctest and the `check-json` build target.
#
# Usage: check_json.sh <path-to-observability_report> [chips]
set -euo pipefail

bin=$(readlink -f "$1")
chips=${2:-16}
python3=${PYTHON3:-python3}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$bin" "$chips" > report.out

status=0
for f in BENCH_observability.json observability_trace.json \
         observability_stats.json; do
    if [ ! -f "$f" ]; then
        echo "FAIL $f was not produced"
        status=1
    elif "$python3" -m json.tool "$f" > /dev/null; then
        echo "ok   $f"
    else
        echo "FAIL $f is not valid JSON"
        status=1
    fi
done

# JSONL: every non-empty line must be its own JSON document.
if "$python3" - tuner_search.jsonl <<'EOF'
import json, sys

path = sys.argv[1]
lines = 0
with open(path) as fh:
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError as exc:
            sys.exit("%s:%d: %s" % (path, lineno, exc))
        lines += 1
if lines == 0:
    sys.exit("%s: no records" % path)
EOF
then
    echo "ok   tuner_search.jsonl"
else
    echo "FAIL tuner_search.jsonl"
    status=1
fi

exit $status
