#!/usr/bin/env bash
# Runs the observability report (and, when given, the robustness,
# recovery, pipeline, explain, micro-kernel, one-sided and elastic
# reports) in a scratch directory
# and validates every JSON artifact they produce with
# `python3 -m json.tool`, plus per-line checks of the JSONL search
# traces. A missing-but-expected artifact is a failure — including a
# BENCH_kernels.json without its sim_throughput section. Reports run
# in `--smoke` mode (shrunken sweeps, same JSON schema) to keep the
# tier-1 `check_json` ctest and the `check-json` build target fast.
#
# Usage: check_json.sh <observability_report> [robustness_report]
#        [recovery_report] [pipeline_report] [explain_report]
#        [micro_kernels] [onesided_report] [elastic_report]
#        [plan_server_report] [chips]
set -euo pipefail

bin=$(readlink -f "$1")
shift
robust_bin=""
recovery_bin=""
pipeline_bin=""
explain_bin=""
micro_bin=""
onesided_bin=""
elastic_bin=""
planserver_bin=""
chips=16
for arg in "$@"; do
    if [ -f "$arg" ] && [ -x "$arg" ]; then
        if [ -z "$robust_bin" ]; then
            robust_bin=$(readlink -f "$arg")
        elif [ -z "$recovery_bin" ]; then
            recovery_bin=$(readlink -f "$arg")
        elif [ -z "$pipeline_bin" ]; then
            pipeline_bin=$(readlink -f "$arg")
        elif [ -z "$explain_bin" ]; then
            explain_bin=$(readlink -f "$arg")
        elif [ -z "$micro_bin" ]; then
            micro_bin=$(readlink -f "$arg")
        elif [ -z "$onesided_bin" ]; then
            onesided_bin=$(readlink -f "$arg")
        elif [ -z "$elastic_bin" ]; then
            elastic_bin=$(readlink -f "$arg")
        elif [ -z "$planserver_bin" ]; then
            planserver_bin=$(readlink -f "$arg")
        else
            echo "check_json.sh: too many report binaries: $arg" >&2
            exit 2
        fi
    else
        chips=$arg
    fi
done
python3=${PYTHON3:-python3}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$bin" "$chips" --smoke > report.out

status=0
check_file() {
    local f=$1
    if [ ! -f "$f" ]; then
        echo "FAIL $f was not produced"
        status=1
    elif "$python3" -m json.tool "$f" > /dev/null; then
        echo "ok   $f"
    else
        echo "FAIL $f is not valid JSON"
        status=1
    fi
}

# JSONL: every non-empty line must be its own JSON document.
check_jsonl() {
    local f=$1
    if [ ! -f "$f" ]; then
        echo "FAIL $f was not produced"
        status=1
        return
    fi
    if "$python3" - "$f" <<'EOF'
import json, sys

path = sys.argv[1]
lines = 0
with open(path) as fh:
    for lineno, line in enumerate(fh, 1):
        line = line.strip()
        if not line:
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError as exc:
            sys.exit("%s:%d: %s" % (path, lineno, exc))
        lines += 1
if lines == 0:
    sys.exit("%s: no records" % path)
EOF
    then
        echo "ok   $f"
    else
        echo "FAIL $f"
        status=1
    fi
}

for f in BENCH_observability.json observability_trace.json \
         observability_stats.json; do
    check_file "$f"
done
check_jsonl tuner_search.jsonl

if [ -n "$robust_bin" ]; then
    "$robust_bin" "$chips" --smoke > robust_report.out
    for f in BENCH_robustness.json robustness_scenario.json; do
        check_file "$f"
    done
    check_jsonl robust_search.jsonl
fi

if [ -n "$recovery_bin" ]; then
    "$recovery_bin" "$chips" --smoke > recovery_report.out
    for f in BENCH_recovery.json recovery_scenario.json; do
        check_file "$f"
    done
    check_jsonl recovery_search.jsonl
fi

if [ -n "$pipeline_bin" ]; then
    # The pipeline report sizes its own clusters (GPT-3 vs Megatron-NLG
    # need different factorizations), so it runs at its built-in default
    # chip count rather than the shared positional one.
    "$pipeline_bin" --smoke > pipeline_report.out
    check_file BENCH_pipeline.json
    check_jsonl pipeline_search.jsonl
    # The report embeds its own acceptance cross-checks; surface them.
    if "$python3" - BENCH_pipeline.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
checks = doc.get("cross_checks", {})
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_pipeline.json cross-checks failed: %s" % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_pipeline.json cross-checks"
    else
        echo "FAIL BENCH_pipeline.json cross-checks"
        status=1
    fi
fi

if [ -n "$explain_bin" ]; then
    "$explain_bin" "$chips" --smoke > explain_report.out
    check_file BENCH_explain.json
    check_file explain_trace.json
    check_jsonl explain_search.jsonl
    # The profiler report embeds its own acceptance cross-checks
    # (attribution identity, what-if validation, bit-identical-off,
    # disabled overhead); every one must hold.
    if "$python3" - BENCH_explain.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
checks = doc.get("cross_checks", {})
if not checks:
    sys.exit("BENCH_explain.json: missing cross_checks section")
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_explain.json cross-checks failed: %s" % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_explain.json cross-checks"
    else
        echo "FAIL BENCH_explain.json cross-checks"
        status=1
    fi
fi

if [ -n "$micro_bin" ]; then
    # The micro-kernel bench's positional argument is the GeMM dim,
    # not a chip count; --smoke picks its own sizes.
    "$micro_bin" --smoke > micro_kernels.out
    check_file BENCH_kernels.json
    # The sim_throughput section (parallel-simulation PR) must be
    # present, with the bench's own identity/determinism checks true.
    if "$python3" - BENCH_kernels.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
sim = doc.get("sim_throughput")
if sim is None:
    sys.exit("BENCH_kernels.json: missing sim_throughput section")
for key in ("batched", "eager", "identity_check", "candidates"):
    if key not in sim:
        sys.exit("BENCH_kernels.json: sim_throughput missing %r" % key)
checks = {
    "identical_time": sim["identity_check"].get("identical_time"),
    "identical_events": sim["identity_check"].get("identical_events"),
    "picks_identical": sim["candidates"].get("picks_identical"),
}
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_kernels.json sim_throughput checks failed: %s"
             % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_kernels.json sim_throughput"
    else
        echo "FAIL BENCH_kernels.json sim_throughput"
        status=1
    fi
fi

if [ -n "$onesided_bin" ]; then
    "$onesided_bin" "$chips" --smoke > onesided_report.out
    check_file BENCH_onesided.json
    check_jsonl onesided_search.jsonl
    # The one-sided report embeds its own acceptance cross-checks
    # (functional identity, fault-free parity, straggler dominance,
    # kill bounded by one detection, robust pick flip); every one must
    # hold.
    if "$python3" - BENCH_onesided.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
checks = doc.get("cross_checks", {})
if not checks:
    sys.exit("BENCH_onesided.json: missing cross_checks section")
for key in ("functional_identity", "faultfree_parity",
            "straggler_dominance", "kill_bounded_by_one_detection",
            "robust_pick_flip"):
    if key not in checks:
        sys.exit("BENCH_onesided.json: cross_checks missing %r" % key)
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_onesided.json cross-checks failed: %s" % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_onesided.json cross-checks"
    else
        echo "FAIL BENCH_onesided.json cross-checks"
        status=1
    fi
fi

if [ -n "$elastic_bin" ]; then
    "$elastic_bin" "$chips" --smoke > elastic_report.out
    for f in BENCH_elastic.json elastic_scenario.json \
             elastic_stats.json; do
        check_file "$f"
    done
    check_jsonl elastic_trace.jsonl
    # The elastic report embeds its own acceptance cross-checks
    # (fault-free bit-identity with the plain step loop, measured
    # goodput within the analytic model-error band, goodput monotone
    # in MTBF, bit-exact functional state, byte-identical seeded
    # replay); every one must hold.
    if "$python3" - BENCH_elastic.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
checks = doc.get("cross_checks", {})
if not checks:
    sys.exit("BENCH_elastic.json: missing cross_checks section")
for key in ("faultfree_bit_identity", "goodput_within_band",
            "goodput_monotone_mtbf", "functional_identity",
            "replay_bit_identical"):
    if key not in checks:
        sys.exit("BENCH_elastic.json: cross_checks missing %r" % key)
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_elastic.json cross-checks failed: %s" % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_elastic.json cross-checks"
    else
        echo "FAIL BENCH_elastic.json cross-checks"
        status=1
    fi
fi

if [ -n "$planserver_bin" ]; then
    "$planserver_bin" "$chips" --smoke > plan_server_report.out
    for f in BENCH_planserver.json plan_server_cache.json; do
        check_file "$f"
    done
    # The plan-serving report embeds its own acceptance cross-checks
    # (warm hits byte-identical to the cold serve, incremental re-tune
    # bit-identical to the cold full tune, thread-count invariance, the
    # promised >= 5x warm speedup, persistence round-trip); every one
    # must hold.
    if "$python3" - BENCH_planserver.json <<'EOF'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
checks = doc.get("cross_checks", {})
if not checks:
    sys.exit("BENCH_planserver.json: missing cross_checks section")
for key in ("warm_hit_identical", "incremental_equals_full",
            "thread_invariant", "warm_speedup_5x", "persist_roundtrip"):
    if key not in checks:
        sys.exit("BENCH_planserver.json: cross_checks missing %r" % key)
bad = [k for k, v in checks.items() if v is not True]
if bad:
    sys.exit("BENCH_planserver.json cross-checks failed: %s"
             % ", ".join(bad))
EOF
    then
        echo "ok   BENCH_planserver.json cross-checks"
    else
        echo "FAIL BENCH_planserver.json cross-checks"
        status=1
    fi
fi

exit $status
