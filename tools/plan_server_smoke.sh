#!/usr/bin/env bash
# Smoke test of the plan_server example: serves a small NDJSON query
# batch (a cold tune, an identical repeat and a fault-profile variant)
# in a scratch directory, checks every response line is valid JSON in
# input order, and re-serves the same batch from the persisted cache to
# verify the warm-started responses carry byte-identical plans.
#
# Usage: plan_server_smoke.sh <plan_server-binary>
set -euo pipefail

bin=$(readlink -f "$1")
python3=${PYTHON3:-python3}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

cat > queries.ndjson <<'EOF'
{"id": "cold", "model": {"name": "smoke-1b", "layers": 4, "hiddenDim": 2048, "heads": 16, "ffnDim": 8192}, "chips": 16, "robust": {"topK": 2, "numScenarios": 2, "maxGemmsPerEval": 2, "seed": 7}}
{"id": "repeat", "model": {"name": "smoke-1b", "layers": 4, "hiddenDim": 2048, "heads": 16, "ffnDim": 8192}, "chips": 16, "robust": {"topK": 2, "numScenarios": 2, "maxGemmsPerEval": 2, "seed": 7}}
{"id": "variant", "model": {"name": "smoke-1b", "layers": 4, "hiddenDim": 2048, "heads": 16, "ffnDim": 8192}, "chips": 16, "robust": {"topK": 2, "numScenarios": 2, "maxGemmsPerEval": 2, "seed": 8}}
EOF

"$bin" queries.ndjson --cache plan_cache.json > first.ndjson
"$bin" queries.ndjson --cache plan_cache.json > second.ndjson

"$python3" - first.ndjson second.ndjson <<'EOF'
import json, sys

def load(path):
    with open(path) as fh:
        lines = [json.loads(l) for l in fh if l.strip()]
    return lines

first, second = load(sys.argv[1]), load(sys.argv[2])
if len(first) != 3 or len(second) != 3:
    sys.exit("expected 3 response lines per serve, got %d/%d"
             % (len(first), len(second)))
for i, resp in enumerate(first):
    if resp["index"] != i:
        sys.exit("responses out of input order: line %d has index %d"
                 % (i, resp["index"]))
ids = [r["id"] for r in first]
if ids != ["cold", "repeat", "variant"]:
    sys.exit("unexpected id order: %r" % ids)
# The identical repeat must serve the byte-identical plan.
if first[0]["plan"] != first[1]["plan"]:
    sys.exit("repeat query served a different plan than the cold tune")
if first[0]["digest"] != first[1]["digest"]:
    sys.exit("repeat query has a different key digest")
if first[2]["digest"] == first[0]["digest"]:
    sys.exit("fault variant unexpectedly shares the cold query's key")
# The warm-started second serve must be cache hits with identical plans.
for i, (a, b) in enumerate(zip(first, second)):
    if a["plan"] != b["plan"]:
        sys.exit("warm-started serve line %d differs from first serve" % i)
    if b["source"] not in ("cache_hit", "coalesced"):
        sys.exit("warm-started serve line %d source=%s, want cache_hit"
                 % (i, b["source"]))
print("plan_server smoke ok")
EOF
