/**
 * @file
 * Tests of the blocked slicing operators (paper Algorithm 2):
 * partition/disjointness properties, inverse round trips, and the
 * interleaving pattern that makes MeshSlice's reduction correct.
 */
#include <gtest/gtest.h>

#include "gemm/slicing.hpp"

namespace meshslice {
namespace {

/** Matrix whose element value encodes its (row, col) position. */
Matrix
indexed(std::int64_t rows, std::int64_t cols)
{
    Matrix m(rows, cols);
    for (std::int64_t r = 0; r < rows; ++r)
        for (std::int64_t c = 0; c < cols; ++c)
            m.at(r, c) = static_cast<float>(r * 10000 + c);
    return m;
}

TEST(Slicing, SliceColsSelectsEverySthBlock)
{
    // 12 columns, S=3, B=2: sub-shard 0 takes column blocks {0, 3}
    // (columns 0,1,6,7), sub-shard 1 blocks {1,4} (2,3,8,9), etc.
    Matrix m = indexed(2, 12);
    Matrix s0 = sliceCols(m, 3, 0, 2);
    ASSERT_EQ(s0.cols(), 4);
    EXPECT_FLOAT_EQ(s0.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(s0.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(s0.at(0, 2), 6.0f);
    EXPECT_FLOAT_EQ(s0.at(0, 3), 7.0f);
    Matrix s1 = sliceCols(m, 3, 1, 2);
    EXPECT_FLOAT_EQ(s1.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(s1.at(0, 2), 8.0f);
}

TEST(Slicing, SliceRowsSelectsEverySthBlock)
{
    Matrix m = indexed(12, 2);
    Matrix s1 = sliceRows(m, 3, 1, 2);
    ASSERT_EQ(s1.rows(), 4);
    EXPECT_FLOAT_EQ(s1.at(0, 0), 2.0f * 10000);
    EXPECT_FLOAT_EQ(s1.at(1, 0), 3.0f * 10000);
    EXPECT_FLOAT_EQ(s1.at(2, 0), 8.0f * 10000);
}

TEST(Slicing, SliceWithSOneIsIdentity)
{
    Matrix m = indexed(4, 8);
    EXPECT_TRUE(sliceCols(m, 1, 0, 2).allClose(m, 0.0));
    EXPECT_TRUE(sliceRows(m, 1, 0, 2).allClose(m, 0.0));
}

TEST(Slicing, SubShardsPartitionTheMatrix)
{
    // Property: the S sub-shards are disjoint and cover every column
    // exactly once (checked via sum of element counts and values).
    Matrix m = Matrix::random(8, 24, 99);
    const int s_count = 4, block = 2;
    double total = 0.0, full = 0.0;
    std::int64_t cols = 0;
    for (int s = 0; s < s_count; ++s) {
        Matrix sub = sliceCols(m, s_count, s, block);
        cols += sub.cols();
        for (std::int64_t r = 0; r < sub.rows(); ++r)
            for (std::int64_t c = 0; c < sub.cols(); ++c)
                total += sub.at(r, c);
    }
    for (std::int64_t r = 0; r < m.rows(); ++r)
        for (std::int64_t c = 0; c < m.cols(); ++c)
            full += m.at(r, c);
    EXPECT_EQ(cols, m.cols());
    EXPECT_NEAR(total, full, 1e-3);
}

TEST(Slicing, UnsliceColsIsInverse)
{
    Matrix m = Matrix::random(6, 24, 5);
    const int s_count = 3, block = 4;
    Matrix rebuilt(6, 24);
    for (int s = 0; s < s_count; ++s)
        unsliceColsInto(rebuilt, sliceCols(m, s_count, s, block), s_count,
                        s, block);
    EXPECT_TRUE(rebuilt.allClose(m, 0.0));
}

TEST(Slicing, UnsliceRowsIsInverse)
{
    Matrix m = Matrix::random(24, 6, 6);
    const int s_count = 6, block = 2;
    Matrix rebuilt(24, 6);
    for (int s = 0; s < s_count; ++s)
        unsliceRowsInto(rebuilt, sliceRows(m, s_count, s, block), s_count,
                        s, block);
    EXPECT_TRUE(rebuilt.allClose(m, 0.0));
}

TEST(Slicing, SlicedGemmReconstructsFullProduct)
{
    // Algorithm 1: summing the S partial outer-product groups equals
    // the full GeMM. This is the core MeshSlice correctness claim in
    // its single-chip form.
    const std::int64_t m = 16, k = 48, n = 12;
    const int s_count = 4, block = 4;
    Matrix a = Matrix::random(m, k, 1);
    Matrix b = Matrix::random(k, n, 2);
    Matrix ref = Matrix::gemm(a, b);
    Matrix acc(m, n);
    for (int s = 0; s < s_count; ++s) {
        Matrix as = sliceCols(a, s_count, s, block);
        Matrix bs = sliceRows(b, s_count, s, block);
        Matrix::gemmAcc(as, bs, acc);
    }
    EXPECT_TRUE(acc.allClose(ref, 1e-3));
}

TEST(Slicing, MismatchedSlicePairingIsWrong)
{
    // The paper: "most arbitrary slicings result in an incorrect
    // computation". Pairing A's sub-shard s with B's sub-shard s+1
    // breaks the outer-product alignment.
    const std::int64_t m = 8, k = 32, n = 8;
    const int s_count = 4, block = 2;
    Matrix a = Matrix::random(m, k, 3);
    Matrix b = Matrix::random(k, n, 4);
    Matrix ref = Matrix::gemm(a, b);
    Matrix acc(m, n);
    for (int s = 0; s < s_count; ++s) {
        Matrix as = sliceCols(a, s_count, s, block);
        Matrix bs = sliceRows(b, s_count, (s + 1) % s_count, block);
        Matrix::gemmAcc(as, bs, acc);
    }
    EXPECT_FALSE(acc.allClose(ref, 1e-2));
}

TEST(SlicingDeath, RejectsNonDividingExtent)
{
    Matrix m(4, 10);
    EXPECT_DEATH(sliceCols(m, 3, 0, 2), "not divisible");
}

TEST(SlicingDeath, RejectsOutOfRangeIndex)
{
    Matrix m(4, 12);
    EXPECT_DEATH(sliceCols(m, 3, 3, 2), "out of");
}

} // namespace
} // namespace meshslice
