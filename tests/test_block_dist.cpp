/**
 * @file
 * End-to-end correctness of 2D-TP transformer-block training: the
 * distributed block (all six FC GeMMs running the sliced MeshSlice
 * algorithm with Table-1 dataflows, everything else chip-local per the
 * paper's sharding) must produce the same activations and gradients as
 * the dense reference block.
 */
#include <gtest/gtest.h>

#include "model/block_dist.hpp"

namespace meshslice {
namespace {

constexpr double kTol = 5e-3; // float accumulation-order slack

BlockDims
smallDims()
{
    BlockDims dims;
    dims.batch = 4;
    dims.seq = 8;
    dims.heads = 4;
    dims.headDim = 8; // hidden = 32
    dims.ffn = 64;
    return dims;
}

struct MeshCase
{
    int rows;
    int cols;
    int s;
    int block;
};

class DistBlock : public ::testing::TestWithParam<MeshCase>
{
};

TEST_P(DistBlock, ForwardMatchesReference)
{
    const MeshCase &mc = GetParam();
    const BlockDims dims = smallDims();
    const BlockParams params = BlockParams::random(dims, 7);
    Matrix x = Matrix::random(dims.tokens(), dims.hidden(), 42);

    Matrix y_ref = refBlockForward(dims, x, params, nullptr);

    DistBlockConfig cfg{MeshShape{mc.rows, mc.cols}, mc.s, mc.block};
    DistMatrix dx = DistMatrix::scatter(x, cfg.mesh);
    Matrix y =
        distBlockForward(dims, cfg, dx, params, nullptr).gather();
    EXPECT_TRUE(y.allClose(y_ref, kTol))
        << "max diff " << y.maxAbsDiff(y_ref);
}

TEST_P(DistBlock, BackwardMatchesReference)
{
    const MeshCase &mc = GetParam();
    const BlockDims dims = smallDims();
    const BlockParams params = BlockParams::random(dims, 11);
    Matrix x = Matrix::random(dims.tokens(), dims.hidden(), 43);
    Matrix dy = Matrix::random(dims.tokens(), dims.hidden(), 44);

    RefBlockCache ref_cache;
    refBlockForward(dims, x, params, &ref_cache);
    BlockGrads ref = refBlockBackward(dims, params, ref_cache, dy);

    DistBlockConfig cfg{MeshShape{mc.rows, mc.cols}, mc.s, mc.block};
    DistBlockCache cache;
    DistMatrix x_d = DistMatrix::scatter(x, cfg.mesh);
    distBlockForward(dims, cfg, x_d, params, &cache);
    BlockGrads got = distBlockBackward(
        dims, cfg, params, cache, DistMatrix::scatter(dy, cfg.mesh));

    EXPECT_TRUE(got.dx.allClose(ref.dx, kTol))
        << "dx diff " << got.dx.maxAbsDiff(ref.dx);
    EXPECT_TRUE(got.dwq.allClose(ref.dwq, kTol));
    EXPECT_TRUE(got.dwk.allClose(ref.dwk, kTol));
    EXPECT_TRUE(got.dwv.allClose(ref.dwv, kTol));
    EXPECT_TRUE(got.dwo.allClose(ref.dwo, kTol));
    EXPECT_TRUE(got.dw1.allClose(ref.dw1, kTol));
    EXPECT_TRUE(got.dw2.allClose(ref.dw2, kTol));
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, DistBlock,
    ::testing::Values(MeshCase{1, 1, 1, 1}, MeshCase{2, 2, 2, 2},
                      MeshCase{4, 2, 2, 2}, MeshCase{2, 4, 2, 1},
                      MeshCase{4, 4, 2, 1}, MeshCase{1, 4, 4, 2},
                      MeshCase{4, 1, 4, 2}),
    [](const ::testing::TestParamInfo<MeshCase> &info) {
        return "mesh" + std::to_string(info.param.rows) + "x" +
               std::to_string(info.param.cols) + "_S" +
               std::to_string(info.param.s) + "_B" +
               std::to_string(info.param.block);
    });

TEST(RefBlock, GradientCheckAgainstFiniteDifference)
{
    // Validate the reference block itself with a central-difference
    // probe of dW1 under L = sum(y .* dy).
    const BlockDims dims = smallDims();
    const BlockParams params = BlockParams::random(dims, 21);
    Matrix x = Matrix::random(dims.tokens(), dims.hidden(), 45);
    Matrix dy = Matrix::random(dims.tokens(), dims.hidden(), 46);

    RefBlockCache cache;
    refBlockForward(dims, x, params, &cache);
    BlockGrads grads = refBlockBackward(dims, params, cache, dy);

    auto loss = [&](const BlockParams &p) {
        Matrix y = refBlockForward(dims, x, p, nullptr);
        double l = 0.0;
        for (std::int64_t r = 0; r < y.rows(); ++r)
            for (std::int64_t c = 0; c < y.cols(); ++c)
                l += static_cast<double>(y.at(r, c)) * dy.at(r, c);
        return l;
    };
    const double eps = 1e-2;
    for (auto [i, j] : {std::pair{0, 0}, {13, 40}, {31, 63}}) {
        BlockParams plus = params;
        plus.w1.at(i, j) += static_cast<float>(eps);
        BlockParams minus = params;
        minus.w1.at(i, j) -= static_cast<float>(eps);
        const double fd = (loss(plus) - loss(minus)) / (2.0 * eps);
        EXPECT_NEAR(fd, grads.dw1.at(i, j),
                    2e-2 + 0.05 * std::abs(grads.dw1.at(i, j)))
            << "(" << i << "," << j << ")";
    }
}

TEST(RefBlock, AttentionRowsSumToOne)
{
    const BlockDims dims = smallDims();
    Matrix q = Matrix::random(dims.tokens(), dims.hidden(), 50);
    Matrix k = Matrix::random(dims.tokens(), dims.hidden(), 51);
    Matrix v = Matrix::random(dims.tokens(), dims.hidden(), 52);
    Matrix probs;
    attentionForward(dims.batch, dims.seq, dims.heads, dims.headDim, q, k,
                     v, &probs);
    for (std::int64_t r = 0; r < probs.rows(); ++r) {
        double sum = 0.0;
        for (std::int64_t c = 0; c < probs.cols(); ++c)
            sum += probs.at(r, c);
        EXPECT_NEAR(sum, 1.0, 1e-4);
    }
}

} // namespace
} // namespace meshslice
