/**
 * @file
 * Numerical validation of Table 1: for each stationary choice (Y-stn,
 * X-stn, W-stn), the prescribed dataflows for the forward,
 * backward-data and backward-weight GeMMs of Y = X W must compute the
 * exact same mathematical results — with each matrix stored in the
 * orientation the row prescribes and never re-transposed between
 * passes. Run end-to-end through the sliced MeshSlice functional
 * implementations on a 2x4 mesh.
 */
#include <gtest/gtest.h>

#include "gemm/functional_gemm.hpp"

namespace meshslice {
namespace {

constexpr double kTol = 2e-3;

class Table1Composition : public ::testing::Test
{
  protected:
    static constexpr std::int64_t kM = 64; // tokens
    static constexpr std::int64_t kIn = 96;
    static constexpr std::int64_t kOut = 32;
    static constexpr int kS = 2;
    static constexpr int kB = 2;
    const MeshShape mesh{2, 4};

    Matrix x = Matrix::random(kM, kIn, 1);   // X
    Matrix w = Matrix::random(kIn, kOut, 2); // W
    Matrix dy = Matrix::random(kM, kOut, 3); // Y'

    Matrix y_ref = Matrix::gemm(x, w);
    Matrix dx_ref = Matrix::gemm(dy, w.transpose());
    Matrix dw_ref = Matrix::gemm(x.transpose(), dy);

    DistMatrix
    dist(const Matrix &m) const
    {
        return DistMatrix::scatter(m, mesh);
    }
};

TEST_F(Table1Composition, YStationaryRow)
{
    // Y = OS(X, W); X' = LS(Y', W); W' = RS(X, Y').
    Matrix y = funcMeshSliceOS(dist(x), dist(w), kS, kB).gather();
    EXPECT_TRUE(y.allClose(y_ref, kTol));

    Matrix dx = funcMeshSliceLS(dist(dy), dist(w), kS, kB).gather();
    EXPECT_TRUE(dx.allClose(dx_ref, kTol));

    Matrix dw = funcMeshSliceRS(dist(x), dist(dy), kS, kB).gather();
    EXPECT_TRUE(dw.allClose(dw_ref, kTol));
}

TEST_F(Table1Composition, XStationaryRow)
{
    // W is stored transposed once at initialization (Sec 3.2.1); no
    // further transposes are needed across the three passes.
    Matrix wt = w.transpose();

    // Y = LS(X, W^T).
    Matrix y = funcMeshSliceLS(dist(x), dist(wt), kS, kB).gather();
    EXPECT_TRUE(y.allClose(y_ref, kTol));

    // X' = OS(Y', W^T).
    Matrix dx = funcMeshSliceOS(dist(dy), dist(wt), kS, kB).gather();
    EXPECT_TRUE(dx.allClose(dx_ref, kTol));

    // W'^T = RS(Y', X) — the gradient arrives already transposed,
    // matching the transposed weight storage.
    Matrix dwt = funcMeshSliceRS(dist(dy), dist(x), kS, kB).gather();
    EXPECT_TRUE(dwt.allClose(dw_ref.transpose(), kTol));
}

TEST_F(Table1Composition, WStationaryRow)
{
    // X is stored transposed (the layer's input arrives transposed).
    Matrix xt = x.transpose();

    // Y = RS(X^T, W).
    Matrix y = funcMeshSliceRS(dist(xt), dist(w), kS, kB).gather();
    EXPECT_TRUE(y.allClose(y_ref, kTol));

    // X'^T = LS(W, Y').
    Matrix dxt = funcMeshSliceLS(dist(w), dist(dy), kS, kB).gather();
    EXPECT_TRUE(dxt.allClose(dx_ref.transpose(), kTol));

    // W' = OS(X^T, Y').
    Matrix dw = funcMeshSliceOS(dist(xt), dist(dy), kS, kB).gather();
    EXPECT_TRUE(dw.allClose(dw_ref, kTol));
}

TEST_F(Table1Composition, AllRowsAgreeWithEachOther)
{
    // The three rows are different schedules for the same math: their
    // forward results must agree bit-for-bit-ish.
    Matrix y_os = funcMeshSliceOS(dist(x), dist(w), kS, kB).gather();
    Matrix y_ls =
        funcMeshSliceLS(dist(x), dist(w.transpose()), kS, kB).gather();
    Matrix y_rs =
        funcMeshSliceRS(dist(x.transpose()), dist(w), kS, kB).gather();
    EXPECT_TRUE(y_os.allClose(y_ls, kTol));
    EXPECT_TRUE(y_os.allClose(y_rs, kTol));
}

TEST_F(Table1Composition, GradientCheckAgainstFiniteDifference)
{
    // Spot-check dW numerically: dL/dW[i,j] with L = sum(Y * dY)
    // equals (X^T dY)[i,j].
    const double eps = 1e-3;
    Matrix dw = funcMeshSliceRS(dist(x), dist(dy), kS, kB).gather();
    for (auto [i, j] :
         {std::pair{0, 0}, {5, 3}, {95, 31}, {17, 12}}) {
        Matrix wp = w;
        wp.at(i, j) += static_cast<float>(eps);
        Matrix wm = w;
        wm.at(i, j) -= static_cast<float>(eps);
        double lp = 0.0, lm = 0.0;
        Matrix yp = Matrix::gemm(x, wp);
        Matrix ym = Matrix::gemm(x, wm);
        for (std::int64_t r = 0; r < kM; ++r)
            for (std::int64_t c = 0; c < kOut; ++c) {
                lp += yp.at(r, c) * dy.at(r, c);
                lm += ym.at(r, c) * dy.at(r, c);
            }
        const double fd = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(fd, dw.at(i, j), 5e-2) << "(" << i << "," << j << ")";
    }
}

} // namespace
} // namespace meshslice
