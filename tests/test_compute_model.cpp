/**
 * @file
 * Tests of the chip compute model: FLOP counts, padding efficiency,
 * HBM traffic and the roofline behaviour that makes thin partial GeMMs
 * slower (the MeshSlice fine-grain overhead of Sec 5.3.1).
 */
#include <gtest/gtest.h>

#include "hw/compute_model.hpp"

namespace meshslice {
namespace {

TEST(ComputeModel, FlopsIsTwoMnk)
{
    EXPECT_DOUBLE_EQ(gemmFlops(GemmWork{10, 20, 30}), 2.0 * 10 * 20 * 30);
    EXPECT_DOUBLE_EQ(gemmFlops(GemmWork{0, 20, 30}), 0.0);
}

TEST(ComputeModel, PadEfficiencyOneForAlignedShapes)
{
    const ChipConfig cfg = tpuV4Config();
    EXPECT_DOUBLE_EQ(gemmPadEfficiency(cfg, GemmWork{128, 128, 128}), 1.0);
    EXPECT_DOUBLE_EQ(gemmPadEfficiency(cfg, GemmWork{1024, 4096, 256}),
                     1.0);
}

TEST(ComputeModel, PadEfficiencyDropsForThinK)
{
    const ChipConfig cfg = tpuV4Config();
    const double thin = gemmPadEfficiency(cfg, GemmWork{1024, 8, 1024});
    EXPECT_NEAR(thin, 8.0 / 128.0, 1e-12);
}

TEST(ComputeModel, IdealTimeScalesWithFlopsWhenComputeBound)
{
    const ChipConfig cfg = tpuV4Config();
    const Time t1 = gemmIdealTime(cfg, GemmWork{4096, 4096, 4096});
    const Time t2 = gemmIdealTime(cfg, GemmWork{8192, 4096, 4096});
    EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(ComputeModel, LargeGemmsNearPeak)
{
    const ChipConfig cfg = tpuV4Config();
    const GemmWork big{8192, 12288, 6144};
    const Rate eff = gemmEffectiveFlops(cfg, big);
    EXPECT_GT(eff, 0.85 * cfg.peakFlops);
    EXPECT_LE(eff, cfg.peakFlops + 1.0);
}

TEST(ComputeModel, ThinSlicesRunBelowPeak)
{
    // A K = 48 partial GeMM (deep slicing) must be significantly less
    // efficient than the unsliced shape — the overhead the paper
    // observed for fine-grain partial GeMMs.
    const ChipConfig cfg = tpuV4Config();
    const Rate full = gemmEffectiveFlops(cfg, GemmWork{8192, 1536, 6144});
    const Rate thin = gemmEffectiveFlops(cfg, GemmWork{8192, 48, 6144});
    EXPECT_LT(thin, 0.6 * full);
}

TEST(ComputeModel, HbmTrafficAtLeastCompulsory)
{
    const ChipConfig cfg = tpuV4Config();
    const GemmWork w{2048, 2048, 2048};
    const Bytes compulsory =
        (w.m * w.k + w.k * w.n + 2 * w.m * w.n) * cfg.bytesPerElement;
    EXPECT_GE(gemmHbmTraffic(cfg, w), compulsory);
}

TEST(ComputeModel, MemoryBoundShapesLimitedByHbm)
{
    // A rank-8 update moves ~2*m*n bytes for tiny FLOPs: must be
    // memory-bound, i.e. time ~ traffic / hbm bandwidth.
    const ChipConfig cfg = tpuV4Config();
    const GemmWork w{8192, 8, 8192};
    const Time t = gemmIdealTime(cfg, w);
    const Time mem_floor =
        static_cast<double>(gemmHbmTraffic(cfg, w)) / cfg.hbmBandwidth;
    EXPECT_NEAR(t, mem_floor, mem_floor * 1e-9);
}

TEST(ComputeModel, EmptyWorkIsFree)
{
    const ChipConfig cfg = tpuV4Config();
    EXPECT_DOUBLE_EQ(gemmIdealTime(cfg, GemmWork{}), 0.0);
    EXPECT_EQ(gemmHbmTraffic(cfg, GemmWork{}), 0);
}

} // namespace
} // namespace meshslice
