/**
 * @file
 * Numerical verification of every distributed GeMM algorithm against a
 * dense reference, swept over mesh shapes, dataflows and slice counts
 * with parameterized tests — the repository's ground truth that the
 * MeshSlice algorithm (and each baseline) computes the right answer.
 */
#include <gtest/gtest.h>

#include "gemm/functional_gemm.hpp"
#include "gemm/slicing.hpp"

namespace meshslice {
namespace {

constexpr double kTol = 2e-3; // float accumulation-order slack

struct FuncCase
{
    int meshRows;
    int meshCols;
    int sliceCount;
    int block;
};

std::string
caseName(const ::testing::TestParamInfo<FuncCase> &info)
{
    const FuncCase &c = info.param;
    return "mesh" + std::to_string(c.meshRows) + "x" +
           std::to_string(c.meshCols) + "_S" +
           std::to_string(c.sliceCount) + "_B" + std::to_string(c.block);
}

class FunctionalGemm : public ::testing::TestWithParam<FuncCase>
{
  protected:
    // Global dims chosen so every swept mesh/S/B divides evenly in
    // every dataflow (the sliced dim is K for OS, N for LS, M for RS).
    static constexpr std::int64_t kM = 96;
    static constexpr std::int64_t kK = 96;
    static constexpr std::int64_t kN = 96;
};

TEST_P(FunctionalGemm, MeshSliceOSMatchesReference)
{
    const FuncCase &p = GetParam();
    MeshShape mesh{p.meshRows, p.meshCols};
    Matrix a = Matrix::random(kM, kK, 1);
    Matrix b = Matrix::random(kK, kN, 2);
    Matrix ref = Matrix::gemm(a, b);
    DistMatrix c = funcMeshSliceOS(DistMatrix::scatter(a, mesh),
                                   DistMatrix::scatter(b, mesh),
                                   p.sliceCount, p.block);
    EXPECT_TRUE(c.gather().allClose(ref, kTol))
        << "max diff " << c.gather().maxAbsDiff(ref);
}

TEST_P(FunctionalGemm, MeshSliceLSMatchesReference)
{
    const FuncCase &p = GetParam();
    MeshShape mesh{p.meshRows, p.meshCols};
    Matrix a = Matrix::random(kM, kK, 3);
    Matrix b = Matrix::random(kN, kK, 4); // B is N x K; C = A B^T
    Matrix ref = Matrix::gemm(a, b.transpose());
    DistMatrix c = funcMeshSliceLS(DistMatrix::scatter(a, mesh),
                                   DistMatrix::scatter(b, mesh),
                                   p.sliceCount, p.block);
    EXPECT_TRUE(c.gather().allClose(ref, kTol))
        << "max diff " << c.gather().maxAbsDiff(ref);
}

TEST_P(FunctionalGemm, MeshSliceRSMatchesReference)
{
    const FuncCase &p = GetParam();
    MeshShape mesh{p.meshRows, p.meshCols};
    Matrix a = Matrix::random(kK, kM, 5); // A is K x M; C = A^T B
    Matrix b = Matrix::random(kK, kN, 6);
    Matrix ref = Matrix::gemm(a.transpose(), b);
    DistMatrix c = funcMeshSliceRS(DistMatrix::scatter(a, mesh),
                                   DistMatrix::scatter(b, mesh),
                                   p.sliceCount, p.block);
    EXPECT_TRUE(c.gather().allClose(ref, kTol))
        << "max diff " << c.gather().maxAbsDiff(ref);
}

TEST_P(FunctionalGemm, CollectiveAgreesWithMeshSlice)
{
    // Collective 2D GeMM is the S=1 special case; both must agree with
    // each other (and the reference) on all dataflows.
    const FuncCase &p = GetParam();
    MeshShape mesh{p.meshRows, p.meshCols};
    Matrix a = Matrix::random(kM, kK, 7);
    Matrix b = Matrix::random(kK, kN, 8);
    DistMatrix da = DistMatrix::scatter(a, mesh);
    DistMatrix db = DistMatrix::scatter(b, mesh);
    Matrix collective = funcCollectiveOS(da, db).gather();
    Matrix meshslice =
        funcMeshSliceOS(da, db, p.sliceCount, p.block).gather();
    EXPECT_TRUE(collective.allClose(meshslice, kTol));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionalGemm,
    ::testing::Values(FuncCase{1, 1, 1, 8}, FuncCase{2, 2, 2, 4},
                      FuncCase{2, 4, 2, 2}, FuncCase{4, 2, 3, 2},
                      FuncCase{4, 4, 2, 2}, FuncCase{2, 2, 6, 2},
                      FuncCase{1, 4, 4, 2}, FuncCase{4, 1, 4, 2},
                      FuncCase{2, 2, 1, 8}, FuncCase{8, 2, 2, 1},
                      FuncCase{2, 8, 3, 1}, FuncCase{3, 2, 2, 2}),
    caseName);

// ------------------------------------------------------------------
// Baseline algorithms
// ------------------------------------------------------------------

struct BaselineCase
{
    int meshRows;
    int meshCols;
};

class BaselineGemm : public ::testing::TestWithParam<BaselineCase>
{
  protected:
    static constexpr std::int64_t kM = 48;
    static constexpr std::int64_t kK = 96;
    static constexpr std::int64_t kN = 48;
};

TEST_P(BaselineGemm, CollectiveOSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kM, kK, 11);
    Matrix b = Matrix::random(kK, kN, 12);
    Matrix ref = Matrix::gemm(a, b);
    Matrix got = funcCollectiveOS(DistMatrix::scatter(a, mesh),
                                  DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

TEST_P(BaselineGemm, CollectiveLSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kM, kK, 13);
    Matrix b = Matrix::random(kN, kK, 14);
    Matrix ref = Matrix::gemm(a, b.transpose());
    Matrix got = funcCollectiveLS(DistMatrix::scatter(a, mesh),
                                  DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

TEST_P(BaselineGemm, CollectiveRSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kK, kM, 15);
    Matrix b = Matrix::random(kK, kN, 16);
    Matrix ref = Matrix::gemm(a.transpose(), b);
    Matrix got = funcCollectiveRS(DistMatrix::scatter(a, mesh),
                                  DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

TEST_P(BaselineGemm, SummaOSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kM, kK, 17);
    Matrix b = Matrix::random(kK, kN, 18);
    Matrix ref = Matrix::gemm(a, b);
    Matrix got = funcSummaOS(DistMatrix::scatter(a, mesh),
                             DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

TEST_P(BaselineGemm, SummaLSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kM, kK, 19);
    Matrix b = Matrix::random(kN, kK, 20);
    Matrix ref = Matrix::gemm(a, b.transpose());
    Matrix got = funcSummaLS(DistMatrix::scatter(a, mesh),
                             DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

TEST_P(BaselineGemm, SummaRSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kK, kM, 21);
    Matrix b = Matrix::random(kK, kN, 22);
    Matrix ref = Matrix::gemm(a.transpose(), b);
    Matrix got = funcSummaRS(DistMatrix::scatter(a, mesh),
                             DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

TEST_P(BaselineGemm, WangOSMatchesReference)
{
    MeshShape mesh{GetParam().meshRows, GetParam().meshCols};
    Matrix a = Matrix::random(kM, kK, 23);
    Matrix b = Matrix::random(kK, kN, 24);
    Matrix ref = Matrix::gemm(a, b);
    Matrix got = funcWangOS(DistMatrix::scatter(a, mesh),
                            DistMatrix::scatter(b, mesh))
                     .gather();
    EXPECT_TRUE(got.allClose(ref, kTol));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineGemm,
    ::testing::Values(BaselineCase{1, 1}, BaselineCase{2, 2},
                      BaselineCase{2, 4}, BaselineCase{4, 2},
                      BaselineCase{4, 4}, BaselineCase{1, 8},
                      BaselineCase{8, 1}, BaselineCase{3, 4},
                      BaselineCase{6, 2}),
    [](const ::testing::TestParamInfo<BaselineCase> &info) {
        return "mesh" + std::to_string(info.param.meshRows) + "x" +
               std::to_string(info.param.meshCols);
    });

TEST(CannonGemm, MatchesReferenceOnSquareMeshes)
{
    for (int p : {1, 2, 3, 4, 6}) {
        MeshShape mesh{p, p};
        Matrix a = Matrix::random(48, 96, 31);
        Matrix b = Matrix::random(96, 48, 32);
        Matrix ref = Matrix::gemm(a, b);
        Matrix got = funcCannon(DistMatrix::scatter(a, mesh),
                                DistMatrix::scatter(b, mesh))
                         .gather();
        EXPECT_TRUE(got.allClose(ref, kTol)) << "P=" << p;
    }
}

TEST(CannonGemmDeath, RejectsNonSquareMesh)
{
    MeshShape mesh{2, 4};
    Matrix a = Matrix::random(16, 16, 1);
    Matrix b = Matrix::random(16, 16, 2);
    EXPECT_DEATH(funcCannon(DistMatrix::scatter(a, mesh),
                            DistMatrix::scatter(b, mesh)),
                 "square");
}

TEST(TwoPointFiveD, MatchesReferenceAcrossDepths)
{
    // The functional 2.5D algorithm must compute the exact product for
    // every depth dividing the base dimension (depth 1 == Cannon).
    for (int p : {2, 4}) {
        for (int depth : {1, 2, p}) {
            if (p % depth != 0)
                continue;
            MeshShape mesh{p, p};
            Matrix a = Matrix::random(32, 64, 61);
            Matrix b = Matrix::random(64, 32, 62);
            Matrix ref = Matrix::gemm(a, b);
            Matrix got = func25DGemm(DistMatrix::scatter(a, mesh),
                                     DistMatrix::scatter(b, mesh), depth)
                             .gather();
            EXPECT_TRUE(got.allClose(ref, kTol))
                << "P=" << p << " depth=" << depth;
        }
    }
}

TEST(TwoPointFiveDDeath, RejectsBadDepth)
{
    MeshShape mesh{4, 4};
    Matrix a = Matrix::random(16, 16, 1);
    Matrix b = Matrix::random(16, 16, 2);
    EXPECT_DEATH(func25DGemm(DistMatrix::scatter(a, mesh),
                             DistMatrix::scatter(b, mesh), 3),
                 "divide");
}

TEST(OneDBaselines, OneDTPMatchesReference)
{
    for (int chips : {1, 2, 4, 8}) {
        Matrix x = Matrix::random(32, 24, 41);
        Matrix w = Matrix::random(24, 16, 42);
        Matrix ref = Matrix::gemm(x, w);
        Matrix got = Matrix::hcat(func1DTP(x, w, chips));
        EXPECT_TRUE(got.allClose(ref, kTol)) << "chips=" << chips;
    }
}

TEST(OneDBaselines, FsdpMatchesReference)
{
    for (int chips : {1, 2, 4, 8}) {
        Matrix x = Matrix::random(32, 24, 43);
        Matrix w = Matrix::random(24, 16, 44);
        Matrix ref = Matrix::gemm(x, w);
        Matrix got = Matrix::vcat(funcFsdp(x, w, chips));
        EXPECT_TRUE(got.allClose(ref, kTol)) << "chips=" << chips;
    }
}

TEST(DistMatrixTest, ScatterGatherRoundTrip)
{
    Matrix m = Matrix::random(24, 36, 50);
    for (auto [r, c] : {std::pair{1, 1}, {2, 3}, {4, 6}, {3, 2}}) {
        DistMatrix d = DistMatrix::scatter(m, MeshShape{r, c});
        EXPECT_TRUE(d.gather().allClose(m, 0.0));
        EXPECT_EQ(d.shardRows(), 24 / r);
        EXPECT_EQ(d.shardCols(), 36 / c);
    }
}

TEST(FunctionalCrossCheck, AllDataflowsComputeSameLogicalGemm)
{
    // Y = X W computed through OS, LS (W stored transposed) and RS (X
    // stored transposed) must all match — the Table 1 equivalence the
    // autotuner's dataflow selection relies on.
    MeshShape mesh{2, 4};
    const std::int64_t m = 32, k = 48, n = 64;
    Matrix x = Matrix::random(m, k, 60);
    Matrix w = Matrix::random(k, n, 61);
    Matrix ref = Matrix::gemm(x, w);

    Matrix y_os = funcMeshSliceOS(DistMatrix::scatter(x, mesh),
                                  DistMatrix::scatter(w, mesh), 2, 2)
                      .gather();
    // LS: Y = LS(X, W^T) where the right operand is stored N x K.
    Matrix y_ls = funcMeshSliceLS(DistMatrix::scatter(x, mesh),
                                  DistMatrix::scatter(w.transpose(), mesh),
                                  2, 2)
                      .gather();
    // RS: Y = RS(X^T, W) where the left operand is stored K x M.
    Matrix y_rs = funcMeshSliceRS(DistMatrix::scatter(x.transpose(), mesh),
                                  DistMatrix::scatter(w, mesh), 2, 2)
                      .gather();
    EXPECT_TRUE(y_os.allClose(ref, kTol));
    EXPECT_TRUE(y_ls.allClose(ref, kTol));
    EXPECT_TRUE(y_rs.allClose(ref, kTol));
}

} // namespace
} // namespace meshslice
