/**
 * @file
 * Tests of the 3D cluster-plan estimator (Sec 2.2): DP-traffic
 * scaling with the TP degree, pipeline bubble arithmetic, and the
 * headline 1D-vs-2D ordering.
 */
#include <gtest/gtest.h>

#include "tuner/cluster_plan.hpp"

namespace meshslice {
namespace {

class ClusterPlanTest : public ::testing::Test
{
  protected:
    static const CostModel &
    cost()
    {
        static CostModel model = CostModel::calibrated(tpuV4Config());
        return model;
    }
    TransformerConfig model_ = gpt3Config();
    TrainingConfig train_{512, 2048};
};

TEST_F(ClusterPlanTest, DpTrafficShrinksWithTpDegree)
{
    // Same pp: a chip in 128-way TP holds 1/16 the weights of a chip
    // in 8-way TP (the Sec 2.2 "16x smaller DP traffic" claim).
    ClusterPlan narrow{32, 4, 1, 8, true};   // 8-way 1D TP
    ClusterPlan wide{2, 4, 16, 8, false};    // 128-way 2D TP
    const ClusterStepCost a =
        estimateClusterStep(cost(), model_, train_, narrow);
    const ClusterStepCost b =
        estimateClusterStep(cost(), model_, train_, wide);
    EXPECT_EQ(a.dpBytesPerChip, 16 * b.dpBytesPerChip);
}

TEST_F(ClusterPlanTest, PipelineBubbleFollows1F1B)
{
    // Doubling the stage count at fixed microbatches raises the bubble
    // factor from (m+p-1)/m accordingly.
    // Same dp and TP mesh (so per-block time is identical); only the
    // stage count changes.
    ClusterPlan p4{4, 4, 8, 8, false};
    ClusterPlan p8{4, 8, 8, 8, false};
    const ClusterStepCost a =
        estimateClusterStep(cost(), model_, train_, p4, 8);
    const ClusterStepCost b =
        estimateClusterStep(cost(), model_, train_, p8, 8);
    // computePerStage halves; bubble factor grows 11/8 -> 15/8.
    EXPECT_NEAR(b.pipelineTime / a.pipelineTime,
                (15.0 / 8.0) / 2.0 / ((11.0 / 8.0)), 0.05);
}

TEST_F(ClusterPlanTest, Wide2DTpBeatsNarrow1DTp)
{
    ClusterPlan one_d{32, 4, 1, 8, true};
    ClusterPlan two_d{1, 4, 32, 8, false};
    const ClusterStepCost a =
        estimateClusterStep(cost(), model_, train_, one_d);
    const ClusterStepCost b =
        estimateClusterStep(cost(), model_, train_, two_d);
    EXPECT_GT(b.utilization, a.utilization);
    EXPECT_EQ(one_d.chips(), two_d.chips());
}

TEST_F(ClusterPlanTest, UtilizationIsSane)
{
    ClusterPlan plan{4, 8, 16, 8, false};
    const ClusterStepCost step =
        estimateClusterStep(cost(), model_, train_, plan);
    EXPECT_GT(step.utilization, 0.05);
    EXPECT_LE(step.utilization, 1.0);
    EXPECT_GT(step.stepTime, step.pipelineTime - 1e-12);
}

TEST_F(ClusterPlanTest, RejectsIndivisiblePlans)
{
    ClusterPlan bad_pp{4, 7, 16, 8, false}; // 96 layers % 7 != 0
    EXPECT_DEATH(estimateClusterStep(cost(), model_, train_, bad_pp),
                 "pp");
}

} // namespace
} // namespace meshslice
