/**
 * @file
 * Verifies the Figure-4 overlap structure directly from the recorded
 * schedule traces: MeshSlice's communication spans overlap its compute
 * spans in both directions; Collective's never do; Wang overlaps only
 * one direction; the no-overlap (real TPUv4) mode serializes
 * everything.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/executor.hpp"
#include "sim/trace.hpp"

namespace meshslice {
namespace {

using Spans = std::vector<TraceRecorder::Span>;

/** Total time during which a chip-0 span of category a overlaps one
 *  of category b on the given lane. */
double
overlapSeconds(const Spans &spans, int lane_comm)
{
    double total = 0.0;
    for (const TraceRecorder::Span &comm : spans) {
        if (comm.pid != 0 || comm.tid != lane_comm)
            continue;
        for (const TraceRecorder::Span &comp : spans) {
            if (comp.pid != 0 || comp.tid != kLaneCompute)
                continue;
            const double lo = std::max(comm.begin, comp.begin);
            const double hi = std::min(comm.end, comp.end);
            if (hi > lo)
                total += hi - lo;
        }
    }
    return total;
}

GemmRunResult
runTraced(const ChipConfig &cfg, Algorithm algo, Spans *out)
{
    Gemm2DSpec spec;
    spec.m = 32768;
    spec.k = 8192;
    spec.n = 8192;
    spec.rows = 4;
    spec.cols = 4;
    spec.sliceCount = 4;
    Cluster cluster(cfg, 16);
    TorusMesh mesh(cluster, 4, 4);
    cluster.trace().enable(true);
    GemmExecutor exec(mesh);
    GemmRunResult res = exec.run(algo, spec);
    *out = cluster.trace().spans();
    return res;
}

TEST(Overlap, MeshSliceOverlapsBothDirections)
{
    Spans trace;
    runTraced(tpuV4Config(), Algorithm::kMeshSlice, &trace);
    EXPECT_GT(overlapSeconds(trace, kLaneHorizontalComm), 0.0);
    EXPECT_GT(overlapSeconds(trace, kLaneVerticalComm), 0.0);
}

TEST(Overlap, CollectiveNeverOverlaps)
{
    Spans trace;
    runTraced(tpuV4Config(), Algorithm::kCollective, &trace);
    EXPECT_DOUBLE_EQ(overlapSeconds(trace, kLaneHorizontalComm), 0.0);
    EXPECT_DOUBLE_EQ(overlapSeconds(trace, kLaneVerticalComm), 0.0);
}

TEST(Overlap, WangOverlapsExactlyOneDirection)
{
    Spans trace;
    runTraced(tpuV4Config(), Algorithm::kWang, &trace);
    const double h = overlapSeconds(trace, kLaneHorizontalComm);
    const double v = overlapSeconds(trace, kLaneVerticalComm);
    // One direction pipelined with compute, the other blocking.
    EXPECT_GT(std::max(h, v), 0.0);
    EXPECT_DOUBLE_EQ(std::min(h, v), 0.0);
}

TEST(Overlap, NoOverlapModeSerializesAgRds)
{
    ChipConfig cfg = tpuV4Config();
    cfg.allowCollectiveOverlap = false;
    Spans trace;
    runTraced(cfg, Algorithm::kMeshSlice, &trace);
    EXPECT_DOUBLE_EQ(overlapSeconds(trace, kLaneHorizontalComm), 0.0);
    EXPECT_DOUBLE_EQ(overlapSeconds(trace, kLaneVerticalComm), 0.0);
}

TEST(Overlap, CannonOverlapsShiftsWithCompute)
{
    // Symmetric GeMM (M == N) so both directions' shards are equal:
    // with an asymmetric shape the lighter direction's shifts finish
    // before the first compute and legitimately never overlap it.
    Gemm2DSpec spec;
    spec.m = 16384;
    spec.k = 8192;
    spec.n = 16384;
    spec.rows = 4;
    spec.cols = 4;
    spec.sliceCount = 4;
    const ChipConfig cfg = tpuV4Config();
    Cluster cluster(cfg, 16);
    TorusMesh mesh(cluster, 4, 4);
    cluster.trace().enable(true);
    GemmExecutor exec(mesh);
    exec.run(Algorithm::kCannon, spec);
    EXPECT_GT(overlapSeconds(cluster.trace().spans(), kLaneHorizontalComm), 0.0);
    EXPECT_GT(overlapSeconds(cluster.trace().spans(), kLaneVerticalComm), 0.0);
}

} // namespace
} // namespace meshslice
