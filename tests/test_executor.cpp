/**
 * @file
 * Timing-invariant tests of the algorithm executors: lower bounds,
 * Collective == MeshSlice(S=1), overlap benefits, traffic closed
 * forms, SUMMA's O(P^2) synchronization growth, Cannon's square-mesh
 * constraint and the no-overlap (real TPUv4) mode.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/executor.hpp"
#include "core/mesh_ops.hpp"
#include "hw/compute_model.hpp"

namespace meshslice {
namespace {

Gemm2DSpec
testSpec(int rows = 4, int cols = 4, int s = 4,
         Dataflow df = Dataflow::kOS)
{
    Gemm2DSpec spec;
    spec.m = 16384;
    spec.k = 4096;
    spec.n = 8192;
    spec.dataflow = df;
    spec.rows = rows;
    spec.cols = cols;
    spec.sliceCount = s;
    return spec;
}

GemmRunResult
runOn(const ChipConfig &cfg, Algorithm algo, const Gemm2DSpec &spec)
{
    Cluster cluster(cfg, spec.chips());
    TorusMesh mesh(cluster, spec.rows, spec.cols);
    GemmExecutor exec(mesh);
    return exec.run(algo, spec);
}

TEST(Executor, CollectiveEqualsMeshSliceWithOneSlice)
{
    const ChipConfig cfg = tpuV4Config();
    Gemm2DSpec spec = testSpec();
    spec.sliceCount = 1;
    const GemmRunResult ms = runOn(cfg, Algorithm::kMeshSlice, spec);
    spec.sliceCount = 7; // Collective must ignore this
    const GemmRunResult coll = runOn(cfg, Algorithm::kCollective, spec);
    EXPECT_NEAR(ms.time, coll.time, 1e-9);
}

TEST(Executor, TimeNeverBeatsComputeLowerBound)
{
    const ChipConfig cfg = tpuV4Config();
    for (Algorithm algo : all2DAlgorithms()) {
        const Gemm2DSpec spec = testSpec();
        const GemmRunResult res = runOn(cfg, algo, spec);
        const Time bound = gemmIdealTime(
            cfg, GemmWork{spec.m / spec.rows, spec.k, spec.n / spec.cols});
        EXPECT_GE(res.time, bound * 0.999) << algorithmName(algo);
        EXPECT_LE(res.utilization(cfg, spec.chips()), 1.0)
            << algorithmName(algo);
    }
}

TEST(Executor, MeshSliceOverlapBeatsCollective)
{
    const ChipConfig cfg = tpuV4Config();
    const GemmRunResult ms =
        runOn(cfg, Algorithm::kMeshSlice, testSpec(4, 4, 8));
    const GemmRunResult coll =
        runOn(cfg, Algorithm::kCollective, testSpec(4, 4, 1));
    EXPECT_LT(ms.time, coll.time);
}

TEST(Executor, AllDataflowsProduceFiniteSchedules)
{
    const ChipConfig cfg = tpuV4Config();
    for (Dataflow df : {Dataflow::kOS, Dataflow::kLS, Dataflow::kRS}) {
        for (Algorithm algo :
             {Algorithm::kMeshSlice, Algorithm::kCollective,
              Algorithm::kWang, Algorithm::kSumma}) {
            const GemmRunResult res =
                runOn(cfg, algo, testSpec(4, 8, 4, df));
            EXPECT_GT(res.time, 0.0)
                << algorithmName(algo) << "/" << dataflowName(df);
            EXPECT_GT(res.flops, 0.0);
        }
    }
}

TEST(Executor, TrafficMatchesClosedForm)
{
    // Unidirectional AG: each link carries (P-1) sub-shards per
    // iteration; bytesPerLink over S iterations must equal
    // (P-1)/P * rowShare(matrix).
    ChipConfig cfg = tpuV4Config();
    cfg.bidirectionalIci = false;
    const Gemm2DSpec spec = testSpec(4, 4, 4);
    const GemmRunResult res = runOn(cfg, Algorithm::kMeshSlice, spec);
    const FlowSide h = horizontalFlow(spec);
    const Bytes expected_h =
        h.matrixBytes / spec.chips() * (spec.cols - 1);
    EXPECT_EQ(res.horizontal.bytesPerLink, expected_h);
    const FlowSide v = verticalFlow(spec);
    const Bytes expected_v =
        v.matrixBytes / spec.chips() * (spec.rows - 1);
    EXPECT_EQ(res.vertical.bytesPerLink, expected_v);
}

TEST(Executor, BidirectionalHalvesPerLinkBytes)
{
    ChipConfig uni = tpuV4Config();
    uni.bidirectionalIci = false;
    ChipConfig bi = tpuV4Config();
    bi.bidirectionalIci = true;
    const Gemm2DSpec spec = testSpec(4, 4, 2);
    const GemmRunResult r_uni = runOn(uni, Algorithm::kCollective, spec);
    const GemmRunResult r_bi = runOn(bi, Algorithm::kCollective, spec);
    EXPECT_LT(r_bi.horizontal.bytesPerLink,
              r_uni.horizontal.bytesPerLink);
    EXPECT_LT(r_bi.time, r_uni.time);
}

TEST(Executor, SummaSyncCountGrowsQuadratically)
{
    const ChipConfig cfg = tpuV4Config();
    Gemm2DSpec small = testSpec(4, 4, 4);
    Gemm2DSpec big = testSpec(8, 8, 4);
    const GemmRunResult r_small = runOn(cfg, Algorithm::kSumma, small);
    const GemmRunResult r_big = runOn(cfg, Algorithm::kSumma, big);
    // P doubles: iterations double and hops double -> ~4x syncs
    // (packet-count tuning makes it approximate).
    const double ratio =
        static_cast<double>(r_big.vertical.syncCount +
                            r_big.horizontal.syncCount) /
        (r_small.vertical.syncCount + r_small.horizontal.syncCount);
    EXPECT_GE(ratio, 2.5);
}

TEST(Executor, MeshSliceSyncsScaleWithSliceCount)
{
    const ChipConfig cfg = tpuV4Config();
    const GemmRunResult s2 =
        runOn(cfg, Algorithm::kMeshSlice, testSpec(4, 4, 2));
    const GemmRunResult s8 =
        runOn(cfg, Algorithm::kMeshSlice, testSpec(4, 4, 8));
    EXPECT_EQ(s8.horizontal.syncCount, 4 * s2.horizontal.syncCount);
    EXPECT_EQ(s8.horizontal.launch, 4 * s2.horizontal.launch);
}

TEST(Executor, WangBlockingSideLaunchesOnce)
{
    const ChipConfig cfg = tpuV4Config();
    // Horizontal traffic (A = M*K) exceeds vertical (B = K*N) here, so
    // Wang overlaps horizontally and runs one blocking vertical AG.
    Gemm2DSpec spec = testSpec(4, 4, 4);
    spec.m = 32768;
    spec.n = 4096;
    const GemmRunResult res = runOn(cfg, Algorithm::kWang, spec);
    EXPECT_NEAR(res.vertical.launch, cfg.launchOverhead, 1e-12);
    EXPECT_NEAR(res.horizontal.launch, 4 * cfg.launchOverhead, 1e-12);
}

TEST(ExecutorDeath, CannonRequiresSquareMesh)
{
    const ChipConfig cfg = tpuV4Config();
    EXPECT_DEATH(runOn(cfg, Algorithm::kCannon, testSpec(4, 8, 4)),
                 "square");
}

TEST(Executor, CannonPaysSkewPrologue)
{
    const ChipConfig cfg = tpuV4Config();
    const GemmRunResult cannon =
        runOn(cfg, Algorithm::kCannon, testSpec(4, 4, 4));
    const GemmRunResult ms =
        runOn(cfg, Algorithm::kMeshSlice, testSpec(4, 4, 4));
    EXPECT_GT(cannon.time, ms.time);
}

TEST(Executor, NoOverlapModeIsSlower)
{
    ChipConfig overlap = tpuV4Config();
    ChipConfig serial = tpuV4Config();
    serial.allowCollectiveOverlap = false;
    const Gemm2DSpec spec = testSpec(4, 4, 4);
    const GemmRunResult r_ov = runOn(overlap, Algorithm::kMeshSlice, spec);
    const GemmRunResult r_ser =
        runOn(serial, Algorithm::kMeshSlice, spec);
    EXPECT_GT(r_ser.time, r_ov.time);
}

TEST(Executor, NoOverlapMeshSliceNearCollective)
{
    // Without overlap, MeshSlice's slicing only adds fine-grain
    // overheads over Collective (Table 3: ~4.5%).
    ChipConfig serial = tpuV4Config();
    serial.allowCollectiveOverlap = false;
    serial.bidirectionalIci = false;
    const Gemm2DSpec spec = testSpec(4, 4, 4);
    const GemmRunResult ms = runOn(serial, Algorithm::kMeshSlice, spec);
    const GemmRunResult coll =
        runOn(serial, Algorithm::kCollective, spec);
    EXPECT_GE(ms.time, coll.time);
    EXPECT_LT(ms.time, coll.time * 1.25);
}

TEST(Executor, SendRecvArtifactModeSerializesWang)
{
    // With the Sec 5.3.1 XLA artifact modelled, Wang loses its overlap
    // and lands near Collective (Table 3's observation).
    ChipConfig cfg = tpuV4Config();
    cfg.allowCollectiveOverlap = false;
    cfg.bidirectionalIci = false;
    ChipConfig artifact = cfg;
    artifact.allowSendRecvOverlap = false;
    const Gemm2DSpec spec = testSpec(4, 4, 4);
    const GemmRunResult wang_free = runOn(cfg, Algorithm::kWang, spec);
    const GemmRunResult wang_ser =
        runOn(artifact, Algorithm::kWang, spec);
    const GemmRunResult coll = runOn(cfg, Algorithm::kCollective, spec);
    EXPECT_GT(wang_ser.time, wang_free.time);
    EXPECT_NEAR(wang_ser.time, coll.time, 0.2 * coll.time);
}

TEST(Executor1D, OneDTPAndFsdpComplete)
{
    const ChipConfig cfg = tpuV4Config();
    Gemm1DSpec spec;
    spec.m = 16384;
    spec.k = 4096;
    spec.n = 8192;
    spec.chips = 16;
    spec.sliceCount = 4;
    spec.commBytes = spec.m * spec.k * 2; // 1D TP: gather activations
    spec.local = GemmWork{spec.m, spec.k, spec.n / spec.chips};
    Cluster cluster(cfg, 16);
    RingNetwork net(cluster);
    const GemmRunResult res = runGemm1D(net, spec);
    EXPECT_GT(res.time, 0.0);
    EXPECT_LE(res.utilization(cfg, 16), 1.0);
}

TEST(Executor1D, ReduceVariantOrdersShiftAfterCompute)
{
    const ChipConfig cfg = tpuV4Config();
    Gemm1DSpec spec;
    spec.m = 4096;
    spec.k = 16384;
    spec.n = 4096;
    spec.chips = 8;
    spec.sliceCount = 2;
    spec.commBytes = spec.m * spec.n * 2;
    spec.commIsReduce = true;
    spec.local = GemmWork{spec.m, spec.k / spec.chips, spec.n};
    Cluster cluster(cfg, 8);
    RingNetwork net(cluster);
    const GemmRunResult res = runGemm1D(net, spec);
    // Epilogue shift cannot be hidden: time exceeds pure compute.
    const Time compute =
        gemmIdealTime(cfg, GemmWork{spec.m, spec.k / 8, spec.n});
    EXPECT_GT(res.time, compute);
}

} // namespace
} // namespace meshslice
