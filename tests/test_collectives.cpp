/**
 * @file
 * Tests of the ring collectives: cost structure against the paper's
 * closed forms, bidirectional split, SUMMA pipelining overheads, and
 * stats accounting.
 */
#include <gtest/gtest.h>

#include "net/collectives.hpp"
#include "net/topology.hpp"

namespace meshslice {
namespace {

/** A config with round numbers for hand-checkable cost arithmetic. */
ChipConfig
simpleConfig()
{
    ChipConfig cfg;
    cfg.iciLinkBandwidth = 100.0; // 100 B/s
    cfg.hbmBandwidth = 1e9;       // never the bottleneck here
    cfg.syncLatency = 1.0;        // 1 s
    cfg.launchOverhead = 10.0;    // 10 s
    cfg.bidirectionalIci = false;
    return cfg;
}

struct RingFixture
{
    RingFixture(const ChipConfig &cfg, int chips)
        : cluster(cfg, chips), net(cluster)
    {
    }

    CommStats
    run(std::function<void(CommDone)> op)
    {
        CommStats out;
        bool done = false;
        op([&](const CommStats &stats) {
            out = stats;
            done = true;
        });
        cluster.sim().run();
        EXPECT_TRUE(done);
        return out;
    }

    Cluster cluster;
    RingNetwork net;
};

TEST(Collectives, AllGatherMatchesClosedFormUnidirectional)
{
    RingFixture f(simpleConfig(), 4);
    const Bytes shard = 1000;
    CommStats stats = f.run([&](CommDone done) {
        ringAllGather(f.cluster, f.net.ring(), shard, 0, std::move(done));
    });
    // t_launch + (P-1) * (t_sync + shard/bw) = 10 + 3 * (1 + 10) = 43.
    EXPECT_NEAR(stats.total, 43.0, 1e-6);
    EXPECT_NEAR(stats.launch, 10.0, 1e-9);
    EXPECT_NEAR(stats.sync, 3.0, 1e-9);
    EXPECT_NEAR(stats.transfer, 30.0, 1e-6);
    EXPECT_EQ(stats.syncCount, 3);
    EXPECT_EQ(stats.bytesPerLink, 3000);
}

TEST(Collectives, BidirectionalAllGatherHalvesSteps)
{
    ChipConfig cfg = simpleConfig();
    cfg.bidirectionalIci = true;
    RingFixture f(cfg, 5);
    const Bytes shard = 1000;
    CommStats stats = f.run([&](CommDone done) {
        ringAllGather(f.cluster, f.net.ring(), shard, 0, std::move(done));
    });
    // ceil(4/2)=2 steps: 10 + 2 * (1 + 10) = 32.
    EXPECT_NEAR(stats.total, 32.0, 1e-6);
    EXPECT_EQ(stats.syncCount, 2);
}

TEST(Collectives, ReduceScatterCostsSameAsAllGather)
{
    RingFixture f(simpleConfig(), 4);
    const Bytes shard = 1000;
    CommStats ag = f.run([&](CommDone done) {
        ringAllGather(f.cluster, f.net.ring(), shard, 0, std::move(done));
    });
    CommStats rds = f.run([&](CommDone done) {
        ringReduceScatter(f.cluster, f.net.ring(), shard, 0,
                          std::move(done));
    });
    EXPECT_NEAR(ag.total, rds.total, 1e-6);
}

TEST(Collectives, BroadcastPipelineStagesAndBubbles)
{
    RingFixture f(simpleConfig(), 4);
    const Bytes payload = 3000;
    const int packets = 3;
    CommStats stats = f.run([&](CommDone done) {
        ringBroadcast(f.cluster, f.net.ring(), 0, payload, packets, 0,
                      std::move(done));
    });
    // hops=3, D=3 -> stages = 5; each stage: sync 1 + packet 10
    // -> total = 10 + 5 * 11 = 65.
    EXPECT_NEAR(stats.total, 65.0, 1e-6);
    EXPECT_EQ(stats.syncCount, 5);
}

TEST(Collectives, BroadcastSlowerThanAllGatherForSamePayload)
{
    // The SUMMA inefficiency: same bytes delivered, more syncs+bubbles.
    RingFixture f(simpleConfig(), 8);
    const Bytes total = 8000;
    CommStats ag = f.run([&](CommDone done) {
        ringAllGather(f.cluster, f.net.ring(), total / 8, 0,
                      std::move(done));
    });
    CommStats bc = f.run([&](CommDone done) {
        ringBroadcast(f.cluster, f.net.ring(), 0, total, 8, 0,
                      std::move(done));
    });
    EXPECT_GT(bc.total, ag.total);
    EXPECT_GT(bc.syncCount, ag.syncCount);
}

TEST(Collectives, ShiftIsOneStep)
{
    RingFixture f(simpleConfig(), 6);
    CommStats stats = f.run([&](CommDone done) {
        ringShift(f.cluster, f.net.ring(), 500, true, 0, std::move(done));
    });
    // 10 launch + 5 transfer + 1 sync.
    EXPECT_NEAR(stats.total, 16.0, 1e-6);
    EXPECT_EQ(stats.syncCount, 1);
}

TEST(Collectives, SingleChipRingIsFree)
{
    RingFixture f(simpleConfig(), 1);
    CommStats stats = f.run([&](CommDone done) {
        ringAllGather(f.cluster, f.net.ring(), 1000, 0, std::move(done));
    });
    EXPECT_DOUBLE_EQ(stats.total, 0.0);
}

TEST(Collectives, StepCountHelperMatchesConfig)
{
    ChipConfig uni = simpleConfig();
    ChipConfig bi = simpleConfig();
    bi.bidirectionalIci = true;
    EXPECT_EQ(collectiveStepCount(uni, 8), 7);
    EXPECT_EQ(collectiveStepCount(bi, 8), 4);
    EXPECT_EQ(collectiveStepCount(bi, 2), 1);
    EXPECT_EQ(collectiveStepCount(bi, 1), 0);
}

TEST(Collectives, AllGatherScalesLinearlyInRingSize)
{
    ChipConfig cfg = simpleConfig();
    double prev_total = 0.0;
    for (int p : {2, 4, 8}) {
        RingFixture f(cfg, p);
        CommStats stats = f.run([&](CommDone done) {
            ringAllGather(f.cluster, f.net.ring(), 1000, 0,
                          std::move(done));
        });
        const double expected = 10.0 + (p - 1) * 11.0;
        EXPECT_NEAR(stats.total, expected, 1e-6) << "P=" << p;
        EXPECT_GT(stats.total, prev_total);
        prev_total = stats.total;
    }
}

TEST(Collectives, ConcurrentRowRingsDoNotInterfere)
{
    // Two rows of a 2x4 torus all-gathering simultaneously must take
    // the same time as one row alone (disjoint links and HBMs).
    ChipConfig cfg = simpleConfig();
    Cluster cluster(cfg, 8);
    TorusMesh mesh(cluster, 2, 4);
    Time end0 = -1, end1 = -1;
    ringAllGather(cluster, mesh.rowRing(0), 1000, 0,
                  [&](const CommStats &) { end0 = cluster.sim().now(); });
    ringAllGather(cluster, mesh.rowRing(1), 1000, 0,
                  [&](const CommStats &) { end1 = cluster.sim().now(); });
    cluster.sim().run();
    EXPECT_NEAR(end0, 43.0, 1e-6);
    EXPECT_NEAR(end1, 43.0, 1e-6);
}

TEST(Collectives, RowAndColumnCollectivesShareOnlyHbm)
{
    // A row AG and a column AG on a 4x4 torus use disjoint links; with
    // ample HBM they complete as fast as either alone.
    ChipConfig cfg = simpleConfig();
    Cluster cluster(cfg, 16);
    TorusMesh mesh(cluster, 4, 4);
    Time end_row = -1, end_col = -1;
    ringAllGather(cluster, mesh.rowRing(0), 1000, 0,
                  [&](const CommStats &) { end_row = cluster.sim().now(); });
    ringAllGather(cluster, mesh.colRing(0), 1000, 0,
                  [&](const CommStats &) { end_col = cluster.sim().now(); });
    cluster.sim().run();
    EXPECT_NEAR(end_row, 43.0, 1e-6);
    EXPECT_NEAR(end_col, 43.0, 1e-6);
}

} // namespace
} // namespace meshslice
