/**
 * @file
 * Tests of the pipeline-parallelism subsystem: schedule structure,
 * closed-form degeneracies of the discrete-event executor, the
 * activation-stash memory model, cross-mesh remap accounting, and the
 * phase-3 (TP x PP x DP) tuner — including the contract that a pp=1
 * plan reproduces the plain 2D autotuner output bit-identically, and
 * property checks over random feasible (pp, m) decompositions.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/memory_model.hpp"
#include "gemm/reshard.hpp"
#include "pipeline/pipeline_exec.hpp"
#include "pipeline/stage_model.hpp"
#include "tuner/pipeline_tuner.hpp"

namespace meshslice {
namespace {

/** A small transformer whose dimensions divide small meshes, so the
 *  full 3-phase tuner runs in milliseconds. */
TransformerConfig
tinyModel()
{
    TransformerConfig cfg;
    cfg.name = "tiny";
    cfg.layers = 8;
    cfg.hiddenDim = 1024;
    cfg.heads = 16;
    cfg.ffnDim = 4096;
    return cfg;
}

TrainingConfig
tinyTrain()
{
    return TrainingConfig{16, 512};
}

const CostModel &
testCost()
{
    static CostModel cost = CostModel::calibrated(tpuV4Config());
    return cost;
}

double
relDiff(double a, double b)
{
    const double scale = std::max(std::abs(a), std::abs(b));
    return scale > 0.0 ? std::abs(a - b) / scale : 0.0;
}

// ---------------------------------------------------------------------
// Schedule structure.

TEST(PipelineSchedule, ProgramShapeAndStash)
{
    const int stages = 4;
    const int micro = 8;
    const PipelineProgram gpipe =
        buildPipelineProgram(PipelineSchedule::kGPipe, stages, micro);
    const PipelineProgram ofob =
        buildPipelineProgram(PipelineSchedule::k1F1B, stages, micro);
    EXPECT_EQ(gpipe.tasks.size(), 2u * micro * stages);
    EXPECT_EQ(ofob.tasks.size(), 2u * micro * stages);
    // GPipe stashes every micro-batch; 1F1B at most P - stage.
    EXPECT_EQ(peakInFlight(gpipe, 0), micro);
    EXPECT_EQ(peakInFlight(ofob, 0), std::min(micro, stages));
    EXPECT_EQ(peakInFlight(ofob, stages - 1), 1);
}

TEST(PipelineScheduleDeath, InterleavedNeedsMicroBatchDivisibility)
{
    EXPECT_DEATH(buildPipelineProgram(PipelineSchedule::kInterleaved1F1B,
                                      4, 6, 2),
                 "");
}

// ---------------------------------------------------------------------
// Discrete-event execution degeneracies.

TEST(PipelineExec, GPipeBubbleMatchesClosedForm)
{
    const ChipConfig cfg = tpuV4Config();
    const int stages = 4;
    const int micro = 6;
    PipelineExecSpec spec;
    spec.schedule = PipelineSchedule::kGPipe;
    spec.microBatches = micro;
    spec.fwdTime = 1e-3;
    spec.bwdTime = 2e-3;
    spec.boundaryBytes = 0; // uniform, zero-comm: the textbook case
    Cluster cluster(cfg, stages);
    PipelineCluster pc(cluster, stages, 1, 1);
    const PipelineRunResult run = runPipeline(pc, spec);
    EXPECT_NEAR(run.time,
                (micro + stages - 1) * (spec.fwdTime + spec.bwdTime),
                1e-12);
    EXPECT_NEAR(run.bubbleFraction, gpipeBubbleFraction(stages, micro),
                1e-9);
}

TEST(PipelineExec, SimulatorMatchesAnalyticalSpanWithTransfers)
{
    const ChipConfig cfg = tpuV4Config();
    for (const PipelineSchedule sched :
         {PipelineSchedule::kGPipe, PipelineSchedule::k1F1B}) {
        PipelineExecSpec spec;
        spec.schedule = sched;
        spec.microBatches = 4;
        spec.fwdTime = 0.8e-3;
        spec.bwdTime = 1.7e-3;
        spec.boundaryBytes = MiB(8);
        spec.chargeLaunch = true;
        const int stages = 3;
        Cluster cluster(cfg, stages * 2);
        PipelineCluster pc(cluster, stages, 1, 2);
        const PipelineRunResult run = runPipeline(pc, spec);
        const PipelineProgram program = buildPipelineProgram(
            sched, stages, spec.microBatches, spec.chunks);
        const Time analytic =
            analyticalSpan(program, timeModelFor(spec, cfg, 1, 2));
        EXPECT_LT(relDiff(run.time, analytic), 1e-9)
            << pipelineScheduleName(sched);
        EXPECT_GT(run.interStageBytes, 0);
    }
}

TEST(PipelineExec, InterleavedMatchesAnalyticalSpan)
{
    const ChipConfig cfg = tpuV4Config();
    PipelineExecSpec spec;
    spec.schedule = PipelineSchedule::kInterleaved1F1B;
    spec.microBatches = 4;
    spec.chunks = 2;
    spec.fwdTime = 1e-3;
    spec.bwdTime = 2e-3;
    spec.boundaryBytes = MiB(4);
    const int stages = 2;
    Cluster cluster(cfg, stages * 2);
    PipelineCluster pc(cluster, stages, 2, 1);
    const PipelineRunResult run = runPipeline(pc, spec);
    const PipelineProgram program = buildPipelineProgram(
        spec.schedule, stages, spec.microBatches, spec.chunks);
    const Time analytic =
        analyticalSpan(program, timeModelFor(spec, cfg, 2, 1));
    EXPECT_LT(relDiff(run.time, analytic), 1e-9);
}

// ---------------------------------------------------------------------
// Property checks over random feasible (pp, m).

TEST(PipelineProperty, OneFOneBStashNeverExceedsGPipe)
{
    std::mt19937 rng(42);
    std::uniform_int_distribution<int> stage_dist(2, 8);
    std::uniform_int_distribution<int> micro_dist(1, 16);
    for (int trial = 0; trial < 50; ++trial) {
        const int stages = stage_dist(rng);
        const int micro = micro_dist(rng);
        const PipelineProgram gpipe =
            buildPipelineProgram(PipelineSchedule::kGPipe, stages, micro);
        const PipelineProgram ofob =
            buildPipelineProgram(PipelineSchedule::k1F1B, stages, micro);
        for (int s = 0; s < stages; ++s)
            EXPECT_LE(peakInFlight(ofob, s), peakInFlight(gpipe, s))
                << "stages=" << stages << " micro=" << micro
                << " stage=" << s;
    }
}

TEST(PipelineProperty, SimulatedStepNeverBelowLowerBound)
{
    const ChipConfig cfg = tpuV4Config();
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> stage_dist(1, 5);
    std::uniform_int_distribution<int> micro_dist(1, 8);
    std::uniform_real_distribution<double> time_dist(0.3e-3, 3e-3);
    std::uniform_int_distribution<int> mib_dist(0, 16);
    std::uniform_int_distribution<int> sched_dist(0, 1);
    for (int trial = 0; trial < 20; ++trial) {
        PipelineExecSpec spec;
        spec.schedule = sched_dist(rng) == 0 ? PipelineSchedule::kGPipe
                                             : PipelineSchedule::k1F1B;
        const int stages = stage_dist(rng);
        spec.microBatches = micro_dist(rng);
        spec.fwdTime = time_dist(rng);
        spec.bwdTime = time_dist(rng);
        spec.boundaryBytes = MiB(1) * mib_dist(rng);
        spec.chargeLaunch = true;
        Cluster cluster(cfg, stages * 2);
        PipelineCluster pc(cluster, stages, 1, 2);
        const PipelineRunResult run = runPipeline(pc, spec);
        const PipelineProgram program = buildPipelineProgram(
            spec.schedule, stages, spec.microBatches, spec.chunks);
        const Time bound =
            pipelineLowerBound(program, timeModelFor(spec, cfg, 1, 2));
        EXPECT_GE(run.time, bound * (1.0 - 1e-9))
            << pipelineScheduleName(spec.schedule) << " stages=" << stages
            << " micro=" << spec.microBatches;
    }
}

// ---------------------------------------------------------------------
// Activation-stash memory model.

TEST(PipelineMemory, RecomputeStashesOnlyBoundaries)
{
    const ChipConfig cfg = tpuV4Config();
    PipelineStageMemorySpec spec;
    spec.residentBytes = GiB(4);
    spec.activationBytes = GiB(8);
    spec.boundaryBytes = MiB(64);
    spec.peakInFlight = 4;
    spec.recompute = false;
    const PipelineMemoryFootprint full = pipelineStageMemory(spec);
    EXPECT_EQ(full.stash, 4 * GiB(8));
    EXPECT_FALSE(pipelineFitsInMemory(cfg, spec)); // 36 GiB > 32 GiB
    spec.recompute = true;
    const PipelineMemoryFootprint cheap = pipelineStageMemory(spec);
    EXPECT_EQ(cheap.stash, 4 * MiB(64));
    EXPECT_LT(cheap.total(), full.total());
    EXPECT_TRUE(pipelineFitsInMemory(cfg, spec));
}

// ---------------------------------------------------------------------
// Cross-mesh boundary remap.

TEST(PipelineRemap, EqualMeshesMoveNothing)
{
    const MeshShape mesh{2, 4};
    const RemapPlan plan = planRemap(64, 64, 2, mesh, mesh);
    EXPECT_EQ(plan.movedBytes, 0);
    EXPECT_EQ(plan.matchedBytes, plan.totalBytes);
    EXPECT_DOUBLE_EQ(remapBytesModel(1e9, mesh, mesh), 0.0);
}

TEST(PipelineRemap, DiscreteRemapMatchesContinuousModel)
{
    const MeshShape from{2, 4};
    const MeshShape to{4, 2};
    const std::int64_t rows = 64, cols = 64;
    const RemapPlan plan = planRemap(rows, cols, 2, from, to);
    const double modeled = remapBytesModel(
        static_cast<double>(plan.totalBytes), from, to);
    EXPECT_NEAR(static_cast<double>(plan.movedBytes), modeled,
                1e-6 * modeled + 1.0);
}

// ---------------------------------------------------------------------
// Phase-3 tuner.

TEST(PipelineTuner, Pp1ReproducesThe2DAutotunerBitIdentically)
{
    const ChipConfig cfg = tpuV4Config();
    const LlmAutotuner tuner(testCost());
    const TransformerConfig model = tinyModel();
    const TrainingConfig train = tinyTrain();
    const int chips = 8;

    PipelineAxes axes;
    axes.pp = 1;
    axes.dp = 1;
    axes.microBatches = 1;
    axes.tpRows = 1;
    axes.tpCols = chips;
    PipelineTuneConfig pcfg;
    const PipelineCandidate cand = evaluatePipelineCandidate(
        tuner, model, train, axes, pcfg, /*simulate=*/true);
    ASSERT_TRUE(cand.feasible) << cand.reason;
    ASSERT_FALSE(cand.axes.recompute); // tiny stash fits without it

    const AutotuneResult direct = tuner.tune(model, train, chips);
    EXPECT_EQ(cand.tpPlan.rows, direct.rows);
    EXPECT_EQ(cand.tpPlan.cols, direct.cols);
    EXPECT_EQ(cand.tpPlan.blockFcTime, direct.blockFcTime); // bitwise
    const std::vector<GemmPlan> got = cand.tpPlan.allPlans();
    const std::vector<GemmPlan> want = direct.allPlans();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].dataflow, want[i].dataflow) << i;
        EXPECT_EQ(got[i].sliceCount, want[i].sliceCount) << i;
        EXPECT_EQ(got[i].estTime, want[i].estTime) << i; // bitwise
    }

    // With pp = dp = m = 1 the program is one forward and one backward
    // task with no sends, so the span is exactly the 2D step formula.
    const Time bt =
        direct.blockFcTime + nonFcBlockTime(cfg, model, train, chips);
    const Time fwd = (1.0 / 3.0) * bt;
    const Time bwd = bt - fwd;
    const double blocks = static_cast<double>(model.layers);
    EXPECT_EQ(cand.estPipeline, blocks * fwd + blocks * bwd); // bitwise
    EXPECT_EQ(cand.estDp, 0.0);
    // The simulator replays the same two tasks as fluid flows.
    EXPECT_LT(relDiff(cand.simTotal, cand.estTotal), 1e-9);
}

TEST(PipelineTuner, SearchPicksFeasiblePlanAndEstimatesTrackSim)
{
    const LlmAutotuner tuner(testCost());
    const PipelineTuneResult result = tunePipeline(
        tuner, tinyModel(), tinyTrain(), 8, PipelineTuneConfig{});
    ASSERT_FALSE(result.candidates.empty());
    const PipelineCandidate &picked = result.picked();
    EXPECT_TRUE(picked.feasible);
    EXPECT_EQ(picked.axes.chips(), 8);
    EXPECT_GE(picked.simTotal, 0.0);
    // Candidates are ranked by analytic estimate, deterministically.
    for (size_t i = 1; i < result.candidates.size(); ++i)
        EXPECT_LE(result.candidates[i - 1].estTotal,
                  result.candidates[i].estTotal);
    // Every simulated shortlist entry's analytic estimate is close.
    int simulated = 0;
    for (const PipelineCandidate &cand : result.candidates) {
        if (cand.simTotal < 0.0)
            continue;
        ++simulated;
        EXPECT_LE(std::abs(cand.estTotal - cand.simTotal),
                  0.15 * cand.simTotal)
            << "pp=" << cand.axes.pp << " dp=" << cand.axes.dp
            << " m=" << cand.axes.microBatches;
    }
    EXPECT_GT(simulated, 0);
    for (const PipelineCandidate &cand : result.pruned)
        EXPECT_FALSE(cand.reason.empty());
}

TEST(PipelineTuner, ImpossibleTpDegreeIsPrunedNotFatal)
{
    const LlmAutotuner tuner(testCost());
    PipelineAxes axes;
    axes.pp = 1;
    axes.dp = 1;
    axes.microBatches = 1;
    axes.tpRows = 1;
    axes.tpCols = 7; // divides no dimension of the tiny model
    const PipelineCandidate cand = evaluatePipelineCandidate(
        tuner, tinyModel(), tinyTrain(), axes, PipelineTuneConfig{},
        /*simulate=*/false);
    EXPECT_FALSE(cand.feasible);
    EXPECT_NE(cand.reason.find("mesh shape"), std::string::npos)
        << cand.reason;
}

} // namespace
} // namespace meshslice
