/**
 * @file
 * Tests of the fluid resource-sharing network: solo rates, fair
 * sharing, water-filling (work conservation), accounting, and the
 * NIC-vs-core HBM contention scenario the TPU model depends on.
 */
#include <gtest/gtest.h>

#include "sim/fluid.hpp"
#include "sim/simulator.hpp"

namespace meshslice {
namespace {

class FluidTest : public ::testing::Test
{
  protected:
    Simulator sim;
    FluidNetwork net{sim};
};

TEST_F(FluidTest, SoloFlowRunsAtCapacity)
{
    ResourceId r = net.addResource("link", 100.0);
    Time end = -1.0;
    net.startFlow(1000.0, {{r, 1.0}}, [&] { end = sim.now(); });
    sim.run();
    EXPECT_NEAR(end, 10.0, 1e-9);
}

TEST_F(FluidTest, DemandCoefficientScalesRate)
{
    ResourceId r = net.addResource("hbm", 100.0);
    Time end = -1.0;
    // 2 units of resource per flow unit -> rate 50 -> 1000/50 = 20s.
    net.startFlow(1000.0, {{r, 2.0}}, [&] { end = sim.now(); });
    sim.run();
    EXPECT_NEAR(end, 20.0, 1e-9);
}

TEST_F(FluidTest, TwoEqualFlowsShareFairly)
{
    ResourceId r = net.addResource("link", 100.0);
    Time end1 = -1.0, end2 = -1.0;
    net.startFlow(1000.0, {{r, 1.0}}, [&] { end1 = sim.now(); });
    net.startFlow(1000.0, {{r, 1.0}}, [&] { end2 = sim.now(); });
    sim.run();
    EXPECT_NEAR(end1, 20.0, 1e-9);
    EXPECT_NEAR(end2, 20.0, 1e-9);
}

TEST_F(FluidTest, FinishedFlowReleasesBandwidth)
{
    ResourceId r = net.addResource("link", 100.0);
    Time end_small = -1.0, end_big = -1.0;
    net.startFlow(500.0, {{r, 1.0}}, [&] { end_small = sim.now(); });
    net.startFlow(1500.0, {{r, 1.0}}, [&] { end_big = sim.now(); });
    sim.run();
    // Shared at 50 each until t=10 (small done); big then runs at 100:
    // remaining 1000 -> done at t=20.
    EXPECT_NEAR(end_small, 10.0, 1e-9);
    EXPECT_NEAR(end_big, 20.0, 1e-9);
}

TEST_F(FluidTest, WaterFillingIsWorkConserving)
{
    // A small flow capped elsewhere must not strand shared capacity.
    ResourceId link = net.addResource("link", 10.0);
    ResourceId hbm = net.addResource("hbm", 100.0);
    Time end_link = -1.0, end_heavy = -1.0;
    // Flow A: limited by its link to rate 10, also uses hbm.
    net.startFlow(100.0, {{link, 1.0}, {hbm, 1.0}},
                  [&] { end_link = sim.now(); });
    // Flow B: only hbm; should get the remaining 90, not a "fair" 50.
    net.startFlow(900.0, {{hbm, 1.0}}, [&] { end_heavy = sim.now(); });
    sim.run();
    EXPECT_NEAR(end_link, 10.0, 1e-9);
    EXPECT_NEAR(end_heavy, 10.0, 1e-9);
}

TEST_F(FluidTest, OversubscribedResourceSplitsEvenly)
{
    ResourceId hbm = net.addResource("hbm", 100.0);
    int done = 0;
    for (int i = 0; i < 4; ++i)
        net.startFlow(250.0, {{hbm, 1.0}}, [&] { ++done; });
    sim.run();
    EXPECT_EQ(done, 4);
    // 4 flows at 25 each -> all finish at t=10.
    EXPECT_NEAR(sim.now(), 10.0, 1e-9);
}

TEST_F(FluidTest, MultiResourceBottleneckIsTheMinimum)
{
    ResourceId a = net.addResource("a", 100.0);
    ResourceId b = net.addResource("b", 30.0);
    Time end = -1.0;
    net.startFlow(300.0, {{a, 1.0}, {b, 1.0}}, [&] { end = sim.now(); });
    sim.run();
    EXPECT_NEAR(end, 10.0, 1e-9);
}

TEST_F(FluidTest, NicComputeHbmContentionScenario)
{
    // TPU-like: links 45, HBM 1200. Two NIC transfers (45 each) plus a
    // compute stream demanding 1500 B/flop-units must squeeze into the
    // leftover 1110.
    ResourceId l1 = net.addResource("l1", 45.0);
    ResourceId l2 = net.addResource("l2", 45.0);
    ResourceId hbm = net.addResource("hbm", 1200.0);
    Time end1 = -1, end2 = -1, endc = -1;
    net.startFlow(45.0, {{l1, 1.0}, {hbm, 1.0}}, [&] { end1 = sim.now(); });
    net.startFlow(45.0, {{l2, 1.0}, {hbm, 1.0}}, [&] { end2 = sim.now(); });
    // Compute flow: wants hbm at 1500/s (solo would be capped at 1200).
    net.startFlow(1110.0, {{hbm, 1.0}}, [&] { endc = sim.now(); });
    sim.run();
    EXPECT_NEAR(end1, 1.0, 1e-9);
    EXPECT_NEAR(end2, 1.0, 1e-9);
    // Compute gets 1200 - 90 = 1110 while transfers are active.
    EXPECT_NEAR(endc, 1.0, 1e-6);
}

TEST_F(FluidTest, ZeroSizeFlowCompletesImmediately)
{
    net.addResource("r", 1.0);
    bool fired = false;
    net.startFlow(0.0, {}, [&] { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST_F(FluidTest, ResourceAccountingTracksConsumption)
{
    ResourceId r = net.addResource("link", 100.0);
    net.startFlow(1000.0, {{r, 1.0}}, [] {});
    sim.run();
    ResourceStats stats = net.resourceStats(r);
    EXPECT_NEAR(stats.totalConsumed, 1000.0, 1e-6);
    EXPECT_NEAR(stats.busyTime, 10.0, 1e-6);
    EXPECT_EQ(stats.activeFlows, 0);
}

TEST_F(FluidTest, ChainedFlowsAdvanceTime)
{
    ResourceId r = net.addResource("link", 10.0);
    Time end = -1.0;
    net.startFlow(100.0, {{r, 1.0}}, [&] {
        net.startFlow(50.0, {{r, 1.0}}, [&] { end = sim.now(); });
    });
    sim.run();
    EXPECT_NEAR(end, 15.0, 1e-9);
}

TEST_F(FluidTest, RatesRecomputeOnArrival)
{
    ResourceId r = net.addResource("link", 100.0);
    Time end_first = -1.0;
    net.startFlow(1000.0, {{r, 1.0}}, [&] { end_first = sim.now(); });
    // At t=5, a second flow arrives; first has 500 left, now at rate 50
    // -> finishes at t = 5 + 10 = 15.
    sim.schedule(5.0, [&] { net.startFlow(5000.0, {{r, 1.0}}, [] {}); });
    sim.run();
    EXPECT_NEAR(end_first, 15.0, 1e-9);
}

} // namespace
} // namespace meshslice
