/**
 * @file
 * Tests of the LLM workload definitions: parameter counts, the 12
 * FC-layer training GeMMs, shape dedup ("eight distinct GeMMs"), and
 * the non-FC roofline estimate.
 */
#include <gtest/gtest.h>

#include "model/transformer.hpp"

namespace meshslice {
namespace {

TEST(Transformer, Gpt3HasRoughly175BParameters)
{
    const TransformerConfig cfg = gpt3Config();
    EXPECT_NEAR(cfg.parameterCount(), 175e9, 10e9);
    EXPECT_EQ(cfg.hiddenDim % cfg.heads, 0);
}

TEST(Transformer, MegatronHasRoughly530BParameters)
{
    const TransformerConfig cfg = megatronNlgConfig();
    EXPECT_NEAR(cfg.parameterCount(), 530e9, 30e9);
}

TEST(Transformer, WeakScalingBatchRule)
{
    EXPECT_EQ(TrainingConfig::weakScaling(256).batch, 128);
    EXPECT_EQ(TrainingConfig::weakScaling(16).tokens(), 8 * 2048);
}

TEST(Transformer, BlockHasTwelveGemms)
{
    const auto gemms =
        blockFcGemms(gpt3Config(), TrainingConfig{128, 2048});
    EXPECT_EQ(gemms.size(), 12u);
    int fwd = 0, bwd_d = 0, bwd_w = 0;
    for (const FcGemm &gemm : gemms) {
        switch (gemm.pass) {
          case Pass::kForward:
            ++fwd;
            break;
          case Pass::kBackwardData:
            ++bwd_d;
            break;
          case Pass::kBackwardWeight:
            ++bwd_w;
            break;
        }
    }
    EXPECT_EQ(fwd, 4);
    EXPECT_EQ(bwd_d, 4);
    EXPECT_EQ(bwd_w, 4);
}

TEST(Transformer, GemmShapesMatchArchitecture)
{
    const TransformerConfig model = gpt3Config();
    const TrainingConfig train{128, 2048};
    const std::int64_t m = train.tokens();
    for (const FcGemm &gemm : blockFcGemms(model, train)) {
        if (gemm.name == "qkv.fwd") {
            EXPECT_EQ(gemm.m, m);
            EXPECT_EQ(gemm.k, model.hiddenDim);
            EXPECT_EQ(gemm.n, 3 * model.hiddenDim);
        }
        if (gemm.name == "ffn2.fwd") {
            EXPECT_EQ(gemm.k, model.ffnDim);
            EXPECT_EQ(gemm.n, model.hiddenDim);
        }
        if (gemm.name == "ffn1.bwdW") {
            // W' is (in x out), contracting the token dimension.
            EXPECT_EQ(gemm.m, model.hiddenDim);
            EXPECT_EQ(gemm.k, m);
            EXPECT_EQ(gemm.n, model.ffnDim);
        }
    }
}

TEST(Transformer, EightDistinctGemmShapes)
{
    // The paper's Sec 5.1.4: eight distinct (M, N, K) per model.
    const auto distinct =
        distinctFcGemms(gpt3Config(), TrainingConfig{128, 2048});
    EXPECT_EQ(distinct.size(), 8u);
    int total = 0;
    for (const WeightedFcGemm &entry : distinct)
        total += entry.count;
    EXPECT_EQ(total, 12);
}

TEST(Transformer, BlockFlopsMatchSixParamsTokens)
{
    // Folklore check: training FLOPs ~ 6 * params * tokens (the FC
    // layers dominate). Per block: 6 * blockParams * tokens.
    const TransformerConfig model = gpt3Config();
    const TrainingConfig train{128, 2048};
    double flops = 0.0;
    for (const FcGemm &gemm : blockFcGemms(model, train))
        flops += gemm.flops();
    const double block_params = model.parameterCount() / model.layers;
    EXPECT_NEAR(flops, 6.0 * block_params * train.tokens(),
                0.02 * flops);
}

TEST(Transformer, NonFcTimeScalesInverselyWithChips)
{
    const ChipConfig cfg = tpuV4Config();
    const TransformerConfig model = gpt3Config();
    const TrainingConfig train{128, 2048};
    const Time t64 = nonFcBlockTime(cfg, model, train, 64);
    const Time t256 = nonFcBlockTime(cfg, model, train, 256);
    EXPECT_NEAR(t64 / t256, 4.0, 1e-6);
}

TEST(Transformer, NonFcTimeIsMinorityOfBlockTime)
{
    // The paper's end-to-end speedups are only slightly below the
    // FC-only speedups, so non-FC time must be a modest fraction of
    // the FC time.
    const ChipConfig cfg = tpuV4Config();
    const TransformerConfig model = gpt3Config();
    const TrainingConfig train = TrainingConfig::weakScaling(256);
    double fc_flops = 0.0;
    for (const FcGemm &gemm : blockFcGemms(model, train))
        fc_flops += gemm.flops();
    // FC time at ~70% utilization on 256 chips:
    const Time fc_time = fc_flops / (0.7 * cfg.peakFlops * 256);
    const Time non_fc = nonFcBlockTime(cfg, model, train, 256);
    EXPECT_LT(non_fc, 0.35 * fc_time);
    EXPECT_GT(non_fc, 0.01 * fc_time);
}

} // namespace
} // namespace meshslice
