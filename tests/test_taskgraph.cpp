/**
 * @file
 * Tests of the task graph that drives software-pipelined schedules.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/taskgraph.hpp"

namespace meshslice {
namespace {

TEST(TaskGraph, RunsIndependentTasksImmediately)
{
    Simulator sim;
    TaskGraph graph(sim);
    std::vector<int> ran;
    for (int i = 0; i < 3; ++i)
        graph.addTask([&ran, i](std::function<void()> done) {
            ran.push_back(i);
            done();
        });
    bool finished = false;
    graph.start([&] { finished = true; });
    sim.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(ran.size(), 3u);
}

TEST(TaskGraph, RespectsDependencies)
{
    Simulator sim;
    TaskGraph graph(sim);
    std::vector<int> order;
    // c depends on b depends on a, but a finishes late.
    int a = graph.addTask([&](std::function<void()> done) {
        sim.scheduleAfter(10.0, [&order, done] {
            order.push_back(0);
            done();
        });
    });
    int b = graph.addTask(
        [&order](std::function<void()> done) {
            order.push_back(1);
            done();
        },
        {a});
    graph.addTask(
        [&order](std::function<void()> done) {
            order.push_back(2);
            done();
        },
        {b});
    bool finished = false;
    graph.start([&] { finished = true; });
    sim.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(TaskGraph, DiamondJoinWaitsForAllParents)
{
    Simulator sim;
    TaskGraph graph(sim);
    Time join_time = -1.0;
    int root = graph.addTask([](std::function<void()> done) { done(); });
    int left = graph.addTask(
        [&sim](std::function<void()> done) {
            sim.scheduleAfter(5.0, done);
        },
        {root});
    int right = graph.addTask(
        [&sim](std::function<void()> done) {
            sim.scheduleAfter(9.0, done);
        },
        {root});
    graph.addTask(
        [&](std::function<void()> done) {
            join_time = sim.now();
            done();
        },
        {left, right});
    graph.start([] {});
    sim.run();
    EXPECT_DOUBLE_EQ(join_time, 9.0);
}

TEST(TaskGraph, PipelineOverlapsIndependentChains)
{
    // Two chains of 3 tasks each, 1s per task, no cross deps: the
    // simulated "wall clock" is 3s, not 6s.
    Simulator sim;
    TaskGraph graph(sim);
    for (int chain = 0; chain < 2; ++chain) {
        int prev = -1;
        for (int i = 0; i < 3; ++i) {
            auto fn = [&sim](std::function<void()> done) {
                sim.scheduleAfter(1.0, done);
            };
            prev = graph.addTask(fn, prev < 0 ? std::vector<int>{}
                                              : std::vector<int>{prev});
        }
    }
    graph.start([] {});
    sim.run();
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(TaskGraph, EmptyGraphCompletes)
{
    Simulator sim;
    TaskGraph graph(sim);
    bool finished = false;
    graph.start([&] { finished = true; });
    sim.run();
    EXPECT_TRUE(finished);
}

TEST(TaskGraphDeath, RejectsForwardDependencies)
{
    Simulator sim;
    TaskGraph graph(sim);
    EXPECT_DEATH(
        graph.addTask([](std::function<void()> done) { done(); }, {5}),
        "bad dependency");
}

} // namespace
} // namespace meshslice
