/**
 * @file
 * Tests of the chrome-trace recorder and its integration with the
 * executors (the Figure-4-style timeline export).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/executor.hpp"
#include "sim/trace.hpp"

namespace meshslice {
namespace {

TEST(Trace, DisabledRecorderIsNoOp)
{
    TraceRecorder trace;
    trace.record("x", "compute", 0, 0, 0.0, 1.0);
    EXPECT_EQ(trace.spanCount(), 0u);
}

TEST(Trace, RecordsSpansWhenEnabled)
{
    TraceRecorder trace;
    trace.enable(true);
    trace.record("gemm", "compute", 3, kLaneCompute, 1.0, 2.5);
    ASSERT_EQ(trace.spanCount(), 1u);
    EXPECT_EQ(trace.spans()[0].pid, 3);
    EXPECT_DOUBLE_EQ(trace.spans()[0].end, 2.5);
    trace.clear();
    EXPECT_EQ(trace.spanCount(), 0u);
}

TEST(Trace, WritesValidChromeTraceJson)
{
    TraceRecorder trace;
    trace.enable(true);
    trace.record("allgather", "comm", 0, kLaneHorizontalComm, 0.0, 1e-3);
    trace.record("gemm", "compute", 1, kLaneCompute, 1e-3, 2e-3);
    const std::string path = "/tmp/meshslice_trace_test.json";
    trace.writeJson(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"allgather\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, ExecutorEmitsComputeAndCommSpans)
{
    const ChipConfig cfg = tpuV4Config();
    Gemm2DSpec spec;
    spec.m = 8192;
    spec.k = 4096;
    spec.n = 4096;
    spec.rows = 2;
    spec.cols = 2;
    spec.sliceCount = 2;
    Cluster cluster(cfg, 4);
    TorusMesh mesh(cluster, 2, 2);
    cluster.trace().enable(true);
    GemmExecutor exec(mesh);
    exec.run(Algorithm::kMeshSlice, spec);
    bool saw_compute = false, saw_comm = false;
    for (const TraceRecorder::Span &span : cluster.trace().spans()) {
        if (span.category == "compute")
            saw_compute = true;
        if (span.category == "comm")
            saw_comm = true;
        EXPECT_GE(span.end, span.begin);
    }
    EXPECT_TRUE(saw_compute);
    EXPECT_TRUE(saw_comm);
}

TEST(Collectives, AllReduceCostsTwoCollectives)
{
    ChipConfig cfg = tpuV4Config();
    cfg.bidirectionalIci = false;
    Cluster cluster(cfg, 4);
    RingNetwork net(cluster);
    CommStats ar;
    const Bytes total = 4000;
    ringAllReduce(cluster, net.ring(), total, 0,
                  [&](const CommStats &stats) { ar = stats; });
    cluster.sim().run();
    // RdS + AG of total/P shards: 2 launches, 2*(P-1) syncs,
    // 2*(P-1)*shard bytes per link.
    EXPECT_NEAR(ar.launch, 2 * cfg.launchOverhead, 1e-12);
    EXPECT_EQ(ar.syncCount, 6);
    EXPECT_EQ(ar.bytesPerLink, 2 * 3 * (total / 4));
}

} // namespace
} // namespace meshslice
