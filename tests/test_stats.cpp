/**
 * @file
 * Tests of the telemetry layer: JSON escaping, the stats registry, the
 * extended trace recorder (counters/instants/flows/metadata), resource
 * accounting conservation, per-algorithm overlap metrics, tuner search
 * traces, thread safety and cross-thread-count determinism.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "model/transformer.hpp"
#include "net/topology.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/search_trace.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

#include "json_checker.hpp"

namespace meshslice {
namespace {

using testing::countOccurrences;
using testing::jsonValid;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(escapeJson("plain"), "plain");
    EXPECT_EQ(escapeJson("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeJson("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeJson("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(escapeJson(std::string("a\x01z")), "a\\u0001z");
    EXPECT_TRUE(jsonValid(jsonString("quote \" slash \\ nl \n")));
}

TEST(Json, NumbersAreAlwaysValidJson)
{
    EXPECT_TRUE(jsonValid(jsonNumber(1.5)));
    EXPECT_TRUE(jsonValid(jsonNumber(-0.0)));
    EXPECT_TRUE(jsonValid(jsonNumber(1e300)));
    // Non-finite values must not leak bare NaN/inf tokens.
    EXPECT_EQ(jsonNumber(0.0 / 0.0), "null");
    EXPECT_EQ(jsonNumber(1.0 / 0.0), "null");
}

TEST(Stats, DisabledRegistryIsNoOp)
{
    StatsRegistry reg;
    reg.add("a/b", 1.0);
    reg.observe("a/c", 2.0);
    reg.observeHistogram("a/d", 3.0);
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.counter("a/b"), 0.0);
}

TEST(Stats, CountersGaugesAccumulatorsHistograms)
{
    StatsRegistry reg;
    reg.enable(true);
    reg.add("c", 1.0);
    reg.add("c", 2.5);
    EXPECT_DOUBLE_EQ(reg.counter("c"), 3.5);
    reg.set("g", 7.0);
    reg.set("g", 5.0); // gauge keeps the last value
    EXPECT_DOUBLE_EQ(reg.counter("g"), 5.0);

    reg.observe("acc", 1.0);
    reg.observe("acc", 3.0);
    const StatSnapshot acc = reg.snapshotOf("acc");
    EXPECT_EQ(acc.kind, StatKind::kAccumulator);
    EXPECT_EQ(acc.count, 2u);
    EXPECT_DOUBLE_EQ(acc.value, 4.0);
    EXPECT_DOUBLE_EQ(acc.min, 1.0);
    EXPECT_DOUBLE_EQ(acc.max, 3.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);

    reg.observeHistogram("h", 0.5); // bucket 0: < 1
    reg.observeHistogram("h", 1.5); // bucket 1: [1, 2)
    reg.observeHistogram("h", 6.0); // bucket 3: [4, 8)
    const StatSnapshot h = reg.snapshotOf("h");
    EXPECT_EQ(h.kind, StatKind::kHistogram);
    ASSERT_GE(h.buckets.size(), 4u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[3], 1u);

    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
}

TEST(Stats, SnapshotIsSortedAndJsonIsValid)
{
    StatsRegistry reg;
    reg.enable(true);
    reg.add("z/last", 1.0);
    reg.add("a/first", 2.0);
    reg.observe("a/mid/acc", 3.0);
    reg.observeHistogram("m/hist", 9.0);
    const std::vector<StatSnapshot> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].name, snap[i].name);

    const std::string json = reg.toJson();
    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_NE(json.find("\"first\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Trace, RoundTripCountsAndEscaping)
{
    TraceRecorder tr;
    tr.setProcessName(0, "chip \"0\" \\ escaped");
    tr.setThreadName(0, 0, "lane\n0");
    tr.enable(true);
    tr.record("span \"quoted\" \\name", "compute", 0, 0, 0.0, 1e-3);
    tr.record("plain", "comm", 1, 1, 1e-3, 2e-3);
    tr.recordCounter("cluster", 0, 0.0, {{"a", 1.0}, {"b", 2.0}});
    tr.recordInstant("marker", "sync", 0, 0, 5e-4);
    const std::uint64_t id = tr.newFlowId();
    tr.recordFlow("feeds", "dep", id, 0, 1, 1e-4, /*start=*/true);
    tr.recordFlow("feeds", "dep", id, 0, 0, 2e-4, /*start=*/false);

    const std::string path = "/tmp/meshslice_stats_trace_test.json";
    tr.writeJson(path);
    const std::string json = slurp(path);
    std::remove(path.c_str());

    EXPECT_TRUE(jsonValid(json)) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), tr.spanCount());
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"C\""), tr.counterCount());
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), tr.instantCount());
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"s\"") +
                  countOccurrences(json, "\"ph\":\"f\""),
              tr.flowCount());
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"M\""), 2u);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

/** A small traced+statted MeshSlice run shared by several tests. */
GemmRunResult
runInstrumentedMeshSlice(Cluster &cluster, int rows, int cols)
{
    TorusMesh mesh(cluster, rows, cols);
    GemmExecutor exec(mesh);
    Gemm2DSpec spec;
    spec.m = 8192;
    spec.k = 4096;
    spec.n = 4096;
    spec.rows = rows;
    spec.cols = cols;
    spec.sliceCount = 2;
    return exec.run(Algorithm::kMeshSlice, spec);
}

TEST(Stats, ResourceAccountingConservation)
{
    const ChipConfig cfg = tpuV4Config();
    Cluster cluster(cfg, 4);
    cluster.stats().enable(true);
    const GemmRunResult res = runInstrumentedMeshSlice(cluster, 2, 2);
    EXPECT_GT(res.time, 0.0);

    cluster.collectResourceStats(cluster.stats());
    int checked = 0;
    for (const StatSnapshot &s : cluster.stats().snapshot()) {
        const size_t tail = s.name.rfind("/busy_s");
        if (tail == std::string::npos || tail + 7 != s.name.size())
            continue;
        const std::string base = s.name.substr(0, tail);
        const double busy = s.value;
        const double idle = cluster.stats().counter(base + "/idle_s");
        const double observed =
            cluster.stats().counter(base + "/observed_s");
        // Conservation: independently-tracked busy + idle seconds must
        // add up to the resource's observed wall time.
        EXPECT_NEAR(busy + idle, observed,
                    1e-9 * std::max(1.0, observed))
            << base;
        EXPECT_GE(busy, 0.0) << base;
        EXPECT_GE(idle, 0.0) << base;
        ++checked;
    }
    // 4 chips x (core + HBM) + the torus links all get accounted.
    EXPECT_GE(checked, 8);
    // The cores did real work during the GeMM.
    EXPECT_GT(cluster.stats().counter("chip0/core/busy_s"), 0.0);
}

TEST(Stats, ExecutorPublishesOverlapMetrics)
{
    const ChipConfig cfg = tpuV4Config();
    Cluster cluster(cfg, 4);
    cluster.stats().enable(true);
    const GemmRunResult res = runInstrumentedMeshSlice(cluster, 2, 2);

    EXPECT_GT(res.computeBusy, 0.0);
    EXPECT_GE(res.exposedComm, 0.0);
    EXPECT_GE(res.computeBoundFraction(), 0.0);
    EXPECT_LE(res.computeBoundFraction(), 1.0);
    EXPECT_GE(res.overlapEfficiency(), 0.0);
    EXPECT_LE(res.overlapEfficiency(), 1.0);
    EXPECT_NEAR(res.computeBoundFraction() + res.commBoundFraction(),
                1.0, 1e-12);

    EXPECT_DOUBLE_EQ(cluster.stats().counter("algo/MeshSlice/runs"), 1.0);
    EXPECT_NEAR(cluster.stats().counter("algo/MeshSlice/time_s"),
                res.time, 1e-12);
    // The collective phase breakdown also landed in the registry.
    EXPECT_GT(cluster.stats().counter("collective/allgather/count"), 0.0);
    const double total =
        cluster.stats().counter("collective/allgather/total_s");
    const double parts =
        cluster.stats().counter("collective/allgather/launch_s") +
        cluster.stats().counter("collective/allgather/transfer_s") +
        cluster.stats().counter("collective/allgather/sync_s");
    EXPECT_NEAR(parts, total, 1e-9 * std::max(1.0, total));
}

TEST(Stats, MeshSliceOverlapsMoreThanCollective)
{
    const ChipConfig cfg = tpuV4Config();
    Gemm2DSpec spec;
    spec.m = 8192;
    spec.k = 4096;
    spec.n = 4096;
    spec.rows = 2;
    spec.cols = 2;
    spec.sliceCount = 4;

    Cluster c1(cfg, 4);
    TorusMesh m1(c1, 2, 2);
    const GemmRunResult slice =
        GemmExecutor(m1).run(Algorithm::kMeshSlice, spec);
    Cluster c2(cfg, 4);
    TorusMesh m2(c2, 2, 2);
    const GemmRunResult coll =
        GemmExecutor(m2).run(Algorithm::kCollective, spec);

    // The Collective baseline serializes comm and compute, so compared
    // with MeshSlice more of its wall time is exposed communication
    // and less of its issued comm is hidden. (Its efficiency is not
    // zero: the two directions' prologue AGs overlap each other.)
    EXPECT_GT(slice.overlapEfficiency(), coll.overlapEfficiency());
    EXPECT_GT(slice.computeBoundFraction(), coll.computeBoundFraction());
    EXPECT_GT(coll.exposedComm, slice.exposedComm);
}

TEST(Stats, ThreadSafeUnderConcurrentHammering)
{
    StatsRegistry reg;
    reg.enable(true);
    TraceRecorder tr;
    tr.enable(true);
    const std::int64_t n = 20000;
    parallelFor(n, 64, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
            reg.add("hammer/count", 1.0);
            reg.observe("hammer/value", static_cast<double>(i % 7));
            reg.observeHistogram("hammer/hist",
                                 static_cast<double>(i % 1024));
            tr.record("span", "compute", static_cast<int>(i % 4), 0,
                      0.0, 1.0);
            if (i % 64 == 0)
                tr.recordInstant("tick", "sync", 0, 0, 0.0);
        }
    });
    EXPECT_DOUBLE_EQ(reg.counter("hammer/count"),
                     static_cast<double>(n));
    EXPECT_EQ(reg.snapshotOf("hammer/value").count,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(reg.snapshotOf("hammer/hist").count,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(tr.spanCount(), static_cast<size_t>(n));
}

TEST(Stats, BitIdenticalAcrossThreadCounts)
{
    const ChipConfig cfg = tpuV4Config();
    const TransformerConfig model = gpt3Config();
    const int chips = 16;
    const TrainingConfig train = TrainingConfig::weakScaling(chips);

    const auto run_once = [&]() -> std::string {
        const CostModel cost = CostModel::calibrated(cfg);
        const LlmAutotuner tuner(cost);
        const AutotuneResult plan = tuner.tuneForAlgorithm(
            Algorithm::kMeshSlice, model, train, chips, true);
        Cluster cluster(cfg, chips);
        cluster.stats().enable(true);
        TorusMesh mesh(cluster, plan.rows, plan.cols);
        GemmExecutor exec(mesh);
        for (const GemmPlan &p : plan.allPlans())
            exec.run(Algorithm::kMeshSlice,
                     makeSpec(p.gemm, p.dataflow, plan.rows, plan.cols,
                              p.sliceCount, cfg.bytesPerElement));
        cluster.collectResourceStats(cluster.stats());
        return cluster.stats().toJson();
    };

    ThreadPool::setGlobalThreads(1);
    const std::string serial = run_once();
    ThreadPool::setGlobalThreads(8);
    const std::string parallel = run_once();
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreadCount());
    EXPECT_TRUE(jsonValid(serial));
    EXPECT_EQ(serial, parallel);
}

TEST(SearchTrace, EmitsOneValidJsonlLinePerCandidate)
{
    const std::string path = "/tmp/meshslice_search_trace_test.jsonl";
    ASSERT_TRUE(SearchTrace::global().open(path));

    const ChipConfig cfg = tpuV4Config();
    const CostModel cost = CostModel::calibrated(cfg);
    Gemm2DSpec spec;
    spec.m = 8192;
    spec.k = 8192;
    spec.n = 8192;
    spec.rows = 4;
    spec.cols = 4;
    (void)cost.tuneSliceCount(Algorithm::kMeshSlice, spec);

    const LlmAutotuner tuner(cost);
    (void)tuner.tuneForAlgorithm(Algorithm::kMeshSlice, gpt3Config(),
                                 TrainingConfig::weakScaling(16), 16,
                                 true);
    const long records = SearchTrace::global().recordCount();
    SearchTrace::global().close();
    EXPECT_GT(records, 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    long lines = 0;
    bool saw_slice = false, saw_shape = false;
    for (std::string line; std::getline(in, line);) {
        if (line.empty())
            continue;
        EXPECT_TRUE(jsonValid(line)) << line;
        if (line.find("\"phase\":\"slice\"") != std::string::npos)
            saw_slice = true;
        if (line.find("\"phase\":\"shape\"") != std::string::npos)
            saw_shape = true;
        ++lines;
    }
    EXPECT_EQ(lines, records);
    EXPECT_TRUE(saw_slice);
    EXPECT_TRUE(saw_shape);
    std::remove(path.c_str());

    // Closed sink: instrumented call sites become no-ops again.
    (void)cost.tuneSliceCount(Algorithm::kMeshSlice, spec);
    EXPECT_EQ(SearchTrace::global().recordCount(), records);
}

TEST(Stats, ClusterCountersTrackIssuedWork)
{
    const ChipConfig cfg = tpuV4Config();
    Cluster cluster(cfg, 4);
    cluster.trace().enable(true);
    cluster.stats().enable(true);
    const GemmRunResult res = runInstrumentedMeshSlice(cluster, 2, 2);
    EXPECT_GT(res.flops, 0.0);
    EXPECT_GT(cluster.commBytesIssued(), 0);
    EXPECT_GT(cluster.trace().counterCount(), 0u);
    EXPECT_GT(cluster.stats().counter("gemm/count"), 0.0);
    EXPECT_NEAR(cluster.stats().counter("gemm/flops"),
                cluster.issuedFlops(), 1e-6 * cluster.issuedFlops());
}

} // namespace
} // namespace meshslice
